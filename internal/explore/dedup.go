package explore

import (
	"sync"

	"repro/internal/machine"
)

// Crash-boundary state dedup (DESIGN.md §5). The checker is stateless —
// volatile state (heap cells, thread continuations) is ordinary Go
// state it cannot enumerate — so the one point where a state's future
// is a function of observable data alone is the crash boundary: right
// after Machine.CrashReset, every thread is dead and all volatile state
// is gone by construction. Two executions whose crash boundaries agree
// on (durable device state, scenario-held crash-surviving state,
// recorded history, remaining crash budget, consumed step budget,
// rand-policy call index) have identical suffix behavior, so once one
// prefix's recovery subtree is enumerated, other prefixes reaching the
// same boundary can be pruned.
//
// The table maps fingerprint -> hash of the owning choice prefix. The
// owner hash is what lets the claiming prefix revisit its own boundary
// on every re-execution while it enumerates the recovery subtree: same
// prefix, same owner, no prune. Fingerprints are 64-bit FNV-1a hashes,
// not full states — a hash collision could prune a distinct state
// (standard hash-compaction risk, vanishingly small at our table
// sizes); `-nodedup` and the self-check mode exist for exactly that
// doubt.

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvBytes(h uint64, p []byte) uint64 {
	for _, c := range p {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

func fnvInt(h uint64, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= x & 0xff
		h *= fnvPrime
		x >>= 8
	}
	return h
}

// fpShards stripes the fingerprint table's locks so parallel workers
// rarely contend (fingerprints are hashes, so sharding by low bits is
// uniform).
const fpShards = 64

type fpShard struct {
	mu sync.Mutex
	m  map[uint64]uint64
}

// fpTable is the lock-striped fingerprint table shared by all workers
// of one systematic search.
type fpTable struct {
	shards [fpShards]fpShard
}

func newFPTable() *fpTable {
	t := &fpTable{}
	for i := range t.shards {
		t.shards[i].m = map[uint64]uint64{}
	}
	return t
}

// claim records fp as owned by owner when unclaimed. It reports whether
// the caller may continue past the boundary: true for the first claim
// and for revisits by the same owner, false when another prefix already
// owns the subtree (prune).
func (t *fpTable) claim(fp, owner uint64) bool {
	s := &t.shards[fp&(fpShards-1)]
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, ok := s.m[fp]
	if !ok {
		s.m[fp] = owner
		return true
	}
	return prev == owner
}

// size returns the number of distinct fingerprints claimed.
func (t *fpTable) size() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += len(t.shards[i].m)
		t.shards[i].mu.Unlock()
	}
	return n
}

// dedupRun carries the dedup context through one execution of runOne.
// nil disables dedup (replay, minimize, stress, or -nodedup).
type dedupRun struct {
	table *fpTable
	s     *Scenario

	// pruned is set when the execution was cut at a crash boundary
	// another prefix owns.
	pruned bool
	// unfingerprintable is set when a registered device does not
	// implement machine.Fingerprinter; the run proceeds without dedup
	// and the report flags DedupActive=false.
	unfingerprintable bool
}

// boundaryPrune is called immediately after Machine.CrashReset. It
// computes the crash-boundary fingerprint and reports whether this
// execution should stop here because the boundary's recovery subtree is
// owned by a different choice prefix.
func (dd *dedupRun) boundaryPrune(m *machine.Machine, w any, h *Harness, rec *scheduleRecorder, rpc *randPolicyChooser, crashesLeft int) bool {
	b := make([]byte, 0, 512)
	b, ok := m.AppendDurable(b)
	if !ok {
		dd.unfingerprintable = true
		return false
	}
	b = dd.s.Fingerprint(w, b)
	// Budgets and counters the suffix depends on: the machine's step
	// budget is cumulative across eras, the rand policy is indexed by
	// call number, and the refinement judgment depends on the whole
	// history so far (pending operations included).
	b = machine.AppendUint64(b, uint64(m.Steps()))
	b = machine.AppendUint64(b, uint64(crashesLeft))
	calls := 0
	if rpc != nil {
		calls = rpc.calls
	}
	b = machine.AppendUint64(b, uint64(calls))
	b = machine.AppendString(b, h.rec.History().Format())

	fp := fnvBytes(fnvOffset, b)
	owner := fnvOffset
	for _, c := range rec.choices {
		owner = fnvInt(owner, uint64(c))
	}
	if dd.table.claim(fp, owner) {
		return false
	}
	dd.pruned = true
	return true
}
