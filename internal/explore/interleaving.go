package explore

import (
	"fmt"
	"sort"
	"strings"
)

// FormatInterleaving renders a machine trace as one column per thread,
// CHESS-style, so a counterexample's interleaving can be read at a
// glance: each row is one step, placed in its thread's column; scheduler
// events (crash injection, version bumps) span the full width.
func FormatInterleaving(trace []string) string {
	type step struct {
		tid  int // -1 for scheduler/global lines
		text string
	}
	var steps []step
	tids := map[int]bool{}
	for _, line := range trace {
		var tid int
		var rest string
		if n, _ := fmt.Sscanf(line, "t%d:", &tid); n == 1 {
			if idx := strings.Index(line, ": "); idx >= 0 {
				rest = line[idx+2:]
			}
			steps = append(steps, step{tid: tid, text: rest})
			tids[tid] = true
		} else {
			steps = append(steps, step{tid: -1, text: line})
		}
	}
	if len(tids) == 0 {
		return strings.Join(trace, "\n") + "\n"
	}

	order := make([]int, 0, len(tids))
	for t := range tids {
		order = append(order, t)
	}
	sort.Ints(order)
	col := map[int]int{}
	for i, t := range order {
		col[t] = i
	}

	const width = 28
	var b strings.Builder
	for _, t := range order {
		fmt.Fprintf(&b, "%-*s", width, fmt.Sprintf("thread %d", t))
	}
	b.WriteString("\n")
	for range order {
		fmt.Fprintf(&b, "%-*s", width, strings.Repeat("-", width-2))
	}
	b.WriteString("\n")
	for _, s := range steps {
		if s.tid == -1 {
			fmt.Fprintf(&b, "%s\n", center(s.text, width*len(order)))
			continue
		}
		for i := range order {
			if i == col[s.tid] {
				fmt.Fprintf(&b, "%-*s", width, truncate(s.text, width-2))
			} else {
				fmt.Fprintf(&b, "%-*s", width, "")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}

func center(s string, width int) string {
	s = "== " + s + " =="
	if len(s) >= width {
		return s
	}
	pad := (width - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}
