package explore

import (
	"fmt"
	"strings"

	"repro/internal/machine"
)

// StepKind classifies one structured schedule step.
type StepKind int

const (
	// StepThread: a scheduling choice ran one atomic step of a thread.
	StepThread StepKind = iota
	// StepCrash: the scheduler injected a crash, ending the era.
	StepCrash
	// StepChoice: a non-scheduling choice (tag "rand", "fault",
	// "diskfail", ...) was resolved, either by the search or by the
	// scenario's RandPolicy.
	StepChoice
	// StepEra: an era boundary (init, main, recovery, post). Not a
	// machine step; it groups the steps that follow.
	StepEra
)

// TraceStep is one entry of a structured schedule: exactly what the
// checker decided at one choice point, in execution order. A schedule
// is the replayable form of a counterexample — feed Counterexample
// .Choices back through Replay/ReplayCx to re-execute it.
type TraceStep struct {
	Kind StepKind
	// Thread is the thread that stepped (StepThread only).
	Thread machine.TID
	// Tag is the choice tag (StepChoice) or the era label (StepEra).
	Tag string
	// N is the number of options offered; Chosen the option taken.
	// For StepEra both are zero.
	N      int
	Chosen int
}

// String renders one step compactly.
func (s TraceStep) String() string {
	switch s.Kind {
	case StepThread:
		return fmt.Sprintf("run t%d (option %d of %d)", s.Thread, s.Chosen, s.N)
	case StepCrash:
		return fmt.Sprintf("CRASH injected (option %d of %d)", s.Chosen, s.N)
	case StepChoice:
		return fmt.Sprintf("choose %s = %d of %d", s.Tag, s.Chosen, s.N)
	case StepEra:
		return fmt.Sprintf("-- era: %s --", s.Tag)
	default:
		return fmt.Sprintf("step kind %d", int(s.Kind))
	}
}

// Schedule is the full decision sequence of one execution.
type Schedule []TraceStep

// Format renders the schedule step by step, with consecutive
// same-thread steps run-length-compressed so long counterexamples stay
// readable.
func (sc Schedule) Format() string {
	var b strings.Builder
	i := 0
	for i < len(sc) {
		s := sc[i]
		if s.Kind == StepThread {
			j := i
			for j+1 < len(sc) && sc[j+1].Kind == StepThread && sc[j+1].Thread == s.Thread {
				j++
			}
			if j > i {
				fmt.Fprintf(&b, "  run t%d for %d steps\n", s.Thread, j-i+1)
				i = j + 1
				continue
			}
		}
		fmt.Fprintf(&b, "  %s\n", s)
		i++
	}
	return b.String()
}

// Crashes counts the injected crashes in the schedule.
func (sc Schedule) Crashes() int {
	n := 0
	for _, s := range sc {
		if s.Kind == StepCrash {
			n++
		}
	}
	return n
}

// scheduleRecorder sits at the inner-chooser position of runOne's
// chooser chain and doubles as the machine Observer. It records (a) the
// raw choice sequence, aligned with what ScriptChooser replays, and (b)
// the structured schedule, including RandPolicy-resolved choices that
// are NOT part of the replayable sequence.
//
// The machine calls Choose("sched") first and reports the meaning of
// the chosen option (Scheduled / CrashInjected) immediately after, so
// the recorder appends a placeholder thread step on "sched" and the
// observer callback fills it in.
type scheduleRecorder struct {
	inner   machine.Chooser
	choices []int
	steps   Schedule
}

// Choose implements machine.Chooser.
func (r *scheduleRecorder) Choose(n int, tag string) int {
	c := r.inner.Choose(n, tag)
	r.choices = append(r.choices, c)
	if tag == "sched" {
		// Thread identity arrives via the Observer callback.
		r.steps = append(r.steps, TraceStep{Kind: StepThread, Thread: -1, N: n, Chosen: c})
	} else {
		r.steps = append(r.steps, TraceStep{Kind: StepChoice, Tag: tag, N: n, Chosen: c})
	}
	return c
}

// Scheduled implements machine.Observer.
func (r *scheduleRecorder) Scheduled(tid machine.TID) {
	if last := len(r.steps) - 1; last >= 0 && r.steps[last].Kind == StepThread {
		r.steps[last].Thread = tid
	}
}

// CrashInjected implements machine.Observer.
func (r *scheduleRecorder) CrashInjected() {
	if last := len(r.steps) - 1; last >= 0 && r.steps[last].Kind == StepThread {
		r.steps[last].Kind = StepCrash
	}
}

// policyChoice records a RandPolicy-resolved choice: part of the
// structured schedule, not of the replayable choice sequence (replay
// re-applies the policy itself).
func (r *scheduleRecorder) policyChoice(n, chosen int) {
	r.steps = append(r.steps, TraceStep{Kind: StepChoice, Tag: "rand(policy)", N: n, Chosen: chosen})
}

// era marks an era boundary in the schedule.
func (r *scheduleRecorder) era(label string) {
	r.steps = append(r.steps, TraceStep{Kind: StepEra, Tag: label})
}
