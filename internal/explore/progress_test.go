package explore

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/machine"
)

// TestProgressDeterminism is the acceptance check for -progress:
// verdicts, counterexamples, and execution counts must be byte-
// identical with and without telemetry, because the sampler only reads
// counters the search maintains unconditionally.
func TestProgressDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() *Scenario
	}{
		{"clean", func() *Scenario { return fingerprinted(true, true) }},
		{"buggy", func() *Scenario {
			s := fingerprinted(true, true)
			s.Recover = func(t *machine.T, wAny any) {} // broken recovery
			return s
		}},
	} {
		run := func(progress bool) (string, int) {
			opts := Options{MaxExecutions: 5000, Workers: 4}
			var snaps int
			var mu sync.Mutex
			if progress {
				opts.Progress = &ProgressOptions{
					Every: time.Millisecond,
					Sink: func(s Snapshot) {
						mu.Lock()
						snaps++
						mu.Unlock()
					},
				}
			}
			rep := Run(tc.mk(), opts)
			out := rep.String()
			if rep.Counterexample != nil {
				// Canonicalize via Minimize like the determinism
				// satellite does: the preorder-least candidate is
				// already deterministic, Minimize just keeps the
				// comparison readable on failure.
				out += "\n" + fmt.Sprint(Minimize(tc.mk(), rep.Counterexample.Choices))
			}
			return out, snaps
		}
		plain, _ := run(false)
		traced, snaps := run(true)
		if plain != traced {
			t.Errorf("%s: report changed under -progress:\nwithout: %s\nwith:    %s", tc.name, plain, traced)
		}
		if snaps == 0 {
			t.Errorf("%s: no snapshots emitted (final snapshot missing)", tc.name)
		}
	}
}

// TestProgressSnapshotContents checks the snapshot fields fill in and
// the final snapshot closes the stream.
func TestProgressSnapshotContents(t *testing.T) {
	var mu sync.Mutex
	var snaps []Snapshot
	rep := Run(fingerprinted(true, true), Options{
		MaxExecutions: 5000,
		Workers:       2,
		Progress: &ProgressOptions{
			Every: time.Millisecond,
			Sink: func(s Snapshot) {
				mu.Lock()
				snaps = append(snaps, s)
				mu.Unlock()
			},
		},
	})
	if !rep.OK() || !rep.Complete {
		t.Fatalf("scenario should pass completely: %s", rep)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots")
	}
	last := snaps[len(snaps)-1]
	if !last.Final {
		t.Errorf("last snapshot not final: %+v", last)
	}
	for i, s := range snaps[:len(snaps)-1] {
		if s.Final {
			t.Errorf("snapshot %d marked final before the end", i)
		}
	}
	if last.Scenario == "" {
		t.Errorf("scenario name missing: %+v", last)
	}
	if last.Phase != "systematic" {
		t.Errorf("phase: %q", last.Phase)
	}
	if last.Executions != int64(rep.Executions) {
		t.Errorf("final snapshot executions %d, report says %d", last.Executions, rep.Executions)
	}
	if int64(rep.Stats.PrunedStates) != last.Pruned {
		t.Errorf("final snapshot pruned %d, report says %d", last.Pruned, rep.Stats.PrunedStates)
	}
	if len(last.Donations) != 2 {
		t.Errorf("donations per worker: %v", last.Donations)
	}
	if last.DepthP99 <= 0 {
		t.Errorf("depth quantiles empty: %+v", last)
	}
	// The one-line rendering carries the load-bearing numbers.
	line := last.String()
	for _, want := range []string{"systematic", "execs", "depth", "[final]"} {
		if !strings.Contains(line, want) {
			t.Errorf("snapshot line missing %q: %s", want, line)
		}
	}
}
