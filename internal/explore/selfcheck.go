package explore

import "fmt"

// SelfCheckDedup is the mechanical witness for the dedup soundness
// argument (DESIGN.md §5): it runs the scenario's systematic search
// twice at the same budget — once with crash-boundary dedup off, once
// with it on — and fails when the two runs disagree on the verdict
// (violation found or not) or on completeness. For searches that run to
// completion this is exactly the property dedup must preserve; for
// budget-bounded searches both runs carry only the weaker bounded
// claim, and the check still catches a dedup table that hides a
// violation the undeduped search finds within budget.
//
// When both runs find a counterexample, each is additionally replayed
// to confirm it reproduces. Stress is disabled for both runs (dedup
// only affects the systematic phase). The returned reports let callers
// print the coverage the table bought (pruned executions, distinct
// boundaries).
func SelfCheckDedup(s *Scenario, opts Options) (with, without *Report, err error) {
	if s.Fingerprint == nil {
		return nil, nil, fmt.Errorf("scenario %s has no Fingerprint hook; dedup never activates", s.Name)
	}
	opts.StressExecutions = 0

	off := opts
	off.NoDedup = true
	without = Run(s, off)

	on := opts
	on.NoDedup = false
	with = Run(s, on)

	if !with.Stats.DedupActive {
		return with, without, fmt.Errorf("scenario %s: dedup did not activate (a device is not fingerprintable?)", s.Name)
	}
	if with.OK() != without.OK() {
		return with, without, fmt.Errorf("scenario %s: verdict changed by dedup: without=%s with=%s",
			s.Name, verdict(without), verdict(with))
	}
	if with.Complete != without.Complete {
		return with, without, fmt.Errorf("scenario %s: completeness changed by dedup: without complete=%v, with complete=%v",
			s.Name, without.Complete, with.Complete)
	}
	for _, r := range []*Report{without, with} {
		if r.Counterexample != nil && ReplayCx(s, r.Counterexample.Choices) == nil {
			return with, without, fmt.Errorf("scenario %s: counterexample %v does not replay", s.Name, r.Counterexample.Choices)
		}
	}
	return with, without, nil
}

func verdict(r *Report) string {
	if r.OK() {
		return "OK"
	}
	return "VIOLATION"
}
