package explore

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/tsl"
)

// exampleSpec is a sequential spec for a durable write-once cell: set(v)
// installs v, get() returns it, and a crash loses nothing.
func exampleSpec() spec.Interface {
	return &spec.TSL[int]{
		SpecName: "cell",
		Initial:  0,
		OpTransition: func(op spec.Op) tsl.Transition[int, spec.Ret] {
			switch o := op.(type) {
			case opSet:
				return tsl.Then(
					tsl.Modify(func(int) int { return o.v }),
					tsl.Ret[int, spec.Ret](nil))
			case opGet:
				return tsl.Gets(func(s int) spec.Ret { return s })
			default:
				panic("bad op")
			}
		},
	}
}

// exampleScenario is a cell stored as two halves, so a crash between
// the two writes tears it. withRecovery decides whether recovery rolls
// a torn write back — without it, the implementation does not refine
// the spec and the checker must find a counterexample.
func exampleScenario(withRecovery bool) *Scenario {
	s := &Scenario{
		Name:        "cell",
		Spec:        exampleSpec(),
		MachineOpts: machine.Options{MaxSteps: 100},
		MaxCrashes:  1,
		Setup:       func(m *machine.Machine) any { return &world{} },
		Main: func(t *machine.T, wAny any, h *Harness) {
			w := wAny.(*world)
			t.Go(func(c *machine.T) {
				h.Op(opSet{v: 7}, func() spec.Ret {
					c.Step("write-hi")
					w.hi = 7
					c.Step("write-lo")
					w.lo = 7
					return nil
				})
			})
		},
		Post: func(t *machine.T, wAny any, h *Harness) {
			w := wAny.(*world)
			t.Go(func(c *machine.T) {
				h.Op(opGet{}, func() spec.Ret {
					c.Step("read")
					if w.lo != w.hi {
						return -1 // torn
					}
					return w.hi
				})
			})
		},
	}
	if withRecovery {
		s.Recover = func(t *machine.T, wAny any) {
			w := wAny.(*world)
			if w.hi != w.lo {
				w.hi, w.lo = 0, 0 // roll the torn write back
			}
		}
	}
	return s
}

// ExampleRun explores a crash-safe torn-write cell: every interleaving
// and crash point is enumerated, and recovery rolls torn writes back,
// so the search completes with no counterexample. Workers is pinned to
// 1 so the report is byte-stable; production callers leave it 0
// (GOMAXPROCS).
func ExampleRun() {
	rep := Run(exampleScenario(true), Options{Workers: 1})
	fmt.Println(rep.String())
	// Output:
	// cell: OK (6 executions, 5 crashed, complete, 28 checker states)
}

// ExampleReplayCx checks a buggy variant (no recovery, so a crash can
// leave the cell torn), minimizes the counterexample's choice sequence,
// and replays it deterministically to recover the full trace.
func ExampleReplayCx() {
	s := exampleScenario(false)
	rep := Run(s, Options{Workers: 1})
	fmt.Println(rep.OK())

	min := Minimize(s, rep.Counterexample.Choices)
	cx := ReplayCx(s, min)
	fmt.Println(cx.Reason)
	fmt.Printf("choices: %v\n", cx.Choices)
	// Output:
	// false
	// refinement failure: no linearization found: search stuck before event 3 (return 1: get() -> -1) in history:
	//   0  invoke 0: set(7)
	//   1  crash
	//   2  invoke 1: get()
	//   3  return 1: get() -> -1
	//
	// choices: [0 0 0 0 1 0 0 0 0]
}
