package explore

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/machine"
)

// brokenScenario is the torn-write register with recovery disabled —
// the standing source of a real counterexample for these tests.
func brokenScenario() *Scenario {
	s := scenario(true, true)
	s.Recover = func(t *machine.T, wAny any) {}
	return s
}

func TestCounterexampleCarriesSchedule(t *testing.T) {
	rep := Run(brokenScenario(), Options{MaxExecutions: 1000})
	if rep.OK() {
		t.Fatal("torn write not caught")
	}
	cx := rep.Counterexample
	if len(cx.Schedule) == 0 {
		t.Fatal("counterexample has no structured schedule")
	}
	if got := cx.Schedule.Crashes(); got < 1 {
		t.Fatalf("schedule records %d crashes, want >= 1", got)
	}
	var sawThread, sawMain, sawRecovery bool
	for _, st := range cx.Schedule {
		switch {
		case st.Kind == StepThread:
			if st.Thread < 0 {
				t.Fatalf("thread step with unresolved thread id: %+v", st)
			}
			sawThread = true
		case st.Kind == StepEra && st.Tag == "main":
			sawMain = true
		case st.Kind == StepEra && st.Tag == "recovery":
			sawRecovery = true
		}
	}
	if !sawThread || !sawMain || !sawRecovery {
		t.Fatalf("schedule missing expected steps (thread=%v main=%v recovery=%v):\n%s",
			sawThread, sawMain, sawRecovery, cx.Schedule.Format())
	}
	body := cx.Format()
	for _, want := range []string{"schedule (", "CRASH injected", "-- era: main --"} {
		if !strings.Contains(body, want) {
			t.Errorf("Format() missing %q:\n%s", want, body)
		}
	}
}

func TestReplayCxReproducesSchedule(t *testing.T) {
	s := brokenScenario()
	rep := Run(s, Options{MaxExecutions: 1000})
	if rep.OK() {
		t.Fatal("torn write not caught")
	}
	cx := rep.Counterexample
	cx2 := ReplayCx(s, cx.Choices)
	if cx2 == nil {
		t.Fatal("replay of counterexample choices did not fail")
	}
	if cx2.Reason != cx.Reason {
		t.Fatalf("replay reason %q, original %q", cx2.Reason, cx.Reason)
	}
	if fmt.Sprint(cx2.Schedule) != fmt.Sprint(cx.Schedule) {
		t.Fatalf("replayed schedule differs:\noriginal:\n%s\nreplay:\n%s",
			cx.Schedule.Format(), cx2.Schedule.Format())
	}
}

func TestRunPopulatesStats(t *testing.T) {
	rep := Run(scenario(true, false), Options{MaxExecutions: 1000})
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	st := rep.Stats
	if st.Duration <= 0 {
		t.Errorf("Duration = %v, want > 0", st.Duration)
	}
	if st.ExecsPerSec <= 0 || st.StatesPerSec <= 0 {
		t.Errorf("rates not derived: %+v", st)
	}
	_, counts := st.Depth.Snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != uint64(rep.Executions) {
		t.Errorf("depth histogram holds %d observations, want %d", total, rep.Executions)
	}
	if !strings.Contains(st.String(), "execs/s") {
		t.Errorf("Stats.String() = %q", st.String())
	}
}

func TestParallelStressSharesDepthHistogram(t *testing.T) {
	rep := Run(scenario(true, false), Options{
		MaxExecutions:     1, // skip past the systematic phase quickly
		StressExecutions:  40,
		StressParallelism: 4,
	})
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	_, counts := rep.Stats.Depth.Snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != uint64(rep.Executions) {
		t.Errorf("depth histogram holds %d observations, want %d", total, rep.Executions)
	}
}

func TestScheduleFormatCompressesRuns(t *testing.T) {
	sc := Schedule{
		{Kind: StepEra, Tag: "main"},
		{Kind: StepThread, Thread: 1, N: 3, Chosen: 1},
		{Kind: StepThread, Thread: 1, N: 3, Chosen: 1},
		{Kind: StepThread, Thread: 1, N: 3, Chosen: 1},
		{Kind: StepChoice, Tag: "fault", N: 2, Chosen: 1},
		{Kind: StepCrash, N: 4, Chosen: 3},
	}
	got := sc.Format()
	for _, want := range []string{
		"-- era: main --",
		"run t1 for 3 steps",
		"choose fault = 1 of 2",
		"CRASH injected (option 3 of 4)",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("Format() missing %q:\n%s", want, got)
		}
	}
	if strings.Count(got, "run t1") != 1 {
		t.Errorf("thread run not compressed:\n%s", got)
	}
}
