package explore

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/machine"
)

// fingerprinted returns the register scenario opted into crash-boundary
// dedup: the world's two halves are its only crash-surviving state.
func fingerprinted(durable, tearable bool) *Scenario {
	s := scenario(durable, tearable)
	s.Fingerprint = func(wAny any, b []byte) []byte {
		w := wAny.(*world)
		b = machine.AppendUint64(b, uint64(w.hi))
		return machine.AppendUint64(b, uint64(w.lo))
	}
	return s
}

// convergent builds a scenario whose schedules genuinely converge at
// crash boundaries: two racing writers with equal step counts open and
// close transient windows (lo=1 between A's steps, hi=1 between B's),
// so different interleavings reach boundaries that agree on everything
// the fingerprint hashes except (with an honest hook) the register
// halves. With buggy=true, recovery turns the hi==1 && lo==1 overlap
// into the poison value 99, which the invariant rejects — a violation
// reachable only by crashing inside both windows at once, which never
// happens on the DFS spine (A runs to completion first, closing its
// window before B opens one). An unsound fingerprint that omits the
// registers therefore lets the spine's boundary claim the table slot
// and prune the only violating subtrees.
func convergent(buggy, honest bool) *Scenario {
	s := &Scenario{
		Name:        "convergent",
		Spec:        regSpec(true),
		MachineOpts: machine.Options{MaxSteps: 200},
		MaxCrashes:  1,
		Setup:       func(m *machine.Machine) any { return &world{} },
		Main: func(t *machine.T, wAny any, h *Harness) {
			w := wAny.(*world)
			t.Go(func(c *machine.T) {
				c.Step("a1")
				w.lo = 1
				c.Step("a2")
				w.lo = 0
			})
			t.Go(func(c *machine.T) {
				c.Step("b1")
				w.hi = 1
				c.Step("b2")
				w.hi = 0
			})
		},
	}
	if buggy {
		s.Recover = func(t *machine.T, wAny any) {
			w := wAny.(*world)
			if w.hi == 1 && w.lo == 1 {
				w.hi = 99
			}
		}
		s.Invariant = func(m *machine.Machine, wAny any) error {
			if w := wAny.(*world); w.hi == 99 {
				return fmt.Errorf("poison value after recovery")
			}
			return nil
		}
	}
	if honest {
		s.Fingerprint = func(wAny any, b []byte) []byte {
			w := wAny.(*world)
			b = machine.AppendUint64(b, uint64(w.hi))
			return machine.AppendUint64(b, uint64(w.lo))
		}
	} else {
		// Deliberately unsound: omits the registers, so boundaries that
		// differ only in w.hi/w.lo collapse.
		s.Fingerprint = func(wAny any, b []byte) []byte { return b }
	}
	return s
}

// TestWorkerCountDeterminism is the determinism satellite: for a fixed
// scenario, 1-worker and N-worker searches — dedup off and on — must
// report the same verdict, and for failing scenarios the same
// counterexample schedule after Minimize.
func TestWorkerCountDeterminism(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *Scenario
		want bool // want a violation
	}{
		{"clean", func() *Scenario { return fingerprinted(true, true) }, false},
		{"buggy", func() *Scenario {
			s := fingerprinted(true, true)
			s.Recover = func(t *machine.T, wAny any) {} // broken recovery
			return s
		}, true},
	}
	for _, tc := range cases {
		var minimized []string
		var schedules []string
		for _, workers := range []int{1, 4} {
			for _, nodedup := range []bool{false, true} {
				rep := Run(tc.mk(), Options{MaxExecutions: 5000, Workers: workers, NoDedup: nodedup})
				label := fmt.Sprintf("%s workers=%d nodedup=%v", tc.name, workers, nodedup)
				if rep.OK() == tc.want {
					t.Fatalf("%s: verdict flipped (violation=%v)", label, !rep.OK())
				}
				if rep.Counterexample == nil {
					if !rep.Complete {
						t.Fatalf("%s: search did not complete", label)
					}
					continue
				}
				min := Minimize(tc.mk(), rep.Counterexample.Choices)
				minimized = append(minimized, fmt.Sprint(min))
				cx := ReplayCx(tc.mk(), min)
				if cx == nil {
					t.Fatalf("%s: minimized counterexample does not replay", label)
				}
				schedules = append(schedules, cx.Schedule.Format())
			}
		}
		for i := 1; i < len(minimized); i++ {
			if minimized[i] != minimized[0] {
				t.Fatalf("%s: minimized counterexamples differ:\n%s\n%s", tc.name, minimized[0], minimized[i])
			}
			if schedules[i] != schedules[0] {
				t.Fatalf("%s: minimized schedules differ:\n%s\n%s", tc.name, schedules[0], schedules[i])
			}
		}
	}
}

// TestParallelPartitionCoversWholeSpace checks that donated jobs
// partition the choice tree exactly: a complete N-worker search without
// dedup explores the same number of executions as the sequential DFS.
func TestParallelPartitionCoversWholeSpace(t *testing.T) {
	seq := Run(scenario(true, true), Options{MaxExecutions: 5000, Workers: 1})
	for _, workers := range []int{2, 4, 7} {
		par := Run(scenario(true, true), Options{MaxExecutions: 5000, Workers: workers})
		if !seq.Complete || !par.Complete {
			t.Fatal("space not exhausted")
		}
		if par.Executions != seq.Executions {
			t.Fatalf("workers=%d explored %d executions, sequential %d",
				workers, par.Executions, seq.Executions)
		}
		if got := par.Stats.Workers; got != workers {
			t.Fatalf("Stats.Workers=%d, want %d", got, workers)
		}
		if len(par.Stats.PerWorker) != workers {
			t.Fatalf("PerWorker has %d entries, want %d", len(par.Stats.PerWorker), workers)
		}
		total := 0
		for _, ws := range par.Stats.PerWorker {
			total += ws.Executions
		}
		if total != par.Executions {
			t.Fatalf("per-worker executions sum to %d, report says %d", total, par.Executions)
		}
	}
}

// TestSplitShallowestPartitionsExactly drives the donation mechanics
// directly: after a split, the donor plus the donated jobs enumerate
// every leaf of a known tree exactly once.
func TestSplitShallowestPartitionsExactly(t *testing.T) {
	walk := func(d *dfsChooser, seen map[string]int) {
		for {
			d.reset()
			a := d.Choose(3, "x")
			b := d.Choose(2, "y")
			seen[fmt.Sprintf("%d%d", a, b)]++
			if !d.next() {
				return
			}
		}
	}

	d := &dfsChooser{}
	seen := map[string]int{}
	// Run the first execution, then donate at the shallowest point.
	d.reset()
	a := d.Choose(3, "x")
	b := d.Choose(2, "y")
	seen[fmt.Sprintf("%d%d", a, b)]++
	jobs := d.splitShallowest()
	if len(jobs) != 2 { // options 1 and 2 of the first point
		t.Fatalf("jobs=%v", jobs)
	}
	if !d.next() {
		t.Fatal("donor subtree exhausted prematurely")
	}
	walk(d, seen)
	for _, j := range jobs {
		jd := &dfsChooser{}
		jd.seed(j)
		walk(jd, seen)
	}
	if len(seen) != 6 {
		t.Fatalf("leaves covered: %v", seen)
	}
	for leaf, n := range seen {
		if n != 1 {
			t.Fatalf("leaf %s explored %d times", leaf, n)
		}
	}
}

// TestDedupPrunesConvergentBoundaries checks the table actually prunes:
// the clean convergent scenario's interleavings collapse at crash
// boundaries, and the verdict and completeness survive.
func TestDedupPrunesConvergentBoundaries(t *testing.T) {
	off := Run(convergent(false, true), Options{MaxExecutions: 50000, Workers: 1, NoDedup: true})
	on := Run(convergent(false, true), Options{MaxExecutions: 50000, Workers: 1})
	if !off.OK() || !on.OK() {
		t.Fatal("clean scenario reported a violation")
	}
	if !off.Complete || !on.Complete {
		t.Fatal("search did not complete")
	}
	if !on.Stats.DedupActive {
		t.Fatal("dedup inactive despite Fingerprint hook")
	}
	if on.Stats.PrunedStates == 0 {
		t.Fatal("no boundaries pruned in a convergent scenario")
	}
	if on.Stats.DistinctBoundaries == 0 {
		t.Fatal("no distinct boundaries recorded")
	}
	if on.Executions > off.Executions {
		t.Fatalf("dedup increased executions: %d > %d", on.Executions, off.Executions)
	}
}

// TestSelfCheckCatchesUnsoundFingerprint is the negative control for
// the self-check mode: a fingerprint hook that omits crash-surviving
// state lets dedup prune the only failing subtrees (the crash boundary
// inside both transient windows, which never lies on the DFS spine),
// and SelfCheckDedup must report the verdict change.
func TestSelfCheckCatchesUnsoundFingerprint(t *testing.T) {
	if _, _, err := SelfCheckDedup(convergent(true, true), Options{MaxExecutions: 50000, Workers: 1}); err != nil {
		t.Fatalf("honest fingerprint flagged: %v", err)
	}
	if _, _, err := SelfCheckDedup(convergent(true, false), Options{MaxExecutions: 50000, Workers: 1}); err == nil {
		t.Fatal("unsound fingerprint not caught by the self-check")
	}
}

// TestDedupInactiveWithoutHook: scenarios that do not opt in must run
// exactly as before, with DedupActive=false.
func TestDedupInactiveWithoutHook(t *testing.T) {
	rep := Run(scenario(true, true), Options{MaxExecutions: 5000})
	if rep.Stats.DedupActive {
		t.Fatal("dedup active without a Fingerprint hook")
	}
	if rep.Stats.PrunedStates != 0 {
		t.Fatalf("pruned %d states without a hook", rep.Stats.PrunedStates)
	}
}

// TestStressStatsCountUniqueExecutions is the regression test for the
// execs/sec double-count: parallel stress used to count executions that
// raced past the winning counterexample's offset, inflating Executions
// and the throughput rate nondeterministically. Both must now reflect
// unique contributing executions only, matching the sequential count.
func TestStressStatsCountUniqueExecutions(t *testing.T) {
	mk := func() *Scenario {
		s := scenario(true, true)
		s.Recover = func(t *machine.T, wAny any) {} // broken recovery
		return s
	}
	seq := Run(mk(), Options{MaxExecutions: 1, StressExecutions: 500, StressSeed: 11})
	par := Run(mk(), Options{MaxExecutions: 1, StressExecutions: 500, StressSeed: 11, StressParallelism: 4})
	if seq.OK() || par.OK() {
		t.Fatal("stress did not find the seeded bug")
	}
	if seq.Stats.StressDiscarded != 0 {
		t.Fatalf("sequential stress discarded %d", seq.Stats.StressDiscarded)
	}
	if par.Executions != seq.Executions {
		t.Fatalf("parallel stress counted %d executions, sequential %d (discarded retries leaked in?)",
			par.Executions, seq.Executions)
	}
	// The rate is derived from the deduplicated count.
	if sec := par.Stats.Duration.Seconds(); sec > 0 {
		want := float64(par.Executions) / sec
		if math.Abs(par.Stats.ExecsPerSec-want) > 1e-6*want+1e-9 {
			t.Fatalf("ExecsPerSec=%f, want %f", par.Stats.ExecsPerSec, want)
		}
	}
}

// TestBudgetSharedAcrossWorkers: the execution budget is claimed per
// execution, so the count is exact regardless of worker count.
func TestBudgetSharedAcrossWorkers(t *testing.T) {
	full := Run(convergent(false, true), Options{MaxExecutions: 50000, Workers: 1, NoDedup: true})
	if !full.Complete || full.Executions < 3 {
		t.Fatalf("want a completed search of ≥3 executions, got complete=%v n=%d", full.Complete, full.Executions)
	}
	budget := full.Executions - 1
	for _, workers := range []int{1, 4} {
		rep := Run(convergent(false, true), Options{MaxExecutions: budget, Workers: workers, NoDedup: true})
		if rep.Complete {
			t.Fatalf("workers=%d: %d executions cannot exhaust a %d-execution space",
				workers, budget, full.Executions)
		}
		if rep.Executions != budget {
			t.Fatalf("workers=%d ran %d executions, budget was %d", workers, rep.Executions, budget)
		}
	}
}
