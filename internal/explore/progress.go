package explore

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ProgressOptions enables live progress telemetry for a long-running
// search: every Every, a Snapshot assembled from the pool's lock-free
// counters is handed to Sink, and a final snapshot is always emitted
// when the systematic phase ends (so short runs still report once).
//
// Reporting is read-only by construction — the sampler only loads
// atomics and quantile-reads the shared depth histogram, and the
// search never blocks on or branches over it — so verdicts,
// counterexamples, and execution counts are identical with and
// without progress enabled.
type ProgressOptions struct {
	// Every is the sampling period; 0 means 1s.
	Every time.Duration
	// Sink receives each snapshot. nil disables telemetry.
	Sink func(Snapshot)
}

// Snapshot is one progress sample of the systematic search.
type Snapshot struct {
	// Scenario is the scenario name.
	Scenario string
	// Phase is the search phase being sampled ("systematic").
	Phase string
	// Elapsed is wall-clock time since the phase started.
	Elapsed time.Duration
	// Executions is the number of executions started so far.
	Executions int64
	// ExecsPerSec is the execution rate over the last sampling
	// interval (not the lifetime average).
	ExecsPerSec float64
	// DepthP50 and DepthP99 are quantiles of the choice-sequence depth
	// of executions so far — the frontier's depth profile.
	DepthP50, DepthP99 float64
	// Pruned counts executions cut at an already-claimed crash
	// boundary; DedupHitRate is Pruned over Executions.
	Pruned       int64
	DedupHitRate float64
	// Donations is each worker's count of jobs donated to starving
	// peers — a flat profile means the partition is balanced.
	Donations []int64
	// BudgetLeft is the remaining execution budget; BudgetETA
	// extrapolates its exhaustion at the current rate (0 when the rate
	// is 0 or the budget already ran out).
	BudgetLeft int64
	BudgetETA  time.Duration
	// Final marks the closing snapshot emitted when the phase ends.
	Final bool
}

// String renders the snapshot as the one-liner perennial-check prints.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s] %5.1fs: %d execs (%.0f/s), depth p50=%.0f p99=%.0f",
		s.Scenario, s.Phase, s.Elapsed.Seconds(), s.Executions, s.ExecsPerSec, s.DepthP50, s.DepthP99)
	if s.Pruned > 0 {
		fmt.Fprintf(&b, ", dedup %.0f%% hit (%d pruned)", s.DedupHitRate*100, s.Pruned)
	}
	if len(s.Donations) > 1 {
		fmt.Fprintf(&b, ", donations %v", s.Donations)
	}
	fmt.Fprintf(&b, ", budget %d left", s.BudgetLeft)
	if s.BudgetETA > 0 {
		fmt.Fprintf(&b, " (~%s)", s.BudgetETA.Round(time.Second))
	}
	if s.Final {
		b.WriteString(" [final]")
	}
	return b.String()
}

// progressLoop samples the pool until stop closes, then emits one
// final snapshot and closes done. It runs off to the side of the
// search: nothing in the pool ever waits for it.
func (p *searchPool) progressLoop(po *ProgressOptions, scenario string, depth *obs.Histogram, stop, done chan struct{}) {
	defer close(done)
	every := po.Every
	if every <= 0 {
		every = time.Second
	}
	start := time.Now()
	lastT := start
	var lastExecs int64
	emit := func(final bool) {
		now := time.Now()
		execs := p.execs.Load()
		pruned := p.pruned.Load()
		snap := Snapshot{
			Scenario:   scenario,
			Phase:      "systematic",
			Elapsed:    now.Sub(start),
			Executions: execs,
			Pruned:     pruned,
			DepthP50:   depth.Quantile(0.50),
			DepthP99:   depth.Quantile(0.99),
			Donations:  make([]int64, len(p.donated)),
			Final:      final,
		}
		if dt := now.Sub(lastT).Seconds(); dt > 0 {
			snap.ExecsPerSec = float64(execs-lastExecs) / dt
		}
		lastT, lastExecs = now, execs
		if execs > 0 {
			snap.DedupHitRate = float64(pruned) / float64(execs)
		}
		for w := range p.donated {
			snap.Donations[w] = p.donated[w].Load()
		}
		if left := atomic.LoadInt64(&p.execsLeft); left > 0 {
			snap.BudgetLeft = left
			if snap.ExecsPerSec > 0 {
				snap.BudgetETA = time.Duration(float64(left) / snap.ExecsPerSec * float64(time.Second))
			}
		}
		po.Sink(snap)
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			emit(false)
		case <-stop:
			emit(true)
			return
		}
	}
}
