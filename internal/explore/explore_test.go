package explore

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/tsl"
)

// A trivially checkable system: a durable register held in harness
// state with machine-step-granular operations, so we can exercise the
// explorer's mechanics in isolation.

type regState struct{ v int }

type opSet struct{ v int }

func (o opSet) String() string { return fmt.Sprintf("set(%d)", o.v) }

type opGet struct{}

func (opGet) String() string { return "get()" }

func regSpec(durable bool) spec.Interface {
	s := &spec.TSL[regState]{
		SpecName: "reg",
		Initial:  regState{},
		OpTransition: func(op spec.Op) tsl.Transition[regState, spec.Ret] {
			switch o := op.(type) {
			case opSet:
				return tsl.Then(
					tsl.Modify(func(regState) regState { return regState{v: o.v} }),
					tsl.Ret[regState, spec.Ret](nil))
			case opGet:
				return tsl.Gets(func(s regState) spec.Ret { return s.v })
			default:
				panic("bad op")
			}
		},
	}
	if !durable {
		s.CrashTransition = func(regState) regState { return regState{} }
	}
	return s
}

// world is a register made of two machine-visible halves so that a
// crash can interrupt a torn write; "durable" halves survive crashes.
type world struct {
	hi, lo int // harness-level durable state
}

func scenario(durable bool, tearable bool) *Scenario {
	return &Scenario{
		Name:        "reg",
		Spec:        regSpec(durable),
		MachineOpts: machine.Options{MaxSteps: 500},
		MaxCrashes:  1,
		Setup:       func(m *machine.Machine) any { return &world{} },
		Main: func(t *machine.T, wAny any, h *Harness) {
			w := wAny.(*world)
			t.Go(func(c *machine.T) {
				h.Op(opSet{v: 7}, func() spec.Ret {
					if tearable {
						c.Step("write-hi")
						w.hi = 7
						c.Step("write-lo")
						w.lo = 7
					} else {
						c.Step("write")
						w.hi, w.lo = 7, 7
					}
					return nil
				})
			})
		},
		Recover: func(t *machine.T, wAny any) {
			w := wAny.(*world)
			if !durable {
				w.hi, w.lo = 0, 0
				return
			}
			// Durable spec + tearable write: roll torn writes back.
			if w.hi != w.lo {
				w.hi, w.lo = 0, 0
			}
		},
		Post: func(t *machine.T, wAny any, h *Harness) {
			w := wAny.(*world)
			h.Op(opGet{}, func() spec.Ret {
				t.Step("read")
				if w.hi == w.lo {
					return w.hi
				}
				return -1 // torn
			})
		},
	}
}

func TestSystematicSearchCompletesSmallSpace(t *testing.T) {
	rep := Run(scenario(true, false), Options{MaxExecutions: 1000})
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Fatalf("small space not exhausted: %s", rep)
	}
	if rep.CrashedExecutions == 0 {
		t.Fatal("crash branch never taken")
	}
}

func TestTornWriteWithRollbackRecoveryIsClean(t *testing.T) {
	rep := Run(scenario(true, true), Options{MaxExecutions: 1000})
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestTornWriteWithoutRecoveryIsCaught(t *testing.T) {
	s := scenario(true, true)
	s.Recover = func(t *machine.T, wAny any) {} // broken recovery
	rep := Run(s, Options{MaxExecutions: 1000})
	if rep.OK() {
		t.Fatal("torn write not caught")
	}
	if !strings.Contains(rep.Counterexample.Reason, "refinement failure") {
		t.Fatalf("reason: %s", rep.Counterexample.Reason)
	}
}

func TestVolatileSpecAcceptsLoss(t *testing.T) {
	rep := Run(scenario(false, false), Options{MaxExecutions: 1000})
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestBudgetBoundedSearchReportsIncomplete(t *testing.T) {
	rep := Run(scenario(true, true), Options{MaxExecutions: 2})
	if rep.Complete {
		t.Fatal("two executions cannot exhaust this space")
	}
	if rep.Executions != 2 {
		t.Fatalf("executions=%d", rep.Executions)
	}
}

func TestStressModeRuns(t *testing.T) {
	rep := Run(scenario(true, false), Options{MaxExecutions: 1, StressExecutions: 50, StressSeed: 3})
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	if rep.Executions != 51 {
		t.Fatalf("executions=%d", rep.Executions)
	}
}

func TestInvariantViolationSurfaces(t *testing.T) {
	s := scenario(true, false)
	s.Invariant = func(m *machine.Machine, wAny any) error {
		w := wAny.(*world)
		if w.hi == 7 {
			return fmt.Errorf("planted invariant failure")
		}
		return nil
	}
	rep := Run(s, Options{MaxExecutions: 1000})
	if rep.OK() {
		t.Fatal("invariant failure not reported")
	}
	if !strings.Contains(rep.Counterexample.Reason, "planted invariant failure") {
		t.Fatalf("reason: %s", rep.Counterexample.Reason)
	}
}

func TestMachineViolationBecomesCounterexample(t *testing.T) {
	s := scenario(true, false)
	s.Main = func(t *machine.T, wAny any, h *Harness) {
		t.Go(func(c *machine.T) {
			c.Failf("planted machine violation")
		})
	}
	rep := Run(s, Options{MaxExecutions: 100})
	if rep.OK() || !strings.Contains(rep.Counterexample.Reason, "planted machine violation") {
		t.Fatalf("rep=%v", rep)
	}
}

func TestReplayReproducesCounterexample(t *testing.T) {
	s := scenario(true, true)
	s.Recover = func(t *machine.T, wAny any) {}
	rep := Run(s, Options{MaxExecutions: 1000})
	if rep.OK() {
		t.Fatal("expected counterexample")
	}
	_, _, reason := Replay(s, rep.Counterexample.Choices)
	if reason == "" {
		t.Fatal("replay did not reproduce the failure")
	}
}

func TestRandPolicyKeepsRandOutOfSearchSpace(t *testing.T) {
	// A scenario whose only nondeterminism is one rand call: with a
	// policy, the systematic space collapses to the schedule choices.
	mk := func(policy func(int, int) int) *Scenario {
		return &Scenario{
			Name:        "rand",
			Spec:        regSpec(true),
			MachineOpts: machine.Options{MaxSteps: 100},
			RandPolicy:  policy,
			Setup:       func(m *machine.Machine) any { return &world{} },
			Main: func(t *machine.T, wAny any, h *Harness) {
				h.Op(opSet{v: 0}, func() spec.Ret {
					t.RandUint64(8)
					wAny.(*world).hi = 0
					return nil
				})
			},
		}
	}
	withPolicy := Run(mk(func(call, n int) int { return 0 }), Options{MaxExecutions: 100})
	without := Run(mk(nil), Options{MaxExecutions: 100})
	if !withPolicy.OK() || !without.OK() {
		t.Fatal("unexpected violations")
	}
	if !withPolicy.Complete {
		t.Fatal("policy search should complete")
	}
	if withPolicy.Executions >= without.Executions {
		t.Fatalf("policy did not shrink the space: %d vs %d",
			withPolicy.Executions, without.Executions)
	}
}

func TestDFSChooserEnumeratesAllSequences(t *testing.T) {
	// Directly drive the dfsChooser over a known choice tree: two
	// choice points with 2 and 3 options → 6 sequences.
	d := &dfsChooser{}
	seen := map[string]bool{}
	for {
		d.reset()
		a := d.Choose(2, "x")
		b := d.Choose(3, "y")
		seen[fmt.Sprintf("%d%d", a, b)] = true
		if !d.next() {
			break
		}
	}
	if len(seen) != 6 {
		t.Fatalf("enumerated %d sequences: %v", len(seen), seen)
	}
}

func TestDFSChooserVariableDepth(t *testing.T) {
	// A tree where option 0 leads to an extra choice point.
	d := &dfsChooser{}
	count := 0
	for {
		d.reset()
		if d.Choose(2, "a") == 0 {
			d.Choose(2, "b")
		}
		count++
		if !d.next() {
			break
		}
	}
	if count != 3 { // 00, 01, 1
		t.Fatalf("count=%d", count)
	}
}

func TestHarnessOpRecordsPendingOnKill(t *testing.T) {
	// A crash during the op leaves it pending (invoke with no return).
	m := machine.New(machine.Options{})
	h := &Harness{}
	crashNow := false
	ch := machine.ChooserFunc(func(n int, tag string) int {
		if tag == "sched" && crashNow {
			return n - 1
		}
		return 0
	})
	res := m.RunEra(ch, true, func(mt *machine.T) {
		h.Op(opSet{v: 1}, func() spec.Ret {
			mt.Step("first")
			crashNow = true
			mt.Step("never-reached-effect-visible")
			mt.Step("third")
			return nil
		})
	})
	if res.Outcome != machine.Crashed {
		t.Fatalf("res=%+v", res)
	}
	hist := h.History()
	if len(hist) != 1 {
		t.Fatalf("history: %v", hist)
	}
	if hist[0].String() != "invoke 0: set(1)" {
		t.Fatalf("event: %v", hist[0])
	}
}

func TestMinimizeShrinksCounterexample(t *testing.T) {
	s := scenario(true, true)
	s.Recover = func(t *machine.T, wAny any) {} // broken recovery
	rep := Run(s, Options{MaxExecutions: 1000})
	if rep.OK() {
		t.Fatal("expected a counterexample")
	}
	min := Minimize(s, rep.Counterexample.Choices)
	if len(min) > len(rep.Counterexample.Choices) {
		t.Fatalf("minimization grew the sequence: %d -> %d",
			len(rep.Counterexample.Choices), len(min))
	}
	// The minimized sequence still fails.
	_, _, reason := Replay(s, min)
	if reason == "" {
		t.Fatal("minimized choices no longer reproduce a failure")
	}
}

func TestMinimizeOnPassingChoicesIsIdentity(t *testing.T) {
	s := scenario(true, false)
	choices := []int{0, 0, 0}
	got := Minimize(s, choices)
	if len(got) != len(choices) {
		t.Fatalf("minimize changed a passing sequence: %v", got)
	}
}

func TestReportAndCounterexampleFormatting(t *testing.T) {
	s := scenario(true, true)
	s.Recover = func(t *machine.T, wAny any) {}
	rep := Run(s, Options{MaxExecutions: 1000})
	if rep.OK() {
		t.Fatal("expected counterexample")
	}
	line := rep.String()
	for _, want := range []string{"reg", "VIOLATION", "executions"} {
		if !strings.Contains(line, want) {
			t.Errorf("report line missing %q: %s", want, line)
		}
	}
	body := rep.Counterexample.Format()
	for _, want := range []string{"reason:", "choices:", "history:", "trace:"} {
		if !strings.Contains(body, want) {
			t.Errorf("counterexample missing %q", want)
		}
	}
	okLine := Run(scenario(true, false), Options{MaxExecutions: 1000}).String()
	if !strings.Contains(okLine, "OK") || !strings.Contains(okLine, "complete") {
		t.Errorf("ok line: %s", okLine)
	}
}

func TestParallelStressFindsBugDeterministically(t *testing.T) {
	mk := func() *Scenario {
		s := scenario(true, true)
		s.Recover = func(t *machine.T, wAny any) {}
		return s
	}
	seq := Run(mk(), Options{MaxExecutions: 1, StressExecutions: 500, StressSeed: 11})
	par := Run(mk(), Options{MaxExecutions: 1, StressExecutions: 500, StressSeed: 11, StressParallelism: 4})
	if seq.OK() || par.OK() {
		t.Fatal("stress did not find the seeded bug")
	}
	// Same smallest failing seed → same counterexample choices.
	if fmt.Sprint(seq.Counterexample.Choices) != fmt.Sprint(par.Counterexample.Choices) {
		t.Fatalf("parallel stress nondeterministic:\n%v\n%v",
			seq.Counterexample.Choices, par.Counterexample.Choices)
	}
}

func TestParallelStressCleanScenario(t *testing.T) {
	rep := Run(scenario(true, false), Options{
		MaxExecutions: 1, StressExecutions: 200, StressSeed: 2, StressParallelism: 3,
	})
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	if rep.Executions < 100 {
		t.Fatalf("executions=%d", rep.Executions)
	}
}

func TestFormatInterleavingColumns(t *testing.T) {
	trace := []string{
		"t0: newlock l",
		"t0: go -> t1",
		"t1: acquire l",
		"scheduler: inject crash",
		"-- crash: memory version now 2 --",
		"t0: recovered",
	}
	out := FormatInterleaving(trace)
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "thread 0") || !strings.Contains(lines[0], "thread 1") {
		t.Fatalf("header: %q", lines[0])
	}
	// t1's step must be indented into the second column.
	var t1Line string
	for _, l := range lines {
		if strings.Contains(l, "acquire l") {
			t1Line = l
		}
	}
	if t1Line == "" || strings.Index(t1Line, "acquire l") < 20 {
		t.Fatalf("t1 step not in second column: %q", t1Line)
	}
	if !strings.Contains(out, "== scheduler: inject crash ==") {
		t.Fatalf("global line not centered:\n%s", out)
	}
}

func TestFormatInterleavingNoThreads(t *testing.T) {
	out := FormatInterleaving([]string{"just a line"})
	if !strings.Contains(out, "just a line") {
		t.Fatalf("out=%q", out)
	}
}

func TestFormatInterleavingTruncatesLongSteps(t *testing.T) {
	long := "t0: " + strings.Repeat("x", 100)
	out := FormatInterleaving([]string{long})
	for _, l := range strings.Split(out, "\n") {
		if len(l) > 40 && strings.Contains(l, "x") {
			t.Fatalf("line not truncated: %d chars", len(l))
		}
	}
}
