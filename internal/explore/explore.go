// Package explore is the executable stand-in for Perennial's Theorem 2
// (recovery forward simulation): a stateless model checker that
// enumerates thread interleavings and crash points of an implementation
// running on the modeled machine, runs the recovery procedure after
// every crash (including crashes during recovery, exercising the
// idempotence side condition of §5.5), and checks every execution's
// history for concurrent recovery refinement against the specification.
//
// Where the paper proves the refinement once for all executions with
// Hoare triples, the explorer checks the same judgment on every
// execution in a bounded space, and the companion capability runtime in
// internal/core enforces the per-step ghost rules (Table 1) along the
// way. A randomized stress mode extends coverage beyond the systematic
// bound.
//
// # Search model
//
// Every source of nondeterminism — which thread steps, whether a crash
// is injected, fault and random choices — is one call to the machine's
// Chooser, so an execution is fully determined by its choice sequence
// and the search space is the tree of those sequences. The systematic
// phase enumerates that tree depth-first, re-executing the scenario
// from scratch for each sequence (stateless search, in the style of
// VeriSoft/CHESS/dBug): a dfsChooser replays a recorded prefix and
// extends it with option 0, then backtracks the deepest choice point
// with untried options.
//
// The enumeration runs on Options.Workers workers (default
// GOMAXPROCS). The tree is partitioned by schedule prefix: each job
// pins a prefix, and a worker that notices starving peers donates the
// untried siblings of its shallowest open choice point as new jobs —
// an exact partition, so no execution is lost or explored twice. Every
// execution builds a fresh machine, so checked code never shares state
// across workers. Counterexamples are canonicalized to the DFS-preorder
// least candidate, which makes verdicts and counterexamples independent
// of worker count for searches that run to completion.
//
// When a Scenario provides a Fingerprint hook (and every registered
// device implements machine.Fingerprinter), revisited crash-boundary
// states are pruned via a lock-striped fingerprint table: after
// CrashReset all volatile state is dead by construction, so the suffix
// behavior is a function of the fingerprinted boundary state and an
// already-enumerated recovery subtree need not be re-explored.
// Options.NoDedup is the escape hatch, and SelfCheckDedup mechanically
// witnesses that pruning does not change a scenario's verdict. See
// DESIGN.md §5 for the soundness argument and docs/CHECKING.md for the
// user-facing handbook.
package explore

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/history"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/spec"
)

// Harness is handed to scenario workloads for recording operations in
// the history. Ops wrap the implementation call so that invocations and
// responses (or the absence of a response when a crash kills the
// thread) are recorded faithfully.
type Harness struct {
	rec history.Recorder
}

// Op records op's invocation, runs impl, and records its response. If a
// crash kills the thread inside impl, the response is never recorded and
// the operation stays pending at the crash, exactly as the checker
// expects.
func (h *Harness) Op(op spec.Op, impl func() spec.Ret) spec.Ret {
	id := h.rec.Invoke(op)
	ret := impl()
	h.rec.Return(id, ret)
	return ret
}

// OpMaybe records op's invocation and runs impl; when impl reports the
// client never got a response (ok=false — e.g. a replicated service
// whose every node is down), no return is recorded and the operation
// stays pending in the history. The checker then treats it exactly as
// an op cut off by a crash: it may have taken effect or not, and no
// response value constrains the spec.
func (h *Harness) OpMaybe(op spec.Op, impl func() (spec.Ret, bool)) (spec.Ret, bool) {
	id := h.rec.Invoke(op)
	ret, ok := impl()
	if ok {
		h.rec.Return(id, ret)
	}
	return ret, ok
}

// History exposes the recorded history (for custom scenario checks).
func (h *Harness) History() history.History { return h.rec.History() }

// Scenario describes one checkable system: how to build its world on a
// fresh machine, the concurrent workload, the recovery procedure, and an
// optional post-recovery observation phase.
type Scenario struct {
	// Name identifies the scenario in reports.
	Name string
	// Spec is the specification the history must refine.
	Spec spec.Interface
	// MachineOpts configures each execution's machine.
	MachineOpts machine.Options
	// Setup builds devices and durable state on a fresh machine and
	// returns a world handle passed to the other phases. It runs outside
	// any thread (no machine steps).
	Setup func(m *machine.Machine) any
	// Init runs as a crash-free era before the workload, modeling the
	// paper's requirement that the caller run Init before any operations
	// (§8.1). Crashes are only injected once the workload starts.
	Init func(t *machine.T, w any)
	// Main is the workload era: it runs as thread 0 and typically spawns
	// worker threads that perform harness-recorded operations.
	Main func(t *machine.T, w any, h *Harness)
	// Recover runs as a fresh era after every crash. nil means the system
	// needs no recovery.
	Recover func(t *machine.T, w any)
	// Post runs after the workload (and any crash/recovery cycles) as a
	// crash-free observation era, typically reading back state through
	// harness-recorded operations.
	Post func(t *machine.T, w any, h *Harness)
	// MaxCrashes bounds the number of injected crashes per execution.
	MaxCrashes int
	// RandPolicy, when non-nil, resolves "rand" choices (machine
	// RandUint64 calls) deterministically per call index instead of
	// branching the search on them. Use it for random *name allocation*
	// (Mailboat's spool names): exploring every possible random name
	// multiplies the search space without exercising new logic, and
	// unbounded retry-on-collision loops would otherwise give the DFS an
	// infinite choice tree. A cycling policy (call % n) still exercises
	// the collision-retry path whenever the counter wraps onto a taken
	// name. Applied in systematic, stress, and replay modes alike so
	// counterexample choices stay aligned.
	RandPolicy func(call, n int) int
	// Invariant, if non-nil, is checked between eras (after Setup, after
	// each crash+recovery, and at the end); it may inspect durable state
	// directly. Returning an error is a violation.
	Invariant func(m *machine.Machine, w any) error
	// Fingerprint opts the scenario into crash-boundary state dedup. It
	// must append a canonical encoding of every piece of crash-surviving
	// state the world holds OUTSIDE registered machine devices (fault
	// latches, policy budgets, mirror control state, ...) to b and
	// return it; device state is appended automatically via
	// machine.Fingerprinter. A scenario whose crash-surviving state
	// lives entirely in fingerprintable devices returns b unchanged.
	// nil disables dedup for the scenario (the safe default: dedup with
	// an incomplete fingerprint can unsoundly prune distinct states).
	Fingerprint func(w any, b []byte) []byte
}

// Counterexample captures one failing execution.
type Counterexample struct {
	// Choices is the decision sequence that reproduces the execution
	// (feed it to Replay/ReplayCx or perennial-check -replay).
	Choices []int
	// Schedule is the structured form of the same execution: the exact
	// sequence of thread steps, crash points, and injected-fault /
	// random choices, with era boundaries.
	Schedule Schedule
	// Trace is the machine's event trace.
	Trace []string
	// History is the recorded operation history.
	History history.History
	// Reason describes the failure.
	Reason string
}

// Format renders the counterexample for humans.
func (c *Counterexample) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "reason: %s\n", c.Reason)
	fmt.Fprintf(&b, "choices: %v\n", c.Choices)
	if len(c.Schedule) > 0 {
		fmt.Fprintf(&b, "schedule (%d decisions, %d crash(es)):\n",
			len(c.Schedule), c.Schedule.Crashes())
		b.WriteString(c.Schedule.Format())
	}
	b.WriteString("history:\n")
	b.WriteString(c.History.Format())
	b.WriteString("trace:\n")
	for _, l := range c.Trace {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	return b.String()
}

// Report summarizes an exploration.
type Report struct {
	// Scenario is the scenario name.
	Scenario string
	// Executions is the number of executions run.
	Executions int
	// CrashedExecutions counts executions with at least one crash.
	CrashedExecutions int
	// Complete is true when the systematic search exhausted the whole
	// bounded space (rather than hitting the execution budget).
	Complete bool
	// Counterexample is the first failure found, nil if none.
	Counterexample *Counterexample
	// CheckedStates sums the refinement checker's explored states.
	CheckedStates int
	// Stats carries exploration statistics.
	Stats Stats
}

// Stats summarizes how the exploration went, for tuning budgets and
// spotting pathological scenarios (e.g. a depth histogram skewed to
// the step bound means executions are being truncated, not explored).
type Stats struct {
	// Duration is the wall-clock time of the whole exploration.
	Duration time.Duration
	// ExecsPerSec and StatesPerSec are derived throughput rates over
	// unique explored executions — stress retries that raced past an
	// already-found counterexample are excluded (see StressDiscarded).
	ExecsPerSec  float64
	StatesPerSec float64
	// Depth records the choice-sequence depth of each execution.
	Depth *obs.Histogram
	// Workers is the systematic-phase worker count actually used.
	Workers int
	// DedupActive reports whether crash-boundary dedup ran: the
	// scenario provided a Fingerprint hook, Options.NoDedup was off,
	// and every registered device was fingerprintable.
	DedupActive bool
	// PrunedStates counts executions cut at a crash boundary whose
	// recovery subtree another prefix had already claimed.
	PrunedStates int
	// DistinctBoundaries is the number of distinct crash-boundary
	// fingerprints claimed (the dedup table's size).
	DistinctBoundaries int
	// StressDiscarded counts stress executions that ran concurrently at
	// seed offsets above the winning counterexample's; they are real
	// work but not part of the deterministic result, so Executions and
	// the throughput rates exclude them.
	StressDiscarded int
	// PerWorker is each systematic worker's share of the search.
	PerWorker []WorkerStats
}

// WorkerStats is one worker's share of the systematic search.
type WorkerStats struct {
	// Executions is the number of executions this worker ran.
	Executions int
	// Pruned is how many of them were cut by the dedup table.
	Pruned int
}

// String renders the statistics on one line.
func (st Stats) String() string {
	p50 := st.Depth.Quantile(0.50)
	p99 := st.Depth.Quantile(0.99)
	s := fmt.Sprintf("%.3fs, %.0f execs/s, %.0f states/s, depth p50=%.0f p99=%.0f, workers=%d",
		st.Duration.Seconds(), st.ExecsPerSec, st.StatesPerSec, p50, p99, st.Workers)
	if st.DedupActive {
		s += fmt.Sprintf(", dedup: %d boundaries, %d pruned", st.DistinctBoundaries, st.PrunedStates)
	}
	if st.StressDiscarded > 0 {
		s += fmt.Sprintf(", %d stress retries discarded", st.StressDiscarded)
	}
	return s
}

// OK reports whether no violation was found.
func (r *Report) OK() bool { return r.Counterexample == nil }

// String renders a one-line summary.
func (r *Report) String() string {
	status := "OK"
	if !r.OK() {
		status = "VIOLATION"
	}
	complete := "complete"
	if !r.Complete {
		complete = "budget-bounded"
	}
	return fmt.Sprintf("%s: %s (%d executions, %d crashed, %s, %d checker states)",
		r.Scenario, status, r.Executions, r.CrashedExecutions, complete, r.CheckedStates)
}

// Options configures an exploration.
type Options struct {
	// MaxExecutions bounds the systematic search. 0 means 20000. The
	// budget is shared by all workers (each execution claims one slot),
	// so the number of executions run is independent of Workers.
	MaxExecutions int
	// Workers is the systematic-phase worker count. 0 means
	// GOMAXPROCS. With 1 worker the search is the classic sequential
	// DFS; with more, the choice tree is partitioned by schedule prefix
	// and drained work-stealing style (see the package comment).
	Workers int
	// NoDedup disables crash-boundary state dedup even for scenarios
	// that provide a Fingerprint hook — the escape hatch for suspected
	// fingerprint bugs or hash collisions (perennial-check -nodedup).
	NoDedup bool
	// StressExecutions adds randomized executions after (or instead of)
	// the systematic search.
	StressExecutions int
	// StressSeed seeds the randomized mode.
	StressSeed int64
	// StressCrashWeight makes the random chooser crash with probability
	// 1/weight at each step when crashes are allowed. 0 means 20.
	StressCrashWeight int
	// StressParallelism runs stress executions on this many OS-parallel
	// workers (each execution uses its own machine, so they are
	// independent). 0 or 1 means sequential. The reported counterexample
	// is the one with the smallest seed offset, keeping results
	// deterministic regardless of scheduling.
	StressParallelism int
	// Progress, when non-nil with a Sink, streams live telemetry of the
	// systematic phase (execs/s, frontier depth, dedup hit rate,
	// per-worker donations, budget ETA). The sampler is read-only over
	// lock-free counters, so verdicts and counterexamples are identical
	// with and without it (perennial-check -progress).
	Progress *ProgressOptions
}

// Run performs a systematic DFS over the scenario's choice space —
// parallelized across Options.Workers workers with optional
// crash-boundary dedup — then optional randomized stress, and returns a
// report.
func Run(s *Scenario, opts Options) *Report {
	if opts.MaxExecutions == 0 {
		opts.MaxExecutions = 20000
	}
	if opts.StressCrashWeight == 0 {
		opts.StressCrashWeight = 20
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rep := &Report{Scenario: s.Name, Stats: Stats{Depth: obs.NewHistogram(obs.DepthBuckets), Workers: workers}}
	start := time.Now()
	defer func() {
		rep.Stats.Duration = time.Since(start)
		if sec := rep.Stats.Duration.Seconds(); sec > 0 {
			rep.Stats.ExecsPerSec = float64(rep.Executions) / sec
			rep.Stats.StatesPerSec = float64(rep.CheckedStates) / sec
		}
	}()

	// Systematic phase: prefix-partitioned parallel DFS.
	runSystematic(s, opts, workers, rep)
	if rep.Counterexample != nil {
		return rep
	}

	// Randomized stress.
	if opts.StressParallelism <= 1 {
		for i := 0; i < opts.StressExecutions; i++ {
			rep.Executions++
			cx := stressOne(s, opts, i, rep)
			if cx != nil {
				rep.Counterexample = cx
				return rep
			}
		}
		return rep
	}
	runStressParallel(s, opts, rep)
	return rep
}

// stressOne runs one randomized execution at seed offset i.
func stressOne(s *Scenario, opts Options, i int, rep *Report) *Counterexample {
	rc := machine.NewRandChooser(opts.StressSeed + int64(i))
	rc.CrashWeight = opts.StressCrashWeight
	rc.CrashOption = s.MaxCrashes > 0
	return runOne(s, rc, rep, nil)
}

// runStressParallel fans the stress executions across workers. Each
// worker accumulates into a private Report; the aggregates are summed
// and the smallest-offset counterexample wins (deterministic output).
//
// Executions counts only the unique contributing executions — offsets
// up to and including the winning counterexample's — matching what the
// sequential stress loop would have run. Executions other workers raced
// through at higher offsets before noticing the winner are discarded
// retries, reported in Stats.StressDiscarded instead of inflating the
// (otherwise nondeterministic) throughput numbers.
func runStressParallel(s *Scenario, opts Options, rep *Report) {
	type result struct {
		offset int
		cx     *Counterexample
	}
	workers := opts.StressParallelism
	var mu sync.Mutex
	best := result{offset: -1}
	reps := make([]*Report, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		// The depth histogram is lock-free, so workers share it.
		reps[w] = &Report{Stats: Stats{Depth: rep.Stats.Depth}}
		go func(w int) {
			defer wg.Done()
			for i := w; i < opts.StressExecutions; i += workers {
				mu.Lock()
				stop := best.offset != -1 && best.offset < i
				mu.Unlock()
				if stop {
					return
				}
				reps[w].Executions++
				if cx := stressOne(s, opts, i, reps[w]); cx != nil {
					mu.Lock()
					if best.offset == -1 || i < best.offset {
						best = result{offset: i, cx: cx}
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	ran := 0
	for _, r := range reps {
		ran += r.Executions
		rep.CrashedExecutions += r.CrashedExecutions
		rep.CheckedStates += r.CheckedStates
	}
	unique := ran
	if best.offset != -1 {
		// Workers cover disjoint offset strides and only stop once their
		// next offset exceeds the winner, so offsets 0..best.offset each
		// ran exactly once; everything beyond is a discarded retry.
		unique = best.offset + 1
	}
	rep.Executions += unique
	rep.Stats.StressDiscarded = ran - unique
	rep.Counterexample = best.cx
}

// runOne executes the scenario once under the given chooser and checks
// the resulting history. It returns a counterexample on violation.
// A non-nil dd enables crash-boundary dedup: the execution may be cut
// short (dd.pruned) when it reaches a boundary state whose recovery
// subtree another choice prefix already enumerated.
func runOne(s *Scenario, ch machine.Chooser, rep *Report, dd *dedupRun) *Counterexample {
	// The recorder sits at the inner-chooser position (below any
	// RandPolicy), so its choice sequence is exactly what ScriptChooser
	// replays, and doubles as the machine Observer for thread identity.
	rec := &scheduleRecorder{inner: ch}
	chooser := machine.Chooser(rec)
	var rpc *randPolicyChooser
	if s.RandPolicy != nil {
		rpc = &randPolicyChooser{inner: rec, policy: s.RandPolicy, rec: rec}
		chooser = rpc
	}
	mo := s.MachineOpts
	mo.Observer = rec
	m := machine.New(mo)
	defer func() { rep.Stats.Depth.Observe(float64(len(rec.choices))) }()
	w := s.Setup(m)
	h := &Harness{}

	fail := func(reason string) *Counterexample {
		return &Counterexample{
			Choices:  append([]int{}, rec.choices...),
			Schedule: append(Schedule{}, rec.steps...),
			Trace:    append([]string{}, m.Trace()...),
			History:  h.rec.History(),
			Reason:   reason,
		}
	}
	checkInv := func(when string) *Counterexample {
		if s.Invariant == nil {
			return nil
		}
		if err := s.Invariant(m, w); err != nil {
			return fail(fmt.Sprintf("invariant violated %s: %v", when, err))
		}
		return nil
	}

	if s.Init != nil {
		rec.era("init")
		res := m.RunEra(chooser, false, func(t *machine.T) { s.Init(t, w) })
		if res.Outcome == machine.Violation {
			return fail("machine violation in init phase: " + res.Err.Error())
		}
	}
	if cx := checkInv("after setup"); cx != nil {
		return cx
	}

	crashesLeft := s.MaxCrashes
	rec.era("main")
	res := m.RunEra(chooser, crashesLeft > 0, func(t *machine.T) { s.Main(t, w, h) })
	crashed := false
	for res.Outcome == machine.Crashed {
		if !crashed {
			crashed = true
			rep.CrashedExecutions++
		}
		crashesLeft--
		h.rec.Crash()
		m.CrashReset()
		if dd != nil && dd.boundaryPrune(m, w, h, rec, rpc, crashesLeft) {
			// Another prefix owns this boundary's recovery subtree; its
			// suffix behavior is already covered, so stop the execution
			// here. The DFS backtracks from the boundary, skipping the
			// whole subtree.
			return nil
		}
		if s.Recover == nil {
			res = machine.EraResult{Outcome: machine.Done}
			break
		}
		rec.era("recovery")
		res = m.RunEra(chooser, crashesLeft > 0, func(t *machine.T) { s.Recover(t, w) })
		if res.Outcome == machine.Done {
			if cx := checkInv("after recovery"); cx != nil {
				return cx
			}
		}
	}
	if res.Outcome == machine.Violation {
		return fail("machine violation: " + res.Err.Error())
	}

	if s.Post != nil {
		rec.era("post")
		res = m.RunEra(chooser, false, func(t *machine.T) { s.Post(t, w, h) })
		if res.Outcome == machine.Violation {
			return fail("machine violation in post phase: " + res.Err.Error())
		}
	}

	if cx := checkInv("at end"); cx != nil {
		return cx
	}

	chk := history.Check(s.Spec, h.rec.History())
	rep.CheckedStates += chk.StatesExplored
	if !chk.OK {
		return fail("refinement failure: " + chk.Reason)
	}
	return nil
}

// dfsChooser drives a depth-first enumeration of choice sequences. Each
// execution replays a prefix of recorded choices and extends with option
// 0; next() advances the last choice point with untried options,
// backtracking exhausted suffixes.
//
// For the parallel search, the first `pinned` points are a donated job
// prefix that next() never backtracks into, and a point's `limit` caps
// which options this chooser still owns (higher siblings were donated
// to other workers via splitShallowest).
type dfsChooser struct {
	points []choicePoint
	pos    int
	pinned int
}

type choicePoint struct {
	n      int
	chosen int
	tag    string
	// limit, when nonzero, is the exclusive upper bound of options this
	// chooser still owns at the point (the rest were donated). It never
	// affects replay, only next()/splitShallowest.
	limit int
}

func (d *dfsChooser) reset() { d.pos = 0 }

// Choose implements machine.Chooser.
func (d *dfsChooser) Choose(n int, tag string) int {
	if d.pos < len(d.points) {
		p := d.points[d.pos]
		if p.n == 0 && d.pos < d.pinned {
			// First replay of a donated prefix point: learn its branching
			// factor (the donor recorded only the chosen option).
			d.points[d.pos].n = n
			d.points[d.pos].tag = tag
			p = d.points[d.pos]
		}
		if p.n != n {
			// The machine must be deterministic given prior choices; a
			// mismatch indicates harness nondeterminism (e.g. map
			// iteration leaking into the model). Re-seat the point.
			d.points = d.points[:d.pos]
			d.points = append(d.points, choicePoint{n: n, tag: tag})
		}
		c := d.points[d.pos].chosen
		d.pos++
		return c
	}
	d.points = append(d.points, choicePoint{n: n, tag: tag})
	d.pos++
	return 0
}

// next advances to the next unexplored choice sequence, returning false
// when the (possibly prefix-pinned) space is exhausted.
func (d *dfsChooser) next() bool {
	// Discard choice points beyond those actually consumed this run.
	d.points = d.points[:d.pos]
	for len(d.points) > d.pinned {
		last := &d.points[len(d.points)-1]
		lim := last.n
		if last.limit > 0 && last.limit < lim {
			lim = last.limit
		}
		if last.chosen+1 < lim {
			last.chosen++
			return true
		}
		d.points = d.points[:len(d.points)-1]
	}
	return false
}

func (d *dfsChooser) taken() []int {
	out := make([]int, d.pos)
	for i := 0; i < d.pos; i++ {
		out[i] = d.points[i].chosen
	}
	return out
}

// randPolicyChooser resolves "rand"-tagged choices with a deterministic
// per-call policy and forwards everything else. Policy-resolved choices
// are reported to the schedule recorder (they are part of the
// structured schedule) but not to the replayable choice sequence.
type randPolicyChooser struct {
	inner  machine.Chooser
	policy func(call, n int) int
	rec    *scheduleRecorder
	calls  int
}

// Choose implements machine.Chooser.
func (r *randPolicyChooser) Choose(n int, tag string) int {
	if tag == "rand" {
		c := r.policy(r.calls, n) % n
		if c < 0 {
			c = 0
		}
		r.calls++
		if r.rec != nil {
			r.rec.policyChoice(n, c)
		}
		return c
	}
	return r.inner.Choose(n, tag)
}

// ReplayCx runs the scenario once with an explicit choice script (e.g.
// a counterexample's Choices) and returns the resulting counterexample
// — schedule, trace, and history included — or nil when the script no
// longer fails.
func ReplayCx(s *Scenario, choices []int) *Counterexample {
	rep := &Report{}
	sc := &machine.ScriptChooser{Script: append([]int{}, choices...)}
	return runOne(s, sc, rep, nil)
}

// Replay runs the scenario once with an explicit choice script and
// returns the machine trace and history. Useful for debugging a
// failure interactively; ReplayCx keeps the structured schedule too.
func Replay(s *Scenario, choices []int) (trace []string, h history.History, reason string) {
	if cx := ReplayCx(s, choices); cx != nil {
		return cx.Trace, cx.History, cx.Reason
	}
	return nil, nil, ""
}

// Minimize shrinks a failing choice sequence (delta-debugging lite): it
// repeatedly tries truncating the suffix and lowering individual
// choices to smaller options, keeping any variant that still fails.
// Because ScriptChooser treats exhausted and out-of-range entries as
// option 0, every candidate is a valid schedule. The result reproduces
// a failure (not necessarily the same one) and is usually much easier
// to read.
func Minimize(s *Scenario, choices []int) []int {
	fails := func(c []int) bool {
		rep := &Report{}
		return runOne(s, &machine.ScriptChooser{Script: append([]int{}, c...)}, rep, nil) != nil
	}
	if !fails(choices) {
		return choices
	}
	cur := append([]int{}, choices...)

	// Truncate the suffix as far as possible (binary search on length).
	lo, hi := 0, len(cur) // invariant: fails(cur[:hi])
	for lo < hi {
		mid := (lo + hi) / 2
		if fails(cur[:mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	cur = cur[:hi]

	// Lower individual choices toward 0.
	for i := range cur {
		for cur[i] > 0 {
			trial := append([]int{}, cur...)
			trial[i]--
			if !fails(trial) {
				break
			}
			cur = trial
		}
	}

	// A final truncation pass (lowering may have enabled shorter runs).
	for len(cur) > 0 && fails(cur[:len(cur)-1]) {
		cur = cur[:len(cur)-1]
	}
	return cur
}
