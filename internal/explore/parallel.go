package explore

import (
	"sync"
	"sync/atomic"
)

// Parallel systematic search (DESIGN.md §5). The choice tree is
// partitioned by schedule prefix: a job is a pinned prefix of choices,
// and the worker that takes it enumerates exactly the executions
// extending that prefix with its private dfsChooser and machines.
// Workers share nothing per execution — each runOne builds a fresh
// machine — so checked code stays data-race-free by construction; the
// only shared structures are the job queue, the fingerprint table (lock
// striped) and the atomic execution budget. Work stealing is by
// donation: a worker that notices starving peers splits the untried
// siblings of its shallowest open choice point into new jobs, which
// partitions its remaining subtree exactly (no execution is lost or
// explored twice).
//
// Counterexample determinism: candidate counterexamples are ordered by
// DFS preorder on their choice sequences (lexicographic, with a prefix
// ordered before its extensions) and the least one wins. After a
// candidate is found, workers keep draining jobs but skip any subtree
// whose spine is already preorder-greater, so every execution before
// the winner is still visited. A search that completes therefore
// reports the same counterexample the sequential DFS would have found
// first; with one worker the machinery degenerates to exactly the
// sequential loop.

type searchPool struct {
	s       *Scenario
	workers int
	table   *fpTable

	// execsLeft counts down the shared MaxExecutions budget; workers
	// claim one slot per execution before running it.
	execsLeft int64

	// Progress telemetry, maintained whether or not a sampler is
	// attached (three relaxed atomic bumps per execution): executions
	// started, dedup-pruned executions, and per-worker donated jobs.
	// The sampler in progressLoop only ever reads these, so enabling
	// it cannot perturb the search.
	execs   atomic.Int64
	pruned  atomic.Int64
	donated []atomic.Int64

	mu          sync.Mutex
	cond        *sync.Cond
	queue       [][]int // LIFO of pinned prefixes
	outstanding int     // queued + in-flight jobs
	idle        int     // workers blocked waiting for a job
	stopped     bool    // budget exhausted: abandon everything
	budgetHit   bool
	dedupOff    bool // a device proved unfingerprintable
	best        *Counterexample
}

// runSystematic drains the scenario's whole choice tree with a worker
// pool and fills rep. The caller has already applied option defaults.
func runSystematic(s *Scenario, opts Options, workers int, rep *Report) {
	p := &searchPool{
		s:         s,
		workers:   workers,
		execsLeft: int64(opts.MaxExecutions),
		queue:     [][]int{nil}, // the root job: the empty prefix
		donated:   make([]atomic.Int64, workers),
	}
	p.outstanding = 1
	p.cond = sync.NewCond(&p.mu)
	if !opts.NoDedup && s.Fingerprint != nil {
		p.table = newFPTable()
	}

	var progStop, progDone chan struct{}
	if opts.Progress != nil && opts.Progress.Sink != nil {
		progStop, progDone = make(chan struct{}), make(chan struct{})
		go p.progressLoop(opts.Progress, s.Name, rep.Stats.Depth, progStop, progDone)
	}

	wreps := make([]*Report, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// The depth histogram is lock-free, so workers share it.
		wreps[w] = &Report{Stats: Stats{Depth: rep.Stats.Depth}}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.worker(w, wreps[w])
		}(w)
	}
	wg.Wait()
	if progStop != nil {
		// Stop the sampler and wait for its final snapshot so callers
		// see it before the report.
		close(progStop)
		<-progDone
	}

	per := make([]WorkerStats, workers)
	for w, r := range wreps {
		rep.Executions += r.Executions
		rep.CrashedExecutions += r.CrashedExecutions
		rep.CheckedStates += r.CheckedStates
		rep.Stats.PrunedStates += r.Stats.PrunedStates
		per[w] = WorkerStats{Executions: r.Executions, Pruned: r.Stats.PrunedStates}
	}
	rep.Stats.PerWorker = per
	rep.Stats.DedupActive = p.table != nil && !p.dedupOff
	if p.table != nil {
		rep.Stats.DistinctBoundaries = p.table.size()
	}
	rep.Counterexample = p.best
	rep.Complete = p.best == nil && !p.budgetHit
}

func (p *searchPool) worker(w int, wrep *Report) {
	for {
		prefix, ok := p.take()
		if !ok {
			return
		}
		p.explore(prefix, wrep, w)
		p.finish()
	}
}

// take blocks until a job is available, all work is done, or the search
// stops.
func (p *searchPool) take() ([]int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.stopped {
			return nil, false
		}
		if n := len(p.queue); n > 0 {
			j := p.queue[n-1]
			p.queue = p.queue[:n-1]
			return j, true
		}
		if p.outstanding == 0 {
			return nil, false
		}
		p.idle++
		p.cond.Wait()
		p.idle--
	}
}

func (p *searchPool) finish() {
	p.mu.Lock()
	p.outstanding--
	if p.outstanding == 0 {
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// claim takes one execution slot from the shared budget; on exhaustion
// it stops the whole search (the report becomes budget-bounded).
func (p *searchPool) claim() bool {
	if atomic.AddInt64(&p.execsLeft, -1) >= 0 {
		return true
	}
	p.mu.Lock()
	p.budgetHit = true
	p.stopped = true
	p.cond.Broadcast()
	p.mu.Unlock()
	return false
}

// explore enumerates the subtree pinned at prefix on behalf of worker w.
func (p *searchPool) explore(prefix []int, wrep *Report, w int) {
	d := &dfsChooser{}
	d.seed(prefix)
	for {
		if p.pastBest(d) {
			return
		}
		if !p.claim() {
			return
		}
		wrep.Executions++
		p.execs.Add(1)
		d.reset()
		var dd *dedupRun
		if p.table != nil {
			dd = &dedupRun{table: p.table, s: p.s}
		}
		cx := runOne(p.s, d, wrep, dd)
		if dd != nil {
			if dd.pruned {
				wrep.Stats.PrunedStates++
				p.pruned.Add(1)
			}
			if dd.unfingerprintable {
				p.mu.Lock()
				p.dedupOff = true
				p.mu.Unlock()
			}
		}
		if cx != nil {
			p.offerBest(cx)
			return
		}
		p.donate(d, w)
		if !d.next() {
			return
		}
	}
}

// offerBest installs cx if it is preorder-least among candidates.
func (p *searchPool) offerBest(cx *Counterexample) {
	p.mu.Lock()
	if p.best == nil || cmpChoices(cx.Choices, p.best.Choices) < 0 {
		p.best = cx
	}
	p.mu.Unlock()
}

// pastBest reports whether every execution remaining in d's subtree is
// preorder-greater than the best counterexample found so far (DFS
// enumerates in strictly increasing preorder, so the current spine is a
// lower bound).
func (p *searchPool) pastBest(d *dfsChooser) bool {
	p.mu.Lock()
	best := p.best
	p.mu.Unlock()
	if best == nil {
		return false
	}
	return cmpChoices(d.spine(), best.Choices) > 0
}

// donate splits off jobs when peers are starving and the queue is
// empty. splitShallowest only touches worker-local state; holding the
// pool lock just keeps idle/queue consistent with the decision.
func (p *searchPool) donate(d *dfsChooser, w int) {
	if p.workers == 1 {
		return
	}
	p.mu.Lock()
	if p.idle > 0 && len(p.queue) == 0 && !p.stopped {
		if jobs := d.splitShallowest(); len(jobs) > 0 {
			p.queue = append(p.queue, jobs...)
			p.outstanding += len(jobs)
			p.donated[w].Add(int64(len(jobs)))
			p.cond.Broadcast()
		}
	}
	p.mu.Unlock()
}

// cmpChoices orders choice sequences by DFS preorder: lexicographic,
// with a prefix ordered before its extensions.
func cmpChoices(a, b []int) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// seed pins the chooser to a donated prefix: the first len(prefix)
// choice points replay the prefix (their branching factors are learned
// on first replay) and next() never backtracks into them.
func (d *dfsChooser) seed(prefix []int) {
	d.points = make([]choicePoint, len(prefix))
	for i, c := range prefix {
		d.points[i] = choicePoint{chosen: c} // n learned at first Choose
	}
	d.pinned = len(prefix)
}

// spine returns the chosen values of all recorded choice points — the
// path the next execution will replay before extending with option 0.
func (d *dfsChooser) spine() []int {
	out := make([]int, len(d.points))
	for i, p := range d.points {
		out[i] = p.chosen
	}
	return out
}

// splitShallowest donates the untried siblings of the shallowest open
// choice point below the pin as new jobs and excludes them from this
// chooser's own enumeration (via the point's limit), partitioning the
// remaining subtree exactly. Jobs are returned largest-option first so
// a LIFO queue pops the preorder-least prefix first. Returns nil when
// nothing is splittable.
func (d *dfsChooser) splitShallowest() [][]int {
	for i := d.pinned; i < len(d.points); i++ {
		pt := d.points[i]
		lim := pt.n
		if pt.limit > 0 && pt.limit < lim {
			lim = pt.limit
		}
		if pt.n == 0 || pt.chosen+1 >= lim {
			continue
		}
		base := make([]int, i)
		for j := 0; j < i; j++ {
			base[j] = d.points[j].chosen
		}
		out := make([][]int, 0, lim-pt.chosen-1)
		for c := lim - 1; c > pt.chosen; c-- {
			pre := make([]int, i+1)
			copy(pre, base)
			pre[i] = c
			out = append(out, pre)
		}
		d.points[i].limit = pt.chosen + 1
		return out
	}
	return nil
}
