package smtp

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

type fakeBackend struct {
	mu   sync.Mutex
	mail map[uint64][]string
	fail bool
}

func (f *fakeBackend) Deliver(user uint64, msg []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fail {
		return fmt.Errorf("disk full")
	}
	if f.mail == nil {
		f.mail = map[uint64][]string{}
	}
	f.mail[user] = append(f.mail[user], string(msg))
	return nil
}

func startServer(t *testing.T, backend Deliverer) (*Server, string) {
	t.Helper()
	s := NewServer(backend, 10)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) expect(t *testing.T, prefix string) string {
	t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("expected %q, got %q", prefix, line)
	}
	return line
}

func (c *client) send(t *testing.T, line string) {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\r\n", line); err != nil {
		t.Fatal(err)
	}
}

func TestParseRecipient(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"user3@example.com", 3, true},
		{"<user0@x>", 0, true},
		{" user9@y ", 9, true},
		{"user10@x", 0, false}, // out of range (10 users)
		{"bob@example.com", 0, false},
		{"user@x", 0, false},
	}
	for _, c := range cases {
		got, err := ParseRecipient(c.in, 10)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("%q: got %d, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%q: expected error", c.in)
		}
	}
}

func TestDeliveryRoundTrip(t *testing.T) {
	fb := &fakeBackend{}
	_, addr := startServer(t, fb)
	c := dial(t, addr)
	c.expect(t, "220")
	c.send(t, "HELO tester")
	c.expect(t, "250")
	c.send(t, "MAIL FROM:<sender@x>")
	c.expect(t, "250")
	c.send(t, "RCPT TO:<user3@example.com>")
	c.expect(t, "250")
	c.send(t, "DATA")
	c.expect(t, "354")
	c.send(t, "Subject: hi")
	c.send(t, "")
	c.send(t, "body line")
	c.send(t, "..dot-stuffed")
	c.send(t, ".")
	c.expect(t, "250")
	c.send(t, "QUIT")
	c.expect(t, "221")

	fb.mu.Lock()
	defer fb.mu.Unlock()
	if len(fb.mail[3]) != 1 {
		t.Fatalf("user3 mail: %v", fb.mail)
	}
	want := "Subject: hi\n\nbody line\n.dot-stuffed\n"
	if fb.mail[3][0] != want {
		t.Fatalf("message %q, want %q", fb.mail[3][0], want)
	}
}

func TestMultipleRecipients(t *testing.T) {
	fb := &fakeBackend{}
	_, addr := startServer(t, fb)
	c := dial(t, addr)
	c.expect(t, "220")
	c.send(t, "MAIL FROM:<s@x>")
	c.expect(t, "250")
	c.send(t, "RCPT TO:<user1@x>")
	c.expect(t, "250")
	c.send(t, "RCPT TO:<user2@x>")
	c.expect(t, "250")
	c.send(t, "DATA")
	c.expect(t, "354")
	c.send(t, "hello")
	c.send(t, ".")
	c.expect(t, "250")

	fb.mu.Lock()
	defer fb.mu.Unlock()
	if len(fb.mail[1]) != 1 || len(fb.mail[2]) != 1 {
		t.Fatalf("mail: %v", fb.mail)
	}
}

func TestRcptBeforeMailRejected(t *testing.T) {
	_, addr := startServer(t, &fakeBackend{})
	c := dial(t, addr)
	c.expect(t, "220")
	c.send(t, "RCPT TO:<user1@x>")
	c.expect(t, "503")
}

func TestDataWithoutRcptRejected(t *testing.T) {
	_, addr := startServer(t, &fakeBackend{})
	c := dial(t, addr)
	c.expect(t, "220")
	c.send(t, "MAIL FROM:<s@x>")
	c.expect(t, "250")
	c.send(t, "DATA")
	c.expect(t, "503")
}

func TestUnknownMailboxRejected(t *testing.T) {
	_, addr := startServer(t, &fakeBackend{})
	c := dial(t, addr)
	c.expect(t, "220")
	c.send(t, "MAIL FROM:<s@x>")
	c.expect(t, "250")
	c.send(t, "RCPT TO:<nobody@x>")
	c.expect(t, "550")
}

func TestBackendFailureReported(t *testing.T) {
	_, addr := startServer(t, &fakeBackend{fail: true})
	c := dial(t, addr)
	c.expect(t, "220")
	c.send(t, "MAIL FROM:<s@x>")
	c.expect(t, "250")
	c.send(t, "RCPT TO:<user1@x>")
	c.expect(t, "250")
	c.send(t, "DATA")
	c.expect(t, "354")
	c.send(t, "x")
	c.send(t, ".")
	c.expect(t, "451")
}

func TestRsetClearsSession(t *testing.T) {
	_, addr := startServer(t, &fakeBackend{})
	c := dial(t, addr)
	c.expect(t, "220")
	c.send(t, "MAIL FROM:<s@x>")
	c.expect(t, "250")
	c.send(t, "RSET")
	c.expect(t, "250")
	c.send(t, "RCPT TO:<user1@x>")
	c.expect(t, "503")
}

func TestUnknownCommand(t *testing.T) {
	_, addr := startServer(t, &fakeBackend{})
	c := dial(t, addr)
	c.expect(t, "220")
	c.send(t, "FROBNICATE")
	c.expect(t, "500")
}
