package smtp

import (
	"context"
	"net"
	"testing"
	"time"
)

// startHardened boots a server with the given knobs applied.
func startHardened(t *testing.T, backend Deliverer, tune func(*Server)) (*Server, string) {
	t.Helper()
	s := NewServer(backend, 10)
	tune(s)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func TestMaxConnsAnswers421(t *testing.T) {
	_, addr := startHardened(t, &fakeBackend{}, func(s *Server) { s.MaxConns = 1 })

	c1 := dial(t, addr)
	c1.expect(t, "220") // first connection is being served

	// The second connection must be refused with 421, not silently
	// dropped and not left hanging.
	c2 := dial(t, addr)
	c2.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	c2.expect(t, "421")

	// Once the first session ends, capacity frees up.
	c1.send(t, "QUIT")
	c1.expect(t, "221")
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 3)
		if _, err := conn.Read(buf); err == nil && string(buf) == "220" {
			conn.Close()
			return
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("capacity never freed after QUIT")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReadTimeoutDropsStuckPeer(t *testing.T) {
	_, addr := startHardened(t, &fakeBackend{}, func(s *Server) { s.ReadTimeout = 50 * time.Millisecond })
	c := dial(t, addr)
	c.expect(t, "220")
	// Send nothing: the server must hang up rather than pin the handler.
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("server kept a silent connection past its read deadline")
	}
}

func TestShutdownWaitsThenForces(t *testing.T) {
	s, addr := startHardened(t, &fakeBackend{}, func(*Server) {})

	// No sessions: Shutdown returns promptly.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("idle shutdown: %v", err)
	}

	// With a hung session, an expired context force-closes it.
	s2, addr2 := startHardened(t, &fakeBackend{}, func(*Server) {})
	c := dial(t, addr2)
	c.expect(t, "220")
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if err := s2.Shutdown(ctx2); err != context.DeadlineExceeded {
		t.Fatalf("forced shutdown: %v", err)
	}
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("connection survived forced shutdown")
	}
	_ = addr
}

type panickyBackend struct{}

func (panickyBackend) Deliver(uint64, []byte) error { panic("backend exploded") }

func TestHandlerPanicCostsOnlyItsConnection(t *testing.T) {
	_, addr := startHardened(t, panickyBackend{}, func(*Server) {})

	c := dial(t, addr)
	c.expect(t, "220")
	c.send(t, "MAIL FROM:<s@x>")
	c.expect(t, "250")
	c.send(t, "RCPT TO:<user1@x>")
	c.expect(t, "250")
	c.send(t, "DATA")
	c.expect(t, "354")
	c.send(t, "boom")
	c.send(t, ".")
	// The handler panics in Deliver; this connection dies...
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	c.r.ReadString('\n') // whatever happens here, the server must survive

	// ...but the server keeps accepting and serving.
	c2 := dial(t, addr)
	c2.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	c2.expect(t, "220")
	c2.send(t, "NOOP")
	c2.expect(t, "250")
}
