// Package smtp implements the unverified SMTP front end of §8.2: a
// minimal RFC 5321 server (HELO/EHLO, MAIL FROM, RCPT TO, DATA, RSET,
// NOOP, QUIT) that hands completed messages to the verified Mailboat
// library. Recipient addresses have the form userN@<anything>; the N
// selects the mailbox.
//
// The protocol implementation is deliberately outside the verified
// core, matching the paper's TCB boundary: "The protocol implementation
// is unverified, but works with the Postal mail server benchmarking
// library". Because it is unverified it degrades gracefully instead of
// trusting anything: transient store failures answer 451 (try again
// later) rather than dropping the connection, a full server answers 421
// at accept time, per-connection deadlines bound stuck peers, and a
// panicking handler kills only its own connection.
package smtp

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/trace"
)

// Deliverer accepts completed messages; the Mailboat adapter in
// internal/mailboatd implements it over the verified library. A nil
// error acknowledges the message as durably accepted; any error is
// reported to the client as transient (451), so the sender retries.
type Deliverer interface {
	Deliver(user uint64, msg []byte) error
}

// TracedDeliverer is the optional tracing extension of Deliverer: the
// server hands the verb's root span down so the store can hang stage
// spans off it. Backends that don't implement it are simply served
// untraced.
type TracedDeliverer interface {
	DeliverTraced(sp *trace.Span, user uint64, msg []byte) error
}

// insufficientStorage reports whether err is a storage-capacity
// refusal (disk full, over quota, or load shed) rather than a generic
// transient failure. Detection is structural so the front end does not
// depend on the store package; mailboatd's ErrNoSpace and
// ErrOverloaded both carry the marker.
func insufficientStorage(err error) bool {
	is, ok := err.(interface{ InsufficientStorage() bool })
	return ok && is.InsufficientStorage()
}

// ParseRecipient extracts the mailbox index from an address like
// "user7@example.com" (angle brackets optional).
func ParseRecipient(addr string, users uint64) (uint64, error) {
	addr = strings.TrimSpace(addr)
	addr = strings.TrimPrefix(addr, "<")
	addr = strings.TrimSuffix(addr, ">")
	local, _, _ := strings.Cut(addr, "@")
	if !strings.HasPrefix(local, "user") {
		return 0, fmt.Errorf("smtp: unknown mailbox %q", addr)
	}
	n, err := strconv.ParseUint(local[len("user"):], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("smtp: unknown mailbox %q", addr)
	}
	if n >= users {
		return 0, fmt.Errorf("smtp: mailbox %d out of range", n)
	}
	return n, nil
}

// Server is one SMTP listener.
type Server struct {
	users   uint64
	backend Deliverer

	// ReadTimeout and WriteTimeout bound each command read and each
	// response write; zero means no deadline. A peer that stalls longer
	// loses its connection rather than pinning a handler goroutine.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxConns caps concurrently served connections; excess connections
	// are answered 421 and closed. Zero means unlimited.
	MaxConns int
	// Metrics, when non-nil, records connection and command metrics
	// (see NewMetrics). Set it before Serve.
	Metrics *Metrics
	// Tracer, when non-nil, opens a root span per DATA command (op
	// "deliver") and threads it through a TracedDeliverer backend, so a
	// single delivery renders as a nested timeline. Set it before Serve.
	Tracer *trace.Tracer

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer creates an SMTP server delivering into backend.
func NewServer(backend Deliverer, users uint64) *Server {
	return &Server{users: users, backend: backend, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections on ln until Close/Shutdown. It blocks, and
// returns nil after a deliberate Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			s.Metrics.connRefused()
			s.refuse(conn)
			continue
		}
		s.Metrics.connOpened()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			defer s.Metrics.connClosed()
			// An unverified protocol handler must not take the whole
			// server down: a panic costs only this connection.
			defer func() {
				if r := recover(); r != nil {
					s.Metrics.panicked()
				}
			}()
			s.handle(conn)
		}()
	}
}

// track registers conn, refusing when at capacity or shutting down.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || (s.MaxConns > 0 && len(s.conns) >= s.MaxConns) {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// refuse answers a connection the server cannot serve right now with
// 421 (service not available, try later) instead of a silent close.
func (s *Server) refuse(conn net.Conn) {
	if s.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
	}
	fmt.Fprintf(conn, "421 mailboat too busy, try again later\r\n")
	conn.Close()
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:2525") and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting connections. In-flight sessions keep running;
// use Shutdown to wait for (or cut off) them.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// Shutdown closes the listener and waits for in-flight sessions to
// finish. If ctx expires first the remaining connections are
// force-closed (their handlers then exit on the next read) and ctx's
// error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Addr returns the listener address, for tests.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

type session struct {
	rcpts   []uint64
	inOrder bool // MAIL FROM seen
}

func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	readLine := func() (string, error) {
		if s.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		return r.ReadString('\n')
	}
	say := func(code int, msg string) bool {
		fmt.Fprintf(w, "%d %s\r\n", code, msg)
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		return w.Flush() == nil
	}
	if !say(220, "mailboat SMTP service ready") {
		return
	}

	var st session
	for {
		line, err := readLine()
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		verb, arg, _ := strings.Cut(line, " ")
		start := s.Metrics.cmdStart()
		quit := s.command(&st, verb, arg, readLine, say)
		s.Metrics.command(verb, start)
		if quit {
			return
		}
	}
}

// command executes one SMTP command against the session state,
// reporting true when the connection must end (QUIT, or a read/write
// failure mid-command).
func (s *Server) command(st *session, verb, arg string, readLine func() (string, error), say func(int, string) bool) bool {
	switch strings.ToUpper(verb) {
	case "HELO", "EHLO":
		say(250, "mailboat at your service")
	case "MAIL":
		*st = session{inOrder: true}
		say(250, "ok")
	case "RCPT":
		if !st.inOrder {
			say(503, "need MAIL first")
			return false
		}
		arg = strings.TrimPrefix(strings.TrimSpace(arg), "TO:")
		arg = strings.TrimPrefix(arg, "to:")
		user, err := ParseRecipient(arg, s.users)
		if err != nil {
			say(550, "no such mailbox")
			return false
		}
		st.rcpts = append(st.rcpts, user)
		say(250, "ok")
	case "DATA":
		if len(st.rcpts) == 0 {
			say(503, "need RCPT first")
			return false
		}
		if !say(354, "end with <CRLF>.<CRLF>") {
			return true
		}
		body, err := readData(readLine)
		if err != nil {
			return true
		}
		// The root span opens after the body is read: it times the
		// store's work, not the client's typing speed.
		root := s.Tracer.Start("deliver", "smtp.DATA")
		td, traced := s.backend.(TracedDeliverer)
		failed, full := false, false
		for _, user := range st.rcpts {
			var err error
			if root != nil && traced {
				err = td.DeliverTraced(root, user, body)
			} else {
				err = s.backend.Deliver(user, body)
			}
			if err != nil {
				failed = true
				if insufficientStorage(err) {
					full = true
				}
			}
		}
		switch {
		case full:
			root.Note("delivery shed for storage (452)")
		case failed:
			root.Note("delivery failed transiently (451)")
		}
		root.End()
		*st = session{}
		switch {
		case full:
			// The store is out of space or shedding load: RFC 5321's
			// 452 (insufficient system storage) tells the sender to
			// retry later. The message was NOT acknowledged, and the
			// store was left untouched.
			s.Metrics.insufficientStorage()
			say(452, "insufficient system storage, try again later")
		case failed:
			// Transient store failure: degrade gracefully with 451
			// so the sender retries, instead of dropping the
			// connection. The message was NOT acknowledged.
			s.Metrics.tempFailure()
			say(451, "local error in processing, try again later")
		default:
			say(250, "delivered")
		}
	case "RSET":
		*st = session{}
		say(250, "ok")
	case "NOOP":
		say(250, "ok")
	case "QUIT":
		say(221, "bye")
		return true
	default:
		say(500, "unrecognized command")
	}
	return false
}

// readData reads a DATA body up to the lone-dot terminator, undoing
// dot-stuffing per RFC 5321 §4.5.2.
func readData(readLine func() (string, error)) ([]byte, error) {
	var b strings.Builder
	for {
		line, err := readLine()
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "." {
			return []byte(b.String()), nil
		}
		line = strings.TrimPrefix(line, ".")
		b.WriteString(line)
		b.WriteString("\n")
	}
}
