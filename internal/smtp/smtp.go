// Package smtp implements the unverified SMTP front end of §8.2: a
// minimal RFC 5321 server (HELO/EHLO, MAIL FROM, RCPT TO, DATA, RSET,
// NOOP, QUIT) that hands completed messages to the verified Mailboat
// library. Recipient addresses have the form userN@<anything>; the N
// selects the mailbox.
//
// The protocol implementation is deliberately outside the verified
// core, matching the paper's TCB boundary: "The protocol implementation
// is unverified, but works with the Postal mail server benchmarking
// library".
package smtp

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
)

// Deliverer accepts completed messages; the Mailboat adapter in
// cmd/mailboat implements it over the verified library.
type Deliverer interface {
	Deliver(user uint64, msg []byte) error
}

// ParseRecipient extracts the mailbox index from an address like
// "user7@example.com" (angle brackets optional).
func ParseRecipient(addr string, users uint64) (uint64, error) {
	addr = strings.TrimSpace(addr)
	addr = strings.TrimPrefix(addr, "<")
	addr = strings.TrimSuffix(addr, ">")
	local, _, _ := strings.Cut(addr, "@")
	if !strings.HasPrefix(local, "user") {
		return 0, fmt.Errorf("smtp: unknown mailbox %q", addr)
	}
	n, err := strconv.ParseUint(local[len("user"):], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("smtp: unknown mailbox %q", addr)
	}
	if n >= users {
		return 0, fmt.Errorf("smtp: mailbox %d out of range", n)
	}
	return n, nil
}

// Server is one SMTP listener.
type Server struct {
	users   uint64
	backend Deliverer

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup
}

// NewServer creates an SMTP server delivering into backend.
func NewServer(backend Deliverer, users uint64) *Server {
	return &Server{users: users, backend: backend}
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr (e.g. "127.0.0.1:2525") and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// Addr returns the listener address, for tests.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

type session struct {
	rcpts   []uint64
	inOrder bool // MAIL FROM seen
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	say := func(code int, msg string) bool {
		fmt.Fprintf(w, "%d %s\r\n", code, msg)
		return w.Flush() == nil
	}
	if !say(220, "mailboat SMTP service ready") {
		return
	}

	var st session
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		verb, arg, _ := strings.Cut(line, " ")
		switch strings.ToUpper(verb) {
		case "HELO", "EHLO":
			say(250, "mailboat at your service")
		case "MAIL":
			st = session{inOrder: true}
			say(250, "ok")
		case "RCPT":
			if !st.inOrder {
				say(503, "need MAIL first")
				continue
			}
			arg = strings.TrimPrefix(strings.TrimSpace(arg), "TO:")
			arg = strings.TrimPrefix(arg, "to:")
			user, err := ParseRecipient(arg, s.users)
			if err != nil {
				say(550, "no such mailbox")
				continue
			}
			st.rcpts = append(st.rcpts, user)
			say(250, "ok")
		case "DATA":
			if len(st.rcpts) == 0 {
				say(503, "need RCPT first")
				continue
			}
			if !say(354, "end with <CRLF>.<CRLF>") {
				return
			}
			body, err := readData(r)
			if err != nil {
				return
			}
			failed := false
			for _, user := range st.rcpts {
				if err := s.backend.Deliver(user, body); err != nil {
					failed = true
				}
			}
			st = session{}
			if failed {
				say(451, "delivery failed")
			} else {
				say(250, "delivered")
			}
		case "RSET":
			st = session{}
			say(250, "ok")
		case "NOOP":
			say(250, "ok")
		case "QUIT":
			say(221, "bye")
			return
		default:
			say(500, "unrecognized command")
		}
	}
}

// readData reads a DATA body up to the lone-dot terminator, undoing
// dot-stuffing per RFC 5321 §4.5.2.
func readData(r *bufio.Reader) ([]byte, error) {
	var b strings.Builder
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "." {
			return []byte(b.String()), nil
		}
		line = strings.TrimPrefix(line, ".")
		b.WriteString(line)
		b.WriteString("\n")
	}
}
