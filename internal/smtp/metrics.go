package smtp

import (
	"strings"
	"time"

	"repro/internal/obs"
)

// smtpVerbs are the commands that get their own counter series; any
// other input lands on "other" to bound label cardinality against
// hostile clients.
var smtpVerbs = []string{"HELO", "EHLO", "MAIL", "RCPT", "DATA", "RSET", "NOOP", "QUIT", "other"}

// Metrics is the SMTP front end's slice of the observability surface.
// All methods are nil-receiver-safe; a Server with nil Metrics behaves
// exactly as before.
type Metrics struct {
	Accepted *obs.Counter
	Refused  *obs.Counter
	Active   *obs.Gauge
	Panics   *obs.Counter

	commands map[string]*obs.Counter
	TempFail *obs.Counter
	Full     *obs.Counter
	CmdTime  *obs.Histogram
}

// NewMetrics registers the smtp_* metric families in r.
func NewMetrics(r *obs.Registry) *Metrics {
	m := &Metrics{
		Accepted: r.Counter("smtp_connections_accepted_total", "SMTP connections accepted for service."),
		Refused:  r.Counter("smtp_connections_refused_total", "SMTP connections refused with 421 (full or shutting down)."),
		Active:   r.Gauge("smtp_connections_active", "SMTP connections currently being served."),
		Panics:   r.Counter("smtp_handler_panics_total", "Connection handlers killed by a recovered panic."),
		TempFail: r.Counter("smtp_tempfail_responses_total", "451 responses sent (transient store failure surfaced to the sender)."),
		Full:     r.Counter("smtp_insufficient_storage_responses_total", "452 responses sent (store out of space or shedding load)."),
		CmdTime:  r.Histogram("smtp_command_seconds", "Latency from command receipt to response flush.", obs.DefLatencyBuckets),
		commands: map[string]*obs.Counter{},
	}
	for _, v := range smtpVerbs {
		m.commands[v] = r.Counter("smtp_commands_total", "SMTP commands processed, by verb.", "verb", v)
	}
	return m
}

// connOpened counts an accepted connection.
func (m *Metrics) connOpened() {
	if m == nil {
		return
	}
	m.Accepted.Inc()
	m.Active.Inc()
}

// connClosed retires an accepted connection.
func (m *Metrics) connClosed() {
	if m == nil {
		return
	}
	m.Active.Dec()
}

// connRefused counts a 421-refused connection.
func (m *Metrics) connRefused() {
	if m == nil {
		return
	}
	m.Refused.Inc()
}

// panicked counts a handler killed by a recovered panic.
func (m *Metrics) panicked() {
	if m == nil {
		return
	}
	m.Panics.Inc()
}

// cmdStart returns the command timestamp (zero when disabled).
func (m *Metrics) cmdStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// command records a processed command and its handling latency.
func (m *Metrics) command(verb string, start time.Time) {
	if m == nil {
		return
	}
	c, ok := m.commands[strings.ToUpper(verb)]
	if !ok {
		c = m.commands["other"]
	}
	c.Inc()
	m.CmdTime.ObserveSince(start)
}

// tempFailure counts one 451 response.
func (m *Metrics) tempFailure() {
	if m == nil {
		return
	}
	m.TempFail.Inc()
}

// insufficientStorage counts one 452 response.
func (m *Metrics) insufficientStorage() {
	if m == nil {
		return
	}
	m.Full.Inc()
}
