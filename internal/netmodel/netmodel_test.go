package netmodel

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/gfs"
	"repro/internal/machine"
)

// funcPolicy injects exactly where the test function says.
type funcPolicy func(f Fault, index uint64) bool

func (p funcPolicy) Decide(_ gfs.T, f Fault, i uint64) bool { return p(f, i) }

// netChooser picks c for "net" choices and 0 (deterministic scheduling)
// for everything else.
func netChooser(c int) machine.Chooser {
	return machine.ChooserFunc(func(n int, tag string) int {
		if tag == "net" && c < n {
			return c
		}
		return 0
	})
}

// echoRig binds node 1 to an echoing handler that records every request
// it sees, and returns the recorder.
func echoRig(n *Net) *[][]byte {
	var got [][]byte
	n.Bind(1, func(t gfs.T, req []byte) []byte {
		got = append(got, append([]byte(nil), req...))
		return append([]byte("ack:"), req...)
	})
	return &got
}

func TestPerfectLinkDelivers(t *testing.T) {
	mm := machine.New(machine.Options{})
	n := New(mm, NeverPolicy{})
	got := echoRig(n)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		resp, oc := n.Call(mt, 1, []byte("hello"))
		if oc != Delivered || string(resp) != "ack:hello" {
			mt.Failf("got %q %v", resp, oc)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
	if len(*got) != 1 || string((*got)[0]) != "hello" {
		t.Fatalf("handler saw %q", *got)
	}
	calls, faults := n.Counters()
	if faults != [NumFaults]uint64{} {
		t.Fatalf("faults injected under NeverPolicy: %v", faults)
	}
	// One call consults every class once.
	for f := Fault(0); f < NumFaults; f++ {
		if calls[f] != 1 {
			t.Fatalf("class %s counted %d decision points, want 1", f, calls[f])
		}
	}
}

func TestDropIsLostAndHandlerNeverRuns(t *testing.T) {
	mm := machine.New(machine.Options{})
	n := New(mm, AlwaysPolicy{Ops: map[Fault]bool{FaultDrop: true}})
	got := echoRig(n)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		if _, oc := n.Call(mt, 1, []byte("x")); oc != Lost {
			mt.Failf("want Lost, got %v", oc)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
	if len(*got) != 0 {
		t.Fatalf("dropped request reached the handler: %q", *got)
	}
}

func TestDropReplyIsUnknownAfterHandlerRan(t *testing.T) {
	mm := machine.New(machine.Options{})
	n := New(mm, AlwaysPolicy{Ops: map[Fault]bool{FaultDropReply: true}})
	got := echoRig(n)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		if resp, oc := n.Call(mt, 1, []byte("x")); oc != Unknown || resp != nil {
			mt.Failf("want Unknown/nil, got %v %q", oc, resp)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
	if len(*got) != 1 {
		t.Fatalf("handler ran %d times, want 1 (request was delivered)", len(*got))
	}
}

func TestDupRunsHandlerTwice(t *testing.T) {
	mm := machine.New(machine.Options{})
	n := New(mm, AlwaysPolicy{Ops: map[Fault]bool{FaultDup: true}})
	got := echoRig(n)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		if resp, oc := n.Call(mt, 1, []byte("x")); oc != Delivered || string(resp) != "ack:x" {
			mt.Failf("want first response, got %v %q", oc, resp)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
	if len(*got) != 2 {
		t.Fatalf("handler ran %d times, want 2", len(*got))
	}
}

func TestReorderStashAndLateDelivery(t *testing.T) {
	mm := machine.New(machine.Options{})
	n := New(mm, funcPolicy(func(f Fault, i uint64) bool {
		return f == FaultReorder && i == 0
	}))
	got := echoRig(n)
	// Chooser picks deliver-now at every flush opportunity.
	res := mm.RunEra(netChooser(1), false, func(mt *machine.T) {
		if _, oc := n.Call(mt, 1, []byte("stale")); oc != Unknown {
			mt.Failf("reordered call: want Unknown, got %v", oc)
		}
		if len(*got) != 0 {
			mt.Failf("stale frame delivered immediately")
		}
		if resp, oc := n.Call(mt, 1, []byte("fresh")); oc != Delivered || string(resp) != "ack:fresh" {
			mt.Failf("second call: %v %q", oc, resp)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
	// The stale frame arrived late — just before the fresh one.
	if len(*got) != 2 || string((*got)[0]) != "stale" || string((*got)[1]) != "fresh" {
		t.Fatalf("handler saw %q, want stale then fresh", *got)
	}
}

func TestReorderDroppedAfterMaxHolds(t *testing.T) {
	mm := machine.New(machine.Options{})
	n := New(mm, funcPolicy(func(f Fault, i uint64) bool {
		return f == FaultReorder && i == 0
	}))
	got := echoRig(n)
	// Chooser declines every flush opportunity: after maxHolds the
	// stale frame is gone for good.
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		n.Call(mt, 1, []byte("stale"))
		for i := 0; i < maxHolds+2; i++ {
			if _, oc := n.Call(mt, 1, []byte(fmt.Sprintf("m%d", i))); oc != Delivered {
				mt.Failf("call %d: %v", i, oc)
			}
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
	for _, req := range *got {
		if string(req) == "stale" {
			t.Fatalf("stale frame delivered after its hold budget expired")
		}
	}
	if len(n.stash[1]) != 0 {
		t.Fatalf("stash still holds %d frames", len(n.stash[1]))
	}
}

func TestPartitionBurstCutsBothDirections(t *testing.T) {
	mm := machine.New(machine.Options{})
	n := New(mm, funcPolicy(func(f Fault, i uint64) bool {
		return f == FaultPartition && i == 0
	}))
	echoRig(n)
	n.Bind(0, func(t gfs.T, req []byte) []byte { return []byte("pong") })
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		if _, oc := n.Call(mt, 1, []byte("a")); oc != Lost {
			mt.Failf("first burst casualty: %v", oc)
		}
		if !n.Partitioned() {
			mt.Failf("link not partitioned after injection")
		}
		// The burst eats the reverse direction too.
		if _, oc := n.Call(mt, 0, []byte("b")); oc != Lost {
			mt.Failf("reverse call during burst: %v", oc)
		}
		if n.Partitioned() {
			mt.Failf("burst of 2 should be spent")
		}
		if _, oc := n.Call(mt, 1, []byte("c")); oc != Delivered {
			mt.Failf("healed link: %v", oc)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
	if _, faults := n.Counters(); faults[FaultPartition] != 1 {
		t.Fatalf("partition injected %d times, want 1", faults[FaultPartition])
	}
}

// TestCrashHealsPartitionKeepsInFlight pins the asynchronous-network
// crash semantics: a site reboot re-establishes connectivity (the
// partition burst's remaining charge is gone) but does NOT retract
// reordered frames — they live in the network and can land after both
// ends rebooted, the hazard epoch fencing exists for.
func TestCrashHealsPartitionKeepsInFlight(t *testing.T) {
	mm := machine.New(machine.Options{})
	n := New(mm, funcPolicy(func(f Fault, i uint64) bool {
		switch f {
		case FaultReorder:
			return i == 0
		case FaultPartition:
			return i == 1 // second call starts a burst
		}
		return false
	}))
	got := echoRig(n)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		n.Call(mt, 1, []byte("stale")) // stashed
		n.Call(mt, 1, []byte("cut"))   // starts the burst
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
	if !n.Partitioned() || len(n.stash[1]) != 1 {
		t.Fatalf("pre-crash in-flight state missing: charge=%d stash=%d", n.charge, len(n.stash[1]))
	}
	// Reboot: the link comes back; the stale frame stays in flight.
	mm.CrashReset()
	if n.Partitioned() {
		t.Fatalf("crash did not heal the partition: charge=%d", n.charge)
	}
	if len(n.stash[1]) != 1 {
		t.Fatalf("crash retracted an in-flight frame: stash=%d", len(n.stash[1]))
	}
	res = mm.RunEra(netChooser(1), false, func(mt *machine.T) {
		if _, oc := n.Call(mt, 1, []byte("post")); oc != Delivered {
			mt.Failf("post-crash call: %v", oc)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era 2: %+v", res)
	}
	stale := false
	for _, req := range *got {
		if string(req) == "stale" {
			stale = true
		}
	}
	if !stale {
		t.Fatalf("in-flight frame was not deliverable after the reboot: got %q", *got)
	}
}

// TestSeededReplayParity is the netmodel mirror of the gfs seeded-fault
// parity tests: the same seed reproduces the same injection log and the
// same per-call outcomes, bit for bit.
func TestSeededReplayParity(t *testing.T) {
	run := func(seed int64) ([]Event, []Outcome) {
		mm := machine.New(machine.Options{MaxSteps: 100000})
		pol := &SeededPolicy{Seed: seed, Rates: UniformRates(3)}
		n := New(mm, pol)
		echoRig(n)
		n.Bind(0, func(t gfs.T, req []byte) []byte { return req })
		var ocs []Outcome
		res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
			for i := 0; i < 40; i++ {
				_, oc := n.Call(mt, i%2, []byte(fmt.Sprintf("m%d", i)))
				ocs = append(ocs, oc)
			}
		})
		if res.Outcome != machine.Done {
			t.Fatalf("era: %+v", res)
		}
		return n.Log(), ocs
	}
	log1, ocs1 := run(42)
	log2, ocs2 := run(42)
	if len(log1) == 0 {
		t.Fatalf("drill injected nothing at rate 3 over 40 calls")
	}
	if fmt.Sprint(log1) != fmt.Sprint(log2) {
		t.Fatalf("same seed, different logs:\n%v\n%v", log1, log2)
	}
	if fmt.Sprint(ocs1) != fmt.Sprint(ocs2) {
		t.Fatalf("same seed, different outcomes:\n%v\n%v", ocs1, ocs2)
	}
}

// TestChooserSeedCrossCheck drives the same single injection once from
// the chooser axis (ChooserPolicy, tag "net") and once from the seeded
// axis, and demands identical logs and identical call-by-call outcomes
// — the cross-check the storage fault classes maintain between their
// two policy mirrors.
func TestChooserSeedCrossCheck(t *testing.T) {
	drive := func(pol Policy, ch machine.Chooser) ([]Event, []Outcome) {
		mm := machine.New(machine.Options{MaxSteps: 100000})
		n := New(mm, pol)
		echoRig(n)
		var ocs []Outcome
		res := mm.RunEra(ch, false, func(mt *machine.T) {
			for i := 0; i < 5; i++ {
				_, oc := n.Call(mt, 1, []byte("m"))
				ocs = append(ocs, oc)
			}
		})
		if res.Outcome != machine.Done {
			t.Fatalf("era: %+v", res)
		}
		return n.Log(), ocs
	}
	// Chooser axis: budget 1, partitions only, chooser says yes — the
	// first partition decision point (call 1) injects.
	chLog, chOcs := drive(
		&ChooserPolicy{Budget: 1, Eligible: map[Fault]bool{FaultPartition: true}},
		netChooser(1))
	// Seeded axis: rate 1 with a per-class cap of 1 injects at exactly
	// index 0 of the partition class — the same decision point.
	sp := &SeededPolicy{Seed: 7, Rates: [NumFaults]uint64{FaultPartition: 1}}
	sp.MaxPerClass[FaultPartition] = 1
	sdLog, sdOcs := drive(sp, machine.SeqChooser{})
	if fmt.Sprint(chLog) != fmt.Sprint(sdLog) {
		t.Fatalf("axes disagree on the log:\nchooser: %v\nseeded:  %v", chLog, sdLog)
	}
	if fmt.Sprint(chOcs) != fmt.Sprint(sdOcs) {
		t.Fatalf("axes disagree on outcomes:\nchooser: %v\nseeded:  %v", chOcs, sdOcs)
	}
}

func TestChooserPolicyBudget(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 100000})
	pol := &ChooserPolicy{Budget: 2}
	n := New(mm, pol)
	echoRig(n)
	res := mm.RunEra(netChooser(1), false, func(mt *machine.T) {
		for i := 0; i < 20; i++ {
			n.Call(mt, 1, []byte("m"))
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
	_, faults := n.Counters()
	var total uint64
	for _, c := range faults {
		total += c
	}
	if total != 2 {
		t.Fatalf("injected %d faults with budget 2: %v", total, faults)
	}
}

func TestFingerprintCoversInFlightState(t *testing.T) {
	mm := machine.New(machine.Options{})
	n := New(mm, funcPolicy(func(f Fault, i uint64) bool {
		return f == FaultReorder && i == 0
	}))
	echoRig(n)
	quiet := n.AppendDurable(nil)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		n.Call(mt, 1, []byte("stale"))
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
	busy := n.AppendDurable(nil)
	if bytes.Equal(quiet, busy) {
		t.Fatalf("fingerprint blind to a held frame")
	}
	// The frame survives the reboot, and so must its fingerprint: two
	// post-crash states that differ only in an in-flight frame must not
	// dedup together.
	mm.CrashReset()
	if !bytes.Equal(busy, n.AppendDurable(nil)) {
		t.Fatalf("crash changed the fingerprint of surviving in-flight state")
	}
}
