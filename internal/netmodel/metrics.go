package netmodel

import "repro/internal/obs"

// NetMetrics is the network layer's observability surface (net_*):
// calls, their outcomes as the caller saw them, injected faults per
// class, and late deliveries of reordered frames. Every method is
// nil-receiver-safe so the modeled Net — and any deployment transport
// sharing the surface — instruments itself unconditionally while
// checker runs (Metrics == nil) stay metric-free by construction.
type NetMetrics struct {
	Calls          *obs.Counter
	Delivered      *obs.Counter
	Lost           *obs.Counter
	Unknown        *obs.Counter
	StaleDelivered *obs.Counter
	Faults         [NumFaults]*obs.Counter
}

// NewNetMetrics registers the net_* metric families in r.
func NewNetMetrics(r *obs.Registry) *NetMetrics {
	m := &NetMetrics{
		Calls:     r.Counter("net_calls_total", "Calls attempted over the replication link."),
		Delivered: r.Counter("net_outcomes_total", "Call outcomes as observed by the caller.", "outcome", Delivered.String()),
		Lost:      r.Counter("net_outcomes_total", "Call outcomes as observed by the caller.", "outcome", Lost.String()),
		Unknown:   r.Counter("net_outcomes_total", "Call outcomes as observed by the caller.", "outcome", Unknown.String()),
		StaleDelivered: r.Counter("net_stale_delivered_total",
			"Reordered frames delivered late (their responses were discarded)."),
	}
	for f := Fault(0); f < NumFaults; f++ {
		m.Faults[f] = r.Counter("net_faults_injected_total", "Injected network faults per class.", "class", f.String())
	}
	return m
}

// CallsInc counts one call attempt.
func (m *NetMetrics) CallsInc() {
	if m == nil {
		return
	}
	m.Calls.Inc()
}

// OutcomeObserved counts one call outcome.
func (m *NetMetrics) OutcomeObserved(o Outcome) {
	if m == nil {
		return
	}
	switch o {
	case Delivered:
		m.Delivered.Inc()
	case Lost:
		m.Lost.Inc()
	case Unknown:
		m.Unknown.Inc()
	}
}

// FaultInjected counts one injected fault of class f.
func (m *NetMetrics) FaultInjected(f Fault) {
	if m == nil {
		return
	}
	if f >= 0 && f < NumFaults {
		m.Faults[f].Inc()
	}
}

// StaleDeliveredInc counts one late delivery of a reordered frame.
func (m *NetMetrics) StaleDeliveredInc() {
	if m == nil {
		return
	}
	m.StaleDelivered.Inc()
}
