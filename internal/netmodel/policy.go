package netmodel

import (
	"fmt"
	"sync"

	"repro/internal/gfs"
	"repro/internal/machine"
)

// Fault enumerates the network fault classes Net can inject — the
// message-level analogue of gfs.Faulty's operation classes. Every class
// is transient in the sense that the link eventually works again
// (a partition is a bounded burst, see FaultPartition), so none needs
// the explicit opt-in that gfs reserves for permanent death and silent
// rot: node death stays where it already lives, on the node's own
// fail-stop fault axis.
type Fault int

const (
	// FaultDrop loses the request frame: the handler never runs, the
	// caller observes Lost — a definite no.
	FaultDrop Fault = iota
	// FaultDup delivers the request twice back to back; the duplicate's
	// response has no waiting caller and is discarded. Protocols must be
	// idempotent against it.
	FaultDup
	// FaultReorder holds the request aside instead of delivering it: the
	// caller observes Unknown (the frame is still in flight), and the
	// stale frame may be delivered — out of order — at a later call to
	// the same destination, or never. Each later call to that
	// destination is one redelivery opportunity (chooser-enumerated);
	// after maxHolds missed opportunities the stale frame is dropped for
	// good.
	FaultReorder
	// FaultDropReply delivers the request and runs the handler, then
	// loses the response frame: the caller observes Unknown — the
	// request may have been applied. The indeterminate outcome every
	// distributed client leg has to survive.
	FaultDropReply
	// FaultPartition cuts the link for a bounded burst: this call and
	// the next PartitionBurst-1 calls in either direction are Lost, then
	// the link heals by itself (a cable pulled and re-seated; an
	// unbounded cut would let retry loops diverge, so the enumerable
	// form is the bounded one — deployments model long partitions
	// operationally instead).
	FaultPartition
	// NumFaults is the number of network fault classes.
	NumFaults
)

// String names the fault class.
func (f Fault) String() string {
	switch f {
	case FaultDrop:
		return "drop"
	case FaultDup:
		return "duplicate"
	case FaultReorder:
		return "reorder"
	case FaultDropReply:
		return "drop-reply"
	case FaultPartition:
		return "partition"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// Event is one injected network fault, recorded in the replayable log.
// Index is the per-class decision-point counter at injection time, so
// an event identifies exactly which call faulted regardless of how
// calls interleaved.
type Event struct {
	Fault  Fault
	Index  uint64
	Detail string
}

// String renders the event for logs and debugging.
func (e Event) String() string {
	return fmt.Sprintf("%s#%d %s", e.Fault, e.Index, e.Detail)
}

// Policy decides, for the index-th decision point of a fault class,
// whether to inject. Implementations must be safe for concurrent use
// when the transport is (SeededPolicy is; the model-only ChooserPolicy
// need not be).
type Policy interface {
	Decide(t gfs.T, f Fault, index uint64) bool
}

// splitmix64 is the SplitMix64 mixer, the same one gfs.SeededPolicy
// uses: fault decisions are a pure function of (seed, class, index) and
// therefore independent of goroutine interleaving.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SeededPolicy injects network faults deterministically from a seed —
// the mirror of gfs.SeededPolicy at the message layer: the index-th
// decision point of class f faults iff a hash of (Seed, f, index) lands
// in the 1-in-Rates[f] window. The same seed reproduces the same fault
// schedule bit for bit, which is what makes production network drills
// replayable.
type SeededPolicy struct {
	// Seed selects the schedule.
	Seed int64
	// Rates[f] = N means roughly 1 in N decision points of that class
	// inject; 0 disables the class.
	Rates [NumFaults]uint64

	// MaxFaults, when nonzero, caps the total number of injections. The
	// cap is a global counter, so with concurrent callers *which* calls
	// land under the cap can vary — use 0 (unlimited) when bit-for-bit
	// log reproducibility matters.
	MaxFaults uint64

	// MaxPerClass, when nonzero for a class, caps that class's
	// injections independently of MaxFaults (same concurrency caveat) —
	// e.g. at most one partition burst per drill.
	MaxPerClass [NumFaults]uint64

	mu       sync.Mutex
	injected uint64
	perClass [NumFaults]uint64
}

// UniformRates returns a Rates array injecting every class 1 in n
// decision points. Unlike gfs.UniformRates nothing is held back: every
// network class is recoverable, so a uniform drill may exercise all of
// them.
func UniformRates(n uint64) [NumFaults]uint64 {
	var r [NumFaults]uint64
	for f := Fault(0); f < NumFaults; f++ {
		r[f] = n
	}
	return r
}

// Decide implements Policy.
func (p *SeededPolicy) Decide(_ gfs.T, f Fault, index uint64) bool {
	rate := p.Rates[f]
	if rate == 0 {
		return false
	}
	h := splitmix64(uint64(p.Seed) ^ splitmix64(uint64(f)+1) ^ splitmix64(index))
	if h%rate != 0 {
		return false
	}
	if p.MaxFaults > 0 || p.MaxPerClass[f] > 0 {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.MaxFaults > 0 && p.injected >= p.MaxFaults {
			return false
		}
		if p.MaxPerClass[f] > 0 && p.perClass[f] >= p.MaxPerClass[f] {
			return false
		}
		p.injected++
		p.perClass[f]++
	}
	return true
}

// ChooserPolicy resolves network fault decisions through the modeled
// machine's Chooser under the single tag "net", so the model checker
// enumerates message loss, duplication, reordering and partitions
// exactly like it enumerates schedules, crash points and store faults.
// Budget bounds injections per execution: once spent, no further
// choices are consumed, keeping the DFS space finite even though
// protocols retry lost calls. Eligible, when non-nil, restricts which
// classes branch (nil means all — every network class heals). PerClass,
// when non-nil, caps individual classes within the overall Budget.
//
// A ChooserPolicy is per-execution state; build a fresh one in the
// scenario's Setup and cover its spent budget in the scenario's
// Fingerprint hook via AppendState.
type ChooserPolicy struct {
	Budget   int
	Eligible map[Fault]bool
	PerClass map[Fault]int
	used     int
	perClass [NumFaults]int
}

// Decide implements Policy. With a non-model thread it never injects.
func (p *ChooserPolicy) Decide(t gfs.T, f Fault, index uint64) bool {
	mt, ok := t.(*machine.T)
	if !ok || p.used >= p.Budget {
		return false
	}
	if p.Eligible != nil && !p.Eligible[f] {
		return false
	}
	if p.PerClass != nil {
		if cap, capped := p.PerClass[f]; capped && p.perClass[f] >= cap {
			return false
		}
	}
	if mt.Choose(2, "net") == 1 {
		p.used++
		p.perClass[f]++
		return true
	}
	return false
}

// AppendState appends the policy's spent budgets — the only mutable
// state a ChooserPolicy carries across a crash (it lives in the
// scenario world, not on the machine). Configuration fields are
// per-scenario constants and excluded.
func (p *ChooserPolicy) AppendState(b []byte) []byte {
	b = machine.AppendUint64(b, uint64(p.used))
	for _, c := range p.perClass {
		b = machine.AppendUint64(b, uint64(c))
	}
	return b
}

// NeverPolicy injects nothing; a Net wrapped with it is a perfect
// network (useful for differential tests).
type NeverPolicy struct{}

// Decide implements Policy.
func (NeverPolicy) Decide(gfs.T, Fault, uint64) bool { return false }

// AlwaysPolicy injects every decision point of the classes in Ops (all
// classes when Ops is nil) — for tests exercising retry exhaustion.
type AlwaysPolicy struct{ Ops map[Fault]bool }

// Decide implements Policy.
func (p AlwaysPolicy) Decide(_ gfs.T, f Fault, _ uint64) bool {
	if p.Ops == nil {
		return true
	}
	return p.Ops[f]
}
