// Package netmodel is the modeled lossy network of the Grove setting:
// a two-endpoint message link on which send/receive is one atomic
// machine step and drop, duplication, reordering and bounded partitions
// are chooser-enumerable fault classes (tag "net") with per-class
// budgets, mirrored by a SeededPolicy for replayable drills — exactly
// the shape gfs.Faulty gives storage faults, one layer up the stack.
//
// The model is synchronous RPC: Call sends a request frame to the
// destination and, when the frame is delivered, runs the destination's
// handler inline on the calling thread (the handler's own store
// operations remain individually scheduled machine steps, so a remote
// apply is NOT atomic — only the frame transfer is). The caller
// observes one of three outcomes:
//
//   - Delivered: the handler ran and its response arrived.
//   - Lost:      the request never reached the destination — a definite
//     no; whatever the request asked for did not happen.
//   - Unknown:   the request may have been (or may yet be) delivered
//     but no response will come — the indeterminate outcome a client
//     leg must treat as "maybe applied".
//
// Net is a machine.Device with the asynchronous-network crash
// semantics of the Grove setting: a machine crash (site reboot) heals
// the partition burst — re-establishing connectivity is what booting
// does — but held reordered frames SURVIVE the reboot, because they
// live in the network, not on either node. A frame a retransmitting
// fabric still holds can land after both ends rebooted, which is
// exactly the hazard epoch fencing exists to stop; the device's
// Fingerprinter encoding lets crash-boundary dedup distinguish states
// by their in-flight frames and partition charge.
package netmodel

import (
	"fmt"

	"repro/internal/gfs"
	"repro/internal/machine"
)

// Outcome classifies what the caller of Net.Call (or any Transport
// built to the same contract, like repl's TCP client) learned about its
// request.
type Outcome int

const (
	// Delivered: handler ran, response returned.
	Delivered Outcome = iota
	// Lost: the request was never delivered — a definite no.
	Lost
	// Unknown: the request may have been applied; the reply is gone.
	Unknown
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Delivered:
		return "delivered"
	case Lost:
		return "lost"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Handler serves one endpoint's requests. It runs inline on the calling
// thread; its store operations are ordinary scheduled steps.
type Handler func(t gfs.T, req []byte) []byte

// maxHolds bounds how many redelivery opportunities a reordered frame
// may decline before the network drops it for good, keeping the choice
// tree finite.
const maxHolds = 3

// held is one reordered request frame waiting for a late delivery.
type held struct {
	req   []byte
	holds int
}

// Net models the link between two nodes (endpoints 0 and 1). It is
// model-only — Call requires a *machine.T — and relies on the machine
// scheduler's serialization instead of locks.
type Net struct {
	policy Policy

	// PartitionBurst is how many calls (across both directions) one
	// injected partition loses before the link heals; 0 means the
	// default of 2. Set it before traffic starts.
	PartitionBurst int

	// Metrics, when non-nil, counts calls, outcomes and injected faults
	// (net_*). Leave nil under the checker; every method is
	// nil-receiver-safe.
	Metrics *NetMetrics

	handlers [2]Handler
	charge   int       // remaining calls a partition burst will eat
	stash    [2][]held // reordered frames per destination
	calls    [NumFaults]uint64
	faults   [NumFaults]uint64
	log      []Event
}

// New returns a Net driven by policy and registers it as a device on m,
// so crashes clear the in-flight state and dedup fingerprints cover it.
func New(m *machine.Machine, policy Policy) *Net {
	n := &Net{policy: policy}
	m.RegisterDevice(n)
	return n
}

// Bind installs node's request handler.
func (n *Net) Bind(node int, h Handler) { n.handlers[node] = h }

// Crash implements machine.Device: a site reboot re-establishes the
// link, so a burst partition's remaining charge is moot — but held
// reordered frames are the NETWORK's state, not the site's, and stay
// in flight across the reboot. Replication protocols must fence them
// out by epoch, not count on a crash to retract them.
func (n *Net) Crash() {
	n.charge = 0
}

// AppendDurable implements machine.Fingerprinter. The in-flight frames
// and the partition charge determine which future behaviors are
// reachable, so they are part of the canonical state (at a crash
// boundary both are freshly zeroed — encoding them keeps the device
// honest if fingerprints are ever taken elsewhere). Like gfs.Faulty,
// the per-class decision counters are excluded: ChooserPolicy ignores
// indices, and scenarios driving a Net from a SeededPolicy must not
// enable dedup.
func (n *Net) AppendDurable(b []byte) []byte {
	b = machine.AppendUint64(b, uint64(n.charge))
	for dst := range n.stash {
		b = machine.AppendUint64(b, uint64(len(n.stash[dst])))
		for _, h := range n.stash[dst] {
			b = machine.AppendBytes(b, h.req)
			b = machine.AppendUint64(b, uint64(h.holds))
		}
	}
	return b
}

// Counters returns per-class (decision points, injected faults).
func (n *Net) Counters() (calls, faults [NumFaults]uint64) {
	return n.calls, n.faults
}

// Log returns a copy of the injection log in injection order.
func (n *Net) Log() []Event {
	return append([]Event{}, n.log...)
}

// Partitioned reports whether a partition burst is still eating calls.
func (n *Net) Partitioned() bool { return n.charge > 0 }

// PartitionNow cuts the link for the next k calls, bypassing the policy
// — the operational drill switch, recorded like an injected partition.
func (n *Net) PartitionNow(k int) {
	n.charge = k
	n.faults[FaultPartition]++
	n.log = append(n.log, Event{Fault: FaultPartition, Index: n.calls[FaultPartition], Detail: fmt.Sprintf("operator cut, %d calls", k)})
	n.Metrics.FaultInjected(FaultPartition)
}

// burst returns the configured partition burst length.
func (n *Net) burst() int {
	if n.PartitionBurst > 0 {
		return n.PartitionBurst
	}
	return 2
}

// decide counts one decision point of class f and asks the policy; on
// injection it records the replayable event. No extra machine step is
// taken — the decision rides the call's single send step.
func (n *Net) decide(mt *machine.T, f Fault, detail string) bool {
	idx := n.calls[f]
	n.calls[f]++
	if !n.policy.Decide(mt, f, idx) {
		return false
	}
	mt.Tracef("net.fault %s#%d %s", f, idx, detail)
	n.faults[f]++
	n.log = append(n.log, Event{Fault: f, Index: idx, Detail: detail})
	n.Metrics.FaultInjected(f)
	return true
}

// flushStale offers every held frame destined for dst one redelivery
// opportunity: the chooser picks deliver-now (the stale frame arrives
// just before the current one — reordering made concrete) or
// hold-longer; after maxHolds declined opportunities the frame is
// dropped for good. The late handler's response has no waiting caller
// and is discarded. These choices consume no fault budget — they
// complete a reorder that was already paid for.
func (n *Net) flushStale(mt *machine.T, dst int) {
	kept := n.stash[dst][:0]
	for _, h := range n.stash[dst] {
		if mt.Choose(2, "net") == 1 {
			mt.Tracef("net.stale-delivery to node %d (%d bytes)", dst, len(h.req))
			n.handlers[dst](mt, h.req)
			n.Metrics.StaleDeliveredInc()
			continue
		}
		h.holds++
		if h.holds < maxHolds {
			kept = append(kept, h)
		}
	}
	n.stash[dst] = kept
}

// Call sends req to node dst and reports the response and what the
// caller may conclude. The send is one atomic machine step; every fault
// class then gets its decision point in a fixed order (partition, drop,
// reorder, duplicate, drop-reply), and the handler — when the frame is
// delivered — runs inline on this thread.
func (n *Net) Call(t gfs.T, dst int, req []byte) ([]byte, Outcome) {
	mt, ok := t.(*machine.T)
	if !ok {
		panic("netmodel: Net.Call requires a modeled thread; deployments use a real transport")
	}
	if dst < 0 || dst >= len(n.handlers) || n.handlers[dst] == nil {
		mt.Failf("netmodel: call to unbound node %d", dst)
	}
	n.Metrics.CallsInc()
	mt.Step("net.send")

	// A partition burst in progress eats the frame, whichever direction
	// it travels; no further decisions are consulted while it lasts.
	if n.charge > 0 {
		n.charge--
		mt.Tracef("net.partitioned call to node %d (%d calls left in burst)", dst, n.charge)
		n.Metrics.OutcomeObserved(Lost)
		return nil, Lost
	}
	detail := fmt.Sprintf("call to node %d (%d bytes)", dst, len(req))
	if n.decide(mt, FaultPartition, detail) {
		n.charge = n.burst() - 1 // this call is the burst's first casualty
		n.Metrics.OutcomeObserved(Lost)
		return nil, Lost
	}
	if n.decide(mt, FaultDrop, detail) {
		n.Metrics.OutcomeObserved(Lost)
		return nil, Lost
	}

	// The link is passing frames: stale reordered frames get their
	// redelivery opportunities before the current one lands.
	n.flushStale(mt, dst)

	if n.decide(mt, FaultReorder, detail) {
		n.stash[dst] = append(n.stash[dst], held{req: append([]byte(nil), req...)})
		n.Metrics.OutcomeObserved(Unknown)
		return nil, Unknown // still in flight: maybe delivered later
	}
	if n.decide(mt, FaultDup, detail) {
		resp := n.handlers[dst](mt, req)
		n.handlers[dst](mt, req) // duplicate arrival; its response is discarded
		if n.decide(mt, FaultDropReply, detail) {
			n.Metrics.OutcomeObserved(Unknown)
			return nil, Unknown
		}
		n.Metrics.OutcomeObserved(Delivered)
		return resp, Delivered
	}
	resp := n.handlers[dst](mt, req)
	if n.decide(mt, FaultDropReply, detail) {
		n.Metrics.OutcomeObserved(Unknown)
		return nil, Unknown
	}
	n.Metrics.OutcomeObserved(Delivered)
	return resp, Delivered
}
