package gfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/machine"
)

func newOSFS(t *testing.T, dirs []string) *OS {
	t.Helper()
	o, err := NewOS(t.TempDir(), dirs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(o.CloseAll)
	return o
}

func TestOSCreateWriteReadBack(t *testing.T) {
	o := newOSFS(t, []string{"spool"})
	n := NewNative(1)
	fd, ok := o.Create(n, "spool", "msg")
	if !ok {
		t.Fatal("create failed")
	}
	o.Append(n, fd, []byte("hello "))
	o.Append(n, fd, []byte("world"))
	o.Close(n, fd)

	rfd, ok := o.Open(n, "spool", "msg")
	if !ok {
		t.Fatal("open failed")
	}
	defer o.Close(n, rfd)
	if got := o.Size(n, rfd); got != 11 {
		t.Fatalf("size=%d", got)
	}
	if got := string(o.ReadAt(n, rfd, 0, 100)); got != "hello world" {
		t.Fatalf("read %q", got)
	}
	if got := string(o.ReadAt(n, rfd, 6, 5)); got != "world" {
		t.Fatalf("partial read %q", got)
	}
	if got := o.ReadAt(n, rfd, 11, 5); len(got) != 0 {
		t.Fatalf("read past EOF: %q", got)
	}
}

func TestOSCreateExistingFails(t *testing.T) {
	o := newOSFS(t, []string{"d"})
	n := NewNative(1)
	fd, ok := o.Create(n, "d", "x")
	if !ok {
		t.Fatal("first create failed")
	}
	o.Close(n, fd)
	if _, ok := o.Create(n, "d", "x"); ok {
		t.Fatal("duplicate create succeeded")
	}
}

func TestOSLinkAndDelete(t *testing.T) {
	o := newOSFS(t, []string{"spool", "u0"})
	n := NewNative(1)
	fd, _ := o.Create(n, "spool", "tmp")
	o.Append(n, fd, []byte("mail"))
	o.Close(n, fd)
	if !o.Link(n, "spool", "tmp", "u0", "msg1") {
		t.Fatal("link failed")
	}
	if o.Link(n, "spool", "tmp", "u0", "msg1") {
		t.Fatal("link over existing succeeded")
	}
	if !o.Delete(n, "spool", "tmp") {
		t.Fatal("delete failed")
	}
	rfd, ok := o.Open(n, "u0", "msg1")
	if !ok {
		t.Fatal("open after unlink of other name failed")
	}
	defer o.Close(n, rfd)
	if got := string(o.ReadAt(n, rfd, 0, 10)); got != "mail" {
		t.Fatalf("read %q", got)
	}
}

func TestOSListSortedAndSkipsDirs(t *testing.T) {
	o := newOSFS(t, []string{"d"})
	n := NewNative(1)
	for _, name := range []string{"zz", "aa"} {
		fd, _ := o.Create(n, "d", name)
		o.Close(n, fd)
	}
	got := o.List(n, "d")
	if len(got) != 2 || got[0] != "aa" || got[1] != "zz" {
		t.Fatalf("list=%v", got)
	}
}

func TestOSOpenMissingReturnsFalse(t *testing.T) {
	o := newOSFS(t, []string{"d"})
	n := NewNative(1)
	if _, ok := o.Open(n, "d", "ghost"); ok {
		t.Fatal("open of missing file succeeded")
	}
	if o.Delete(n, "d", "ghost") {
		t.Fatal("delete of missing file succeeded")
	}
}

// TestOSSyncAndSyncDirHappyPath: barriers on live descriptors and
// known directories report success.
func TestOSSyncAndSyncDirHappyPath(t *testing.T) {
	o := newOSFS(t, []string{"d"})
	n := NewNative(1)
	fd, ok := o.Create(n, "d", "f")
	if !ok {
		t.Fatal("create failed")
	}
	o.Append(n, fd, []byte("data"))
	if !o.Sync(n, fd) {
		t.Fatal("fsync of a live descriptor failed")
	}
	o.Close(n, fd)
	if !o.SyncDir(n, "d") {
		t.Fatal("directory fsync failed")
	}
}

// TestOSSyncOnClosedFDReportsFailure: fsync on a closed descriptor must
// report false, never panic — it is the caller's signal that the bytes
// may not be durable.
func TestOSSyncOnClosedFDReportsFailure(t *testing.T) {
	o := newOSFS(t, []string{"d"})
	n := NewNative(1)
	fd, _ := o.Create(n, "d", "f")
	o.Close(n, fd)
	if o.Sync(n, fd) {
		t.Fatal("fsync of a closed descriptor reported success")
	}
}

// TestOSSyncDirOnVanishedDirReportsFailure: if the directory cannot be
// opened for the fsync (here: removed out from under the cached layout,
// as a disk-level fault would present), SyncDir reports false — a
// failed directory barrier, not a panic and not a silent success.
func TestOSSyncDirOnVanishedDirReportsFailure(t *testing.T) {
	o := newOSFS(t, []string{"d"})
	n := NewNative(1)
	if err := os.RemoveAll(filepath.Join(o.Path(), "d")); err != nil {
		t.Fatal(err)
	}
	if o.SyncDir(n, "d") {
		t.Fatal("SyncDir on a vanished directory reported success")
	}
}

// TestOSSyncDirUnknownDirPanics: an unknown directory is a fixed-layout
// violation — a programming error, not a runtime fault — and panics
// like every other operation on the OS backend.
func TestOSSyncDirUnknownDirPanics(t *testing.T) {
	o := newOSFS(t, []string{"d"})
	n := NewNative(1)
	defer func() {
		if recover() == nil {
			t.Fatal("SyncDir on an unknown directory did not panic")
		}
	}()
	o.SyncDir(n, "nope")
}

func TestNativeRandBounded(t *testing.T) {
	n := NewNative(7)
	for i := 0; i < 1000; i++ {
		if v := n.RandUint64(10); v >= 10 {
			t.Fatalf("rand out of bounds: %d", v)
		}
	}
}

// TestBackendEquivalence drives identical valid operation sequences
// against the model and the OS backend and requires identical observable
// results — the reproduction's version of trusting that the Goose model
// matches the running file system (§9.2's TCB discussion).
func TestBackendEquivalence(t *testing.T) {
	dirs := []string{"spool", "u0", "u1"}
	names := []string{"a", "b", "c"}

	for seed := int64(1); seed <= 40; seed++ {
		osfs := newOSFS(t, dirs)
		n := NewNative(seed)

		// Generate a random but always-valid op script.
		type rec struct {
			op   string
			outs []string
		}
		var osLog, mLog []rec

		drive := func(sys System, th T, log *[]rec) {
			rng := NewNative(seed) // same decisions on both backends
			type open struct {
				fd      FD
				append_ bool
			}
			var fds []open
			exists := map[string]bool{} // "dir/name"
			for step := 0; step < 60; step++ {
				dir := dirs[rng.RandUint64(uint64(len(dirs)))]
				name := names[rng.RandUint64(uint64(len(names)))]
				switch rng.RandUint64(7) {
				case 0:
					fd, ok := sys.Create(th, dir, name)
					*log = append(*log, rec{op: "create " + dir + "/" + name, outs: []string{boolStr(ok)}})
					if ok {
						exists[dir+"/"+name] = true
						fds = append(fds, open{fd: fd, append_: true})
					}
				case 1:
					if len(fds) == 0 {
						continue
					}
					f := fds[rng.RandUint64(uint64(len(fds)))]
					if !f.append_ {
						continue
					}
					data := []byte(name + "-data")
					sys.Append(th, f.fd, data)
					*log = append(*log, rec{op: "append"})
				case 2:
					fd, ok := sys.Open(th, dir, name)
					*log = append(*log, rec{op: "open " + dir + "/" + name, outs: []string{boolStr(ok)}})
					if ok {
						fds = append(fds, open{fd: fd})
					}
				case 3:
					if len(fds) == 0 {
						continue
					}
					i := rng.RandUint64(uint64(len(fds)))
					f := fds[i]
					if f.append_ {
						continue
					}
					data := sys.ReadAt(th, f.fd, 0, 64)
					*log = append(*log, rec{op: "read", outs: []string{string(data)}})
				case 4:
					ok := sys.Delete(th, dir, name)
					*log = append(*log, rec{op: "delete " + dir + "/" + name, outs: []string{boolStr(ok)}})
					delete(exists, dir+"/"+name)
				case 5:
					dir2 := dirs[rng.RandUint64(uint64(len(dirs)))]
					name2 := names[rng.RandUint64(uint64(len(names)))]
					if !exists[dir+"/"+name] {
						continue
					}
					ok := sys.Link(th, dir, name, dir2, name2)
					*log = append(*log, rec{op: "link", outs: []string{boolStr(ok)}})
					if ok {
						exists[dir2+"/"+name2] = true
					}
				case 6:
					ls := sys.List(th, dir)
					*log = append(*log, rec{op: "list " + dir, outs: ls})
				}
			}
			for _, f := range fds {
				sys.Close(th, f.fd)
			}
		}

		drive(osfs, n, &osLog)

		// Model run inside one era.
		mm := machine.New(machine.Options{})
		mfs := NewModel(mm, dirs)
		res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
			drive(mfs, mt, &mLog)
		})
		if res.Err != nil {
			t.Fatalf("seed %d: model violation: %v", seed, res.Err)
		}

		if len(osLog) != len(mLog) {
			t.Fatalf("seed %d: log lengths differ: os=%d model=%d", seed, len(osLog), len(mLog))
		}
		for i := range osLog {
			if osLog[i].op != mLog[i].op {
				t.Fatalf("seed %d step %d: ops diverge: %q vs %q", seed, i, osLog[i].op, mLog[i].op)
			}
			if len(osLog[i].outs) != len(mLog[i].outs) {
				t.Fatalf("seed %d step %d (%s): outputs differ: %v vs %v",
					seed, i, osLog[i].op, osLog[i].outs, mLog[i].outs)
			}
			for k := range osLog[i].outs {
				if osLog[i].outs[k] != mLog[i].outs[k] {
					t.Fatalf("seed %d step %d (%s): output %d differs: %q vs %q",
						seed, i, osLog[i].op, k, osLog[i].outs[k], mLog[i].outs[k])
				}
			}
		}
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

// TestOSLimitedHandleCache: the bounded directory-handle cache serves
// a layout far larger than its budget — every op works on every dir,
// cold handles are evicted and transparently reopened, and the open
// handle count never exceeds budget + in-flight ops.
func TestOSLimitedHandleCache(t *testing.T) {
	th := NewNative(1)
	dirs := make([]string, 64)
	for i := range dirs {
		dirs[i] = fmt.Sprintf("d%02d", i)
	}
	o, err := NewOSLimited(t.TempDir(), dirs, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer o.CloseAll()

	// Round-robin far past the budget: each touch evicts the coldest.
	for round := 0; round < 3; round++ {
		for _, d := range dirs {
			fd, ok := o.Create(th, d, fmt.Sprintf("m%d", round))
			if !ok {
				t.Fatalf("create in %s round %d failed", d, round)
			}
			if !o.Append(th, fd, []byte("x")) {
				t.Fatalf("append in %s failed", d)
			}
			o.Close(th, fd)
		}
	}
	if got := len(o.roots); got > 4 {
		t.Errorf("cache holds %d handles, budget 4", got)
	}
	// Everything written through evicted-and-reopened handles is there.
	for _, d := range dirs {
		if ls := o.List(th, d); len(ls) != 3 {
			t.Errorf("%s lists %v, want 3 files", d, ls)
		}
	}
	if got := len(o.roots); got > 4 {
		t.Errorf("cache holds %d handles after list sweep, budget 4", got)
	}
	// The fixed-layout contract survives the lazy regime.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown dir must still panic in the lazy regime")
			}
		}()
		o.List(th, "never-declared")
	}()
}

// TestOSLimitedConcurrent hammers a small budget from many goroutines:
// eviction must never close a root out from under an op in flight
// (refcounting), and every write must land.
func TestOSLimitedConcurrent(t *testing.T) {
	th := NewNative(1)
	dirs := make([]string, 32)
	for i := range dirs {
		dirs[i] = fmt.Sprintf("c%02d", i)
	}
	o, err := NewOSLimited(t.TempDir(), dirs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer o.CloseAll()

	var wg sync.WaitGroup
	errCh := make(chan string, 256)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				d := dirs[(w*50+i)%len(dirs)]
				name := fmt.Sprintf("w%d-%d", w, i)
				fd, ok := o.Create(th, d, name)
				if !ok {
					errCh <- "create " + d + "/" + name
					continue
				}
				if !o.Append(th, fd, []byte(name)) {
					errCh <- "append " + d + "/" + name
				}
				if !o.Sync(th, fd) {
					errCh <- "sync " + d + "/" + name
				}
				o.Close(th, fd)
				if !o.SyncDir(th, d) {
					errCh <- "syncdir " + d
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for e := range errCh {
		t.Errorf("op failed under eviction pressure: %s", e)
	}
	total := 0
	for _, d := range dirs {
		total += len(o.List(th, d))
	}
	if total != 8*50 {
		t.Errorf("found %d files, want %d", total, 8*50)
	}
}

// TestOSEagerWithinBudget: a layout within the budget is fully cached
// at boot (the original eager behavior) and never evicts.
func TestOSEagerWithinBudget(t *testing.T) {
	th := NewNative(1)
	o, err := NewOSLimited(t.TempDir(), []string{"a", "b", "c"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer o.CloseAll()
	if got := len(o.roots); got != 3 {
		t.Fatalf("eager boot cached %d handles, want 3", got)
	}
	for i := 0; i < 20; i++ {
		fd, ok := o.Create(th, "a", fmt.Sprintf("f%d", i))
		if !ok {
			t.Fatal("create failed")
		}
		o.Close(th, fd)
	}
	if got := len(o.roots); got != 3 {
		t.Errorf("eager cache evicted: %d handles, want 3", got)
	}
}
