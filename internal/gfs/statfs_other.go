//go:build !linux

package gfs

// StatFS reports no real space information on platforms without a
// wired statfs(2); ok=false makes callers fall back to the modeled
// space signal.
func (o *OS) StatFS() (free, total uint64, ok bool) { return 0, 0, false }
