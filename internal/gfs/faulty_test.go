package gfs

import (
	"reflect"
	"testing"

	"repro/internal/machine"
)

// faultScript is a fixed, fault-tolerant workload exercising every
// faultable operation class. It checks each result before depending on
// it, so it runs to completion under any fault schedule; with a
// deterministic policy its per-class call indices — and therefore the
// fault log — are a pure function of the policy.
func faultScript(sys System, th T) {
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		if fd, ok := sys.Create(th, "spool", name); ok {
			sys.Append(th, fd, []byte("payload-"+name))
			sys.Append(th, fd, []byte("-more"))
			sys.Sync(th, fd)
			sys.Close(th, fd)
			sys.Link(th, "spool", name, "box", name)
			sys.Delete(th, "spool", name)
		}
		if rfd, ok := sys.Open(th, "box", name); ok {
			sys.ReadAt(th, rfd, 0, 64)
			sys.Size(th, rfd)
			sys.Close(th, rfd)
		}
	}
	sys.List(th, "box")
}

var faultScriptDirs = []string{"spool", "box"}

// TestSeededFaultsReproducible is the ISSUE's headline acceptance
// criterion for the fault layer: the same seed must reproduce the same
// fault schedule bit-for-bit. Two independent runs over fresh OS
// backends must produce identical logs and counters; nearby seeds must
// produce a different schedule (otherwise the seed would be dead).
func TestSeededFaultsReproducible(t *testing.T) {
	run := func(seed int64) ([]FaultEvent, [NumFaultOps]uint64, [NumFaultOps]uint64) {
		o := newOSFS(t, faultScriptDirs)
		f := NewFaulty(o, &SeededPolicy{Seed: seed, Rates: UniformRates(2)})
		faultScript(f, NewNative(1))
		calls, faults := f.Counters()
		return f.Log(), calls, faults
	}

	log1, calls1, faults1 := run(42)
	log2, calls2, faults2 := run(42)
	if len(log1) == 0 {
		t.Fatal("no faults injected at rate 1-in-2; seed is dead")
	}
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("same seed, different fault logs:\n%v\nvs\n%v", log1, log2)
	}
	if calls1 != calls2 || faults1 != faults2 {
		t.Fatalf("same seed, different counters: %v/%v vs %v/%v", calls1, faults1, calls2, faults2)
	}

	distinct := false
	for seed := int64(1); seed <= 8 && !distinct; seed++ {
		other, _, _ := run(seed)
		distinct = !reflect.DeepEqual(log1, other)
	}
	if !distinct {
		t.Fatal("eight different seeds all reproduced seed 42's schedule")
	}
}

// TestSeededFaultsSameLogOnBothBackends runs the identical script with
// the identical seed over the model and the OS backend: the fault log
// must match event-for-event, because fault decisions depend only on
// (seed, class, per-class index) — never on which backend is underneath.
func TestSeededFaultsSameLogOnBothBackends(t *testing.T) {
	pol := func() *SeededPolicy { return &SeededPolicy{Seed: 7, Rates: UniformRates(2)} }

	o := newOSFS(t, faultScriptDirs)
	fo := NewFaulty(o, pol())
	faultScript(fo, NewNative(1))

	mm := machine.New(machine.Options{MaxSteps: 10000})
	mfs := NewModel(mm, faultScriptDirs)
	fm := NewFaulty(mfs, pol())
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		faultScript(fm, mt)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("model run: %+v", res)
	}

	if !reflect.DeepEqual(fo.Log(), fm.Log()) {
		t.Fatalf("backends diverge under the same seed:\nos:    %v\nmodel: %v", fo.Log(), fm.Log())
	}
}

// TestFaultsHaveNoEffect pins the fault semantics: a faulted operation
// fails as if the syscall returned an error with no effect — except
// short reads, which truncate (but never to zero bytes, since zero
// means end-of-file).
func TestFaultsHaveNoEffect(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 10000})
	fs := NewModel(mm, []string{"d", "e"})
	f := NewFaulty(fs, AlwaysPolicy{})
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		// Faulted create: reports failure, creates nothing.
		if _, ok := f.Create(mt, "d", "x"); ok {
			mt.Failf("faulted create reported success")
		}
		if len(fs.PeekDir("d")) != 0 {
			mt.Failf("faulted create left an entry behind")
		}

		// Real file set up through the inner backend.
		fd, ok := fs.Create(mt, "d", "x")
		if !ok {
			mt.Failf("inner create failed")
		}
		fs.Append(mt, fd, []byte("abcd"))

		// Faulted append: no data written.
		if f.Append(mt, fd, []byte("MORE")) {
			mt.Failf("faulted append reported success")
		}
		// Faulted sync: reported, contents untouched.
		if f.Sync(mt, fd) {
			mt.Failf("faulted sync reported success")
		}
		fs.Close(mt, fd)

		// Faulted link: no new entry.
		if f.Link(mt, "d", "x", "e", "y") {
			mt.Failf("faulted link reported success")
		}
		if len(fs.PeekDir("e")) != 0 {
			mt.Failf("faulted link created an entry")
		}
		// Faulted delete: entry remains.
		if f.Delete(mt, "d", "x") {
			mt.Failf("faulted delete reported success")
		}

		// Short read: truncated to half, never to zero; file intact.
		rfd, _ := fs.Open(mt, "d", "x")
		if got := string(f.ReadAt(mt, rfd, 0, 64)); got != "ab" {
			mt.Failf("short read returned %q, want %q", got, "ab")
		}
		if got := string(fs.ReadAt(mt, rfd, 0, 64)); got != "abcd" {
			mt.Failf("file corrupted after short read: %q", got)
		}
		fs.Close(mt, rfd)

		if d := fs.PeekDir("d"); len(d) != 1 || string(d["x"]) != "abcd" {
			mt.Failf("final state wrong: %v", d)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if n := fs.OpenFDs(); n != 0 {
		t.Fatalf("%d fds leaked", n)
	}

	calls, faults := f.Counters()
	for _, op := range []FaultOp{FaultCreate, FaultAppend, FaultSync, FaultLink, FaultDelete, FaultReadShort} {
		if calls[op] == 0 || faults[op] != calls[op] {
			t.Errorf("%v: calls=%d faults=%d, want all faulted", op, calls[op], faults[op])
		}
	}
	if len(f.Log()) == 0 {
		t.Error("empty fault log")
	}
	f.ResetLog()
	if calls, faults := f.Counters(); calls != [NumFaultOps]uint64{} || faults != [NumFaultOps]uint64{} || len(f.Log()) != 0 {
		t.Error("ResetLog did not clear state")
	}
}

// TestNeverPolicyIsTransparent checks the differential property:
// Faulty(NeverPolicy) is observably identical to the bare backend.
func TestNeverPolicyIsTransparent(t *testing.T) {
	bare := newOSFS(t, faultScriptDirs)
	faultScript(bare, NewNative(1))

	wrappedInner := newOSFS(t, faultScriptDirs)
	wrapped := NewFaulty(wrappedInner, NeverPolicy{})
	faultScript(wrapped, NewNative(1))

	th := NewNative(2)
	names := bare.List(th, "box")
	if !reflect.DeepEqual(names, wrapped.List(th, "box")) {
		t.Fatalf("listings differ: %v vs %v", names, wrapped.List(th, "box"))
	}
	if len(names) == 0 {
		t.Fatal("script delivered nothing")
	}
	for _, name := range names {
		bfd, ok1 := bare.Open(th, "box", name)
		wfd, ok2 := wrapped.Open(th, "box", name)
		if !ok1 || !ok2 {
			t.Fatalf("open %s: %v vs %v", name, ok1, ok2)
		}
		b := bare.ReadAt(th, bfd, 0, 256)
		w := wrapped.ReadAt(th, wfd, 0, 256)
		bare.Close(th, bfd)
		wrapped.Close(th, wfd)
		if string(b) != string(w) {
			t.Fatalf("%s: contents differ: %q vs %q", name, b, w)
		}
	}

	if _, faults := wrapped.Counters(); faults != [NumFaultOps]uint64{} {
		t.Fatalf("NeverPolicy injected faults: %v", faults)
	}
	if calls, _ := wrapped.Counters(); calls[FaultCreate] == 0 {
		t.Fatal("counters not recording calls")
	}
	if len(wrapped.Log()) != 0 {
		t.Fatal("NeverPolicy produced a fault log")
	}
	if wrapped.Inner() != System(wrappedInner) {
		t.Fatal("Inner() does not return the wrapped backend")
	}
}

// TestChooserPolicyInertOnNativeThreads: chooser-driven fault decisions
// only exist under the model; on a real goroutine the policy must never
// fault (there is no chooser to consult).
func TestChooserPolicyInertOnNativeThreads(t *testing.T) {
	o := newOSFS(t, faultScriptDirs)
	f := NewFaulty(o, &ChooserPolicy{Budget: 100})
	faultScript(f, NewNative(1))
	if _, faults := f.Counters(); faults != [NumFaultOps]uint64{} {
		t.Fatalf("ChooserPolicy faulted on a native thread: %v", faults)
	}
	if got := f.List(NewNative(2), "box"); len(got) != 6 {
		t.Fatalf("expected 6 delivered files, got %v", got)
	}
}
