package gfs

import (
	"reflect"
	"testing"

	"repro/internal/machine"
)

// faultScript is a fixed, fault-tolerant workload exercising every
// faultable operation class. It checks each result before depending on
// it, so it runs to completion under any fault schedule; with a
// deterministic policy its per-class call indices — and therefore the
// fault log — are a pure function of the policy.
func faultScript(sys System, th T) {
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		if fd, ok := sys.Create(th, "spool", name); ok {
			sys.Append(th, fd, []byte("payload-"+name))
			sys.Append(th, fd, []byte("-more"))
			sys.Sync(th, fd)
			sys.Close(th, fd)
			sys.Link(th, "spool", name, "box", name)
			sys.Delete(th, "spool", name)
		}
		if rfd, ok := sys.Open(th, "box", name); ok {
			sys.ReadAt(th, rfd, 0, 64)
			sys.Size(th, rfd)
			sys.Close(th, rfd)
		}
	}
	sys.List(th, "box")
}

var faultScriptDirs = []string{"spool", "box"}

// TestSeededFaultsReproducible is the ISSUE's headline acceptance
// criterion for the fault layer: the same seed must reproduce the same
// fault schedule bit-for-bit. Two independent runs over fresh OS
// backends must produce identical logs and counters; nearby seeds must
// produce a different schedule (otherwise the seed would be dead).
func TestSeededFaultsReproducible(t *testing.T) {
	run := func(seed int64) ([]FaultEvent, [NumFaultOps]uint64, [NumFaultOps]uint64) {
		o := newOSFS(t, faultScriptDirs)
		f := NewFaulty(o, &SeededPolicy{Seed: seed, Rates: UniformRates(2)})
		faultScript(f, NewNative(1))
		calls, faults := f.Counters()
		return f.Log(), calls, faults
	}

	log1, calls1, faults1 := run(42)
	log2, calls2, faults2 := run(42)
	if len(log1) == 0 {
		t.Fatal("no faults injected at rate 1-in-2; seed is dead")
	}
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("same seed, different fault logs:\n%v\nvs\n%v", log1, log2)
	}
	if calls1 != calls2 || faults1 != faults2 {
		t.Fatalf("same seed, different counters: %v/%v vs %v/%v", calls1, faults1, calls2, faults2)
	}

	distinct := false
	for seed := int64(1); seed <= 8 && !distinct; seed++ {
		other, _, _ := run(seed)
		distinct = !reflect.DeepEqual(log1, other)
	}
	if !distinct {
		t.Fatal("eight different seeds all reproduced seed 42's schedule")
	}
}

// TestSeededFaultsSameLogOnBothBackends runs the identical script with
// the identical seed over the model and the OS backend: the fault log
// must match event-for-event, because fault decisions depend only on
// (seed, class, per-class index) — never on which backend is underneath.
func TestSeededFaultsSameLogOnBothBackends(t *testing.T) {
	pol := func() *SeededPolicy { return &SeededPolicy{Seed: 7, Rates: UniformRates(2)} }

	o := newOSFS(t, faultScriptDirs)
	fo := NewFaulty(o, pol())
	faultScript(fo, NewNative(1))

	mm := machine.New(machine.Options{MaxSteps: 10000})
	mfs := NewModel(mm, faultScriptDirs)
	fm := NewFaulty(mfs, pol())
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		faultScript(fm, mt)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("model run: %+v", res)
	}

	if !reflect.DeepEqual(fo.Log(), fm.Log()) {
		t.Fatalf("backends diverge under the same seed:\nos:    %v\nmodel: %v", fo.Log(), fm.Log())
	}
}

// TestFaultsHaveNoEffect pins the fault semantics: a faulted operation
// fails as if the syscall returned an error with no effect — except
// short reads, which truncate (but never to zero bytes, since zero
// means end-of-file).
func TestFaultsHaveNoEffect(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 10000})
	fs := NewModel(mm, []string{"d", "e"})
	f := NewFaulty(fs, AlwaysPolicy{})
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		// Faulted create: reports failure, creates nothing.
		if _, ok := f.Create(mt, "d", "x"); ok {
			mt.Failf("faulted create reported success")
		}
		if len(fs.PeekDir("d")) != 0 {
			mt.Failf("faulted create left an entry behind")
		}

		// Real file set up through the inner backend.
		fd, ok := fs.Create(mt, "d", "x")
		if !ok {
			mt.Failf("inner create failed")
		}
		fs.Append(mt, fd, []byte("abcd"))

		// Faulted append: no data written.
		if f.Append(mt, fd, []byte("MORE")) {
			mt.Failf("faulted append reported success")
		}
		// Faulted sync: reported, contents untouched.
		if f.Sync(mt, fd) {
			mt.Failf("faulted sync reported success")
		}
		fs.Close(mt, fd)

		// Faulted link: no new entry.
		if f.Link(mt, "d", "x", "e", "y") {
			mt.Failf("faulted link reported success")
		}
		if len(fs.PeekDir("e")) != 0 {
			mt.Failf("faulted link created an entry")
		}
		// Faulted delete: entry remains.
		if f.Delete(mt, "d", "x") {
			mt.Failf("faulted delete reported success")
		}

		// Short read: truncated to half, never to zero; file intact.
		rfd, _ := fs.Open(mt, "d", "x")
		if got := string(f.ReadAt(mt, rfd, 0, 64)); got != "ab" {
			mt.Failf("short read returned %q, want %q", got, "ab")
		}
		if got := string(fs.ReadAt(mt, rfd, 0, 64)); got != "abcd" {
			mt.Failf("file corrupted after short read: %q", got)
		}
		fs.Close(mt, rfd)

		if d := fs.PeekDir("d"); len(d) != 1 || string(d["x"]) != "abcd" {
			mt.Failf("final state wrong: %v", d)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if n := fs.OpenFDs(); n != 0 {
		t.Fatalf("%d fds leaked", n)
	}

	calls, faults := f.Counters()
	for _, op := range []FaultOp{FaultCreate, FaultAppend, FaultSync, FaultLink, FaultDelete, FaultReadShort} {
		if calls[op] == 0 || faults[op] != calls[op] {
			t.Errorf("%v: calls=%d faults=%d, want all faulted", op, calls[op], faults[op])
		}
	}
	if len(f.Log()) == 0 {
		t.Error("empty fault log")
	}
	f.ResetLog()
	if calls, faults := f.Counters(); calls != [NumFaultOps]uint64{} || faults != [NumFaultOps]uint64{} || len(f.Log()) != 0 {
		t.Error("ResetLog did not clear state")
	}
}

// TestNeverPolicyIsTransparent checks the differential property:
// Faulty(NeverPolicy) is observably identical to the bare backend.
func TestNeverPolicyIsTransparent(t *testing.T) {
	bare := newOSFS(t, faultScriptDirs)
	faultScript(bare, NewNative(1))

	wrappedInner := newOSFS(t, faultScriptDirs)
	wrapped := NewFaulty(wrappedInner, NeverPolicy{})
	faultScript(wrapped, NewNative(1))

	th := NewNative(2)
	names := bare.List(th, "box")
	if !reflect.DeepEqual(names, wrapped.List(th, "box")) {
		t.Fatalf("listings differ: %v vs %v", names, wrapped.List(th, "box"))
	}
	if len(names) == 0 {
		t.Fatal("script delivered nothing")
	}
	for _, name := range names {
		bfd, ok1 := bare.Open(th, "box", name)
		wfd, ok2 := wrapped.Open(th, "box", name)
		if !ok1 || !ok2 {
			t.Fatalf("open %s: %v vs %v", name, ok1, ok2)
		}
		b := bare.ReadAt(th, bfd, 0, 256)
		w := wrapped.ReadAt(th, wfd, 0, 256)
		bare.Close(th, bfd)
		wrapped.Close(th, wfd)
		if string(b) != string(w) {
			t.Fatalf("%s: contents differ: %q vs %q", name, b, w)
		}
	}

	if _, faults := wrapped.Counters(); faults != [NumFaultOps]uint64{} {
		t.Fatalf("NeverPolicy injected faults: %v", faults)
	}
	if calls, _ := wrapped.Counters(); calls[FaultCreate] == 0 {
		t.Fatal("counters not recording calls")
	}
	if len(wrapped.Log()) != 0 {
		t.Fatal("NeverPolicy produced a fault log")
	}
	if wrapped.Inner() != System(wrappedInner) {
		t.Fatal("Inner() does not return the wrapped backend")
	}
}

// TestChooserPolicyInertOnNativeThreads: chooser-driven fault decisions
// only exist under the model; on a real goroutine the policy must never
// fault (there is no chooser to consult).
func TestChooserPolicyInertOnNativeThreads(t *testing.T) {
	o := newOSFS(t, faultScriptDirs)
	f := NewFaulty(o, &ChooserPolicy{Budget: 100})
	faultScript(f, NewNative(1))
	if _, faults := f.Counters(); faults != [NumFaultOps]uint64{} {
		t.Fatalf("ChooserPolicy faulted on a native thread: %v", faults)
	}
	if got := f.List(NewNative(2), "box"); len(got) != 6 {
		t.Fatalf("expected 6 delivered files, got %v", got)
	}
}

// TestFailStopLatchAndRevive pins the permanent-death semantics: once
// the policy injects FaultFailStop, every operation class fails without
// reaching the inner backend (reads, listings and stats included), the
// log records exactly one fail-stop event no matter how many dead
// operations follow, and Revive restores the (possibly stale) inner
// state untouched.
func TestFailStopLatchAndRevive(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 10000})
	fs := NewModel(mm, []string{"d"})
	// Rate 1 kills at the first decision point; MaxPerClass bounds it to
	// one death so post-Revive operations stay alive.
	var rates [NumFaultOps]uint64
	rates[FaultFailStop] = 1
	var caps [NumFaultOps]uint64
	caps[FaultFailStop] = 1
	f := NewFaulty(fs, &SeededPolicy{Seed: 1, Rates: rates, MaxPerClass: caps})

	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		// Pre-seed real state through the inner backend.
		fd, ok := fs.Create(mt, "d", "x")
		if !ok {
			mt.Failf("inner create failed")
		}
		fs.Append(mt, fd, []byte("abcd"))
		fs.Close(mt, fd)

		// First wrapped operation dies; everything after fails dead.
		if _, ok := f.Create(mt, "d", "y"); ok {
			mt.Failf("create succeeded at the point of death")
		}
		if !f.FailStopped() {
			mt.Failf("latch not set after injection")
		}
		if _, ok := f.Open(mt, "d", "x"); ok {
			mt.Failf("open succeeded on a dead backend")
		}
		if f.List(mt, "d") != nil {
			mt.Failf("list returned entries on a dead backend")
		}
		if f.Link(mt, "d", "x", "d", "z") || f.Delete(mt, "d", "x") {
			mt.Failf("mutation succeeded on a dead backend")
		}
		rfd, _ := fs.Open(mt, "d", "x")
		if f.ReadAt(mt, rfd, 0, 64) != nil {
			mt.Failf("read returned data on a dead backend")
		}
		if f.Size(mt, rfd) != 0 {
			mt.Failf("size nonzero on a dead backend")
		}
		fs.Close(mt, rfd)

		// Inner state is untouched by the dead operations.
		if d := fs.PeekDir("d"); len(d) != 1 || string(d["x"]) != "abcd" {
			mt.Failf("dead operations touched inner state: %v", d)
		}

		// Revive: the stale inner state is reachable again.
		f.Revive()
		if f.FailStopped() {
			mt.Failf("latch survived Revive")
		}
		if names := f.List(mt, "d"); len(names) != 1 || names[0] != "x" {
			mt.Failf("post-revive list: %v", names)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}

	_, faults := f.Counters()
	if faults[FaultFailStop] != 1 {
		t.Fatalf("fail-stop injected %d times, want exactly 1", faults[FaultFailStop])
	}
	var events int
	for _, e := range f.Log() {
		if e.Op == FaultFailStop {
			events++
		}
	}
	if events != 1 {
		t.Fatalf("%d fail-stop log events, want exactly 1 (dead operations must not spam the log)", events)
	}
}

// TestSeededFailStopReproducible extends the seeded-replay parity
// guarantee to the permanent class: with fail-stop in the rate table,
// the same seed must reproduce the same point of death — and everything
// before it — bit-for-bit across runs.
func TestSeededFailStopReproducible(t *testing.T) {
	run := func(seed int64) ([]FaultEvent, [NumFaultOps]uint64, [NumFaultOps]uint64) {
		o := newOSFS(t, faultScriptDirs)
		rates := UniformRates(3)
		rates[FaultFailStop] = 20
		f := NewFaulty(o, &SeededPolicy{Seed: seed, Rates: rates})
		faultScript(f, NewNative(1))
		calls, faults := f.Counters()
		return f.Log(), calls, faults
	}

	var killed bool
	for seed := int64(1); seed <= 32 && !killed; seed++ {
		log1, calls1, faults1 := run(seed)
		log2, calls2, faults2 := run(seed)
		if !reflect.DeepEqual(log1, log2) || calls1 != calls2 || faults1 != faults2 {
			t.Fatalf("seed %d: schedules diverge:\n%v\nvs\n%v", seed, log1, log2)
		}
		killed = faults1[FaultFailStop] == 1
	}
	if !killed {
		t.Fatal("no seed in 1..32 injected a fail-stop at rate 1-in-20; rate table is dead")
	}
}

// TestFailStopNowKillSwitch: the operational kill switch latches
// immediately regardless of policy, logs one event, and is idempotent.
func TestFailStopNowKillSwitch(t *testing.T) {
	o := newOSFS(t, faultScriptDirs)
	f := NewFaulty(o, NeverPolicy{})
	th := NewNative(1)

	if fd, ok := f.Create(th, "spool", "a"); !ok {
		t.Fatal("create failed before the kill switch")
	} else {
		f.Close(th, fd)
	}
	f.FailStopNow("drill")
	f.FailStopNow("drill again")
	if !f.FailStopped() {
		t.Fatal("kill switch did not latch")
	}
	if _, ok := f.Open(th, "spool", "a"); ok {
		t.Fatal("open succeeded after the kill switch")
	}
	_, faults := f.Counters()
	if faults[FaultFailStop] != 1 {
		t.Fatalf("idempotent kill switch recorded %d faults, want 1", faults[FaultFailStop])
	}
	f.Revive()
	if names := f.List(th, "spool"); len(names) != 1 {
		t.Fatalf("post-revive list: %v", names)
	}
}

// TestChooserPolicyFailStopOptIn: with a nil Eligible set the chooser
// policy must never branch on (let alone inject) permanent death, even
// when the chooser would take every fault branch offered; with
// FaultFailStop explicitly eligible, the "failstop" tag branches and
// the PerClass cap bounds it to one death.
func TestChooserPolicyFailStopOptIn(t *testing.T) {
	greedy := machine.ChooserFunc(func(n int, tag string) int { return n - 1 })

	// Nil Eligible: fail-stop never offered. The workload still faults
	// transiently everywhere (greedy chooser), so finish a full script.
	mm := machine.New(machine.Options{MaxSteps: 100000})
	fs := NewModel(mm, faultScriptDirs)
	f := NewFaulty(fs, &ChooserPolicy{Budget: 1 << 30})
	res := mm.RunEra(greedy, false, func(mt *machine.T) { faultScript(f, mt) })
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	_, faults := f.Counters()
	if faults[FaultFailStop] != 0 {
		t.Fatal("nil Eligible enumerated permanent death")
	}
	if faults[FaultCreate] == 0 {
		t.Fatal("greedy chooser injected no transient faults; test is vacuous")
	}

	// Explicit opt-in with PerClass cap: exactly one death, tagged
	// "failstop" at the chooser.
	var sawTag bool
	tagSpy := machine.ChooserFunc(func(n int, tag string) int {
		if tag == "failstop" {
			sawTag = true
			return 1
		}
		return 0
	})
	mm2 := machine.New(machine.Options{MaxSteps: 100000})
	fs2 := NewModel(mm2, faultScriptDirs)
	f2 := NewFaulty(fs2, &ChooserPolicy{
		Budget:   1 << 30,
		Eligible: map[FaultOp]bool{FaultFailStop: true},
		PerClass: map[FaultOp]int{FaultFailStop: 1},
	})
	res = mm2.RunEra(tagSpy, false, func(mt *machine.T) { faultScript(f2, mt) })
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if !sawTag {
		t.Fatal("no failstop-tagged choice reached the chooser")
	}
	_, faults2 := f2.Counters()
	if faults2[FaultFailStop] != 1 {
		t.Fatalf("PerClass cap 1 but %d deaths injected", faults2[FaultFailStop])
	}
	if !f2.FailStopped() {
		t.Fatal("injection did not latch")
	}
}
