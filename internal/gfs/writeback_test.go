package gfs

import (
	"sort"
	"testing"

	"repro/internal/machine"
	"repro/internal/obs"
)

// writebackSetup builds a writeback model with one durable entry and
// three un-synced directory operations, so the crash has four
// enumerable outcomes. Durable baseline (after SyncDir): d/base. The
// pending log is then [add x, add y, remove base], so the surviving
// prefixes are:
//
//	k=0: {base}          — roll back to the last SyncDir
//	k=1: {base, x}
//	k=2: {base, x, y}
//	k=3: {x, y}          — every pending op applied
//
// All file data is fsynced so only the "writeback" axis varies.
func writebackSetup(t *testing.T, chooser machine.Chooser) (*machine.Machine, *Model) {
	t.Helper()
	mm := machine.New(machine.Options{})
	fs := NewWritebackModel(mm, []string{"d"})
	res := mm.RunEra(chooser, false, func(mt *machine.T) {
		mkFile(t, fs, mt, "d", "base", "BASE")
		fs.SyncDir(mt, "d")
		mkFile(t, fs, mt, "d", "x", "XX")
		mkFile(t, fs, mt, "d", "y", "YY")
		fs.Delete(mt, "d", "base")
	})
	if res.Outcome != machine.Done {
		t.Fatalf("setup: %+v", res)
	}
	return mm, fs
}

// mkFile creates dir/name with the given fsynced contents.
func mkFile(t *testing.T, fs *Model, mt *machine.T, dir, name, data string) {
	t.Helper()
	fd, ok := fs.Create(mt, dir, name)
	if !ok {
		t.Fatalf("create %s/%s failed", dir, name)
	}
	fs.Append(mt, fd, []byte(data))
	fs.Sync(mt, fd)
	fs.Close(mt, fd)
}

func dirNames(fs *Model, dir string) []string {
	var out []string
	for name := range fs.PeekDir(dir) {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func sameNames(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestWritebackCrashEnumeratesDirPrefixes: the crash-time "writeback"
// choice selects which prefix of the pending directory-operation log
// survives — option 0 rolls back to the last SyncDir, the last option
// keeps every pending operation, and intermediate options land at every
// boundary in between (no holes: operations are lost newest-first).
func TestWritebackCrashEnumeratesDirPrefixes(t *testing.T) {
	want := map[int][]string{
		0: {"base"},
		1: {"base", "x"},
		2: {"base", "x", "y"},
		3: {"x", "y"},
	}
	for k, survivors := range want {
		pick := k
		chooser := machine.ChooserFunc(func(n int, tag string) int {
			if tag == "writeback" {
				if n != 4 {
					t.Errorf("writeback choice offered %d options, want 4", n)
				}
				return pick
			}
			return 0
		})
		mm, fs := writebackSetup(t, chooser)
		mm.CrashReset()
		if got := dirNames(fs, "d"); !sameNames(got, survivors) {
			t.Errorf("writeback choice %d: survived %v, want %v", k, got, survivors)
		}
	}
}

// TestWritebackCrashDefaultChooserRollsBackToSync: a chooserless crash
// (SeqChooser picks option 0) takes maximal loss — the directory rolls
// back to its last SyncDir — mirroring the "torn" convention so unit
// runs and replays without a recorded choice behave deterministically.
func TestWritebackCrashDefaultChooserRollsBackToSync(t *testing.T) {
	mm, fs := writebackSetup(t, machine.SeqChooser{})
	mm.CrashReset()
	if got := dirNames(fs, "d"); !sameNames(got, []string{"base"}) {
		t.Fatalf("survived %v, want rollback to last SyncDir", got)
	}
	// base's contents were fsynced before the SyncDir, so they survive
	// intact — the rollback resurrects the entry with its durable bytes.
	if got := string(fs.PeekDir("d")["base"]); got != "BASE" {
		t.Fatalf("resurrected entry has contents %q", got)
	}
}

// TestWritebackCrashClampsWildChoice: an out-of-range writeback choice
// (a stale or truncated replay script) clamps to option 0 instead of
// panicking, consistent with ScriptChooser's clamping.
func TestWritebackCrashClampsWildChoice(t *testing.T) {
	wild := machine.ChooserFunc(func(n int, tag string) int {
		if tag == "writeback" {
			return 99
		}
		return 0
	})
	mm, fs := writebackSetup(t, wild)
	mm.CrashReset()
	if got := dirNames(fs, "d"); !sameNames(got, []string{"base"}) {
		t.Fatalf("survived %v, want rollback (clamped choice)", got)
	}
}

// TestWritebackSyncDirIsABarrier: after SyncDir, even the maximal-loss
// crash keeps every operation that preceded the barrier.
func TestWritebackSyncDirIsABarrier(t *testing.T) {
	mm, fs := writebackSetup(t, machine.SeqChooser{})
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		fs.SyncDir(mt, "d")
	})
	if res.Outcome != machine.Done {
		t.Fatalf("syncdir era: %+v", res)
	}
	mm.CrashReset()
	if got := dirNames(fs, "d"); !sameNames(got, []string{"x", "y"}) {
		t.Fatalf("survived %v, want everything synced by the barrier", got)
	}
}

// TestWritebackCrashSurvivorsAreDurable: whatever directory view the
// crash kept is durable — a second crash with a maximal-loss chooser
// must not lose anything more.
func TestWritebackCrashSurvivorsAreDurable(t *testing.T) {
	keepAll := machine.ChooserFunc(func(n int, tag string) int {
		if tag == "writeback" || tag == "torn" {
			return n - 1
		}
		return 0
	})
	mm, fs := writebackSetup(t, keepAll)
	mm.CrashReset()
	if got := dirNames(fs, "d"); !sameNames(got, []string{"x", "y"}) {
		t.Fatalf("first crash survived %v", got)
	}
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {})
	if res.Outcome != machine.Done {
		t.Fatalf("recovery era: %+v", res)
	}
	mm.CrashReset()
	if got := dirNames(fs, "d"); !sameNames(got, []string{"x", "y"}) {
		t.Fatalf("second crash shrank the directory to %v", got)
	}
}

// TestWritebackCrashReclaimsOrphans: an inode reachable only through
// dropped pending entries is gone after the crash — its name can be
// recreated from scratch and lists stay clean.
func TestWritebackCrashReclaimsOrphans(t *testing.T) {
	mm, fs := writebackSetup(t, machine.SeqChooser{})
	mm.CrashReset()
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		// x and y were dropped; their names must be free again.
		mkFile(t, fs, mt, "d", "x", "fresh")
	})
	if res.Outcome != machine.Done {
		t.Fatalf("recreate era: %+v", res)
	}
	if got := string(fs.PeekDir("d")["x"]); got != "fresh" {
		t.Fatalf("recreated file reads %q", got)
	}
	// The dropped inodes must not linger in the inode table.
	if len(fs.inodes) != len(fs.synced) || len(fs.inodes) != 2 {
		t.Fatalf("inode table leaked orphans: %d inodes, %d synced entries",
			len(fs.inodes), len(fs.synced))
	}
}

// TestStrictAndBufferedModelsIgnoreWritebackChoice: only the writeback
// model consults the "writeback" tag — under strict or merely buffered
// durability directory operations are never deferred, so SyncDir is a
// no-op and the crash never branches on directory state.
func TestStrictAndBufferedModelsIgnoreWritebackChoice(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(m *machine.Machine) *Model
	}{
		{"strict", func(m *machine.Machine) *Model { return NewModel(m, []string{"d"}) }},
		{"buffered", func(m *machine.Machine) *Model { return NewBufferedModel(m, []string{"d"}) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			consulted := false
			chooser := machine.ChooserFunc(func(n int, tag string) int {
				if tag == "writeback" {
					consulted = true
				}
				return 0
			})
			mm := machine.New(machine.Options{})
			fs := tc.mk(mm)
			res := mm.RunEra(chooser, false, func(mt *machine.T) {
				mkFile(t, fs, mt, "d", "f", "data")
				if !fs.SyncDir(mt, "d") {
					t.Error("SyncDir failed on the model")
				}
				fs.Delete(mt, "d", "f")
			})
			if res.Outcome != machine.Done {
				t.Fatalf("setup: %+v", res)
			}
			mm.CrashReset()
			if consulted {
				t.Fatal("non-writeback model consulted the writeback choice")
			}
			if _, ok := fs.PeekDir("d")["f"]; ok {
				t.Fatal("durable delete rolled back on a non-writeback model")
			}
		})
	}
}

// TestWritebackCrashMetrics: crash-time drop accounting lands on the
// gfs_sync_* counters — directory entries dropped on the writeback
// axis, un-synced bytes dropped both by torn truncation and by orphan
// reclamation — and a metrics-less model stays nil-safe.
func TestWritebackCrashMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	mm := machine.New(machine.Options{})
	fs := NewWritebackModel(mm, []string{"d"})
	fs.SetMetrics(NewFSMetrics(reg))
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		// Durable baseline with an un-synced 4-byte tail (torn drop).
		fd, _ := fs.Create(mt, "d", "base")
		fs.Append(mt, fd, []byte("AAAA"))
		fs.Sync(mt, fd)
		fs.SyncDir(mt, "d")
		fs.Append(mt, fd, []byte("tail"))
		fs.Close(mt, fd)
		// Un-synced create whose 2 bytes orphan at the crash.
		mkFile(t, fs, mt, "d", "x", "XX")
	})
	if res.Outcome != machine.Done {
		t.Fatalf("setup: %+v", res)
	}
	mm.CrashReset()
	if got := fs.metrics.droppedEntries.Value(); got != 1 {
		t.Fatalf("dropped entries = %d, want 1 (the un-synced create)", got)
	}
	// 4 bytes of torn tail on base; x's 2 bytes were fsynced, but the
	// whole inode orphaned — orphan accounting only counts its un-synced
	// bytes (0), since the synced bytes were lost to the metadata drop
	// already counted in entries.
	if got := fs.metrics.droppedBytes.Value(); got != 4 {
		t.Fatalf("dropped bytes = %d, want 4 (the torn tail)", got)
	}

	// Nil-safety: the same crash path without SetMetrics must not panic.
	mm2 := machine.New(machine.Options{})
	fs2 := NewWritebackModel(mm2, []string{"d"})
	res = mm2.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		mkFile(t, fs2, mt, "d", "x", "XX")
	})
	if res.Outcome != machine.Done {
		t.Fatalf("nil-metrics setup: %+v", res)
	}
	mm2.CrashReset()
}

// TestWritebackFailedSyncDirIsNotABarrier: a SyncDir that faults (via
// the Faulty middleware) must leave the pending log exactly as it was —
// the caller saw false, so nothing may have become durable.
func TestWritebackFailedSyncDirIsNotABarrier(t *testing.T) {
	mm := machine.New(machine.Options{})
	fs := NewWritebackModel(mm, []string{"d"})
	failSync := policyFunc(func(op FaultOp, index uint64) bool {
		return op == FaultSync
	})
	sys := NewFaulty(fs, failSync)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		fd, ok := fs.Create(mt, "d", "f") // bypass Faulty for setup
		if !ok {
			t.Error("create failed")
			return
		}
		fs.Append(mt, fd, []byte("data"))
		fs.Sync(mt, fd)
		fs.Close(mt, fd)
		if sys.SyncDir(mt, "d") {
			t.Error("faulted SyncDir reported success")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("setup: %+v", res)
	}
	mm.CrashReset()
	if _, ok := fs.PeekDir("d")["f"]; ok {
		t.Fatal("entry survived the crash although its only SyncDir failed")
	}
}

// policyFunc adapts a function to the Policy interface for tests.
type policyFunc func(op FaultOp, index uint64) bool

func (f policyFunc) Decide(_ T, op FaultOp, index uint64) bool { return f(op, index) }
