package gfs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/machine"
)

func modelRun(t *testing.T, dirs []string, fn func(mt *machine.T, fs *Model)) machine.EraResult {
	t.Helper()
	m := machine.New(machine.Options{})
	fs := NewModel(m, dirs)
	return m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) { fn(mt, fs) })
}

func TestModelCreateWriteReadBack(t *testing.T) {
	res := modelRun(t, []string{"spool"}, func(mt *machine.T, fs *Model) {
		fd, ok := fs.Create(mt, "spool", "msg")
		if !ok {
			mt.Failf("create failed")
		}
		fs.Append(mt, fd, []byte("hello "))
		fs.Append(mt, fd, []byte("world"))
		fs.Close(mt, fd)

		rfd, ok := fs.Open(mt, "spool", "msg")
		if !ok {
			mt.Failf("open failed")
		}
		if got := fs.Size(mt, rfd); got != 11 {
			mt.Failf("size=%d", got)
		}
		data := fs.ReadAt(mt, rfd, 0, 100)
		if string(data) != "hello world" {
			mt.Failf("read %q", data)
		}
		if part := fs.ReadAt(mt, rfd, 6, 5); string(part) != "world" {
			mt.Failf("partial read %q", part)
		}
		if tail := fs.ReadAt(mt, rfd, 11, 5); len(tail) != 0 {
			mt.Failf("read past EOF returned %q", tail)
		}
		fs.Close(mt, rfd)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestModelCreateExistingFails(t *testing.T) {
	res := modelRun(t, []string{"d"}, func(mt *machine.T, fs *Model) {
		if _, ok := fs.Create(mt, "d", "x"); !ok {
			mt.Failf("first create failed")
		}
		if _, ok := fs.Create(mt, "d", "x"); ok {
			mt.Failf("duplicate create succeeded")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestModelLinkSharesInode(t *testing.T) {
	res := modelRun(t, []string{"spool", "u0"}, func(mt *machine.T, fs *Model) {
		fd, _ := fs.Create(mt, "spool", "tmp")
		fs.Append(mt, fd, []byte("mail"))
		fs.Close(mt, fd)
		if !fs.Link(mt, "spool", "tmp", "u0", "msg1") {
			mt.Failf("link failed")
		}
		if fs.Link(mt, "spool", "tmp", "u0", "msg1") {
			mt.Failf("link over existing target succeeded")
		}
		fs.Delete(mt, "spool", "tmp")
		rfd, ok := fs.Open(mt, "u0", "msg1")
		if !ok {
			mt.Failf("open after delete of other link failed")
		}
		if got := fs.ReadAt(mt, rfd, 0, 10); string(got) != "mail" {
			mt.Failf("read %q", got)
		}
		fs.Close(mt, rfd)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestModelListSorted(t *testing.T) {
	res := modelRun(t, []string{"d"}, func(mt *machine.T, fs *Model) {
		for _, n := range []string{"zz", "aa", "mm"} {
			fd, _ := fs.Create(mt, "d", n)
			fs.Close(mt, fd)
		}
		got := fs.List(mt, "d")
		want := []string{"aa", "mm", "zz"}
		for i := range want {
			if got[i] != want[i] {
				mt.Failf("list = %v", got)
			}
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestModelDataSurvivesCrashFDsDoNot(t *testing.T) {
	m := machine.New(machine.Options{})
	fs := NewModel(m, []string{"d"})
	var fd FD
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		fd, _ = fs.Create(mt, "d", "f")
		fs.Append(mt, fd, []byte("durable"))
	})
	if res.Outcome != machine.Done {
		t.Fatalf("setup: %+v", res)
	}
	m.CrashReset()
	// Data survived:
	if got := fs.PeekDir("d")["f"]; !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("data lost at crash: %q", got)
	}
	// The descriptor did not:
	res = m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		fs.Append(mt, fd, []byte("x"))
	})
	if res.Outcome != machine.Violation || !strings.Contains(res.Err.Error(), "lost at crash") {
		t.Fatalf("stale fd not caught: %+v", res)
	}
}

func TestModelUnknownDirectoryIsUB(t *testing.T) {
	res := modelRun(t, []string{"d"}, func(mt *machine.T, fs *Model) {
		fs.List(mt, "nope")
	})
	if res.Outcome != machine.Violation || !strings.Contains(res.Err.Error(), "unknown directory") {
		t.Fatalf("res=%+v", res)
	}
}

func TestModelUseAfterCloseIsUB(t *testing.T) {
	res := modelRun(t, []string{"d"}, func(mt *machine.T, fs *Model) {
		fd, _ := fs.Create(mt, "d", "f")
		fs.Close(mt, fd)
		fs.Append(mt, fd, []byte("x"))
	})
	if res.Outcome != machine.Violation || !strings.Contains(res.Err.Error(), "closed descriptor") {
		t.Fatalf("res=%+v", res)
	}
}

func TestModelReadOnAppendFDIsUB(t *testing.T) {
	res := modelRun(t, []string{"d"}, func(mt *machine.T, fs *Model) {
		fd, _ := fs.Create(mt, "d", "f")
		fs.ReadAt(mt, fd, 0, 1)
	})
	if res.Outcome != machine.Violation || !strings.Contains(res.Err.Error(), "read-mode") {
		t.Fatalf("res=%+v", res)
	}
}

func TestModelAppendOnReadFDIsUB(t *testing.T) {
	res := modelRun(t, []string{"d"}, func(mt *machine.T, fs *Model) {
		fd, _ := fs.Create(mt, "d", "f")
		fs.Close(mt, fd)
		rfd, _ := fs.Open(mt, "d", "f")
		fs.Append(mt, rfd, []byte("x"))
	})
	if res.Outcome != machine.Violation || !strings.Contains(res.Err.Error(), "append-mode") {
		t.Fatalf("res=%+v", res)
	}
}

func TestModelOversizeAppendIsUB(t *testing.T) {
	res := modelRun(t, []string{"d"}, func(mt *machine.T, fs *Model) {
		fd, _ := fs.Create(mt, "d", "f")
		fs.Append(mt, fd, make([]byte, MaxAppend+1))
	})
	if res.Outcome != machine.Violation || !strings.Contains(res.Err.Error(), "atomic limit") {
		t.Fatalf("res=%+v", res)
	}
}

func TestModelLinkFromMissingSourceIsUB(t *testing.T) {
	res := modelRun(t, []string{"a", "b"}, func(mt *machine.T, fs *Model) {
		fs.Link(mt, "a", "ghost", "b", "x")
	})
	if res.Outcome != machine.Violation {
		t.Fatalf("res=%+v", res)
	}
}

func TestModelDeleteMissingReturnsFalse(t *testing.T) {
	res := modelRun(t, []string{"d"}, func(mt *machine.T, fs *Model) {
		if fs.Delete(mt, "d", "ghost") {
			mt.Failf("delete of missing file returned true")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}
