package gfs

import (
	"container/list"
	"fmt"
	"io"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/trace"
)

// Native is the thread handle for real goroutines using the OS backend.
// Each goroutine should use its own Native (the PRNG is not locked, and
// the carried trace span is per-request state).
type Native struct {
	rng  *rand.Rand
	span *trace.Span
}

// NewNative returns a native thread handle seeded from seed.
func NewNative(seed int64) *Native {
	return &Native{rng: rand.New(rand.NewSource(seed))}
}

// RandUint64 implements T.
func (n *Native) RandUint64(bound uint64) uint64 {
	if bound == 0 {
		panic("gfs: RandUint64 with zero bound")
	}
	return uint64(n.rng.Int63n(int64(bound)))
}

// TraceSpan implements trace.Carrier: native handles carry the active
// request span through the stack. The checker's *machine.T deliberately
// does not implement Carrier, so checked executions stay trace-free.
func (n *Native) TraceSpan() *trace.Span { return n.span }

// SetTraceSpan implements trace.Carrier.
func (n *Native) SetTraceSpan(s *trace.Span) { n.span = s }

// nativeLock adapts sync.Mutex to Lock.
type nativeLock struct{ mu sync.Mutex }

func (l *nativeLock) Acquire(T) { l.mu.Lock() }
func (l *nativeLock) Release(T) { l.mu.Unlock() }

// OS is the real-file-system backend. It keeps cached os.Root handles
// per directory and performs every lookup relative to them — the Goose
// library's directory-descriptor caching that §9.3 measures.
//
// The cache is bounded: a million-mailbox layout is a million
// directories, and one kernel descriptor per directory would exhaust
// RLIMIT_NOFILE long before that. Layouts at or under the handle
// budget are opened eagerly at boot and never evicted (the original
// behavior, and the fast path every small deployment takes); larger
// layouts open handles lazily and evict least-recently-used ones, so
// a zipfian workload's hot mailboxes keep their descriptors while the
// cold tail is reopened on touch. Handles are refcounted so an
// eviction or CloseAll never closes a root out from under an op in
// flight.
type OS struct {
	path string

	mu    sync.Mutex
	max   int // handle budget; eviction only when the layout exceeds it
	known map[string]bool
	roots map[string]*osRoot
	lru   *list.List // of *osRoot; front = most recently used
}

// osRoot is one cached directory handle.
type osRoot struct {
	dir  string
	r    *os.Root
	refs int
	el   *list.Element
	gone bool // evicted/closed: the last release closes r
}

type osFD struct {
	f       *os.File
	append_ bool
}

// DefaultMaxDirHandles is the stock directory-handle budget: large
// enough that every pre-harness layout (hundreds of user dirs) stays
// fully cached, small enough that two million-mailbox stores in one
// process fit comfortably under common RLIMIT_NOFILE settings.
const DefaultMaxDirHandles = 4096

// NewOS prepares (creating if necessary) the fixed directory layout
// under path with the default handle budget.
func NewOS(path string, dirs []string) (*OS, error) {
	return NewOSLimited(path, dirs, DefaultMaxDirHandles)
}

// NewOSLimited is NewOS with an explicit directory-handle budget
// (min 1). Layouts within the budget behave exactly like the
// unbounded original.
func NewOSLimited(path string, dirs []string, maxHandles int) (*OS, error) {
	if maxHandles < 1 {
		maxHandles = 1
	}
	o := &OS{
		path:  path,
		max:   maxHandles,
		known: make(map[string]bool, len(dirs)),
		roots: make(map[string]*osRoot),
		lru:   list.New(),
	}
	if err := os.MkdirAll(path, 0o755); err != nil {
		return nil, fmt.Errorf("gfs: preparing root: %w", err)
	}
	eager := len(dirs) <= maxHandles
	for _, d := range dirs {
		full := filepath.Join(path, d)
		if err := os.MkdirAll(full, 0o755); err != nil {
			return nil, fmt.Errorf("gfs: preparing %s: %w", d, err)
		}
		o.known[d] = true
		if eager {
			r, err := os.OpenRoot(full)
			if err != nil {
				return nil, fmt.Errorf("gfs: opening %s: %w", d, err)
			}
			e := &osRoot{dir: d, r: r}
			e.el = o.lru.PushFront(e)
			o.roots[d] = e
		}
	}
	return o, nil
}

// CloseAll releases the cached directory handles; handles held by ops
// still in flight are closed when their op releases them.
func (o *OS) CloseAll() {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, e := range o.roots {
		e.gone = true
		if e.refs == 0 {
			e.r.Close()
		}
	}
	o.roots = make(map[string]*osRoot)
	o.lru.Init()
}

// Path returns the backing directory.
func (o *OS) Path() string { return o.path }

// cachedRoot returns the directory's handle pinned against eviction
// only if it is already cached — a miss reports ok=false without
// opening anything. Unknown directories panic like root.
func (o *OS) cachedRoot(dir string) (*os.Root, func(), bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.roots[dir]
	if !ok {
		if !o.known[dir] {
			panic(fmt.Sprintf("gfs: unknown directory %q (fixed layout)", dir))
		}
		return nil, nil, false
	}
	o.lru.MoveToFront(e.el)
	e.refs++
	return e.r, func() {
		o.mu.Lock()
		defer o.mu.Unlock()
		e.refs--
		if e.gone && e.refs == 0 {
			e.r.Close()
		}
	}, true
}

// root returns the directory's handle pinned against eviction; the
// caller must invoke release when done with it. Unknown directories
// panic (the layout is fixed); a handle that cannot be (re)opened —
// possible only in the lazy regime — returns nil, and the op reports
// failure like any other I/O error.
func (o *OS) root(dir string) (*os.Root, func()) {
	o.mu.Lock()
	defer o.mu.Unlock()
	e, ok := o.roots[dir]
	if !ok {
		if !o.known[dir] {
			panic(fmt.Sprintf("gfs: unknown directory %q (fixed layout)", dir))
		}
		r, err := os.OpenRoot(filepath.Join(o.path, dir))
		if err != nil {
			return nil, func() {}
		}
		e = &osRoot{dir: dir, r: r}
		e.el = o.lru.PushFront(e)
		o.roots[dir] = e
		for len(o.roots) > o.max {
			back := o.lru.Back()
			if back == nil {
				break
			}
			v := back.Value.(*osRoot)
			o.lru.Remove(back)
			delete(o.roots, v.dir)
			v.gone = true
			if v.refs == 0 {
				v.r.Close()
			}
		}
	} else {
		o.lru.MoveToFront(e.el)
	}
	e.refs++
	return e.r, func() {
		o.mu.Lock()
		defer o.mu.Unlock()
		e.refs--
		if e.gone && e.refs == 0 {
			e.r.Close()
		}
	}
}

// NewLock implements System with a sync.Mutex.
func (o *OS) NewLock(T, string) Lock { return &nativeLock{} }

// Create implements System (O_CREATE|O_EXCL, append mode).
func (o *OS) Create(_ T, dir, name string) (FD, bool) {
	r, release := o.root(dir)
	if r == nil {
		return nil, false
	}
	defer release()
	f, err := r.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, false
	}
	return &osFD{f: f, append_: true}, true
}

// Open implements System (read mode).
func (o *OS) Open(_ T, dir, name string) (FD, bool) {
	r, release := o.root(dir)
	if r == nil {
		return nil, false
	}
	defer release()
	f, err := r.Open(name)
	if err != nil {
		return nil, false
	}
	return &osFD{f: f}, true
}

// Append implements System. A short write (n < len(data)) counts as
// failure — the partial data may be on disk, but the caller must treat
// the append as not having happened and abandon the file, exactly like
// an EIO/ENOSPC error. Appending to a read-mode descriptor (reachable
// only via a faulted or buggy path) reports failure instead of downing
// the server with a panic; the model backend still flags it as UB.
func (o *OS) Append(_ T, fd FD, data []byte) bool {
	f := fd.(*osFD)
	if !f.append_ {
		return false
	}
	if len(data) > MaxAppend {
		panic("gfs: append exceeds atomic limit")
	}
	n, err := f.f.Write(data)
	return err == nil && n == len(data)
}

// Close implements System.
func (o *OS) Close(_ T, fd FD) {
	fd.(*osFD).f.Close()
}

// ReadAt implements System.
func (o *OS) ReadAt(_ T, fd FD, off, n uint64) []byte {
	f := fd.(*osFD)
	buf := make([]byte, n)
	read, err := f.f.ReadAt(buf, int64(off))
	if err != nil && err != io.EOF {
		return nil
	}
	return buf[:read]
}

// Size implements System.
func (o *OS) Size(_ T, fd FD) uint64 {
	st, err := fd.(*osFD).f.Stat()
	if err != nil {
		return 0
	}
	return uint64(st.Size())
}

// Sync implements System via fsync. A failed fsync reports false: the
// kernel may have dropped the dirty pages (fsyncgate), so the caller
// must not treat the data as durable nor retry the sync on this
// descriptor.
func (o *OS) Sync(_ T, fd FD) bool {
	return fd.(*osFD).f.Sync() == nil
}

// SyncDir implements System by fsyncing the directory itself, which is
// what ext4-style file systems require before a create, link, or unlink
// in it may be assumed durable. os.Root does not expose the directory
// descriptor, so the directory is opened by path for the fsync; a
// failed open or fsync reports false (not a barrier), and retrying a
// directory fsync is sound — metadata goes through the journal, unlike
// the fsyncgate'd data pages behind a failed file Sync.
func (o *OS) SyncDir(_ T, dir string) bool {
	r, release := o.root(dir) // panic on layout violations like every other op
	if r == nil {
		return false
	}
	release()
	f, err := os.Open(filepath.Join(o.path, dir))
	if err != nil {
		return false
	}
	defer f.Close()
	return f.Sync() == nil
}

// Delete implements System.
func (o *OS) Delete(_ T, dir, name string) bool {
	r, release := o.root(dir)
	if r == nil {
		return false
	}
	defer release()
	return r.Remove(name) == nil
}

// Link implements System. os.Root has no Link in this Go version, so the
// link itself uses full paths; EEXIST (or any failure) reports false.
func (o *OS) Link(_ T, oldDir, oldName, newDir, newName string) bool {
	oldPath := filepath.Join(o.path, oldDir, oldName)
	newPath := filepath.Join(o.path, newDir, newName)
	return os.Link(oldPath, newPath) == nil
}

// CorruptFile implements Corrupter on the real file system: it mangles
// the named file's stored bytes in place (read-write open under the
// cached directory root), for corruption drills against a live server.
// Absent and empty files report false.
func (o *OS) CorruptFile(_ T, dir, name string, mode CorruptMode) bool {
	r, release := o.root(dir)
	if r == nil {
		return false
	}
	defer release()
	f, err := r.OpenFile(name, os.O_RDWR, 0)
	if err != nil {
		return false
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return false
	}
	size := st.Size()
	if mode == CorruptTruncate {
		return f.Truncate(size-1) == nil
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], size/2); err != nil {
		return false
	}
	b[0] ^= 0x01
	_, err = f.WriteAt(b[:], size/2)
	return err == nil
}

// List implements System, sorted like the model. On a handle-cache
// miss it reads the directory by path instead of opening a root: the
// big List consumers are one-shot full-population sweeps (recovery,
// resync, scrub, audits), and letting a 100k-mailbox sweep stream
// through the LRU would churn the hot mailboxes' handles out of the
// cache while paying an open/close per cold directory.
func (o *OS) List(_ T, dir string) []string {
	var entries []fs.DirEntry
	var err error
	if r, release, ok := o.cachedRoot(dir); ok {
		entries, err = fs.ReadDir(r.FS(), ".")
		release()
	} else {
		entries, err = os.ReadDir(filepath.Join(o.path, dir))
	}
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out
}
