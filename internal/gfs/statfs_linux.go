//go:build linux

package gfs

import "syscall"

// StatFS reports the free and total bytes of the file system backing
// the store, via statfs(2). ok=false means the syscall failed; callers
// (the shed policy) must fall back to the modeled space signal rather
// than assume a full or empty disk.
func (o *OS) StatFS() (free, total uint64, ok bool) {
	var st syscall.Statfs_t
	if err := syscall.Statfs(o.path, &st); err != nil {
		return 0, 0, false
	}
	bs := uint64(st.Bsize)
	return uint64(st.Bavail) * bs, uint64(st.Blocks) * bs, true
}
