package gfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/machine"
	"repro/internal/trace"
)

// ErrIntegrity is the loud-failure sentinel for checksum mismatches:
// VerifyFile wraps it in every corrupt verdict, and Checksummed.Open
// refuses (returns false) rather than expose rotten bytes.
var ErrIntegrity = errors.New("gfs: integrity check failed")

// The on-disk envelope. Every file written through Checksummed is a
// sequence of frames, each small enough to be one atomic inner Append:
//
//	frame    := kind(1) | payloadLen(4, BE) | sum(8, BE) | payload
//	sum      := FNV-64a( birthPath | frameIndex(8, BE) | kind(1) | payload )
//	header   := frame kind 0, payload = birthPath ("dir/name" at Create)
//	data     := frame kind 1, payload = caller bytes
//	seal     := frame kind 2, payload = plainLen(8, BE) | FNV-64a( birthPath | plaintext )
//
// The per-frame sum binds payload bytes to the file's birth path and
// the frame's position, so swapping frames between files or reordering
// them within one file is detected. The seal binds the whole plaintext
// and its length, so dropping trailing frames from a sealed file is
// detected too. What the envelope cannot detect is a wholesale swap
// with an older self-consistent file of the same birth path (a
// stale-generation swap): that needs an authority outside the file,
// which the mirror's generation markers provide (see DESIGN.md §4f).
//
// Frames align with inner Append boundaries, so a torn crash of the
// buffered model (any prefix of the unsynced tail at an append
// boundary) always leaves a clean frame prefix: an unsealed-but-valid
// file, never a false corruption verdict.
const (
	frameHeader byte = 0
	frameData   byte = 1
	frameSeal   byte = 2

	frameOverhead = 1 + 4 + 8
	// maxFramePayload keeps every frame within one atomic inner Append.
	maxFramePayload = MaxAppend - frameOverhead
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64a(h uint64, chunks ...[]byte) uint64 {
	for _, c := range chunks {
		for _, b := range c {
			h ^= uint64(b)
			h *= fnvPrime64
		}
	}
	return h
}

func frameSum(path string, index uint64, kind byte, payload []byte) uint64 {
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], index)
	return fnv64a(fnvOffset64, []byte(path), idx[:], []byte{kind}, payload)
}

func sealSum(path string, plaintext []byte) uint64 {
	return fnv64a(fnvOffset64, []byte(path), plaintext)
}

func buildFrame(path string, index uint64, kind byte, payload []byte) []byte {
	f := make([]byte, frameOverhead+len(payload))
	f[0] = kind
	binary.BigEndian.PutUint32(f[1:5], uint32(len(payload)))
	binary.BigEndian.PutUint64(f[5:13], frameSum(path, index, kind, payload))
	copy(f[frameOverhead:], payload)
	return f
}

// Verdict classifies a file's envelope state.
type Verdict int

const (
	// VerdictOK: sealed, every checksum matches, no trailing bytes.
	VerdictOK Verdict = iota
	// VerdictUnsealed: a valid header and data-frame prefix with no seal
	// — an in-progress (or crash-abandoned) file. Not corruption: spool
	// leftovers look like this and recovery sweeps them without reading.
	VerdictUnsealed
	// VerdictCorrupt: the envelope is damaged — a checksum mismatch, a
	// torn frame, trailing bytes after the seal, or a seal that does not
	// cover the contents.
	VerdictCorrupt
	// VerdictAbsent: the file does not exist (or the backend is dead).
	VerdictAbsent
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictOK:
		return "ok"
	case VerdictUnsealed:
		return "unsealed"
	case VerdictCorrupt:
		return "corrupt"
	case VerdictAbsent:
		return "absent"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// IntegrityError is one non-OK file found by VerifyAll/Scrub.
type IntegrityError struct {
	Dir, Name string
	Verdict   Verdict
}

// Error implements error, wrapping ErrIntegrity for corrupt verdicts.
func (e IntegrityError) Error() string {
	return fmt.Sprintf("%s/%s: %v (%s)", e.Dir, e.Name, ErrIntegrity, e.Verdict)
}

// Unwrap lets errors.Is(err, ErrIntegrity) work.
func (IntegrityError) Unwrap() error { return ErrIntegrity }

// Checksummed is the integrity middleware: every file written through
// it is wrapped in the self-describing checksum envelope above, and
// every Open verifies the whole envelope before exposing a single byte
// — a read of rotten data fails loudly (the open reports failure and
// the detection counter ticks) instead of returning garbage. It wraps
// either backend, or Faulty, and slots under Mirrored (one Checksummed
// per replica) so the mirror can tell "corrupt" apart from "absent"
// and heal from the peer.
type Checksummed struct {
	inner System
	dirs  []string

	// TrustReads is a deliberate seeded-bug hook for the checker suite
	// (mb/integrity-bug:trust-read): when set, Open strips the envelope
	// without verifying any checksum, best-effort, serving whatever
	// bytes it can decode. Never set it outside bug scenarios.
	TrustReads bool

	// Metrics, when non-nil, counts detections into
	// gfs_integrity_detected_total. Nil-safe: checker runs stay
	// metric-free.
	Metrics *IntegrityMetrics

	mu       sync.Mutex
	detected uint64
}

// NewChecksummed wraps inner, with dirs the fixed directory layout
// (needed by VerifyAll and Scrub).
func NewChecksummed(inner System, dirs []string) *Checksummed {
	return &Checksummed{inner: inner, dirs: append([]string{}, dirs...)}
}

// Inner returns the wrapped backend — also the raw, envelope-level view
// of the store, which Mirrored uses to copy files byte-identically
// between replicas.
func (c *Checksummed) Inner() System { return c.inner }

// Detected returns the number of integrity failures detected so far
// (failed opens and corrupt verify verdicts).
func (c *Checksummed) Detected() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.detected
}

func (c *Checksummed) noteDetected(t T, dir, name string, v Verdict) {
	c.mu.Lock()
	c.detected++
	c.mu.Unlock()
	c.Metrics.detected()
	trace.Event(t, "integrity detected: %s/%s %s", dir, name, v)
	if mt, ok := t.(*machine.T); ok {
		mt.Tracef("fs.integrity %s/%s: %s", dir, name, v)
	}
}

type checksumFD struct {
	dir, name string
	closed    bool

	// Append mode.
	w         FD
	writing   bool
	sealed    bool
	nextFrame uint64
	plaintext []byte
	writeOK   bool
	birthPath string

	// Read mode: the verified, decoded contents.
	data []byte
}

// NewLock implements System (passthrough; locks are volatile memory).
func (c *Checksummed) NewLock(t T, name string) Lock { return c.inner.NewLock(t, name) }

// Create implements System: it creates the inner file and writes the
// header frame recording the birth path. If the header cannot be
// written the inner file is removed and the create fails — a file
// without a header is indistinguishable from rot.
func (c *Checksummed) Create(t T, dir, name string) (FD, bool) {
	w, ok := c.inner.Create(t, dir, name)
	if !ok {
		return nil, false
	}
	path := dir + "/" + name
	if !c.inner.Append(t, w, buildFrame(path, 0, frameHeader, []byte(path))) {
		c.inner.Close(t, w)
		c.inner.Delete(t, dir, name)
		return nil, false
	}
	return &checksumFD{
		dir: dir, name: name, w: w, writing: true,
		nextFrame: 1, writeOK: true, birthPath: path,
	}, true
}

// Append implements System: the payload is split into data frames, each
// one atomic inner Append. Appending to a sealed file fails (the
// envelope is closed; start a new file).
func (c *Checksummed) Append(t T, fd FD, data []byte) bool {
	f := fd.(*checksumFD)
	if !f.writing || f.closed || f.sealed || !f.writeOK {
		return false
	}
	if len(data) > MaxAppend {
		panic("gfs: append exceeds atomic limit")
	}
	for len(data) > 0 {
		n := len(data)
		if n > maxFramePayload {
			n = maxFramePayload
		}
		if !c.inner.Append(t, f.w, buildFrame(f.birthPath, f.nextFrame, frameData, data[:n])) {
			f.writeOK = false
			return false
		}
		f.nextFrame++
		f.plaintext = append(f.plaintext, data[:n]...)
		data = data[n:]
	}
	return true
}

// seal appends the seal frame (at most once).
func (c *Checksummed) seal(t T, f *checksumFD) bool {
	if f.sealed || !f.writeOK {
		return f.sealed
	}
	payload := make([]byte, 16)
	binary.BigEndian.PutUint64(payload[:8], uint64(len(f.plaintext)))
	binary.BigEndian.PutUint64(payload[8:], sealSum(f.birthPath, f.plaintext))
	if !c.inner.Append(t, f.w, buildFrame(f.birthPath, f.nextFrame, frameSeal, payload)) {
		f.writeOK = false
		return false
	}
	f.nextFrame++
	f.sealed = true
	return true
}

// Sync implements System: the file is sealed first (a synced file is a
// published file) and the envelope then made durable. After a failed
// sync the file must be abandoned, per the System contract.
func (c *Checksummed) Sync(t T, fd FD) bool {
	f := fd.(*checksumFD)
	if !f.writing || f.closed {
		return false
	}
	if !c.seal(t, f) {
		return false
	}
	return c.inner.Sync(t, f.w)
}

// SyncDir implements System: the envelope adds nothing to directory
// metadata, so the barrier passes straight through.
func (c *Checksummed) SyncDir(t T, dir string) bool {
	return c.inner.SyncDir(t, dir)
}

// Close implements System. An append-mode file is sealed on close if it
// was not sealed by Sync; if sealing fails the file is left unsealed on
// disk, where reads will refuse it — the same outcome as an abandoned
// write.
func (c *Checksummed) Close(t T, fd FD) {
	f := fd.(*checksumFD)
	if f.closed {
		return
	}
	f.closed = true
	if f.writing {
		c.seal(t, f)
		c.inner.Close(t, f.w)
	}
}

// Open implements System: the whole envelope is read and verified up
// front; on any mismatch the open fails loudly (and the detection
// counter ticks) instead of exposing rotten bytes. Reads are then
// served from the verified plaintext. Only sealed files open — an
// unsealed file is either still being written or was torn by a crash,
// and in both cases its contents were never published.
func (c *Checksummed) Open(t T, dir, name string) (FD, bool) {
	raw, verdict := c.readRaw(t, dir, name)
	if verdict == VerdictAbsent {
		return nil, false
	}
	if c.TrustReads {
		// Seeded bug: strip the envelope without verifying anything.
		return &checksumFD{dir: dir, name: name, data: decodeTrusting(raw)}, true
	}
	data, v := decodeVerify(raw)
	if v != VerdictOK {
		// Only rot counts as a detection; an unsealed file is an
		// in-progress or crash-abandoned write and simply never opens.
		if v == VerdictCorrupt {
			c.noteDetected(t, dir, name, v)
		}
		return nil, false
	}
	return &checksumFD{dir: dir, name: name, data: data}, true
}

// readRaw reads the file's entire envelope through the inner system.
func (c *Checksummed) readRaw(t T, dir, name string) ([]byte, Verdict) {
	fd, ok := c.inner.Open(t, dir, name)
	if !ok {
		return nil, VerdictAbsent
	}
	defer c.inner.Close(t, fd)
	size := c.inner.Size(t, fd)
	raw := make([]byte, 0, size)
	for uint64(len(raw)) < size {
		chunk := c.inner.ReadAt(t, fd, uint64(len(raw)), MaxAppend)
		if len(chunk) == 0 {
			// The backend stopped answering mid-file; surface what we
			// have and let verification classify it.
			break
		}
		raw = append(raw, chunk...)
	}
	return raw, VerdictOK
}

// decodeVerify parses and verifies a full envelope, returning the
// plaintext and a verdict. The binding path is the BIRTH path recorded
// in the header frame, not the entry's current name — hard links
// (Deliver's spool-to-mailbox publish) change the name, never the
// bytes, so a linked file must keep verifying under its new name. The
// flip side is that a wholesale swap with a different self-consistent
// envelope is locally undetectable (see the envelope comment above:
// that needs an authority outside the file).
func decodeVerify(raw []byte) ([]byte, Verdict) {
	if len(raw) == 0 {
		// Zero frames. A crash can tear a just-created file back to zero
		// bytes (the header append not yet synced), so emptiness is the
		// degenerate unsealed shape, not rot — there are no bytes to
		// serve wrongly.
		return nil, VerdictUnsealed
	}
	var plaintext []byte
	var index uint64
	var path string
	sealed := false
	for len(raw) > 0 {
		if sealed {
			return nil, VerdictCorrupt // trailing bytes after the seal
		}
		if len(raw) < frameOverhead {
			return nil, VerdictCorrupt // torn frame header
		}
		kind := raw[0]
		plen := binary.BigEndian.Uint32(raw[1:5])
		sum := binary.BigEndian.Uint64(raw[5:13])
		if uint64(len(raw)-frameOverhead) < uint64(plen) {
			return nil, VerdictCorrupt // torn payload
		}
		payload := raw[frameOverhead : frameOverhead+int(plen)]
		raw = raw[frameOverhead+int(plen):]
		if index == 0 {
			if kind != frameHeader {
				return nil, VerdictCorrupt // missing header
			}
			path = string(payload)
		} else if kind == frameHeader {
			return nil, VerdictCorrupt // duplicate header
		}
		if frameSum(path, index, kind, payload) != sum {
			return nil, VerdictCorrupt
		}
		switch kind {
		case frameHeader:
		case frameData:
			plaintext = append(plaintext, payload...)
		case frameSeal:
			if len(payload) != 16 {
				return nil, VerdictCorrupt
			}
			if binary.BigEndian.Uint64(payload[:8]) != uint64(len(plaintext)) {
				return nil, VerdictCorrupt
			}
			if binary.BigEndian.Uint64(payload[8:]) != sealSum(path, plaintext) {
				return nil, VerdictCorrupt
			}
			sealed = true
		default:
			return nil, VerdictCorrupt // unknown frame kind
		}
		index++
	}
	if !sealed {
		return nil, VerdictUnsealed
	}
	return plaintext, VerdictOK
}

// VerifyEnvelope classifies envelope bytes already in hand. The mirror's
// heal and resilver paths use it to judge the EXACT bytes they are about
// to copy: verifying the file again through the store would race the
// fault layer (silent corruption strikes whenever a file is opened, so a
// corruption injected at the re-read would slip past a verdict computed
// on an earlier one).
func VerifyEnvelope(raw []byte) Verdict {
	_, v := decodeVerify(raw)
	return v
}

// decodeTrusting is the TrustReads decoder: best-effort frame parsing
// with every checksum ignored — exactly the bug the trust-read scenario
// exists to catch.
func decodeTrusting(raw []byte) []byte {
	var plaintext []byte
	for len(raw) >= frameOverhead {
		kind := raw[0]
		plen := int(binary.BigEndian.Uint32(raw[1:5]))
		if len(raw)-frameOverhead < plen {
			plen = len(raw) - frameOverhead
		}
		if kind == frameData {
			plaintext = append(plaintext, raw[frameOverhead:frameOverhead+plen]...)
		}
		raw = raw[frameOverhead+plen:]
	}
	return plaintext
}

// ReadAt implements System, serving from the verified plaintext.
func (c *Checksummed) ReadAt(t T, fd FD, off, n uint64) []byte {
	f := fd.(*checksumFD)
	if f.writing || f.closed || off >= uint64(len(f.data)) {
		return nil
	}
	end := off + n
	if end > uint64(len(f.data)) {
		end = uint64(len(f.data))
	}
	out := make([]byte, end-off)
	copy(out, f.data[off:end])
	return out
}

// Size implements System: the plaintext length (what the caller wrote,
// not the envelope's on-disk size).
func (c *Checksummed) Size(t T, fd FD) uint64 {
	f := fd.(*checksumFD)
	if f.writing {
		return uint64(len(f.plaintext))
	}
	return uint64(len(f.data))
}

// Delete implements System (passthrough).
func (c *Checksummed) Delete(t T, dir, name string) bool {
	return c.inner.Delete(t, dir, name)
}

// Link implements System (passthrough). The envelope binds the birth
// path, not the current directory entry, so a linked file (Deliver's
// spool-to-mailbox publish) stays verifiable under its new name.
func (c *Checksummed) Link(t T, oldDir, oldName, newDir, newName string) bool {
	return c.inner.Link(t, oldDir, oldName, newDir, newName)
}

// List implements System (passthrough).
func (c *Checksummed) List(t T, dir string) []string { return c.inner.List(t, dir) }

// VerifyFile reads dir/name's raw envelope and classifies it. Corrupt
// verdicts tick the detection counter.
func (c *Checksummed) VerifyFile(t T, dir, name string) Verdict {
	raw, verdict := c.readRaw(t, dir, name)
	if verdict == VerdictAbsent {
		return VerdictAbsent
	}
	_, v := decodeVerify(raw)
	if v == VerdictCorrupt {
		c.noteDetected(t, dir, name, v)
	}
	return v
}

// VerifyAll verifies every file in every directory, returning the
// non-OK files (unsealed ones included; callers decide whether an
// unsealed file is expected where it was found).
func (c *Checksummed) VerifyAll(t T) []IntegrityError {
	var out []IntegrityError
	for _, dir := range c.dirs {
		for _, name := range c.inner.List(t, dir) {
			if v := c.VerifyFile(t, dir, name); v != VerdictOK {
				out = append(out, IntegrityError{Dir: dir, Name: name, Verdict: v})
			}
		}
	}
	return out
}

// Scrub implements Scrubber: a single-store scrub can detect but not
// heal (there is no redundant copy), so heal is ignored. Unsealed files
// are reported but not counted corrupt — an unsealed spool leftover is
// the normal shape of a crash-abandoned write.
func (c *Checksummed) Scrub(t T, heal bool) ScrubReport {
	rep := ScrubReport{}
	for _, dir := range c.dirs {
		for _, name := range c.inner.List(t, dir) {
			rep.Checked++
			switch c.VerifyFile(t, dir, name) {
			case VerdictCorrupt:
				rep.Corrupt++
				rep.Bad = append(rep.Bad, dir+"/"+name)
			case VerdictUnsealed:
				rep.Unsealed++
			}
		}
	}
	return rep
}

// AppendIntegrityState appends the detection counter for crash-boundary
// dedup: scenario assertions read Detected(), so two boundary states
// with different detection histories must not be merged.
func (c *Checksummed) AppendIntegrityState(b []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], c.detected)
	return append(b, buf[:]...)
}

// AsChecksummed unwraps middleware layers (via Inner) until it finds a
// Checksummed, returning nil if the stack has none.
func AsChecksummed(sys System) *Checksummed {
	for sys != nil {
		if c, ok := sys.(*Checksummed); ok {
			return c
		}
		in, ok := sys.(innerer)
		if !ok {
			return nil
		}
		sys = in.Inner()
	}
	return nil
}
