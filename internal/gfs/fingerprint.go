package gfs

import (
	"sort"

	"repro/internal/machine"
)

// This file provides the canonical durable-state encodings the model
// checker's crash-boundary dedup table hashes (see DESIGN.md §5).
// Model implements machine.Fingerprinter directly (it is a registered
// device); Faulty, ChooserPolicy and Mirrored are middleware held by
// the scenario's world, not devices, so they expose Append* helpers the
// scenario's explore.Scenario.Fingerprint hook composes.

// AppendDurable implements machine.Fingerprinter. The encoding is
// canonical in the sense dedup needs: inode numbers are renamed to
// their first appearance in sorted (dir, name) order, so two file
// systems that differ only in inode allocation history — but have the
// same hard-link structure and contents — encode identically, while
// distinct link structures stay distinct. Open-descriptor state is
// volatile (dead at the crash boundary where fingerprints are taken)
// and `next` only picks unobservable fresh ids, so both are excluded.
func (fs *Model) AppendDurable(b []byte) []byte {
	b = machine.AppendBool(b, fs.buffered)
	dirNames := make([]string, 0, len(fs.dirs))
	for d := range fs.dirs {
		dirNames = append(dirNames, d)
	}
	sort.Strings(dirNames)
	canon := map[inodeID]uint64{}
	b = machine.AppendUint64(b, uint64(len(dirNames)))
	for _, dir := range dirNames {
		d := fs.dirs[dir]
		b = machine.AppendString(b, dir)
		names := make([]string, 0, len(d))
		for n := range d {
			names = append(names, n)
		}
		sort.Strings(names)
		b = machine.AppendUint64(b, uint64(len(names)))
		for _, n := range names {
			b = machine.AppendString(b, n)
			b = fs.appendInode(b, canon, d[n])
		}
	}
	// Under writeback the crash-reachable states also depend on each
	// directory's durable view and its pending operation log (any prefix
	// of which may survive), so both are part of the canonical state.
	// Inodes referenced only there (e.g. created then deleted before a
	// SyncDir) get their contents encoded at first reference.
	b = machine.AppendBool(b, fs.writeback)
	if fs.writeback {
		for _, dir := range dirNames {
			b = machine.AppendString(b, dir)
			durable := fs.durableDirs[dir]
			names := make([]string, 0, len(durable))
			for n := range durable {
				names = append(names, n)
			}
			sort.Strings(names)
			b = machine.AppendUint64(b, uint64(len(names)))
			for _, n := range names {
				b = machine.AppendString(b, n)
				b = fs.appendInode(b, canon, durable[n])
			}
			ops := fs.dirPending[dir]
			b = machine.AppendUint64(b, uint64(len(ops)))
			for _, op := range ops {
				b = machine.AppendBool(b, op.add)
				b = machine.AppendString(b, op.name)
				if op.add {
					b = fs.appendInode(b, canon, op.ino)
				}
			}
		}
	}
	return b
}

// appendInode encodes one inode reference: its canonical id plus, on
// every reference, its contents and (when buffered) its synced prefix
// and pending append boundaries — the un-synced write state that
// determines which post-crash contents are reachable.
func (fs *Model) appendInode(b []byte, canon map[inodeID]uint64, ino inodeID) []byte {
	id, seen := canon[ino]
	if !seen {
		id = uint64(len(canon))
		canon[ino] = id
	}
	b = machine.AppendUint64(b, id)
	b = machine.AppendBytes(b, fs.inodes[ino])
	if fs.buffered {
		b = machine.AppendUint64(b, uint64(fs.synced[ino]))
		b = machine.AppendUint64(b, uint64(len(fs.pending[ino])))
		for _, p := range fs.pending[ino] {
			b = machine.AppendUint64(b, uint64(p))
		}
	}
	return b
}

// AppendCheckerState appends the Faulty state that a *checker-driven*
// (ChooserPolicy) fault stack's future behavior depends on: the
// durable latches (permanent fail-stop, disk-full). The per-class
// invocation counters are deliberately excluded — ChooserPolicy
// ignores call indices (it decides through the Chooser under a
// budget), so two executions whose counters differ but whose latches
// agree behave identically from here. Seeded policies DO depend on
// indices; scenarios using SeededPolicy under the checker must not
// enable dedup (leave Fingerprint nil).
func (f *Faulty) AppendCheckerState(b []byte) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	b = machine.AppendBool(b, f.failStopped)
	return machine.AppendBool(b, f.noSpace)
}

// AppendState appends the policy's spent budgets — the only mutable
// state a ChooserPolicy carries across a crash (it lives in the
// scenario world, not on the machine). Configuration fields are
// per-scenario constants and excluded.
func (p *ChooserPolicy) AppendState(b []byte) []byte {
	b = machine.AppendUint64(b, uint64(p.used))
	for _, c := range p.perClass {
		b = machine.AppendUint64(b, uint64(c))
	}
	return b
}

// AppendMirrorState appends the mirror's crash-surviving control state:
// per-replica failed/stale latches and the resilvering flag (a crash
// can land mid-resilver). Failovers and metrics are observability only
// and excluded.
func (m *Mirrored) AppendMirrorState(b []byte) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	b = machine.AppendBool(b, m.failed[0])
	b = machine.AppendBool(b, m.failed[1])
	b = machine.AppendBool(b, m.stale[0])
	b = machine.AppendBool(b, m.stale[1])
	return machine.AppendBool(b, m.resilvering)
}
