package gfs

import (
	"sort"

	"repro/internal/machine"
)

// This file provides the canonical durable-state encodings the model
// checker's crash-boundary dedup table hashes (see DESIGN.md §5).
// Model implements machine.Fingerprinter directly (it is a registered
// device); Faulty, ChooserPolicy and Mirrored are middleware held by
// the scenario's world, not devices, so they expose Append* helpers the
// scenario's explore.Scenario.Fingerprint hook composes.

// AppendDurable implements machine.Fingerprinter. The encoding is
// canonical in the sense dedup needs: inode numbers are renamed to
// their first appearance in sorted (dir, name) order, so two file
// systems that differ only in inode allocation history — but have the
// same hard-link structure and contents — encode identically, while
// distinct link structures stay distinct. Open-descriptor state is
// volatile (dead at the crash boundary where fingerprints are taken)
// and `next` only picks unobservable fresh ids, so both are excluded.
func (fs *Model) AppendDurable(b []byte) []byte {
	b = machine.AppendBool(b, fs.buffered)
	dirNames := make([]string, 0, len(fs.dirs))
	for d := range fs.dirs {
		dirNames = append(dirNames, d)
	}
	sort.Strings(dirNames)
	canon := map[inodeID]uint64{}
	b = machine.AppendUint64(b, uint64(len(dirNames)))
	for _, dir := range dirNames {
		d := fs.dirs[dir]
		b = machine.AppendString(b, dir)
		names := make([]string, 0, len(d))
		for n := range d {
			names = append(names, n)
		}
		sort.Strings(names)
		b = machine.AppendUint64(b, uint64(len(names)))
		for _, n := range names {
			ino := d[n]
			id, seen := canon[ino]
			if !seen {
				id = uint64(len(canon))
				canon[ino] = id
			}
			b = machine.AppendString(b, n)
			b = machine.AppendUint64(b, id)
			b = machine.AppendBytes(b, fs.inodes[ino])
			if fs.buffered {
				b = machine.AppendUint64(b, uint64(fs.synced[ino]))
			}
		}
	}
	return b
}

// AppendCheckerState appends the Faulty state that a *checker-driven*
// (ChooserPolicy) fault stack's future behavior depends on: the
// permanent fail-stop latch. The per-class invocation counters are
// deliberately excluded — ChooserPolicy ignores call indices (it
// decides through the Chooser under a budget), so two executions whose
// counters differ but whose latches agree behave identically from here.
// Seeded policies DO depend on indices; scenarios using SeededPolicy
// under the checker must not enable dedup (leave Fingerprint nil).
func (f *Faulty) AppendCheckerState(b []byte) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return machine.AppendBool(b, f.failStopped)
}

// AppendState appends the policy's spent budgets — the only mutable
// state a ChooserPolicy carries across a crash (it lives in the
// scenario world, not on the machine). Configuration fields are
// per-scenario constants and excluded.
func (p *ChooserPolicy) AppendState(b []byte) []byte {
	b = machine.AppendUint64(b, uint64(p.used))
	for _, c := range p.perClass {
		b = machine.AppendUint64(b, uint64(c))
	}
	return b
}

// AppendMirrorState appends the mirror's crash-surviving control state:
// per-replica failed/stale latches and the resilvering flag (a crash
// can land mid-resilver). Failovers and metrics are observability only
// and excluded.
func (m *Mirrored) AppendMirrorState(b []byte) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	b = machine.AppendBool(b, m.failed[0])
	b = machine.AppendBool(b, m.failed[1])
	b = machine.AppendBool(b, m.stale[0])
	b = machine.AppendBool(b, m.stale[1])
	return machine.AppendBool(b, m.resilvering)
}
