package gfs

import (
	"testing"

	"repro/internal/machine"
)

// The error-path matrix: every failure mode the System API exposes,
// asserted identically over the model, the OS backend, and both wrapped
// in a no-op Faulty — one test body, four backends, via the shared
// interface. This is the §9.2 TCB argument applied to error paths: the
// model is only trustworthy if it fails exactly where the real file
// system fails.

// errorPathBody asserts every System error path using only interface
// behaviour (no backend internals), reporting failures through fail so
// the same body runs natively and inside a model era.
func errorPathBody(sys System, th T, fail func(format string, args ...any)) {
	// Create: fresh name succeeds, existing name fails (EEXIST).
	fd, ok := sys.Create(th, "d", "x")
	if !ok {
		fail("create of fresh name failed")
		return
	}
	if !sys.Append(th, fd, []byte("hello world")) {
		fail("append to fresh append-mode fd failed")
	}
	if !sys.Sync(th, fd) {
		fail("sync of healthy fd failed")
	}
	sys.Close(th, fd)
	if _, ok := sys.Create(th, "d", "x"); ok {
		fail("create of existing name succeeded")
	}

	// Open: absent name fails.
	if _, ok := sys.Open(th, "d", "ghost"); ok {
		fail("open of absent name succeeded")
	}

	// Delete: absent name fails.
	if sys.Delete(th, "d", "ghost") {
		fail("delete of absent name succeeded")
	}

	// Link: fresh target succeeds, existing target fails (EEXIST).
	if !sys.Link(th, "d", "x", "e", "y") {
		fail("link to fresh target failed")
	}
	if sys.Link(th, "d", "x", "e", "y") {
		fail("link over existing target succeeded")
	}

	// ReadAt: past-EOF reads are empty, straddling reads are truncated.
	rfd, ok := sys.Open(th, "d", "x")
	if !ok {
		fail("open of existing file failed")
		return
	}
	if got := sys.ReadAt(th, rfd, 100, 10); len(got) != 0 {
		fail("read past EOF returned %q", got)
	}
	if got := string(sys.ReadAt(th, rfd, 6, 64)); got != "world" {
		fail("straddling read returned %q, want %q", got, "world")
	}
	if got := sys.Size(th, rfd); got != 11 {
		fail("size=%d, want 11", got)
	}
	sys.Close(th, rfd)
}

var errorPathDirs = []string{"d", "e"}

func TestErrorPathsAllBackends(t *testing.T) {
	wrap := func(w func(System) System, mk func(t *testing.T) System) func(t *testing.T) System {
		return func(t *testing.T) System { return w(mk(t)) }
	}
	never := func(inner System) System { return NewFaulty(inner, NeverPolicy{}) }
	osBackend := func(t *testing.T) System { return newOSFS(t, errorPathDirs) }
	mirrorBackend := func(t *testing.T) System {
		metaDirs := append([]string{MirrorMetaDir}, errorPathDirs...)
		return NewMirrored(newOSFS(t, metaDirs), newOSFS(t, metaDirs), errorPathDirs)
	}

	// Native backends: OS bare, behind a quiet fault layer, and mirrored.
	for _, tc := range []struct {
		name string
		mk   func(t *testing.T) System
	}{
		{"os", osBackend},
		{"faulty(os,never)", wrap(never, osBackend)},
		{"mirrored(os,os)", mirrorBackend},
		{"faulty(mirrored,never)", wrap(never, mirrorBackend)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			errorPathBody(tc.mk(t), NewNative(1), t.Errorf)
		})
	}

	// Model backends: same body inside one era.
	for _, tc := range []struct {
		name string
		wrap func(System) System
	}{
		{"model", func(s System) System { return s }},
		{"faulty(model,never)", never},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mm := machine.New(machine.Options{MaxSteps: 10000})
			fs := NewModel(mm, errorPathDirs)
			res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
				errorPathBody(tc.wrap(fs), mt, mt.Failf)
			})
			if res.Outcome != machine.Done {
				t.Fatalf("res=%+v", res)
			}
			if n := fs.OpenFDs(); n != 0 {
				t.Fatalf("%d fds leaked", n)
			}
		})
	}

	// Mirrored over two models: same body, both replicas fd-clean.
	t.Run("mirrored(model,model)", func(t *testing.T) {
		metaDirs := append([]string{MirrorMetaDir}, errorPathDirs...)
		mm := machine.New(machine.Options{MaxSteps: 20000})
		r0 := NewModel(mm, metaDirs)
		r1 := NewModel(mm, metaDirs)
		m := NewMirrored(r0, r1, errorPathDirs)
		res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
			errorPathBody(m, mt, mt.Failf)
		})
		if res.Outcome != machine.Done {
			t.Fatalf("res=%+v", res)
		}
		if n0, n1 := r0.OpenFDs(), r1.OpenFDs(); n0 != 0 || n1 != 0 {
			t.Fatalf("leaked fds: r0=%d r1=%d", n0, n1)
		}
	})
}

// TestErrorPathsUnderAlwaysFaults checks that injected faults surface
// through the same error channels the API already has: a caller written
// against the documented failure modes needs no extra code to survive
// the fault layer.
func TestErrorPathsUnderAlwaysFaults(t *testing.T) {
	o := newOSFS(t, errorPathDirs)
	f := NewFaulty(o, AlwaysPolicy{})
	th := NewNative(1)

	if _, ok := f.Create(th, "d", "x"); ok {
		t.Fatal("faulted create succeeded")
	}
	// Set up a real file underneath, then fault every mutation on it.
	fd, ok := o.Create(th, "d", "x")
	if !ok {
		t.Fatal("inner create failed")
	}
	if !o.Append(th, fd, []byte("hello world")) {
		t.Fatal("inner append failed")
	}
	if f.Append(th, fd, []byte("MORE")) {
		t.Fatal("faulted append succeeded")
	}
	if f.Sync(th, fd) {
		t.Fatal("faulted sync succeeded")
	}
	o.Close(th, fd)
	if f.Link(th, "d", "x", "e", "y") {
		t.Fatal("faulted link succeeded")
	}
	if f.Delete(th, "d", "x") {
		t.Fatal("faulted delete succeeded")
	}

	rfd, ok := f.Open(th, "d", "x") // Open is never faulted
	if !ok {
		t.Fatal("open through fault layer failed")
	}
	defer f.Close(th, rfd)
	if got := string(f.ReadAt(th, rfd, 0, 64)); got != "hello " {
		t.Fatalf("short read returned %q, want %q", got, "hello ")
	}
	// The file underneath is whole.
	if got := string(o.ReadAt(th, rfd, 0, 64)); got != "hello world" {
		t.Fatalf("inner contents corrupted: %q", got)
	}
}

// TestOSAppendToReadFDReportsFailure pins the hardened OS behaviour:
// appending through a read-mode descriptor reports failure instead of
// panicking (the model flags the same misuse as UB, which the explorer
// reports — here the server must instead stay up).
func TestOSAppendToReadFDReportsFailure(t *testing.T) {
	o := newOSFS(t, errorPathDirs)
	th := NewNative(1)
	fd, _ := o.Create(th, "d", "x")
	o.Append(th, fd, []byte("data"))
	o.Close(th, fd)

	rfd, ok := o.Open(th, "d", "x")
	if !ok {
		t.Fatal("open failed")
	}
	defer o.Close(th, rfd)
	if o.Append(th, rfd, []byte("nope")) {
		t.Fatal("append to read-mode fd reported success")
	}
	if got := string(o.ReadAt(th, rfd, 0, 64)); got != "data" {
		t.Fatalf("contents changed: %q", got)
	}
}
