package gfs

import (
	"sort"

	"repro/internal/machine"
)

// Model is the modeled file-system backend. It registers itself as a
// durable device on the machine: directories, directory entries, and
// inode contents survive crashes; open file descriptors do not.
//
// The directory layout is fixed at creation (§6.2: "a subdirectory of
// the operating system's file system with a fixed layout since
// directories cannot be renamed or created"). Operating on an unknown
// directory is undefined behaviour.
type Model struct {
	m      *machine.Machine
	dirs   map[string]map[string]inodeID
	inodes map[inodeID][]byte
	next   inodeID
	open   int

	// buffered enables deferred durability (§6.2's future-work
	// extension): appends beyond an inode's synced prefix are lost at a
	// crash unless Sync is called. Directory operations stay atomic and
	// durable (journaled-metadata style).
	buffered bool
	synced   map[inodeID]int
	// pending records, per inode, the length after each append beyond
	// the synced prefix. At a crash any prefix of the unsynced tail up
	// to an append boundary may survive (torn appends); individual
	// appends stay atomic. Cleared by Sync and at every crash.
	pending map[inodeID][]int

	// writeback (implies buffered) extends deferred durability to
	// directory operations: creates, links, and deletes are applied to
	// the volatile dirs view immediately but only reach the durable
	// view when SyncDir flushes them (or when a crash happens to keep
	// them). Per directory the pending operations form an ordered log,
	// and a crash keeps some prefix of it — ext4-ordered-journaling
	// style, so un-synced metadata is lost newest-first with no holes.
	writeback   bool
	durableDirs map[string]map[string]inodeID
	dirPending  map[string][]dirOp

	// metrics, when set, receives crash-time drop accounting
	// (un-synced bytes and directory operations lost). Nil-safe.
	metrics *FSMetrics

	// capacity, when nonzero, bounds the modeled disk: Create, Append
	// and Link fail (ENOSPC-style false, never a model fault) once the
	// space they would consume exceeds it. Space is charged per
	// directory entry (SpaceEntryCost) plus the contents of every
	// reachable inode, so Delete credits space back the moment the last
	// entry goes — the accounting side of the FaultNoSpace latch.
	capacity uint64
}

// dirOp is one pending directory mutation under writeback: an entry
// added (create or link) or removed (delete).
type dirOp struct {
	add  bool
	name string
	ino  inodeID // meaningful only for add
}

type inodeID int

type modelFD struct {
	version uint64
	ino     inodeID
	append_ bool
	closed  bool
	name    string
}

// NewModel creates a modeled file system with the given (fixed) set of
// directories and registers it on m. Durability is strict: every append
// is durable immediately (the paper's process-crash model).
func NewModel(m *machine.Machine, dirs []string) *Model {
	fs := &Model{
		m:       m,
		dirs:    map[string]map[string]inodeID{},
		inodes:  map[inodeID][]byte{},
		synced:  map[inodeID]int{},
		pending: map[inodeID][]int{},
		next:    1,
	}
	for _, d := range dirs {
		fs.dirs[d] = map[string]inodeID{}
	}
	m.RegisterDevice(fs)
	return fs
}

// NewBufferedModel creates a modeled file system with deferred
// durability: a crash truncates every inode back to its last-synced
// prefix, modeling whole-machine crashes with a buffer cache (the
// extension §6.2 describes as future work). Code that is crash-safe
// here must Sync file contents before publishing them.
func NewBufferedModel(m *machine.Machine, dirs []string) *Model {
	fs := NewModel(m, dirs)
	fs.buffered = true
	return fs
}

// NewWritebackModel creates a modeled file system with full writeback
// semantics: file data behaves as under NewBufferedModel, and directory
// operations (create, link, delete) additionally live in a volatile
// cache until SyncDir makes them durable. At a crash each directory
// keeps some prefix of its un-synced operation log — which prefix is a
// crash-time nondeterministic choice (tag "writeback") enumerated by
// the model checker. Code that is crash-safe here must Sync file
// contents *and* SyncDir the publishing directory before acking.
func NewWritebackModel(m *machine.Machine, dirs []string) *Model {
	fs := NewBufferedModel(m, dirs)
	fs.writeback = true
	fs.durableDirs = map[string]map[string]inodeID{}
	fs.dirPending = map[string][]dirOp{}
	for d := range fs.dirs {
		fs.durableDirs[d] = map[string]inodeID{}
	}
	return fs
}

// SetMetrics wires crash-time drop accounting (un-synced bytes and
// directory entries lost at a crash) into m's gfs_sync_* counters.
// Sync calls themselves are counted by the Observed middleware, not
// here, so sharing one FSMetrics across the stack never double-counts.
func (fs *Model) SetMetrics(m *FSMetrics) { fs.metrics = m }

// SpaceEntryCost is the modeled metadata cost, in bytes, of one
// directory entry — what Create and Link charge against the capacity
// budget before any data is appended.
const SpaceEntryCost = 16

// SetCapacity bounds the modeled disk at the given byte budget
// (0 = unlimited, the default). A scenario-setup constant, not durable
// state: it is excluded from fingerprints like the rest of the
// configuration.
func (fs *Model) SetCapacity(bytes uint64) { fs.capacity = bytes }

// SpaceUsed returns the bytes currently charged against the capacity:
// SpaceEntryCost per directory entry plus the contents of every inode
// reachable from at least one entry. Deleting an entry credits its
// cost (and, for the last link, the inode's bytes) back immediately.
func (fs *Model) SpaceUsed() uint64 {
	var used uint64
	counted := map[inodeID]bool{}
	for _, d := range fs.dirs {
		for _, ino := range d {
			used += SpaceEntryCost
			if !counted[ino] {
				counted[ino] = true
				used += uint64(len(fs.inodes[ino]))
			}
		}
	}
	return used
}

// spaceFor reports whether extra more bytes fit under the capacity.
func (fs *Model) spaceFor(extra uint64) bool {
	return fs.capacity == 0 || fs.SpaceUsed()+extra <= fs.capacity
}

// Crash implements machine.Device: file data is durable, descriptors
// are volatile (they are version-stamped, so the version bump kills
// them). Under buffered durability the crash keeps, for every inode
// with an unsynced tail, some prefix of that tail ending at an append
// boundary — which prefix is a crash-time nondeterministic choice
// (tag "torn"), enumerated by the model checker via
// machine.CrashChoose. Option 0 is the pre-torn behavior (only the
// synced prefix survives), so chooserless unit runs are unchanged.
func (fs *Model) Crash() {
	fs.open = 0
	if !fs.buffered {
		return
	}
	if fs.writeback {
		fs.crashDirs()
	}
	var dirty []int
	for ino, data := range fs.inodes {
		if fs.synced[ino] < len(data) {
			dirty = append(dirty, int(ino))
		}
	}
	sort.Ints(dirty)
	for _, i := range dirty {
		ino := inodeID(i)
		data := fs.inodes[ino]
		n := fs.synced[ino]
		var cuts []int
		for _, b := range fs.pending[ino] {
			if b > n && b <= len(data) {
				cuts = append(cuts, b)
			}
		}
		keep := n
		if k := fs.m.CrashChoose(len(cuts)+1, "torn"); k > 0 {
			keep = cuts[k-1]
		}
		fs.metrics.SyncDropped(uint64(len(data)-keep), 0)
		fs.inodes[ino] = data[:keep]
		// Whatever survived the crash is on disk for good: it is the
		// durable prefix from here on.
		fs.synced[ino] = keep
	}
	fs.pending = map[inodeID][]int{}
}

// crashDirs resolves directory-metadata nondeterminism at a crash
// under writeback: for every directory with un-synced operations, some
// prefix of its pending log survives (tag "writeback"; option 0 rolls
// the directory back to its last SyncDir, the last option keeps every
// pending operation — mirroring the "torn" convention so chooserless
// unit runs take maximal loss deterministically). The surviving view
// becomes the durable view, and inodes no longer reachable from any
// directory are reclaimed so they cannot inflate later crash
// enumeration or fingerprints.
func (fs *Model) crashDirs() {
	var dirty []string
	for d, ops := range fs.dirPending {
		if len(ops) > 0 {
			dirty = append(dirty, d)
		}
	}
	sort.Strings(dirty)
	for _, d := range dirty {
		ops := fs.dirPending[d]
		k := fs.m.CrashChoose(len(ops)+1, "writeback")
		durable := fs.durableDirs[d]
		for _, op := range ops[:k] {
			if op.add {
				durable[op.name] = op.ino
			} else {
				delete(durable, op.name)
			}
		}
		fs.metrics.SyncDropped(0, uint64(len(ops)-k))
	}
	fs.dirPending = map[string][]dirOp{}
	reachable := map[inodeID]bool{}
	for d := range fs.dirs {
		cur := map[string]inodeID{}
		for name, ino := range fs.durableDirs[d] {
			cur[name] = ino
			reachable[ino] = true
		}
		fs.dirs[d] = cur
	}
	var orphans []int
	for ino := range fs.inodes {
		if !reachable[ino] {
			orphans = append(orphans, int(ino))
		}
	}
	sort.Ints(orphans)
	for _, i := range orphans {
		ino := inodeID(i)
		fs.metrics.SyncDropped(uint64(len(fs.inodes[ino])-fs.synced[ino]), 0)
		delete(fs.inodes, ino)
		delete(fs.synced, ino)
		delete(fs.pending, ino)
	}
}

// OpenFDs returns the number of descriptors opened and not yet closed
// in the current version. Perennial's proofs do not cover resource
// leaks (§9.5 found one by other means); tests can assert on this
// counter instead.
func (fs *Model) OpenFDs() int { return fs.open }

func (fs *Model) thread(t T) *machine.T {
	mt, ok := t.(*machine.T)
	if !ok {
		panic("gfs.Model used with a non-modeled thread")
	}
	if mt.Machine() != fs.m {
		mt.Failf("gfs.Model used from a different machine")
	}
	return mt
}

func (fs *Model) dir(mt *machine.T, op, dir string) map[string]inodeID {
	d, ok := fs.dirs[dir]
	if !ok {
		mt.Failf("fs.%s on unknown directory %q (fixed layout)", op, dir)
	}
	return d
}

func (fs *Model) fd(mt *machine.T, op string, fd FD, wantAppend bool) *modelFD {
	f, ok := fd.(*modelFD)
	if !ok || f == nil {
		mt.Failf("fs.%s on a non-file descriptor", op)
		return nil
	}
	if f.version != fs.m.Version() {
		mt.Failf("fs.%s on file descriptor %q from version %d (lost at crash, now %d)",
			op, f.name, f.version, fs.m.Version())
	}
	if f.closed {
		mt.Failf("fs.%s on closed descriptor %q", op, f.name)
	}
	if f.append_ != wantAppend {
		if wantAppend {
			mt.Failf("fs.%s needs an append-mode descriptor, %q is read-mode", op, f.name)
		} else {
			mt.Failf("fs.%s needs a read-mode descriptor, %q is append-mode", op, f.name)
		}
	}
	return f
}

// NewLock implements System using a modeled machine lock.
func (fs *Model) NewLock(t T, name string) Lock {
	mt := fs.thread(t)
	return &modelLock{l: machine.NewLock(mt, name)}
}

type modelLock struct{ l *machine.Lock }

func (ml *modelLock) Acquire(t T) { ml.l.Acquire(t.(*machine.T)) }
func (ml *modelLock) Release(t T) { ml.l.Release(t.(*machine.T)) }

// Create implements System.
func (fs *Model) Create(t T, dir, name string) (FD, bool) {
	mt := fs.thread(t)
	mt.Step("fs.create")
	d := fs.dir(mt, "create", dir)
	if _, exists := d[name]; exists {
		mt.Tracef("fs.create %s/%s -> exists", dir, name)
		return nil, false
	}
	if !fs.spaceFor(SpaceEntryCost) {
		mt.Tracef("fs.create %s/%s -> ENOSPC (%d used of %d)", dir, name, fs.SpaceUsed(), fs.capacity)
		return nil, false
	}
	ino := fs.next
	fs.next++
	fs.inodes[ino] = nil
	d[name] = ino
	if fs.writeback {
		fs.dirPending[dir] = append(fs.dirPending[dir], dirOp{add: true, name: name, ino: ino})
	}
	fs.open++
	mt.Tracef("fs.create %s/%s -> ino %d", dir, name, ino)
	return &modelFD{version: fs.m.Version(), ino: ino, append_: true, name: dir + "/" + name}, true
}

// Open implements System.
func (fs *Model) Open(t T, dir, name string) (FD, bool) {
	mt := fs.thread(t)
	mt.Step("fs.open")
	d := fs.dir(mt, "open", dir)
	ino, ok := d[name]
	if !ok {
		mt.Tracef("fs.open %s/%s -> absent", dir, name)
		return nil, false
	}
	fs.open++
	mt.Tracef("fs.open %s/%s -> ino %d", dir, name, ino)
	return &modelFD{version: fs.m.Version(), ino: ino, name: dir + "/" + name}, true
}

// Append implements System.
func (fs *Model) Append(t T, fd FD, data []byte) bool {
	mt := fs.thread(t)
	mt.Step("fs.append")
	f := fs.fd(mt, "append", fd, true)
	if len(data) > MaxAppend {
		mt.Failf("fs.append of %d bytes exceeds the %d-byte atomic limit", len(data), MaxAppend)
	}
	if !fs.spaceFor(uint64(len(data))) {
		mt.Tracef("fs.append %s -> ENOSPC (%d used of %d)", f.name, fs.SpaceUsed(), fs.capacity)
		return false
	}
	fs.inodes[f.ino] = append(fs.inodes[f.ino], data...)
	if fs.buffered {
		fs.pending[f.ino] = append(fs.pending[f.ino], len(fs.inodes[f.ino]))
	}
	mt.Tracef("fs.append %s += %d bytes", f.name, len(data))
	return true
}

// Close implements System.
func (fs *Model) Close(t T, fd FD) {
	mt := fs.thread(t)
	mt.Step("fs.close")
	f, ok := fd.(*modelFD)
	if !ok || f == nil {
		mt.Failf("fs.close on a non-file descriptor")
		return
	}
	if f.closed {
		mt.Failf("fs.close on already-closed descriptor %q", f.name)
	}
	f.closed = true
	if f.version == fs.m.Version() {
		fs.open--
	}
}

// ReadAt implements System.
func (fs *Model) ReadAt(t T, fd FD, off, n uint64) []byte {
	mt := fs.thread(t)
	mt.Step("fs.readat")
	f := fs.fd(mt, "readat", fd, false)
	data := fs.inodes[f.ino]
	if off >= uint64(len(data)) {
		return nil
	}
	end := off + n
	if end > uint64(len(data)) {
		end = uint64(len(data))
	}
	out := make([]byte, end-off)
	copy(out, data[off:end])
	return out
}

// Size implements System.
func (fs *Model) Size(t T, fd FD) uint64 {
	mt := fs.thread(t)
	mt.Step("fs.size")
	f, ok := fd.(*modelFD)
	if !ok || f == nil {
		mt.Failf("fs.size on a non-file descriptor")
		return 0
	}
	if f.version != fs.m.Version() || f.closed {
		mt.Failf("fs.size on dead descriptor %q", f.name)
	}
	return uint64(len(fs.inodes[f.ino]))
}

// Sync implements System: the inode's current contents become durable.
// The model's sync never fails (inject failures with Faulty).
func (fs *Model) Sync(t T, fd FD) bool {
	mt := fs.thread(t)
	mt.Step("fs.sync")
	f := fs.fd(mt, "sync", fd, true)
	fs.synced[f.ino] = len(fs.inodes[f.ino])
	delete(fs.pending, f.ino)
	mt.Tracef("fs.sync %s @ %d bytes", f.name, fs.synced[f.ino])
	return true
}

// SyncDir implements System: under writeback the directory's pending
// operations become durable (its volatile view is the durable view from
// here on); under strict or merely buffered durability directory
// operations were never deferred, so this is a no-op. The model's
// directory sync never fails (inject failures with Faulty).
func (fs *Model) SyncDir(t T, dir string) bool {
	mt := fs.thread(t)
	mt.Step("fs.syncdir")
	fs.dir(mt, "syncdir", dir)
	if fs.writeback {
		durable := map[string]inodeID{}
		for name, ino := range fs.dirs[dir] {
			durable[name] = ino
		}
		fs.durableDirs[dir] = durable
		delete(fs.dirPending, dir)
	}
	mt.Tracef("fs.syncdir %s", dir)
	return true
}

// Delete implements System.
func (fs *Model) Delete(t T, dir, name string) bool {
	mt := fs.thread(t)
	mt.Step("fs.delete")
	d := fs.dir(mt, "delete", dir)
	if _, ok := d[name]; !ok {
		mt.Tracef("fs.delete %s/%s -> absent", dir, name)
		return false
	}
	delete(d, name)
	if fs.writeback {
		fs.dirPending[dir] = append(fs.dirPending[dir], dirOp{name: name})
	}
	mt.Tracef("fs.delete %s/%s", dir, name)
	return true
}

// Link implements System.
func (fs *Model) Link(t T, oldDir, oldName, newDir, newName string) bool {
	mt := fs.thread(t)
	mt.Step("fs.link")
	od := fs.dir(mt, "link", oldDir)
	nd := fs.dir(mt, "link", newDir)
	ino, ok := od[oldName]
	if !ok {
		mt.Failf("fs.link source %s/%s does not exist", oldDir, oldName)
		return false
	}
	if _, exists := nd[newName]; exists {
		mt.Tracef("fs.link %s/%s -> %s/%s: target exists", oldDir, oldName, newDir, newName)
		return false
	}
	if !fs.spaceFor(SpaceEntryCost) {
		mt.Tracef("fs.link %s/%s -> %s/%s: ENOSPC (%d used of %d)", oldDir, oldName, newDir, newName, fs.SpaceUsed(), fs.capacity)
		return false
	}
	nd[newName] = ino
	if fs.writeback {
		fs.dirPending[newDir] = append(fs.dirPending[newDir], dirOp{add: true, name: newName, ino: ino})
	}
	mt.Tracef("fs.link %s/%s -> %s/%s (ino %d)", oldDir, oldName, newDir, newName, ino)
	return true
}

// List implements System. The listing is atomic and sorted, keeping the
// model deterministic for the explorer.
func (fs *Model) List(t T, dir string) []string {
	mt := fs.thread(t)
	mt.Step("fs.list")
	d := fs.dir(mt, "list", dir)
	out := make([]string, 0, len(d))
	for name := range d {
		out = append(out, name)
	}
	sort.Strings(out)
	mt.Tracef("fs.list %s -> %d entries", dir, len(out))
	return out
}

// CorruptFile implements Corrupter: it durably mangles the named
// file's bytes in place, modeling silent media corruption. The mutation
// edits the inode (shared by all hard links), not any descriptor, so it
// survives crashes and stays invisible to the System API until an
// integrity layer checks the bytes. Absent and empty files report false.
func (fs *Model) CorruptFile(t T, dir, name string, mode CorruptMode) bool {
	mt := fs.thread(t)
	mt.Step("fs.corrupt")
	d := fs.dir(mt, "corrupt", dir)
	ino, ok := d[name]
	if !ok || len(fs.inodes[ino]) == 0 {
		mt.Tracef("fs.corrupt %s/%s -> nothing to corrupt", dir, name)
		return false
	}
	data := append([]byte{}, fs.inodes[ino]...)
	switch mode {
	case CorruptTruncate:
		data = data[:len(data)-1]
	default: // CorruptFlip
		data[len(data)/2] ^= 0x01
	}
	fs.inodes[ino] = data
	if fs.synced[ino] > len(data) {
		fs.synced[ino] = len(data)
	}
	mt.Tracef("fs.corrupt %s %s/%s (ino %d)", mode, dir, name, ino)
	return true
}

// PeekDir returns dir's entries without a machine step, for harness
// invariant checks between eras.
func (fs *Model) PeekDir(dir string) map[string][]byte {
	out := map[string][]byte{}
	for name, ino := range fs.dirs[dir] {
		out[name] = append([]byte{}, fs.inodes[ino]...)
	}
	return out
}
