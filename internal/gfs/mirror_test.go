package gfs

import (
	"reflect"
	"testing"

	"repro/internal/machine"
)

// mirrorDirs is the data-directory set mirror tests run over; the
// backends additionally need MirrorMetaDir for the generation markers.
var mirrorDirs = []string{"spool", "box"}

func mirrorBackendDirs() []string { return append([]string{MirrorMetaDir}, mirrorDirs...) }

// newOSMirror builds a mirror whose replicas are OS backends behind
// revivable fault layers, returning the mirror and the two fault
// layers (the kill switches).
func newOSMirror(t *testing.T) (*Mirrored, [2]*Faulty) {
	t.Helper()
	f0 := NewFaulty(newOSFS(t, mirrorBackendDirs()), NeverPolicy{})
	f1 := NewFaulty(newOSFS(t, mirrorBackendDirs()), NeverPolicy{})
	return NewMirrored(f0, f1, mirrorDirs), [2]*Faulty{f0, f1}
}

// snapshot reads every (dir, name, contents) triple reachable through
// sys — the observable state used to compare replicas byte-for-byte.
func snapshot(t *testing.T, sys System, th T, dirs []string) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, dir := range dirs {
		for _, name := range sys.List(th, dir) {
			data, ok := readAll(th, sys, dir, name)
			if !ok {
				t.Fatalf("snapshot: read %s/%s failed", dir, name)
			}
			out[dir+"/"+name] = string(data)
		}
	}
	return out
}

// TestMirroredTransparent: with both replicas healthy the mirror is an
// ordinary System — the shared workload completes, reads see the
// writes, and the replicas end byte-identical.
func TestMirroredTransparent(t *testing.T) {
	m, _ := newOSMirror(t)
	th := NewNative(1)
	faultScript(m, th)

	if names := m.List(th, "box"); len(names) != 6 {
		t.Fatalf("workload delivered %v, want 6 files", names)
	}
	s0 := snapshot(t, m.Replica(0), th, mirrorDirs)
	s1 := snapshot(t, m.Replica(1), th, mirrorDirs)
	if !reflect.DeepEqual(s0, s1) {
		t.Fatalf("replicas diverged with no faults:\nr0: %v\nr1: %v", s0, s1)
	}
	if m.Degraded() {
		t.Fatal("mirror degraded with no faults")
	}
	if st := m.Status(); st.Failovers != 0 || !st.Replicas[0].Live || !st.Replicas[1].Live {
		t.Fatalf("status: %+v", st)
	}
}

// TestMirroredReadFailover: when the published replica dies, reads —
// listings, opens, and in-flight descriptors — fail over to the
// survivor without losing data.
func TestMirroredReadFailover(t *testing.T) {
	m, f := newOSMirror(t)
	th := NewNative(1)

	write := func(name, contents string) {
		fd, ok := m.Create(th, "box", name)
		if !ok || !m.Append(th, fd, []byte(contents)) {
			t.Fatalf("write %s failed", name)
		}
		m.Close(th, fd)
	}
	write("a", "alpha")
	write("b", "beta")

	// Descriptor opened while replica 0 was healthy...
	pre, ok := m.Open(th, "box", "a")
	if !ok {
		t.Fatal("open before death failed")
	}

	f[0].FailStopNow("test")

	// ...fails over mid-read when the replica dies under it.
	if got := string(m.ReadAt(th, pre, 0, 64)); got != "alpha" {
		t.Fatalf("mid-read failover returned %q", got)
	}
	m.Close(th, pre)

	if names := m.List(th, "box"); len(names) != 2 {
		t.Fatalf("post-death listing: %v", names)
	}
	fd, ok := m.Open(th, "box", "b")
	if !ok {
		t.Fatal("open after death failed")
	}
	if got := string(m.ReadAt(th, fd, 0, 64)); got != "beta" {
		t.Fatalf("post-death read returned %q", got)
	}
	if m.Size(th, fd) != 4 {
		t.Fatal("post-death size wrong")
	}
	m.Close(th, fd)

	st := m.Status()
	if !st.Degraded || st.Replicas[0].Live || st.Failovers == 0 {
		t.Fatalf("status after death: %+v", st)
	}
}

// TestMirroredWritesSurviveReplicaDeath: writes keep committing on the
// survivor after either replica dies, whichever one it is.
func TestMirroredWritesSurviveReplicaDeath(t *testing.T) {
	for _, victim := range []int{0, 1} {
		m, f := newOSMirror(t)
		th := NewNative(1)

		fd, ok := m.Create(th, "spool", "pre")
		if !ok || !m.Append(th, fd, []byte("pre")) {
			t.Fatal("pre-death write failed")
		}
		m.Close(th, fd)

		f[victim].FailStopNow("test")

		fd, ok = m.Create(th, "spool", "post")
		if !ok || !m.Append(th, fd, []byte("post")) || !m.Sync(th, fd) {
			t.Fatalf("victim %d: post-death write failed", victim)
		}
		m.Close(th, fd)
		if !m.Link(th, "spool", "post", "box", "msg") {
			t.Fatalf("victim %d: post-death link failed", victim)
		}
		if !m.Delete(th, "spool", "post") {
			t.Fatalf("victim %d: post-death delete failed", victim)
		}
		data, ok := readAll(th, m, "box", "msg")
		if !ok || string(data) != "post" {
			t.Fatalf("victim %d: post-death read %q ok=%v", victim, data, ok)
		}
		if !m.Degraded() {
			t.Fatalf("victim %d: not degraded", victim)
		}
		// The survivor recorded the degrade in its generation marker.
		if g := m.generation(th, 1-victim); g != 1 {
			t.Fatalf("victim %d: survivor generation %d, want 1", victim, g)
		}
	}
}

// TestMirroredResilverRestoresRedundancy: replica dies, the survivor
// keeps accepting writes, the replica is replaced (revived stale) and
// resilvered — after which both replicas are byte-identical, the mirror
// reports healthy, and the copied volume is accounted.
func TestMirroredResilverRestoresRedundancy(t *testing.T) {
	for _, victim := range []int{0, 1} {
		m, f := newOSMirror(t)
		th := NewNative(1)

		write := func(name, contents string) {
			fd, ok := m.Create(th, "box", name)
			if !ok || !m.Append(th, fd, []byte(contents)) {
				t.Fatalf("write %s failed", name)
			}
			m.Close(th, fd)
		}
		write("before", "written while redundant")
		f[victim].FailStopNow("test")
		write("after", "written while degraded")

		f[victim].Revive()
		m.ReplaceReplica(victim)
		if !m.Degraded() {
			t.Fatalf("victim %d: replacement cleared degraded before resilver", victim)
		}
		bytes, ok := m.Resilver(th)
		if !ok {
			t.Fatalf("victim %d: resilver failed", victim)
		}
		if bytes == 0 {
			t.Fatalf("victim %d: resilver copied nothing", victim)
		}
		if m.Degraded() {
			t.Fatalf("victim %d: still degraded after resilver: %+v", victim, m.Status())
		}
		all := append([]string{MirrorMetaDir}, mirrorDirs...)
		s0 := snapshot(t, m.Replica(0), th, all)
		s1 := snapshot(t, m.Replica(1), th, all)
		if !reflect.DeepEqual(s0, s1) {
			t.Fatalf("victim %d: replicas differ after resilver:\nr0: %v\nr1: %v", victim, s0, s1)
		}
		if len(s0) == 0 {
			t.Fatalf("victim %d: resilvered store is empty", victim)
		}
	}
}

// TestMirroredGenerationSurvivesReboot: after a replica death, a brand
// new Mirrored over the same backends (all in-memory flags lost, as at
// process reboot) must still pick the survivor as the resilver source —
// the persisted generation marker, not memory, carries that knowledge.
// This is the scenario where choosing wrong silently destroys every
// write acknowledged while degraded.
func TestMirroredGenerationSurvivesReboot(t *testing.T) {
	m, f := newOSMirror(t)
	th := NewNative(1)

	fd, _ := m.Create(th, "box", "old")
	m.Append(th, fd, []byte("both replicas have this"))
	m.Close(th, fd)

	// Replica 0 — the normally-authoritative published replica — dies,
	// and the survivor alone accepts an acknowledged write.
	f[0].FailStopNow("test")
	fd, ok := m.Create(th, "box", "acked")
	if !ok || !m.Append(th, fd, []byte("only the survivor has this")) {
		t.Fatal("degraded write failed")
	}
	m.Close(th, fd)

	// "Reboot": fresh mirror over the same stores, replica 0's fault
	// layer revived (the stale disk is back, contents intact but old).
	f[0].Revive()
	m2 := NewMirrored(f[0], f[1], mirrorDirs)
	bytes, ok := m2.Resilver(th)
	if !ok {
		t.Fatalf("post-reboot resilver failed (copied %d bytes)", bytes)
	}
	data, ok := readAll(th, m2.Replica(0), "box", "acked")
	if !ok || string(data) != "only the survivor has this" {
		t.Fatalf("resilver went backwards: acked write lost (ok=%v, %q)", ok, data)
	}
	all := append([]string{MirrorMetaDir}, mirrorDirs...)
	if !reflect.DeepEqual(snapshot(t, m2.Replica(0), th, all), snapshot(t, m2.Replica(1), th, all)) {
		t.Fatal("replicas differ after post-reboot resilver")
	}
	// And with equal generations and no death, resilver is a no-op copy.
	if n, ok := m2.Resilver(th); !ok || n != 0 {
		t.Fatalf("idempotent re-resilver: bytes=%d ok=%v", n, ok)
	}
}

// TestMirroredSkippedResilverLeavesStaleReads documents the mutation
// the explore scenarios must catch: replacing a replica WITHOUT
// resilvering serves stale data — the acknowledged degraded-era write
// is invisible.
func TestMirroredSkippedResilverLeavesStaleReads(t *testing.T) {
	m, f := newOSMirror(t)
	th := NewNative(1)

	f[0].FailStopNow("test")
	fd, ok := m.Create(th, "box", "acked")
	if !ok || !m.Append(th, fd, []byte("payload")) {
		t.Fatal("degraded write failed")
	}
	m.Close(th, fd)

	f[0].Revive()
	m.ReplaceReplica(0) // recovery forgot to resilver
	if _, ok := m.Open(th, "box", "acked"); ok {
		t.Fatal("stale replica 0 somehow serves the degraded-era write")
	}
	if !m.Degraded() {
		t.Fatal("stale replica must keep the mirror degraded until resilver")
	}
}

// TestMirroredModelFDHygiene runs the mirror over two modeled file
// systems on one machine — the configuration the explore scenarios use
// — and checks the workload completes with no leaked descriptors on
// either replica and byte-identical replica state.
func TestMirroredModelFDHygiene(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 100000})
	r0 := NewModel(mm, mirrorBackendDirs())
	r1 := NewModel(mm, mirrorBackendDirs())
	m := NewMirrored(
		NewFaulty(r0, NeverPolicy{}),
		NewFaulty(r1, NeverPolicy{}),
		mirrorDirs,
	)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		faultScript(m, mt)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if n0, n1 := r0.OpenFDs(), r1.OpenFDs(); n0 != 0 || n1 != 0 {
		t.Fatalf("leaked fds: r0=%d r1=%d", n0, n1)
	}
	for _, dir := range mirrorDirs {
		d0, d1 := r0.PeekDir(dir), r1.PeekDir(dir)
		if len(d0) != len(d1) {
			t.Fatalf("%s: replica entry counts differ: %d vs %d", dir, len(d0), len(d1))
		}
		for name, want := range d0 {
			if string(d1[name]) != string(want) {
				t.Fatalf("%s/%s differs across replicas", dir, name)
			}
		}
	}
}

// TestMirroredBlankReplacementNeverSource: a disk that dies while the
// mirror is OFF gets no generation bump — no survivor was running to
// witness the death — so when the operator installs a blank replacement
// and reboots, the generations still tie at zero. The bare tie rule
// would pick replica 0, and with replica 0 the blank replacement, the
// resilver would copy nothing over everything. The blank exception must
// pick the survivor instead, persist its authority as a generation bump
// (so a crash mid-copy re-picks it once the replacement is partially
// populated and no longer blank), and end with byte-identical replicas.
func TestMirroredBlankReplacementNeverSource(t *testing.T) {
	m, _ := newOSMirror(t)
	th := NewNative(1)
	fd, ok := m.Create(th, "box", "acked")
	if !ok || !m.Append(th, fd, []byte("survivor payload")) {
		t.Fatal("write failed")
	}
	m.Close(th, fd)

	// Power off; replica 0's disk dies cold; a blank replacement is
	// installed; reboot = a fresh mirror over (blank, survivor).
	blank0 := NewFaulty(newOSFS(t, mirrorBackendDirs()), NeverPolicy{})
	m2 := NewMirrored(blank0, m.Replica(1), mirrorDirs)
	n, ok := m2.Resilver(th)
	if !ok || n == 0 {
		t.Fatalf("resilver onto blank replacement: bytes=%d ok=%v", n, ok)
	}
	data, ok := readAll(th, m2.Replica(0), "box", "acked")
	if !ok || string(data) != "survivor payload" {
		t.Fatalf("blank replacement wiped the survivor: ok=%v, %q", ok, data)
	}
	if m2.Degraded() {
		t.Fatalf("still degraded after resilver: %+v", m2.Status())
	}
	all := append([]string{MirrorMetaDir}, mirrorDirs...)
	if !reflect.DeepEqual(snapshot(t, m2.Replica(0), th, all), snapshot(t, m2.Replica(1), th, all)) {
		t.Fatal("replicas differ after blank-replacement resilver")
	}
	// The survivor's authority was persisted BEFORE the copy started: a
	// crash mid-copy reboots into a generation inequality that re-picks
	// the survivor, not a blank-check that no longer fires.
	if g := m2.generation(th, 1); g == 0 {
		t.Fatal("survivor authority not persisted as a generation marker")
	}

	// Symmetric case — blank replacement at position 1 — is covered by
	// the bare tie rule (replica 0 is the survivor); confirm no
	// regression from the exception.
	blank1 := NewFaulty(newOSFS(t, mirrorBackendDirs()), NeverPolicy{})
	m3 := NewMirrored(m2.Replica(0), blank1, mirrorDirs)
	if n, ok := m3.Resilver(th); !ok || n == 0 {
		t.Fatalf("resilver onto blank replica 1: bytes=%d ok=%v", n, ok)
	}
	data, ok = readAll(th, m3.Replica(1), "box", "acked")
	if !ok || string(data) != "survivor payload" {
		t.Fatalf("replica 1 replacement not populated: ok=%v, %q", ok, data)
	}
}

// TestMirroredUnwrapHelpers: AsResilverer and AsFailStopper must see
// through Observed/Faulty stacking, and single-backend stacks must
// resolve to nil (that is how non-mirrored recovery skips resilver).
func TestMirroredUnwrapHelpers(t *testing.T) {
	m, f := newOSMirror(t)
	wrapped := NewObserved(m, nil)
	if AsResilverer(wrapped) != Resilverer(m) {
		t.Fatal("AsResilverer did not unwrap Observed(Mirrored)")
	}
	if AsFailStopper(NewObserved(f[0], nil)) != FailStopper(f[0]) {
		t.Fatal("AsFailStopper did not unwrap Observed(Faulty)")
	}
	single := NewObserved(NewFaulty(newOSFS(t, errorPathDirs), NeverPolicy{}), nil)
	if AsResilverer(single) != nil {
		t.Fatal("single-backend stack reports a resilverer")
	}
}
