package gfs

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/trace"
)

// This file is the gfs-level lift of the paper's replicated disk
// (Figure 1 / Table 3): two whole file-system backends mirrored behind
// the System interface, a permanent fail-stop fault turning the mirror
// into tracked degraded mode, reads failing over to the survivor, and a
// recovery-time Resilver that copies the authoritative replica onto a
// replacement to restore redundancy — the gfs analog of the replicated
// disk's recovery repair.
//
// The protocol keeps one invariant instead of cross-replica locks
// (which would wedge the cooperative model scheduler if held across
// machine steps):
//
//	every directory entry of replica 0 also exists in replica 1,
//	and replica 0's file contents are a prefix of replica 1's.
//
// Insertions (Create, Link, Append) therefore go to replica 1 FIRST and
// replica 0 second; removals (Delete) go to replica 0 first and
// replica 1 second; reads serve from replica 0, the published view.
// A crash or fault between the two legs leaves replica 1 ahead — an
// entry that exists but was never published, exactly the "operation in
// flight at the crash" state the spec already allows — never a
// published entry missing its backup. When the second leg of an insert
// fails transiently, the first leg is undone (close + delete); when the
// second leg of a removal fails transiently, the removal has already
// been published, so the leg is retried and a replica that persistently
// cannot follow is kicked from the mirror, RAID-style.
//
// Which replica survived a death is persisted as a generation marker:
// a dedicated MirrorMetaDir directory whose FILE COUNT is the
// generation (the API is write-once — no appends to existing files —
// so "bump" means creating one more empty file). The survivor bumps its
// generation the moment the mirror degrades; at recovery, the replica
// with the higher generation is the resilver source, so a reboot that
// lost all in-memory state still copies the survivor onto the stale
// replica and never backwards. Resilver copies MirrorMetaDir LAST: a
// crash mid-resilver leaves the generations unequal and the next
// recovery re-runs the (idempotent) copy.

// MirrorMetaDir is the mirror's bookkeeping directory. Callers must
// include it in every replica's directory set (NewOS creation list,
// NewModel dirs) alongside the data directories handed to NewMirrored.
const MirrorMetaDir = ".mirror"

// secondLegRetries bounds how often the second leg of a published
// removal is retried before the replica is kicked as unable to follow.
const secondLegRetries = 3

// FailStopper is implemented by layers that can latch permanently dead
// (gfs.Faulty). Mirrored uses it to tell "replica died" apart from
// ordinary operation failures such as create-exists or open-absent.
type FailStopper interface {
	FailStopped() bool
}

// Resilverer is implemented by layers that can restore redundancy
// during recovery. mailboat.Recover finds it with AsResilverer and runs
// it before anything else touches the store.
type Resilverer interface {
	// Resilver copies the authoritative replica onto the other and
	// returns the bytes written and whether full redundancy was
	// restored. It must only run quiescent (single-threaded recovery).
	Resilver(t T) (resilverBytes uint64, ok bool)
}

type innerer interface{ Inner() System }

// AsFailStopper unwraps Inner() chains (Observed, Faulty, …) until it
// finds a FailStopper; nil if the stack has none.
func AsFailStopper(sys System) FailStopper {
	for sys != nil {
		if fs, ok := sys.(FailStopper); ok {
			return fs
		}
		iw, ok := sys.(innerer)
		if !ok {
			return nil
		}
		sys = iw.Inner()
	}
	return nil
}

// AsResilverer unwraps Inner() chains until it finds a Resilverer
// (in practice the Mirrored under an Observed); nil if the stack has
// none — which is how single-backend stacks skip resilvering entirely.
func AsResilverer(sys System) Resilverer {
	for sys != nil {
		if r, ok := sys.(Resilverer); ok {
			return r
		}
		iw, ok := sys.(innerer)
		if !ok {
			return nil
		}
		sys = iw.Inner()
	}
	return nil
}

// ReplicaStatus is one replica's health in a MirrorStatus.
type ReplicaStatus struct {
	// Live is false while the replica is latched out of the mirror
	// (fail-stopped or kicked).
	Live bool `json:"live"`
	// Stale is true from ReplaceReplica until a successful Resilver:
	// the replica serves again but its contents are not yet trusted.
	Stale bool `json:"stale"`
}

// MirrorStatus is the mirror's health snapshot, JSON-shaped for the
// admin /healthz endpoint.
type MirrorStatus struct {
	Degraded    bool             `json:"degraded"`
	Resilvering bool             `json:"resilvering"`
	Failovers   uint64           `json:"failovers"`
	Replicas    [2]ReplicaStatus `json:"replicas"`
}

// MirrorMetrics is the mirror's slice of the observability surface.
// All fields may be nil (metrics disabled); no method reads the clock
// unless metrics are enabled, keeping checker executions syscall-free.
type MirrorMetrics struct {
	// Failovers counts reads re-served from the survivor after the
	// primary read replica died mid-operation.
	Failovers *obs.Counter
	// Degraded is 1 while the mirror is not fully redundant (a replica
	// failed, or a replacement has not been resilvered yet).
	Degraded *obs.Gauge
	// DegradedSeconds observes the length of each degraded interval,
	// from first failure to the resilver that restores redundancy; its
	// sum is the total degraded seconds.
	DegradedSeconds *obs.Histogram
	// ResilverBytes counts bytes written to the target replica by
	// resilver runs; ResilverRuns counts completed runs.
	ResilverBytes *obs.Counter
	ResilverRuns  *obs.Counter
	// ReplicaFailed counts permanent replica failures by replica index.
	ReplicaFailed [2]*obs.Counter
}

// NewMirrorMetrics registers the mirror metric families in r.
func NewMirrorMetrics(r *obs.Registry) *MirrorMetrics {
	m := &MirrorMetrics{
		Failovers: r.Counter("gfs_mirror_failovers_total",
			"Reads failed over to the surviving replica."),
		Degraded: r.Gauge("gfs_mirror_degraded",
			"1 while the mirror is not fully redundant."),
		DegradedSeconds: r.Histogram("gfs_mirror_degraded_seconds",
			"Length of degraded intervals (failure to resilver).",
			[]float64{0.001, 0.01, 0.1, 1, 10, 60, 600, 3600}),
		ResilverBytes: r.Counter("gfs_mirror_resilver_bytes_total",
			"Bytes copied onto the target replica by resilver runs."),
		ResilverRuns: r.Counter("gfs_mirror_resilver_runs_total",
			"Completed resilver runs."),
	}
	for i := 0; i < 2; i++ {
		m.ReplicaFailed[i] = r.Counter("gfs_mirror_replica_failed_total",
			"Permanent replica failures by replica index.",
			"replica", fmt.Sprintf("%d", i))
	}
	return m
}

// replicaFailed records one replica loss (nil-receiver-safe, like the
// rest of the obs surface).
func (mm *MirrorMetrics) replicaFailed(i int) {
	if mm == nil {
		return
	}
	mm.ReplicaFailed[i].Inc()
	mm.Degraded.Set(1)
}

// failover records one read served from the survivor.
func (mm *MirrorMetrics) failover() {
	if mm == nil {
		return
	}
	mm.Failovers.Inc()
}

// resilverDone records a successful resilver and closes the degraded
// interval.
func (mm *MirrorMetrics) resilverDone(bytes uint64, degradedFor time.Duration) {
	if mm == nil {
		return
	}
	mm.Degraded.Set(0)
	mm.ResilverRuns.Inc()
	mm.ResilverBytes.Add(bytes)
	if degradedFor > 0 {
		mm.DegradedSeconds.ObserveDuration(degradedFor)
	}
}

// Mirrored is a System middleware mirroring every operation over two
// replica backends (any mix of Model, OS, and Faulty stacks). It is
// safe for concurrent use when its replicas are; per-FD state follows
// the usual file-descriptor rule of one thread per descriptor.
type Mirrored struct {
	rep  [2]System
	dirs []string

	// Metrics, when non-nil, records failovers, degraded intervals and
	// resilver volume (gfs_mirror_*).
	Metrics *MirrorMetrics

	// Integrity, when non-nil, records files healed from the peer
	// replica after checksum failures (gfs_integrity_*).
	Integrity *IntegrityMetrics

	// ResilverNoVerify skips the resilver's source integrity check, so a
	// rotten survivor is copied verbatim over a good replacement. It
	// exists only as a seeded bug for the checker
	// (mb/integrity-bug:no-verify-resilver); never set it in production.
	ResilverNoVerify bool

	// mu guards only the flag words below; it is never held across a
	// replica operation, so the cooperative model scheduler can always
	// make progress.
	mu          sync.Mutex
	failed      [2]bool
	stale       [2]bool
	resilvering bool
	failovers   uint64
	degradedAt  time.Time // set only when Metrics != nil
}

// NewMirrored mirrors the two replicas over the given data directories
// (the set Resilver walks — pass the same list the backends were built
// with, MirrorMetaDir excluded; the mirror adds it itself).
func NewMirrored(r0, r1 System, dirs []string) *Mirrored {
	return &Mirrored{rep: [2]System{r0, r1}, dirs: dirs}
}

// Replica returns replica i's backend stack (for tests and drills).
func (m *Mirrored) Replica(i int) System { return m.rep[i] }

// Status returns the mirror's health snapshot.
func (m *Mirrored) Status() MirrorStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MirrorStatus{
		Degraded:    m.failed[0] || m.failed[1] || m.stale[0] || m.stale[1],
		Resilvering: m.resilvering,
		Failovers:   m.failovers,
		Replicas: [2]ReplicaStatus{
			{Live: !m.failed[0], Stale: m.stale[0]},
			{Live: !m.failed[1], Stale: m.stale[1]},
		},
	}
}

// Degraded reports whether the mirror is not fully redundant.
func (m *Mirrored) Degraded() bool {
	s := m.Status()
	return s.Degraded
}

// ReplaceReplica declares replica i replaced: live again immediately,
// with whatever (stale) state its backend now holds, and flagged stale
// until a Resilver copies the survivor over it. Callers revive the
// backend first (Faulty.Revive, or a fresh directory tree) and must be
// quiescent — replacement is a recovery-time action. Marking the
// replica live BEFORE resilvering is deliberate: recovery runs Resilver
// before any reads, and a recovery procedure that forgets to is exactly
// the mutation the explore scenarios must catch (stale reads surface as
// refinement violations instead of hiding behind a dead-replica latch).
func (m *Mirrored) ReplaceReplica(i int) {
	m.mu.Lock()
	m.failed[i] = false
	m.stale[i] = true
	m.mu.Unlock()
}

func (m *Mirrored) alive(i int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.failed[i]
}

// readReplica picks the replica serving reads: the published replica 0
// while it lives, the survivor otherwise.
func (m *Mirrored) readReplica() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.failed[0] {
		return 0
	}
	return 1
}

// noteDead checks whether replica i's stack is latched fail-stopped
// after one of its operations failed, marking it out of the mirror on
// first detection. It reports whether the replica is (now) failed, so
// callers can tell "replica died, reroute" from "the operation itself
// failed".
func (m *Mirrored) noteDead(t T, i int) bool {
	if fs := AsFailStopper(m.rep[i]); fs == nil || !fs.FailStopped() {
		return !m.alive(i)
	}
	m.markFailed(t, i, "fail-stop")
	return true
}

// markFailed latches replica i out of the mirror and, on first
// detection, bumps the survivor's generation so the authoritative
// replica is known across crashes and reboots.
func (m *Mirrored) markFailed(t T, i int, why string) {
	m.mu.Lock()
	if m.failed[i] {
		m.mu.Unlock()
		return
	}
	m.failed[i] = true
	if m.Metrics != nil && m.degradedAt.IsZero() {
		m.degradedAt = time.Now()
	}
	m.mu.Unlock()

	if mt, ok := t.(*machine.T); ok {
		mt.Tracef("mirror: replica %d failed (%s); degraded", i, why)
	}
	m.Metrics.replicaFailed(i)
	m.bumpGeneration(t, 1-i)
}

// generation returns replica i's generation: the file count of its
// MirrorMetaDir (zero for a dead or empty replica).
func (m *Mirrored) generation(t T, i int) int {
	return len(m.rep[i].List(t, MirrorMetaDir))
}

// bumpGeneration adds one marker file to replica j's MirrorMetaDir —
// the write-once API's increment. Best-effort: if the survivor cannot
// record the bump (itself dying), resilver source selection falls back
// to the in-memory flags.
func (m *Mirrored) bumpGeneration(t T, j int) {
	n := m.generation(t, j)
	for k := 0; k < 8; k++ {
		fd, ok := m.rep[j].Create(t, MirrorMetaDir, fmt.Sprintf("g%d", n+k))
		if !ok {
			continue
		}
		m.rep[j].Sync(t, fd)
		m.rep[j].Close(t, fd)
		return
	}
}

// rewriteMarker regenerates one generation marker in place on replica
// j. A marker's stored bytes are fully determined by its own name (the
// envelope has an empty payload and the marker's path is its birth
// path), so unlike a data file a rotten marker can be rebuilt from
// nothing — both replicas' copies of the same marker are always
// byte-identical by construction.
func (m *Mirrored) rewriteMarker(t T, j int, name string) bool {
	m.rep[j].Delete(t, MirrorMetaDir, name)
	fd, ok := m.rep[j].Create(t, MirrorMetaDir, name)
	if !ok {
		return false
	}
	ok = m.rep[j].Sync(t, fd)
	m.rep[j].Close(t, fd)
	if ok {
		if mt, isModel := t.(*machine.T); isModel {
			mt.Tracef("mirror: regenerated rotten marker %s/%s on replica %d", MirrorMetaDir, name, j)
		}
		m.Integrity.healed()
	}
	return ok
}

func (m *Mirrored) countFailover(t T) {
	m.mu.Lock()
	m.failovers++
	m.mu.Unlock()
	if mt, ok := t.(*machine.T); ok {
		mt.Tracef("mirror: read failed over to survivor")
	}
	m.Metrics.failover()
	trace.Event(t, "mirror: read failed over to survivor")
}

// mirrorFD is the mirror's descriptor. Append-mode descriptors carry
// one leg per replica that was alive at creation; read-mode descriptors
// serve from one replica and remember (dir, name) so a mid-read death
// can fail over by reopening on the survivor.
type mirrorFD struct {
	w         [2]FD // append-mode legs; nil where the replica had none
	reading   bool
	rep       int
	rfd       FD
	dir, name string
}

// NewLock implements System. Locks are volatile shared memory, not
// replicated state; replica 0's allocator serves them (Faulty never
// gates NewLock, so a dead replica 0 still allocates).
func (m *Mirrored) NewLock(t T, name string) Lock { return m.rep[0].NewLock(t, name) }

// Create implements System: insert-ordered, replica 1 first. A mixed
// result with both replicas alive means the second leg transiently
// failed (the ordering invariant excludes honest disagreement), so the
// first leg is undone and the create reports failure.
func (m *Mirrored) Create(t T, dir, name string) (FD, bool) {
	if !m.alive(1) {
		fd, ok := m.rep[0].Create(t, dir, name)
		if !ok {
			m.noteDead(t, 0)
			return nil, false
		}
		return &mirrorFD{w: [2]FD{fd, nil}}, true
	}
	fd1, ok1 := m.rep[1].Create(t, dir, name)
	if !ok1 {
		if m.noteDead(t, 1) {
			return m.Create(t, dir, name) // reroute to the survivor
		}
		return nil, false // exists (or replica 1 transient): nothing touched
	}
	if !m.alive(0) {
		return &mirrorFD{w: [2]FD{nil, fd1}}, true
	}
	fd0, ok0 := m.rep[0].Create(t, dir, name)
	if !ok0 {
		if m.noteDead(t, 0) {
			return &mirrorFD{w: [2]FD{nil, fd1}}, true
		}
		// Replica 0 alive but refused: undo the replica 1 leg so the
		// failed create leaves no orphan (and no burnt name).
		m.rep[1].Close(t, fd1)
		m.rep[1].Delete(t, dir, name)
		return nil, false
	}
	return &mirrorFD{w: [2]FD{fd0, fd1}}, true
}

// Open implements System: serves from the published replica, failing
// over to the survivor when the read replica turns out dead — or when
// the read replica's copy fails its checksum. In the latter case the
// mirror first tries to heal the rotten copy from the peer's verified
// copy (see healFile) and re-serve locally; if healing is impossible
// the read still fails over to the peer's good copy, so a single
// rotten replica never surfaces as data loss.
func (m *Mirrored) Open(t T, dir, name string) (FD, bool) {
	i := m.readReplica()
	fd, ok := m.rep[i].Open(t, dir, name)
	if ok {
		return &mirrorFD{reading: true, rep: i, rfd: fd, dir: dir, name: name}, true
	}
	if m.noteDead(t, i) {
		if !m.alive(1 - i) {
			return nil, false
		}
		m.countFailover(t)
		i = 1 - i
		if fd, ok = m.rep[i].Open(t, dir, name); !ok {
			return nil, false
		}
		return &mirrorFD{reading: true, rep: i, rfd: fd, dir: dir, name: name}, true
	}
	// The replica is alive but refused the open. Absent is the common,
	// honest case (a raced delete); a corrupt envelope is the one this
	// layer exists for: self-heal from the peer, else serve the peer.
	if m.alive(1-i) && m.verdict(t, i, dir, name) == VerdictCorrupt {
		if m.healFile(t, dir, name, i) {
			if fd, ok = m.rep[i].Open(t, dir, name); ok {
				return &mirrorFD{reading: true, rep: i, rfd: fd, dir: dir, name: name}, true
			}
		}
		// Heal unavailable (or the healed copy still refuses): the
		// peer's copy may still be good — serve it directly.
		if fd, ok = m.rep[1-i].Open(t, dir, name); ok {
			m.countFailover(t)
			return &mirrorFD{reading: true, rep: 1 - i, rfd: fd, dir: dir, name: name}, true
		}
	}
	return nil, false
}

// verdict asks replica i's checksum layer how dir/name looks; without
// an envelope layer there is nothing to verify and nothing to heal.
func (m *Mirrored) verdict(t T, i int, dir, name string) Verdict {
	c := AsChecksummed(m.rep[i])
	if c == nil {
		return VerdictAbsent
	}
	return c.VerifyFile(t, dir, name)
}

// raw returns replica i's stack below the checksum envelope — the view
// in which file bytes are the stored envelope frames — or the replica
// itself when it has no envelope layer. Heal and resilver copies run
// at this level so both replicas stay byte-identical on disk and a
// corrupt source's bytes can actually be read (the envelope layer
// refuses to decode them).
func (m *Mirrored) raw(i int) System {
	if c := AsChecksummed(m.rep[i]); c != nil {
		return c.Inner()
	}
	return m.rep[i]
}

// healFile rewrites replica bad's rotten copy of dir/name from the
// peer's copy, after verifying that the EXACT peer bytes it will copy
// are sealed and sound (verifying in a separate read would race the
// fault layer: a corruption injected at the copy's own read would slip
// past the earlier verdict). The copy itself is not atomic (delete +
// create + appends), so the protocol persists authority FIRST: the good
// replica's generation is bumped before the rotten copy is touched,
// making the good replica the resilver source should a crash land
// mid-heal — otherwise the half-healed (deleted) copy on the published
// replica would read as "unpublished orphan on the peer" and the next
// resilver would delete the only good copy. After a successful copy the
// healed replica's generation is bumped too, restoring equal marker
// counts (equal generations assert "replicas identical").
func (m *Mirrored) healFile(t T, dir, name string, bad int) bool {
	good := 1 - bad
	if !m.alive(good) || !m.alive(bad) {
		return false
	}
	if AsChecksummed(m.rep[good]) == nil {
		return false
	}
	data, ok := readAll(t, m.raw(good), dir, name)
	if !ok || m.noteDead(t, good) {
		return false
	}
	// Unsealed is heal-worthy: it is the honest crash artifact of an
	// abandoned write (a torn spool file, say), and the peer's unsealed
	// bytes are the best surviving version. Only a peer whose own copy
	// fails verification outright is useless as a heal source.
	if v := VerifyEnvelope(data); v != VerdictOK && v != VerdictUnsealed {
		return false
	}
	m.bumpGeneration(t, good)
	if _, ok := copyFile(t, m.raw(bad), dir, name, data); !ok {
		m.noteDead(t, bad)
		return false
	}
	m.bumpGeneration(t, bad)
	if mt, isModel := t.(*machine.T); isModel {
		mt.Tracef("mirror: healed %s/%s on replica %d from replica %d", dir, name, bad, good)
	}
	m.Integrity.healed()
	trace.Event(t, "mirror: healed %s/%s on replica %d from replica %d", dir, name, bad, good)
	return true
}

// Append implements System: insert-ordered like Create, so replica 0's
// contents stay a prefix of replica 1's. A transient second-leg failure
// reports false — the caller abandons the file, which erases the
// divergence; a dead second leg leaves the survivor's write standing.
func (m *Mirrored) Append(t T, fd FD, data []byte) bool {
	mf := fd.(*mirrorFD)
	wrote1 := false
	if mf.w[1] != nil && m.alive(1) {
		if m.rep[1].Append(t, mf.w[1], data) {
			wrote1 = true
		} else if !m.noteDead(t, 1) {
			return false // replica 1 transient: replica 0 untouched
		}
	}
	if mf.w[0] != nil && m.alive(0) {
		if m.rep[0].Append(t, mf.w[0], data) {
			return true
		}
		if m.noteDead(t, 0) {
			return wrote1
		}
		return false // replica 0 transient: not published, caller abandons
	}
	return wrote1
}

// Close implements System. Legs on dead replicas are still closed —
// Faulty passes Close through its latch precisely so descriptors never
// leak on a dead backend.
func (m *Mirrored) Close(t T, fd FD) {
	mf := fd.(*mirrorFD)
	if mf.reading {
		m.rep[mf.rep].Close(t, mf.rfd)
		return
	}
	for i := 0; i < 2; i++ {
		if mf.w[i] != nil {
			m.rep[i].Close(t, mf.w[i])
		}
	}
}

// failoverFD moves a read descriptor to the survivor after its replica
// died mid-use: close the dead leg, reopen (dir, name) on the other
// side. Reports whether the descriptor now serves from a live replica.
func (m *Mirrored) failoverFD(t T, mf *mirrorFD) bool {
	other := 1 - mf.rep
	if !m.alive(other) {
		return false
	}
	m.rep[mf.rep].Close(t, mf.rfd)
	nfd, ok := m.rep[other].Open(t, mf.dir, mf.name)
	if !ok {
		mf.rfd = nil
		return false
	}
	m.countFailover(t)
	mf.rep, mf.rfd = other, nfd
	return true
}

// ReadAt implements System. ReadAt is stateless in the offset, so a
// mid-read failover just re-issues the same (off, n) on the survivor.
func (m *Mirrored) ReadAt(t T, fd FD, off, n uint64) []byte {
	mf := fd.(*mirrorFD)
	if !mf.reading {
		// Append-mode reads are unusual but legal; serve a live leg.
		for _, i := range []int{0, 1} {
			if mf.w[i] != nil && m.alive(i) {
				return m.rep[i].ReadAt(t, mf.w[i], off, n)
			}
		}
		return nil
	}
	if mf.rfd == nil {
		return nil
	}
	data := m.rep[mf.rep].ReadAt(t, mf.rfd, off, n)
	if len(data) == 0 && m.noteDead(t, mf.rep) && m.failoverFD(t, mf) {
		data = m.rep[mf.rep].ReadAt(t, mf.rfd, off, n)
	}
	return data
}

// Size implements System.
func (m *Mirrored) Size(t T, fd FD) uint64 {
	mf := fd.(*mirrorFD)
	if !mf.reading {
		for _, i := range []int{0, 1} {
			if mf.w[i] != nil && m.alive(i) {
				return m.rep[i].Size(t, mf.w[i])
			}
		}
		return 0
	}
	if mf.rfd == nil {
		return 0
	}
	size := m.rep[mf.rep].Size(t, mf.rfd)
	if size == 0 && m.noteDead(t, mf.rep) && m.failoverFD(t, mf) {
		size = m.rep[mf.rep].Size(t, mf.rfd)
	}
	return size
}

// Sync implements System: true only when every live leg made the data
// durable (a dead replica's durability is the resilver's problem).
func (m *Mirrored) Sync(t T, fd FD) bool {
	mf := fd.(*mirrorFD)
	if mf.reading {
		return m.rep[mf.rep].Sync(t, mf.rfd)
	}
	synced := false
	for _, i := range []int{1, 0} {
		if mf.w[i] == nil || !m.alive(i) {
			continue
		}
		if m.rep[i].Sync(t, mf.w[i]) {
			synced = true
		} else if !m.noteDead(t, i) {
			return false
		}
	}
	return synced
}

// SyncDir implements System: like Sync, true only when every live leg
// made the directory's entries durable (a dead replica's durability is
// the resilver's problem).
func (m *Mirrored) SyncDir(t T, dir string) bool {
	synced := false
	for _, i := range []int{1, 0} {
		if !m.alive(i) {
			continue
		}
		if m.rep[i].SyncDir(t, dir) {
			synced = true
		} else if !m.noteDead(t, i) {
			return false
		}
	}
	return synced
}

// Delete implements System: remove-ordered, replica 0 first. Once the
// published replica has removed the entry the operation is committed,
// so a replica 1 that cannot follow (and is not dead) is retried and
// then kicked — the mirror drops the replica rather than un-publish a
// removal it cannot undo.
func (m *Mirrored) Delete(t T, dir, name string) bool {
	if !m.alive(0) {
		ok := m.rep[1].Delete(t, dir, name)
		if !ok {
			m.noteDead(t, 1)
		}
		return ok
	}
	if !m.rep[0].Delete(t, dir, name) {
		if m.noteDead(t, 0) {
			return m.Delete(t, dir, name) // reroute to the survivor
		}
		return false // absent (or replica 0 transient): replica 1 untouched
	}
	if !m.alive(1) {
		return true
	}
	for attempt := 0; attempt < secondLegRetries; attempt++ {
		if m.rep[1].Delete(t, dir, name) {
			return true
		}
		if m.noteDead(t, 1) {
			return true
		}
	}
	m.markFailed(t, 1, "kicked: cannot complete delete "+dir+"/"+name)
	return true
}

// Link implements System: insert-ordered like Create, with the same
// undo of the replica 1 leg when replica 0 transiently refuses.
func (m *Mirrored) Link(t T, oldDir, oldName, newDir, newName string) bool {
	if !m.alive(1) {
		ok := m.rep[0].Link(t, oldDir, oldName, newDir, newName)
		if !ok {
			m.noteDead(t, 0)
		}
		return ok
	}
	if !m.rep[1].Link(t, oldDir, oldName, newDir, newName) {
		if m.noteDead(t, 1) {
			return m.Link(t, oldDir, oldName, newDir, newName)
		}
		return false
	}
	if !m.alive(0) {
		return true
	}
	if m.rep[0].Link(t, oldDir, oldName, newDir, newName) {
		return true
	}
	if m.noteDead(t, 0) {
		return true
	}
	m.rep[1].Delete(t, newDir, newName) // undo: leave no orphan
	return false
}

// List implements System, from the published replica with failover.
func (m *Mirrored) List(t T, dir string) []string {
	i := m.readReplica()
	names := m.rep[i].List(t, dir)
	if names == nil && m.noteDead(t, i) && m.alive(1-i) {
		m.countFailover(t)
		names = m.rep[1-i].List(t, dir)
	}
	return names
}

// resilverSource picks the authoritative replica: a failed or stale
// replica can never be the source; with both trusted, the higher
// persisted generation wins (the survivor of a pre-reboot death), and
// a tie normally means no death happened, so the published replica 0 is
// the truth (replica 1 may hold unpublished crash orphans, which
// copying replica 0 over it un-does — the "operation did not happen"
// outcome the spec allows for an operation in flight at the crash).
//
// The one exception to the tie rule: a replica that is completely
// blank — no data files and no generation markers — while its peer is
// not. That is a factory-fresh replacement for a disk that died while
// the mirror was OFF: no running survivor was around to witness the
// death and bump its own generation, so the generations still tie. A
// blank replica must never be the copy source (it would wipe the
// survivor), so the survivor's authority is persisted with a
// generation bump first — a crash mid-resilver then re-picks it by
// generation even once the replacement is partially populated and no
// longer blank. The replacement is flagged stale so the mirror reports
// degraded until the copy completes.
func (m *Mirrored) resilverSource(t T) (src int, ok bool) {
	m.mu.Lock()
	failed, stale := m.failed, m.stale
	m.mu.Unlock()
	switch {
	case failed[0] || stale[0]:
		src = 1
	case failed[1] || stale[1]:
		src = 0
	case m.generation(t, 1) > m.generation(t, 0):
		src = 1
	case m.blank(t, 0) && !m.blank(t, 1):
		m.bumpGeneration(t, 1)
		m.mu.Lock()
		m.stale[0] = true
		m.mu.Unlock()
		src = 1
	default:
		src = 0
	}
	if failed[src] || stale[src] {
		return 0, false // no trusted replica to copy from
	}
	return src, true
}

// blank reports whether replica i holds no files at all — no data and
// no generation markers — as a factory-fresh replacement disk would.
// (A fail-stopped replica also lists as blank; resilverSource's callers
// tolerate that, since a copy toward or from a dead replica fails
// before mutating anything.)
func (m *Mirrored) blank(t T, i int) bool {
	if len(m.rep[i].List(t, MirrorMetaDir)) > 0 {
		return false
	}
	for _, dir := range m.dirs {
		if len(m.rep[i].List(t, dir)) > 0 {
			return false
		}
	}
	return true
}

// readAll reads a whole file from one replica in MaxAppend chunks.
func readAll(t T, sys System, dir, name string) ([]byte, bool) {
	fd, ok := sys.Open(t, dir, name)
	if !ok {
		return nil, false
	}
	defer sys.Close(t, fd)
	size := sys.Size(t, fd)
	buf := make([]byte, 0, size)
	for uint64(len(buf)) < size {
		chunk := sys.ReadAt(t, fd, uint64(len(buf)), MaxAppend)
		if len(chunk) == 0 {
			return nil, false
		}
		buf = append(buf, chunk...)
	}
	return buf, true
}

// copyFile rewrites dir/name on dst as an exact copy of data (the API
// is write-once, so "rewrite" is delete + create + chunked appends).
func copyFile(t T, dst System, dir, name string, data []byte) (uint64, bool) {
	dst.Delete(t, dir, name) // absent is fine
	fd, ok := dst.Create(t, dir, name)
	if !ok {
		return 0, false
	}
	var written uint64
	for off := 0; off < len(data); off += MaxAppend {
		end := off + MaxAppend
		if end > len(data) {
			end = len(data)
		}
		if !dst.Append(t, fd, data[off:end]) {
			dst.Close(t, fd)
			return written, false
		}
		written += uint64(end - off)
	}
	ok = dst.Sync(t, fd)
	dst.Close(t, fd)
	return written, ok
}

// Resilver implements Resilverer: it copies the authoritative replica
// over the other, directory by directory — deleting extraneous names,
// rewriting differing files in MaxAppend chunks — and finishes by
// equalizing the generation markers, so a crash anywhere mid-resilver
// leaves the generations unequal and the next recovery simply re-runs
// the copy (every step is idempotent). On success both replicas are
// byte-identical, the stale flags clear, and the mirror is redundant
// again. It must run quiescent (the single-threaded recovery era).
func (m *Mirrored) Resilver(t T) (resilverBytes uint64, ok bool) {
	src, ok := m.resilverSource(t)
	if !ok {
		return 0, false
	}
	dst := 1 - src
	if !m.alive(dst) {
		return 0, false // dead and not replaced: still degraded
	}

	m.mu.Lock()
	m.resilvering = true
	m.mu.Unlock()
	defer func() {
		m.mu.Lock()
		m.resilvering = false
		if ok {
			m.stale = [2]bool{}
		}
		degradedFor := time.Duration(0)
		if ok && !m.degradedAt.IsZero() {
			degradedFor = time.Since(m.degradedAt)
			m.degradedAt = time.Time{}
		}
		m.mu.Unlock()
		if ok {
			m.Metrics.resilverDone(resilverBytes, degradedFor)
		}
	}()

	if mt, isModel := t.(*machine.T); isModel {
		mt.Tracef("mirror: resilver replica %d <- replica %d", dst, src)
	}

	// Data directories first, the generation directory LAST: equal
	// generations assert "replicas identical", so they must become
	// equal only after the data truly is — and only after the copy has
	// been re-read and verified (a destination that silently dropped
	// bytes mid-copy must not be declared redundant). A failed
	// verification earns ONE retry of the whole data pass: the common
	// honest cause is rot injected by the verify pass's own reads
	// (silent corruption strikes whenever a file is opened), which the
	// retry detects at the integrity gate and heals — while a
	// destination that keeps lying about its writes still fails the
	// second pass and leaves the mirror degraded.
	for pass := 0; ; pass++ {
		for _, dir := range m.dirs {
			n, dok := m.resilverDir(t, src, dir)
			resilverBytes += n
			if !dok {
				return resilverBytes, false
			}
		}
		if m.verifyCopied(t, src) {
			break
		}
		if pass == 1 {
			return resilverBytes, false
		}
	}
	n, dok := m.resilverDir(t, src, MirrorMetaDir)
	resilverBytes += n
	if !dok {
		return resilverBytes, false
	}
	return resilverBytes, true
}

// resilverDir copies one directory from replica src onto its peer:
// extraneous destination names are deleted, then every source file is
// integrity-checked and copied (at the raw, below-envelope level) when
// the destination's bytes differ.
func (m *Mirrored) resilverDir(t T, src int, dir string) (written uint64, ok bool) {
	dst := 1 - src
	srcNames := m.rep[src].List(t, dir)
	// A fail-stopped source lies plausibly: its List reads as an
	// empty directory and its Size as 0 bytes, either of which would
	// make the copy destroy the destination's good data. Re-check
	// the source's health after every read of it, before any write
	// to the destination (the recovery era is single-threaded, so no
	// new death can slip in between the read and the check).
	if m.noteDead(t, src) {
		return 0, false
	}
	have := make(map[string]bool, len(srcNames))
	for _, name := range srcNames {
		have[name] = true
	}
	for _, name := range m.rep[dst].List(t, dir) {
		if !have[name] && !m.rep[dst].Delete(t, dir, name) {
			return written, false
		}
	}
	cSrc := AsChecksummed(m.rep[src])
	for _, name := range srcNames {
		want, rok := readAll(t, m.raw(src), dir, name)
		if !rok || m.noteDead(t, src) {
			return written, false
		}
		// Integrity gate: the resilver source is authoritative for
		// EXISTENCE (generations say so), but each file's BYTES must
		// still prove themselves — a survivor can rot on the shelf, and
		// copying it unverified would clobber the peer's good copy with
		// garbage. The verdict is computed on the exact bytes just read
		// (a corruption injected at the read itself cannot slip past a
		// verdict computed on an earlier read). A rotten source file
		// whose peer copy verifies is healed in reverse (peer -> source)
		// before the copy proceeds. Rot with no good copy anywhere is an
		// unrecoverable file, not a reason to stay degraded: like a
		// RAID scrub logging an unreadable sector, the resilver copies
		// the rotten bytes verbatim — replicas converge, the evidence
		// survives, reads of the file keep failing loudly, and Scrub
		// reports it — while every other file regains redundancy.
		// Unsealed files are crash-abandoned writes, not rot, and copy
		// as they are.
		if cSrc != nil && !m.ResilverNoVerify && VerifyEnvelope(want) == VerdictCorrupt {
			cSrc.noteDetected(t, dir, name, VerdictCorrupt)
			healed := m.healFile(t, dir, name, src)
			if !healed && dir == MirrorMetaDir {
				// Generation markers carry no payload, so a rotten
				// marker needs no peer copy: regenerating it through
				// the envelope layer restores the exact bytes the
				// peer's copy has. This matters during a blank-replica
				// resilver, where the source's fresh marker rots at
				// this very read before the destination holds any copy
				// to heal from.
				healed = m.rewriteMarker(t, src, name)
			}
			if healed {
				if want, rok = readAll(t, m.raw(src), dir, name); !rok || m.noteDead(t, src) {
					return written, false
				}
			} else if mt, isModel := t.(*machine.T); isModel {
				mt.Tracef("mirror: resilver: %s/%s corrupt on source replica %d, no good copy", dir, name, src)
			}
		}
		if got, gok := readAll(t, m.raw(dst), dir, name); gok && bytes.Equal(got, want) {
			continue
		}
		n, wok := copyFile(t, m.raw(dst), dir, name, want)
		written += n
		if !wok {
			return written, false
		}
	}
	return written, true
}

// verifyCopied re-reads every data file on both replicas after the
// copy loop and confirms the destination is byte-identical to the
// source. It runs BEFORE the generation markers are equalized, so a
// destination leg that silently dropped or shortened a file (a lying
// device, a fault swallowed mid-copy) leaves the generations unequal
// and the next recovery re-runs the copy instead of trusting it.
func (m *Mirrored) verifyCopied(t T, src int) bool {
	dst := 1 - src
	for _, dir := range m.dirs {
		srcNames := m.rep[src].List(t, dir)
		if m.noteDead(t, src) {
			return false
		}
		dstNames := m.rep[dst].List(t, dir)
		if len(srcNames) != len(dstNames) {
			return false
		}
		for k, name := range srcNames {
			if dstNames[k] != name {
				return false
			}
			want, rok := readAll(t, m.raw(src), dir, name)
			if !rok || m.noteDead(t, src) {
				return false
			}
			got, gok := readAll(t, m.raw(dst), dir, name)
			if !gok || !bytes.Equal(got, want) {
				if mt, isModel := t.(*machine.T); isModel {
					mt.Tracef("mirror: resilver verify: %s/%s differs on replica %d", dir, name, dst)
				}
				return false
			}
		}
	}
	return true
}

// Scrub implements Scrubber over the whole mirror: every file on every
// live replica is verified against its envelope; with heal set, a copy
// that fails verification while its peer's copy verifies is rewritten
// from the peer via healFile. Files rotten on both replicas (or
// unhealable) are reported in Bad. Like Resilver it should run
// quiescent — recovery, or the server's background scrub loop, which
// tolerates the transient delete-then-rewrite window inside healFile.
func (m *Mirrored) Scrub(t T, heal bool) ScrubReport {
	var rep ScrubReport
	dirs := append(append([]string{}, m.dirs...), MirrorMetaDir)
	for _, dir := range dirs {
		union := map[string]bool{}
		for i := 0; i < 2; i++ {
			if !m.alive(i) {
				continue
			}
			for _, name := range m.rep[i].List(t, dir) {
				union[name] = true
			}
		}
		names := make([]string, 0, len(union))
		for name := range union {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			v := [2]Verdict{VerdictAbsent, VerdictAbsent}
			for i := 0; i < 2; i++ {
				if !m.alive(i) {
					continue
				}
				c := AsChecksummed(m.rep[i])
				if c == nil {
					continue
				}
				v[i] = c.VerifyFile(t, dir, name)
				if v[i] == VerdictAbsent {
					continue
				}
				rep.Checked++
				switch v[i] {
				case VerdictCorrupt:
					rep.Corrupt++
				case VerdictUnsealed:
					rep.Unsealed++
				}
			}
			for i := 0; i < 2; i++ {
				if v[i] != VerdictCorrupt {
					continue
				}
				if heal && (v[1-i] == VerdictOK || v[1-i] == VerdictUnsealed) && m.healFile(t, dir, name, i) {
					rep.Healed++
					continue
				}
				rep.Bad = append(rep.Bad, dir+"/"+name)
			}
		}
	}
	return rep
}
