package gfs

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestObservedCountsAndForwards drives the OS backend through the
// Observed middleware and checks that every call is forwarded
// behaviorally unchanged and counted into the per-op-class metrics.
func TestObservedCountsAndForwards(t *testing.T) {
	osfs, err := NewOS(t.TempDir(), []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	defer osfs.CloseAll()

	reg := obs.NewRegistry()
	m := NewFSMetrics(reg)
	sys := NewObserved(osfs, m)
	th := NewNative(1)

	fd, ok := sys.Create(th, "a", "f1")
	if !ok {
		t.Fatal("create failed")
	}
	if !sys.Append(th, fd, []byte("hello")) {
		t.Fatal("append failed")
	}
	if !sys.Sync(th, fd) {
		t.Fatal("sync failed")
	}
	sys.Close(th, fd)
	if !sys.Link(th, "a", "f1", "b", "f2") {
		t.Fatal("link failed")
	}
	rfd, ok := sys.Open(th, "b", "f2")
	if !ok {
		t.Fatal("open failed")
	}
	if got := string(sys.ReadAt(th, rfd, 0, 16)); got != "hello" {
		t.Fatalf("readat = %q, want hello", got)
	}
	if sys.Size(th, rfd) != 5 {
		t.Fatal("size mismatch")
	}
	sys.Close(th, rfd)
	if names := sys.List(th, "a"); len(names) != 1 || names[0] != "f1" {
		t.Fatalf("list = %v", names)
	}
	if !sys.Delete(th, "a", "f1") {
		t.Fatal("delete failed")
	}

	want := map[string]uint64{
		"create": 1, "append": 1, "sync": 1, "close": 2, "link": 1,
		"open": 1, "readat": 1, "size": 1, "list": 1, "delete": 1,
	}
	for op, n := range want {
		if got := m.calls[op].Value(); got != n {
			t.Errorf("calls[%s] = %d, want %d", op, got, n)
		}
		if got := m.latency[op].Count(); got != n {
			t.Errorf("latency[%s] count = %d, want %d", op, got, n)
		}
	}
}

// TestFaultyFeedsFaultCounters checks that Faulty reports injected
// faults into FSMetrics and that the exposition carries the class label.
func TestFaultyFeedsFaultCounters(t *testing.T) {
	osfs, err := NewOS(t.TempDir(), []string{"d"})
	if err != nil {
		t.Fatal(err)
	}
	defer osfs.CloseAll()

	reg := obs.NewRegistry()
	m := NewFSMetrics(reg)
	f := NewFaulty(osfs, AlwaysPolicy{Ops: map[FaultOp]bool{FaultCreate: true}})
	f.Metrics = m
	sys := NewObserved(f, m)
	th := NewNative(1)

	for i := 0; i < 3; i++ {
		if _, ok := sys.Create(th, "d", "x"); ok {
			t.Fatal("create should have faulted")
		}
	}
	if got := m.faults[FaultCreate].Value(); got != 3 {
		t.Errorf("fault counter = %d, want 3", got)
	}
	// Observed (stacked above Faulty) still counts the faulted calls.
	if got := m.calls["create"].Value(); got != 3 {
		t.Errorf("call counter = %d, want 3", got)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `gfs_faults_injected_total{class="create"} 3`) {
		t.Errorf("exposition missing fault counter:\n%s", b.String())
	}
}

// TestObservedNilMetrics ensures the middleware works (as a no-op) with
// nil metrics, so callers can build the chain unconditionally.
func TestObservedNilMetrics(t *testing.T) {
	osfs, err := NewOS(t.TempDir(), []string{"d"})
	if err != nil {
		t.Fatal(err)
	}
	defer osfs.CloseAll()
	sys := NewObserved(osfs, nil)
	th := NewNative(1)
	fd, ok := sys.Create(th, "d", "f")
	if !ok {
		t.Fatal("create failed")
	}
	sys.Close(th, fd)
}
