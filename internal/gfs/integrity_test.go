package gfs

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/machine"
	"repro/internal/obs"
)

// writeSealed writes one sealed file through sys and reports success.
func writeSealed(sys System, th T, dir, name string, data []byte) bool {
	fd, ok := sys.Create(th, dir, name)
	if !ok {
		return false
	}
	for off := 0; off < len(data); off += MaxAppend {
		end := off + MaxAppend
		if end > len(data) {
			end = len(data)
		}
		if !sys.Append(th, fd, data[off:end]) {
			sys.Close(th, fd)
			return false
		}
	}
	if !sys.Sync(th, fd) {
		sys.Close(th, fd)
		return false
	}
	sys.Close(th, fd)
	return true
}

// readSealed opens and fully reads one file through sys.
func readSealed(sys System, th T, dir, name string) ([]byte, bool) {
	return readAll(th, sys, dir, name)
}

// TestChecksummedRoundTrip: the envelope is invisible to well-behaved
// callers — writes round-trip bit-for-bit, Size reports the plaintext
// length, multi-frame appends and empty files work, and a Link'd file
// still verifies under its new name (the envelope binds the birth
// path, which hard links share).
func TestChecksummedRoundTrip(t *testing.T) {
	o := newOSFS(t, []string{"spool", "box"})
	c := NewChecksummed(o, []string{"spool", "box"})
	th := NewNative(1)

	big := bytes.Repeat([]byte("0123456789abcdef"), 300) // 4800 B: spans appends and frames
	payload := append([]byte("hello "), big...)
	if !writeSealed(c, th, "spool", "a", payload) {
		t.Fatal("write failed")
	}
	if !c.Link(th, "spool", "a", "box", "b") {
		t.Fatal("link failed")
	}
	got, ok := readSealed(c, th, "box", "b")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: ok=%v len=%d want %d", ok, len(got), len(payload))
	}

	// Empty file: Create then Close seals a zero-byte plaintext.
	fd, ok := c.Create(th, "box", "empty")
	if !ok {
		t.Fatal("create empty failed")
	}
	c.Close(th, fd)
	rfd, ok := c.Open(th, "box", "empty")
	if !ok {
		t.Fatal("empty file did not open")
	}
	if n := c.Size(th, rfd); n != 0 {
		t.Fatalf("empty file size %d", n)
	}
	c.Close(th, rfd)

	if errs := c.VerifyAll(th); len(errs) != 0 {
		t.Fatalf("VerifyAll on clean store: %v", errs)
	}
	if n := c.Detected(); n != 0 {
		t.Fatalf("clean store detected %d failures", n)
	}
	// Appending after the seal must fail: the envelope is closed.
	fd2, _ := c.Create(th, "box", "sealed")
	c.Sync(th, fd2)
	if c.Append(th, fd2, []byte("late")) {
		t.Fatal("append after seal succeeded")
	}
	c.Close(th, fd2)
}

// TestChecksummedDetectsRot: both corruption modes fail the open
// loudly, tick the detection counter, verdict as corrupt, and surface
// through VerifyAll/Scrub; TrustReads (the seeded bug) serves the
// rotten bytes without complaint.
func TestChecksummedDetectsRot(t *testing.T) {
	o := newOSFS(t, []string{"box"})
	c := NewChecksummed(o, []string{"box"})
	th := NewNative(1)

	files := map[string]CorruptMode{"flip": CorruptFlip, "trunc": CorruptTruncate}
	for name, mode := range files {
		if !writeSealed(c, th, "box", name, []byte("precious payload "+name)) {
			t.Fatalf("write %s failed", name)
		}
		if !o.CorruptFile(th, "box", name, mode) {
			t.Fatalf("corrupt %s failed", name)
		}
		if _, ok := c.Open(th, "box", name); ok {
			t.Fatalf("%s: open served rotten bytes", name)
		}
		if v := c.VerifyFile(th, "box", name); v != VerdictCorrupt {
			t.Fatalf("%s: verdict %v, want corrupt", name, v)
		}
	}
	if n := c.Detected(); n == 0 {
		t.Fatal("no detections recorded")
	}

	errs := c.VerifyAll(th)
	if len(errs) != 2 {
		t.Fatalf("VerifyAll found %d bad files, want 2: %v", len(errs), errs)
	}
	if !errors.Is(errs[0], ErrIntegrity) {
		t.Fatalf("IntegrityError does not wrap ErrIntegrity: %v", errs[0])
	}
	rep := c.Scrub(th, true) // single store: heal is a no-op, detect only
	if rep.Corrupt != 2 || len(rep.Bad) != 2 || rep.Clean() {
		t.Fatalf("scrub report: %v", rep)
	}
	if !strings.Contains(rep.String(), "corrupt=2") {
		t.Fatalf("report string: %q", rep.String())
	}

	// The seeded bug: trusting reads serve whatever is on disk.
	c.TrustReads = true
	if _, ok := c.Open(th, "box", "flip"); !ok {
		t.Fatal("TrustReads still refused the rotten file")
	}
}

// TestChecksummedUnsealedIsNotRot: a file mid-write (no seal yet) does
// not open, verdicts as unsealed, and is NOT counted as a detection —
// crash-abandoned writes are normal, not corruption. An empty file (a
// create torn back to zero bytes by a crash) is the degenerate case.
func TestChecksummedUnsealedIsNotRot(t *testing.T) {
	o := newOSFS(t, []string{"box"})
	c := NewChecksummed(o, []string{"box"})
	th := NewNative(1)

	fd, ok := c.Create(th, "box", "wip")
	if !ok {
		t.Fatal("create failed")
	}
	c.Append(th, fd, []byte("partial"))
	// Not sealed: verify and open from a second handle while mid-write.
	if v := c.VerifyFile(th, "box", "wip"); v != VerdictUnsealed {
		t.Fatalf("mid-write verdict %v, want unsealed", v)
	}
	if _, ok := c.Open(th, "box", "wip"); ok {
		t.Fatal("unsealed file opened")
	}

	// Zero-byte file, as a torn create leaves behind.
	r, release := o.root("box")
	if f, err := r.Create("torn"); err != nil {
		t.Fatal(err)
	} else {
		f.Close()
	}
	release()
	if v := c.VerifyFile(th, "box", "torn"); v != VerdictUnsealed {
		t.Fatalf("empty-file verdict %v, want unsealed", v)
	}
	if n := c.Detected(); n != 0 {
		t.Fatalf("unsealed files counted as %d detections", n)
	}
	c.Close(th, fd)
}

// TestSeededCorruptReproducible extends seeded-replay parity to the
// silent-corruption class: with FaultCorrupt in the rate table the same
// seed must reproduce the same corruption schedule — which files rot,
// in which mode, at which call — bit-for-bit across runs.
func TestSeededCorruptReproducible(t *testing.T) {
	run := func(seed int64) ([]FaultEvent, [NumFaultOps]uint64, [NumFaultOps]uint64) {
		o := newOSFS(t, faultScriptDirs)
		var rates [NumFaultOps]uint64
		rates[FaultCorrupt] = 3
		f := NewFaulty(o, &SeededPolicy{Seed: seed, Rates: rates})
		faultScript(f, NewNative(1))
		calls, faults := f.Counters()
		return f.Log(), calls, faults
	}

	var rotted bool
	for seed := int64(1); seed <= 32 && !rotted; seed++ {
		log1, calls1, faults1 := run(seed)
		log2, calls2, faults2 := run(seed)
		if !reflect.DeepEqual(log1, log2) || calls1 != calls2 || faults1 != faults2 {
			t.Fatalf("seed %d: corruption schedules diverge:\n%v\nvs\n%v", seed, log1, log2)
		}
		rotted = faults1[FaultCorrupt] > 0
	}
	if !rotted {
		t.Fatal("no seed in 1..32 injected corruption at rate 1-in-3; class is dead")
	}
}

// TestCorruptionIsSilent: an injected corruption mutates the stored
// bytes but fails nothing — the triggering open succeeds and serves the
// (rotten) data, which is exactly why the class is only safe to enable
// under an integrity layer.
func TestCorruptionIsSilent(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 10000})
	fs := NewModel(mm, []string{"d"})
	pol := AlwaysPolicy{Ops: map[FaultOp]bool{FaultCorrupt: true}}
	f := NewFaulty(fs, pol)
	flipMode := machine.ChooserFunc(func(n int, tag string) int { return 0 })
	res := mm.RunEra(flipMode, false, func(mt *machine.T) {
		fd, _ := fs.Create(mt, "d", "x")
		fs.Append(mt, fd, []byte("abcd"))
		fs.Close(mt, fd)

		rfd, ok := f.Open(mt, "d", "x")
		if !ok {
			mt.Failf("corrupting open failed; corruption must be silent")
		}
		got := f.ReadAt(mt, rfd, 0, 64)
		if string(got) == "abcd" {
			mt.Failf("bytes unchanged after injected corruption")
		}
		if len(got) != 4 {
			mt.Failf("bit-flip changed the length: %q", got)
		}
		f.Close(mt, rfd)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	_, faults := f.Counters()
	if faults[FaultCorrupt] == 0 {
		t.Fatal("no corruption recorded")
	}
	var logged bool
	for _, e := range f.Log() {
		if e.Op == FaultCorrupt && strings.Contains(e.Detail, "bit-flip") {
			logged = true
		}
	}
	if !logged {
		t.Fatalf("corruption event missing from log: %v", f.Log())
	}
}

// TestChooserPolicyCorruptOptIn mirrors the fail-stop opt-in test for
// the silent class: nil Eligible must never branch on corruption even
// under a chooser that takes every branch offered; with FaultCorrupt
// explicitly eligible the "corrupt" tag branches, the "corrupt-mode"
// tag picks the mangling, and the PerClass cap bounds the rot.
func TestChooserPolicyCorruptOptIn(t *testing.T) {
	greedy := machine.ChooserFunc(func(n int, tag string) int { return n - 1 })

	mm := machine.New(machine.Options{MaxSteps: 100000})
	fs := NewModel(mm, faultScriptDirs)
	f := NewFaulty(fs, &ChooserPolicy{Budget: 1 << 30})
	res := mm.RunEra(greedy, false, func(mt *machine.T) { faultScript(f, mt) })
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	_, faults := f.Counters()
	if faults[FaultCorrupt] != 0 {
		t.Fatal("nil Eligible enumerated silent corruption")
	}

	var sawCorrupt, sawMode bool
	tagSpy := machine.ChooserFunc(func(n int, tag string) int {
		switch tag {
		case "corrupt":
			sawCorrupt = true
			return 1
		case "corrupt-mode":
			sawMode = true
			if n != int(NumCorruptModes) {
				t.Errorf("corrupt-mode offered %d options, want %d", n, NumCorruptModes)
			}
			return int(CorruptTruncate)
		}
		return 0
	})
	mm2 := machine.New(machine.Options{MaxSteps: 100000})
	fs2 := NewModel(mm2, faultScriptDirs)
	f2 := NewFaulty(fs2, &ChooserPolicy{
		Budget:   1 << 30,
		Eligible: map[FaultOp]bool{FaultCorrupt: true},
		PerClass: map[FaultOp]int{FaultCorrupt: 1},
	})
	res = mm2.RunEra(tagSpy, false, func(mt *machine.T) { faultScript(f2, mt) })
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if !sawCorrupt || !sawMode {
		t.Fatalf("chooser tags missed: corrupt=%v mode=%v", sawCorrupt, sawMode)
	}
	_, faults2 := f2.Counters()
	if faults2[FaultCorrupt] != 1 {
		t.Fatalf("PerClass cap 1 but %d corruptions injected", faults2[FaultCorrupt])
	}
	var truncated bool
	for _, e := range f2.Log() {
		if e.Op == FaultCorrupt && strings.Contains(e.Detail, "truncate") {
			truncated = true
		}
	}
	if !truncated {
		t.Fatalf("chosen truncate mode not in log: %v", f2.Log())
	}
}

// newCheckedMirror builds Mirrored(Checksummed(Model), Checksummed(Model))
// over one data directory.
func newCheckedMirror(mm *machine.Machine) (*Mirrored, [2]*Model, [2]*Checksummed) {
	dirs := []string{"box"}
	all := []string{"box", MirrorMetaDir}
	var mods [2]*Model
	var chks [2]*Checksummed
	for i := range mods {
		mods[i] = NewModel(mm, all)
		chks[i] = NewChecksummed(mods[i], dirs)
	}
	return NewMirrored(chks[0], chks[1], dirs), mods, chks
}

// TestMirrorHealsRottenReadReplica: a checksum failure on the read
// replica fails over to the peer's verified copy AND rewrites the
// rotten copy in place — the read succeeds, the replicas end
// byte-identical, and the generation markers stay equal.
func TestMirrorHealsRottenReadReplica(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 100000})
	mir, mods, chks := newCheckedMirror(mm)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		if !writeSealed(mir, mt, "box", "m", []byte("acked mail")) {
			mt.Failf("mirror write failed")
		}
		if !mods[0].CorruptFile(mt, "box", "m", CorruptFlip) {
			mt.Failf("corrupt failed")
		}
		if chks[0].VerifyFile(mt, "box", "m") != VerdictCorrupt {
			mt.Failf("replica 0 not rotten after corrupt")
		}

		got, ok := readSealed(mir, mt, "box", "m")
		if !ok || string(got) != "acked mail" {
			mt.Failf("read through rotten replica: ok=%v %q", ok, got)
		}
		if chks[0].VerifyFile(mt, "box", "m") != VerdictOK {
			mt.Failf("replica 0 not healed by the read")
		}
		if chks[0].Detected() == 0 {
			mt.Failf("no detection recorded")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	d0, d1 := mods[0].PeekDir("box"), mods[1].PeekDir("box")
	if !bytes.Equal(d0["m"], d1["m"]) {
		t.Fatal("replicas differ after heal")
	}
	g0 := len(mods[0].PeekDir(MirrorMetaDir))
	g1 := len(mods[1].PeekDir(MirrorMetaDir))
	if g0 != g1 || g0 == 0 {
		t.Fatalf("generations %d vs %d after heal, want equal and bumped", g0, g1)
	}
	if mir.Degraded() {
		t.Fatal("mirror degraded after a successful heal")
	}
}

// TestMirrorOpenFailsWhenBothRotten: with no good copy anywhere the
// open fails loudly instead of serving garbage.
func TestMirrorOpenFailsWhenBothRotten(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 100000})
	mir, mods, _ := newCheckedMirror(mm)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		if !writeSealed(mir, mt, "box", "m", []byte("doomed")) {
			mt.Failf("mirror write failed")
		}
		mods[0].CorruptFile(mt, "box", "m", CorruptFlip)
		mods[1].CorruptFile(mt, "box", "m", CorruptTruncate)
		if _, ok := mir.Open(mt, "box", "m"); ok {
			mt.Failf("open served a file rotten on both replicas")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

// TestMirrorScrubDetectsAndHeals: a detect-only pass reports the rot
// without touching it; a healing pass rewrites it from the good peer
// and leaves the mirror clean.
func TestMirrorScrubDetectsAndHeals(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 200000})
	mir, mods, chks := newCheckedMirror(mm)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		for _, name := range []string{"a", "b"} {
			if !writeSealed(mir, mt, "box", name, []byte("msg-"+name)) {
				mt.Failf("write %s failed", name)
			}
		}
		// Rot replica 1's copy of b — off the read path, so only a scrub
		// will ever find it.
		mods[1].CorruptFile(mt, "box", "b", CorruptFlip)

		rep := mir.Scrub(mt, false)
		if rep.Corrupt != 1 || rep.Healed != 0 || len(rep.Bad) != 1 || rep.Bad[0] != "box/b" {
			mt.Failf("detect-only scrub: %v", rep)
		}
		if chks[1].VerifyFile(mt, "box", "b") != VerdictCorrupt {
			mt.Failf("detect-only scrub modified the store")
		}

		rep = mir.Scrub(mt, true)
		if rep.Corrupt != 1 || rep.Healed != 1 || !rep.Clean() {
			mt.Failf("healing scrub: %v", rep)
		}
		if chks[1].VerifyFile(mt, "box", "b") != VerdictOK {
			mt.Failf("scrub did not heal replica 1")
		}
		rep = mir.Scrub(mt, false)
		if rep.Corrupt != 0 || !rep.Clean() {
			mt.Failf("post-heal scrub still dirty: %v", rep)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if !bytes.Equal(mods[0].PeekDir("box")["b"], mods[1].PeekDir("box")["b"]) {
		t.Fatal("replicas differ after scrub heal")
	}
}

// TestResilverVerifiesSource: a resilver whose source copy is rotten
// must not clobber the good destination copy — it heals the source in
// reverse from the destination first, then completes. With the
// ResilverNoVerify bug flag the rot is replicated instead.
func TestResilverVerifiesSource(t *testing.T) {
	setup := func(noVerify bool) (*Mirrored, [2]*Checksummed, uint64, bool, *machine.Machine) {
		mm := machine.New(machine.Options{MaxSteps: 200000})
		mir, mods, chks := newCheckedMirror(mm)
		mir.ResilverNoVerify = noVerify
		var n uint64
		var ok bool
		res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
			if !writeSealed(mir, mt, "box", "m", []byte("survivor data")) {
				mt.Failf("write failed")
			}
			// Replica 1 is declared replaced (stale), making replica 0 the
			// resilver source — and replica 0's copy is rotten.
			mir.ReplaceReplica(1)
			mods[0].CorruptFile(mt, "box", "m", CorruptFlip)
			n, ok = mir.Resilver(mt)
		})
		if res.Outcome != machine.Done {
			t.Fatalf("res=%+v", res)
		}
		return mir, chks, n, ok, mm
	}

	// Fixed behavior: reverse heal, then a clean resilver.
	mir, chks, _, ok, mm := setup(false)
	if !ok {
		t.Fatal("resilver failed despite a healable source")
	}
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		if chks[0].VerifyFile(mt, "box", "m") != VerdictOK {
			mt.Failf("source not reverse-healed")
		}
		if chks[1].VerifyFile(mt, "box", "m") != VerdictOK {
			mt.Failf("destination rotten after verified resilver")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if mir.Degraded() {
		t.Fatal("mirror degraded after verified resilver")
	}

	// Seeded bug: the trusting resilver replicates the rot everywhere.
	_, chks, _, ok, mm = setup(true)
	if !ok {
		t.Fatal("buggy resilver was expected to (wrongly) report success")
	}
	res = mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		if chks[1].VerifyFile(mt, "box", "m") != VerdictCorrupt {
			mt.Failf("bug flag set but good copy survived")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

// lyingAppend wraps a System and silently drops every Append while
// reporting success — a device that lies about its writes. Persistent
// lying matters: Resilver retries the data pass once after a failed
// verification (to absorb rot injected by the verify reads themselves),
// so a one-shot lie would be legitimately repaired by the retry.
type lyingAppend struct {
	System
}

func (l *lyingAppend) Append(t T, fd FD, data []byte) bool { return true }

// TestResilverVerifyCatchesShortCopy is the regression test for the
// silent-short-copy hole: a destination leg that drops an append while
// reporting success used to let Resilver equalize the generations over
// a silently short file. The post-copy verification pass must fail the
// resilver and leave the mirror degraded instead.
func TestResilverVerifyCatchesShortCopy(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 100000})
	dirs := []string{"box"}
	all := []string{"box", MirrorMetaDir}
	m0 := NewModel(mm, all)
	m1 := NewModel(mm, all)
	liar := &lyingAppend{System: m1}
	mir := NewMirrored(m0, liar, dirs)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		// Seed replica 0 directly; replica 1 starts empty and replaced.
		fd, _ := m0.Create(mt, "box", "m")
		m0.Append(mt, fd, []byte("must arrive whole"))
		m0.Sync(mt, fd)
		m0.Close(mt, fd)
		mir.ReplaceReplica(1)

		if _, ok := mir.Resilver(mt); ok {
			mt.Failf("resilver reported success over a lying destination")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if !mir.Degraded() {
		t.Fatal("mirror not degraded after a failed resilver")
	}
	if g0, g1 := len(m0.PeekDir(MirrorMetaDir)), len(m1.PeekDir(MirrorMetaDir)); g0 != g1 {
		// Generations may legitimately differ here; what must NOT happen
		// is equal generations over differing data.
		_ = g0
		_ = g1
	}
	if bytes.Equal(m0.PeekDir("box")["m"], m1.PeekDir("box")["m"]) {
		t.Fatal("test is vacuous: the lying append did not shorten the copy")
	}
}

// TestIntegrityMetricsNilSafe: every IntegrityMetrics method must
// tolerate a nil receiver, so checker runs and metric-less servers
// never trip over instrumentation.
func TestIntegrityMetricsNilSafe(t *testing.T) {
	var m *IntegrityMetrics
	m.detected()
	m.healed()
	m.ScrubDone(time.Second)
}

// TestIntegrityMetricsRegister: the three gfs_integrity_* families
// register and record.
func TestIntegrityMetricsRegister(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewIntegrityMetrics(reg)
	m.detected()
	m.healed()
	m.ScrubDone(10 * time.Millisecond)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"gfs_integrity_detected_total 1",
		"gfs_integrity_healed_total 1",
		"gfs_integrity_scrub_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
