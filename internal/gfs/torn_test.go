package gfs

import (
	"testing"

	"repro/internal/machine"
)

// tornSetup writes one file with a 4-byte synced prefix and two
// unsynced 2-byte appends, so the crash has three enumerable outcomes:
// keep the synced prefix only, keep the first pending append, or keep
// both.
func tornSetup(t *testing.T, chooser machine.Chooser) (*machine.Machine, *Model) {
	t.Helper()
	mm := machine.New(machine.Options{})
	fs := NewBufferedModel(mm, []string{"d"})
	res := mm.RunEra(chooser, false, func(mt *machine.T) {
		fd, ok := fs.Create(mt, "d", "f")
		if !ok {
			mt.Failf("create failed")
		}
		fs.Append(mt, fd, []byte("aaaa"))
		fs.Sync(mt, fd)
		fs.Append(mt, fd, []byte("bb"))
		fs.Append(mt, fd, []byte("cc"))
	})
	if res.Outcome != machine.Done {
		t.Fatalf("setup: %+v", res)
	}
	return mm, fs
}

// TestBufferedCrashEnumeratesTornTails: the crash-time "torn" choice
// selects which prefix of the unsynced tail survives, at append
// boundaries only — option 0 is the old lose-everything behavior, the
// last option keeps the whole tail.
func TestBufferedCrashEnumeratesTornTails(t *testing.T) {
	for k, want := range map[int]string{0: "aaaa", 1: "aaaabb", 2: "aaaabbcc"} {
		pick := k
		chooser := machine.ChooserFunc(func(n int, tag string) int {
			if tag == "torn" {
				if n != 3 {
					t.Errorf("torn choice offered %d options, want 3", n)
				}
				return pick
			}
			return 0
		})
		mm, fs := tornSetup(t, chooser)
		mm.CrashReset()
		if got := string(fs.PeekDir("d")["f"]); got != want {
			t.Errorf("torn choice %d: survived %q, want %q", k, got, want)
		}
	}
}

// TestBufferedCrashDefaultChooserKeepsSyncedPrefix: SeqChooser (and any
// chooser-less context) picks option 0, so pre-torn behavior — only the
// synced prefix survives — is unchanged.
func TestBufferedCrashDefaultChooserKeepsSyncedPrefix(t *testing.T) {
	mm, fs := tornSetup(t, machine.SeqChooser{})
	mm.CrashReset()
	if got := string(fs.PeekDir("d")["f"]); got != "aaaa" {
		t.Fatalf("survived %q, want synced prefix only", got)
	}
}

// TestBufferedCrashClampsWildChoice: an out-of-range torn choice (a
// stale or truncated replay script) clamps to option 0 instead of
// panicking or failing the machine — consistent with ScriptChooser's
// clamping, which keeps minimized schedules replayable.
func TestBufferedCrashClampsWildChoice(t *testing.T) {
	wild := machine.ChooserFunc(func(n int, tag string) int {
		if tag == "torn" {
			return 99
		}
		return 0
	})
	mm, fs := tornSetup(t, wild)
	mm.CrashReset()
	if got := string(fs.PeekDir("d")["f"]); got != "aaaa" {
		t.Fatalf("survived %q, want synced prefix (clamped choice)", got)
	}
}

// TestBufferedCrashSurvivedTailIsDurable: whatever prefix the crash
// kept is on disk for good — a second crash must not shorten it
// further (the survived bytes become the synced prefix).
func TestBufferedCrashSurvivedTailIsDurable(t *testing.T) {
	keepAll := machine.ChooserFunc(func(n int, tag string) int {
		if tag == "torn" {
			return n - 1
		}
		return 0
	})
	mm, fs := tornSetup(t, keepAll)
	mm.CrashReset()
	if got := string(fs.PeekDir("d")["f"]); got != "aaaabbcc" {
		t.Fatalf("first crash survived %q", got)
	}
	// Second crash, with a chooser that would drop everything it can:
	// nothing is pending anymore, so nothing is lost.
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {})
	if res.Outcome != machine.Done {
		t.Fatalf("recovery era: %+v", res)
	}
	mm.CrashReset()
	if got := string(fs.PeekDir("d")["f"]); got != "aaaabbcc" {
		t.Fatalf("second crash shortened the file to %q", got)
	}
}

// TestStrictModelCrashIgnoresTornChoice: the strict (unbuffered) model
// never consults the torn choice — every append is durable immediately.
func TestStrictModelCrashIgnoresTornChoice(t *testing.T) {
	consulted := false
	chooser := machine.ChooserFunc(func(n int, tag string) int {
		if tag == "torn" {
			consulted = true
		}
		return 0
	})
	mm := machine.New(machine.Options{})
	fs := NewModel(mm, []string{"d"})
	res := mm.RunEra(chooser, false, func(mt *machine.T) {
		fd, _ := fs.Create(mt, "d", "f")
		fs.Append(mt, fd, []byte("abcd"))
	})
	if res.Outcome != machine.Done {
		t.Fatalf("setup: %+v", res)
	}
	mm.CrashReset()
	if consulted {
		t.Fatal("strict model consulted the torn choice")
	}
	if got := string(fs.PeekDir("d")["f"]); got != "abcd" {
		t.Fatalf("strict model lost data: %q", got)
	}
}
