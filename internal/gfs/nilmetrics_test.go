package gfs

import (
	"testing"

	"repro/internal/machine"
)

// TestNilMetricsFullStack is the shared nil-receiver audit for every
// obs metric surface the gfs middleware carries (gfs_ops_total and
// gfs_sync_* via FSMetrics, gfs_mirror_* via MirrorMetrics,
// gfs_integrity_* via IntegrityMetrics): the full production stack —
// Observed over Mirrored over Faulty over Checksummed over Model — is
// built with every metrics pointer nil and driven through the code
// paths that bump each counter. A call site that forgets the
// nil-receiver discipline panics here instead of in a metric-less
// server or checker run.
func TestNilMetricsFullStack(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 500000})
	dirs := []string{"box"}
	all := append([]string{MirrorMetaDir}, dirs...)
	var mods [2]*Model
	var chks [2]*Checksummed
	var flts [2]*Faulty
	for i := range mods {
		mods[i] = NewModel(mm, all)
		mods[i].SetMetrics(nil) // crash-time SyncDropped on a nil receiver
		chks[i] = NewChecksummed(mods[i], dirs)
		chks[i].Metrics = nil
		flts[i] = NewFaulty(chks[i], NeverPolicy{})
		flts[i].Metrics = nil
	}
	mir := NewMirrored(flts[0], flts[1], dirs)
	mir.Metrics = nil
	mir.Integrity = nil
	top := NewObserved(mir, nil)

	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		// observe + SyncIssued("file"/"dir") on the nil FSMetrics.
		if !writeSealed(top, mt, "box", "a", []byte("alpha")) ||
			!writeSealed(top, mt, "box", "b", []byte("beta")) {
			mt.Failf("seed writes failed")
		}
		if !top.SyncDir(mt, "box") {
			mt.Failf("syncdir failed")
		}

		// detected + healed with Checksummed.Metrics and
		// Mirrored.Integrity both nil: rot the read replica's copy and
		// read through the whole stack, forcing a heal-on-read.
		if !mods[0].CorruptFile(mt, "box", "a", CorruptFlip) {
			mt.Failf("corrupt failed")
		}
		if got, ok := readSealed(top, mt, "box", "a"); !ok || string(got) != "alpha" {
			mt.Failf("heal-on-read failed: ok=%v %q", ok, got)
		}

		// Scrub detect-and-heal off the read path, still metric-free.
		mods[1].CorruptFile(mt, "box", "b", CorruptFlip)
		if rep := mir.Scrub(mt, true); !rep.Clean() || rep.Healed != 1 {
			mt.Failf("scrub: %v", rep)
		}

		// replicaFailed + failover on the nil MirrorMetrics.
		flts[0].FailStopNow("nil-metrics drill")
		if _, ok := readSealed(top, mt, "box", "b"); !ok {
			mt.Failf("failover read failed")
		}
		if st := mir.Status(); !st.Degraded || st.Failovers == 0 {
			mt.Failf("mirror not degraded after kill: %+v", st)
		}

		// resilverDone on the nil MirrorMetrics.
		flts[0].Revive()
		mir.ReplaceReplica(0)
		if _, ok := mir.Resilver(mt); !ok {
			mt.Failf("resilver failed")
		}
		if mir.Degraded() {
			mt.Failf("mirror still degraded after resilver")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("stack drill: %+v", res)
	}
}

// TestNilMetricsFaultAndCrash covers the remaining nil-receiver call
// sites: an injected fault (FaultInjected), a failed durability
// barrier (SyncIssued with ok=false), and a crash dropping un-synced
// bytes and directory entries (Model.Crash's SyncDropped calls under
// writeback durability) — all through a nil *FSMetrics.
func TestNilMetricsFaultAndCrash(t *testing.T) {
	mm := machine.New(machine.Options{})
	fs := NewWritebackModel(mm, []string{"d"})
	fs.SetMetrics(nil)
	flt := NewFaulty(fs, AlwaysPolicy{Ops: map[FaultOp]bool{FaultSync: true}})
	flt.Metrics = nil
	top := NewObserved(flt, nil)

	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		fd, ok := top.Create(mt, "d", "f")
		if !ok {
			mt.Failf("create failed")
		}
		if !top.Append(mt, fd, []byte("unsynced tail")) {
			mt.Failf("append failed")
		}
		// FaultSync always fires, so this exercises both
		// SyncIssued("file", false) and FaultInjected(FaultSync).
		if top.Sync(mt, fd) {
			mt.Failf("sync unexpectedly succeeded under AlwaysPolicy")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("drill: %+v", res)
	}
	// The chooserless crash takes maximal loss: the un-synced entry
	// rolls back and the orphaned bytes are reclaimed, both counted
	// through fs.metrics.SyncDropped — with metrics nil.
	mm.CrashReset()
	if got := fs.PeekDir("d")["f"]; len(got) != 0 {
		t.Fatalf("un-synced state survived the crash: %q", got)
	}
}
