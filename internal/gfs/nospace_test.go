package gfs

import (
	"reflect"
	"testing"

	"repro/internal/machine"
)

// TestNoSpaceNowAndFreeSpace pins the disk-full latch semantics on the
// operational surface: NoSpaceNow latches immediately regardless of
// policy, space-consuming writes (Create, Append, Link) fail without
// reaching the inner backend, reads/opens/listings keep working, and a
// successful Delete — freeing space — clears the latch.
func TestNoSpaceNowAndFreeSpace(t *testing.T) {
	o := newOSFS(t, faultScriptDirs)
	f := NewFaulty(o, NeverPolicy{})
	th := NewNative(1)

	fd, ok := f.Create(th, "spool", "a")
	if !ok {
		t.Fatal("create failed before the fill switch")
	}
	if !f.Append(th, fd, []byte("payload")) {
		t.Fatal("append failed before the fill switch")
	}
	f.Close(th, fd)

	f.NoSpaceNow("drill")
	f.NoSpaceNow("drill again")
	if !f.NoSpace() {
		t.Fatal("fill switch did not latch")
	}
	if _, ok := f.Create(th, "spool", "b"); ok {
		t.Fatal("create succeeded on a full disk")
	}
	if f.Link(th, "spool", "a", "box", "a") {
		t.Fatal("link succeeded on a full disk")
	}
	// Reads and listings still work: the disk is full, not dead.
	rfd, ok := f.Open(th, "spool", "a")
	if !ok {
		t.Fatal("open failed on a full disk")
	}
	if got := string(f.ReadAt(th, rfd, 0, 64)); got != "payload" {
		t.Fatalf("read on a full disk returned %q", got)
	}
	if f.Append(th, rfd, []byte("x")) {
		t.Fatal("append succeeded on a full disk")
	}
	f.Close(th, rfd)
	if names := f.List(th, "spool"); len(names) != 1 {
		t.Fatalf("list on a full disk: %v", names)
	}

	// Idempotent switch: one log event no matter how many failed writes.
	_, faults := f.Counters()
	if faults[FaultNoSpace] != 1 {
		t.Fatalf("idempotent fill switch recorded %d faults, want 1", faults[FaultNoSpace])
	}
	var events int
	for _, e := range f.Log() {
		if e.Op == FaultNoSpace {
			events++
		}
	}
	if events != 1 {
		t.Fatalf("%d no-space log events, want exactly 1", events)
	}

	// Deleting frees space and clears the latch.
	if !f.Delete(th, "spool", "a") {
		t.Fatal("delete failed on a full disk (deletes must always be allowed)")
	}
	if f.NoSpace() {
		t.Fatal("latch survived a successful delete")
	}
	if fd, ok := f.Create(th, "spool", "c"); !ok {
		t.Fatal("create failed after space was freed")
	} else {
		f.Close(th, fd)
	}

	// FreeSpace is the no-delete unlatch (operator freed space elsewhere).
	f.NoSpaceNow("again")
	f.FreeSpace()
	if f.NoSpace() {
		t.Fatal("latch survived FreeSpace")
	}
}

// TestChooserPolicyNoSpaceOptIn: with a nil Eligible set the chooser
// policy must never branch on disk-full (or fd exhaustion), even when
// the chooser takes every branch offered; with FaultNoSpace explicitly
// eligible, the "nospace" tag branches and injection latches the layer.
func TestChooserPolicyNoSpaceOptIn(t *testing.T) {
	greedy := machine.ChooserFunc(func(n int, tag string) int { return n - 1 })

	mm := machine.New(machine.Options{MaxSteps: 100000})
	fs := NewModel(mm, faultScriptDirs)
	f := NewFaulty(fs, &ChooserPolicy{Budget: 1 << 30})
	res := mm.RunEra(greedy, false, func(mt *machine.T) { faultScript(f, mt) })
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	_, faults := f.Counters()
	if faults[FaultNoSpace] != 0 || faults[FaultNoFiles] != 0 {
		t.Fatalf("nil Eligible enumerated opt-in classes: nospace=%d nofiles=%d",
			faults[FaultNoSpace], faults[FaultNoFiles])
	}

	var sawTag bool
	tagSpy := machine.ChooserFunc(func(n int, tag string) int {
		if tag == "nospace" {
			sawTag = true
			return 1
		}
		return 0
	})
	mm2 := machine.New(machine.Options{MaxSteps: 100000})
	fs2 := NewModel(mm2, faultScriptDirs)
	f2 := NewFaulty(fs2, &ChooserPolicy{
		Budget:   1 << 30,
		Eligible: map[FaultOp]bool{FaultNoSpace: true},
	})
	res = mm2.RunEra(tagSpy, false, func(mt *machine.T) {
		if _, ok := f2.Create(mt, "spool", "a"); ok {
			mt.Failf("create succeeded at the point the disk fills")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if !sawTag {
		t.Fatal("no nospace-tagged choice reached the chooser")
	}
	if !f2.NoSpace() {
		t.Fatal("injection did not latch")
	}
}

// TestDurableLatchNoBudgetDoubleCount is the budget-accounting audit
// for durable classes: once a latch (no-space or fail-stop) is set, the
// operations it fails must neither allocate new decision points nor
// consult the policy — so a latch that survives a crash cannot be
// double-counted against the chooser budget on replay, and the
// ChooserPolicy fingerprint (AppendState) stays stable across any
// number of latched operations and eras.
func TestDurableLatchNoBudgetDoubleCount(t *testing.T) {
	var nospaceAsks int
	chooser := machine.ChooserFunc(func(n int, tag string) int {
		if tag == "nospace" {
			nospaceAsks++
			return 1
		}
		return 0
	})
	mm := machine.New(machine.Options{MaxSteps: 100000})
	fs := NewModel(mm, faultScriptDirs)
	pol := &ChooserPolicy{Budget: 1, Eligible: map[FaultOp]bool{FaultNoSpace: true}}
	f := NewFaulty(fs, pol)

	latchedWrites := func(mt *machine.T) {
		for _, name := range []string{"p", "q", "r"} {
			if _, ok := f.Create(mt, "spool", name); ok {
				mt.Failf("create %s succeeded while latched", name)
			}
		}
		if f.Link(mt, "spool", "seed", "box", "seed") {
			mt.Failf("link succeeded while latched")
		}
	}

	res := mm.RunEra(chooser, false, func(mt *machine.T) {
		// Real state through the inner backend, then the injection point.
		fd, _ := fs.Create(mt, "spool", "seed")
		fs.Close(mt, fd)
		if _, ok := f.Create(mt, "spool", "a"); ok {
			mt.Failf("create succeeded at the point the disk fills")
		}
		latchedWrites(mt)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era 1: %+v", res)
	}
	if nospaceAsks != 1 {
		t.Fatalf("policy consulted %d times, want exactly 1 (latched writes must not re-ask)", nospaceAsks)
	}
	calls, faults := f.Counters()
	if calls[FaultNoSpace] != 1 || faults[FaultNoSpace] != 1 {
		t.Fatalf("decision points=%d faults=%d, want 1/1", calls[FaultNoSpace], faults[FaultNoSpace])
	}
	fp := pol.AppendState(nil)

	// Crash. The Faulty middleware lives in the scenario world, so the
	// latch survives into the next era — the disk is still full after
	// reboot. Replayed writes against the latch must not charge the
	// (already spent) budget again.
	mm.CrashReset()
	res = mm.RunEra(chooser, false, func(mt *machine.T) { latchedWrites(mt) })
	if res.Outcome != machine.Done {
		t.Fatalf("era 2: %+v", res)
	}
	if nospaceAsks != 1 {
		t.Fatalf("post-crash writes re-consulted the policy (%d asks total)", nospaceAsks)
	}
	calls, faults = f.Counters()
	if calls[FaultNoSpace] != 1 || faults[FaultNoSpace] != 1 {
		t.Fatalf("post-crash: decision points=%d faults=%d, want 1/1", calls[FaultNoSpace], faults[FaultNoSpace])
	}
	if got := pol.AppendState(nil); !reflect.DeepEqual(got, fp) {
		t.Fatalf("policy fingerprint drifted across latched eras: %v vs %v", got, fp)
	}

	// Same audit for the other durable latch: fail-stopped operations
	// allocate no fail-stop decision points either.
	f2 := NewFaulty(newOSFS(t, faultScriptDirs), NeverPolicy{})
	f2.FailStopNow("audit")
	th := NewNative(1)
	f2.Create(th, "spool", "x")
	f2.List(th, "spool")
	f2.Delete(th, "spool", "x")
	calls2, _ := f2.Counters()
	if calls2[FaultFailStop] != 0 {
		t.Fatalf("dead operations allocated %d fail-stop decision points, want 0", calls2[FaultFailStop])
	}
}

// TestNoFilesTransient pins the fd-exhaustion class: Open and Create
// fail transiently (nothing durable happens, nothing latches), while
// the other classes are untouched.
func TestNoFilesTransient(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 10000})
	fs := NewModel(mm, []string{"d"})
	f := NewFaulty(fs, AlwaysPolicy{Ops: map[FaultOp]bool{FaultNoFiles: true}})
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		if _, ok := f.Create(mt, "d", "x"); ok {
			mt.Failf("create succeeded with the fd table full")
		}
		if len(fs.PeekDir("d")) != 0 {
			mt.Failf("faulted create left an entry behind")
		}
		fd, _ := fs.Create(mt, "d", "x")
		fs.Append(mt, fd, []byte("abcd"))
		fs.Close(mt, fd)
		if _, ok := f.Open(mt, "d", "x"); ok {
			mt.Failf("open succeeded with the fd table full")
		}
		// No latch: the class is transient, and non-fd classes still work.
		if f.NoSpace() || f.FailStopped() {
			mt.Failf("transient fd exhaustion latched something")
		}
		if !f.Link(mt, "d", "x", "d", "y") {
			mt.Failf("link failed under fd exhaustion")
		}
		if !f.Delete(mt, "d", "y") {
			mt.Failf("delete failed under fd exhaustion")
		}
		if names := f.List(mt, "d"); len(names) != 1 {
			mt.Failf("list under fd exhaustion: %v", names)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	calls, faults := f.Counters()
	if calls[FaultNoFiles] == 0 || faults[FaultNoFiles] != calls[FaultNoFiles] {
		t.Fatalf("no-files: calls=%d faults=%d, want all faulted", calls[FaultNoFiles], faults[FaultNoFiles])
	}
}

// TestSeededNoSpaceReproducible extends seeded-replay parity to the
// disk-full class: with FaultNoSpace in the rate table the same seed
// reproduces the same fill point — and the same post-fill schedule,
// including the delete that clears the latch — bit-for-bit.
func TestSeededNoSpaceReproducible(t *testing.T) {
	run := func(seed int64) ([]FaultEvent, [NumFaultOps]uint64, [NumFaultOps]uint64) {
		o := newOSFS(t, faultScriptDirs)
		rates := UniformRates(3)
		rates[FaultNoSpace] = 10
		f := NewFaulty(o, &SeededPolicy{Seed: seed, Rates: rates})
		faultScript(f, NewNative(1))
		calls, faults := f.Counters()
		return f.Log(), calls, faults
	}

	var filled bool
	for seed := int64(1); seed <= 32 && !filled; seed++ {
		log1, calls1, faults1 := run(seed)
		log2, calls2, faults2 := run(seed)
		if !reflect.DeepEqual(log1, log2) || calls1 != calls2 || faults1 != faults2 {
			t.Fatalf("seed %d: schedules diverge:\n%v\nvs\n%v", seed, log1, log2)
		}
		filled = faults1[FaultNoSpace] > 0
	}
	if !filled {
		t.Fatal("no seed in 1..32 filled the disk at rate 1-in-10; rate table is dead")
	}
}

// TestModelCapacityAccounting pins the space-accounting model: entries
// cost SpaceEntryCost, contents cost their bytes (counted once per
// inode regardless of hard links), over-capacity writes fail
// ENOSPC-style without model faults, and Delete credits space back.
func TestModelCapacityAccounting(t *testing.T) {
	mm := machine.New(machine.Options{MaxSteps: 10000})
	fs := NewModel(mm, []string{"spool", "box"})
	fs.SetCapacity(2*SpaceEntryCost + 8)
	res := mm.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		fd, ok := fs.Create(mt, "spool", "a")
		if !ok {
			mt.Failf("create under capacity failed")
		}
		if !fs.Append(mt, fd, []byte("12345678")) {
			mt.Failf("append under capacity failed")
		}
		// Full to the byte: entry(16) + 8 bytes + link entry(16) = 40.
		if !fs.Link(mt, "spool", "a", "box", "a") {
			mt.Failf("link under capacity failed")
		}
		if got := fs.SpaceUsed(); got != 2*SpaceEntryCost+8 {
			mt.Failf("SpaceUsed=%d, want %d (hard-linked bytes must count once)", got, 2*SpaceEntryCost+8)
		}
		// One more byte or entry does not fit.
		if fs.Append(mt, fd, []byte("x")) {
			mt.Failf("append over capacity succeeded")
		}
		if _, ok := fs.Create(mt, "spool", "b"); ok {
			mt.Failf("create over capacity succeeded")
		}
		fs.Close(mt, fd)

		// Deleting one link frees its entry cost; the bytes stay charged
		// while the other link lives.
		if !fs.Delete(mt, "spool", "a") {
			mt.Failf("delete failed")
		}
		if got := fs.SpaceUsed(); got != SpaceEntryCost+8 {
			mt.Failf("SpaceUsed=%d after delete, want %d", got, SpaceEntryCost+8)
		}
		if fd2, ok := fs.Create(mt, "spool", "c"); !ok {
			mt.Failf("create failed after space was freed")
		} else {
			fs.Close(mt, fd2)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}
