package gfs

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// ScrubReport summarizes one scrub pass over a store.
type ScrubReport struct {
	// Checked counts file instances verified (per replica on a mirror).
	Checked int
	// Corrupt counts damaged envelopes found this pass.
	Corrupt int
	// Unsealed counts well-formed files without a seal (in-progress or
	// crash-abandoned writes; not corruption).
	Unsealed int
	// Healed counts files rewritten from a good redundant copy.
	Healed int
	// Bad lists "dir/name" paths still damaged after the pass (corrupt
	// with no good copy to heal from, or healing disabled/failed).
	Bad []string
}

// String renders the report on one line.
func (r ScrubReport) String() string {
	return fmt.Sprintf("checked=%d corrupt=%d unsealed=%d healed=%d bad=%d",
		r.Checked, r.Corrupt, r.Unsealed, r.Healed, len(r.Bad))
}

// Clean reports whether the pass left no damage behind.
func (r ScrubReport) Clean() bool { return len(r.Bad) == 0 }

// Scrubber is implemented by stores that can verify (and, given
// redundancy, repair) their integrity: Checksummed detects, Mirrored
// detects and heals. mailboat.Recover scrubs at boot, and mailboatd
// exposes scrubbing as a background loop and an admin endpoint.
type Scrubber interface {
	Scrub(t T, heal bool) ScrubReport
}

// AsScrubber unwraps middleware layers (via Inner) until it finds a
// Scrubber, returning nil if the stack has none.
func AsScrubber(sys System) Scrubber {
	for sys != nil {
		if s, ok := sys.(Scrubber); ok {
			return s
		}
		in, ok := sys.(innerer)
		if !ok {
			return nil
		}
		sys = in.Inner()
	}
	return nil
}

// IntegrityMetrics is the integrity layer's slice of the observability
// surface. All methods tolerate a nil receiver, so checker runs stay
// metric-free.
type IntegrityMetrics struct {
	detectedC *obs.Counter
	healedC   *obs.Counter
	scrubSec  *obs.Histogram
}

// NewIntegrityMetrics registers gfs_integrity_detected_total,
// gfs_integrity_healed_total and gfs_integrity_scrub_seconds in r.
func NewIntegrityMetrics(r *obs.Registry) *IntegrityMetrics {
	return &IntegrityMetrics{
		detectedC: r.Counter("gfs_integrity_detected_total",
			"Checksum-envelope integrity failures detected."),
		healedC: r.Counter("gfs_integrity_healed_total",
			"Files healed from a redundant replica after an integrity failure."),
		scrubSec: r.Histogram("gfs_integrity_scrub_seconds",
			"Scrub pass duration.", obs.DefLatencyBuckets),
	}
}

func (m *IntegrityMetrics) detected() {
	if m == nil {
		return
	}
	m.detectedC.Inc()
}

func (m *IntegrityMetrics) healed() {
	if m == nil {
		return
	}
	m.healedC.Inc()
}

// ScrubDone records one scrub pass's wall-clock duration.
func (m *IntegrityMetrics) ScrubDone(d time.Duration) {
	if m == nil {
		return
	}
	m.scrubSec.Observe(d.Seconds())
}
