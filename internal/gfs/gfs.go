// Package gfs is the Goose file-system layer of §6.2: a small,
// POSIX-flavoured API — directories with a fixed layout, directory
// entries, file descriptors, and inodes — with two interchangeable
// backends:
//
//   - Model: a modeled file system attached to a machine.Machine, where
//     every operation is one atomic step and a crash keeps file data but
//     loses open file descriptors. This backend is what the model
//     checker explores; its capabilities correspond to the paper's four
//     file-system capability forms (dir ↦ names, (dir,name) ↦ inode,
//     fd ↦ₙ (inode, mode), inode ↦ bytes).
//
//   - OS: the real operating system's file system, accessed relative to
//     cached per-directory handles (os.Root), reproducing the Goose
//     library's "lookups relative to a cached directory fd" optimization
//     that §9.3 credits for part of Mailboat's speedup.
//
// A third, composable layer — Faulty — wraps either backend and
// deterministically injects transient faults (failed creates, links,
// deletes and appends, short reads, failed fsyncs, optional latency)
// from a seeded schedule or from the model checker's chooser, so the
// code above can be checked and soak-tested under combined crash +
// transient-fault interleavings.
//
// Code written against System (such as internal/mailboat) runs
// unchanged on both backends, which is this reproduction's analog of
// Goose source compiling with the Go toolchain while also having a model
// in Perennial.
package gfs

// T is the executing thread's handle: a *machine.T under the model
// backend, or a *Native for a real goroutine under the OS backend.
type T interface {
	// RandUint64 returns a nondeterministically chosen value in
	// [0, bound) — chooser-driven under the model, PRNG-driven natively.
	RandUint64(bound uint64) uint64
}

// FD is an open file descriptor, opaque to callers. Model FDs die at a
// crash; OS FDs die with the process, which is the same thing.
type FD any

// Lock is a mutual-exclusion lock: a modeled machine.Lock or a native
// sync.Mutex.
type Lock interface {
	Acquire(t T)
	Release(t T)
}

// MaxAppend is the largest single Append the model allows, matching the
// 4 KiB chunks Mailboat writes (§8.3); larger appends would not be
// atomic on a real file system.
const MaxAppend = 4096

// ReadChunk is the chunk size Pickup reads messages in; the §9.5
// infinite-loop bug involved messages larger than one chunk.
const ReadChunk = 512

// System is the Goose world: lock allocation plus the file-system API.
// All operations are atomic with respect to other threads (§6.2).
type System interface {
	// NewLock allocates a lock (volatile state).
	NewLock(t T, name string) Lock

	// Create atomically creates name in dir, failing (false) if it
	// already exists, and returns an append-mode descriptor. This is the
	// create(fname) of §8.3 whose failure/success drives spool-name
	// allocation.
	Create(t T, dir, name string) (FD, bool)

	// Open opens an existing file for reading; false if absent.
	Open(t T, dir, name string) (FD, bool)

	// Append appends data (at most MaxAppend bytes) to an append-mode
	// descriptor. Each call is one atomic durable write.
	Append(t T, fd FD, data []byte) bool

	// Close releases a descriptor.
	Close(t T, fd FD)

	// ReadAt reads up to n bytes at offset off from a read-mode
	// descriptor, returning fewer at end of file.
	ReadAt(t T, fd FD, off, n uint64) []byte

	// Size returns the file's current length.
	Size(t T, fd FD) uint64

	// Sync makes the file's current contents durable, reporting whether
	// it succeeded. On the default (strict) model and on process-crash
	// semantics it is a no-op; on the buffered model (deferred
	// durability, the §6.2 extension the paper leaves to future work)
	// unsynced appends are lost at a crash. A false return (a failed
	// fsync under the OS backend, or an injected fault under Faulty)
	// means the contents must NOT be treated as durable — and, per
	// fsyncgate semantics, must not be re-synced on the same
	// descriptor: abandon the file and start over.
	Sync(t T, fd FD) bool

	// SyncDir makes dir's entries durable, reporting whether it
	// succeeded. On the strict and buffered models directory operations
	// are durable the moment they happen, so SyncDir is a no-op; on the
	// writeback model (NewWritebackModel) creates, links, and deletes
	// live in a volatile cache until the directory is synced, and an
	// un-synced suffix of them is lost at a crash. On the OS backend it
	// fsyncs the directory, which is what ext4-style file systems
	// require before a rename/link/unlink may be assumed durable. A
	// false return (a failed fsync, or an injected FaultSync under
	// Faulty) means the directory's pending operations must NOT be
	// treated as durable: a failed SyncDir is never a barrier. Unlike a
	// failed file Sync (whose dirty data pages may be silently dropped —
	// fsyncgate), a failed directory sync may be retried: metadata goes
	// through the journal, and a later successful SyncDir of the same
	// directory is a real barrier.
	SyncDir(t T, dir string) bool

	// Delete unlinks name from dir; false if absent.
	Delete(t T, dir, name string) bool

	// Link atomically creates newName in newDir referring to oldName's
	// inode, failing (false) if newName exists. Deliver uses it to
	// publish spooled messages atomically (§8.2).
	Link(t T, oldDir, oldName, newDir, newName string) bool

	// List returns the names in dir, sorted.
	List(t T, dir string) []string
}
