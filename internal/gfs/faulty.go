package gfs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/machine"
	"repro/internal/trace"
)

// FaultOp enumerates the operation classes Faulty can inject transient
// faults into — the taxonomy of the ISSUE's fault model: failed
// creates/links/deletes/appends (EIO/ENOSPC-style), short reads, and
// failed fsyncs. Open/Close/Size/List are deliberately not faultable:
// their failures are either already modeled (absent files) or not
// transient in any interesting way.
type FaultOp int

const (
	// FaultCreate fails a Create (the file is not created).
	FaultCreate FaultOp = iota
	// FaultAppend fails an Append (no data is appended).
	FaultAppend
	// FaultReadShort truncates a ReadAt's result (at least one byte is
	// still returned when the underlying read returned any, so a short
	// read is never confused with end-of-file — POSIX read semantics).
	FaultReadShort
	// FaultSync fails a Sync (the data must not be treated as durable).
	FaultSync
	// FaultDelete fails a Delete (the entry remains).
	FaultDelete
	// FaultLink fails a Link (the new entry is not created).
	FaultLink
	// FaultCorrupt is the silent-corruption class: an injection durably
	// mangles one file's bytes in place (a bit flip or a truncation) via
	// the backend's Corrupter interface, and the triggering operation
	// then proceeds normally — nothing fails, which is exactly what makes
	// the fault "silent". The mutation edits durable state, not the
	// in-flight call, so it survives crashes until something rewrites the
	// file. The decision point is Open: each open of a file is one chance
	// for its bytes to have rotted. Like FaultFailStop it is opted into
	// explicitly (UniformRates leaves it at 0, nil-Eligible chooser
	// policies skip it): undetected corruption violates the strict
	// storage model, so only scenarios with an integrity layer
	// (Checksummed) should enable it.
	FaultCorrupt
	// FaultFailStop is the permanent fail-stop class: once injected, the
	// wrapped backend is dead — every subsequent operation fails without
	// touching it, reads and listings included, until Revive. It models
	// a replica (disk) failing permanently, the failure mode of the
	// paper's replicated disk (Figure 1), as opposed to the six
	// transient classes above. UniformRates deliberately leaves its rate
	// at 0: permanent death must be opted into explicitly.
	FaultFailStop
	// FaultNoSpace is the disk-full class: a *durable* latch like
	// FaultFailStop, but scoped to space — once injected, every write
	// that consumes space (Create, Append, Link) fails ENOSPC-style
	// without touching the inner backend, while reads, listings, opens
	// and deletes keep working. The latch clears when space is freed: a
	// successful Delete through this layer, or the operator surface
	// (FreeSpace). Like the other durable class it is opted into
	// explicitly (UniformRates leaves it at 0, nil-Eligible chooser
	// policies skip it) and enumerated under its own "nospace" tag.
	FaultNoSpace
	// FaultNoFiles is the fd-exhaustion class: Open and Create fail
	// transiently (EMFILE/ENFILE-style — the table was full *right then*),
	// with no durable effect. Opt-in like the other post-v1 classes so
	// existing seeded schedules and scenario spaces stay byte-stable.
	FaultNoFiles
	// NumFaultOps is the number of fault classes.
	NumFaultOps
)

// String names the fault class.
func (op FaultOp) String() string {
	switch op {
	case FaultCreate:
		return "create"
	case FaultAppend:
		return "append"
	case FaultReadShort:
		return "read-short"
	case FaultSync:
		return "sync"
	case FaultDelete:
		return "delete"
	case FaultLink:
		return "link"
	case FaultCorrupt:
		return "corrupt"
	case FaultFailStop:
		return "fail-stop"
	case FaultNoSpace:
		return "no-space"
	case FaultNoFiles:
		return "no-files"
	default:
		return fmt.Sprintf("FaultOp(%d)", int(op))
	}
}

// CorruptMode selects how CorruptFile mangles the target file.
type CorruptMode int

const (
	// CorruptFlip flips the low bit of the file's middle byte.
	CorruptFlip CorruptMode = iota
	// CorruptTruncate silently drops the file's last byte.
	CorruptTruncate
	// NumCorruptModes is the number of corruption modes.
	NumCorruptModes
)

// String names the corruption mode.
func (m CorruptMode) String() string {
	switch m {
	case CorruptFlip:
		return "bit-flip"
	case CorruptTruncate:
		return "truncate"
	default:
		return fmt.Sprintf("CorruptMode(%d)", int(m))
	}
}

// Corrupter is implemented by backends whose durable bytes FaultCorrupt
// can mangle in place (Model and OS). CorruptFile mutates the named
// file's stored bytes according to mode and reports whether anything
// was actually mutated (absent and empty files have nothing to rot).
// The mutation is durable — it edits the backing store, not any open
// descriptor — and silent: no subsequent operation fails until an
// integrity layer checks the bytes.
type Corrupter interface {
	CorruptFile(t T, dir, name string, mode CorruptMode) bool
}

// AsCorrupter unwraps middleware layers (via Inner) until it finds a
// Corrupter, returning nil if the stack bottoms out without one.
func AsCorrupter(sys System) Corrupter {
	for sys != nil {
		if c, ok := sys.(Corrupter); ok {
			return c
		}
		in, ok := sys.(innerer)
		if !ok {
			return nil
		}
		sys = in.Inner()
	}
	return nil
}

// FaultEvent is one injected fault, recorded in the replayable log.
// Index is the per-class invocation counter at injection time, so an
// event identifies exactly which call faulted regardless of how calls
// of different classes interleaved.
type FaultEvent struct {
	Op     FaultOp
	Index  uint64
	Detail string
}

// String renders the event for logs and debugging.
func (e FaultEvent) String() string {
	return fmt.Sprintf("%s#%d %s", e.Op, e.Index, e.Detail)
}

// Policy decides, for the index-th invocation of an operation class,
// whether to inject a fault. Implementations must be safe for
// concurrent use when the wrapped backend is.
type Policy interface {
	Decide(t T, op FaultOp, index uint64) bool
}

// splitmix64 is the SplitMix64 mixer — a deterministic, well-scrambled
// hash used so fault decisions are a pure function of (seed, class,
// index) and therefore independent of goroutine interleaving.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// SeededPolicy injects faults deterministically from a seed: the
// index-th call of class op faults iff a hash of (Seed, op, index)
// lands in the 1-in-Rates[op] window. Decisions are pure functions of
// the seed, so the same seed reproduces the same fault schedule —
// bit-for-bit — on every run, which is what makes production fault
// drills replayable.
type SeededPolicy struct {
	// Seed selects the schedule.
	Seed int64
	// Rates[op] = N means roughly 1 in N calls of that class fault;
	// 0 disables the class.
	Rates [NumFaultOps]uint64

	// MaxFaults, when nonzero, caps the total number of injected
	// faults. The cap is a global counter, so with concurrent callers
	// *which* calls land under the cap can vary — use 0 (unlimited) when
	// bit-for-bit log reproducibility matters.
	MaxFaults uint64

	// MaxPerClass, when nonzero for a class, caps that class's injected
	// faults independently of MaxFaults (same concurrency caveat). The
	// natural use is bounding FaultFailStop to a single replica death
	// while transient classes keep firing.
	MaxPerClass [NumFaultOps]uint64

	mu       sync.Mutex
	injected uint64
	perClass [NumFaultOps]uint64
}

// optInClass reports whether a fault class must be opted into
// explicitly — nil-Eligible chooser policies, nil-Ops AlwaysPolicy and
// UniformRates all skip these. The durable latches (fail-stop,
// no-space), silent corruption, and fd exhaustion change what a
// scenario is *about*; a uniform transient drill should degrade the
// store, not kill it, fill it, or rot its bytes.
func optInClass(op FaultOp) bool {
	return op == FaultFailStop || op == FaultCorrupt || op == FaultNoSpace || op == FaultNoFiles
}

// UniformRates returns a Rates array failing every transient class 1 in
// n calls. FaultFailStop, FaultCorrupt, FaultNoSpace and FaultNoFiles
// stay at 0: the opt-in classes (see optInClass) are enabled per class,
// never implied.
func UniformRates(n uint64) [NumFaultOps]uint64 {
	var r [NumFaultOps]uint64
	for op := FaultOp(0); op < NumFaultOps; op++ {
		if !optInClass(op) {
			r[op] = n
		}
	}
	return r
}

// Decide implements Policy.
func (p *SeededPolicy) Decide(_ T, op FaultOp, index uint64) bool {
	rate := p.Rates[op]
	if rate == 0 {
		return false
	}
	h := splitmix64(uint64(p.Seed) ^ splitmix64(uint64(op)+1) ^ splitmix64(index))
	if h%rate != 0 {
		return false
	}
	if p.MaxFaults > 0 || p.MaxPerClass[op] > 0 {
		p.mu.Lock()
		defer p.mu.Unlock()
		if p.MaxFaults > 0 && p.injected >= p.MaxFaults {
			return false
		}
		if p.MaxPerClass[op] > 0 && p.perClass[op] >= p.MaxPerClass[op] {
			return false
		}
		p.injected++
		p.perClass[op]++
	}
	return true
}

// ChooserPolicy resolves fault decisions through the modeled machine's
// Chooser (tag "fault" for transient classes, "failstop" for permanent
// replica death, "corrupt" for silent corruption), so the model checker
// enumerates faults exactly like it enumerates schedules and crash
// points. Budget bounds the injected faults per execution: once spent,
// no further choices are consumed, keeping the DFS space finite even
// though the implementation retries faulted operations. Eligible, when
// non-nil, restricts which classes branch; nil means all *transient*
// classes — FaultFailStop and FaultCorrupt only branch when listed
// explicitly, consistent with UniformRates: permanent death and silent
// rot are opted into, never implied. PerClass, when non-nil,
// caps individual classes within the overall Budget — e.g. at most one
// FaultFailStop so the search covers "one replica dies" without ever
// killing both.
//
// A ChooserPolicy is per-execution state; build a fresh one in the
// scenario's Setup. Sharing one instance between the Faulty layers of
// two mirror replicas makes the budgets span both replicas, which is
// how a scenario says "at most one replica death total".
type ChooserPolicy struct {
	Budget   int
	Eligible map[FaultOp]bool
	PerClass map[FaultOp]int
	used     int
	perClass [NumFaultOps]int
}

// Decide implements Policy. With a non-model thread it never faults.
func (p *ChooserPolicy) Decide(t T, op FaultOp, index uint64) bool {
	mt, ok := t.(*machine.T)
	if !ok || p.used >= p.Budget {
		return false
	}
	if p.Eligible == nil {
		if optInClass(op) {
			return false
		}
	} else if !p.Eligible[op] {
		return false
	}
	if p.PerClass != nil {
		if cap, capped := p.PerClass[op]; capped && p.perClass[op] >= cap {
			return false
		}
	}
	tag := "fault"
	switch op {
	case FaultFailStop:
		tag = "failstop"
	case FaultCorrupt:
		tag = "corrupt"
	case FaultNoSpace:
		tag = "nospace"
	}
	if mt.Choose(2, tag) == 1 {
		p.used++
		p.perClass[op]++
		return true
	}
	return false
}

// NeverPolicy injects nothing; Faulty wrapped with it is behaviorally
// identical to its inner backend (useful for differential tests).
type NeverPolicy struct{}

// Decide implements Policy.
func (NeverPolicy) Decide(T, FaultOp, uint64) bool { return false }

// AlwaysPolicy faults every eligible call of the classes in Ops (all
// *transient* classes when Ops is nil — the opt-in classes, as
// everywhere, must be listed explicitly) — for tests exercising retry
// exhaustion.
type AlwaysPolicy struct{ Ops map[FaultOp]bool }

// Decide implements Policy.
func (p AlwaysPolicy) Decide(_ T, op FaultOp, _ uint64) bool {
	if p.Ops == nil {
		return !optInClass(op)
	}
	return p.Ops[op]
}

// Faulty is a fault-injecting System middleware: it wraps either
// backend (Model or OS) and, per operation, asks its Policy whether to
// inject a transient fault. A fault means the operation fails *without
// touching the inner backend* (except short reads, which truncate the
// inner result), so the fault semantics are exactly "the syscall
// returned an error and had no effect" — the strongest transient-fault
// model the POSIX API admits. Per-class invocation and fault counters
// plus a replayable fault log make any seeded failure reproducible.
type Faulty struct {
	inner  System
	policy Policy

	// Latency, when nonzero together with LatencyEveryN, makes every
	// N-th call of each class sleep before executing — cheap tail-latency
	// injection for the OS backend. Never applied under the model (real
	// sleeps would only slow the checker, not change its schedules).
	Latency       time.Duration
	LatencyEveryN uint64

	// Metrics, when non-nil, counts injected faults per class into the
	// shared file-system metrics (gfs_faults_injected_total). The
	// replayable log above stays authoritative for drills; the counters
	// exist for scraping.
	Metrics *FSMetrics

	mu     sync.Mutex
	calls  [NumFaultOps]uint64
	faults [NumFaultOps]uint64
	log    []FaultEvent

	// failStopped is the permanent-death latch: once set (by the policy
	// injecting FaultFailStop, or by FailStopNow), every operation fails
	// without reaching the inner backend until Revive. calls[FaultFailStop]
	// counts fail-stop *decision points* — operations that consulted the
	// policy while alive — so seeded fail-stop schedules are a pure
	// function of (seed, index) exactly like the transient classes.
	failStopped bool

	// noSpace is the disk-full latch: once set (by the policy injecting
	// FaultNoSpace, or by NoSpaceNow), every space-consuming write
	// (Create, Append, Link) fails without reaching the inner backend
	// until space is freed — a successful Delete through this layer, or
	// FreeSpace. While latched, writes do NOT consult the policy: like
	// the fail-stop latch, a durable class charges the budget once at
	// injection and never again, so a latch surviving a crash is not
	// double-counted on replay.
	noSpace bool
}

// NewFaulty wraps inner with the given fault policy.
func NewFaulty(inner System, policy Policy) *Faulty {
	return &Faulty{inner: inner, policy: policy}
}

// Inner returns the wrapped backend (e.g. to reach Model.PeekDir or
// OS.CloseAll through the middleware).
func (f *Faulty) Inner() System { return f.inner }

// Counters returns per-class (invocations, injected faults).
func (f *Faulty) Counters() (calls, faults [NumFaultOps]uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls, f.faults
}

// Log returns a copy of the fault log in injection order.
func (f *Faulty) Log() []FaultEvent {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FaultEvent{}, f.log...)
}

// ResetLog clears the log and counters (e.g. between soak rounds).
func (f *Faulty) ResetLog() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.log = nil
	f.calls = [NumFaultOps]uint64{}
	f.faults = [NumFaultOps]uint64{}
}

// FailStopped reports whether the backend is latched dead. Mirrored
// uses it (via the FailStopper interface) to tell "replica died" apart
// from ordinary operation failures.
func (f *Faulty) FailStopped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.failStopped
}

// FailStopNow latches the backend dead immediately, bypassing the
// policy — the operational kill switch (drills, soak tests, demos).
// It records a fail-stop event like a policy-injected death.
func (f *Faulty) FailStopNow(detail string) {
	f.mu.Lock()
	already := f.failStopped
	f.failStopped = true
	if !already {
		f.faults[FaultFailStop]++
		f.log = append(f.log, FaultEvent{Op: FaultFailStop, Index: f.calls[FaultFailStop], Detail: detail})
	}
	f.mu.Unlock()
	if !already {
		f.Metrics.FaultInjected(FaultFailStop)
	}
}

// Revive clears the fail-stop latch: the inner backend is reachable
// again, with whatever (possibly stale) state it holds. This models
// plugging in a replacement disk — Mirrored.ReplaceReplica revives the
// layer and resilvering makes the state trustworthy. Revive does not
// refund any policy budget: a ChooserPolicy that killed once stays
// spent, which is what bounds checker scenarios to one death.
func (f *Faulty) Revive() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failStopped = false
}

// NoSpace reports whether the backend is latched full. mailboat uses it
// (via an interface assertion, like FailStopped) to fail fast instead
// of burning its retry budget against a full disk, and the shed policy
// uses it as its modeled-space signal.
func (f *Faulty) NoSpace() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.noSpace
}

// NoSpaceNow latches the backend full immediately, bypassing the
// policy — the operational fill switch for drills and soak tests. It
// records a no-space event like a policy-injected fill.
func (f *Faulty) NoSpaceNow(detail string) {
	f.mu.Lock()
	already := f.noSpace
	f.noSpace = true
	if !already {
		f.faults[FaultNoSpace]++
		f.log = append(f.log, FaultEvent{Op: FaultNoSpace, Index: f.calls[FaultNoSpace], Detail: detail})
	}
	f.mu.Unlock()
	if !already {
		f.Metrics.FaultInjected(FaultNoSpace)
	}
}

// FreeSpace clears the no-space latch without a delete — the operator
// freed space elsewhere. Like Revive it refunds no policy budget: a
// ChooserPolicy that filled the disk once stays spent, which is what
// bounds checker scenarios to one fill.
func (f *Faulty) FreeSpace() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.noSpace = false
}

// spaceFreed clears the latch after an operation that released space
// (a successful Delete): the disk is no longer full. Deterministic —
// no choice point — so it costs the checker nothing.
func (f *Faulty) spaceFreed() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.noSpace = false
}

// noSpaceGate is the per-write disk-full gate, consulted by the
// space-consuming operations (Create, Append, Link) after the
// fail-stop gate. It reports true when the write must fail
// ENOSPC-style: either the latch is already set (no policy consult, no
// index allocated — see the noSpace field's double-count note), or
// this write is the policy-chosen moment the disk fills. Each unlatched
// write is one decision point with its own index, so seeded schedules
// replay and the checker enumerates "the disk fills at write i" for
// every i under the "nospace" tag.
func (f *Faulty) noSpaceGate(t T, detail string) bool {
	f.mu.Lock()
	if f.noSpace {
		f.mu.Unlock()
		if mt, ok := t.(*machine.T); ok {
			mt.Step("fs.enospc")
		}
		return true
	}
	idx := f.calls[FaultNoSpace]
	f.calls[FaultNoSpace]++
	f.mu.Unlock()

	if !f.policy.Decide(t, FaultNoSpace, idx) {
		return false
	}
	if mt, ok := t.(*machine.T); ok {
		mt.Step("fs.nospace")
		mt.Tracef("fs.nospace #%d %s", idx, detail)
	}
	f.mu.Lock()
	f.noSpace = true
	f.faults[FaultNoSpace]++
	f.log = append(f.log, FaultEvent{Op: FaultNoSpace, Index: idx, Detail: detail})
	f.mu.Unlock()
	f.Metrics.FaultInjected(FaultNoSpace)
	trace.Event(t, "fault injected: %s %s", FaultNoSpace, detail)
	return true
}

// failStop is the per-operation fail-stop gate, consulted by every
// operation before anything else (including the classes that are never
// transiently faulted — a dead disk fails reads, listings and stats
// too). It reports true when the operation must fail: either the latch
// is already set, or this operation is the policy-chosen point of
// death. Each alive call is one decision point with its own index, so
// seeded schedules replay and the model checker enumerates "the replica
// dies at step i" for every i.
func (f *Faulty) failStop(t T, detail string) bool {
	f.mu.Lock()
	if f.failStopped {
		f.mu.Unlock()
		if mt, ok := t.(*machine.T); ok {
			mt.Step("fs.dead")
		}
		return true
	}
	idx := f.calls[FaultFailStop]
	f.calls[FaultFailStop]++
	f.mu.Unlock()

	if !f.policy.Decide(t, FaultFailStop, idx) {
		return false
	}
	if mt, ok := t.(*machine.T); ok {
		mt.Step("fs.failstop")
		mt.Tracef("fs.failstop #%d %s", idx, detail)
	}
	f.mu.Lock()
	f.failStopped = true
	f.faults[FaultFailStop]++
	f.log = append(f.log, FaultEvent{Op: FaultFailStop, Index: idx, Detail: detail})
	f.mu.Unlock()
	f.Metrics.FaultInjected(FaultFailStop)
	return true
}

// begin counts the call, applies optional latency, and decides the
// fault. On injection it records the event and, under the model, makes
// the failed operation one atomic step (like a real faulted syscall).
func (f *Faulty) begin(t T, op FaultOp, detail string) bool {
	f.mu.Lock()
	idx := f.calls[op]
	f.calls[op]++
	f.mu.Unlock()

	_, isModel := t.(*machine.T)
	if !isModel && f.Latency > 0 && f.LatencyEveryN > 0 && (idx+1)%f.LatencyEveryN == 0 {
		time.Sleep(f.Latency)
	}
	if !f.policy.Decide(t, op, idx) {
		return false
	}
	if mt, ok := t.(*machine.T); ok {
		mt.Step("fs.fault")
		mt.Tracef("fs.fault %s#%d %s", op, idx, detail)
	}
	f.mu.Lock()
	f.faults[op]++
	f.log = append(f.log, FaultEvent{Op: op, Index: idx, Detail: detail})
	f.mu.Unlock()
	f.Metrics.FaultInjected(op)
	trace.Event(t, "fault injected: %s %s", op, detail)
	return true
}

// NewLock implements System (never faulted: locks are volatile memory).
func (f *Faulty) NewLock(t T, name string) Lock { return f.inner.NewLock(t, name) }

// Create implements System. It passes three fault gates: the fail-stop
// latch, the no-space latch (creating an entry consumes space), and the
// transient fd-exhaustion class, before the ordinary FaultCreate class.
func (f *Faulty) Create(t T, dir, name string) (FD, bool) {
	if f.failStop(t, "create "+dir+"/"+name) {
		return nil, false
	}
	if f.noSpaceGate(t, "create "+dir+"/"+name) {
		return nil, false
	}
	if f.begin(t, FaultNoFiles, "create "+dir+"/"+name) {
		return nil, false
	}
	if f.begin(t, FaultCreate, dir+"/"+name) {
		return nil, false
	}
	return f.inner.Create(t, dir, name)
}

// Open implements System. A fail-stopped backend fails every Open;
// FaultNoFiles fails it transiently (the descriptor table was full
// right then — retry later); absent-file failure is already part of
// the API. Open is also the FaultCorrupt decision point: each open of
// a file is one chance for its stored bytes to have silently rotted
// before the (still successful) open observes them.
func (f *Faulty) Open(t T, dir, name string) (FD, bool) {
	if f.failStop(t, "open "+dir+"/"+name) {
		return nil, false
	}
	if f.begin(t, FaultNoFiles, "open "+dir+"/"+name) {
		return nil, false
	}
	f.corrupt(t, dir, name)
	return f.inner.Open(t, dir, name)
}

// corrupt counts the FaultCorrupt decision point and, when the policy
// injects, durably mangles the named file via the inner backend's
// Corrupter. The corruption mode is one more enumerable choice under
// the model (tag "corrupt-mode") and a pure function of the call index
// otherwise, so seeded schedules stay bit-for-bit replayable. The event
// is logged only when bytes actually changed; the decision point is
// counted regardless, keeping indices schedule-independent.
func (f *Faulty) corrupt(t T, dir, name string) {
	c := AsCorrupter(f.inner)
	if c == nil {
		return
	}
	f.mu.Lock()
	idx := f.calls[FaultCorrupt]
	f.calls[FaultCorrupt]++
	f.mu.Unlock()
	if !f.policy.Decide(t, FaultCorrupt, idx) {
		return
	}
	mode := CorruptMode(splitmix64(idx) % uint64(NumCorruptModes))
	if mt, ok := t.(*machine.T); ok {
		mode = CorruptMode(mt.Choose(int(NumCorruptModes), "corrupt-mode"))
	}
	if !c.CorruptFile(t, dir, name, mode) {
		return
	}
	f.mu.Lock()
	f.faults[FaultCorrupt]++
	f.log = append(f.log, FaultEvent{Op: FaultCorrupt, Index: idx, Detail: mode.String() + " " + dir + "/" + name})
	f.mu.Unlock()
	f.Metrics.FaultInjected(FaultCorrupt)
}

// Append implements System. Appending consumes space, so it passes the
// no-space gate before the transient FaultAppend class.
func (f *Faulty) Append(t T, fd FD, data []byte) bool {
	if f.failStop(t, "append") {
		return false
	}
	if f.noSpaceGate(t, fmt.Sprintf("append %d bytes", len(data))) {
		return false
	}
	if f.begin(t, FaultAppend, fmt.Sprintf("%d bytes", len(data))) {
		return false
	}
	return f.inner.Append(t, fd, data)
}

// Close implements System (never faulted: close of a valid fd cannot
// meaningfully fail transiently).
func (f *Faulty) Close(t T, fd FD) { f.inner.Close(t, fd) }

// ReadAt implements System. A fault truncates the read to roughly half
// its actual length, but never to zero bytes (zero means end-of-file in
// this API, as in POSIX), so robust callers that advance by the
// returned length still terminate correctly.
// A fail-stopped backend returns no data at all: callers that treat an
// empty read as end-of-file are exactly why Mirrored checks the latch
// (FailStopped) rather than inferring death from results.
func (f *Faulty) ReadAt(t T, fd FD, off, n uint64) []byte {
	if f.failStop(t, fmt.Sprintf("read off %d", off)) {
		return nil
	}
	data := f.inner.ReadAt(t, fd, off, n)
	if len(data) < 2 {
		return data
	}
	if f.begin(t, FaultReadShort, fmt.Sprintf("off %d: %d -> %d bytes", off, len(data), (len(data)+1)/2)) {
		return data[:(len(data)+1)/2]
	}
	return data
}

// Size implements System (no transient class). A fail-stopped backend
// reports zero; callers distinguish "dead" from "empty" via FailStopped.
func (f *Faulty) Size(t T, fd FD) uint64 {
	if f.failStop(t, "size") {
		return 0
	}
	return f.inner.Size(t, fd)
}

// Sync implements System.
func (f *Faulty) Sync(t T, fd FD) bool {
	if f.failStop(t, "sync") {
		return false
	}
	if f.begin(t, FaultSync, "") {
		return false
	}
	return f.inner.Sync(t, fd)
}

// SyncDir implements System. Directory syncs share FaultSync with file
// syncs: both are durability barriers, and an injected failure means
// the barrier did not happen — the caller must not ack anything that
// depended on it (though, unlike a file Sync, it may retry).
func (f *Faulty) SyncDir(t T, dir string) bool {
	if f.failStop(t, "syncdir "+dir) {
		return false
	}
	if f.begin(t, FaultSync, dir) {
		return false
	}
	return f.inner.SyncDir(t, dir)
}

// Delete implements System. Deletes are never blocked by the no-space
// latch — removing data is how a full disk recovers — and a successful
// delete releases space, clearing the latch.
func (f *Faulty) Delete(t T, dir, name string) bool {
	if f.failStop(t, "delete "+dir+"/"+name) {
		return false
	}
	if f.begin(t, FaultDelete, dir+"/"+name) {
		return false
	}
	ok := f.inner.Delete(t, dir, name)
	if ok {
		f.spaceFreed()
	}
	return ok
}

// Link implements System. A new directory entry consumes space, so
// Link passes the no-space gate.
func (f *Faulty) Link(t T, oldDir, oldName, newDir, newName string) bool {
	if f.failStop(t, "link "+oldDir+"/"+oldName+" -> "+newDir+"/"+newName) {
		return false
	}
	if f.noSpaceGate(t, "link "+oldDir+"/"+oldName+" -> "+newDir+"/"+newName) {
		return false
	}
	if f.begin(t, FaultLink, oldDir+"/"+oldName+" -> "+newDir+"/"+newName) {
		return false
	}
	return f.inner.Link(t, oldDir, oldName, newDir, newName)
}

// List implements System (no transient class; the model keeps it
// atomic). A fail-stopped backend lists nothing.
func (f *Faulty) List(t T, dir string) []string {
	if f.failStop(t, "list "+dir) {
		return nil
	}
	return f.inner.List(t, dir)
}
