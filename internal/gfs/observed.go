package gfs

import (
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// fsOps enumerates the System operations for metric labels.
var fsOps = []string{
	"create", "open", "append", "close", "readat",
	"size", "sync", "syncdir", "delete", "link", "list",
}

// FSMetrics is the file-system layer's slice of the observability
// surface: per-op-class call counters and latency histograms, plus
// per-class injected-fault counters fed by Faulty. One FSMetrics is
// shared by the whole backend chain (Observed counts every call,
// whether or not a Faulty layer below it injects).
type FSMetrics struct {
	calls   map[string]*obs.Counter
	latency map[string]*obs.Histogram
	faults  [NumFaultOps]*obs.Counter

	// gfs_sync_* family: durability-barrier accounting. Issued/failed
	// counters are fed by Observed (so drills count what the library
	// actually asked for, including barriers that an injected FaultSync
	// refused); the dropped counters are fed by Model.Crash via
	// SetMetrics, measuring what a crash actually cost in un-synced
	// state during modeled drills.
	syncIssued     map[string]*obs.Counter
	syncFailed     map[string]*obs.Counter
	droppedBytes   *obs.Counter
	droppedEntries *obs.Counter
}

// NewFSMetrics registers the file-system metric families
// (gfs_ops_total, gfs_op_seconds, gfs_faults_injected_total) in r.
func NewFSMetrics(r *obs.Registry) *FSMetrics {
	m := &FSMetrics{
		calls:   map[string]*obs.Counter{},
		latency: map[string]*obs.Histogram{},
	}
	for _, op := range fsOps {
		m.calls[op] = r.Counter("gfs_ops_total",
			"File-system operations by class.", "op", op)
		m.latency[op] = r.Histogram("gfs_op_seconds",
			"File-system operation latency by class.", obs.DefLatencyBuckets, "op", op)
	}
	for op := FaultOp(0); op < NumFaultOps; op++ {
		m.faults[op] = r.Counter("gfs_faults_injected_total",
			"Transient faults injected by gfs.Faulty, by class.", "class", op.String())
	}
	m.syncIssued = map[string]*obs.Counter{}
	m.syncFailed = map[string]*obs.Counter{}
	for _, target := range []string{"file", "dir"} {
		m.syncIssued[target] = r.Counter("gfs_sync_total",
			"Durability barriers issued (file Sync and directory SyncDir calls).", "target", target)
		m.syncFailed[target] = r.Counter("gfs_sync_failures_total",
			"Durability barriers that failed (and therefore are not barriers).", "target", target)
	}
	m.droppedBytes = r.Counter("gfs_sync_dropped_bytes_total",
		"Un-synced bytes dropped at crashes in modeled drills.")
	m.droppedEntries = r.Counter("gfs_sync_dropped_entries_total",
		"Un-synced directory operations dropped at crashes in modeled drills.")
	return m
}

// SyncIssued counts one durability barrier (target "file" or "dir")
// and its outcome.
func (m *FSMetrics) SyncIssued(target string, ok bool) {
	if m == nil {
		return
	}
	m.syncIssued[target].Inc()
	if !ok {
		m.syncFailed[target].Inc()
	}
}

// SyncDropped counts un-synced state lost at a crash (called by
// Model.Crash when wired with SetMetrics).
func (m *FSMetrics) SyncDropped(bytes, entries uint64) {
	if m == nil {
		return
	}
	m.droppedBytes.Add(bytes)
	m.droppedEntries.Add(entries)
}

// FaultInjected counts one injected fault (called by Faulty).
func (m *FSMetrics) FaultInjected(op FaultOp) {
	if m == nil {
		return
	}
	m.faults[op].Inc()
}

// observe records one completed call. All methods tolerate a nil
// receiver so Observed can be built unconditionally.
func (m *FSMetrics) observe(op string, start time.Time) {
	if m == nil {
		return
	}
	m.calls[op].Inc()
	m.latency[op].ObserveSince(start)
}

// Observed is a metrics middleware over any System: it counts every
// call and times it into a per-op-class histogram, then forwards to the
// inner backend. Stack it outermost — above Faulty — so injected faults
// and retries are measured exactly as the caller experienced them.
//
// When the thread handle carries a trace span (trace.Carrier), the
// mutating and barrier ops also open leaf spans, attributing a
// request's latency to individual file-system calls. Close, Size, and
// ReadAt stay span-free on purpose: a chunked pickup read would bury
// the timeline under hundreds of identical leaves; read time shows up
// as the mailboat-level read stage instead.
//
// Timing uses the wall clock. That is meaningful for the OS backend
// (which is what production wires up); under the modeled backend the
// durations are merely the checker's own processing time, so scenarios
// normally run without an Observed layer.
type Observed struct {
	inner System
	m     *FSMetrics
}

// NewObserved wraps inner so every call is counted and timed into m.
func NewObserved(inner System, m *FSMetrics) *Observed {
	return &Observed{inner: inner, m: m}
}

// Inner returns the wrapped backend.
func (o *Observed) Inner() System { return o.inner }

// NewLock implements System (not measured: lock allocation is volatile
// memory, not an I/O class).
func (o *Observed) NewLock(t T, name string) Lock { return o.inner.NewLock(t, name) }

// Create implements System.
func (o *Observed) Create(t T, dir, name string) (FD, bool) {
	sp := trace.Enter(t, "gfs.create")
	start := time.Now()
	fd, ok := o.inner.Create(t, dir, name)
	o.m.observe("create", start)
	trace.Exit(t, sp)
	return fd, ok
}

// Open implements System.
func (o *Observed) Open(t T, dir, name string) (FD, bool) {
	sp := trace.Enter(t, "gfs.open")
	start := time.Now()
	fd, ok := o.inner.Open(t, dir, name)
	o.m.observe("open", start)
	trace.Exit(t, sp)
	return fd, ok
}

// Append implements System.
func (o *Observed) Append(t T, fd FD, data []byte) bool {
	sp := trace.Enter(t, "gfs.append")
	start := time.Now()
	ok := o.inner.Append(t, fd, data)
	o.m.observe("append", start)
	trace.Exit(t, sp)
	return ok
}

// Close implements System.
func (o *Observed) Close(t T, fd FD) {
	start := time.Now()
	o.inner.Close(t, fd)
	o.m.observe("close", start)
}

// ReadAt implements System.
func (o *Observed) ReadAt(t T, fd FD, off, n uint64) []byte {
	start := time.Now()
	data := o.inner.ReadAt(t, fd, off, n)
	o.m.observe("readat", start)
	return data
}

// Size implements System.
func (o *Observed) Size(t T, fd FD) uint64 {
	start := time.Now()
	n := o.inner.Size(t, fd)
	o.m.observe("size", start)
	return n
}

// Sync implements System.
func (o *Observed) Sync(t T, fd FD) bool {
	sp := trace.Enter(t, "gfs.sync")
	start := time.Now()
	ok := o.inner.Sync(t, fd)
	o.m.observe("sync", start)
	o.m.SyncIssued("file", ok)
	trace.Exit(t, sp)
	return ok
}

// SyncDir implements System.
func (o *Observed) SyncDir(t T, dir string) bool {
	sp := trace.Enter(t, "gfs.syncdir")
	start := time.Now()
	ok := o.inner.SyncDir(t, dir)
	o.m.observe("syncdir", start)
	o.m.SyncIssued("dir", ok)
	trace.Exit(t, sp)
	return ok
}

// Delete implements System.
func (o *Observed) Delete(t T, dir, name string) bool {
	sp := trace.Enter(t, "gfs.delete")
	start := time.Now()
	ok := o.inner.Delete(t, dir, name)
	o.m.observe("delete", start)
	trace.Exit(t, sp)
	return ok
}

// Link implements System.
func (o *Observed) Link(t T, oldDir, oldName, newDir, newName string) bool {
	sp := trace.Enter(t, "gfs.link")
	start := time.Now()
	ok := o.inner.Link(t, oldDir, oldName, newDir, newName)
	o.m.observe("link", start)
	trace.Exit(t, sp)
	return ok
}

// List implements System.
func (o *Observed) List(t T, dir string) []string {
	sp := trace.Enter(t, "gfs.list")
	start := time.Now()
	names := o.inner.List(t, dir)
	o.m.observe("list", start)
	trace.Exit(t, sp)
	return names
}
