package gfs

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestOSListFallbackVsConcurrentEviction races the two List paths —
// cached-root ReadDir and the by-path fallback — against writers that
// churn a tiny handle budget hard enough that handles are evicted (and
// closed) mid-listing. Run under -race this pins the refcounting: an
// eviction must never close a root a List is streaming from, and every
// file written during the churn must be visible to a quiesced sweep.
func TestOSListFallbackVsConcurrentEviction(t *testing.T) {
	th := NewNative(1)
	dirs := make([]string, 24)
	for i := range dirs {
		dirs[i] = fmt.Sprintf("l%02d", i)
	}
	o, err := NewOSLimited(t.TempDir(), dirs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer o.CloseAll()

	var wg sync.WaitGroup
	var created atomic.Int64
	errCh := make(chan string, 256)
	// Writers churn the LRU: every create in a cold dir evicts the
	// coldest cached handle.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wth := NewNative(int64(100 + w))
			for i := 0; i < 40; i++ {
				d := dirs[(w*40+i)%len(dirs)]
				fd, ok := o.Create(wth, d, fmt.Sprintf("w%d-%d", w, i))
				if !ok {
					errCh <- "create " + d
					continue
				}
				o.Append(wth, fd, []byte("x"))
				o.Close(wth, fd)
				created.Add(1)
			}
		}(w)
	}
	// Readers sweep every directory continuously: hot dirs hit the
	// cached root (pinned against eviction mid-ReadDir), cold dirs take
	// the by-path fallback — both racing the writers' evictions.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rth := NewNative(int64(200 + r))
			for i := 0; i < 20; i++ {
				for _, d := range dirs {
					o.List(rth, d)
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for e := range errCh {
		t.Errorf("op failed under eviction pressure: %s", e)
	}
	if got := len(o.roots); got > 2 {
		t.Errorf("cache holds %d handles, budget 2", got)
	}
	total := 0
	for _, d := range dirs {
		total += len(o.List(th, d))
	}
	if int64(total) != created.Load() {
		t.Errorf("quiesced sweep found %d files, want %d", total, created.Load())
	}
}

// TestOSVanishedDirWithCachedHandle pins what happens when a cached
// directory's backing path is removed out from under the cache (a
// disk-level fault, or an operator mistake): ops through the still-open
// handle and through the post-eviction reopen both report failure —
// never a panic — List degrades to empty via both paths, and recreating
// the path restores service once the dead handle has been evicted.
func TestOSVanishedDirWithCachedHandle(t *testing.T) {
	th := NewNative(1)
	root := t.TempDir()
	o, err := NewOSLimited(root, []string{"a", "b"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer o.CloseAll()

	// Cache "a" (budget 1: it is the only cached handle now) and then
	// remove its backing directory.
	if fd, ok := o.Create(th, "a", "pre"); !ok {
		t.Fatal("create before removal failed")
	} else {
		o.Close(th, fd)
	}
	if err := os.RemoveAll(filepath.Join(root, "a")); err != nil {
		t.Fatal(err)
	}

	// The cached fd-based handle outlives the unlinked directory: writes
	// into it fail cleanly, and the cached-root List path reports empty.
	if _, ok := o.Create(th, "a", "during"); ok {
		t.Fatal("create in a vanished directory succeeded")
	}
	if ls := o.List(th, "a"); len(ls) != 0 {
		t.Fatalf("cached-root list of a vanished directory: %v", ls)
	}

	// Touch "b" to evict "a" (budget 1). The next op on "a" must reopen
	// by path, fail, and report failure; the by-path List fallback also
	// reports empty.
	if fd, ok := o.Create(th, "b", "evictor"); !ok {
		t.Fatal("create in b failed")
	} else {
		o.Close(th, fd)
	}
	if _, cached := o.roots["a"]; cached {
		t.Fatal("a still cached after eviction churn; test setup broken")
	}
	if _, ok := o.Create(th, "a", "post-evict"); ok {
		t.Fatal("create after eviction of a vanished directory succeeded")
	}
	if ls := o.List(th, "a"); len(ls) != 0 {
		t.Fatalf("by-path list of a vanished directory: %v", ls)
	}
	if o.SyncDir(th, "a") {
		t.Fatal("SyncDir on a vanished directory reported success")
	}

	// Recreate the path: the lazy reopen finds it and service resumes.
	if err := os.MkdirAll(filepath.Join(root, "a"), 0o755); err != nil {
		t.Fatal(err)
	}
	fd, ok := o.Create(th, "a", "replaced")
	if !ok {
		t.Fatal("create after recreating the directory failed")
	}
	o.Close(th, fd)
	if ls := o.List(th, "a"); len(ls) != 1 || ls[0] != "replaced" {
		t.Fatalf("list after recreation: %v", ls)
	}
}
