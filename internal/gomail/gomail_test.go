package gomail

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func newServer(t *testing.T, users uint64) *Server {
	t.Helper()
	s, err := New(t.TempDir(), users)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDeliverPickupRoundTrip(t *testing.T) {
	s := newServer(t, 4)
	rng := rand.New(rand.NewSource(1))
	if err := s.Deliver(rng, 2, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	msgs, err := s.Pickup(2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Unlock(2)
	if len(msgs) != 1 || msgs[0].Contents != "hello" {
		t.Fatalf("msgs=%+v", msgs)
	}
}

func TestDeleteRemovesMessage(t *testing.T) {
	s := newServer(t, 2)
	rng := rand.New(rand.NewSource(2))
	s.Deliver(rng, 0, []byte("a"))
	msgs, _ := s.Pickup(0)
	if err := s.Delete(0, msgs[0].ID); err != nil {
		t.Fatal(err)
	}
	s.Unlock(0)
	msgs, _ = s.Pickup(0)
	s.Unlock(0)
	if len(msgs) != 0 {
		t.Fatalf("msgs=%+v", msgs)
	}
}

func TestFileLockExcludesConcurrentPickup(t *testing.T) {
	s := newServer(t, 1)
	if _, err := s.Pickup(0); err != nil {
		t.Fatal(err)
	}
	// A second pickup must block until Unlock.
	done := make(chan struct{})
	go func() {
		s.Pickup(0)
		s.Unlock(0)
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("second pickup did not block on the file lock")
	default:
	}
	s.Unlock(0)
	<-done
}

func TestDeliveryIsAtomicNoSpoolVisible(t *testing.T) {
	s := newServer(t, 1)
	rng := rand.New(rand.NewSource(3))
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		seed := int64(i)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			s.Deliver(r, 0, []byte("msg"))
		}()
	}
	wg.Wait()
	_ = rng
	msgs, _ := s.Pickup(0)
	s.Unlock(0)
	if len(msgs) != 4 {
		t.Fatalf("delivered %d", len(msgs))
	}
	for _, m := range msgs {
		if m.Contents != "msg" {
			t.Fatalf("partial message visible: %q", m.Contents)
		}
	}
}

func TestRecoverCleansSpoolAndLocks(t *testing.T) {
	dir := t.TempDir()
	s, err := New(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-delivery and mid-pickup: leftover spool file
	// and a stale lock file.
	if err := os.WriteFile(filepath.Join(dir, "spool", "tmp123"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Pickup(0) // leaves the lock held, as if the process died
	rng := rand.New(rand.NewSource(4))
	s.Deliver(rng, 0, []byte("kept"))

	s2, err := New(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(filepath.Join(dir, "spool"))
	if len(entries) != 0 {
		t.Fatalf("spool not cleaned: %d entries", len(entries))
	}
	// The stale lock is gone: pickup succeeds immediately.
	msgs, err := s2.Pickup(0)
	if err != nil {
		t.Fatal(err)
	}
	s2.Unlock(0)
	if len(msgs) != 1 || msgs[0].Contents != "kept" {
		t.Fatalf("mail lost by recovery: %+v", msgs)
	}
}
