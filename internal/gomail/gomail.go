// Package gomail reimplements GoMail, the unverified baseline mail
// server from the CMAIL paper that §9.3 compares against: the same
// Maildir-style semantics as Mailboat, but written "in a similar style
// to CMAIL using file locks". The two performance-relevant differences
// from Mailboat, both called out in §9.3, are reproduced here:
//
//   - per-user *file locks* (create-exclusive lock files) instead of
//     in-memory mutexes, costing several file-system calls per
//     acquire/release;
//   - full-path lookups on every operation instead of lookups relative
//     to cached directory descriptors.
package gomail

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"

	"repro/internal/mailboat"
)

// Server is one GoMail instance over a root directory.
type Server struct {
	root  string
	users uint64
}

// New prepares the directory layout (spool, per-user mailboxes, lock
// directory) under root.
func New(root string, users uint64) (*Server, error) {
	s := &Server{root: root, users: users}
	dirs := []string{"spool", "locks"}
	for u := uint64(0); u < users; u++ {
		dirs = append(dirs, userDir(u))
	}
	for _, d := range dirs {
		if err := os.MkdirAll(filepath.Join(root, d), 0o755); err != nil {
			return nil, fmt.Errorf("gomail: %w", err)
		}
	}
	return s, nil
}

func userDir(u uint64) string { return fmt.Sprintf("user%d", u) }

func (s *Server) lockPath(u uint64) string {
	return filepath.Join(s.root, "locks", fmt.Sprintf("user%d.lock", u))
}

// acquire takes the per-user file lock by exclusively creating the lock
// file, spinning (with scheduler yields) while another process holds it
// — the CMAIL/GoMail design the paper contrasts with Go locks.
func (s *Server) acquire(u uint64) {
	path := s.lockPath(u)
	for {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			return
		}
		runtime.Gosched()
	}
}

func (s *Server) release(u uint64) {
	os.Remove(s.lockPath(u))
}

// Deliver spools and atomically links a message, Maildir-style, using
// full-path system calls throughout.
func (s *Server) Deliver(rng *rand.Rand, user uint64, msg []byte) error {
	// Spool under a fresh name.
	var spool string
	var f *os.File
	for {
		spool = filepath.Join(s.root, "spool", fmt.Sprintf("tmp%d", rng.Int63()))
		var err error
		f, err = os.OpenFile(spool, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			break
		}
		if !os.IsExist(err) {
			return fmt.Errorf("gomail: spool: %w", err)
		}
	}
	if _, err := f.Write(msg); err != nil {
		f.Close()
		return fmt.Errorf("gomail: write: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("gomail: close: %w", err)
	}
	// Atomic publish.
	for {
		dst := filepath.Join(s.root, userDir(user), fmt.Sprintf("msg%d", rng.Int63()))
		if err := os.Link(spool, dst); err == nil {
			break
		} else if !os.IsExist(err) {
			return fmt.Errorf("gomail: link: %w", err)
		}
	}
	return os.Remove(spool)
}

// Pickup takes the user's file lock and reads the whole mailbox.
func (s *Server) Pickup(user uint64) ([]mailboat.Message, error) {
	s.acquire(user)
	dir := filepath.Join(s.root, userDir(user))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("gomail: list: %w", err)
	}
	msgs := make([]mailboat.Message, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		msgs = append(msgs, mailboat.Message{ID: e.Name(), Contents: string(data)})
	}
	return msgs, nil
}

// Delete removes a picked-up message; the caller must hold the lock.
func (s *Server) Delete(user uint64, id string) error {
	return os.Remove(filepath.Join(s.root, userDir(user), id))
}

// Unlock releases the user's file lock.
func (s *Server) Unlock(user uint64) {
	s.release(user)
}

// Recover cleans the spool directory after a crash, like Mailboat's
// Recover, and clears stale lock files (the previous process is dead).
func (s *Server) Recover() error {
	for _, d := range []string{"spool", "locks"} {
		dir := filepath.Join(s.root, d)
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return nil
}

// Users returns the configured mailbox count.
func (s *Server) Users() uint64 { return s.users }
