// Package disk models the disk substrates used by the paper's
// crash-safety examples (Table 3): a single-disk semantics and a
// two-disk semantics in which a disk may fail permanently and reads on a
// failed disk report failure (Figure 1's replication substrate).
//
// Blocks are modeled as uint64 values, which keeps specification states
// small and hashable for the refinement checker while preserving the
// structure of the paper's block-granularity atomic writes. Disks are
// durable devices: a crash preserves block contents and the
// failed/healthy status of each disk.
package disk

import (
	"repro/internal/machine"
)

// Block is the content of one disk block.
type Block = uint64

// Disk is one physical disk attached to a machine. Reads and writes are
// block-granularity and atomic (one machine step each).
type Disk struct {
	name    string
	blocks  []Block
	failed  bool
	mayFail bool
	m       *machine.Machine
}

// New creates a disk of the given size (in blocks), zero-filled, and
// registers it as a durable device on m. If mayFail is true, the machine
// Chooser is offered the option to fail the disk permanently at every
// read (tag "diskfail"), modeling the two-disk semantics' fail-stop
// disks.
func New(m *machine.Machine, name string, size int, mayFail bool) *Disk {
	d := &Disk{name: name, blocks: make([]Block, size), mayFail: mayFail, m: m}
	m.RegisterDevice(d)
	return d
}

// Crash implements machine.Device: block contents and failure status are
// durable, so a machine crash changes nothing here.
func (d *Disk) Crash() {}

// AppendDurable implements machine.Fingerprinter: a disk's durable
// state is its name, its failure latch, and its block contents.
func (d *Disk) AppendDurable(b []byte) []byte {
	b = machine.AppendString(b, d.name)
	b = machine.AppendBool(b, d.failed)
	b = machine.AppendUint64(b, uint64(len(d.blocks)))
	for _, v := range d.blocks {
		b = machine.AppendUint64(b, v)
	}
	return b
}

// Size returns the number of blocks.
func (d *Disk) Size() uint64 { return uint64(len(d.blocks)) }

// Name returns the disk's name (for traces).
func (d *Disk) Name() string { return d.name }

// Failed reports whether the disk has failed. For harness assertions.
func (d *Disk) Failed() bool { return d.failed }

// Fail marks the disk permanently failed (harness-controlled fault
// injection; distinct from chooser-driven failure).
func (d *Disk) Fail() { d.failed = true }

// Read reads block a. One atomic step. It returns ok=false if the disk
// has failed (the paper's read-failure model). Reading out of bounds is
// undefined behaviour.
func (d *Disk) Read(t *machine.T, a uint64) (Block, bool) {
	t.Step("disk_read")
	d.checkBounds(t, "read", a)
	if d.mayFail && !d.failed {
		if t.Machine() != d.m {
			t.Failf("disk %s used from a different machine", d.name)
		}
		// Offer the chooser the option to fail the disk now.
		if t.Choose(2, "diskfail") == 1 {
			d.failed = true
			t.Tracef("disk %s FAILED", d.name)
		}
	}
	if d.failed {
		t.Tracef("disk_read %s[%d] -> failed", d.name, a)
		return 0, false
	}
	v := d.blocks[a]
	t.Tracef("disk_read %s[%d] -> %d", d.name, a, v)
	return v, true
}

// Write writes block a. One atomic step, atomic with respect to crashes
// (a crash either leaves the old value or the new one, never a torn
// block). Writes to a failed disk are silently dropped, and writes out
// of bounds are undefined behaviour.
func (d *Disk) Write(t *machine.T, a uint64, v Block) {
	t.Step("disk_write")
	d.checkBounds(t, "write", a)
	if d.failed {
		t.Tracef("disk_write %s[%d] dropped (failed)", d.name, a)
		return
	}
	d.blocks[a] = v
	t.Tracef("disk_write %s[%d] = %d", d.name, a, v)
}

// Peek returns block a without taking a machine step. It is for
// harnesses and invariant checks between eras, never for modeled code.
func (d *Disk) Peek(a uint64) Block { return d.blocks[a] }

// Poke sets block a without taking a machine step (harness setup only).
func (d *Disk) Poke(a uint64, v Block) { d.blocks[a] = v }

func (d *Disk) checkBounds(t *machine.T, op string, a uint64) {
	if a >= uint64(len(d.blocks)) {
		t.Failf("disk %s: %s out of bounds: address %d, size %d", d.name, op, a, len(d.blocks))
	}
}
