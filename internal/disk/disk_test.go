package disk

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func TestReadBackAfterWrite(t *testing.T) {
	m := machine.New(machine.Options{})
	d := New(m, "d1", 8, false)
	var got Block
	var ok bool
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		d.Write(mt, 3, 99)
		got, ok = d.Read(mt, 3)
	})
	if res.Outcome != machine.Done || !ok || got != 99 {
		t.Fatalf("res=%+v got=%d ok=%v", res, got, ok)
	}
}

func TestFreshDiskReadsZero(t *testing.T) {
	m := machine.New(machine.Options{})
	d := New(m, "d1", 4, false)
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		for a := uint64(0); a < 4; a++ {
			v, ok := d.Read(mt, a)
			if !ok || v != 0 {
				mt.Failf("block %d = %d ok=%v", a, v, ok)
			}
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestContentsSurviveCrash(t *testing.T) {
	m := machine.New(machine.Options{})
	d := New(m, "d1", 8, false)
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		d.Write(mt, 1, 11)
		d.Write(mt, 2, 22)
	})
	m.CrashReset()
	var v1, v2 Block
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		v1, _ = d.Read(mt, 1)
		v2, _ = d.Read(mt, 2)
	})
	if res.Outcome != machine.Done || v1 != 11 || v2 != 22 {
		t.Fatalf("res=%+v v1=%d v2=%d", res, v1, v2)
	}
}

func TestOutOfBoundsReadIsUB(t *testing.T) {
	m := machine.New(machine.Options{})
	d := New(m, "d1", 4, false)
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		d.Read(mt, 4)
	})
	if res.Outcome != machine.Violation || !strings.Contains(res.Err.Error(), "out of bounds") {
		t.Fatalf("res=%+v", res)
	}
}

func TestOutOfBoundsWriteIsUB(t *testing.T) {
	m := machine.New(machine.Options{})
	d := New(m, "d1", 4, false)
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		d.Write(mt, 100, 1)
	})
	if res.Outcome != machine.Violation {
		t.Fatalf("res=%+v", res)
	}
}

func TestManualFailureMakesReadsFail(t *testing.T) {
	m := machine.New(machine.Options{})
	d := New(m, "d1", 4, false)
	d.Fail()
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		if _, ok := d.Read(mt, 0); ok {
			mt.Failf("read on failed disk succeeded")
		}
		d.Write(mt, 0, 5) // dropped, not a violation
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if d.Peek(0) != 0 {
		t.Fatal("write to failed disk was not dropped")
	}
}

func TestFailureStatusSurvivesCrash(t *testing.T) {
	m := machine.New(machine.Options{})
	d := New(m, "d1", 4, false)
	d.Fail()
	m.CrashReset()
	if !d.Failed() {
		t.Fatal("failure status must be durable")
	}
}

func TestChooserDrivenFailureInjection(t *testing.T) {
	m := machine.New(machine.Options{})
	d := New(m, "d1", 4, true)
	failNow := machine.ChooserFunc(func(n int, tag string) int {
		if tag == "diskfail" {
			return 1
		}
		return 0
	})
	res := m.RunEra(failNow, false, func(mt *machine.T) {
		if _, ok := d.Read(mt, 0); ok {
			mt.Failf("expected injected failure")
		}
	})
	if res.Outcome != machine.Done || !d.Failed() {
		t.Fatalf("res=%+v failed=%v", res, d.Failed())
	}
}

func TestNoFailureWhenChooserDeclines(t *testing.T) {
	m := machine.New(machine.Options{})
	d := New(m, "d1", 4, true)
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		if _, ok := d.Read(mt, 0); !ok {
			mt.Failf("unexpected failure")
		}
	})
	if res.Outcome != machine.Done || d.Failed() {
		t.Fatalf("res=%+v failed=%v", res, d.Failed())
	}
}

func TestQuickWriteReadIdentity(t *testing.T) {
	// For any address and value (in range), write-then-read returns the
	// value, across an interleaving-free single thread.
	err := quick.Check(func(addr8 uint8, v uint64) bool {
		a := uint64(addr8) % 16
		m := machine.New(machine.Options{})
		d := New(m, "d", 16, false)
		var got Block
		var ok bool
		res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
			d.Write(mt, a, v)
			got, ok = d.Read(mt, a)
		})
		return res.Outcome == machine.Done && ok && got == v
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickDurabilityAcrossCrashes(t *testing.T) {
	// Any sequence of writes is fully durable across any number of
	// crashes (block writes are atomic; no buffering in this model).
	type wr struct {
		Addr uint8
		Val  uint64
	}
	err := quick.Check(func(ws []wr, crashes uint8) bool {
		m := machine.New(machine.Options{})
		d := New(m, "d", 32, false)
		want := make(map[uint64]uint64)
		res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
			for _, w := range ws {
				a := uint64(w.Addr) % 32
				d.Write(mt, a, w.Val)
				want[a] = w.Val
			}
		})
		if res.Outcome != machine.Done {
			return false
		}
		for i := 0; i < int(crashes%4); i++ {
			m.CrashReset()
		}
		for a, v := range want {
			if d.Peek(a) != v {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}
