package pop3

import (
	"strings"
	"time"

	"repro/internal/obs"
)

// pop3Verbs are the commands with their own counter series; anything
// else lands on "other" to bound label cardinality against hostile
// clients.
var pop3Verbs = []string{"USER", "PASS", "STAT", "LIST", "RETR", "TOP", "UIDL", "DELE", "RSET", "NOOP", "QUIT", "other"}

// Metrics is the POP3 front end's slice of the observability surface.
// All methods are nil-receiver-safe; a Server with nil Metrics behaves
// exactly as before.
type Metrics struct {
	Accepted *obs.Counter
	Refused  *obs.Counter
	Active   *obs.Gauge
	Panics   *obs.Counter

	commands map[string]*obs.Counter
	TempFail *obs.Counter
	CmdTime  *obs.Histogram
}

// NewMetrics registers the pop3_* metric families in r.
func NewMetrics(r *obs.Registry) *Metrics {
	m := &Metrics{
		Accepted: r.Counter("pop3_connections_accepted_total", "POP3 connections accepted for service."),
		Refused:  r.Counter("pop3_connections_refused_total", "POP3 connections refused (full or shutting down)."),
		Active:   r.Gauge("pop3_connections_active", "POP3 connections currently being served."),
		Panics:   r.Counter("pop3_handler_panics_total", "Connection handlers killed by a recovered panic."),
		TempFail: r.Counter("pop3_tempfail_responses_total", "-ERR [SYS/TEMP] responses sent (transient store failure surfaced to the client)."),
		CmdTime:  r.Histogram("pop3_command_seconds", "Latency from command receipt to response flush.", obs.DefLatencyBuckets),
		commands: map[string]*obs.Counter{},
	}
	for _, v := range pop3Verbs {
		m.commands[v] = r.Counter("pop3_commands_total", "POP3 commands processed, by verb.", "verb", v)
	}
	return m
}

func (m *Metrics) connOpened() {
	if m == nil {
		return
	}
	m.Accepted.Inc()
	m.Active.Inc()
}

func (m *Metrics) connClosed() {
	if m == nil {
		return
	}
	m.Active.Dec()
}

func (m *Metrics) connRefused() {
	if m == nil {
		return
	}
	m.Refused.Inc()
}

func (m *Metrics) panicked() {
	if m == nil {
		return
	}
	m.Panics.Inc()
}

func (m *Metrics) cmdStart() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

func (m *Metrics) command(verb string, start time.Time) {
	if m == nil {
		return
	}
	c, ok := m.commands[strings.ToUpper(verb)]
	if !ok {
		c = m.commands["other"]
	}
	c.Inc()
	m.CmdTime.ObserveSince(start)
}

func (m *Metrics) tempFailure() {
	if m == nil {
		return
	}
	m.TempFail.Inc()
}
