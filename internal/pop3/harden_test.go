package pop3

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/mailboat"
)

// flakyDrop fails Pickup and/or Delete with transient errors. The
// error fields are guarded by the embedded fakeDrop's mutex so tests
// can flip them while the handler goroutine runs.
type flakyDrop struct {
	*fakeDrop
	pickupErr error
	deleteErr error
}

func (f *flakyDrop) setPickupErr(err error) {
	f.mu.Lock()
	f.pickupErr = err
	f.mu.Unlock()
}

func (f *flakyDrop) Pickup(user uint64) ([]mailboat.Message, error) {
	f.mu.Lock()
	err := f.pickupErr
	f.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return f.fakeDrop.Pickup(user)
}

func (f *flakyDrop) Delete(user uint64, id string) error {
	f.mu.Lock()
	err := f.deleteErr
	f.mu.Unlock()
	if err != nil {
		return err
	}
	return f.fakeDrop.Delete(user, id)
}

func startHardened(t *testing.T, drop Maildrop, tune func(*Server)) (*Server, string) {
	t.Helper()
	s := NewServer(drop, 10)
	tune(s)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func TestPickupFailureIsTempErrAndSessionSurvives(t *testing.T) {
	drop := &flakyDrop{fakeDrop: newFakeDrop(), pickupErr: fmt.Errorf("store down")}
	_, addr := startHardened(t, drop, func(*Server) {})
	c := dial(t, addr)
	c.expect(t, "+OK")
	c.send(t, "USER user1")
	c.expect(t, "+OK")
	c.send(t, "PASS x")
	line := c.expect(t, "-ERR [SYS/TEMP]")
	_ = line

	// Graceful degradation: the session is still usable, and a retry
	// after the store recovers succeeds.
	drop.setPickupErr(nil)
	c.send(t, "USER user1")
	c.expect(t, "+OK")
	c.send(t, "PASS x")
	c.expect(t, "+OK")
	c.send(t, "QUIT")
	c.expect(t, "+OK")
}

func TestQuitReportsUndeletedMessages(t *testing.T) {
	drop := &flakyDrop{fakeDrop: newFakeDrop(), deleteErr: fmt.Errorf("unlink refused")}
	drop.mail[1] = []mailboat.Message{{ID: "m1", Contents: "keep me"}}
	_, addr := startHardened(t, drop, func(*Server) {})
	c := dial(t, addr)
	auth(t, c, "user1")
	c.send(t, "DELE 1")
	c.expect(t, "+OK")
	c.send(t, "QUIT")
	// The delete failed: QUIT must say so, not pretend success.
	c.expect(t, "-ERR [SYS/TEMP]")

	// The message is still there, and the lock was still released.
	drop.mu.Lock()
	defer drop.mu.Unlock()
	if len(drop.mail[1]) != 1 {
		t.Fatalf("mail[1]=%v", drop.mail[1])
	}
	if drop.unlocks != 1 {
		t.Fatalf("unlocks=%d", drop.unlocks)
	}
}

func TestMaxConnsAnswersTempErr(t *testing.T) {
	_, addr := startHardened(t, newFakeDrop(), func(s *Server) { s.MaxConns = 1 })
	c1 := dial(t, addr)
	c1.expect(t, "+OK")

	c2 := dial(t, addr)
	c2.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	c2.expect(t, "-ERR [SYS/TEMP]")
}

func TestReadTimeoutDropsStuckPeer(t *testing.T) {
	_, addr := startHardened(t, newFakeDrop(), func(s *Server) { s.ReadTimeout = 50 * time.Millisecond })
	c := dial(t, addr)
	c.expect(t, "+OK")
	c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.r.ReadString('\n'); err == nil {
		t.Fatal("server kept a silent connection past its read deadline")
	}
}

func TestForcedShutdownReleasesMailboxLock(t *testing.T) {
	drop := newFakeDrop()
	s, addr := startHardened(t, drop, func(*Server) {})
	c := dial(t, addr)
	auth(t, c, "user1") // takes user1's lock

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("forced shutdown: %v", err)
	}
	// The force-closed handler's deferred Unlock must still run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		drop.mu.Lock()
		un := drop.unlocks
		drop.mu.Unlock()
		if un == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("mailbox lock leaked through forced shutdown")
		}
		time.Sleep(time.Millisecond)
	}
}
