package pop3

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/mailboat"
)

type fakeDrop struct {
	mu      sync.Mutex
	mail    map[uint64][]mailboat.Message
	locked  map[uint64]bool
	unlocks int
}

func newFakeDrop() *fakeDrop {
	return &fakeDrop{mail: map[uint64][]mailboat.Message{}, locked: map[uint64]bool{}}
}

func (f *fakeDrop) Pickup(user uint64) ([]mailboat.Message, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.locked[user] {
		return nil, fmt.Errorf("locked")
	}
	f.locked[user] = true
	return append([]mailboat.Message{}, f.mail[user]...), nil
}

func (f *fakeDrop) Delete(user uint64, id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := f.mail[user][:0]
	for _, m := range f.mail[user] {
		if m.ID != id {
			out = append(out, m)
		}
	}
	f.mail[user] = out
	return nil
}

func (f *fakeDrop) Unlock(user uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.locked[user] = false
	f.unlocks++
}

func startServer(t *testing.T, drop Maildrop) string {
	t.Helper()
	s := NewServer(drop, 10)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return ln.Addr().String()
}

type client struct {
	conn net.Conn
	r    *bufio.Reader
}

func dial(t *testing.T, addr string) *client {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &client{conn: conn, r: bufio.NewReader(conn)}
}

func (c *client) expect(t *testing.T, prefix string) string {
	t.Helper()
	line, err := c.r.ReadString('\n')
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("expected %q, got %q", prefix, line)
	}
	return line
}

func (c *client) send(t *testing.T, line string) {
	t.Helper()
	if _, err := fmt.Fprintf(c.conn, "%s\r\n", line); err != nil {
		t.Fatal(err)
	}
}

func (c *client) readMultiline(t *testing.T) []string {
	t.Helper()
	var lines []string
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "." {
			return lines
		}
		lines = append(lines, strings.TrimPrefix(line, "."))
	}
}

func auth(t *testing.T, c *client, user string) {
	c.expect(t, "+OK")
	c.send(t, "USER "+user)
	c.expect(t, "+OK")
	c.send(t, "PASS x")
	c.expect(t, "+OK")
}

func TestStatListRetr(t *testing.T) {
	drop := newFakeDrop()
	drop.mail[1] = []mailboat.Message{
		{ID: "msgA", Contents: "hello\nworld"},
		{ID: "msgB", Contents: ".leading dot"},
	}
	addr := startServer(t, drop)
	c := dial(t, addr)
	auth(t, c, "user1")

	c.send(t, "STAT")
	line := c.expect(t, "+OK 2 ")
	if !strings.Contains(line, fmt.Sprint(len("hello\nworld")+len(".leading dot"))) {
		t.Fatalf("STAT: %q", line)
	}

	c.send(t, "LIST")
	c.expect(t, "+OK")
	if got := c.readMultiline(t); len(got) != 2 {
		t.Fatalf("LIST: %v", got)
	}

	c.send(t, "RETR 1")
	c.expect(t, "+OK")
	body := strings.Join(c.readMultiline(t), "\n")
	if body != "hello\nworld" {
		t.Fatalf("RETR 1: %q", body)
	}

	c.send(t, "RETR 2")
	c.expect(t, "+OK")
	body = strings.Join(c.readMultiline(t), "\n")
	if body != ".leading dot" {
		t.Fatalf("dot-stuffing broken: %q", body)
	}
}

func TestDeleAppliedAtQuit(t *testing.T) {
	drop := newFakeDrop()
	drop.mail[2] = []mailboat.Message{{ID: "m1", Contents: "a"}, {ID: "m2", Contents: "b"}}
	addr := startServer(t, drop)
	c := dial(t, addr)
	auth(t, c, "user2")
	c.send(t, "DELE 1")
	c.expect(t, "+OK")

	// Not yet applied.
	drop.mu.Lock()
	if len(drop.mail[2]) != 2 {
		t.Fatal("DELE applied before QUIT")
	}
	drop.mu.Unlock()

	c.send(t, "QUIT")
	c.expect(t, "+OK")

	// Wait for the unlock that QUIT performs.
	deadline := time.Now().Add(5 * time.Second)
	for {
		drop.mu.Lock()
		un := drop.unlocks
		n := len(drop.mail[2])
		drop.mu.Unlock()
		if un == 1 {
			if n != 1 {
				t.Fatalf("after QUIT: %d messages", n)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("unlock never happened")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRsetUndoesDele(t *testing.T) {
	drop := newFakeDrop()
	drop.mail[1] = []mailboat.Message{{ID: "m1", Contents: "a"}}
	addr := startServer(t, drop)
	c := dial(t, addr)
	auth(t, c, "user1")
	c.send(t, "DELE 1")
	c.expect(t, "+OK")
	c.send(t, "RSET")
	c.expect(t, "+OK")
	c.send(t, "RETR 1")
	c.expect(t, "+OK")
	c.readMultiline(t)
	c.send(t, "QUIT")
	c.expect(t, "+OK")
}

func TestDeletedMessageInaccessible(t *testing.T) {
	drop := newFakeDrop()
	drop.mail[1] = []mailboat.Message{{ID: "m1", Contents: "a"}}
	addr := startServer(t, drop)
	c := dial(t, addr)
	auth(t, c, "user1")
	c.send(t, "DELE 1")
	c.expect(t, "+OK")
	c.send(t, "RETR 1")
	c.expect(t, "-ERR")
	c.send(t, "DELE 1")
	c.expect(t, "-ERR")
}

func TestUnknownUserRejected(t *testing.T) {
	addr := startServer(t, newFakeDrop())
	c := dial(t, addr)
	c.expect(t, "+OK")
	c.send(t, "USER mallory")
	c.expect(t, "+OK")
	c.send(t, "PASS x")
	c.expect(t, "-ERR")
}

func TestCommandsRequireAuth(t *testing.T) {
	addr := startServer(t, newFakeDrop())
	c := dial(t, addr)
	c.expect(t, "+OK")
	for _, cmd := range []string{"STAT", "LIST", "RETR 1", "DELE 1"} {
		c.send(t, cmd)
		c.expect(t, "-ERR")
	}
}

func TestAbruptDisconnectReleasesLock(t *testing.T) {
	drop := newFakeDrop()
	addr := startServer(t, drop)
	c := dial(t, addr)
	auth(t, c, "user1")
	c.conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		drop.mu.Lock()
		un := drop.unlocks
		drop.mu.Unlock()
		if un == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lock not released on disconnect")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestTopReturnsHeadersAndNBodyLines(t *testing.T) {
	drop := newFakeDrop()
	drop.mail[1] = []mailboat.Message{
		{ID: "m1", Contents: "Subject: hi\nFrom: x\n\nline1\nline2\nline3"},
	}
	addr := startServer(t, drop)
	c := dial(t, addr)
	auth(t, c, "user1")
	c.send(t, "TOP 1 2")
	c.expect(t, "+OK")
	got := strings.Join(c.readMultiline(t), "\n")
	want := "Subject: hi\nFrom: x\n\nline1\nline2"
	if got != want {
		t.Fatalf("TOP = %q, want %q", got, want)
	}
	// TOP 1 0: headers plus the separator only.
	c.send(t, "TOP 1 0")
	c.expect(t, "+OK")
	got = strings.Join(c.readMultiline(t), "\n")
	if got != "Subject: hi\nFrom: x\n" {
		t.Fatalf("TOP 0 = %q", got)
	}
	c.send(t, "TOP 9 1")
	c.expect(t, "-ERR")
	c.send(t, "TOP 1 -1")
	c.expect(t, "-ERR")
}

func TestUidlListsStableIDs(t *testing.T) {
	drop := newFakeDrop()
	drop.mail[1] = []mailboat.Message{
		{ID: "msgA", Contents: "a"},
		{ID: "msgB", Contents: "b"},
	}
	addr := startServer(t, drop)
	c := dial(t, addr)
	auth(t, c, "user1")
	c.send(t, "UIDL")
	c.expect(t, "+OK")
	got := c.readMultiline(t)
	if len(got) != 2 || got[0] != "1 msgA" || got[1] != "2 msgB" {
		t.Fatalf("UIDL = %v", got)
	}
	c.send(t, "UIDL 2")
	line := c.expect(t, "+OK 2 msgB")
	_ = line
	c.send(t, "DELE 1")
	c.expect(t, "+OK")
	c.send(t, "UIDL")
	c.expect(t, "+OK")
	if got := c.readMultiline(t); len(got) != 1 || got[0] != "2 msgB" {
		t.Fatalf("UIDL after DELE = %v", got)
	}
	c.send(t, "UIDL 1")
	c.expect(t, "-ERR")
}
