// Package pop3 implements the unverified POP3 front end of §8.2: a
// minimal RFC 1939 server (USER/PASS, STAT, LIST, UIDL, RETR, TOP,
// DELE, RSET, NOOP, QUIT) over a Maildrop backend. Authenticating as userN opens
// mailbox N, which in Mailboat terms performs Pickup (taking the
// per-user lock); QUIT applies the deletes and performs Unlock, so a
// POP3 session maps exactly onto the paper's Pickup … Delete … Unlock
// protocol.
//
// Like the SMTP front end, the server degrades gracefully under store
// trouble: transient backend failures answer "-ERR [SYS/TEMP] …" (RFC
// 2449 response codes) instead of dropping the connection, a full
// server refuses new connections with the same marker, per-connection
// deadlines bound stuck peers, and a panicking handler costs only its
// own connection (the deferred Unlock still runs).
package pop3

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/mailboat"
	"repro/internal/trace"
)

// Maildrop is the mailbox backend; internal/mailboatd adapts the
// verified library to it. Errors from Pickup and Delete are treated as
// transient and surfaced to the client as "-ERR [SYS/TEMP]".
type Maildrop interface {
	Pickup(user uint64) ([]mailboat.Message, error)
	Delete(user uint64, id string) error
	Unlock(user uint64)
}

// TracedMaildrop is the optional tracing extension of Maildrop: the
// server hands the verb's root span down so the store can hang stage
// spans off it. Backends that don't implement it are served untraced.
type TracedMaildrop interface {
	PickupTraced(sp *trace.Span, user uint64) ([]mailboat.Message, error)
	DeleteTraced(sp *trace.Span, user uint64, id string) error
}

// Server is one POP3 listener.
type Server struct {
	users   uint64
	backend Maildrop

	// ReadTimeout and WriteTimeout bound each command read and each
	// response write; zero means no deadline.
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// MaxConns caps concurrently served connections; excess connections
	// are answered "-ERR [SYS/TEMP] too busy" and closed. Zero means
	// unlimited.
	MaxConns int
	// Metrics, when non-nil, records connection and command metrics
	// (see NewMetrics). Set it before Serve.
	Metrics *Metrics
	// Tracer, when non-nil, opens a root span per PASS (op "pickup")
	// and per QUIT with pending deletes (op "delete"), threading them
	// through a TracedMaildrop backend. Set it before Serve.
	Tracer *trace.Tracer

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer creates a POP3 server over backend.
func NewServer(backend Maildrop, users uint64) *Server {
	return &Server{users: users, backend: backend, conns: map[net.Conn]struct{}{}}
}

// Serve accepts connections on ln until Close/Shutdown. It blocks, and
// returns nil after a deliberate Close.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if !s.track(conn) {
			s.Metrics.connRefused()
			s.refuse(conn)
			continue
		}
		s.Metrics.connOpened()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			defer conn.Close()
			defer s.Metrics.connClosed()
			// A panic in the unverified handler costs only this
			// connection; the handler's own deferred Unlock has already
			// run by the time the panic reaches here.
			defer func() {
				if r := recover(); r != nil {
					s.Metrics.panicked()
				}
			}()
			s.handle(conn)
		}()
	}
}

// track registers conn, refusing when at capacity or shutting down.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || (s.MaxConns > 0 && len(s.conns) >= s.MaxConns) {
		return false
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// refuse answers a connection the server cannot serve right now.
func (s *Server) refuse(conn net.Conn) {
	if s.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
	}
	fmt.Fprintf(conn, "-ERR [SYS/TEMP] server too busy, try again later\r\n")
	conn.Close()
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting connections. In-flight sessions keep running;
// use Shutdown to wait for (or cut off) them.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// Shutdown closes the listener and waits for in-flight sessions. If
// ctx expires first the remaining connections are force-closed (each
// handler's deferred Unlock still releases its mailbox lock) and ctx's
// error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Addr returns the listener address, for tests.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	flush := func() error {
		if s.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		return w.Flush()
	}
	ok := func(msg string) bool {
		fmt.Fprintf(w, "+OK %s\r\n", msg)
		return flush() == nil
	}
	bad := func(msg string) bool {
		fmt.Fprintf(w, "-ERR %s\r\n", msg)
		return flush() == nil
	}
	if !ok("mailboat POP3 ready") {
		return
	}

	var (
		authedUser uint64
		authed     bool
		pendUser   string
		msgs       []mailboat.Message
		deleted    []bool
	)
	// Ensure the mailbox lock is released even on abrupt disconnect.
	defer func() {
		if authed {
			s.backend.Unlock(authedUser)
		}
	}()

	// command executes one POP3 command against the session state,
	// reporting true when the connection must end (QUIT, or a write
	// failure mid-response).
	command := func(verb, arg string) (quit bool) {
		switch strings.ToUpper(verb) {
		case "USER":
			pendUser = strings.TrimSpace(arg)
			ok("send PASS")
		case "PASS":
			if authed {
				bad("already authenticated")
				return false
			}
			u, err := parseUser(pendUser, s.users)
			if err != nil {
				bad("no such user")
				return false
			}
			root := s.Tracer.Start("pickup", "pop3.PASS")
			tm, traced := s.backend.(TracedMaildrop)
			var m []mailboat.Message
			if root != nil && traced {
				m, err = tm.PickupTraced(root, u)
			} else {
				m, err = s.backend.Pickup(u)
			}
			if err != nil {
				root.Note("pickup failed transiently ([SYS/TEMP])")
				root.End()
				// Transient store failure: the session stays open so
				// the client can retry PASS, per the graceful-
				// degradation contract.
				s.Metrics.tempFailure()
				bad("[SYS/TEMP] maildrop unavailable, try again later")
				return false
			}
			root.End()
			authedUser, authed = u, true
			msgs = m
			deleted = make([]bool, len(m))
			ok(fmt.Sprintf("maildrop has %d messages", len(m)))
		case "STAT":
			if !authed {
				bad("authenticate first")
				return false
			}
			n, bytes := 0, 0
			for i, m := range msgs {
				if !deleted[i] {
					n++
					bytes += len(m.Contents)
				}
			}
			ok(fmt.Sprintf("%d %d", n, bytes))
		case "LIST":
			if !authed {
				bad("authenticate first")
				return false
			}
			ok("scan listing follows")
			for i, m := range msgs {
				if !deleted[i] {
					fmt.Fprintf(w, "%d %d\r\n", i+1, len(m.Contents))
				}
			}
			fmt.Fprintf(w, ".\r\n")
			if flush() != nil {
				return true
			}
		case "RETR":
			i, valid := s.msgIndex(arg, msgs, deleted)
			if !authed || !valid {
				bad("no such message")
				return false
			}
			ok(fmt.Sprintf("%d octets", len(msgs[i].Contents)))
			writeMultiline(w, msgs[i].Contents)
			if flush() != nil {
				return true
			}
		case "TOP":
			num, rest, _ := strings.Cut(strings.TrimSpace(arg), " ")
			i, valid := s.msgIndex(num, msgs, deleted)
			lines, err := strconv.Atoi(strings.TrimSpace(rest))
			if !authed || !valid || err != nil || lines < 0 {
				bad("no such message")
				return false
			}
			ok("top of message follows")
			writeMultiline(w, topOf(msgs[i].Contents, lines))
			if flush() != nil {
				return true
			}
		case "UIDL":
			if !authed {
				bad("authenticate first")
				return false
			}
			if strings.TrimSpace(arg) != "" {
				i, valid := s.msgIndex(arg, msgs, deleted)
				if !valid {
					bad("no such message")
					return false
				}
				ok(fmt.Sprintf("%d %s", i+1, msgs[i].ID))
				return false
			}
			ok("unique-id listing follows")
			for i, m := range msgs {
				if !deleted[i] {
					fmt.Fprintf(w, "%d %s\r\n", i+1, m.ID)
				}
			}
			fmt.Fprintf(w, ".\r\n")
			if flush() != nil {
				return true
			}
		case "DELE":
			i, valid := s.msgIndex(arg, msgs, deleted)
			if !authed || !valid {
				bad("no such message")
				return false
			}
			deleted[i] = true
			ok("marked for deletion")
		case "RSET":
			for i := range deleted {
				deleted[i] = false
			}
			ok("reset")
		case "NOOP":
			ok("")
		case "QUIT":
			if authed {
				var root *trace.Span
				for i := range msgs {
					if deleted[i] {
						// Open the root only when there is delete work
						// to time; a plain disconnect stays trace-free.
						root = s.Tracer.Start("delete", "pop3.QUIT")
						break
					}
				}
				tm, traced := s.backend.(TracedMaildrop)
				failed := 0
				for i, m := range msgs {
					if deleted[i] {
						var err error
						if root != nil && traced {
							err = tm.DeleteTraced(root, authedUser, m.ID)
						} else {
							err = s.backend.Delete(authedUser, m.ID)
						}
						if err != nil {
							failed++
						}
					}
				}
				if failed > 0 {
					root.Note("%d delete(s) failed transiently", failed)
				}
				root.End()
				s.backend.Unlock(authedUser)
				authed = false
				if failed > 0 {
					// RFC 1939 UPDATE state: deletes that could not be
					// applied are reported, not silently dropped; the
					// messages remain in the maildrop.
					s.Metrics.tempFailure()
					bad(fmt.Sprintf("[SYS/TEMP] %d message(s) not removed, still in maildrop", failed))
					return true
				}
			}
			ok("bye")
			return true
		default:
			bad("unrecognized command")
		}
		return false
	}

	for {
		if s.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.ReadTimeout))
		}
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		verb, arg, _ := strings.Cut(line, " ")
		start := s.Metrics.cmdStart()
		quit := command(verb, arg)
		s.Metrics.command(verb, start)
		if quit {
			return
		}
	}
}

func (s *Server) msgIndex(arg string, msgs []mailboat.Message, deleted []bool) (int, bool) {
	n, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil || n < 1 || n > len(msgs) || deleted == nil || deleted[n-1] {
		return 0, false
	}
	return n - 1, true
}

func parseUser(name string, users uint64) (uint64, error) {
	if !strings.HasPrefix(name, "user") {
		return 0, fmt.Errorf("pop3: unknown user %q", name)
	}
	n, err := strconv.ParseUint(name[len("user"):], 10, 64)
	if err != nil || n >= users {
		return 0, fmt.Errorf("pop3: unknown user %q", name)
	}
	return n, nil
}

// topOf returns the message headers plus the first n body lines, per
// RFC 1939's TOP.
func topOf(body string, n int) string {
	lines := strings.Split(body, "\n")
	// Find the blank separator between headers and body.
	sep := len(lines)
	for i, l := range lines {
		if l == "" {
			sep = i
			break
		}
	}
	end := sep + 1 + n
	if end > len(lines) {
		end = len(lines)
	}
	return strings.Join(lines[:end], "\n")
}

// writeMultiline sends a POP3 multi-line response body with
// dot-stuffing and the terminating lone dot (RFC 1939 §3).
func writeMultiline(w *bufio.Writer, body string) {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, ".") {
			w.WriteString(".")
		}
		w.WriteString(line)
		w.WriteString("\r\n")
	}
	w.WriteString(".\r\n")
}
