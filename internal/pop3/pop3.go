// Package pop3 implements the unverified POP3 front end of §8.2: a
// minimal RFC 1939 server (USER/PASS, STAT, LIST, UIDL, RETR, TOP,
// DELE, RSET, NOOP, QUIT) over a Maildrop backend. Authenticating as userN opens
// mailbox N, which in Mailboat terms performs Pickup (taking the
// per-user lock); QUIT applies the deletes and performs Unlock, so a
// POP3 session maps exactly onto the paper's Pickup … Delete … Unlock
// protocol.
package pop3

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"

	"repro/internal/mailboat"
)

// Maildrop is the mailbox backend; cmd/mailboat adapts the verified
// library to it.
type Maildrop interface {
	Pickup(user uint64) ([]mailboat.Message, error)
	Delete(user uint64, id string) error
	Unlock(user uint64)
}

// Server is one POP3 listener.
type Server struct {
	users   uint64
	backend Maildrop

	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup
}

// NewServer creates a POP3 server over backend.
func NewServer(backend Maildrop, users uint64) *Server {
	return &Server{users: users, backend: backend}
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// ListenAndServe listens on addr and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Close stops accepting connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// Addr returns the listener address, for tests.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	ok := func(msg string) bool {
		fmt.Fprintf(w, "+OK %s\r\n", msg)
		return w.Flush() == nil
	}
	bad := func(msg string) bool {
		fmt.Fprintf(w, "-ERR %s\r\n", msg)
		return w.Flush() == nil
	}
	if !ok("mailboat POP3 ready") {
		return
	}

	var (
		authedUser uint64
		authed     bool
		pendUser   string
		msgs       []mailboat.Message
		deleted    []bool
	)
	// Ensure the mailbox lock is released even on abrupt disconnect.
	defer func() {
		if authed {
			s.backend.Unlock(authedUser)
		}
	}()

	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		verb, arg, _ := strings.Cut(line, " ")
		switch strings.ToUpper(verb) {
		case "USER":
			pendUser = strings.TrimSpace(arg)
			ok("send PASS")
		case "PASS":
			if authed {
				bad("already authenticated")
				continue
			}
			u, err := parseUser(pendUser, s.users)
			if err != nil {
				bad("no such user")
				continue
			}
			m, err := s.backend.Pickup(u)
			if err != nil {
				bad("maildrop unavailable")
				continue
			}
			authedUser, authed = u, true
			msgs = m
			deleted = make([]bool, len(m))
			ok(fmt.Sprintf("maildrop has %d messages", len(m)))
		case "STAT":
			if !authed {
				bad("authenticate first")
				continue
			}
			n, bytes := 0, 0
			for i, m := range msgs {
				if !deleted[i] {
					n++
					bytes += len(m.Contents)
				}
			}
			ok(fmt.Sprintf("%d %d", n, bytes))
		case "LIST":
			if !authed {
				bad("authenticate first")
				continue
			}
			ok("scan listing follows")
			for i, m := range msgs {
				if !deleted[i] {
					fmt.Fprintf(w, "%d %d\r\n", i+1, len(m.Contents))
				}
			}
			fmt.Fprintf(w, ".\r\n")
			if w.Flush() != nil {
				return
			}
		case "RETR":
			i, valid := s.msgIndex(arg, msgs, deleted)
			if !authed || !valid {
				bad("no such message")
				continue
			}
			ok(fmt.Sprintf("%d octets", len(msgs[i].Contents)))
			writeMultiline(w, msgs[i].Contents)
			if w.Flush() != nil {
				return
			}
		case "TOP":
			num, rest, _ := strings.Cut(strings.TrimSpace(arg), " ")
			i, valid := s.msgIndex(num, msgs, deleted)
			lines, err := strconv.Atoi(strings.TrimSpace(rest))
			if !authed || !valid || err != nil || lines < 0 {
				bad("no such message")
				continue
			}
			ok("top of message follows")
			writeMultiline(w, topOf(msgs[i].Contents, lines))
			if w.Flush() != nil {
				return
			}
		case "UIDL":
			if !authed {
				bad("authenticate first")
				continue
			}
			if strings.TrimSpace(arg) != "" {
				i, valid := s.msgIndex(arg, msgs, deleted)
				if !valid {
					bad("no such message")
					continue
				}
				ok(fmt.Sprintf("%d %s", i+1, msgs[i].ID))
				continue
			}
			ok("unique-id listing follows")
			for i, m := range msgs {
				if !deleted[i] {
					fmt.Fprintf(w, "%d %s\r\n", i+1, m.ID)
				}
			}
			fmt.Fprintf(w, ".\r\n")
			if w.Flush() != nil {
				return
			}
		case "DELE":
			i, valid := s.msgIndex(arg, msgs, deleted)
			if !authed || !valid {
				bad("no such message")
				continue
			}
			deleted[i] = true
			ok("marked for deletion")
		case "RSET":
			for i := range deleted {
				deleted[i] = false
			}
			ok("reset")
		case "NOOP":
			ok("")
		case "QUIT":
			if authed {
				for i, m := range msgs {
					if deleted[i] {
						s.backend.Delete(authedUser, m.ID)
					}
				}
				s.backend.Unlock(authedUser)
				authed = false
			}
			ok("bye")
			return
		default:
			bad("unrecognized command")
		}
	}
}

func (s *Server) msgIndex(arg string, msgs []mailboat.Message, deleted []bool) (int, bool) {
	n, err := strconv.Atoi(strings.TrimSpace(arg))
	if err != nil || n < 1 || n > len(msgs) || deleted == nil || deleted[n-1] {
		return 0, false
	}
	return n - 1, true
}

func parseUser(name string, users uint64) (uint64, error) {
	if !strings.HasPrefix(name, "user") {
		return 0, fmt.Errorf("pop3: unknown user %q", name)
	}
	n, err := strconv.ParseUint(name[len("user"):], 10, 64)
	if err != nil || n >= users {
		return 0, fmt.Errorf("pop3: unknown user %q", name)
	}
	return n, nil
}

// topOf returns the message headers plus the first n body lines, per
// RFC 1939's TOP.
func topOf(body string, n int) string {
	lines := strings.Split(body, "\n")
	// Find the blank separator between headers and body.
	sep := len(lines)
	for i, l := range lines {
		if l == "" {
			sep = i
			break
		}
	}
	end := sep + 1 + n
	if end > len(lines) {
		end = len(lines)
	}
	return strings.Join(lines[:end], "\n")
}

// writeMultiline sends a POP3 multi-line response body with
// dot-stuffing and the terminating lone dot (RFC 1939 §3).
func writeMultiline(w *bufio.Writer, body string) {
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, ".") {
			w.WriteString(".")
		}
		w.WriteString(line)
		w.WriteString("\r\n")
	}
	w.WriteString(".\r\n")
}
