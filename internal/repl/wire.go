package repl

// The replication wire format: one request frame, one response frame,
// hand-encoded (fixed little-endian header, length-prefixed strings) so
// the model transport and the TCP transport carry byte-identical
// messages and neither needs a codec dependency.

// Request kinds.
const (
	kDeliver      = byte(1) // apply a delivery under (epoch, seq)
	kDelete       = byte(2) // apply a delete under (epoch, seq)
	kResyncBegin  = byte(3) // start catch-up: wipe, expect puts for epoch
	kResyncPut    = byte(4) // one authoritative message during catch-up
	kResyncCommit = byte(5) // catch-up done: persist epoch, go live
	kPing         = byte(6) // liveness + epoch probe (and a delivery
	// opportunity for reordered frames in the model)
)

// Response statuses.
const (
	// StOK: applied, or already in the requested state (idempotent
	// duplicate) — the only status that advances the caller.
	StOK = byte(0)
	// StStaleEpoch: the request's epoch is older than the responder's.
	// The sender has been fenced: a resync or failover completed after
	// the frame was sent.
	StStaleEpoch = byte(1)
	// StNeedResync: the responder cannot apply in order (sequence gap,
	// or it is behind the request's epoch) and needs a catch-up resync.
	StNeedResync = byte(2)
	// StNameTaken: the delivery's name holds different contents; the
	// primary must pick another name. The sequence number was not
	// consumed.
	StNameTaken = byte(3)
	// StStoreFailed: the responder's store refused the apply; nothing
	// changed. Retryable with the same sequence number.
	StStoreFailed = byte(4)
	// StBadRequest: unparseable or out-of-protocol frame.
	StBadRequest = byte(5)
)

// statusName renders a status for traces and errors.
func statusName(st byte) string {
	switch st {
	case StOK:
		return "ok"
	case StStaleEpoch:
		return "stale-epoch"
	case StNeedResync:
		return "need-resync"
	case StNameTaken:
		return "name-taken"
	case StStoreFailed:
		return "store-failed"
	case StBadRequest:
		return "bad-request"
	}
	return "status(?)"
}

// request is one decoded replication request.
type request struct {
	kind  byte
	epoch uint64
	seq   uint64
	user  uint64
	name  string
	body  []byte
}

func putU64(b []byte, v uint64) []byte {
	return append(b,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func getU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// encodeReq renders r as a frame.
func encodeReq(r request) []byte {
	b := make([]byte, 0, 1+8*4+len(r.name)+8+len(r.body))
	b = append(b, r.kind)
	b = putU64(b, r.epoch)
	b = putU64(b, r.seq)
	b = putU64(b, r.user)
	b = putU64(b, uint64(len(r.name)))
	b = append(b, r.name...)
	b = putU64(b, uint64(len(r.body)))
	b = append(b, r.body...)
	return b
}

// decodeReq parses a frame; ok is false on malformed input.
func decodeReq(b []byte) (r request, ok bool) {
	if len(b) < 1+8*4 {
		return r, false
	}
	r.kind = b[0]
	b = b[1:]
	r.epoch, b = getU64(b), b[8:]
	r.seq, b = getU64(b), b[8:]
	r.user, b = getU64(b), b[8:]
	nameLen := getU64(b)
	b = b[8:]
	if uint64(len(b)) < nameLen+8 {
		return r, false
	}
	r.name, b = string(b[:nameLen]), b[nameLen:]
	bodyLen := getU64(b)
	b = b[8:]
	if uint64(len(b)) != bodyLen {
		return r, false
	}
	r.body = append([]byte(nil), b...)
	return r, true
}

// encodeResp renders a (status, responder epoch) response frame.
func encodeResp(st byte, epoch uint64) []byte {
	b := make([]byte, 0, 9)
	b = append(b, st)
	return putU64(b, epoch)
}

// decodeResp parses a response frame; a malformed one reads as
// StBadRequest so callers treat it as a non-advancing outcome.
func decodeResp(b []byte) (st byte, epoch uint64) {
	if len(b) < 9 {
		return StBadRequest, 0
	}
	return b[0], getU64(b[1:])
}
