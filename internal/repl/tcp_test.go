package repl

import (
	"bytes"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gfs"
	"repro/internal/mailboat"
	"repro/internal/netmodel"
	"repro/internal/obs"
)

// tcpRand is the native gfs.T for transport tests: deterministic,
// concurrency-safe (server goroutines draw from it too).
type tcpRand struct{ ctr atomic.Uint64 }

func (r *tcpRand) RandUint64(bound uint64) uint64 {
	z := r.ctr.Add(1) * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return (z ^ (z >> 31)) % bound
}

func tcpConfig() mailboat.Config {
	return mailboat.Config{Users: 2, RandBound: 64, SyncOnDeliver: true, SyncDirs: true}
}

// newTCPNode builds one node over a real on-disk store plus its frame
// server on an ephemeral loopback listener. Returns the node, its
// address, and the server (for kill drills).
func newTCPNode(t *testing.T, rt gfs.T, id int) (*Node, string, *Server) {
	t.Helper()
	cfg := tcpConfig()
	sys, err := gfs.NewOS(t.TempDir(), ReplDirs(cfg))
	if err != nil {
		t.Fatalf("NewOS: %v", err)
	}
	t.Cleanup(func() { sys.CloseAll() })
	mb := mailboat.Init(rt, nil, sys, cfg)
	nd := NewNode(rt, id, mb, sys, Config{RetryBackoff: time.Millisecond})
	srv := NewServer(nd, rt)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(lis)
	t.Cleanup(srv.Close)
	return nd, lis.Addr().String(), srv
}

// TestFrameRoundTrip checks the length-prefixed framing over an
// in-memory pipe, including the oversize guard.
func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	payload := bytes.Repeat([]byte("frame"), 1000)
	errc := make(chan error, 1)
	go func() { errc <- writeFrame(a, payload) }()
	got, err := readFrame(b)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	if werr := <-errc; werr != nil {
		t.Fatalf("writeFrame: %v", werr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("frame corrupted: %d bytes vs %d", len(got), len(payload))
	}

	// An oversize header must be rejected without allocating the body.
	go func() {
		hdr := []byte{0xff, 0xff, 0xff, 0xff}
		a.Write(hdr)
	}()
	if _, err := readFrame(b); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

// TestTCPReplicatedDeliver runs the full client leg over real sockets:
// a delivery on the primary must land on the backup's disk (remote
// first) and then the primary's, and a ping must round-trip.
func TestTCPReplicatedDeliver(t *testing.T) {
	rt := &tcpRand{}
	backup, baddr, _ := newTCPNode(t, rt, 1)
	primary, _, _ := newTCPNode(t, rt, 0)
	client := &TCPClient{Addr: baddr, Timeout: time.Second, Metrics: netmodel.NewNetMetrics(obs.NewRegistry())}
	defer client.Close()
	primary.SetPeer(client, client.PeerDead, nil)
	primary.SetPrimary(true)

	if !primary.Ping(rt) {
		t.Fatal("ping over TCP failed")
	}
	if res := primary.DeliverNamed(rt, 0, "msg1", []byte("over tcp")); res != OpOK {
		t.Fatalf("DeliverNamed: %v", res)
	}
	for i, nd := range []*Node{primary, backup} {
		msgs := nd.Mailboat().Pickup(rt, nil, 0)
		if len(msgs) != 1 || string(msgs[0].Contents) != "over tcp" {
			t.Fatalf("node %d: got %d msgs, want the delivery", i, len(msgs))
		}
		nd.Mailboat().Unlock(rt, nil, 0)
	}
	if res := primary.DeleteNamed(rt, 0, "msg1"); res != OpOK {
		t.Fatalf("DeleteNamed: %v", res)
	}
	for i, nd := range []*Node{primary, backup} {
		msgs := nd.Mailboat().Pickup(rt, nil, 0)
		if len(msgs) != 0 {
			t.Fatalf("node %d: %d msgs after replicated delete", i, len(msgs))
		}
		nd.Mailboat().Unlock(rt, nil, 0)
	}
}

// TestTCPPingDetectsStaleBackup: the seq-aware ping. A replacement
// backup (fresh store, volatile apply cursor at zero) must answer a
// ping from a primary with acknowledged operations as behind
// (StNeedResync) — not OK — so an idle primary's pinger resyncs it
// instead of reporting a healthy pair over a stale store; after the
// catch-up the same ping answers OK and the store holds the data.
func TestTCPPingDetectsStaleBackup(t *testing.T) {
	rt := &tcpRand{}
	_, baddr, _ := newTCPNode(t, rt, 1)
	primary, _, _ := newTCPNode(t, rt, 0)
	client := &TCPClient{Addr: baddr, Timeout: time.Second}
	defer client.Close()
	primary.SetPeer(client, client.PeerDead, nil)
	primary.SetPrimary(true)
	if res := primary.DeliverNamed(rt, 0, "msg1", []byte("pre-replace")); res != OpOK {
		t.Fatalf("DeliverNamed: %v", res)
	}

	// Replace the backup: a fresh node on a fresh store, as after a
	// reboot that lost the volatile cursor (plus, here, the disk).
	fresh, faddr, _ := newTCPNode(t, rt, 1)
	client2 := &TCPClient{Addr: faddr, Timeout: time.Second}
	defer client2.Close()
	primary.SetPeer(client2, client2.PeerDead, nil)

	if ok, behind := primary.PingCheck(rt); ok || !behind {
		t.Fatalf("ping against stale backup: ok=%v behind=%v, want behind", ok, behind)
	}
	if !primary.Resync(rt) {
		t.Fatal("Resync of the replacement backup failed")
	}
	if ok, behind := primary.PingCheck(rt); !ok || behind {
		t.Fatalf("ping after resync: ok=%v behind=%v, want ok", ok, behind)
	}
	msgs := fresh.Mailboat().Pickup(rt, nil, 0)
	if len(msgs) != 1 || string(msgs[0].Contents) != "pre-replace" {
		t.Fatalf("replacement backup has %d msgs after resync, want the delivery", len(msgs))
	}
	fresh.Mailboat().Unlock(rt, nil, 0)
}

// TestTCPPartitionOutcome: the drill gate drops calls before the wire
// (Lost — a definite no), flips Reachable, and heals cleanly.
func TestTCPPartitionOutcome(t *testing.T) {
	rt := &tcpRand{}
	_, baddr, _ := newTCPNode(t, rt, 1)
	client := &TCPClient{Addr: baddr, Timeout: time.Second}
	defer client.Close()

	ping := encodeReq(request{kind: kPing})
	if _, out := client.Call(rt, ping); out != netmodel.Delivered {
		t.Fatalf("pre-partition ping: %v", out)
	}
	client.Partition(true)
	if _, out := client.Call(rt, ping); out != netmodel.Lost {
		t.Fatalf("partitioned call outcome: %v, want Lost", out)
	}
	if client.Reachable() {
		t.Fatal("Reachable across an open partition gate")
	}
	if client.PeerDead() {
		t.Fatal("a partition must never read as peer death (split-brain)")
	}
	client.Partition(false)
	if _, out := client.Call(rt, ping); out != netmodel.Delivered {
		t.Fatalf("post-heal ping: %v", out)
	}
	if !client.Reachable() {
		t.Fatal("not Reachable after heal")
	}
}

// TestTCPPeerDeadHeals: a refused-dial streak latches PeerDead, and a
// successful dial (the peer restarted) clears it — unlike the model's
// fail-stop latch, the deployment's verdict heals.
func TestTCPPeerDeadHeals(t *testing.T) {
	rt := &tcpRand{}
	// Reserve an address with no listener: dials are refused.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := lis.Addr().String()
	lis.Close()

	client := &TCPClient{Addr: addr, Timeout: time.Second, DeadAfter: 3}
	defer client.Close()
	ping := encodeReq(request{kind: kPing})
	for i := 0; i < 3; i++ {
		if _, out := client.Call(rt, ping); out != netmodel.Lost {
			t.Fatalf("refused dial %d outcome: %v, want Lost", i, out)
		}
	}
	if !client.PeerDead() {
		t.Fatal("PeerDead false after 3 refused dials")
	}
	if client.Reachable() {
		t.Fatal("Reachable while refused")
	}

	// The peer "restarts": bind the same address and answer frames.
	nd, _, _ := newTCPNode(t, rt, 1)
	srv := NewServer(nd, rt)
	lis2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	go srv.Serve(lis2)
	defer srv.Close()
	if _, out := client.Call(rt, ping); out != netmodel.Delivered {
		t.Fatalf("post-restart ping: %v", out)
	}
	if client.PeerDead() {
		t.Fatal("PeerDead did not heal on a successful dial")
	}
}

// TestServerCloseSeversConns: Close must kill connections accepted
// before it, not just the listener — a killed node goes silent even to
// a primary holding a cached connection.
func TestServerCloseSeversConns(t *testing.T) {
	rt := &tcpRand{}
	_, baddr, srv := newTCPNode(t, rt, 1)
	client := &TCPClient{Addr: baddr, Timeout: time.Second}
	defer client.Close()
	ping := encodeReq(request{kind: kPing})
	if _, out := client.Call(rt, ping); out != netmodel.Delivered {
		t.Fatalf("ping before kill: %v", out)
	}
	srv.Close()
	// The cached connection was severed server-side: the next call must
	// NOT be Delivered (Unknown on the dead cached conn, or Lost once
	// redialing a closed listener).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, out := client.Call(rt, ping); out != netmodel.Delivered {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("killed server kept answering on a cached connection")
		}
	}
}
