package repl

import (
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/mailboat"
	"repro/internal/netmodel"
)

// smallConfig is the workload-sized store for scenario tests.
func smallConfig() mailboat.Config {
	return mailboat.Config{Users: 1, RandBound: 4, SyncOnDeliver: true, SyncDirs: true}
}

// TestReplicatedFaultFree: the replicated pair refines the unchanged
// atomic spec with no faults at all — the plumbing baseline.
func TestReplicatedFaultFree(t *testing.T) {
	s := Scenario("mb-repl-faultfree", ScenarioOptions{
		Config:      smallConfig(),
		Delivers:    []mailboat.OpDeliver{{User: 0, Msg: "a"}, {User: 0, Msg: "b"}},
		PickupUsers: []uint64{0},
		PostPickups: true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 20000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

// TestReplicatedNetFaults: every network fault class enumerable, one
// fault per execution, no crashes — the acked history must still refine
// the spec and settled stores must be byte-identical.
func TestReplicatedNetFaults(t *testing.T) {
	max := 100000
	if testing.Short() {
		max = 20000
	}
	s := Scenario("mb-repl-netfaults", ScenarioOptions{
		Config:         smallConfig(),
		Delivers:       []mailboat.OpDeliver{{User: 0, Msg: "a"}},
		PickupUsers:    []uint64{0},
		PostPickups:    true,
		NetFaultBudget: 1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: max})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

// TestReplicatedCrashAndNet: a whole-site crash may interleave with a
// reordered/duplicated/dropped frame or partition burst; recovery
// re-elects by epoch and resyncs. Refinement and the byte-identical
// invariant must hold throughout.
func TestReplicatedCrashAndNet(t *testing.T) {
	max := 100000
	if testing.Short() {
		max = 20000
	}
	s := Scenario("mb-repl-crash-net", ScenarioOptions{
		Config:         smallConfig(),
		Delivers:       []mailboat.OpDeliver{{User: 0, Msg: "a"}},
		PickupUsers:    []uint64{0},
		PostPickups:    true,
		MaxCrashes:     1,
		NetFaultBudget: 1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: max})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

// TestReplicatedFailStop: either node's store may fail-stop at any
// operation (one death per execution); failover must keep every acked
// operation visible.
func TestReplicatedFailStop(t *testing.T) {
	max := 100000
	if testing.Short() {
		max = 20000
	}
	s := Scenario("mb-repl-failstop", ScenarioOptions{
		Config:           smallConfig(),
		Delivers:         []mailboat.OpDeliver{{User: 0, Msg: "a"}},
		PickupUsers:      []uint64{0},
		PostPickups:      true,
		StoreFaultBudget: 1,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: max})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

// TestConvictAckBeforeBackup: the mutation that acks after the local
// publish alone must be convicted — a fail-stop of the primary after
// the ack and a failover to the never-told backup loses acked mail,
// which the history check sees as a refinement failure.
func TestConvictAckBeforeBackup(t *testing.T) {
	s := Scenario("mb-repl-bug-ack-before-backup", ScenarioOptions{
		Config:           smallConfig(),
		Delivers:         []mailboat.OpDeliver{{User: 0, Msg: "a"}},
		PickupUsers:      []uint64{0},
		PostPickups:      true,
		StoreFaultBudget: 1,
		Mut:              Mutations{AckBeforeBackup: true},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 400000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("mutation not convicted")
	}
	// The counterexample must replay and minimize to a replayable core.
	if cx := explore.ReplayCx(s, rep.Counterexample.Choices); cx == nil {
		t.Fatal("counterexample does not replay")
	}
	min := explore.Minimize(s, rep.Counterexample.Choices)
	if cx := explore.ReplayCx(s, min); cx == nil {
		t.Fatal("minimized counterexample does not replay")
	}
	t.Logf("counterexample: %d choices, minimized to %d", len(rep.Counterexample.Choices), len(min))
}

// TestConvictResyncSkipsEpoch: the mutation that resyncs without
// bumping the epoch must be convicted — a reordered replicate frame
// held across a site crash lands after the catch-up, walks straight
// through the un-bumped epoch gate, and consumes a sequence number in
// the new run's space, so a later client operation is swallowed by the
// backup's duplicate detection (or the replayed frame resurrects
// deleted state outright). Either way the stores diverge and the
// byte-identical invariant reports it. No main-era pickup thread: the
// post-era session is enough to expose it and keeps the search small.
func TestConvictResyncSkipsEpoch(t *testing.T) {
	s := Scenario("mb-repl-bug-resync-skips-epoch", ScenarioOptions{
		Config:         smallConfig(),
		Delivers:       []mailboat.OpDeliver{{User: 0, Msg: "a"}},
		PostPickups:    true,
		MaxCrashes:     1,
		NetFaultBudget: 1,
		NetFaults:      []netmodel.Fault{netmodel.FaultReorder},
		Mut:            Mutations{ResyncSkipsEpoch: true},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 400000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("mutation not convicted")
	}
	if !strings.Contains(rep.Counterexample.Reason, "divergence") &&
		!strings.Contains(rep.Counterexample.Reason, "refinement") {
		t.Fatalf("unexpected conviction reason: %s", rep.Counterexample.Reason)
	}
	if cx := explore.ReplayCx(s, rep.Counterexample.Choices); cx == nil {
		t.Fatal("counterexample does not replay")
	}
	min := explore.Minimize(s, rep.Counterexample.Choices)
	if cx := explore.ReplayCx(s, min); cx == nil {
		t.Fatal("minimized counterexample does not replay")
	}
	t.Logf("counterexample: %d choices, minimized to %d", len(rep.Counterexample.Choices), len(min))
}

// TestReplicatedSelfCheckDedup runs the dedup soundness self-check on
// the replicated crash scenario: the fingerprint covers both stores
// (devices), the network's surviving in-flight frames (device), the
// fault policies' budgets and the fail-stop latches, and the check
// requires dedup to activate and agree with the dedup-less search.
func TestReplicatedSelfCheckDedup(t *testing.T) {
	s := Scenario("mb-repl-selfcheck", ScenarioOptions{
		Config:         smallConfig(),
		Delivers:       []mailboat.OpDeliver{{User: 0, Msg: "a"}},
		PickupUsers:    []uint64{0},
		PostPickups:    true,
		MaxCrashes:     1,
		NetFaultBudget: 1,
		NetFaults:      []netmodel.Fault{netmodel.FaultReorder, netmodel.FaultDropReply},
	})
	opts := explore.Options{MaxExecutions: 20000}
	if testing.Short() {
		opts.MaxExecutions = 2000
	}
	with, without, err := explore.SelfCheckDedup(s, opts)
	if err != nil {
		t.Fatalf("self-check failed: %v", err)
	}
	t.Logf("without dedup: %s", without)
	t.Logf("with dedup:    %s (%d boundaries, %d pruned)",
		with, with.Stats.DistinctBoundaries, with.Stats.PrunedStates)
	if !with.Stats.DedupActive {
		t.Fatal("dedup did not activate on the replicated scenario")
	}
}
