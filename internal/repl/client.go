package repl

import (
	"repro/internal/gfs"
	"repro/internal/machine"
	"repro/internal/mailboat"
	"repro/internal/netmodel"
	"repro/internal/trace"
)

// This file is the primary role: the remote-first client leg. The ack
// discipline in one line: REPLICATE, THEN APPLY, THEN ACK. A definite
// replication failure leaves both stores untouched; an indeterminate
// one is retried under the same sequence number until the backup's
// duplicate detection resolves it.

// DeliverNamed runs the replicated delivery of msg to user under the
// caller-chosen mailbox name. OpNameTaken means the name is in use —
// pick a fresh name and call again. The name is pre-checked free
// inside the replication lock, and any existing entry is a collision,
// even a byte-identical one: two identical messages must insert twice,
// so the idempotence shortcut in the store layer is reserved for
// replays of the SAME (epoch, seq)-tagged frame, never for a fresh
// delivery that happens to repeat another's contents.
func (nd *Node) DeliverNamed(t gfs.T, user uint64, name string, msg []byte) OpResult {
	sp := trace.Enter(t, "repl.deliver")
	defer trace.Exit(t, sp)
	nd.lock.Acquire(t)
	defer nd.lock.Release(t)
	if _, present := nd.mb.ReadMessage(t, user, name); present {
		return OpNameTaken
	}
	if nd.cfg.Mut.AckBeforeBackup {
		// BUG (mb/repl-bug:ack-before-backup): publish locally and ack
		// without waiting for the backup — the replication layer's
		// ack-before-fsync. The backup catches up... unless the primary
		// dies first, and then a failover serves a mailbox missing an
		// acknowledged message.
		return applyResult(nd.mb.DeliverAs(t, user, name, msg))
	}
	res := nd.replicate(t, request{kind: kDeliver, user: user, name: name, body: msg})
	if res != OpOK {
		return res
	}
	if !nd.localDeliverMust(t, user, name, msg) {
		// The backup holds the message durably but our own store is
		// dying. The operation must not be re-executed — the backup's
		// copy may legitimately be consumed (picked up and deleted)
		// before any retry runs, and a re-apply would resurrect it.
		return OpIndeterminate
	}
	return OpOK
}

// DeleteNamed runs the replicated removal of user's message name.
func (nd *Node) DeleteNamed(t gfs.T, user uint64, name string) OpResult {
	sp := trace.Enter(t, "repl.delete")
	defer trace.Exit(t, sp)
	nd.lock.Acquire(t)
	defer nd.lock.Release(t)
	res := nd.replicate(t, request{kind: kDelete, user: user, name: name})
	if res != OpOK {
		return res
	}
	if !nd.localDeleteMust(t, user, name) {
		return OpIndeterminate
	}
	return OpOK
}

// applyResult maps a local mailboat apply status to an OpResult.
func applyResult(st mailboat.ApplyStatus) OpResult {
	switch st {
	case mailboat.Applied, mailboat.AlreadyApplied:
		return OpOK
	case mailboat.NameTaken:
		return OpNameTaken
	}
	return OpFailed
}

// replicate resolves one (epoch, seq)-tagged operation against the
// backup. It returns OpOK only once the backup has durably applied the
// operation (or the failure detector has fenced the backup dead, in
// which case the primary proceeds alone — the fail-stop latch
// guarantees that store never serves again without a catch-up resync).
//
// Outcome taxonomy on the retry loop:
//
//	Lost          definite no — retry; exhausting retries without ever
//	              seeing Unknown aborts with NOTHING applied anywhere
//	              (a failed replication RPC is never an ack barrier).
//	Unknown       maybe applied — MUST retry the same seq until the
//	              outcome resolves; the backup's duplicate detection
//	              makes the retry idempotent. Native threads cap this
//	              (repl_indeterminate_total, the at-least-once hazard);
//	              modeled threads resolve within the fault budget.
//	StStaleEpoch  with the backup ahead: we are fenced (it promoted);
//	              abort. With our own epoch merely newer than the
//	              frame's (an in-op resync): retag and retry.
//	StNeedResync  the backup is behind or rebooted: run the catch-up,
//	              then retry in the new epoch's sequence space.
//	StStoreFailed transient backup store refusal: retry same seq.
func (nd *Node) replicate(t gfs.T, r request) OpResult {
	_, modeled := t.(*machine.T)
	r.seq = nd.seq + 1
	everUnknown := false
	resyncs := 0
	for attempt := 1; ; attempt++ {
		if nd.peerGone() {
			// Fenced dead: ack alone. Sound because the fail-stop latch
			// (or the deployment's refused-connection streak after which
			// an operator replaces the node) means that store rejoins
			// only through a catch-up resync, which discards whatever
			// partial state it holds.
			trace.Event(t, "repl: peer dead, proceeding alone")
			nd.cfg.Metrics.AckAloneInc()
			nd.setSeq(r.seq)
			return OpOK
		}
		r.epoch = nd.epoch
		resp, oc := nd.peer.Call(t, encodeReq(r))
		if oc == netmodel.Delivered {
			st, repoch := decodeResp(resp)
			switch st {
			case StOK:
				nd.setSeq(r.seq)
				nd.cfg.Metrics.ReplicateObserved("ok")
				return OpOK
			case StNameTaken:
				return OpNameTaken // seq was not consumed; reusable
			case StStaleEpoch:
				if repoch > nd.epoch {
					// The backup fenced us out: it promoted (or committed
					// a catch-up we know nothing of). Stop acking.
					trace.Event(t, "repl: fenced by epoch %d > %d", repoch, nd.epoch)
					nd.cfg.Metrics.ReplicateObserved("failed")
					return OpFailed
				}
				// Our own epoch advanced mid-operation; retag and retry.
			case StNeedResync:
				resyncs++
				if resyncs > 3 || !nd.resyncLocked(t) {
					nd.cfg.Metrics.ReplicateObserved("failed")
					return OpFailed
				}
				r.seq = nd.seq + 1 // fresh epoch, fresh sequence space
				continue
			case StStoreFailed, StBadRequest:
				nd.cfg.Metrics.ReplicateObserved("retry")
			}
		} else {
			if oc == netmodel.Unknown {
				everUnknown = true
			}
			nd.cfg.Metrics.ReplicateObserved("retry")
		}
		if !everUnknown && attempt >= nd.maxCallRetries() {
			// Every attempt definitely failed: neither store was
			// touched. This is the no-ack-barrier property.
			nd.cfg.Metrics.ReplicateObserved("failed")
			return OpFailed
		}
		if everUnknown && !modeled && attempt >= nd.indetRetries() {
			nd.cfg.Metrics.IndeterminateInc()
			nd.cfg.Metrics.ReplicateObserved("failed")
			return OpFailed
		}
		if !nd.retryPause(t, attempt) {
			if everUnknown {
				nd.cfg.Metrics.IndeterminateInc()
			}
			nd.cfg.Metrics.ReplicateObserved("failed")
			return OpFailed
		}
	}
}

// localDeliverMust applies the delivery locally after the backup
// confirmed it — past the point of no return, so transient local
// faults are retried until the store either applies or is dead.
func (nd *Node) localDeliverMust(t gfs.T, user uint64, name string, msg []byte) bool {
	for attempt := 1; ; attempt++ {
		switch nd.mb.DeliverAs(t, user, name, msg) {
		case mailboat.Applied, mailboat.AlreadyApplied:
			return true
		case mailboat.NameTaken:
			// Cannot happen in-protocol: the backup accepted the name,
			// and local publishes only follow backup acceptance. Fail
			// loudly under the checker.
			if mt, ok := t.(*machine.T); ok {
				mt.Failf("repl: local name %q taken after backup accepted it", name)
			}
			return false
		}
		if nd.selfDeadNow() {
			return false
		}
		if !nd.retryPause(t, attempt) {
			return false
		}
		if _, modeled := t.(*machine.T); !modeled && attempt >= 8 {
			return false
		}
	}
}

// localDeleteMust is localDeliverMust for deletes.
func (nd *Node) localDeleteMust(t gfs.T, user uint64, name string) bool {
	for attempt := 1; ; attempt++ {
		switch nd.mb.DeleteAs(t, user, name) {
		case mailboat.Applied, mailboat.AlreadyApplied:
			return true
		}
		if nd.selfDeadNow() {
			return false
		}
		if !nd.retryPause(t, attempt) {
			return false
		}
		if _, modeled := t.(*machine.T); !modeled && attempt >= 8 {
			return false
		}
	}
}

// Resync runs a catch-up: bump and persist OUR epoch first (the fence
// — in-flight frames from before this moment now carry a stale epoch),
// then stream the full authoritative state to the backup and commit.
// Returns false when the catch-up could not complete; the backup is
// then stale and the pair degraded until the next attempt.
func (nd *Node) Resync(t gfs.T) bool {
	nd.lock.Acquire(t)
	defer nd.lock.Release(t)
	return nd.resyncLocked(t)
}

func (nd *Node) resyncLocked(t gfs.T) bool {
	sp := trace.Enter(t, "repl.resync")
	defer trace.Exit(t, sp)
	newEpoch := nd.epoch + 1
	if nd.cfg.Mut.ResyncSkipsEpoch {
		// BUG (mb/repl-bug:resync-skips-epoch): catch up without
		// bumping the epoch. The snapshot installs fine — and every
		// pre-resync frame still in flight carries a VALID epoch, so a
		// reordered replicate frame landing after the catch-up walks
		// straight through the gate and resurrects deleted state.
		newEpoch = nd.epoch
	} else if !nd.persistEpochRetry(t, newEpoch) {
		nd.cfg.Metrics.ResyncObserved(false)
		return false
	}
	nd.setEpoch(newEpoch)
	nd.setSeq(0)
	if !nd.rcallOK(t, request{kind: kResyncBegin, epoch: newEpoch}) {
		nd.cfg.Metrics.ResyncObserved(false)
		return false
	}
	for u := uint64(0); u < nd.mb.Users(); u++ {
		for _, m := range nd.mb.ReadBox(t, u) {
			put := request{kind: kResyncPut, epoch: newEpoch, user: u, name: m.ID, body: []byte(m.Contents)}
			if !nd.rcallOK(t, put) {
				nd.cfg.Metrics.ResyncObserved(false)
				return false
			}
		}
	}
	if !nd.rcallOK(t, request{kind: kResyncCommit, epoch: newEpoch}) {
		nd.cfg.Metrics.ResyncObserved(false)
		return false
	}
	nd.cfg.Metrics.ResyncObserved(true)
	nd.markResynced(t)
	trace.Event(t, "repl: resync complete at epoch %d", newEpoch)
	return true
}

// rcallOK pushes one idempotent resync leg until it answers StOK,
// within a retry budget. Lost, Unknown and transient store refusals
// all retry — every resync frame is safe to repeat.
func (nd *Node) rcallOK(t gfs.T, r request) bool {
	for attempt := 1; ; attempt++ {
		if nd.peerGone() {
			return false
		}
		resp, oc := nd.peer.Call(t, encodeReq(r))
		if oc == netmodel.Delivered {
			st, _ := decodeResp(resp)
			if st == StOK {
				return true
			}
			if st != StStoreFailed {
				trace.Event(t, "repl: resync leg refused: %s", statusName(st))
				return false
			}
		}
		if attempt >= nd.maxCallRetries()*2 {
			return false
		}
		if !nd.retryPause(t, attempt) {
			return false
		}
	}
}

// Promote makes this node the primary of a new epoch: persist the
// bumped epoch (fencing the old primary's in-flight frames), reset the
// sequence space, assume the role. Used at failover; the caller must
// have established that this node is safe to promote (in sync: same
// epoch as the failed primary and not mid-resync).
func (nd *Node) Promote(t gfs.T) bool {
	nd.lock.Acquire(t)
	defer nd.lock.Release(t)
	newEpoch := nd.epoch + 1
	if !nd.persistEpochRetry(t, newEpoch) {
		return false
	}
	nd.setEpoch(newEpoch)
	nd.setSeq(0)
	nd.setLastApplied(0)
	nd.SetPrimary(true)
	nd.cfg.Metrics.FailoverInc()
	trace.Event(t, "repl: promoted to primary at epoch %d", newEpoch)
	return true
}

// Ping probes the peer once (no retries): liveness, epoch — and in the
// model a delivery opportunity for reordered frames still in flight.
// True means the peer answered StOK at our (epoch, seq): alive AND in
// sync.
func (nd *Node) Ping(t gfs.T) bool {
	ok, _ := nd.PingCheck(t)
	return ok
}

// PingCheck is the seq-aware probe behind Ping. ok means the peer
// answered StOK — alive and caught up to our sequence space. behind
// means it answered StNeedResync: its volatile apply cursor trails our
// seq (the rejoined-backup signature — a reboot zeroes the cursor).
// The deployment's pinger runs a catch-up resync on a behind verdict
// so the staleness window is bounded by the ping period instead of by
// the arrival of the next replicated operation. behind is deliberately
// NOT set on StStaleEpoch: that answer means the peer fenced us (it
// promoted), and a resync from the fenced side must stay a failing,
// visible condition — never an automatic epoch climb that could
// eventually overwrite the new primary.
func (nd *Node) PingCheck(t gfs.T) (ok, behind bool) {
	if nd.peer == nil {
		return false, false
	}
	nd.mu.Lock()
	r := request{kind: kPing, epoch: nd.epoch, seq: nd.seq}
	nd.mu.Unlock()
	resp, oc := nd.peer.Call(t, encodeReq(r))
	if oc != netmodel.Delivered {
		return false, false
	}
	st, _ := decodeResp(resp)
	return st == StOK, st == StNeedResync
}
