package repl

import (
	"bytes"
	"fmt"

	"repro/internal/explore"
	"repro/internal/gfs"
	"repro/internal/machine"
	"repro/internal/mailboat"
	"repro/internal/netmodel"
	"repro/internal/spec"
)

// This file builds the replicated refinement scenarios: either node's
// store may fail-stop and the network may drop, duplicate, reorder or
// partition — and the Pair must still refine the UNCHANGED atomic
// mailboat spec. The single-node spec is the point: replication is an
// availability mechanism, not a semantic one, so the client-visible
// contract must not move when a second node appears.
//
// The scenarios run ghost-free (black-box refinement through the Pair):
// the ghost machinery commits a spec step atomically with one store
// operation, and a replicated operation spans two stores and a network
// round trip. Refinement rests on the recorded history, plus a
// between-era invariant: when both nodes are live and in the same
// epoch, their user directories must be byte-identical.

// ScenarioWorld carries the replicated composition across eras.
type ScenarioWorld struct {
	FS       [2]*gfs.Model
	F        [2]*gfs.Faulty
	Net      *netmodel.Net
	StorePol *gfs.ChooserPolicy
	NetPol   *netmodel.ChooserPolicy
	Pair     *Pair
}

// ScenarioOptions shapes the replicated workload.
type ScenarioOptions struct {
	// Config sizes each node's store (RandBound should stay small).
	Config mailboat.Config
	// Delivers spawns one delivery thread per entry.
	Delivers []mailboat.OpDeliver
	// PickupUsers spawns, per entry, a thread doing Pickup(u), Delete of
	// the first message if any, then Unlock(u) — all through the Pair.
	PickupUsers []uint64
	// MaxCrashes bounds injected whole-site crashes (both nodes reboot;
	// in-flight network frames survive).
	MaxCrashes int
	// PostPickups reads each user's mailbox at the end.
	PostPickups bool
	// StoreFaultBudget, when positive, lets the chooser permanently
	// fail-stop EITHER node's store at any of its operations, with this
	// many fail-stops per execution shared between the two nodes.
	StoreFaultBudget int
	// NetFaultBudget, when positive, lets the chooser inject network
	// faults (tag "net") with this shared budget per execution.
	NetFaultBudget int
	// NetFaults restricts which fault classes the chooser may inject
	// (nil = all of drop, duplicate, reorder, drop-reply, partition).
	NetFaults []netmodel.Fault
	// Mut enables the seeded replication-protocol mutations.
	Mut Mutations
}

// Scenario builds the replicated checkable scenario.
func Scenario(name string, o ScenarioOptions) *explore.Scenario {
	sp := mailboat.Spec(o.Config)

	pairOp := func(t *machine.T, w *ScenarioWorld, h *explore.Harness, user uint64) {
		ret, served := h.OpMaybe(mailboat.OpPickup{User: user}, func() (spec.Ret, bool) {
			m, ok := w.Pair.Pickup(t, user)
			return m, ok
		})
		if !served {
			// The pair could not answer (primary dead, backup
			// unpromotable): the op stays pending, the client got nothing,
			// and there is no session to continue.
			return
		}
		listed := ret.([]mailboat.Message)
		if len(listed) > 0 {
			h.OpMaybe(mailboat.OpDelete{User: user, ID: listed[0].ID}, func() (spec.Ret, bool) {
				removed, answered := w.Pair.Delete(t, user, listed[0].ID)
				return removed, answered
			})
		}
		h.Op(mailboat.OpUnlock{User: user}, func() spec.Ret {
			w.Pair.Unlock(t, user)
			return nil
		})
	}

	return &explore.Scenario{
		Name: name,
		Spec: sp,
		// A replicated op is a network round trip plus two store applies,
		// and every recovery resync walks both stores message by message.
		MachineOpts: machine.Options{MaxSteps: 60000},
		MaxCrashes:  o.MaxCrashes,
		RandPolicy:  func(call, n int) int { return call % n },
		Setup: func(m *machine.Machine) any {
			w := &ScenarioWorld{}
			storePol := gfs.Policy(gfs.NeverPolicy{})
			if o.StoreFaultBudget > 0 {
				w.StorePol = &gfs.ChooserPolicy{
					Budget:   o.StoreFaultBudget,
					Eligible: map[gfs.FaultOp]bool{gfs.FaultFailStop: true},
				}
				storePol = w.StorePol
			}
			for i := 0; i < 2; i++ {
				w.FS[i] = gfs.NewModel(m, ReplDirs(o.Config))
				w.F[i] = gfs.NewFaulty(w.FS[i], storePol)
			}
			netPol := netmodel.Policy(netmodel.NeverPolicy{})
			if o.NetFaultBudget > 0 {
				w.NetPol = &netmodel.ChooserPolicy{Budget: o.NetFaultBudget}
				if o.NetFaults != nil {
					w.NetPol.Eligible = map[netmodel.Fault]bool{}
					for _, f := range o.NetFaults {
						w.NetPol.Eligible[f] = true
					}
				}
				netPol = w.NetPol
			}
			w.Net = netmodel.New(m, netPol)
			return w
		},
		Init: func(t *machine.T, wAny any) {
			w := wAny.(*ScenarioWorld)
			w.Pair = NewPair(t, [2]gfs.System{w.F[0], w.F[1]}, w.F, w.Net,
				o.Config, Config{Mut: o.Mut})
		},
		Main: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*ScenarioWorld)
			for _, d := range o.Delivers {
				op := d
				t.Go(func(c *machine.T) {
					// An indeterminate outcome (durably applied on a node the
					// pair cannot promote) has no truthful answer: the op
					// stays pending, free to linearize either way.
					h.OpMaybe(op, func() (spec.Ret, bool) {
						delivered, answered := w.Pair.Deliver(c, op.User, []byte(op.Msg))
						return delivered, answered
					})
				})
			}
			for _, u := range o.PickupUsers {
				user := u
				t.Go(func(c *machine.T) { pairOp(c, w, h, user) })
			}
		},
		Recover: func(t *machine.T, wAny any) {
			// The crash models the whole site losing power: both nodes
			// reboot (fail-stopped stores come back under operator care),
			// epochs are re-read from disk, the higher-epoch node — the one
			// that fenced the other — leads, and a catch-up resync runs
			// unconditionally because lastApplied is volatile. Frames still
			// in the network from before the crash survive it; the closing
			// pings give the chooser the chance to land them AFTER the
			// post-resync fence is up.
			wAny.(*ScenarioWorld).Pair.Recover(t)
		},
		Post: func(t *machine.T, wAny any, h *explore.Harness) {
			if !o.PostPickups {
				return
			}
			w := wAny.(*ScenarioWorld)
			for u := uint64(0); u < o.Config.Users; u++ {
				pairOp(t, w, h, u)
			}
		},
		Invariant: func(m *machine.Machine, wAny any) error {
			w := wAny.(*ScenarioWorld)
			if n0, n1 := w.FS[0].OpenFDs(), w.FS[1].OpenFDs(); n0 != 0 || n1 != 0 {
				return fmt.Errorf("resource leak: %d/%d descriptors open on nodes", n0, n1)
			}
			if w.Pair == nil {
				return nil
			}
			// While a node is dead the pair legitimately runs on one store;
			// while epochs differ or a catch-up is incomplete the backup is
			// legitimately behind. Equality is only owed when both nodes
			// are live, settled, and in the same epoch.
			if w.F[0].FailStopped() || w.F[1].FailStopped() || w.Pair.Degraded() {
				return nil
			}
			for u := uint64(0); u < o.Config.Users; u++ {
				d0 := w.FS[0].PeekDir(mailboat.UserDir(u))
				d1 := w.FS[1].PeekDir(mailboat.UserDir(u))
				if len(d0) != len(d1) {
					return fmt.Errorf("replica divergence: user %d has %d vs %d messages", u, len(d0), len(d1))
				}
				for name, c0 := range d0 {
					c1, ok := d1[name]
					if !ok {
						return fmt.Errorf("replica divergence: user %d message %s missing on backup", u, name)
					}
					if !bytes.Equal(c0, c1) {
						return fmt.Errorf("replica divergence: user %d message %s contents differ", u, name)
					}
				}
			}
			return nil
		},
		// Crash-boundary dedup: the models and the Net are fingerprintable
		// devices (the Net's encoding covers partition charge and the
		// crash-surviving in-flight stash), so the hook covers the
		// crash-surviving world state outside them — the two policies'
		// spent budgets and the per-node fail-stop latches. The Pair's own
		// fields (role, session locks, staleness) are all recomputed by
		// Recover from device state, so they are not boundary state.
		Fingerprint: func(wAny any, b []byte) []byte {
			w := wAny.(*ScenarioWorld)
			if w.StorePol != nil {
				b = w.StorePol.AppendState(b)
			}
			if w.NetPol != nil {
				b = w.NetPol.AppendState(b)
			}
			for i := range w.F {
				b = w.F[i].AppendCheckerState(b)
			}
			return b
		},
	}
}
