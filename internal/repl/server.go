package repl

import (
	"repro/internal/gfs"
	"repro/internal/mailboat"
	"repro/internal/trace"
)

// HandleRequest is the backup role: decode one replication frame,
// gate it by epoch and sequence number, apply it through the mailboat
// library, respond. It is netmodel.Handler-shaped; the TCP server
// calls it with frames read off the socket. The replication lock
// serializes handlers against each other and against any primary-side
// protocol running on this node.
//
// The apply gate, in order:
//
//	epoch < ours            → StStaleEpoch   (fenced; never applied)
//	epoch > ours            → StNeedResync   (we are behind a fence)
//	mid-resync              → StNeedResync   (box is being rebuilt)
//	seq ≤ lastApplied       → StOK           (duplicate; idempotent)
//	seq = lastApplied+1     → apply
//	seq > lastApplied+1     → StNeedResync   (gap; we missed applies)
//
// lastApplied is deliberately volatile: a reboot zeroes it, the next
// frame shows a gap, and the primary runs a catch-up resync — the
// rejoining-backup path needs no extra detection machinery.
func (nd *Node) HandleRequest(t gfs.T, raw []byte) []byte {
	r, ok := decodeReq(raw)
	if !ok {
		return encodeResp(StBadRequest, nd.Epoch())
	}
	sp := trace.Enter(t, "repl.handle")
	defer trace.Exit(t, sp)
	nd.lock.Acquire(t)
	defer nd.lock.Release(t)
	switch r.kind {
	case kPing:
		// Seq-aware liveness: the gate mirrors handleApply but mutates
		// nothing, so a pinger whose sequence space is ahead of our apply
		// cursor learns we are stale (StNeedResync) without sending an
		// operation — a rejoined backup reboots its cursor to zero, and
		// an idle primary would otherwise see a healthy pair over a stale
		// store until the next replicated operation tripped the gate.
		if r.epoch < nd.epoch {
			return encodeResp(StStaleEpoch, nd.epoch)
		}
		if r.epoch > nd.epoch || nd.resyncing || r.seq > nd.lastApplied {
			return encodeResp(StNeedResync, nd.epoch)
		}
		return encodeResp(StOK, nd.epoch)
	case kDeliver, kDelete:
		return nd.handleApply(t, r)
	case kResyncBegin:
		return nd.handleResyncBegin(t, r)
	case kResyncPut:
		return nd.handleResyncPut(t, r)
	case kResyncCommit:
		return nd.handleResyncCommit(t, r)
	}
	return encodeResp(StBadRequest, nd.epoch)
}

// handleApply gates and applies one replicated Deliver/Delete.
func (nd *Node) handleApply(t gfs.T, r request) []byte {
	if r.epoch < nd.epoch {
		trace.Event(t, "repl: reject stale epoch %d < %d", r.epoch, nd.epoch)
		nd.cfg.Metrics.StaleRejectedInc()
		return encodeResp(StStaleEpoch, nd.epoch)
	}
	if r.epoch > nd.epoch || nd.resyncing {
		return encodeResp(StNeedResync, nd.epoch)
	}
	if r.seq <= nd.lastApplied {
		return encodeResp(StOK, nd.epoch) // duplicate of an applied frame
	}
	if r.seq != nd.lastApplied+1 {
		trace.Event(t, "repl: sequence gap %d after %d", r.seq, nd.lastApplied)
		return encodeResp(StNeedResync, nd.epoch)
	}
	var st mailboat.ApplyStatus
	if r.kind == kDeliver {
		st = nd.mb.DeliverAs(t, r.user, r.name, r.body)
	} else {
		st = nd.mb.DeleteAs(t, r.user, r.name)
	}
	switch st {
	case mailboat.Applied, mailboat.AlreadyApplied:
		nd.setLastApplied(r.seq)
		return encodeResp(StOK, nd.epoch)
	case mailboat.NameTaken:
		return encodeResp(StNameTaken, nd.epoch) // seq not consumed
	}
	return encodeResp(StStoreFailed, nd.epoch)
}

// handleResyncBegin opens the catch-up window for the given epoch.
// Deliberately NON-destructive: the snapshot installs by upsert (Put)
// and only Commit removes what the primary does not hold, so a
// re-delivered stale Begin frame cannot destroy a live backup's data —
// it merely opens a window that the next real catch-up supersedes. An
// epoch older than ours is fenced; equal is accepted (the gate must
// not silently repair a primary that failed to bump its epoch — that
// is the resync-skips-epoch mutation's bug to expose, not ours to
// mask).
func (nd *Node) handleResyncBegin(t gfs.T, r request) []byte {
	if r.epoch < nd.epoch {
		nd.cfg.Metrics.StaleRejectedInc()
		return encodeResp(StStaleEpoch, nd.epoch)
	}
	if nd.resyncing && r.epoch == nd.resyncEpoch {
		// Duplicate of this attempt's own Begin (the sender retries on
		// an unknown outcome, and the net may re-deliver a reordered
		// copy): idempotent. Resetting the window here would discard the
		// record of every Put already streamed, and Commit would then
		// delete them as leftovers.
		trace.Event(t, "repl: duplicate resync begin at epoch %d", r.epoch)
		return encodeResp(StOK, nd.epoch)
	}
	if nd.resyncing && r.epoch < nd.resyncEpoch {
		// A stale Begin from an older, superseded attempt must not
		// hijack the window of the newer one.
		nd.cfg.Metrics.StaleRejectedInc()
		return encodeResp(StStaleEpoch, nd.epoch)
	}
	nd.setResyncing(true, r.epoch)
	nd.setLastApplied(0)
	nd.window = make(map[uint64]map[string]bool)
	trace.Event(t, "repl: resync begin at epoch %d", r.epoch)
	return encodeResp(StOK, nd.epoch)
}

// handleResyncPut upserts one authoritative message during catch-up
// and records its name in the window, so Commit can tell authoritative
// entries from leftovers. A name held with different contents is a
// stale leftover under a reused name: replace it. Out-of-window frames
// (no Begin seen, or a stale epoch) do not touch the store.
func (nd *Node) handleResyncPut(t gfs.T, r request) []byte {
	if !nd.resyncing || r.epoch != nd.resyncEpoch {
		if r.epoch < nd.epoch {
			nd.cfg.Metrics.StaleRejectedInc()
			return encodeResp(StStaleEpoch, nd.epoch)
		}
		return encodeResp(StNeedResync, nd.epoch)
	}
	st := nd.mb.DeliverAs(t, r.user, r.name, r.body)
	if st == mailboat.NameTaken {
		if nd.mb.DeleteAs(t, r.user, r.name) == mailboat.ApplyFailed {
			return encodeResp(StStoreFailed, nd.epoch)
		}
		st = nd.mb.DeliverAs(t, r.user, r.name, r.body)
	}
	switch st {
	case mailboat.Applied, mailboat.AlreadyApplied:
		if nd.window[r.user] == nil {
			nd.window[r.user] = make(map[string]bool)
		}
		nd.window[r.user][r.name] = true
		return encodeResp(StOK, nd.epoch)
	}
	return encodeResp(StStoreFailed, nd.epoch)
}

// handleResyncCommit removes every message the primary did not send
// (the destructive half, safely inside the window), persists the
// catch-up epoch — the fence against every frame from before the
// resync — and goes live. A duplicate of an already-done commit
// answers OK without touching anything.
func (nd *Node) handleResyncCommit(t gfs.T, r request) []byte {
	if !nd.resyncing || r.epoch != nd.resyncEpoch {
		if !nd.resyncing && r.epoch == nd.epoch {
			return encodeResp(StOK, nd.epoch) // duplicate of a done commit
		}
		if r.epoch < nd.epoch {
			nd.cfg.Metrics.StaleRejectedInc()
			return encodeResp(StStaleEpoch, nd.epoch)
		}
		return encodeResp(StNeedResync, nd.epoch)
	}
	for u := uint64(0); u < nd.mb.Users(); u++ {
		for _, m := range nd.mb.ReadBox(t, u) {
			if nd.window[u][m.ID] {
				continue
			}
			if nd.mb.DeleteAs(t, u, m.ID) == mailboat.ApplyFailed {
				return encodeResp(StStoreFailed, nd.epoch)
			}
		}
	}
	if !persistEpoch(t, nd.sys, r.epoch) {
		// Still in the window; the primary retries the commit.
		return encodeResp(StStoreFailed, nd.epoch)
	}
	nd.setEpoch(r.epoch)
	nd.setResyncing(false, 0)
	nd.setLastApplied(0)
	nd.window = nil
	nd.markResynced(t)
	trace.Event(t, "repl: resync committed at epoch %d", r.epoch)
	return encodeResp(StOK, nd.epoch)
}
