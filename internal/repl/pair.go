package repl

import (
	"repro/internal/gfs"
	"repro/internal/mailboat"
	"repro/internal/netmodel"
	"repro/internal/trace"
)

// Pair composes two Nodes over a netmodel.Net into one mailboat-shaped
// service: the client surface the replicated checker scenarios (and the
// deployment's failover logic, in spirit) drive. It owns the routing
// decisions a real deployment splits between the client library and the
// operator: which node is primary, when a dead primary's backup is
// promoted, and where each user's pickup session lock lives.
//
// Failover rule: the backup is promotable ONLY when it is at the
// primary's epoch and not mid-resync. Because every catch-up persists
// the primary's bumped epoch BEFORE the first snapshot frame, a backup
// that is mid-catch-up (holding who-knows-which half of the snapshot)
// is always epoch-behind and therefore never promoted — the epoch gate
// doubles as the promotion-safety predicate.
type Pair struct {
	Nodes [2]*Node
	F     [2]*gfs.Faulty
	Net   *netmodel.Net

	sys   [2]gfs.System
	mbcfg mailboat.Config
	rcfg  Config

	primary int
	// lockAt[user] is the node index holding user's pickup session lock
	// (-1 = none). A failover between Pickup and Delete moves the
	// session: the new primary re-acquires and re-lists before deleting.
	lockAt []int
	// stale latches a failed recovery resync: the backup is behind and
	// the pair degraded until the next recovery.
	stale bool
}

// ReplDirs is the store layout for a replica: the mailboat layout plus
// the replication meta-directory.
func ReplDirs(cfg mailboat.Config) []string {
	return append(mailboat.Dirs(cfg), MetaDir)
}

// linkTransport sends to a fixed destination endpoint of a Net.
type linkTransport struct {
	net *netmodel.Net
	dst int
}

func (l *linkTransport) Call(t gfs.T, req []byte) ([]byte, netmodel.Outcome) {
	return l.net.Call(t, l.dst, req)
}

// NewPair initializes both stores (mailboat.Init) and wires the nodes
// over net. Node 0 starts as primary. sys[i] must be the fault-wrapped
// system whose fail-stop latch is f[i]; the same index is bound as
// net endpoint i.
func NewPair(t gfs.T, sys [2]gfs.System, f [2]*gfs.Faulty, net *netmodel.Net,
	mbcfg mailboat.Config, rcfg Config) *Pair {
	p := &Pair{F: f, Net: net, sys: sys, mbcfg: mbcfg, rcfg: rcfg}
	for i := 0; i < 2; i++ {
		mb := mailboat.Init(t, nil, sys[i], mbcfg)
		p.Nodes[i] = NewNode(t, i, mb, sys[i], rcfg)
	}
	p.wire(net)
	p.lockAt = make([]int, mbcfg.Users)
	for u := range p.lockAt {
		p.lockAt[u] = -1
	}
	p.Nodes[0].SetPrimary(true)
	return p
}

// wire binds the net handlers and peers. The handler closures route
// through p.Nodes[i] at call time, so nodes rebuilt by Recover keep
// receiving frames without rebinding.
func (p *Pair) wire(net *netmodel.Net) {
	for i := 0; i < 2; i++ {
		i := i
		net.Bind(i, func(t gfs.T, req []byte) []byte {
			return p.Nodes[i].HandleRequest(t, req)
		})
		other := 1 - i
		p.Nodes[i].SetPeer(
			&linkTransport{net: net, dst: other},
			func() bool { return p.F[other].FailStopped() },
			func() bool { return p.F[i].FailStopped() },
		)
	}
}

// Primary returns the current primary's index.
func (p *Pair) Primary() int { return p.primary }

// Degraded reports whether the pair cannot currently tolerate losing
// the primary: a node is fail-stopped, the backup never caught up after
// recovery, or the epochs disagree (a catch-up is incomplete). The
// deployment's /healthz maps this to 503.
func (p *Pair) Degraded() bool {
	if p.stale || p.F[0].FailStopped() || p.F[1].FailStopped() {
		return true
	}
	b := p.Nodes[1-p.primary].Status()
	return b.Resyncing || b.Epoch != p.Nodes[p.primary].Epoch()
}

// failover promotes the backup after the primary fail-stopped. False
// when the backup is dead too, or unpromotable (epoch-behind or
// mid-resync — it may hold partial state and must not serve).
func (p *Pair) failover(t gfs.T) bool {
	old := p.primary
	nw := 1 - old
	if p.F[nw].FailStopped() {
		return false
	}
	st := p.Nodes[nw].Status()
	if st.Resyncing || st.Epoch != p.Nodes[old].Epoch() {
		trace.Event(t, "repl: backup unpromotable (epoch %d vs %d, resyncing=%v)",
			st.Epoch, p.Nodes[old].Epoch(), st.Resyncing)
		return false
	}
	if !p.Nodes[nw].Promote(t) {
		return false
	}
	p.Nodes[old].SetPrimary(false)
	p.primary = nw
	trace.Event(t, "repl: failover to node %d", nw)
	return true
}

// ensureLivePrimary returns the index of a primary whose store has not
// latched dead, failing over if needed; ok is false when no node can
// lead. Concurrent operations race on the role (the model interleaves
// them), so the loop re-reads p.primary after every attempt rather
// than assuming its first read stayed true.
func (p *Pair) ensureLivePrimary(t gfs.T) (int, bool) {
	for i := 0; i < 2; i++ {
		cur := p.primary
		if !p.F[cur].FailStopped() {
			return cur, true
		}
		if !p.failover(t) {
			return cur, false
		}
	}
	return p.primary, false
}

// Deliver stores msg in user's mailbox through the replicated
// protocol, picking names the way the plain library does. answered
// reports whether the client got an answer at all: (true, true) is an
// acknowledged delivery, (false, true) a definite no-op (the mailbox
// pair is untouched), and answered == false means the outcome is
// indeterminate — the operation is durably applied on a node the pair
// cannot currently promote, so no truthful answer exists and the
// caller's op stays pending.
//
// A primary that dies mid-operation is never retried by re-executing:
// once the backup has durably acknowledged, the operation is COMPLETE
// there, and the backup's copy may legitimately be consumed (picked up
// and deleted by a concurrent session after its own failover) before
// any retry could run — a re-apply would resurrect a deleted message.
// Instead, the delivery counts as acknowledged exactly when the acking
// backup is (or becomes) the primary.
func (p *Pair) Deliver(t gfs.T, user uint64, msg []byte) (delivered, answered bool) {
	for try := 0; try < nameAttemptsPair; try++ {
		cur, ok := p.ensureLivePrimary(t)
		if !ok {
			return false, true // nothing was attempted anywhere
		}
		name := mailboat.MsgName(t.RandUint64(p.mbcfg.RandBound))
		switch p.Nodes[cur].DeliverNamed(t, user, name, msg) {
		case OpOK:
			return true, true
		case OpNameTaken:
			// collision: next try draws a fresh name
		case OpIndeterminate:
			// Complete on the acking backup iff that backup leads (or can
			// be promoted now). The fail-stop latch makes this exact: an
			// ack-alone operation's dead peer can never pass failover.
			if p.primary != cur || p.failover(t) {
				return true, true
			}
			return false, false
		case OpFailed:
			if p.F[cur].FailStopped() {
				continue // definite no-op; next try fails over first
			}
			return false, true
		}
	}
	return false, true
}

// nameAttemptsPair bounds name-collision retries, as in Deliver.
const nameAttemptsPair = 128

// Pickup lists user's mailbox on the primary and leaves the session
// lock held there for the Delete/Unlock that follows. ok is false when
// no node can serve (primary dead and the backup unpromotable): the
// client never got an answer, so no spec transition happened.
func (p *Pair) Pickup(t gfs.T, user uint64) (msgs []mailboat.Message, ok bool) {
	for hop := 0; hop < 3; hop++ {
		cur, live := p.ensureLivePrimary(t)
		if !live {
			return nil, false
		}
		nd := p.Nodes[cur]
		msgs = nd.Mailboat().Pickup(t, nil, user)
		// The latch check must be against the node that SERVED the
		// listing (cur, not a re-read of p.primary — a concurrent
		// operation may have failed over while we listed).
		if p.F[cur].FailStopped() {
			// The listing cannot be trusted (reads were failing); drop
			// the lock and try the survivor.
			nd.Mailboat().Unlock(t, nil, user)
			if p.primary != cur || p.failover(t) {
				continue
			}
			return nil, false
		}
		p.lockAt[user] = cur
		return msgs, true
	}
	return nil, false
}

// Delete removes message id from user's mailbox (the session lock from
// Pickup must be held). (true, true) means removed, (false, true)
// means the mailbox pair is unchanged, and answered == false means the
// outcome is indeterminate (as in Deliver). After a failover the
// session lock moves: the new primary re-acquires and re-lists, and an
// id that is already gone there reports true — the replicated delete
// had reached the backup before the old primary died.
func (p *Pair) Delete(t gfs.T, user uint64, id string) (removed, answered bool) {
	for hop := 0; hop < 3; hop++ {
		cur, ok := p.ensureLivePrimary(t)
		if !ok {
			return false, true // nothing was attempted anywhere
		}
		nd := p.Nodes[cur]
		if p.lockAt[user] != cur {
			if old := p.lockAt[user]; old >= 0 {
				p.Nodes[old].Mailboat().Unlock(t, nil, user)
			}
			msgs := nd.Mailboat().Pickup(t, nil, user)
			p.lockAt[user] = cur
			found := false
			for _, m := range msgs {
				if m.ID == id {
					found = true
					break
				}
			}
			if !found {
				return true, true
			}
		}
		switch nd.DeleteNamed(t, user, id) {
		case OpOK:
			return true, true
		case OpIndeterminate:
			if p.primary != cur || p.failover(t) {
				return true, true
			}
			return false, false
		case OpFailed:
			if p.F[cur].FailStopped() {
				continue // definite no-op; next hop fails over first
			}
			return false, true
		}
	}
	return false, true
}

// Unlock releases user's pickup session lock wherever it is held.
func (p *Pair) Unlock(t gfs.T, user uint64) {
	at := p.lockAt[user]
	if at < 0 {
		at = p.primary
	}
	p.Nodes[at].Mailboat().Unlock(t, nil, user)
	p.lockAt[user] = -1
}

// Recover rebuilds the pair after a site crash (the model's whole-site
// power cut): revive fail-stopped stores, run mailboat recovery on each
// node, re-read persisted epochs, elect the higher-epoch node primary
// (it fenced the other), and ALWAYS run a catch-up resync — lastApplied
// is volatile, so the backup cannot prove it is current. The closing
// pings give any frame still in the network (in-flight frames survive a
// site reboot) its delivery opportunity under the checker, AFTER the
// new epoch is in place to fence it.
func (p *Pair) Recover(t gfs.T) {
	for i := range p.F {
		if p.F[i].FailStopped() {
			p.F[i].Revive()
		}
	}
	for i := 0; i < 2; i++ {
		mb := mailboat.Recover(t, nil, p.sys[i], p.mbcfg, nil)
		p.Nodes[i] = NewNode(t, i, mb, p.sys[i], p.rcfg)
	}
	p.wire(p.Net)
	p.primary = 0
	if p.Nodes[1].Epoch() > p.Nodes[0].Epoch() {
		p.primary = 1
	}
	p.Nodes[p.primary].SetPrimary(true)
	for u := range p.lockAt {
		p.lockAt[u] = -1
	}
	p.stale = !p.Nodes[p.primary].Resync(t)
	p.Nodes[p.primary].Ping(t)
	p.Nodes[1-p.primary].Ping(t)
}
