package repl

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/gfs"
	"repro/internal/netmodel"
)

// This file is the deployment transport: the same frames wire.go
// defines and the modeled netmodel.Net carries, over a real TCP
// connection with u32 length prefixes. The whole point is that nothing
// protocol-shaped lives here — TCPClient only has to classify socket
// errors into the netmodel.Outcome taxonomy the client leg already
// handles, and Serve only has to shuttle frames into HandleRequest.
// The checker's verdicts about the protocol therefore transfer: the
// deployment runs byte-identical messages through the same gates.

// maxFrame bounds one replication frame (a mail message plus headers
// fits comfortably; anything larger is a framing error, not mail).
const maxFrame = 1 << 24

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, b []byte) error {
	hdr := make([]byte, 4, 4+len(b))
	binary.LittleEndian.PutUint32(hdr, uint32(len(b)))
	_, err := w.Write(append(hdr, b...))
	return err
}

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("repl: frame of %d bytes exceeds limit", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Server accepts replication connections and feeds each frame through
// nd.HandleRequest. It tracks live connections so Close severs them
// along with the listener — a killed node must go silent immediately,
// not keep answering frames on sockets accepted before the kill (the
// replica soak's kill switch depends on exactly this). One goroutine
// per connection; nd's replication lock serializes concurrent frames.
// t supplies randomness for the applies — mailboatd.Adapter implements
// gfs.T and is the intended value.
type Server struct {
	nd *Node
	t  gfs.T

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer builds a frame server over nd.
func NewServer(nd *Node, t gfs.T) *Server {
	return &Server{nd: nd, t: t, conns: make(map[net.Conn]struct{})}
}

// Serve accepts on lis until Close (the returned error is Accept's,
// net.ErrClosed on an orderly shutdown).
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return net.ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := readFrame(conn)
		if err != nil {
			return
		}
		if err := writeFrame(conn, s.nd.HandleRequest(s.t, req)); err != nil {
			return
		}
	}
}

// Close stops the listener and severs every live connection.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.lis != nil {
		s.lis.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
}

// TCPClient implements Transport over one length-prefixed TCP
// connection, reconnecting per call as needed. Its job is honest
// outcome classification, mirroring the modeled network:
//
//	dial failed      → Lost     (nothing was sent: a definite no)
//	partition gate   → Lost     (the drill drops egress before the wire)
//	write/read error → Unknown  (the frame may have been delivered;
//	                             the reply is gone — retry same seq)
//	round trip done  → Delivered
//
// It also carries the deployment's failure detector: PeerDead reports
// a streak of connection-refused dials (the listener is gone — the
// peer process is dead, not merely unreachable), after which the
// client leg acknowledges alone. A timeout never feeds the streak: a
// partitioned peer may still be alive and applying, and acking alone
// across a partition would be split-brain.
type TCPClient struct {
	// Addr is the peer's replication listener.
	Addr string
	// Timeout bounds one call's dial plus round trip (default 2s).
	Timeout time.Duration
	// DeadAfter is the consecutive-refused-dial streak after which
	// PeerDead reports true (default 3).
	DeadAfter int
	// Metrics, when non-nil, records net_* outcomes — the same families
	// the modeled network registers, so dashboards read identically
	// against drills and deployments. Nil-receiver-safe.
	Metrics *netmodel.NetMetrics

	mu   sync.Mutex
	conn net.Conn

	partitioned atomic.Bool
	refused     atomic.Int64 // consecutive connection-refused dials
	failed      atomic.Int64 // consecutive non-Delivered outcomes
}

func (c *TCPClient) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 2 * time.Second
}

func (c *TCPClient) deadAfter() int64 {
	if c.DeadAfter > 0 {
		return int64(c.DeadAfter)
	}
	return 3
}

// Partition opens or heals the drill's partition gate: while open,
// every call is dropped before the wire and reported Lost — the
// deployment analogue of netmodel's FaultPartition, exercised by the
// replica soak and mailbench -partition.
func (c *TCPClient) Partition(on bool) { c.partitioned.Store(on) }

// Partitioned reports the gate's state.
func (c *TCPClient) Partitioned() bool { return c.partitioned.Load() }

// PeerDead reports the failure detector's verdict: DeadAfter
// consecutive dials answered connection-refused. Unlike the model's
// fail-stop latch this verdict heals — a successful dial (the peer
// restarted and listens again) clears it, and the protocol re-admits
// the peer only through the sequence-gap → catch-up-resync path, so
// the fencing argument is unchanged.
func (c *TCPClient) PeerDead() bool { return c.refused.Load() >= c.deadAfter() }

// Reachable reports whether the peer is answering: no partition gate,
// no refused streak, and fewer than three consecutive failed calls.
// /healthz maps !Reachable to a degraded 503.
func (c *TCPClient) Reachable() bool {
	return !c.partitioned.Load() && c.refused.Load() == 0 && c.failed.Load() < 3
}

// Close drops the cached connection.
func (c *TCPClient) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// dropConn closes the cached connection after an error (the next call
// redials). Caller holds mu.
func (c *TCPClient) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Call implements Transport. The t parameter is unused (the modeled
// transport needs it for scheduling; a socket does not).
func (c *TCPClient) Call(t gfs.T, req []byte) ([]byte, netmodel.Outcome) {
	c.Metrics.CallsInc()
	if c.partitioned.Load() {
		c.failed.Add(1)
		c.Metrics.OutcomeObserved(netmodel.Lost)
		return nil, netmodel.Lost
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		d := net.Dialer{Timeout: c.timeout()}
		conn, err := d.Dial("tcp", c.Addr)
		if err != nil {
			c.failed.Add(1)
			if errors.Is(err, syscall.ECONNREFUSED) {
				c.refused.Add(1)
			}
			c.Metrics.OutcomeObserved(netmodel.Lost)
			return nil, netmodel.Lost // nothing was sent: a definite no
		}
		c.conn = conn
	}
	c.refused.Store(0)
	c.conn.SetDeadline(time.Now().Add(c.timeout()))
	if err := writeFrame(c.conn, req); err != nil {
		c.dropConn()
		c.failed.Add(1)
		c.Metrics.OutcomeObserved(netmodel.Unknown)
		return nil, netmodel.Unknown // may be buffered on the wire
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		c.dropConn()
		c.failed.Add(1)
		c.Metrics.OutcomeObserved(netmodel.Unknown)
		return nil, netmodel.Unknown // request may have been applied
	}
	c.failed.Store(0)
	c.Metrics.OutcomeObserved(netmodel.Delivered)
	return resp, netmodel.Delivered
}

// Health is the deployment-facing replication snapshot /healthz
// serves: the node's Status plus the transport's verdicts. Degraded
// means the pair cannot currently tolerate losing this node — the
// admin surface answers 503 with this JSON so orchestrators pull the
// instance and operators see the stuck half at a glance.
type Health struct {
	Status
	PeerReachable bool `json:"peer_reachable"`
	Degraded      bool `json:"degraded"`
}
