// Package repl is the primary/backup replication layer over the
// mailboat library — the Grove-style step from one crash-safe box to a
// pair of them joined by a lossy network. The protocol's ack discipline
// is the replication analogue of the sync discipline one layer down:
//
//	an operation is acknowledged only after the BACKUP persists it.
//
// Deliver and Delete are remote-first: the primary assigns the next
// (epoch, seq), pushes the operation to the backup, and only after the
// backup confirms does it apply locally and ack. A definite replication
// failure (every attempt Lost) therefore aborts with NEITHER store
// touched — a failed replication RPC is never an ack barrier, exactly
// as a failed SyncDir is never a durability barrier. An indeterminate
// outcome (Unknown: the frame or its reply vanished) is retried under
// the same sequence number until it resolves — the backup recognizes
// the duplicate by seq and answers OK — because returning false while
// the backup may hold the message would let the "failed" delivery
// surface after a failover.
//
// Epochs generalize gfs.Mirrored's generation markers to two stores
// that can diverge: every promotion and every catch-up resync bumps the
// pair's epoch (persisted as marker files in the .repl meta-directory
// before it is used), and the backup rejects any frame carrying an
// older epoch. That fencing is what makes in-flight frames from before
// a failover or resync harmless — the modeled network can hold a
// reordered frame across a site reboot and deliver it after the
// catch-up, and the epoch gate turns it away. The seeded mutations
// repl-bug:ack-before-backup and repl-bug:resync-skips-epoch each break
// one of these two disciplines and are convicted by the checker.
package repl

import (
	"context"
	"strconv"
	"sync"
	"time"

	"repro/internal/gfs"
	"repro/internal/machine"
	"repro/internal/mailboat"
	"repro/internal/netmodel"
)

// MetaDir is the replication meta-directory: epoch marker files
// ("e<N>"; the current epoch is the largest present) live here, beside
// the mailboxes they fence, exactly as gfs.MirrorMetaDir holds the
// mirror's generation markers.
const MetaDir = ".repl"

// Transport carries one replication request to the peer and reports
// the response plus what the caller may conclude — netmodel.Net's
// Call contract, which the TCP client reproduces over a real socket.
type Transport interface {
	Call(t gfs.T, req []byte) ([]byte, netmodel.Outcome)
}

// Mutations are the seeded protocol bugs the checker must convict
// (bugs.go-style, compiled in but off by default).
type Mutations struct {
	// AckBeforeBackup acks a delivery after the LOCAL publish, without
	// waiting for the backup — the replication layer's analogue of
	// acking before fsync. A failover then serves a mailbox missing an
	// acknowledged message.
	AckBeforeBackup bool
	// ResyncSkipsEpoch runs catch-up resync without bumping the epoch,
	// so in-flight frames from before the resync are not fenced out: a
	// reordered replicate frame can land after the catch-up and
	// resurrect a deleted message on the backup.
	ResyncSkipsEpoch bool
}

// Config tunes a Node's client leg and observability.
type Config struct {
	// MaxCallRetries bounds retries of a definitely-failed call (Lost,
	// or the backup transiently refusing). 0 means the default of 6.
	MaxCallRetries int
	// IndeterminateRetries bounds, on native threads only, how long an
	// operation whose outcome went Unknown keeps retrying before it is
	// abandoned (counted in repl_indeterminate_total — the honest
	// at-least-once hazard of a real deployment). Modeled threads retry
	// until the outcome resolves; the fault budget bounds that. 0 means
	// the default of 64.
	IndeterminateRetries int
	// RetryBackoff is the base pause between retries, doubled per
	// attempt; 0 disables pacing. Modeled threads never sleep.
	RetryBackoff time.Duration
	// RetryBackoffCap caps the exponential pause. 0 means 1s.
	RetryBackoffCap time.Duration
	// Ctx, when non-nil, aborts retry loops when cancelled, like
	// Shutdown.
	Ctx context.Context
	// Metrics, when non-nil, records repl_* metrics. Leave nil under
	// the checker; every method is nil-receiver-safe.
	Metrics *Metrics
	// Mut enables seeded protocol mutations (checker conviction only).
	Mut Mutations
}

// OpResult is the outcome of a primary-side replicated operation.
type OpResult int

const (
	// OpOK: applied and acknowledged (backup first, then locally — or
	// locally alone when the peer is known dead).
	OpOK OpResult = iota
	// OpNameTaken: the chosen mailbox name holds a different message;
	// pick another name and run the operation again.
	OpNameTaken
	// OpFailed: definitely not applied anywhere — for a delivery the
	// mailbox pair is untouched. (Native deployments additionally cap
	// indeterminate retry loops and report OpFailed for those; the
	// modeled protocol keeps OpFailed definite.)
	OpFailed
	// OpIndeterminate: the replication leg succeeded (the backup
	// durably acknowledged — or the peer was fenced dead and the
	// primary proceeded alone) but this node could not finish its own
	// apply: its store is dying, possibly with the entry visible but
	// not durable. The caller must NEVER re-execute the operation —
	// an acking backup's copy may legitimately be consumed before any
	// retry runs, and a re-apply would resurrect it. Success may be
	// claimed only if the acking backup is promoted (the fail-stop
	// latch guarantees the ack-alone flavor can never pass that
	// check); otherwise there is no truthful answer at all.
	OpIndeterminate
)

// Node is one replica: the mailboat library on its own store, the
// (epoch, seq) apply gate for its role as backup, and the remote-first
// client leg for its role as primary. The replication lock serializes
// the protocol on both roles; it is a gfs.Lock, so the model checker
// schedules it like any other lock.
type Node struct {
	id   int
	mb   *mailboat.Mailboat
	sys  gfs.System
	cfg  Config
	lock gfs.Lock

	// peer is the transport to the other node (nil = solo: operate
	// without replication, as after the peer is fenced dead).
	peer Transport
	// peerDead, when non-nil, reports the failure detector's verdict
	// that the peer is PERMANENTLY gone (fail-stop latch in the model,
	// a refused-connection streak in deployment). A true verdict lets
	// the primary ack alone; it must be a fenced, one-way judgment.
	peerDead func() bool
	// selfDead, when non-nil, reports this node's own store has
	// fail-stopped, releasing must-succeed local apply loops.
	selfDead func() bool

	// mu guards the snapshot fields below for Status() readers on other
	// goroutines; protocol-path writes hold both the replication lock
	// and (briefly) mu. Never held across store operations.
	mu          sync.Mutex
	epoch       uint64
	seq         uint64 // last sequence number confirmed by the backup
	lastApplied uint64 // backup role: last sequence applied this epoch
	primary     bool
	resyncing   bool
	resyncEpoch uint64
	lastResync  int64 // unix seconds; 0 = never
	// window is the catch-up window's authoritative name set per user
	// (backup role, volatile): Commit deletes everything outside it.
	window map[uint64]map[string]bool

	stop     chan struct{}
	stopOnce sync.Once
}

// NewNode builds a replica over an initialized mailboat and its store,
// reading the persisted epoch from the .repl meta-directory. The store
// must include MetaDir in its directory layout.
func NewNode(t gfs.T, id int, mb *mailboat.Mailboat, sys gfs.System, cfg Config) *Node {
	nd := &Node{id: id, mb: mb, sys: sys, cfg: cfg, stop: make(chan struct{})}
	nd.lock = sys.NewLock(t, "repl"+strconv.Itoa(id))
	nd.epoch = readEpoch(t, sys)
	nd.cfg.Metrics.EpochSet(nd.epoch)
	nd.cfg.Metrics.RoleSet(false)
	return nd
}

// SetPeer wires the transport to the peer and the two failure
// detectors (either may be nil).
func (nd *Node) SetPeer(peer Transport, peerDead, selfDead func() bool) {
	nd.peer = peer
	nd.peerDead = peerDead
	nd.selfDead = selfDead
}

// Mailboat returns the node's library handle (local pickups run on the
// primary's).
func (nd *Node) Mailboat() *mailboat.Mailboat { return nd.mb }

// Shutdown stops the node's retry loops: any in-flight operation
// observes the signal at its next pause and aborts with OpFailed
// instead of sleeping on. Idempotent.
func (nd *Node) Shutdown() {
	nd.stopOnce.Do(func() { close(nd.stop) })
}

// stopped reports whether Shutdown was called or Ctx cancelled.
func (nd *Node) stopped() bool {
	select {
	case <-nd.stop:
		return true
	default:
	}
	if nd.cfg.Ctx != nil {
		select {
		case <-nd.cfg.Ctx.Done():
			return true
		default:
		}
	}
	return false
}

// Status is a point-in-time snapshot for /healthz and tests.
type Status struct {
	ID             int    `json:"id"`
	Role           string `json:"role"`
	Epoch          uint64 `json:"epoch"`
	Seq            uint64 `json:"seq"`
	Resyncing      bool   `json:"resyncing"`
	PeerDead       bool   `json:"peer_dead"`
	LastResyncUnix int64  `json:"last_resync_unix"`
}

// Status returns the node's current snapshot.
func (nd *Node) Status() Status {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	role := "backup"
	if nd.primary {
		role = "primary"
	}
	return Status{
		ID:             nd.id,
		Role:           role,
		Epoch:          nd.epoch,
		Seq:            nd.seq,
		Resyncing:      nd.resyncing,
		PeerDead:       nd.peerGone(),
		LastResyncUnix: nd.lastResync,
	}
}

// Epoch returns the node's current epoch.
func (nd *Node) Epoch() uint64 {
	nd.mu.Lock()
	defer nd.mu.Unlock()
	return nd.epoch
}

// setEpoch updates the epoch snapshot (caller holds the replication
// lock; mu covers Status readers).
func (nd *Node) setEpoch(e uint64) {
	nd.mu.Lock()
	nd.epoch = e
	nd.mu.Unlock()
	nd.cfg.Metrics.EpochSet(e)
}

func (nd *Node) setSeq(s uint64) {
	nd.mu.Lock()
	nd.seq = s
	nd.mu.Unlock()
}

func (nd *Node) setLastApplied(s uint64) {
	nd.mu.Lock()
	nd.lastApplied = s
	nd.mu.Unlock()
}

func (nd *Node) setResyncing(on bool, epoch uint64) {
	nd.mu.Lock()
	nd.resyncing, nd.resyncEpoch = on, epoch
	nd.mu.Unlock()
}

// SetPrimary flips the node's believed role (Pair and the deployment
// wiring call it; promotion via Promote also does).
func (nd *Node) SetPrimary(p bool) {
	nd.mu.Lock()
	nd.primary = p
	nd.mu.Unlock()
	nd.cfg.Metrics.RoleSet(p)
}

func (nd *Node) markResynced(t gfs.T) {
	unix := int64(0)
	if _, modeled := t.(*machine.T); !modeled {
		unix = time.Now().Unix()
	}
	nd.mu.Lock()
	nd.lastResync = unix
	nd.mu.Unlock()
	nd.cfg.Metrics.LastResyncSet(unix)
}

// peerGone reports the failure detector's fenced-dead verdict (a nil
// peer counts as gone: the node is running solo).
func (nd *Node) peerGone() bool {
	if nd.peer == nil {
		return true
	}
	return nd.peerDead != nil && nd.peerDead()
}

func (nd *Node) selfDeadNow() bool {
	return nd.selfDead != nil && nd.selfDead()
}

func (nd *Node) maxCallRetries() int {
	if nd.cfg.MaxCallRetries > 0 {
		return nd.cfg.MaxCallRetries
	}
	return 6
}

func (nd *Node) indetRetries() int {
	if nd.cfg.IndeterminateRetries > 0 {
		return nd.cfg.IndeterminateRetries
	}
	return 64
}

// backoffDelay computes the pause before retry number attempt
// (1-based): exponential from RetryBackoff, capped by RetryBackoffCap.
func (nd *Node) backoffDelay(attempt int) time.Duration {
	d := nd.cfg.RetryBackoff
	if d <= 0 {
		return 0
	}
	cap := nd.cfg.RetryBackoffCap
	if cap <= 0 {
		cap = time.Second
	}
	for i := 1; i < attempt && d < cap; i++ {
		d <<= 1
	}
	if d > cap {
		d = cap
	}
	return d
}

// retryPause paces a retry loop; false means the node is shutting down
// and the loop must abort. Modeled threads never sleep — under the
// checker, time belongs to the scheduler — but still observe Shutdown.
func (nd *Node) retryPause(t gfs.T, attempt int) bool {
	if nd.stopped() {
		return false
	}
	if _, modeled := t.(*machine.T); modeled {
		return true
	}
	d := nd.backoffDelay(attempt)
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	var ctxDone <-chan struct{}
	if nd.cfg.Ctx != nil {
		ctxDone = nd.cfg.Ctx.Done()
	}
	select {
	case <-nd.stop:
		return false
	case <-ctxDone:
		return false
	case <-timer.C:
		return true
	}
}

// epochMarker is the marker file name for epoch e.
func epochMarker(e uint64) string { return "e" + strconv.FormatUint(e, 10) }

// readEpoch returns the largest persisted epoch marker (0 = fresh).
func readEpoch(t gfs.T, sys gfs.System) uint64 {
	var max uint64
	for _, name := range sys.List(t, MetaDir) {
		if len(name) < 2 || name[0] != 'e' {
			continue
		}
		e, err := strconv.ParseUint(name[1:], 10, 64)
		if err == nil && e > max {
			max = e
		}
	}
	return max
}

// persistEpoch makes epoch e's marker durable: create (idempotent) and
// barrier the meta-directory. False means the marker is not known
// durable and the epoch must not be used.
func persistEpoch(t gfs.T, sys gfs.System, e uint64) bool {
	if e == 0 {
		return true
	}
	name := epochMarker(e)
	present := false
	for _, n := range sys.List(t, MetaDir) {
		if n == name {
			present = true
			break
		}
	}
	if !present {
		fd, ok := sys.Create(t, MetaDir, name)
		if !ok {
			return false
		}
		sys.Close(t, fd)
	}
	return sys.SyncDir(t, MetaDir)
}

// persistEpochRetry retries persistEpoch against transient store
// faults; gives up when the store is fail-stopped or the budget of
// attempts runs out.
func (nd *Node) persistEpochRetry(t gfs.T, e uint64) bool {
	for attempt := 1; attempt <= 8; attempt++ {
		if persistEpoch(t, nd.sys, e) {
			return true
		}
		if nd.selfDeadNow() || !nd.retryPause(t, attempt) {
			return false
		}
	}
	return false
}
