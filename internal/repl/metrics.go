package repl

import "repro/internal/obs"

// Metrics is the replication layer's observability surface (repl_*).
// Every method is nil-receiver-safe, so Node instruments itself
// unconditionally while checker runs (Metrics == nil) stay metric-free
// by construction — the same contract as mailboat.Metrics and
// netmodel.NetMetrics, audited by the nil-metrics full-stack test.
type Metrics struct {
	ReplicateOK     *obs.Counter
	ReplicateRetry  *obs.Counter
	ReplicateFailed *obs.Counter
	Indeterminate   *obs.Counter
	AckAlone        *obs.Counter
	Resyncs         *obs.Counter
	ResyncFailed    *obs.Counter
	Failovers       *obs.Counter
	StaleRejected   *obs.Counter
	Epoch           *obs.Gauge
	RolePrimary     *obs.Gauge
	LastResyncUnix  *obs.Gauge
}

// NewMetrics registers the repl_* metric families in r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		ReplicateOK: r.Counter("repl_replicate_total",
			"Replicated operations by outcome.", "outcome", "ok"),
		ReplicateRetry: r.Counter("repl_replicate_total",
			"Replicated operations by outcome.", "outcome", "retry"),
		ReplicateFailed: r.Counter("repl_replicate_total",
			"Replicated operations by outcome.", "outcome", "failed"),
		Indeterminate: r.Counter("repl_indeterminate_total",
			"Operations abandoned while their replication outcome was unknown (at-least-once hazard)."),
		AckAlone: r.Counter("repl_ack_alone_total",
			"Operations acknowledged with the peer known dead (fenced by its fail-stop)."),
		Resyncs: r.Counter("repl_resync_total",
			"Catch-up resyncs by outcome.", "outcome", "ok"),
		ResyncFailed: r.Counter("repl_resync_total",
			"Catch-up resyncs by outcome.", "outcome", "failed"),
		Failovers: r.Counter("repl_failovers_total",
			"Primary failovers (backup promotions)."),
		StaleRejected: r.Counter("repl_stale_rejected_total",
			"Replication frames rejected for carrying a fenced (stale) epoch."),
		Epoch: r.Gauge("repl_epoch",
			"Current replication epoch of this node."),
		RolePrimary: r.Gauge("repl_role_primary",
			"1 when this node believes it is the primary, 0 when backup."),
		LastResyncUnix: r.Gauge("repl_last_resync_unix",
			"Unix time of the last successful catch-up resync (0 = never)."),
	}
}

// ReplicateObserved counts one replicated-operation outcome.
func (m *Metrics) ReplicateObserved(outcome string) {
	if m == nil {
		return
	}
	switch outcome {
	case "ok":
		m.ReplicateOK.Inc()
	case "retry":
		m.ReplicateRetry.Inc()
	case "failed":
		m.ReplicateFailed.Inc()
	}
}

// IndeterminateInc counts one abandoned-while-unknown operation.
func (m *Metrics) IndeterminateInc() {
	if m == nil {
		return
	}
	m.Indeterminate.Inc()
}

// AckAloneInc counts one peer-dead solo acknowledgement.
func (m *Metrics) AckAloneInc() {
	if m == nil {
		return
	}
	m.AckAlone.Inc()
}

// ResyncObserved counts one resync attempt.
func (m *Metrics) ResyncObserved(ok bool) {
	if m == nil {
		return
	}
	if ok {
		m.Resyncs.Inc()
	} else {
		m.ResyncFailed.Inc()
	}
}

// FailoverInc counts one promotion.
func (m *Metrics) FailoverInc() {
	if m == nil {
		return
	}
	m.Failovers.Inc()
}

// StaleRejectedInc counts one fenced frame.
func (m *Metrics) StaleRejectedInc() {
	if m == nil {
		return
	}
	m.StaleRejected.Inc()
}

// EpochSet records the node's current epoch.
func (m *Metrics) EpochSet(e uint64) {
	if m == nil {
		return
	}
	m.Epoch.Set(int64(e))
}

// RoleSet records the node's current role.
func (m *Metrics) RoleSet(primary bool) {
	if m == nil {
		return
	}
	if primary {
		m.RolePrimary.Set(1)
	} else {
		m.RolePrimary.Set(0)
	}
}

// LastResyncSet records the last successful resync time.
func (m *Metrics) LastResyncSet(unix int64) {
	if m == nil {
		return
	}
	m.LastResyncUnix.Set(unix)
}
