package repl

import (
	"testing"
	"time"

	"repro/internal/netmodel"
)

// TestNilMetricsReplFullStack audits the nil-receiver contract of the
// replication observability surface the way the gfs audit does: every
// repl_* and net_* method called on a nil receiver, then a full
// replicated exchange over real TCP — deliver, delete, resync, a
// partition, a dead peer — with Metrics nil at every layer. A panic
// anywhere is the failure; this is what lets checker runs and tests
// leave Metrics unset without a parallel "metrics off" code path.
func TestNilMetricsReplFullStack(t *testing.T) {
	// The explicit surface: every method, nil receiver.
	var m *Metrics
	m.ReplicateObserved("ok")
	m.ReplicateObserved("retry")
	m.ReplicateObserved("failed")
	m.IndeterminateInc()
	m.AckAloneInc()
	m.ResyncObserved(true)
	m.ResyncObserved(false)
	m.FailoverInc()
	m.StaleRejectedInc()
	m.EpochSet(7)
	m.RoleSet(true)
	m.LastResyncSet(1)

	var nm *netmodel.NetMetrics
	nm.CallsInc()
	nm.OutcomeObserved(netmodel.Delivered)
	nm.OutcomeObserved(netmodel.Lost)
	nm.OutcomeObserved(netmodel.Unknown)
	nm.FaultInjected(netmodel.FaultDrop)
	nm.StaleDeliveredInc()

	// The full stack: nodes with Config.Metrics nil, a TCPClient with
	// Metrics nil, driven through the protocol's instrumented paths.
	rt := &tcpRand{}
	backup, baddr, bsrv := newTCPNode(t, rt, 1)
	primary, _, _ := newTCPNode(t, rt, 0)
	client := &TCPClient{Addr: baddr, Timeout: time.Second}
	defer client.Close()
	primary.SetPeer(client, client.PeerDead, nil)
	primary.SetPrimary(true)

	if res := primary.DeliverNamed(rt, 0, "m1", []byte("x")); res != OpOK {
		t.Fatalf("DeliverNamed: %v", res)
	}
	if res := primary.DeleteNamed(rt, 0, "m1"); res != OpOK {
		t.Fatalf("DeleteNamed: %v", res)
	}
	// Resync path (ResyncObserved, EpochSet, LastResyncSet).
	if !primary.Resync(rt) {
		t.Fatal("Resync failed")
	}
	// Partition path (net outcome observation on the Lost leg, then
	// the replicate-failed counter).
	client.Partition(true)
	primary.DeliverNamed(rt, 0, "m2", []byte("y"))
	client.Partition(false)
	// Dead-peer path (AckAloneInc): sever the backup and latch the
	// refused streak via direct pings.
	bsrv.Close()
	ping := encodeReq(request{kind: kPing})
	for i := 0; i < 4 && !client.PeerDead(); i++ {
		client.Call(rt, ping)
	}
	if client.PeerDead() {
		if res := primary.DeliverNamed(rt, 0, "m3", []byte("z")); res != OpOK {
			t.Fatalf("ack-alone DeliverNamed: %v", res)
		}
	}
	_ = backup
}
