package repl

import (
	"testing"
	"time"

	"repro/internal/gfs"
	"repro/internal/machine"
	"repro/internal/mailboat"
	"repro/internal/netmodel"
)

// pairRig is the fault-free model composition the protocol unit tests
// drive: two model stores behind fault layers, a modeled network, one
// Pair.
type pairRig struct {
	m    *machine.Machine
	fs   [2]*gfs.Model
	f    [2]*gfs.Faulty
	net  *netmodel.Net
	cfg  mailboat.Config
	pair *Pair
}

func newPairRig(storePol gfs.Policy, netPol netmodel.Policy) *pairRig {
	r := &pairRig{cfg: mailboat.Config{Users: 2, RandBound: 8, SyncOnDeliver: true, SyncDirs: true}}
	r.m = machine.New(machine.Options{MaxSteps: 300000})
	for i := 0; i < 2; i++ {
		r.fs[i] = gfs.NewModel(r.m, ReplDirs(r.cfg))
		r.f[i] = gfs.NewFaulty(r.fs[i], storePol)
	}
	r.net = netmodel.New(r.m, netPol)
	return r
}

func (r *pairRig) build(mt *machine.T) *Pair {
	r.pair = NewPair(mt, [2]gfs.System{r.f[0], r.f[1]}, r.f, r.net, r.cfg, Config{})
	return r.pair
}

// userEqual fails the era unless both stores hold byte-identical
// mailboxes for every user.
func (r *pairRig) userEqual(mt *machine.T) {
	for u := uint64(0); u < r.cfg.Users; u++ {
		a := r.fs[0].PeekDir(mailboat.UserDir(u))
		b := r.fs[1].PeekDir(mailboat.UserDir(u))
		if len(a) != len(b) {
			mt.Failf("user %d: %d vs %d messages", u, len(a), len(b))
		}
		for name, body := range a {
			if string(b[name]) != string(body) {
				mt.Failf("user %d name %s: %q vs %q", u, name, body, b[name])
			}
		}
	}
}

// TestPairRoundTrip drives the replicated protocol fault-free: after
// every acked operation the two stores are byte-identical, and the
// session surface (pickup, delete under the session lock, unlock)
// behaves like the plain library's.
func TestPairRoundTrip(t *testing.T) {
	r := newPairRig(gfs.NeverPolicy{}, netmodel.NeverPolicy{})
	res := r.m.RunEra(machine.NewRandChooser(1), false, func(mt *machine.T) {
		p := r.build(mt)
		if ok, ans := p.Deliver(mt, 0, []byte("one")); !ok || !ans {
			mt.Failf("deliver one")
		}
		if ok, ans := p.Deliver(mt, 0, []byte("two")); !ok || !ans {
			mt.Failf("deliver two")
		}
		r.userEqual(mt)
		msgs, ok := p.Pickup(mt, 0)
		if !ok || len(msgs) != 2 {
			mt.Failf("pickup: ok=%v msgs=%v", ok, msgs)
		}
		var victim string
		for _, m := range msgs {
			if m.Contents == "one" {
				victim = m.ID
			}
		}
		if ok, ans := p.Delete(mt, 0, victim); !ok || !ans {
			mt.Failf("delete %s", victim)
		}
		p.Unlock(mt, 0)
		r.userEqual(mt)
		msgs, ok = p.Pickup(mt, 0)
		if !ok || len(msgs) != 1 || msgs[0].Contents != "two" {
			mt.Failf("re-pickup: %v", msgs)
		}
		p.Unlock(mt, 0)
		if p.Degraded() {
			mt.Failf("degraded while healthy")
		}
		if e0, e1 := p.Nodes[0].Epoch(), p.Nodes[1].Epoch(); e0 != 0 || e1 != 0 {
			mt.Failf("epochs moved without failover: %d %d", e0, e1)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
}

// TestPairIdenticalContentsTwice pins the double-insert semantics: two
// deliveries of byte-identical contents must insert two messages, never
// collapse into one via the idempotence path (which is reserved for
// retries of the SAME operation).
func TestPairIdenticalContentsTwice(t *testing.T) {
	r := newPairRig(gfs.NeverPolicy{}, netmodel.NeverPolicy{})
	res := r.m.RunEra(machine.NewRandChooser(1), false, func(mt *machine.T) {
		p := r.build(mt)
		if ok, _ := p.Deliver(mt, 0, []byte("same")); !ok {
			mt.Failf("deliver first")
		}
		if ok, _ := p.Deliver(mt, 0, []byte("same")); !ok {
			mt.Failf("deliver second")
		}
		msgs, ok := p.Pickup(mt, 0)
		if !ok || len(msgs) != 2 {
			mt.Failf("identical contents collapsed: %v", msgs)
		}
		p.Unlock(mt, 0)
		r.userEqual(mt)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
}

// TestPairFailover kills the primary's store and expects the next
// delivery to promote the backup (bumping and persisting the epoch) and
// succeed there, with the pair reporting degraded.
func TestPairFailover(t *testing.T) {
	r := newPairRig(gfs.NeverPolicy{}, netmodel.NeverPolicy{})
	res := r.m.RunEra(machine.NewRandChooser(1), false, func(mt *machine.T) {
		p := r.build(mt)
		if ok, _ := p.Deliver(mt, 0, []byte("before")); !ok {
			mt.Failf("deliver before")
		}
		r.f[0].FailStopNow("test: primary store dies")
		if ok, ans := p.Deliver(mt, 0, []byte("after")); !ok || !ans {
			mt.Failf("deliver after failover")
		}
		if p.Primary() != 1 {
			mt.Failf("primary is %d, want 1", p.Primary())
		}
		if e := p.Nodes[1].Epoch(); e != 1 {
			mt.Failf("survivor epoch %d, want 1", e)
		}
		if !p.Degraded() {
			mt.Failf("pair not degraded with a dead node")
		}
		msgs, ok := p.Pickup(mt, 0)
		if !ok || len(msgs) != 2 {
			mt.Failf("survivor pickup: ok=%v msgs=%v", ok, msgs)
		}
		p.Unlock(mt, 0)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
}

// TestPairBothDeadPickupRefuses: with both stores fail-stopped, Pickup
// reports ok=false (no answer, no spec transition) instead of serving
// an untrustworthy listing.
func TestPairBothDeadPickupRefuses(t *testing.T) {
	r := newPairRig(gfs.NeverPolicy{}, netmodel.NeverPolicy{})
	res := r.m.RunEra(machine.NewRandChooser(1), false, func(mt *machine.T) {
		p := r.build(mt)
		if ok, _ := p.Deliver(mt, 0, []byte("x")); !ok {
			mt.Failf("deliver")
		}
		r.f[0].FailStopNow("test")
		r.f[1].FailStopNow("test")
		if _, ok := p.Pickup(mt, 0); ok {
			mt.Failf("pickup served with both stores dead")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
}

// netChooser answers c at "net" decision points and 0 everywhere else,
// steering fault injection without perturbing scheduling choices.
func netChooser(c int) machine.ChooserFunc {
	return func(n int, tag string) int {
		if tag == "net" && c < n {
			return c
		}
		return 0
	}
}

// TestUnknownRetryIdempotent forces the first replication call's reply
// to drop (outcome Unknown) and expects the retry under the same
// sequence number to resolve as a duplicate: exactly one copy lands on
// each store.
func TestUnknownRetryIdempotent(t *testing.T) {
	netPol := &netmodel.ChooserPolicy{
		Budget:   1,
		Eligible: map[netmodel.Fault]bool{netmodel.FaultDropReply: true},
	}
	r := newPairRig(gfs.NeverPolicy{}, netPol)
	res := r.m.RunEra(netChooser(1), false, func(mt *machine.T) {
		p := r.build(mt)
		if ok, _ := p.Deliver(mt, 0, []byte("once")); !ok {
			mt.Failf("deliver")
		}
		r.userEqual(mt)
		msgs, ok := p.Pickup(mt, 0)
		if !ok || len(msgs) != 1 {
			mt.Failf("want exactly one copy, got %v", msgs)
		}
		p.Unlock(mt, 0)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
	_, faults := r.net.Counters()
	if faults[netmodel.FaultDropReply] != 1 {
		t.Fatalf("drop-reply not injected: %v", faults)
	}
}

// TestBackoffDelayCap pins the retry pacing edge (satellite: backoff
// cap respected): exponential growth from RetryBackoff, clamped at
// RetryBackoffCap, with a 1s default cap.
func TestBackoffDelayCap(t *testing.T) {
	nd := &Node{cfg: Config{RetryBackoff: 10 * time.Millisecond, RetryBackoffCap: 80 * time.Millisecond}}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := nd.backoffDelay(i + 1); got != w*time.Millisecond {
			t.Fatalf("attempt %d: %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	nd = &Node{cfg: Config{RetryBackoff: 400 * time.Millisecond}}
	for attempt := 1; attempt <= 20; attempt++ {
		if got := nd.backoffDelay(attempt); got > time.Second {
			t.Fatalf("attempt %d exceeds default cap: %v", attempt, got)
		}
	}
	if (&Node{}).backoffDelay(5) != 0 {
		t.Fatal("zero base must disable pacing")
	}
}

// lostTransport is a native stub peer whose calls always definitely
// fail.
type lostTransport struct{ calls int }

func (l *lostTransport) Call(t gfs.T, req []byte) ([]byte, netmodel.Outcome) {
	l.calls++
	return nil, netmodel.Lost
}

// nativeNode builds a real-filesystem Node for the native-edge tests.
func nativeNode(t *testing.T, cfg Config) (*gfs.Native, *Node) {
	t.Helper()
	mcfg := mailboat.Config{Users: 1, RandBound: 64}
	sys, err := gfs.NewOS(t.TempDir(), ReplDirs(mcfg))
	if err != nil {
		t.Fatal(err)
	}
	nt := gfs.NewNative(1)
	mb := mailboat.Init(nt, nil, sys, mcfg)
	return nt, NewNode(nt, 0, mb, sys, cfg)
}

// TestShutdownStopsRetries pins the satellite edge: a retry loop parked
// on backoff observes Shutdown and aborts instead of sleeping through
// its (here effectively unbounded) retry budget.
func TestShutdownStopsRetries(t *testing.T) {
	nt, nd := nativeNode(t, Config{MaxCallRetries: 1 << 20, RetryBackoff: 5 * time.Millisecond})
	tr := &lostTransport{}
	nd.SetPeer(tr, func() bool { return false }, nil)
	done := make(chan OpResult, 1)
	go func() {
		done <- nd.DeliverNamed(nt, 0, "msg1", []byte("x"))
	}()
	time.Sleep(30 * time.Millisecond)
	nd.Shutdown()
	select {
	case res := <-done:
		if res != OpFailed {
			t.Fatalf("result %v, want OpFailed", res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop ignored Shutdown")
	}
}

// TestAllLostNeverAckBarrier pins the satellite edge: when every
// replication attempt definitely fails, the operation aborts with the
// LOCAL store untouched too — a failed replication RPC is never an ack
// barrier behind which a half-applied delivery hides.
func TestAllLostNeverAckBarrier(t *testing.T) {
	nt, nd := nativeNode(t, Config{MaxCallRetries: 3})
	tr := &lostTransport{}
	nd.SetPeer(tr, func() bool { return false }, nil)
	if res := nd.DeliverNamed(nt, 0, "msg1", []byte("x")); res != OpFailed {
		t.Fatalf("result %v, want OpFailed", res)
	}
	if tr.calls != 3 {
		t.Fatalf("made %d calls, want 3", tr.calls)
	}
	if box := nd.Mailboat().ReadBox(nt, 0); len(box) != 0 {
		t.Fatalf("local store touched by failed replication: %v", box)
	}
}
