// Package spec defines the interface between specifications (transition
// systems written in internal/tsl) and the checkers that consume them
// (the history checker and the model-checking explorer).
//
// A specification is the paper's §3.1 object: a state, one atomic
// transition per top-level operation, and a crash transition. The
// checker-facing Interface asks, for a given pre-state, operation, and
// observed return value, which post-states the spec allows — the exact
// question a forward-simulation step (§3.2, Theorem 1) answers.
package spec

import (
	"fmt"
	"reflect"

	"repro/internal/tsl"
)

// Op is a specification-level operation together with its arguments,
// e.g. rd_write{a: 3, v: 7}. Ops must be printable; fmt.Sprintf("%v") is
// used in traces and counterexamples.
type Op any

// Ret is an operation's return value as observed by the caller.
type Ret any

// State is a specification state.
type State any

type pending struct{}

func (pending) String() string { return "<pending>" }

// Pending is the return value of an operation that never returned
// because a crash killed its thread. A spec Step with Pending accepts
// any allowed return value (nobody observed it) — this is what makes
// recovery helping (§5.4) checkable: the helped operation's effect must
// be allowed for *some* return.
var Pending Ret = pending{}

// Interface is what checkers need from a specification.
type Interface interface {
	// Name identifies the spec in reports.
	Name() string
	// Init returns the initial specification state.
	Init() State
	// Step returns the allowed post-states when op executes atomically in
	// s returning ret (Pending = any return). ub reports that the spec
	// leaves this call undefined in s, in which case every implementation
	// behaviour is vacuously allowed.
	Step(s State, op Op, ret Ret) (next []State, ub bool)
	// Crash is the spec-level atomic crash transition (§3.1's crash).
	Crash(s State) State
	// Key returns a canonical hashable key for s, for memoization.
	Key(s State) string
}

// TSL adapts a family of tsl transitions over a concrete state type S
// into a checker-facing Interface. Return values are compared with
// reflect.DeepEqual.
type TSL[S any] struct {
	// SpecName identifies the spec.
	SpecName string
	// Initial is the initial state.
	Initial S
	// OpTransition maps an operation to its transition. It must be total
	// over the ops the harness emits.
	OpTransition func(op Op) tsl.Transition[S, Ret]
	// CrashTransition is the spec crash step; nil means identity (no data
	// lost on crash, like Figure 3).
	CrashTransition func(S) S
	// KeyOf produces the memoization key; nil means fmt.Sprintf("%v").
	KeyOf func(S) string
}

// Name implements Interface.
func (t *TSL[S]) Name() string { return t.SpecName }

// Init implements Interface.
func (t *TSL[S]) Init() State { return t.Initial }

// Step implements Interface.
func (t *TSL[S]) Step(s State, op Op, ret Ret) ([]State, bool) {
	cs, ok := s.(S)
	if !ok {
		panic(fmt.Sprintf("spec %s: state has type %T", t.SpecName, s))
	}
	r := t.OpTransition(op)(cs)
	if r.UB {
		return nil, true
	}
	var next []State
	for _, o := range r.Outcomes {
		if _, isPending := ret.(pending); !isPending && !reflect.DeepEqual(o.Val, ret) {
			continue
		}
		next = append(next, State(o.State))
	}
	return next, false
}

// Crash implements Interface.
func (t *TSL[S]) Crash(s State) State {
	cs := s.(S)
	if t.CrashTransition == nil {
		return s
	}
	return State(t.CrashTransition(cs))
}

// Key implements Interface.
func (t *TSL[S]) Key(s State) string {
	cs := s.(S)
	if t.KeyOf == nil {
		return fmt.Sprintf("%v", cs)
	}
	return t.KeyOf(cs)
}
