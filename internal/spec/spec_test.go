package spec

import (
	"testing"

	"repro/internal/tsl"
)

type st struct{ a, b int }

type opSwap struct{}
type opPick struct{}
type opUB struct{}

func testSpec() *TSL[st] {
	return &TSL[st]{
		SpecName: "swap",
		Initial:  st{a: 1, b: 2},
		OpTransition: func(op Op) tsl.Transition[st, Ret] {
			switch op.(type) {
			case opSwap:
				return tsl.Then(
					tsl.Modify(func(s st) st { return st{a: s.b, b: s.a} }),
					tsl.Ret[st, Ret](nil))
			case opPick:
				// Nondeterministically return a or b.
				return func(s st) tsl.Result[st, Ret] {
					return tsl.Result[st, Ret]{Outcomes: []tsl.Outcome[st, Ret]{
						{State: s, Val: s.a},
						{State: s, Val: s.b},
					}}
				}
			case opUB:
				return tsl.Undefined[st, Ret]()
			default:
				panic("bad op")
			}
		},
		CrashTransition: func(s st) st { return st{a: s.a, b: s.a} },
		KeyOf:           nil,
	}
}

func TestNameAndInit(t *testing.T) {
	sp := testSpec()
	if sp.Name() != "swap" {
		t.Fatalf("name=%q", sp.Name())
	}
	if sp.Init().(st) != (st{a: 1, b: 2}) {
		t.Fatalf("init=%v", sp.Init())
	}
}

func TestStepFiltersByReturnValue(t *testing.T) {
	sp := testSpec()
	next, ub := sp.Step(st{a: 5, b: 9}, opPick{}, 5)
	if ub || len(next) != 1 {
		t.Fatalf("next=%v ub=%v", next, ub)
	}
	next, _ = sp.Step(st{a: 5, b: 9}, opPick{}, 9)
	if len(next) != 1 {
		t.Fatalf("next=%v", next)
	}
	next, _ = sp.Step(st{a: 5, b: 9}, opPick{}, 7)
	if len(next) != 0 {
		t.Fatalf("disallowed return accepted: %v", next)
	}
}

func TestStepWithPendingAcceptsAnyReturn(t *testing.T) {
	sp := testSpec()
	next, ub := sp.Step(st{a: 5, b: 9}, opPick{}, Pending)
	if ub || len(next) != 2 {
		t.Fatalf("pending should keep all outcomes: %v", next)
	}
}

func TestStepUB(t *testing.T) {
	sp := testSpec()
	if _, ub := sp.Step(st{}, opUB{}, nil); !ub {
		t.Fatal("UB not reported")
	}
}

func TestCrashUsesTransition(t *testing.T) {
	sp := testSpec()
	got := sp.Crash(st{a: 3, b: 8}).(st)
	if got != (st{a: 3, b: 3}) {
		t.Fatalf("crash=%v", got)
	}
}

func TestCrashDefaultsToIdentity(t *testing.T) {
	sp := testSpec()
	sp.CrashTransition = nil
	got := sp.Crash(st{a: 3, b: 8}).(st)
	if got != (st{a: 3, b: 8}) {
		t.Fatalf("crash=%v", got)
	}
}

func TestKeyDefaultsToFormat(t *testing.T) {
	sp := testSpec()
	if sp.Key(st{a: 1, b: 2}) != "{1 2}" {
		t.Fatalf("key=%q", sp.Key(st{a: 1, b: 2}))
	}
	sp.KeyOf = func(s st) string { return "custom" }
	if sp.Key(st{}) != "custom" {
		t.Fatal("custom key ignored")
	}
}

func TestPendingIsPrintable(t *testing.T) {
	if got := Pending.(interface{ String() string }).String(); got != "<pending>" {
		t.Fatalf("pending prints as %q", got)
	}
}
