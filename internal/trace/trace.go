// Package trace is the request-scoped tracing layer: dependency-free
// (standard library only) span trees with monotonic timestamps, a
// per-process trace-ID sequence, a lock-free bounded ring buffer of
// completed traces, and slowest-N retention per operation kind.
//
// The package exists because the metrics layer (internal/obs) answers
// "how much" — aggregate counts and latency quantiles — but cannot say
// *where inside one Deliver* the fsync tail lives. A trace is a tree of
// timed spans: the SMTP/POP3 verb handler opens the root, the mailboat
// library opens stage children (spool write, publish, the SyncDir
// barrier), and the gfs middleware chain contributes leaf spans and
// event annotations, so a single delivery renders as a nested timeline
// attributing its latency stage by stage.
//
// Like obs, every method is nil-receiver-safe: a nil *Tracer starts nil
// *Spans, and every Span method on nil is a no-op, so instrumented code
// needs no "is tracing enabled?" branches. The model checker's
// executions stay trace-free by construction: spans travel on the
// thread handle via the Carrier interface, which only the native
// (real-goroutine) handles implement — *machine.T does not, so Enter on
// a checker thread is one failed type assertion and no allocation,
// and checked histories cannot observe wall-clock time through spans.
package trace

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed stage of a request. Spans form a tree under the
// trace root; timestamps come from the monotonic clock (time.Now's
// monotonic reading), so child windows nest truthfully inside their
// parent even across wall-clock adjustments.
//
// A span is owned by the goroutine executing its request; methods on a
// single span are not meant for concurrent callers, but completed
// traces published to a Tracer are immutable and safe to read from any
// goroutine.
type Span struct {
	Name   string
	parent *Span

	start time.Time
	dur   time.Duration
	ended bool

	children []*Span
	notes    []string

	// Root-only bookkeeping: where to publish on End.
	tracer *Tracer
	op     string
	id     uint64
}

// Child opens a started child span. Nil-safe: a nil receiver returns
// nil, so the untraced path stays branch-free at call sites.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, parent: s, start: time.Now()}
	s.children = append(s.children, c)
	return c
}

// End closes the span. Ending a root span publishes the completed
// trace to its tracer. End is idempotent; End on nil is a no-op.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.dur = time.Since(s.start)
	s.ended = true
	if s.tracer != nil {
		s.tracer.publish(s)
	}
}

// Note attaches a formatted annotation (a point event: an injected
// fault, a detected checksum mismatch, a mirror failover) to the span.
func (s *Span) Note(format string, args ...any) {
	if s == nil {
		return
	}
	s.notes = append(s.notes, fmt.Sprintf(format, args...))
}

// Duration returns the span's duration: final once ended, running
// elapsed time before that, zero on nil.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	if s.ended {
		return s.dur
	}
	return time.Since(s.start)
}

// Start returns the span's start time (zero on nil).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Children returns the child spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	return s.children
}

// Notes returns the span's annotations in creation order.
func (s *Span) Notes() []string {
	if s == nil {
		return nil
	}
	return s.notes
}

// Trace is a completed request: a root span tree plus identity.
type Trace struct {
	ID   uint64
	Op   string // operation kind: "deliver", "pickup", "delete", "recover"
	Root *Span
}

// Duration returns the root span's duration.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	return t.Root.Duration()
}

// Carrier is implemented by thread handles that can carry the active
// span across layer boundaries. The gfs stack passes a thread handle
// (gfs.T) — not a context.Context — through every call, so the span
// rides on it: native handles (gfs.Native, the daemon's per-request
// wrapper) implement Carrier; the checker's *machine.T deliberately
// does not, which is what keeps checked executions trace-free.
type Carrier interface {
	TraceSpan() *Span
	SetTraceSpan(*Span)
}

// Enter opens a child of t's active span, makes it current, and
// returns it; pair with Exit. If t does not carry a span (checker
// threads, untraced requests) Enter returns nil and the call costs one
// type assertion.
func Enter(t any, name string) *Span {
	c, ok := t.(Carrier)
	if !ok {
		return nil
	}
	cur := c.TraceSpan()
	if cur == nil {
		return nil
	}
	child := cur.Child(name)
	c.SetTraceSpan(child)
	return child
}

// Exit ends a span opened by Enter and restores its parent as t's
// current span. Exit(t, nil) is a no-op.
func Exit(t any, s *Span) {
	if s == nil {
		return
	}
	s.End()
	if c, ok := t.(Carrier); ok {
		c.SetTraceSpan(s.parent)
	}
}

// Event annotates t's active span with a point event, if any. Callers
// should keep the arguments cheap: they are evaluated even when the
// span is nil (the format call is not).
func Event(t any, format string, args ...any) {
	if c, ok := t.(Carrier); ok {
		if sp := c.TraceSpan(); sp != nil {
			sp.Note(format, args...)
		}
	}
}

// DefaultRing and DefaultSlowest size New's retention when callers pass
// zero: the ring keeps the most recent completed traces for /traces,
// and each op kind keeps its N slowest for /traces/slow.
const (
	DefaultRing    = 256
	DefaultSlowest = 8
)

// Tracer starts root spans and retains completed traces. The ring of
// recent traces is lock-free on both sides (an atomic slot index plus
// atomic slot pointers); only slowest-N retention takes a small mutex,
// and only on the completion path — never inside a span.
type Tracer struct {
	ring []atomic.Pointer[Trace]
	next atomic.Uint64 // next ring slot (monotone; slot = next % len)
	ids  atomic.Uint64

	slowN   int
	mu      sync.Mutex          // guards slowest
	slowest map[string][]*Trace // per op, sorted slowest-first, ≤ slowN

	// Stages, when set, receives every completed span's duration keyed
	// by (root op, span name), feeding the per-stage obs histograms.
	Stages *StageMetrics
}

// New returns a tracer retaining the last ringSize completed traces and
// the slowestPerOp slowest per op kind (zero values pick the defaults).
func New(ringSize, slowestPerOp int) *Tracer {
	if ringSize <= 0 {
		ringSize = DefaultRing
	}
	if slowestPerOp <= 0 {
		slowestPerOp = DefaultSlowest
	}
	return &Tracer{
		ring:    make([]atomic.Pointer[Trace], ringSize),
		slowN:   slowestPerOp,
		slowest: map[string][]*Trace{},
	}
}

// Start opens a root span for a new request of the given op kind
// ("deliver", "pickup", ...). The returned span publishes the completed
// trace when ended. Nil-safe: a nil tracer returns a nil span.
func (tr *Tracer) Start(op, name string) *Span {
	if tr == nil {
		return nil
	}
	return &Span{
		Name:   name,
		start:  time.Now(),
		tracer: tr,
		op:     op,
		id:     tr.ids.Add(1),
	}
}

// publish retains a completed root span: ring slot, slowest-N, stage
// histograms.
func (tr *Tracer) publish(root *Span) {
	t := &Trace{ID: root.id, Op: root.op, Root: root}
	slot := (tr.next.Add(1) - 1) % uint64(len(tr.ring))
	tr.ring[slot].Store(t)

	tr.Stages.observeTree(t.Op, root)

	tr.mu.Lock()
	defer tr.mu.Unlock()
	s := tr.slowest[t.Op]
	i := len(s)
	for i > 0 && s[i-1].Duration() < t.Duration() {
		i--
	}
	if i < tr.slowN {
		s = append(s, nil)
		copy(s[i+1:], s[i:])
		s[i] = t
		if len(s) > tr.slowN {
			s = s[:tr.slowN]
		}
		tr.slowest[t.Op] = s
	}
}

// Recent returns up to n completed traces, most recent first,
// optionally filtered by op kind ("" = all).
func (tr *Tracer) Recent(op string, n int) []*Trace {
	if tr == nil || n <= 0 {
		return nil
	}
	var out []*Trace
	end := tr.next.Load()
	size := uint64(len(tr.ring))
	scan := size
	if end < size {
		scan = end
	}
	for i := uint64(0); i < scan && len(out) < n; i++ {
		t := tr.ring[(end-1-i)%size].Load()
		if t == nil {
			continue
		}
		if op != "" && t.Op != op {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Slowest returns the retained slowest traces for one op kind, or for
// every op kind when op is "" (slowest-first within an op).
func (tr *Tracer) Slowest(op string) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if op != "" {
		return append([]*Trace{}, tr.slowest[op]...)
	}
	ops := make([]string, 0, len(tr.slowest))
	for k := range tr.slowest {
		ops = append(ops, k)
	}
	// Stable op order for rendering.
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j] < ops[j-1]; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
	var out []*Trace
	for _, k := range ops {
		out = append(out, tr.slowest[k]...)
	}
	return out
}

// Ops returns the op kinds with retained slowest traces, sorted.
func (tr *Tracer) Ops() []string {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	ops := make([]string, 0, len(tr.slowest))
	for k := range tr.slowest {
		ops = append(ops, k)
	}
	for i := 1; i < len(ops); i++ {
		for j := i; j > 0 && ops[j] < ops[j-1]; j-- {
			ops[j], ops[j-1] = ops[j-1], ops[j]
		}
	}
	return ops
}

// Validate checks that a completed trace is structurally sound: every
// span ended, children lie within their parent's window in
// non-overlapping creation order, and each span's child durations sum
// to no more than the span's own duration. It is the acceptance check
// behind "child durations sum within the root span".
func Validate(t *Trace) error {
	if t == nil || t.Root == nil {
		return fmt.Errorf("trace: empty trace")
	}
	return validateSpan(t.Root)
}

func validateSpan(s *Span) error {
	if !s.ended {
		return fmt.Errorf("trace: span %q never ended", s.Name)
	}
	end := s.start.Add(s.dur)
	var sum time.Duration
	var prevEnd time.Time
	for _, c := range s.children {
		if !c.ended {
			return fmt.Errorf("trace: span %q never ended", c.Name)
		}
		if c.start.Before(s.start) {
			return fmt.Errorf("trace: child %q starts before parent %q", c.Name, s.Name)
		}
		if c.start.Add(c.dur).After(end) {
			return fmt.Errorf("trace: child %q ends after parent %q", c.Name, s.Name)
		}
		if c.start.Before(prevEnd) {
			return fmt.Errorf("trace: child %q overlaps its predecessor in %q", c.Name, s.Name)
		}
		prevEnd = c.start.Add(c.dur)
		sum += c.dur
		if err := validateSpan(c); err != nil {
			return err
		}
	}
	if sum > s.dur {
		return fmt.Errorf("trace: children of %q sum to %v > parent %v", s.Name, sum, s.dur)
	}
	return nil
}

// Depth returns the maximum span nesting depth of the trace (the root
// counts as 1).
func Depth(t *Trace) int {
	if t == nil || t.Root == nil {
		return 0
	}
	return spanDepth(t.Root)
}

func spanDepth(s *Span) int {
	d := 1
	for _, c := range s.children {
		if cd := 1 + spanDepth(c); cd > d {
			d = cd
		}
	}
	return d
}
