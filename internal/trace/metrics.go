package trace

import (
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// StageMetrics bridges span durations into obs: every completed span
// feeds a trace_stage_seconds{op,stage} histogram, so the per-stage
// latency distribution (spool write vs. link vs. the SyncDir barrier)
// is scrapeable from /metrics and summarizable for BENCH_mailboat.json.
//
// Cardinality stays bounded because both labels come from code — op
// kinds are the four request verbs and stage names are span-name
// literals — never from user input.
type StageMetrics struct {
	reg *obs.Registry

	mu    sync.Mutex
	hists map[string]*obs.Histogram // keyed op + "\x00" + stage
}

// NewStageMetrics returns stage metrics registering histograms in reg.
func NewStageMetrics(reg *obs.Registry) *StageMetrics {
	if reg == nil {
		return nil
	}
	return &StageMetrics{reg: reg, hists: map[string]*obs.Histogram{}}
}

// hist returns the (op, stage) histogram, registering on first use. The
// local cache keeps the completion path off the registry lock except
// for the first observation of each series.
func (m *StageMetrics) hist(op, stage string) *obs.Histogram {
	key := op + "\x00" + stage
	m.mu.Lock()
	h, ok := m.hists[key]
	if !ok {
		h = m.reg.Histogram("trace_stage_seconds",
			"Span durations by request op kind and stage name.",
			obs.DefLatencyBuckets, "op", op, "stage", stage)
		m.hists[key] = h
	}
	m.mu.Unlock()
	return h
}

// observe records one span duration. Nil-safe.
func (m *StageMetrics) observe(op, stage string, d time.Duration) {
	if m == nil {
		return
	}
	m.hist(op, stage).ObserveDuration(d)
}

// observeTree records every span in a completed trace.
func (m *StageMetrics) observeTree(op string, s *Span) {
	if m == nil || s == nil {
		return
	}
	m.observe(op, s.Name, s.dur)
	for _, c := range s.children {
		m.observeTree(op, c)
	}
}

// StageSummary is one (op, stage) distribution snapshot, in seconds.
type StageSummary struct {
	Op    string  `json:"op"`
	Stage string  `json:"stage"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
	Sum   float64 `json:"sum_seconds"`
}

// Summaries snapshots every (op, stage) histogram, sorted by op then
// stage, for bench output and tests.
func (m *StageMetrics) Summaries() []StageSummary {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	keys := make([]string, 0, len(m.hists))
	for k := range m.hists {
		keys = append(keys, k)
	}
	hists := make(map[string]*obs.Histogram, len(m.hists))
	for k, h := range m.hists {
		hists[k] = h
	}
	m.mu.Unlock()
	sort.Strings(keys)
	out := make([]StageSummary, 0, len(keys))
	for _, k := range keys {
		h := hists[k]
		sep := 0
		for i := range k {
			if k[i] == 0 {
				sep = i
				break
			}
		}
		out = append(out, StageSummary{
			Op:    k[:sep],
			Stage: k[sep+1:],
			Count: h.Count(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			Sum:   h.Sum(),
		})
	}
	return out
}
