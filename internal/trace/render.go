package trace

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteText renders a completed trace as an indented timeline: one line
// per span with its offset from the root, its duration, and any event
// annotations beneath it.
//
//	trace 42 op=deliver 1.84ms
//	  smtp.DATA                         +0s      1.84ms
//	    mailboat.deliver                +121µs   1.69ms
//	      spool.write                   +130µs   801µs
//	        gfs.create                  +132µs   210µs
//	      publish.link                  +940µs   733µs
//	        syncdir.barrier             +1.1ms   520µs
func WriteText(w io.Writer, t *Trace) {
	if t == nil || t.Root == nil {
		return
	}
	fmt.Fprintf(w, "trace %d op=%s %v\n", t.ID, t.Op, round(t.Duration()))
	writeSpanText(w, t.Root, t.Root.start, 1)
}

func writeSpanText(w io.Writer, s *Span, epoch time.Time, depth int) {
	indent := strings.Repeat("  ", depth)
	name := indent + s.Name
	fmt.Fprintf(w, "%-34s +%-9v %v\n", name, round(s.start.Sub(epoch)), round(s.Duration()))
	for _, n := range s.notes {
		fmt.Fprintf(w, "%s  ! %s\n", indent, n)
	}
	for _, c := range s.children {
		writeSpanText(w, c, epoch, depth+1)
	}
}

// round trims durations to a readable precision for the timeline.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond)
	default:
		return d.Round(100 * time.Nanosecond)
	}
}

// SpanJSON is the wire shape of one span for the JSON renderer: offsets
// and durations in microseconds relative to the trace root.
type SpanJSON struct {
	Name     string     `json:"name"`
	StartUS  int64      `json:"start_us"`
	DurUS    int64      `json:"dur_us"`
	Notes    []string   `json:"notes,omitempty"`
	Children []SpanJSON `json:"children,omitempty"`
}

// TraceJSON is the wire shape of one completed trace.
type TraceJSON struct {
	ID    uint64   `json:"id"`
	Op    string   `json:"op"`
	DurUS int64    `json:"dur_us"`
	Root  SpanJSON `json:"root"`
}

// ToJSON converts a completed trace to its wire shape.
func ToJSON(t *Trace) TraceJSON {
	if t == nil || t.Root == nil {
		return TraceJSON{}
	}
	return TraceJSON{
		ID:    t.ID,
		Op:    t.Op,
		DurUS: t.Duration().Microseconds(),
		Root:  spanJSON(t.Root, t.Root.start),
	}
}

func spanJSON(s *Span, epoch time.Time) SpanJSON {
	j := SpanJSON{
		Name:    s.Name,
		StartUS: s.start.Sub(epoch).Microseconds(),
		DurUS:   s.Duration().Microseconds(),
		Notes:   s.notes,
	}
	for _, c := range s.children {
		j.Children = append(j.Children, spanJSON(c, epoch))
	}
	return j
}
