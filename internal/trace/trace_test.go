package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// testCarrier is a minimal Carrier, standing in for the daemon's
// per-request thread handle.
type testCarrier struct{ sp *Span }

func (c *testCarrier) TraceSpan() *Span     { return c.sp }
func (c *testCarrier) SetTraceSpan(s *Span) { c.sp = s }

// TestNilSafety drives the whole API through nil receivers: the
// contract that lets the untraced (and checker) paths run the same
// instrumented code with zero branches.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("deliver", "root")
	if sp != nil {
		t.Fatalf("nil tracer started a span")
	}
	sp.Note("ignored %d", 1)
	child := sp.Child("x")
	if child != nil {
		t.Fatalf("nil span produced a child")
	}
	child.End()
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span has duration %v", d)
	}
	if got := tr.Recent("", 10); got != nil {
		t.Fatalf("nil tracer has recent traces")
	}
	if got := tr.Slowest(""); got != nil {
		t.Fatalf("nil tracer has slowest traces")
	}
	var m *StageMetrics
	m.observe("deliver", "x", time.Millisecond)
	if s := m.Summaries(); s != nil {
		t.Fatalf("nil stage metrics has summaries")
	}
	// Enter/Exit/Event against a non-Carrier (the checker shape) and
	// against a Carrier with no active span (untraced request).
	if sp := Enter(struct{}{}, "x"); sp != nil {
		t.Fatalf("non-carrier entered a span")
	}
	Exit(struct{}{}, nil)
	Event(struct{}{}, "ignored")
	c := &testCarrier{}
	if sp := Enter(c, "x"); sp != nil {
		t.Fatalf("carrier with no active span entered a span")
	}
	Event(c, "ignored")
}

// TestSpanTreeNesting builds a realistic tree via Enter/Exit and checks
// structure, validation, and depth.
func TestSpanTreeNesting(t *testing.T) {
	tr := New(8, 4)
	root := tr.Start("deliver", "smtp.DATA")
	c := &testCarrier{sp: root}

	del := Enter(c, "mailboat.deliver")
	spool := Enter(c, "spool.write")
	leaf := Enter(c, "gfs.append")
	time.Sleep(100 * time.Microsecond)
	Exit(c, leaf)
	Exit(c, spool)
	pub := Enter(c, "publish.link")
	bar := Enter(c, "syncdir.barrier")
	Event(c, "retry attempt=%d", 2)
	time.Sleep(100 * time.Microsecond)
	Exit(c, bar)
	Exit(c, pub)
	Exit(c, del)
	if c.sp != root {
		t.Fatalf("Exit did not restore the root span")
	}
	root.End()

	got := tr.Recent("deliver", 1)
	if len(got) != 1 {
		t.Fatalf("expected 1 recent trace, got %d", len(got))
	}
	tc := got[0]
	if err := Validate(tc); err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if d := Depth(tc); d != 4 {
		t.Fatalf("depth = %d, want 4", d)
	}
	if len(tc.Root.Children()) != 1 || tc.Root.Children()[0].Name != "mailboat.deliver" {
		t.Fatalf("unexpected root children: %+v", tc.Root.Children())
	}
	if n := tc.Root.Children()[0].Children(); len(n) != 2 {
		t.Fatalf("deliver should have 2 stage children, got %d", len(n))
	}

	var buf bytes.Buffer
	WriteText(&buf, tc)
	out := buf.String()
	for _, want := range []string{"op=deliver", "smtp.DATA", "mailboat.deliver", "spool.write", "syncdir.barrier", "! retry attempt=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text render missing %q:\n%s", want, out)
		}
	}

	b, err := json.Marshal(ToJSON(tc))
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	var round TraceJSON
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatalf("json round trip: %v", err)
	}
	if round.Op != "deliver" || round.Root.Name != "smtp.DATA" {
		t.Fatalf("json round trip mangled trace: %+v", round)
	}
}

// TestValidateRejectsBrokenTrees checks Validate's negative cases.
func TestValidateRejectsBrokenTrees(t *testing.T) {
	tr := New(4, 2)
	root := tr.Start("deliver", "root")
	child := root.Child("child")
	root.End() // root ends before child
	if err := Validate(&Trace{ID: 1, Op: "deliver", Root: root}); err == nil {
		t.Fatalf("Validate accepted an unended child")
	}
	child.End()
	// Forge a child that ends after its parent.
	bad := root.Child("late")
	bad.start = root.start.Add(-time.Second)
	bad.dur = time.Nanosecond
	bad.ended = true
	if err := Validate(&Trace{ID: 2, Op: "deliver", Root: root}); err == nil {
		t.Fatalf("Validate accepted a child outside the parent window")
	}
}

// TestRingRetention fills the ring past capacity and checks the most
// recent survive, most-recent-first, with op filtering.
func TestRingRetention(t *testing.T) {
	tr := New(4, 2)
	for i := 0; i < 10; i++ {
		op := "deliver"
		if i%2 == 1 {
			op = "pickup"
		}
		tr.Start(op, fmt.Sprintf("r%d", i)).End()
	}
	all := tr.Recent("", 10)
	if len(all) != 4 {
		t.Fatalf("ring of 4 retained %d", len(all))
	}
	if all[0].Root.Name != "r9" || all[3].Root.Name != "r6" {
		t.Fatalf("wrong retention order: %s..%s", all[0].Root.Name, all[3].Root.Name)
	}
	del := tr.Recent("deliver", 10)
	for _, d := range del {
		if d.Op != "deliver" {
			t.Fatalf("op filter leaked %q", d.Op)
		}
	}
}

// TestSlowestRetention checks slowest-N per op: order, cap, and that a
// fast flood cannot evict a slow outlier.
func TestSlowestRetention(t *testing.T) {
	tr := New(64, 3)
	mk := func(op string, d time.Duration, name string) {
		s := tr.Start(op, name)
		s.dur = d
		s.ended = true
		tr.publish(s)
	}
	mk("deliver", 5*time.Millisecond, "slow")
	for i := 0; i < 50; i++ {
		mk("deliver", time.Microsecond, "fast")
	}
	mk("deliver", 3*time.Millisecond, "mid")
	mk("pickup", 7*time.Millisecond, "p")

	s := tr.Slowest("deliver")
	if len(s) != 3 {
		t.Fatalf("slowest cap: got %d", len(s))
	}
	if s[0].Root.Name != "slow" || s[1].Root.Name != "mid" {
		t.Fatalf("slowest order wrong: %s, %s", s[0].Root.Name, s[1].Root.Name)
	}
	if got := tr.Ops(); len(got) != 2 || got[0] != "deliver" || got[1] != "pickup" {
		t.Fatalf("ops = %v", got)
	}
	if all := tr.Slowest(""); len(all) != 4 {
		t.Fatalf("slowest all ops: got %d", len(all))
	}
}

// TestStageMetrics checks span durations land in the per-(op,stage)
// histograms and summarize.
func TestStageMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(8, 2)
	tr.Stages = NewStageMetrics(reg)
	root := tr.Start("deliver", "smtp.DATA")
	c := &testCarrier{sp: root}
	sp := Enter(c, "spool.write")
	time.Sleep(50 * time.Microsecond)
	Exit(c, sp)
	root.End()

	sums := tr.Stages.Summaries()
	if len(sums) != 2 {
		t.Fatalf("expected 2 stage summaries, got %d: %+v", len(sums), sums)
	}
	if sums[0].Stage != "smtp.DATA" || sums[1].Stage != "spool.write" {
		t.Fatalf("stage order: %+v", sums)
	}
	for _, s := range sums {
		if s.Op != "deliver" || s.Count != 1 || s.P99 < 0 {
			t.Fatalf("bad summary: %+v", s)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `trace_stage_seconds_count{op="deliver",stage="spool.write"} 1`) {
		t.Fatalf("stage histogram not exported:\n%s", buf.String())
	}
}

// TestConcurrentPublishAndRead hammers the ring from publishers while
// readers scan it; meaningful under -race.
func TestConcurrentPublishAndRead(t *testing.T) {
	tr := New(16, 4)
	var pubs sync.WaitGroup
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, tc := range tr.Recent("", 16) {
				_ = Validate(tc)
			}
			tr.Slowest("")
		}
	}()
	for w := 0; w < 4; w++ {
		pubs.Add(1)
		go func() {
			defer pubs.Done()
			for i := 0; i < 500; i++ {
				root := tr.Start("deliver", "r")
				root.Child("c").End()
				root.End()
			}
		}()
	}
	pubs.Wait()
	close(stop)
	<-done
}
