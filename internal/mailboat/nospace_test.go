package mailboat

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/gfs"
)

// These tests exercise resource exhaustion as a fault axis: gfs.Faulty's
// FaultNoSpace latches the store ENOSPC at a chooser-picked write, after
// which every write fails until a delete frees space. The disciplined
// implementation aborts cleanly (never ack-then-lose), recovery's
// orphan-spool sweep doubles as the garbage collector that returns
// space, and the two seeded mutations — acking a refused delivery, and
// a delivery-time "GC" that eats live spool files — are convicted with
// minimized, replayable counterexamples.

func nospaceGCScenario(v Variant, delivers []OpDeliver, crashes int, randBound uint64) *explore.Scenario {
	return Scenario("mb-nospace-gc", v, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: randBound},
		Delivers:    delivers,
		MaxCrashes:  crashes,
		FaultBudget: 1,
		FaultOps:    []gfs.FaultOp{gfs.FaultNoSpace},
		NoSpaceGC:   true,
	})
}

// TestNoSpaceCleanAbortExhaustive: full refinement (ghost-annotated)
// with the disk-full latch racing a concurrent pickup. A latched
// delivery must land as the spec's transient failure — mailbox
// untouched, sender told no — never as an ack, and never by corrupting
// what the pickup observes. Completes (exhaustive) at this budget.
func TestNoSpaceCleanAbortExhaustive(t *testing.T) {
	budget := 40000
	if testing.Short() {
		budget = 10000
	}
	s := Scenario("mb-nospace-clean-abort", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 3},
		Delivers:    []OpDeliver{{User: 0, Msg: "a"}},
		PickupUsers: []uint64{0},
		PostPickups: true,
		FaultBudget: 1,
		FaultOps:    []gfs.FaultOp{gfs.FaultNoSpace},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation under disk-full:\n%s", rep.Counterexample.Format())
	}
	if !testing.Short() && !rep.Complete {
		t.Error("search did not complete")
	}
}

// TestNoSpaceCleanAbortCrashMatrix is the full matrix — concurrent
// deliver and pickup, a crash anywhere, the latch anywhere — and is
// correspondingly heavy, so -short skips it. The latch surviving the
// crash must not change any answer recovery gives.
func TestNoSpaceCleanAbortCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash × latch × schedule matrix; run without -short")
	}
	s := Scenario("mb-nospace-crash-matrix", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 3},
		Delivers:    []OpDeliver{{User: 0, Msg: "a"}},
		PickupUsers: []uint64{0},
		MaxCrashes:  1,
		PostPickups: true,
		FaultBudget: 1,
		FaultOps:    []gfs.FaultOp{gfs.FaultNoSpace},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 200000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation under disk-full + crash:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
	if rep.CrashedExecutions == 0 {
		t.Fatal("no crash explored")
	}
}

// TestNoSpaceGCReclaimsExhaustive: the exhaustion contract as a
// property, with the latch crossing TWO crash/recovery boundaries. The
// crash strands whatever was spooled, recovery's sweep reclaims it
// (clearing the latch), and Post's probe pins writability to the latch
// state. Double-crash also pins the durable-latch budget accounting:
// the replayed latch must not re-spend the chooser budget in era two.
func TestNoSpaceGCReclaimsExhaustive(t *testing.T) {
	s := nospaceGCScenario(VariantVerified, []OpDeliver{{User: 0, Msg: "a"}}, 2, 3)
	rep := explore.Run(s, explore.Options{MaxExecutions: 20000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("exhaustion contract violated:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
	if rep.CrashedExecutions == 0 {
		t.Fatal("no crash explored")
	}
}

// TestNoSpaceSelfCheckDedup runs the dedup soundness self-check on the
// nospace property scenario: its fingerprint covers the disk-full latch
// (Faulty.AppendCheckerState), the chooser policy's spent budget, and
// the acked set — a pruned boundary differing in any of them would be a
// soundness hole.
func TestNoSpaceSelfCheckDedup(t *testing.T) {
	s := nospaceGCScenario(VariantVerified, []OpDeliver{{User: 0, Msg: "a"}}, 2, 3)
	with, without, err := explore.SelfCheckDedup(s, explore.Options{MaxExecutions: 20000})
	if err != nil {
		t.Fatalf("self-check failed: %v", err)
	}
	t.Logf("without dedup: %s", without)
	t.Logf("with dedup:    %s (%d boundaries, %d pruned)",
		with, with.Stats.DistinctBoundaries, with.Stats.PrunedStates)
}

// TestBugAckOnNoSpaceCaught seeds the ack-after-ENOSPC mutation: the
// full disk refused the delivery, nothing was published, and the client
// heard yes — acked-but-absent, convicted by the post-recovery audit.
func TestBugAckOnNoSpaceCaught(t *testing.T) {
	s := nospaceGCScenario(VariantDeliverAckOnNoSpace, []OpDeliver{{User: 0, Msg: "a"}}, 1, 3)
	convictAndMinimize(t, s, "ack-after-enospc")
}

// TestBugGreedySpoolGCCaught seeds the gc-eats-live-spool mutation: on
// ENOSPC the delivery sweeps the whole spool directory, eating a
// concurrent delivery's spooled-but-unlinked message; its link source
// vanishes and the model's link assertion convicts.
func TestBugGreedySpoolGCCaught(t *testing.T) {
	s := nospaceGCScenario(VariantDeliverGreedySpoolGC,
		[]OpDeliver{{User: 0, Msg: "a"}, {User: 0, Msg: "b"}}, 0, 4)
	convictAndMinimize(t, s, "gc-eats-live-spool")
}

// TestQuotaRefusesAndCreditsOnDelete drives the per-user byte quota on
// the real file system: a delivery that would exceed QuotaBytes is
// refused up front with the mailbox untouched, deleting mail credits
// the bytes back, and recovery re-derives usage from the store.
func TestQuotaRefusesAndCreditsOnDelete(t *testing.T) {
	c := Config{Users: 2, RandBound: 1 << 20, QuotaBytes: 10}
	osfs, err := gfs.NewOS(t.TempDir(), Dirs(c))
	if err != nil {
		t.Fatal(err)
	}
	defer osfs.CloseAll()
	th := gfs.NewNative(1)

	mb := Init(th, nil, osfs, c)
	if !mb.Deliver(th, nil, 0, []byte("sixbyt")) {
		t.Fatal("under-quota delivery refused")
	}
	if got := mb.QuotaUsed(0); got != 6 {
		t.Fatalf("quota used = %d, want 6", got)
	}
	if mb.Deliver(th, nil, 0, []byte("fivebytes")) {
		t.Fatal("over-quota delivery accepted")
	}
	if got := mb.QuotaUsed(0); got != 6 {
		t.Fatalf("quota used after refusal = %d, want 6 (refund)", got)
	}
	// The other user's quota is independent.
	if !mb.Deliver(th, nil, 1, []byte("tenbytes!!")) {
		t.Fatal("user 1 refused despite an empty mailbox")
	}
	// Deleting the message credits its bytes back and reopens the door.
	msgs := mb.Pickup(th, nil, 0)
	if len(msgs) != 1 {
		t.Fatalf("user 0 has %d messages", len(msgs))
	}
	if !mb.Delete(th, nil, 0, msgs[0].ID) {
		t.Fatal("delete failed")
	}
	mb.Unlock(th, nil, 0)
	if got := mb.QuotaUsed(0); got != 0 {
		t.Fatalf("quota used after delete = %d, want 0", got)
	}
	if !mb.Deliver(th, nil, 0, []byte("fivebytes")) {
		t.Fatal("delivery refused after the quota was credited back")
	}

	// Recovery re-derives usage from the store, not from memory.
	mb = Recover(th, nil, osfs, c, nil)
	if got := mb.QuotaUsed(0); got != 9 {
		t.Fatalf("quota used after recovery = %d, want 9", got)
	}
	if got := mb.QuotaUsed(1); got != 10 {
		t.Fatalf("user 1 quota after recovery = %d, want 10", got)
	}
	if mb.Deliver(th, nil, 1, []byte("x")) {
		t.Fatal("user 1 over-quota delivery accepted after recovery")
	}
}
