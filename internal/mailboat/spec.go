package mailboat

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/spec"
	"repro/internal/tsl"
)

// State is the abstract state of §8.1: a set of user mailboxes, each a
// mapping from message IDs to contents.
type State struct {
	Boxes []map[string]string
}

// NewState returns an empty abstract state for users mailboxes.
func NewState(users uint64) State {
	s := State{Boxes: make([]map[string]string, users)}
	for i := range s.Boxes {
		s.Boxes[i] = map[string]string{}
	}
	return s
}

func (s State) clone() State {
	out := State{Boxes: make([]map[string]string, len(s.Boxes))}
	for i, b := range s.Boxes {
		nb := make(map[string]string, len(b))
		for k, v := range b {
			nb[k] = v
		}
		out.Boxes[i] = nb
	}
	return out
}

// MessagesOf returns user's mailbox as a sorted message list — the
// value the spec's Pickup returns.
func (s State) MessagesOf(user uint64) []Message {
	b := s.Boxes[user]
	out := make([]Message, 0, len(b))
	for id, c := range b {
		out = append(out, Message{ID: id, Contents: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Key renders the state canonically.
func (s State) Key() string {
	var b strings.Builder
	for u, box := range s.Boxes {
		ids := make([]string, 0, len(box))
		for id := range box {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, "u%d{", u)
		for _, id := range ids {
			fmt.Fprintf(&b, "%s=%q,", id, box[id])
		}
		b.WriteString("}")
	}
	return b.String()
}

// OpDeliver is Deliver(user, msg): either insert msg under some fresh
// ID and return true, or fail transiently (store fault, retries
// exhausted) leaving the mailbox untouched and return false. The
// failure outcome is what makes graceful degradation checkable: an
// implementation may refuse a delivery, but only by reporting it.
// Returning true without inserting (a silent drop) or false after
// inserting (a spurious failure whose message later appears) both fail
// refinement.
type OpDeliver struct {
	User uint64
	Msg  string
}

func (o OpDeliver) String() string { return fmt.Sprintf("Deliver(%d, %q)", o.User, o.Msg) }

// OpPickup is Pickup(user): return the whole mailbox (and take the
// user's lock, which the spec does not model — serialization is the
// implementation's concern).
type OpPickup struct{ User uint64 }

func (o OpPickup) String() string { return fmt.Sprintf("Pickup(%d)", o.User) }

// OpDelete is Delete(user, id): either remove the message and return
// true, or fail transiently leaving it in place and return false.
// Calling it with an ID that is not in the mailbox is outside the spec
// (undefined behaviour), per §8.1's assumption that users only delete
// IDs returned by Pickup.
type OpDelete struct {
	User uint64
	ID   string
}

func (o OpDelete) String() string { return fmt.Sprintf("Delete(%d, %s)", o.User, o.ID) }

// OpUnlock is Unlock(user): no spec-level effect.
type OpUnlock struct{ User uint64 }

func (o OpUnlock) String() string { return fmt.Sprintf("Unlock(%d)", o.User) }

// Spec builds the mail-server specification for cfg. Message IDs are
// drawn from the finite universe MsgName(0..RandBound), matching the
// implementation's name-allocation domain, which keeps Deliver's
// nondeterministic ID choice enumerable for the checker. The crash
// transition is the identity: delivered mail is never lost (§8's
// durability guarantee).
func Spec(cfg Config) spec.Interface {
	return &spec.TSL[State]{
		SpecName: "mailboat",
		Initial:  NewState(cfg.Users),
		OpTransition: func(op spec.Op) tsl.Transition[State, spec.Ret] {
			switch o := op.(type) {
			case OpDeliver:
				return deliverT(cfg, o)
			case OpPickup:
				return pickupT(o)
			case OpDelete:
				return deleteT(o)
			case OpUnlock:
				return tsl.Ret[State, spec.Ret](nil)
			default:
				panic(fmt.Sprintf("mailboat: unknown op %T", op))
			}
		},
		KeyOf: func(s State) string { return s.Key() },
	}
}

func deliverT(cfg Config, o OpDeliver) tsl.Transition[State, spec.Ret] {
	return func(s State) tsl.Result[State, spec.Ret] {
		if o.User >= uint64(len(s.Boxes)) {
			return tsl.Result[State, spec.Ret]{UB: true}
		}
		var out tsl.Result[State, spec.Ret]
		for i := uint64(0); i < cfg.RandBound; i++ {
			id := MsgName(i)
			if _, taken := s.Boxes[o.User][id]; taken {
				continue
			}
			n := s.clone()
			n.Boxes[o.User][id] = o.Msg
			out.Outcomes = append(out.Outcomes, tsl.Outcome[State, spec.Ret]{State: n, Val: true})
		}
		// Transient failure: always allowed, never changes the state.
		out.Outcomes = append(out.Outcomes, tsl.Outcome[State, spec.Ret]{State: s, Val: false})
		return out
	}
}

func pickupT(o OpPickup) tsl.Transition[State, spec.Ret] {
	return func(s State) tsl.Result[State, spec.Ret] {
		if o.User >= uint64(len(s.Boxes)) {
			return tsl.Result[State, spec.Ret]{UB: true}
		}
		return tsl.Result[State, spec.Ret]{Outcomes: []tsl.Outcome[State, spec.Ret]{
			{State: s, Val: s.MessagesOf(o.User)},
		}}
	}
}

func deleteT(o OpDelete) tsl.Transition[State, spec.Ret] {
	return func(s State) tsl.Result[State, spec.Ret] {
		if o.User >= uint64(len(s.Boxes)) {
			return tsl.Result[State, spec.Ret]{UB: true}
		}
		if _, ok := s.Boxes[o.User][o.ID]; !ok {
			// Deleting an unlisted ID is outside the spec (§8.1).
			return tsl.Result[State, spec.Ret]{UB: true}
		}
		n := s.clone()
		delete(n.Boxes[o.User], o.ID)
		return tsl.Result[State, spec.Ret]{Outcomes: []tsl.Outcome[State, spec.Ret]{
			{State: n, Val: true},
			// Transient failure: the message stays.
			{State: s, Val: false},
		}}
	}
}
