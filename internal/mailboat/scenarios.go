package mailboat

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/gfs"
	"repro/internal/machine"
	"repro/internal/spec"
)

// World carries the store and ghost state across eras of one checked
// execution.
type World struct {
	G  *core.Ctx
	FS *gfs.Model
	// Sys is the System the library runs against: FS itself, or FS
	// wrapped in a fault-injecting gfs.Faulty when the scenario
	// enumerates transient faults.
	Sys gfs.System
	MB  *Mailboat
}

// Variant selects the implementation under check.
type Variant int

const (
	// VariantVerified is the ghost-annotated implementation.
	VariantVerified Variant = iota
	// VariantDeliverDirect writes into the mailbox without spooling.
	VariantDeliverDirect
	// VariantPickupNoAdvance has the §9.5 infinite read loop.
	VariantPickupNoAdvance
	// VariantPickupLeaky leaks message file descriptors (§9.5).
	VariantPickupLeaky
	// VariantRecoverWipes destroys mailboxes during recovery.
	VariantRecoverWipes
	// VariantForgetSpoolDelete leaves spool entries behind (benign).
	VariantForgetSpoolDelete
)

// ScenarioOptions shapes the workload.
type ScenarioOptions struct {
	// Config sizes the store; RandBound should stay small (≤4).
	Config Config
	// Delivers spawns one delivery thread per entry.
	Delivers []OpDeliver
	// PickupUsers spawns, per entry, a thread doing Pickup(u), Delete of
	// the first message if any, then Unlock(u).
	PickupUsers []uint64
	// MaxCrashes bounds injected crashes.
	MaxCrashes int
	// PostPickups reads each user's mailbox at the end (Pickup+Unlock).
	PostPickups bool
	// BufferedFS runs the scenario on the deferred-durability file
	// system (gfs.NewBufferedModel) instead of the strict model — the
	// §6.2 future-work extension. Crash safety then additionally
	// requires Config.SyncOnDeliver.
	BufferedFS bool
	// FaultBudget, when positive, wraps the model in gfs.Faulty with a
	// chooser-driven policy: at every eligible file-system operation
	// the explorer branches on injecting a transient fault, up to this
	// many faults per execution. Combined with MaxCrashes this checks
	// the spec under crash + transient-fault interleavings.
	FaultBudget int
	// FaultOps restricts which fault classes the chooser may inject
	// (nil = all). Narrowing the classes keeps the DFS space small.
	FaultOps []gfs.FaultOp
}

// Scenario builds the checkable scenario for the chosen variant.
func Scenario(name string, v Variant, o ScenarioOptions) *explore.Scenario {
	ghost := v == VariantVerified
	sp := Spec(o.Config)

	deliver := func(t *machine.T, w *World, h *explore.Harness, op OpDeliver) {
		h.Op(op, func() spec.Ret {
			switch v {
			case VariantDeliverDirect:
				w.MB.DeliverDirect(t, op.User, []byte(op.Msg))
				return true
			case VariantForgetSpoolDelete:
				w.MB.DeliverForgetSpoolDelete(t, op.User, []byte(op.Msg))
				return true
			default:
				var j *core.JTok
				if ghost {
					j = w.G.NewJTok(op)
				}
				delivered := w.MB.Deliver(t, j, op.User, []byte(op.Msg))
				if ghost {
					w.G.FinishOp(t, j, delivered)
				}
				return delivered
			}
		})
	}

	pickup := func(t *machine.T, w *World, h *explore.Harness, user uint64) []Message {
		op := OpPickup{User: user}
		ret := h.Op(op, func() spec.Ret {
			switch v {
			case VariantPickupNoAdvance:
				return w.MB.PickupNoAdvance(t, user)
			case VariantPickupLeaky:
				return w.MB.PickupLeaky(t, user)
			default:
				var j *core.JTok
				if ghost {
					j = w.G.NewJTok(op)
				}
				msgs := w.MB.Pickup(t, j, user)
				if ghost {
					w.G.FinishOp(t, j, msgs)
				}
				return msgs
			}
		})
		return ret.([]Message)
	}

	unlock := func(t *machine.T, w *World, h *explore.Harness, user uint64) {
		op := OpUnlock{User: user}
		h.Op(op, func() spec.Ret {
			var j *core.JTok
			if ghost {
				j = w.G.NewJTok(op)
			}
			w.MB.Unlock(t, j, user)
			if ghost {
				w.G.FinishOp(t, j, nil)
			}
			return nil
		})
	}

	pickupDeleteUnlock := func(t *machine.T, w *World, h *explore.Harness, user uint64) {
		msgs := pickup(t, w, h, user)
		if len(msgs) > 0 {
			op := OpDelete{User: user, ID: msgs[0].ID}
			h.Op(op, func() spec.Ret {
				var j *core.JTok
				if ghost {
					j = w.G.NewJTok(op)
				}
				removed := w.MB.Delete(t, j, user, msgs[0].ID)
				if ghost {
					w.G.FinishOp(t, j, removed)
				}
				return removed
			})
		}
		unlock(t, w, h, user)
	}

	s := &explore.Scenario{
		Name:        name,
		Spec:        sp,
		MachineOpts: machine.Options{MaxSteps: 3000},
		MaxCrashes:  o.MaxCrashes,
		RandPolicy:  func(call, n int) int { return call % n },
		Setup: func(m *machine.Machine) any {
			w := &World{}
			if o.BufferedFS {
				w.FS = gfs.NewBufferedModel(m, Dirs(o.Config))
			} else {
				w.FS = gfs.NewModel(m, Dirs(o.Config))
			}
			w.Sys = w.FS
			if o.FaultBudget > 0 {
				pol := &gfs.ChooserPolicy{Budget: o.FaultBudget}
				if o.FaultOps != nil {
					pol.Eligible = map[gfs.FaultOp]bool{}
					for _, fo := range o.FaultOps {
						pol.Eligible[fo] = true
					}
				}
				w.Sys = gfs.NewFaulty(w.FS, pol)
			}
			if ghost {
				w.G = core.NewCtx(m)
				w.G.InitSim(sp, sp.Init())
			}
			return w
		},
		Init: func(t *machine.T, wAny any) {
			w := wAny.(*World)
			w.MB = Init(t, w.G, w.Sys, o.Config)
		},
		Main: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*World)
			for _, d := range o.Delivers {
				op := d
				t.Go(func(c *machine.T) { deliver(c, w, h, op) })
			}
			for _, u := range o.PickupUsers {
				user := u
				t.Go(func(c *machine.T) { pickupDeleteUnlock(c, w, h, user) })
			}
		},
		Recover: func(t *machine.T, wAny any) {
			w := wAny.(*World)
			if v == VariantRecoverWipes {
				w.MB = RecoverWipesMailboxes(t, w.FS, o.Config)
			} else {
				w.MB = Recover(t, w.G, w.Sys, o.Config, w.MB)
			}
		},
		Post: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*World)
			if !o.PostPickups {
				return
			}
			for u := uint64(0); u < o.Config.Users; u++ {
				pickup(t, w, h, u)
				unlock(t, w, h, u)
			}
		},
	}

	if ghost {
		s.Invariant = func(m *machine.Machine, wAny any) error {
			w := wAny.(*World)
			if w.G.CrashPending() {
				return fmt.Errorf("spec crash step still owed")
			}
			// Iron-style resource accounting (§9.5 found an fd leak that
			// Perennial's proofs could not): at era boundaries every
			// descriptor must be closed.
			if n := w.FS.OpenFDs(); n != 0 {
				return fmt.Errorf("resource leak: %d file descriptors still open", n)
			}
			// MsgsInv: each mailbox directory matches the source state.
			src := w.G.Source().(State)
			for u := uint64(0); u < o.Config.Users; u++ {
				onDisk := w.FS.PeekDir(UserDir(u))
				if len(onDisk) != len(src.Boxes[u]) {
					return fmt.Errorf("MsgsInv: user %d has %d files but source has %d messages",
						u, len(onDisk), len(src.Boxes[u]))
				}
				ids := make([]string, 0, len(onDisk))
				for id := range onDisk {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				for _, id := range ids {
					want, ok := src.Boxes[u][id]
					if !ok {
						return fmt.Errorf("MsgsInv: user %d file %s not in source", u, id)
					}
					if !bytes.Equal(onDisk[id], []byte(want)) {
						return fmt.Errorf("MsgsInv: user %d message %s contents differ", u, id)
					}
				}
			}
			return nil
		}
	}
	return s
}
