package mailboat

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/gfs"
	"repro/internal/machine"
	"repro/internal/spec"
)

// World carries the store and ghost state across eras of one checked
// execution.
type World struct {
	G  *core.Ctx
	FS *gfs.Model
	// Sys is the System the library runs against: FS itself, FS wrapped
	// in a fault-injecting gfs.Faulty when the scenario enumerates
	// transient faults, or a gfs.Mirrored pair when o.Mirror is set.
	Sys gfs.System
	MB  *Mailboat
	// Mirror-mode state: FS is replica 0's model, FS1 replica 1's, F the
	// per-replica fail-stop layers (sharing one chooser budget), Mirror
	// the middleware the library runs against.
	FS1    *gfs.Model
	F      [2]*gfs.Faulty
	Mirror *gfs.Mirrored
	// Pol is the chooser-driven fault policy behind Sys (fault and
	// mirror scenarios); the dedup fingerprint covers its spent budget.
	Pol *gfs.ChooserPolicy
	// Corruption-mode state: Chk is the single-backend envelope layer,
	// Chks the per-replica layers under a mirror, and Acked the set of
	// message payloads whose delivery the workload saw acknowledged —
	// the detection property's ground truth.
	Chk   *gfs.Checksummed
	Chks  [2]*gfs.Checksummed
	Acked map[string]bool
}

// Variant selects the implementation under check.
type Variant int

const (
	// VariantVerified is the ghost-annotated implementation.
	VariantVerified Variant = iota
	// VariantDeliverDirect writes into the mailbox without spooling.
	VariantDeliverDirect
	// VariantPickupNoAdvance has the §9.5 infinite read loop.
	VariantPickupNoAdvance
	// VariantPickupLeaky leaks message file descriptors (§9.5).
	VariantPickupLeaky
	// VariantRecoverWipes destroys mailboxes during recovery.
	VariantRecoverWipes
	// VariantForgetSpoolDelete leaves spool entries behind (benign).
	VariantForgetSpoolDelete
	// VariantRecoverNoResilver skips the mirror-repair step during
	// recovery (only meaningful with ScenarioOptions.Mirror).
	VariantRecoverNoResilver
	// VariantTrustReads serves reads without verifying the checksum
	// envelope (gfs.Checksummed.TrustReads) — the silent-corruption bug
	// the detection scenarios catch as garbage served to a pickup. Only
	// meaningful with ScenarioOptions.Corrupt.
	VariantTrustReads
	// VariantResilverNoVerify skips the resilver's source integrity
	// check (gfs.Mirrored.ResilverNoVerify), so a survivor that rotted
	// on the shelf is copied verbatim over the good replica. Only
	// meaningful with Mirror + Corrupt.
	VariantResilverNoVerify
	// VariantReplaySpool delivers with one-byte appends and recovers by
	// replaying non-empty spool files into the mailbox — a design that
	// wrongly assumes a crashed spool file is either empty or complete.
	// Only a TORN crash tail (a partial prefix of the unsynced appends)
	// exposes it; whole-tail loss leaves nothing to replay. Only
	// meaningful with BufferedFS.
	VariantReplaySpool
	// VariantAckBeforeSync delivers with the full spool-sync-link
	// protocol but acknowledges as soon as the link lands, skipping the
	// directory barrier — so on a writeback store an acked message's
	// directory entry may still be sitting in the cache and be lost at
	// a crash. Only meaningful with Writeback.
	VariantAckBeforeSync
	// VariantRecoverTrustsCache acknowledges deletes straight from the
	// directory cache (no barrier after the unlink): a crash may
	// resurrect the entry, and recovery — trusting whatever directory
	// entries survived — serves the message the user already deleted.
	// Only meaningful with Writeback.
	VariantRecoverTrustsCache
	// VariantDeliverAckOnNoSpace acknowledges a delivery the full disk
	// refused (nothing published) — acked-but-absent. Only meaningful
	// with NoSpaceGC.
	VariantDeliverAckOnNoSpace
	// VariantDeliverGreedySpoolGC sweeps the whole spool directory when
	// a delivery hits a full disk, eating concurrent deliveries' live
	// spooled-but-unlinked files. Only meaningful with NoSpaceGC.
	VariantDeliverGreedySpoolGC
)

// ScenarioOptions shapes the workload.
type ScenarioOptions struct {
	// Config sizes the store; RandBound should stay small (≤4).
	Config Config
	// Delivers spawns one delivery thread per entry.
	Delivers []OpDeliver
	// PickupUsers spawns, per entry, a thread doing Pickup(u), Delete of
	// the first message if any, then Unlock(u).
	PickupUsers []uint64
	// MaxCrashes bounds injected crashes.
	MaxCrashes int
	// PostPickups reads each user's mailbox at the end (Pickup+Unlock).
	PostPickups bool
	// BufferedFS runs the scenario on the deferred-durability file
	// system (gfs.NewBufferedModel) instead of the strict model — the
	// §6.2 future-work extension. Crash safety then additionally
	// requires Config.SyncOnDeliver.
	BufferedFS bool
	// Writeback runs the scenario on the full writeback file system
	// (gfs.NewWritebackModel): file data behaves as under BufferedFS,
	// and directory operations additionally live in a volatile cache
	// until SyncDir — at a crash each directory keeps an enumerated
	// prefix of its un-synced operations (chooser tag "writeback").
	// Crash safety then requires Config.SyncOnDeliver AND
	// Config.SyncDirs. Writeback scenarios run ghost-free: the ghost
	// machinery commits the spec step atomically with the link, which a
	// writeback crash can roll back, so refinement rests on the
	// black-box history check. Implies BufferedFS semantics; exclusive
	// with Mirror and Corrupt.
	Writeback bool
	// PrefixContract (requires Writeback) checks the honest contract
	// of the barrier-free fast mode (mailboatd -no-fsync) instead of
	// refinement: deliveries run sequentially with no history, and
	// after the final recovery the surviving mailbox must be a no-holes
	// prefix of the delivery order — a crash may take back the
	// newest un-synced deliveries (even acked ones: that is the mode's
	// documented weakness) and may leave a torn (empty) message whose
	// link survived its data, but it must never reorder, fabricate, or
	// punch holes. This is the durable-linearizability-vs-buffered
	// distinction of "The Path to Durable Linearizability", checked as
	// a property.
	PrefixContract bool
	// FaultBudget, when positive, wraps the model in gfs.Faulty with a
	// chooser-driven policy: at every eligible file-system operation
	// the explorer branches on injecting a transient fault, up to this
	// many faults per execution. Combined with MaxCrashes this checks
	// the spec under crash + transient-fault interleavings.
	FaultBudget int
	// FaultOps restricts which fault classes the chooser may inject
	// (nil = all). Narrowing the classes keeps the DFS space small.
	FaultOps []gfs.FaultOp
	// Mirror runs the library on a gfs.Mirrored pair of models, each
	// behind a fail-stop fault layer sharing one chooser budget of 1: at
	// every file-system operation the explorer branches on permanently
	// killing that replica, so every execution sees at most one replica
	// death at any possible step. Crashes model the whole site
	// rebooting; the recovery era revives and replaces any dead replica
	// before the library's Recover runs (which resilvers it). Mirror
	// scenarios run ghost-free — a mirrored Link is two machine steps,
	// which breaks the one-atomic-step linearization the ghost machinery
	// assumes — so refinement rests on the black-box history check, plus
	// a between-era availability invariant (redundancy restored after
	// recovery, replicas byte-identical, no leaked descriptors).
	// Exclusive with BufferedFS and FaultBudget.
	Mirror bool
	// NoSpaceGC runs the resource-exhaustion property scenario: the
	// store sits behind gfs.Faulty with the disk-full latch armed
	// (combine with FaultBudget 1 and FaultOps [FaultNoSpace]), so the
	// chooser may latch the store ENOSPC at any eligible write — every
	// subsequent write fails until a delete frees space. Deliveries run
	// history-free, tracking which were acknowledged, and after the
	// final recovery Post asserts the exhaustion contract: no acked
	// delivery is missing (ENOSPC may refuse work, never take back an
	// ack), no served bytes were never delivered, and writability
	// matches the latch — once recovery's orphan-spool GC (or a clean
	// abort's own spool delete) has freed space the store must accept
	// fresh mail, and while still full it must refuse cleanly with the
	// mailbox unchanged. Ghost-free: the property, not refinement, is
	// the claim. Exclusive with Mirror, Corrupt, BufferedFS, Writeback.
	NoSpaceGC bool
	// Corrupt arms the silent-corruption fault class: the store runs
	// behind gfs.Checksummed over a gfs.Faulty whose chooser-driven
	// policy may durably corrupt one file's bytes (bit flip or
	// truncation, enumerated as separate branches) at any file open,
	// budget one per execution. Without Mirror the scenario is ghost-
	// and history-free and checks the DETECTION property instead of
	// refinement — with no redundant copy, corruption may lose data,
	// but never silently: a pickup must never return bytes that were
	// never delivered, and an acknowledged delivery may only go missing
	// if the integrity layer detected rot. With Mirror, each replica
	// gets its own envelope and the full refinement + byte-identical
	// invariant stands: the mirror must heal rot from the peer, so
	// corruption is never visible at all. Exclusive with BufferedFS and
	// FaultBudget.
	Corrupt bool
}

// Scenario builds the checkable scenario for the chosen variant.
func Scenario(name string, v Variant, o ScenarioOptions) *explore.Scenario {
	ghost := v == VariantVerified && !o.Mirror && !o.Corrupt && !o.Writeback && !o.NoSpaceGC
	// The single-backend corruption scenario checks detection, not
	// refinement: it records no history (deliveries and pickups run
	// outside the harness) and asserts its property directly in Post.
	detectOnly := o.Corrupt && !o.Mirror
	// The resource-exhaustion scenario likewise checks a property (no
	// acked loss, GC reclaims, writability tracks the latch) in Post.
	nospaceOnly := o.NoSpaceGC
	// The prefix-contract scenario likewise checks a property, not
	// refinement: barrier-free delivery cannot refine the spec (acked
	// mail may be taken back), so the claim under check is the weaker
	// prefix-durability contract asserted in Post.
	prefixOnly := o.PrefixContract
	sp := Spec(o.Config)
	steps := 3000
	if o.Mirror {
		// Every operation runs twice (once per replica) and each
		// recovery resilvers the whole store.
		steps = 9000
	}
	if o.Corrupt {
		// Envelope verification re-reads whole files on every open, and
		// recovery adds a scrub pass over the store.
		steps *= 2
	}

	deliver := func(t *machine.T, w *World, h *explore.Harness, op OpDeliver) {
		if nospaceOnly {
			// History-free: the acked set is the property's ground truth,
			// exactly as in detection mode.
			var delivered bool
			switch v {
			case VariantDeliverAckOnNoSpace:
				delivered = w.MB.DeliverAckOnNoSpace(t, op.User, []byte(op.Msg))
			case VariantDeliverGreedySpoolGC:
				delivered = w.MB.DeliverGreedySpoolGC(t, op.User, []byte(op.Msg))
			default:
				delivered = w.MB.Deliver(t, nil, op.User, []byte(op.Msg))
			}
			if delivered {
				w.Acked[op.Msg] = true
			}
			return
		}
		if detectOnly {
			// No history: track the acknowledgement instead. An acked
			// payload is the detection property's obligation — it may
			// only go missing if the integrity layer said so.
			if w.MB.Deliver(t, nil, op.User, []byte(op.Msg)) {
				w.Acked[op.Msg] = true
			}
			return
		}
		h.Op(op, func() spec.Ret {
			switch v {
			case VariantDeliverDirect:
				w.MB.DeliverDirect(t, op.User, []byte(op.Msg))
				return true
			case VariantForgetSpoolDelete:
				w.MB.DeliverForgetSpoolDelete(t, op.User, []byte(op.Msg))
				return true
			case VariantReplaySpool:
				return w.MB.DeliverTinyAppends(t, op.User, []byte(op.Msg))
			case VariantAckBeforeSync:
				return w.MB.DeliverAckBeforeSync(t, op.User, []byte(op.Msg))
			default:
				var j *core.JTok
				if ghost {
					j = w.G.NewJTok(op)
				}
				delivered := w.MB.Deliver(t, j, op.User, []byte(op.Msg))
				if ghost {
					w.G.FinishOp(t, j, delivered)
				}
				return delivered
			}
		})
	}

	pickup := func(t *machine.T, w *World, h *explore.Harness, user uint64) []Message {
		op := OpPickup{User: user}
		ret := h.Op(op, func() spec.Ret {
			switch v {
			case VariantPickupNoAdvance:
				return w.MB.PickupNoAdvance(t, user)
			case VariantPickupLeaky:
				return w.MB.PickupLeaky(t, user)
			default:
				var j *core.JTok
				if ghost {
					j = w.G.NewJTok(op)
				}
				msgs := w.MB.Pickup(t, j, user)
				if ghost {
					w.G.FinishOp(t, j, msgs)
				}
				return msgs
			}
		})
		return ret.([]Message)
	}

	unlock := func(t *machine.T, w *World, h *explore.Harness, user uint64) {
		op := OpUnlock{User: user}
		h.Op(op, func() spec.Ret {
			var j *core.JTok
			if ghost {
				j = w.G.NewJTok(op)
			}
			w.MB.Unlock(t, j, user)
			if ghost {
				w.G.FinishOp(t, j, nil)
			}
			return nil
		})
	}

	pickupDeleteUnlock := func(t *machine.T, w *World, h *explore.Harness, user uint64) {
		msgs := pickup(t, w, h, user)
		if len(msgs) > 0 {
			op := OpDelete{User: user, ID: msgs[0].ID}
			h.Op(op, func() spec.Ret {
				if v == VariantRecoverTrustsCache {
					return w.MB.DeleteNoBarrier(t, user, msgs[0].ID)
				}
				var j *core.JTok
				if ghost {
					j = w.G.NewJTok(op)
				}
				removed := w.MB.Delete(t, j, user, msgs[0].ID)
				if ghost {
					w.G.FinishOp(t, j, removed)
				}
				return removed
			})
		}
		unlock(t, w, h, user)
	}

	s := &explore.Scenario{
		Name:        name,
		Spec:        sp,
		MachineOpts: machine.Options{MaxSteps: steps},
		MaxCrashes:  o.MaxCrashes,
		RandPolicy:  func(call, n int) int { return call % n },
		Setup: func(m *machine.Machine) any {
			w := &World{}
			if o.Mirror {
				dirs := Dirs(o.Config)
				metaDirs := append([]string{gfs.MirrorMetaDir}, dirs...)
				w.FS = gfs.NewModel(m, metaDirs)
				w.FS1 = gfs.NewModel(m, metaDirs)
				// One shared policy instance: its budget of 1 bounds the
				// execution to at most one fault (a replica death, or — in
				// corrupt mode — one silent corruption), whichever replica
				// and operation the chooser picks.
				pol := &gfs.ChooserPolicy{
					Budget:   1,
					Eligible: map[gfs.FaultOp]bool{gfs.FaultFailStop: true},
				}
				if o.Corrupt {
					pol.Eligible = map[gfs.FaultOp]bool{gfs.FaultCorrupt: true}
				}
				w.Pol = pol
				w.F[0] = gfs.NewFaulty(w.FS, pol)
				w.F[1] = gfs.NewFaulty(w.FS1, pol)
				r0, r1 := gfs.System(w.F[0]), gfs.System(w.F[1])
				if o.Corrupt {
					// One envelope per replica, UNDER the mirror: the
					// mirror can then tell "corrupt" from "absent" and heal
					// the rotten copy from its verified peer.
					w.Chks[0] = gfs.NewChecksummed(w.F[0], dirs)
					w.Chks[1] = gfs.NewChecksummed(w.F[1], dirs)
					r0, r1 = w.Chks[0], w.Chks[1]
				}
				w.Mirror = gfs.NewMirrored(r0, r1, dirs)
				if v == VariantResilverNoVerify {
					w.Mirror.ResilverNoVerify = true
				}
				w.Sys = w.Mirror
				return w
			}
			switch {
			case o.Writeback:
				w.FS = gfs.NewWritebackModel(m, Dirs(o.Config))
			case o.BufferedFS:
				w.FS = gfs.NewBufferedModel(m, Dirs(o.Config))
			default:
				w.FS = gfs.NewModel(m, Dirs(o.Config))
			}
			w.Sys = w.FS
			if o.Corrupt {
				pol := &gfs.ChooserPolicy{
					Budget:   1,
					Eligible: map[gfs.FaultOp]bool{gfs.FaultCorrupt: true},
				}
				w.Pol = pol
				w.F[0] = gfs.NewFaulty(w.FS, pol)
				w.Chk = gfs.NewChecksummed(w.F[0], Dirs(o.Config))
				w.Chk.TrustReads = v == VariantTrustReads
				w.Sys = w.Chk
				w.Acked = map[string]bool{}
				return w
			}
			if o.FaultBudget > 0 {
				pol := &gfs.ChooserPolicy{Budget: o.FaultBudget}
				if o.FaultOps != nil {
					pol.Eligible = map[gfs.FaultOp]bool{}
					for _, fo := range o.FaultOps {
						pol.Eligible[fo] = true
					}
				}
				w.Pol = pol
				w.F[0] = gfs.NewFaulty(w.FS, pol)
				w.Sys = w.F[0]
			}
			if o.NoSpaceGC {
				w.Acked = map[string]bool{}
			}
			if ghost {
				w.G = core.NewCtx(m)
				w.G.InitSim(sp, sp.Init())
			}
			return w
		},
		Init: func(t *machine.T, wAny any) {
			w := wAny.(*World)
			w.MB = Init(t, w.G, w.Sys, o.Config)
		},
		Main: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*World)
			if prefixOnly {
				// Sequential, history-free delivery: the prefix contract
				// is stated over the issue order, which only a single
				// delivering thread defines.
				for _, d := range o.Delivers {
					w.MB.Deliver(t, nil, d.User, []byte(d.Msg))
				}
				return
			}
			for _, d := range o.Delivers {
				op := d
				t.Go(func(c *machine.T) { deliver(c, w, h, op) })
			}
			for _, u := range o.PickupUsers {
				user := u
				t.Go(func(c *machine.T) { pickupDeleteUnlock(c, w, h, user) })
			}
		},
		Recover: func(t *machine.T, wAny any) {
			w := wAny.(*World)
			if w.Mirror != nil {
				// The crash models the whole site rebooting: the operator
				// swaps any fail-stopped replica for a replacement before
				// the server restarts. The replacement still holds the
				// replica's pre-death (stale) contents — Recover's
				// resilver is what makes it trustworthy again, and the
				// no-resilver variant is how its absence shows up.
				for i := range w.F {
					if w.F[i].FailStopped() {
						w.F[i].Revive()
						w.Mirror.ReplaceReplica(i)
					}
				}
			}
			switch {
			case v == VariantRecoverWipes:
				w.MB = RecoverWipesMailboxes(t, w.FS, o.Config)
			case v == VariantRecoverNoResilver:
				w.MB = RecoverSkipResilver(t, w.Sys, o.Config)
			case v == VariantReplaySpool:
				w.MB = RecoverReplaySpool(t, w.Sys, o.Config)
			default:
				w.MB = Recover(t, w.G, w.Sys, o.Config, w.MB)
			}
		},
		Post: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*World)
			if nospaceOnly {
				postNoSpace(t, w, o)
				return
			}
			if detectOnly {
				postDetect(t, w, o)
				return
			}
			if prefixOnly {
				postPrefix(t, w, o)
				return
			}
			if !o.PostPickups {
				return
			}
			for u := uint64(0); u < o.Config.Users; u++ {
				pickup(t, w, h, u)
				unlock(t, w, h, u)
			}
		},
	}

	// Crash-boundary dedup (DESIGN.md §5): the file-system models and
	// the ghost Ctx are fingerprintable devices, so the hook only has to
	// cover the crash-surviving state the world holds outside them — the
	// fault policy's spent budget, the per-replica fail-stop latches,
	// the mirror's control flags, and (in corruption mode) the envelope
	// layers' detection counters plus the set of acked payloads, both of
	// which the detection property reads after the crash. The BufferedFS
	// variant is covered too: the synced-prefix map is part of the
	// model's own encoding.
	s.Fingerprint = func(wAny any, b []byte) []byte {
		w := wAny.(*World)
		if w.Pol != nil {
			b = w.Pol.AppendState(b)
		}
		for i := range w.F {
			if w.F[i] != nil {
				b = w.F[i].AppendCheckerState(b)
			}
		}
		if w.Mirror != nil {
			b = w.Mirror.AppendMirrorState(b)
		}
		if w.Chk != nil {
			b = w.Chk.AppendIntegrityState(b)
		}
		for i := range w.Chks {
			if w.Chks[i] != nil {
				b = w.Chks[i].AppendIntegrityState(b)
			}
		}
		if w.Acked != nil {
			acked := make([]string, 0, len(w.Acked))
			for msg := range w.Acked {
				acked = append(acked, msg)
			}
			sort.Strings(acked)
			for _, msg := range acked {
				b = append(b, msg...)
				b = append(b, 0)
			}
		}
		return b
	}

	if detectOnly || prefixOnly || nospaceOnly {
		s.Invariant = func(m *machine.Machine, wAny any) error {
			w := wAny.(*World)
			if n := w.FS.OpenFDs(); n != 0 {
				return fmt.Errorf("resource leak: %d file descriptors still open", n)
			}
			return nil
		}
	}

	if ghost {
		s.Invariant = func(m *machine.Machine, wAny any) error {
			w := wAny.(*World)
			if w.G.CrashPending() {
				return fmt.Errorf("spec crash step still owed")
			}
			// Iron-style resource accounting (§9.5 found an fd leak that
			// Perennial's proofs could not): at era boundaries every
			// descriptor must be closed.
			if n := w.FS.OpenFDs(); n != 0 {
				return fmt.Errorf("resource leak: %d file descriptors still open", n)
			}
			// MsgsInv: each mailbox directory matches the source state.
			src := w.G.Source().(State)
			for u := uint64(0); u < o.Config.Users; u++ {
				onDisk := w.FS.PeekDir(UserDir(u))
				if len(onDisk) != len(src.Boxes[u]) {
					return fmt.Errorf("MsgsInv: user %d has %d files but source has %d messages",
						u, len(onDisk), len(src.Boxes[u]))
				}
				ids := make([]string, 0, len(onDisk))
				for id := range onDisk {
					ids = append(ids, id)
				}
				sort.Strings(ids)
				for _, id := range ids {
					want, ok := src.Boxes[u][id]
					if !ok {
						return fmt.Errorf("MsgsInv: user %d file %s not in source", u, id)
					}
					if !bytes.Equal(onDisk[id], []byte(want)) {
						return fmt.Errorf("MsgsInv: user %d message %s contents differ", u, id)
					}
				}
			}
			return nil
		}
	}

	if o.Mirror {
		s.Invariant = func(m *machine.Machine, wAny any) error {
			w := wAny.(*World)
			if n0, n1 := w.FS.OpenFDs(), w.FS1.OpenFDs(); n0 != 0 || n1 != 0 {
				return fmt.Errorf("resource leak: %d/%d descriptors open on replicas", n0, n1)
			}
			// While a replica is fail-stopped the mirror legitimately runs
			// degraded; redundancy is only owed once recovery has replaced
			// and resilvered it.
			for i := range w.F {
				if w.F[i].FailStopped() {
					return nil
				}
			}
			st := w.Mirror.Status()
			if st.Degraded || st.Resilvering {
				return fmt.Errorf("availability: mirror still degraded with both replicas live: %+v", st)
			}
			// Both replicas live and repaired: they must be byte-identical
			// (including the generation markers the resilver copies last).
			for _, dir := range append([]string{gfs.MirrorMetaDir}, Dirs(o.Config)...) {
				d0, d1 := w.FS.PeekDir(dir), w.FS1.PeekDir(dir)
				if len(d0) != len(d1) {
					return fmt.Errorf("replica divergence: dir %s has %d vs %d files", dir, len(d0), len(d1))
				}
				for name, c0 := range d0 {
					c1, ok := d1[name]
					if !ok {
						return fmt.Errorf("replica divergence: %s/%s missing on replica 1", dir, name)
					}
					if !bytes.Equal(c0, c1) {
						return fmt.Errorf("replica divergence: %s/%s contents differ", dir, name)
					}
				}
			}
			return nil
		}
	}
	return s
}

// postDetect is the Post hook for detection-mode scenarios (Corrupt
// without Mirror). With a single backend there is no redundant copy to
// heal from, so the property is weaker than refinement: corruption may
// destroy an acknowledged message, but it must never do so *silently*.
// Concretely, after the final recovery every byte sequence a pickup
// serves must be one the workload actually delivered (the envelope
// layer may fail a rotten read loudly, but must never pass mangled
// payload through), and any acknowledged message that has gone missing
// must be accounted for by the integrity layer's detection counter.
func postDetect(t *machine.T, w *World, o ScenarioOptions) {
	allowed := map[string]bool{}
	for _, d := range o.Delivers {
		allowed[d.Msg] = true
	}
	present := map[string]bool{}
	for u := uint64(0); u < o.Config.Users; u++ {
		msgs := w.MB.Pickup(t, nil, u)
		w.MB.Unlock(t, nil, u)
		for _, msg := range msgs {
			if !allowed[msg.Contents] {
				t.Failf("integrity: pickup served bytes never delivered: %q", msg.Contents)
			}
			present[msg.Contents] = true
		}
	}
	acked := make([]string, 0, len(w.Acked))
	for msg := range w.Acked {
		acked = append(acked, msg)
	}
	sort.Strings(acked)
	for _, msg := range acked {
		if !present[msg] && w.Chk.Detected() == 0 {
			t.Failf("silent loss: acked delivery %q missing with no integrity detection", msg)
		}
	}
}

// postNoSpace is the Post hook for resource-exhaustion scenarios
// (NoSpaceGC): the disk-full contract, audited after the final
// recovery. (1) No acked loss: every acknowledged delivery is still
// readable — ENOSPC may refuse work, but an ack, once given, is owed
// forever. (2) No fabrication: every byte sequence a pickup serves was
// actually delivered. (3) Writability tracks the latch: recovery's
// orphan-spool sweep is the store's garbage collector — each orphan it
// deletes returns space (clearing the latch on gfs.Faulty) — so once
// the latch has cleared a probe delivery must succeed, and while it
// still holds the probe must fail cleanly with nothing published.
func postNoSpace(t *machine.T, w *World, o ScenarioOptions) {
	allowed := map[string]bool{}
	for _, d := range o.Delivers {
		allowed[d.Msg] = true
	}
	present := map[string]bool{}
	for u := uint64(0); u < o.Config.Users; u++ {
		msgs := w.MB.Pickup(t, nil, u)
		w.MB.Unlock(t, nil, u)
		for _, msg := range msgs {
			if !allowed[msg.Contents] {
				t.Failf("nospace: pickup served bytes never delivered: %q", msg.Contents)
			}
			present[msg.Contents] = true
		}
	}
	acked := make([]string, 0, len(w.Acked))
	for msg := range w.Acked {
		acked = append(acked, msg)
	}
	sort.Strings(acked)
	for _, msg := range acked {
		if !present[msg] {
			t.Failf("acked loss: delivery %q acknowledged but missing after disk-full", msg)
		}
	}
	// The probe: latched before the probe means it must fail (nothing
	// published); a failed probe with the latch clear — both before and
	// after, since the chooser may spend a leftover budget on the probe
	// itself — means the store wrongly refused writable space.
	latched := w.F[0].NoSpace()
	ok := w.MB.Deliver(t, nil, 0, []byte("probe"))
	if latched && ok {
		t.Failf("nospace: store accepted a delivery while the disk-full latch holds")
	}
	if !ok && !latched && !w.F[0].NoSpace() {
		t.Failf("nospace: store refused a delivery with space free")
	}
	if !ok {
		msgs := w.MB.Pickup(t, nil, 0)
		w.MB.Unlock(t, nil, 0)
		for _, m := range msgs {
			if m.Contents == "probe" {
				t.Failf("nospace: refused probe delivery appeared in the mailbox anyway")
			}
		}
	}
}

// postPrefix is the Post hook for prefix-contract scenarios (Writeback
// with PrefixContract): the honest contract of barrier-free delivery.
// A crash may take back the newest deliveries — even acknowledged ones
// — because nothing was synced, and a surviving directory entry may
// hold a torn (empty) body when the link outlived its un-synced data.
// What the store must never do is reorder or fabricate: the surviving
// messages must be a no-holes prefix of the issue order, where a hole
// below the newest survivor is only acceptable if a torn-empty
// survivor can account for it (its body, not its entry, was lost).
// Messages are sized at one append, so a torn body is exactly empty.
func postPrefix(t *machine.T, w *World, o ScenarioOptions) {
	index := map[string]int{}
	for i, d := range o.Delivers {
		index[d.Msg] = i
	}
	empties := 0
	seen := map[int]bool{}
	maxIdx := -1
	for u := uint64(0); u < o.Config.Users; u++ {
		msgs := w.MB.Pickup(t, nil, u)
		w.MB.Unlock(t, nil, u)
		for _, m := range msgs {
			if m.Contents == "" {
				empties++
				continue
			}
			i, ok := index[m.Contents]
			if !ok {
				t.Failf("prefix contract: pickup served bytes never delivered: %q", m.Contents)
			}
			if seen[i] {
				t.Failf("prefix contract: message %q delivered once but present twice", m.Contents)
			}
			seen[i] = true
			if i > maxIdx {
				maxIdx = i
			}
		}
	}
	holes := 0
	for i := 0; i < maxIdx; i++ {
		if !seen[i] {
			holes++
		}
	}
	if holes > empties {
		t.Failf("prefix contract: %d holes below surviving index %d with only %d torn survivors to account for them",
			holes, maxIdx, empties)
	}
}
