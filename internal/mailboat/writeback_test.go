package mailboat

import (
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/gfs"
)

// These tests exercise the writeback crash model: directory operations
// (creates, links, deletes) are volatile until SyncDir, and a crash
// keeps only an enumerated prefix of each directory's un-synced
// operation log. Deliver must therefore fsync the spooled data AND
// SyncDir the mailbox before acking — the checker proves the
// disciplined implementation correct and convicts both missing-sync
// mutations with minimized, replayable counterexamples.

func TestWritebackDisciplinedIsClean(t *testing.T) {
	s := Scenario("mb-writeback-disciplined", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2, SyncOnDeliver: true, SyncDirs: true},
		Delivers:    []OpDeliver{{User: 0, Msg: "durable"}},
		MaxCrashes:  1,
		PostPickups: true,
		Writeback:   true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 50000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation with full sync discipline:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
}

// TestWritebackSyncDirsAloneIsNotEnough: barriering the directory
// without fsyncing the file data still loses mail — SyncDir makes the
// LINK durable, but the bytes behind it can be torn away, so the
// post-crash pickup sees contents the spec never allowed. The two sync
// disciplines are independent obligations.
func TestWritebackSyncDirsAloneIsNotEnough(t *testing.T) {
	s := Scenario("mb-writeback-dirs-only", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2, SyncDirs: true},
		Delivers:    []OpDeliver{{User: 0, Msg: "needs fsync too"}},
		MaxCrashes:  1,
		PostPickups: true,
		Writeback:   true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 50000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("missing file fsync not caught under writeback")
	}
}

// convictAndMinimize requires the scenario to produce a counterexample
// whose choice script replays, minimizes, and still replays.
func convictAndMinimize(t *testing.T, s *explore.Scenario, what string) {
	t.Helper()
	rep := explore.Run(s, explore.Options{MaxExecutions: 20000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatalf("%s not caught", what)
	}
	t.Logf("counterexample:\n%s", rep.Counterexample.Format())
	if explore.ReplayCx(s, rep.Counterexample.Choices) == nil {
		t.Fatal("counterexample did not replay")
	}
	short := explore.Minimize(s, rep.Counterexample.Choices)
	if len(short) > len(rep.Counterexample.Choices) {
		t.Fatalf("minimize grew the schedule: %d -> %d",
			len(rep.Counterexample.Choices), len(short))
	}
	if explore.ReplayCx(s, short) == nil {
		t.Fatal("minimized counterexample did not replay")
	}
}

// TestBugAckBeforeSyncCaught seeds the ack-before-sync mutation: the
// deliver fsyncs the spool data but acks on link success without a
// SyncDir barrier, so a crash can drop the un-synced directory entry
// of an ACKED message. Two concurrent delivers matter: a crash is only
// injectable while some thread still runs, so the second delivery is
// what lets the first one be acked before the crash (a pending
// delivery rolling back is spec-ambiguous and convicts nothing).
func TestBugAckBeforeSyncCaught(t *testing.T) {
	s := Scenario("mb-ack-before-sync", VariantAckBeforeSync, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2, SyncOnDeliver: true, SyncDirs: true},
		Delivers:    []OpDeliver{{User: 0, Msg: "acked"}, {User: 0, Msg: "racer"}},
		MaxCrashes:  1,
		PostPickups: true,
		Writeback:   true,
	})
	convictAndMinimize(t, s, "ack-before-sync")
}

// TestBugRecoverTrustsCacheCaught seeds the recover-trusts-cache
// mutation: Delete acks the unlink with no directory barrier, the
// crash rolls the directory back and resurrects the entry, and
// recovery trusts whatever entries survived — the post pickup then
// returns a message the spec already deleted.
func TestBugRecoverTrustsCacheCaught(t *testing.T) {
	s := Scenario("mb-recover-trusts-cache", VariantRecoverTrustsCache, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2, SyncOnDeliver: true, SyncDirs: true},
		Delivers:    []OpDeliver{{User: 0, Msg: "doomed"}},
		PickupUsers: []uint64{0},
		MaxCrashes:  1,
		PostPickups: true,
		Writeback:   true,
	})
	convictAndMinimize(t, s, "recover-trusts-cache")
}

// TestWritebackPrefixContractClean checks the honest contract of the
// barrier-free fast mode (mailboatd -no-fsync): no refinement claim —
// acked mail may roll back — but the surviving mailbox must be a
// no-holes prefix of the delivery order. The search is exhaustive at
// this size.
func TestWritebackPrefixContractClean(t *testing.T) {
	s := Scenario("mb-writeback-prefix", VariantVerified, ScenarioOptions{
		Config:         Config{Users: 1, RandBound: 4},
		Delivers:       []OpDeliver{{User: 0, Msg: "first"}, {User: 0, Msg: "second"}, {User: 0, Msg: "third"}},
		MaxCrashes:     1,
		Writeback:      true,
		PrefixContract: true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 50000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("prefix-durability violation:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
}

// TestWritebackFaultSyncFailedBarrierIsRetried interleaves transient
// FaultSync injection with the writeback crash axis: a failed Sync or
// SyncDir must not count as a durability barrier. The disciplined
// implementation abandons the spool file on a failed Sync (fsyncgate)
// and retries a failed SyncDir, so the refinement must still hold.
func TestWritebackFaultSyncFailedBarrierIsRetried(t *testing.T) {
	s := Scenario("mb-writeback-faultsync", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2, SyncOnDeliver: true, SyncDirs: true},
		Delivers:    []OpDeliver{{User: 0, Msg: "barrier"}},
		MaxCrashes:  1,
		PostPickups: true,
		Writeback:   true,
		FaultBudget: 1,
		FaultOps:    []gfs.FaultOp{gfs.FaultSync},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 50000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation under FaultSync × writeback:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
}

// TestWritebackSelfCheckDedup runs the dedup soundness self-check on a
// writeback scenario: the model's fingerprint encoding now covers the
// durable directory views and pending operation logs, and the check
// requires dedup to activate, agree with the dedup-less search, and
// keep counterexamples replayable.
func TestWritebackSelfCheckDedup(t *testing.T) {
	s := Scenario("mb-writeback-selfcheck", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2, SyncOnDeliver: true, SyncDirs: true},
		Delivers:    []OpDeliver{{User: 0, Msg: "durable"}},
		PickupUsers: []uint64{0},
		MaxCrashes:  1,
		PostPickups: true,
		Writeback:   true,
	})
	opts := explore.Options{MaxExecutions: 20000}
	if testing.Short() {
		opts.MaxExecutions = 2000
	}
	with, without, err := explore.SelfCheckDedup(s, opts)
	if err != nil {
		t.Fatalf("self-check failed: %v", err)
	}
	t.Logf("without dedup: %s", without)
	t.Logf("with dedup:    %s (%d boundaries, %d pruned)",
		with, with.Stats.DistinctBoundaries, with.Stats.PrunedStates)
	if !with.Stats.DedupActive {
		t.Fatal("dedup did not activate on the writeback scenario")
	}
}

// TestWritebackScenarioIsGhostFree pins the scenario-construction rule:
// the ghost machinery commits the spec step atomically at the link,
// which a writeback crash can roll back, so writeback scenarios must
// run ghost-free and rest on the black-box history check.
func TestWritebackScenarioIsGhostFree(t *testing.T) {
	s := Scenario("mb-writeback-ghostfree", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2, SyncOnDeliver: true, SyncDirs: true},
		Delivers:    []OpDeliver{{User: 0, Msg: "m"}},
		MaxCrashes:  1,
		PostPickups: true,
		Writeback:   true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 200})
	if !rep.OK() && strings.Contains(rep.Counterexample.Reason, "ghost") {
		t.Fatalf("writeback scenario ran with ghost machinery:\n%s", rep.Counterexample.Reason)
	}
}
