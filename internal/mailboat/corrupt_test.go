package mailboat

import (
	"testing"

	"repro/internal/explore"
)

// These tests check the mail server against the silent-corruption fault
// class (gfs.FaultCorrupt): the explorer may durably mutate one file's
// bytes — a bit flip or a truncation, enumerated as separate branches —
// at any file open. On a single backend the property is detection
// (corruption may lose data, never silently); on the mirrored store the
// property is full refinement (the mirror must heal rot from the peer,
// so corruption is never visible at all).

// TestCorruptDetectionExhaustive runs the verified server over the
// checksum envelope with the corruption budget armed. The message is
// long enough that a bit flip in the middle of the stored file lands in
// the data payload — the worst case for a trusting reader, because the
// mangled bytes still parse as a message.
func TestCorruptDetectionExhaustive(t *testing.T) {
	s := Scenario("mb-corrupt-detect", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: "the quick brown fox."}},
		MaxCrashes:  1,
		PostPickups: true,
		Corrupt:     true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 20000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation under corruption:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
	if rep.CrashedExecutions == 0 {
		t.Error("no crash explored")
	}
}

// TestCorruptMirrorHealsExhaustive is the headline integrity check:
// corruption of either replica at any open, plus a crash, and the full
// refinement property stands — reads heal from the peer, recovery
// scrubs and resilvers, and the between-era invariant demands
// byte-identical replicas. Rot must never surface at all.
func TestCorruptMirrorHealsExhaustive(t *testing.T) {
	s := Scenario("mb-mirror-corrupt", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: "m"}},
		MaxCrashes:  1,
		PostPickups: true,
		Mirror:      true,
		Corrupt:     true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 20000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation under mirrored corruption:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
	if rep.CrashedExecutions == 0 {
		t.Error("no crash explored")
	}
}

// TestCorruptMirrorTwoDeliversClean runs the verified server on the
// exact workload that convicts the no-verify-resilver mutation below —
// two concurrent delivers, so one can be ACKED before the crash and the
// resilver must then preserve it through a corruption strike. The space
// is too large to exhaust (>3M executions), so this is a budget-bounded
// clean check: same budget that finds the seeded bug in 21 executions.
func TestCorruptMirrorTwoDeliversClean(t *testing.T) {
	s := Scenario("mb-mirror-corrupt-2d", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 3},
		Delivers:    []OpDeliver{{User: 0, Msg: "a"}, {User: 0, Msg: "b"}},
		MaxCrashes:  1,
		PostPickups: true,
		Mirror:      true,
		Corrupt:     true,
	})
	budget := 20000
	if testing.Short() {
		budget = 5000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation under mirrored corruption:\n%s", rep.Counterexample.Format())
	}
}

// TestDedupSelfCheckCorrupt runs the dedup soundness self-check on the
// detection scenario: the fingerprint must cover the envelope layer's
// detection counter and the acked-payload set, or pruning would merge
// states the Post property distinguishes.
func TestDedupSelfCheckCorrupt(t *testing.T) {
	s := Scenario("mb-corrupt-selfcheck", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: "the quick brown fox."}},
		MaxCrashes:  1,
		PostPickups: true,
		Corrupt:     true,
	})
	opts := explore.Options{MaxExecutions: 20000}
	if testing.Short() {
		opts.MaxExecutions = 2000
	}
	with, without, err := explore.SelfCheckDedup(s, opts)
	if err != nil {
		t.Fatalf("self-check failed: %v", err)
	}
	t.Logf("without dedup: %s", without)
	t.Logf("with dedup:    %s (%d boundaries, %d pruned)",
		with, with.Stats.DistinctBoundaries, with.Stats.PrunedStates)
}

// TestBugTrustReadsCaught seeds the trusting-reader mutation: the
// envelope layer decodes without verifying checksums. A bit flip in the
// data payload then sails through to a pickup as bytes nobody ever sent
// — the detection property's garbage check — and a flip that breaks
// framing loses the message with the detection counter still at zero.
func TestBugTrustReadsCaught(t *testing.T) {
	s := Scenario("mb-trust-reads", VariantTrustReads, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: "the quick brown fox."}},
		MaxCrashes:  1,
		PostPickups: true,
		Corrupt:     true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 20000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("trusting reads not caught")
	}
	t.Logf("counterexample:\n%s", rep.Counterexample.Format())
	if explore.ReplayCx(s, rep.Counterexample.Choices) == nil {
		t.Fatal("counterexample did not replay")
	}
	short := explore.Minimize(s, rep.Counterexample.Choices)
	if len(short) > len(rep.Counterexample.Choices) {
		t.Fatalf("minimize grew the schedule: %d -> %d",
			len(rep.Counterexample.Choices), len(short))
	}
	if explore.ReplayCx(s, short) == nil {
		t.Fatal("minimized counterexample did not replay")
	}
}

// TestBugResilverNoVerifyCaught seeds the no-verify-resilver mutation:
// the resilver copies source bytes without checking their envelope, so
// rot injected at the resilver's own read of the source is replicated
// onto the peer — both copies now rotten, the acked message unreadable
// everywhere, a refinement violation at the post pickup. Two concurrent
// delivers matter: a crash is only injectable while some thread still
// runs, so the second delivery is what lets the first one be *acked*
// before the crash (a pending delivery's loss is spec-ambiguous and
// would mask the bug).
func TestBugResilverNoVerifyCaught(t *testing.T) {
	s := Scenario("mb-no-verify-resilver", VariantResilverNoVerify, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 3},
		Delivers:    []OpDeliver{{User: 0, Msg: "a"}, {User: 0, Msg: "b"}},
		MaxCrashes:  1,
		PostPickups: true,
		Mirror:      true,
		Corrupt:     true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 20000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("unverified resilver not caught")
	}
	t.Logf("counterexample:\n%s", rep.Counterexample.Format())
	if explore.ReplayCx(s, rep.Counterexample.Choices) == nil {
		t.Fatal("counterexample did not replay")
	}
	short := explore.Minimize(s, rep.Counterexample.Choices)
	if len(short) > len(rep.Counterexample.Choices) {
		t.Fatalf("minimize grew the schedule: %d -> %d",
			len(rep.Counterexample.Choices), len(short))
	}
	if explore.ReplayCx(s, short) == nil {
		t.Fatal("minimized counterexample did not replay")
	}
}

// TestBugReplaySpoolTornCaught seeds the torn-append bug pair: a
// delivery that spools one byte per append (synced before the link, so
// published messages are fine) and a recovery that replays leftover
// spool files into the mailbox. Only a TORN crash tail exposes it — a
// partial prefix of the one-byte appends is not a message anyone sent,
// yet the replay publishes it. Losing the whole tail leaves an empty
// spool file (swept), and keeping all of it replays a complete message
// (benign), so the bug is invisible without the buffered model's
// torn-append enumeration.
func TestBugReplaySpoolTornCaught(t *testing.T) {
	s := Scenario("mb-replay-spool", VariantReplaySpool, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2, SyncOnDeliver: true},
		Delivers:    []OpDeliver{{User: 0, Msg: "ab"}},
		MaxCrashes:  1,
		PostPickups: true,
		BufferedFS:  true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 20000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("torn spool replay not caught")
	}
	t.Logf("counterexample:\n%s", rep.Counterexample.Format())
	if explore.ReplayCx(s, rep.Counterexample.Choices) == nil {
		t.Fatal("counterexample did not replay")
	}
	short := explore.Minimize(s, rep.Counterexample.Choices)
	if len(short) > len(rep.Counterexample.Choices) {
		t.Fatalf("minimize grew the schedule: %d -> %d",
			len(rep.Counterexample.Choices), len(short))
	}
	if explore.ReplayCx(s, short) == nil {
		t.Fatal("minimized counterexample did not replay")
	}
}
