package mailboat

import "repro/internal/gfs"

// This file is the replication surface of the library: entry points
// that store and remove messages under CALLER-CHOSEN mailbox names.
// Deliver picks a fresh random name at the linearization point, which
// is right for a single node but useless for a replica pair — both
// nodes must hold the same message under the same name for the stores
// to be byte-identical and for replayed/duplicated replication frames
// to be recognizable as such. repl's primary picks the name once, and
// both the primary's local apply and the backup's replicated apply go
// through DeliverAs, which is idempotent on (name, contents).
//
// These entry points are ghost-free by design: the replicated checker
// scenarios check black-box refinement through the Pair, so no proof
// annotations run here (they would need a ghost context per node and a
// distributed crash invariant — Grove's subject matter, not §8's).

// ApplyStatus reports the outcome of a named apply (DeliverAs or
// DeleteAs).
type ApplyStatus int

const (
	// Applied: the operation took effect now.
	Applied ApplyStatus = iota
	// AlreadyApplied: the store was already in the requested state —
	// for DeliverAs the name exists with identical contents, for
	// DeleteAs the name is already absent. The idempotent-duplicate
	// outcome replication retries rely on.
	AlreadyApplied
	// NameTaken: the name exists with DIFFERENT contents; the caller
	// must pick another name. Never returned by DeleteAs.
	NameTaken
	// ApplyFailed: the store transiently refused; nothing changed (for
	// DeliverAs the mailbox is untouched — spool debris is invisible at
	// the spec level and swept by Recover).
	ApplyFailed
)

// String names the status.
func (s ApplyStatus) String() string {
	switch s {
	case Applied:
		return "applied"
	case AlreadyApplied:
		return "already-applied"
	case NameTaken:
		return "name-taken"
	case ApplyFailed:
		return "apply-failed"
	}
	return "ApplyStatus(?)"
}

// Users returns the configured mailbox count — the replication layer
// walks every box during a catch-up resync.
func (mb *Mailboat) Users() uint64 { return mb.cfg.Users }

// RandBound returns the name-allocation domain, so the replication
// layer draws candidate names from the same space Deliver would.
func (mb *Mailboat) RandBound() uint64 { return mb.cfg.RandBound }

// readMsgFile reads user's message name in full; ok is false when the
// name cannot be opened (absent — or every store op failing, which the
// caller's next write will discover anyway). Short reads are retried
// from the advanced offset exactly as in Pickup.
func (mb *Mailboat) readMsgFile(t gfs.T, user uint64, name string) (contents []byte, ok bool) {
	fd, ok := mb.sys.Open(t, UserDir(user), name)
	if !ok {
		return nil, false
	}
	for off := uint64(0); ; {
		chunk := mb.sys.ReadAt(t, fd, off, gfs.ReadChunk)
		if len(chunk) == 0 {
			break
		}
		contents = append(contents, chunk...)
		off += uint64(len(chunk))
	}
	mb.sys.Close(t, fd)
	return contents, true
}

// ReadMessage reads user's message name in full; ok is false when the
// name is absent (or unreadable). The replication layer pre-checks
// candidate names with it before committing a fresh delivery to one.
func (mb *Mailboat) ReadMessage(t gfs.T, user uint64, name string) ([]byte, bool) {
	mb.checkUser(t, user)
	return mb.readMsgFile(t, user, name)
}

// DeliverAs stores msg in user's mailbox under exactly the given name:
// spool write, then an atomic link claiming name. One attempt — the
// retry policy belongs to the replication layer, which knows whether a
// failure is worth a backoff, a peer consultation, or giving up.
func (mb *Mailboat) DeliverAs(t gfs.T, user uint64, name string, msg []byte) ApplyStatus {
	mb.checkUser(t, user)
	if mb.storeDead() {
		// A dead store must not classify anything: its unreadable
		// entries would be mistaken for absent ones.
		return ApplyFailed
	}
	if existing, ok := mb.readMsgFile(t, user, name); ok {
		if string(existing) == string(msg) {
			return AlreadyApplied
		}
		return NameTaken
	}
	sname, ok := mb.spoolWrite(t, msg)
	if !ok {
		return ApplyFailed
	}
	if mb.sys.Link(t, SpoolDir, sname, UserDir(user), name) {
		if mb.cfg.SyncDirs && !mb.syncDirBarrier(t, UserDir(user)) {
			// Linked but the store died before the durability barrier:
			// not applied. The retry (after failover or revival) resolves
			// idempotently.
			mb.sys.Delete(t, SpoolDir, sname)
			return ApplyFailed
		}
		mb.sys.Delete(t, SpoolDir, sname)
		return Applied
	}
	mb.sys.Delete(t, SpoolDir, sname)
	// The link was refused: either the name appeared concurrently or
	// the store faulted. Re-check so a lost race is classified as the
	// duplicate/conflict it is rather than a transient failure.
	if existing, ok := mb.readMsgFile(t, user, name); ok {
		if string(existing) == string(msg) {
			return AlreadyApplied
		}
		return NameTaken
	}
	return ApplyFailed
}

// DeleteAs removes user's message name without taking the per-user
// lock — the replication layer serializes its own applies, and client
// deletes reach it only while the session's pickup lock is held at the
// Pair level. Absent names report AlreadyApplied (the idempotent
// outcome a retried or duplicated delete frame needs); NameTaken is
// never returned.
func (mb *Mailboat) DeleteAs(t gfs.T, user uint64, name string) ApplyStatus {
	mb.checkUser(t, user)
	if mb.storeDead() {
		// Unreadable must not be reported as absent/AlreadyApplied.
		return ApplyFailed
	}
	if _, ok := mb.readMsgFile(t, user, name); !ok {
		return AlreadyApplied
	}
	if !mb.sys.Delete(t, UserDir(user), name) {
		return ApplyFailed
	}
	if mb.cfg.SyncDirs && !mb.syncDirBarrier(t, UserDir(user)) {
		return ApplyFailed
	}
	return Applied
}

// ReadBox reads user's entire mailbox without taking the per-user lock
// — the resync source read. The caller (repl's primary, holding its
// replication lock during a catch-up resync) is responsible for
// keeping concurrent mutation out, or for tolerating a torn snapshot
// (a delivery published during the walk simply replicates normally
// afterwards, under the post-resync epoch).
func (mb *Mailboat) ReadBox(t gfs.T, user uint64) []Message {
	mb.checkUser(t, user)
	names := mb.sys.List(t, UserDir(user))
	msgs := make([]Message, 0, len(names))
	for _, name := range names {
		contents, ok := mb.readMsgFile(t, user, name)
		if !ok {
			continue
		}
		msgs = append(msgs, Message{ID: name, Contents: string(contents)})
	}
	return msgs
}

// WipeBox deletes every message in user's mailbox — the destination
// half of a catch-up resync, clearing the stale replica before the
// authoritative copy streams in. Reports whether every entry went; a
// false return aborts the resync (the replica stays stale and the pair
// degraded, which is honest — a half-wiped box must not be declared
// synced).
func (mb *Mailboat) WipeBox(t gfs.T, user uint64) bool {
	mb.checkUser(t, user)
	ok := true
	for _, name := range mb.sys.List(t, UserDir(user)) {
		if !mb.sys.Delete(t, UserDir(user), name) {
			ok = false
		}
	}
	if ok && mb.cfg.SyncDirs {
		ok = mb.syncDirBarrier(t, UserDir(user))
	}
	return ok
}
