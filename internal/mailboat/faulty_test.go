package mailboat

import (
	"testing"

	"repro/internal/explore"
	"repro/internal/gfs"
	"repro/internal/machine"
)

// These tests check the Mailboat spec under *transient-fault*
// interleavings: the model's file system is wrapped in gfs.Faulty with
// a chooser-driven policy, so the explorer enumerates injected
// create/append/sync/link/delete failures (and short reads) exactly
// like it enumerates schedules and crash points. Deliver's bounded
// retry must either commit the message (ret true) or report a
// transient failure with the mailbox untouched (ret false) — silent
// drops, lost acks, and corrupted pickups all fail refinement.

func TestVerifiedDeliverUnderInjectedFaults(t *testing.T) {
	s := Scenario("mb-faults", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: "m"}},
		PostPickups: true,
		FaultBudget: 2,
		FaultOps: []gfs.FaultOp{
			gfs.FaultCreate, gfs.FaultAppend, gfs.FaultLink, gfs.FaultDelete,
		},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 200000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation under injected faults:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
}

// TestVerifiedFaultsAndCrashCombined is the headline robustness check:
// crash points AND transient faults enumerated together, with recovery
// after every crash, must still refine the spec.
func TestVerifiedFaultsAndCrashCombined(t *testing.T) {
	s := Scenario("mb-faults+crash", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 3},
		Delivers:    []OpDeliver{{User: 0, Msg: "a"}, {User: 0, Msg: "b"}},
		MaxCrashes:  1,
		PostPickups: true,
		FaultBudget: 1,
		FaultOps: []gfs.FaultOp{
			gfs.FaultCreate, gfs.FaultAppend, gfs.FaultLink, gfs.FaultDelete,
		},
	})
	budget := 60000
	if testing.Short() {
		budget = 10000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation under faults+crashes:\n%s", rep.Counterexample.Format())
	}
	if rep.CrashedExecutions == 0 {
		t.Fatal("no crash explored")
	}
}

// TestVerifiedShortReadsDoNotCorruptPickup checks the short-read
// hardening: Pickup advances by the bytes actually returned, so a
// faulted (truncated) ReadAt can never truncate a picked-up message.
func TestVerifiedShortReadsDoNotCorruptPickup(t *testing.T) {
	s := Scenario("mb-short-reads", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: "a message long enough to split"}},
		PickupUsers: []uint64{0},
		PostPickups: true,
		FaultBudget: 2,
		FaultOps:    []gfs.FaultOp{gfs.FaultReadShort},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 200000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("short reads corrupted a pickup:\n%s", rep.Counterexample.Format())
	}
}

// TestVerifiedSyncFaultOnBufferedFS combines the deferred-durability
// model with injected fsync failures: Deliver must abandon the spool
// file on a failed sync (fsyncgate) and still never publish a message
// that a crash can truncate.
func TestVerifiedSyncFaultOnBufferedFS(t *testing.T) {
	s := Scenario("mb-sync-fault", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2, SyncOnDeliver: true},
		Delivers:    []OpDeliver{{User: 0, Msg: "fsynced"}},
		MaxCrashes:  1,
		PostPickups: true,
		BufferedFS:  true,
		FaultBudget: 1,
		FaultOps:    []gfs.FaultOp{gfs.FaultSync},
	})
	budget := 400000
	if testing.Short() {
		budget = 50000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation with faulted fsync on buffered fs:\n%s", rep.Counterexample.Format())
	}
}

// TestDeliverRetriesExhaustedReportsFailure drives Deliver directly
// against an always-failing append layer: every attempt must clean up
// its spool file, and the final result must be a reported transient
// failure with an untouched mailbox and no leaked descriptors.
func TestDeliverRetriesExhaustedReportsFailure(t *testing.T) {
	m := machine.New(machine.Options{})
	c := Config{Users: 1, RandBound: 4, DeliverRetries: 2}
	fs := gfs.NewModel(m, Dirs(c))
	faulty := gfs.NewFaulty(fs, gfs.AlwaysPolicy{Ops: map[gfs.FaultOp]bool{gfs.FaultAppend: true}})
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		mb := Init(mt, nil, faulty, c)
		if mb.Deliver(mt, nil, 0, []byte("mail")) {
			mt.Failf("delivery reported success under always-failing appends")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if n := len(fs.PeekDir(SpoolDir)); n != 0 {
		t.Fatalf("failed delivery leaked %d spool files", n)
	}
	if n := len(fs.PeekDir(UserDir(0))); n != 0 {
		t.Fatalf("failed delivery published %d messages", n)
	}
	if n := fs.OpenFDs(); n != 0 {
		t.Fatalf("failed delivery leaked %d fds", n)
	}
	_, faults := faulty.Counters()
	if faults[gfs.FaultAppend] != 2 {
		t.Fatalf("expected 2 injected append faults (one per attempt), got %d", faults[gfs.FaultAppend])
	}
}

// TestDeliverRecoversFromSingleFault seeds exactly one append fault:
// the retry must commit the message on its second attempt.
func TestDeliverRecoversFromSingleFault(t *testing.T) {
	m := machine.New(machine.Options{})
	c := Config{Users: 1, RandBound: 8}
	fs := gfs.NewModel(m, Dirs(c))
	pol := &gfs.SeededPolicy{Seed: 1, MaxFaults: 1}
	pol.Rates[gfs.FaultAppend] = 1 // every append faults, but MaxFaults caps at one
	faulty := gfs.NewFaulty(fs, pol)
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		mb := Init(mt, nil, faulty, c)
		if !mb.Deliver(mt, nil, 0, []byte("mail")) {
			mt.Failf("delivery failed despite retry budget")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if n := len(fs.PeekDir(UserDir(0))); n != 1 {
		t.Fatalf("expected 1 delivered message, got %d", n)
	}
	if n := len(fs.PeekDir(SpoolDir)); n != 0 {
		t.Fatalf("delivery left %d spool files", n)
	}
}
