// Package mailboat is the paper's §8 mail server: a Maildir-style
// library supporting concurrent pickup/delete by users and lock-free
// concurrent delivery, with crash safety. Messages are spooled into a
// separate directory and atomically linked into the user's mailbox
// (the shadow-copy pattern applied to files); recovery deletes leftover
// spool files.
//
// The library is written against gfs.System, so the same code runs on
// the modeled file system under the model checker (the analog of
// Goose's Coq model) and on the real file system under the SMTP/POP3
// server and the Figure 11 benchmark (the analog of compiling Goose
// with the Go toolchain).
//
// Concurrency control matches §8.2:
//
//   - Pickup/Delete: a per-user lock, acquired by Pickup and released by
//     Unlock, prevents deletes from racing with mailbox reads.
//   - Pickup/Deliver: delivery never takes locks; it writes to the spool
//     and publishes with an atomic link, so readers only ever see
//     complete messages.
//   - Deliver/Deliver: concurrent deliveries pick random file names and
//     retry on collision.
package mailboat

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gfs"
	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/trace"
)

// SpoolDir is the spool directory name.
const SpoolDir = "spool"

// Message is one stored message, as in Figure 10.
type Message struct {
	ID       string
	Contents string
}

// Config sizes the mail store.
type Config struct {
	// Users is the number of user mailboxes (user IDs 0..Users-1).
	Users uint64
	// RandBound is the name-allocation domain for spool and mailbox file
	// names. Production uses a large bound (collisions are rare); model
	// checking uses a small one so the specification stays enumerable.
	RandBound uint64
	// SyncOnDeliver makes Deliver fsync the spooled message before
	// linking it into the mailbox. On the strict (process-crash) model
	// this is unnecessary — the paper's setting — but on a buffered
	// file system (gfs.NewBufferedModel, deferred durability) it is
	// required for crash safety: without it, a crash after the link can
	// leave a truncated message in the mailbox.
	SyncOnDeliver bool
	// SyncDirs makes Deliver and Delete issue a directory durability
	// barrier (gfs.SyncDir on the user's mailbox directory) before
	// acking. On the strict and buffered models directory operations
	// are durable immediately and the barrier is a no-op; on a
	// writeback file system (gfs.NewWritebackModel, or a real disk
	// whose directory updates sit in the page cache) it is required for
	// crash safety: without it an acked delivery's link may be lost at
	// a crash, and an acked delete's unlink may be undone — the entry
	// resurrects and recovery, trusting the surviving directory,
	// serves a message the user already deleted. Pair with
	// SyncOnDeliver, which covers the message bytes; SyncDirs covers
	// the directory entry.
	SyncDirs bool
	// DeliverRetries bounds how many times Deliver restarts the whole
	// spool-write-link protocol after a transient store failure (a
	// failed append or sync, or name allocation running dry). 0 means
	// the default of 3 attempts. After the last attempt Deliver gives
	// up and reports a transient failure — never a silent drop.
	DeliverRetries int
	// DeliverBackoff is the base delay between Deliver's retry
	// attempts, doubled per attempt. It only applies on real (native)
	// threads; modeled threads never sleep — the model checker owns
	// time there. 0 disables backoff.
	DeliverBackoff time.Duration
	// QuotaBytes, when nonzero, bounds each user's mailbox to that many
	// message bytes. A delivery that would exceed the quota is refused
	// up front as a clean spec-level transient failure (the mailbox is
	// untouched and the sender hears a temp-failure code) — one tenant
	// cannot fill the disk out from under the rest. Usage is derived
	// from the store at Init/Recover and tracked per delivery/delete;
	// 0 disables quotas entirely (no tracking, no extra I/O).
	QuotaBytes uint64
	// Metrics, when non-nil, records spec-level operation outcomes
	// (deliver attempts/retries/failures, pickup volume, recovery spool
	// sweeps). Leave nil under the model checker: disabled metrics cost
	// nothing, and enabled ones read the wall clock, which a checked
	// execution has no business doing.
	Metrics *Metrics
}

// nameAttempts bounds fresh-name allocation loops (spool create, link
// publish) within one delivery attempt. Collisions resolve in a few
// iterations even at model-checking RandBounds, so hitting the cap
// means the store is persistently failing — a transient fault to
// surface, not an excuse to spin forever.
const nameAttempts = 128

// openAttempts bounds Pickup's per-message open retries. Opens can fail
// transiently (descriptor exhaustion — gfs.Faulty's FaultNoFiles — or a
// passing EMFILE on the real OS) and a listed name cannot vanish under
// the pickup lock, so a couple of retries turn a spurious skip into the
// read the listing promised; a persistent failure still skips rather
// than stalling the mailbox.
const openAttempts = 4

// UserDir returns user u's mailbox directory name.
func UserDir(u uint64) string { return "user" + strconv.FormatUint(u, 10) }

// Dirs returns the fixed directory layout for cfg, for gfs setup.
func Dirs(cfg Config) []string {
	out := []string{SpoolDir}
	for u := uint64(0); u < cfg.Users; u++ {
		out = append(out, UserDir(u))
	}
	return out
}

// MsgName returns the mailbox file name for allocation index i.
func MsgName(i uint64) string { return "msg" + strconv.FormatUint(i, 10) }

func tmpName(i uint64) string { return "tmp" + strconv.FormatUint(i, 10) }

// Mailboat is the per-era library state: the per-user locks plus the
// optional ghost context for the proof-annotated variant. The ghost
// fields implement the §8.3 leasing strategy: each mailbox directory
// has a set master (dir ↦ N, in the crash invariant) and a lower-bound
// lease lease(dir, ⊇N) protected by the mailbox lock, so the lock
// holder may delete observed messages while lock-free deliveries may
// only insert.
type Mailboat struct {
	sys   gfs.System
	cfg   Config
	locks []gfs.Lock

	g          *core.Ctx
	boxMasters []*core.SetMaster
	boxLeases  []*core.SetLease

	// quota is the per-user byte accounting behind Config.QuotaBytes;
	// nil when quotas are disabled. Shared (not copied) by WithSystem,
	// so the fault-wrapped steady-state store and the bare recovery
	// store agree on usage.
	quota *quotaState
}

// quotaState tracks per-user mailbox bytes under Config.QuotaBytes.
// Deliver reserves optimistically before spooling (lock-free delivery
// must not fill a mailbox it already knows is full), commits the
// published name's size on link, and refunds on failure; Delete credits
// the deleted message's bytes back. The mutex is a plain Go lock: the
// sections it guards contain no machine steps, so the checker's
// schedules are unaffected.
type quotaState struct {
	mu    sync.Mutex
	used  []uint64
	sizes []map[string]uint64 // per user: mailbox name -> message bytes
}

// Init initializes the library (Figure 10's Init): it allocates the
// per-user locks and, under the ghost context, the mailbox directory
// capabilities (masters deposited in the crash invariant — MsgsInv).
// It must be run before any operations on a fresh store; after a crash,
// run Recover instead.
func Init(t gfs.T, g *core.Ctx, sys gfs.System, cfg Config) *Mailboat {
	mb := &Mailboat{sys: sys, cfg: cfg, g: g}
	mb.locks = make([]gfs.Lock, cfg.Users)
	for u := uint64(0); u < cfg.Users; u++ {
		mb.locks[u] = sys.NewLock(t, fmt.Sprintf("mailbox%d", u))
	}
	if g != nil {
		mb.boxMasters = make([]*core.SetMaster, cfg.Users)
		mb.boxLeases = make([]*core.SetLease, cfg.Users)
		for u := uint64(0); u < cfg.Users; u++ {
			names := sys.List(t, UserDir(u))
			mb.boxMasters[u], mb.boxLeases[u] = g.NewDurableSet(modelT(t), UserDir(u), names)
			g.DepositSetMaster(modelT(t), mb.boxMasters[u])
		}
	}
	mb.initQuota(t)
	return mb
}

// initQuota derives per-user usage from the store: the size of every
// mailbox entry. Runs single-threaded at Init/Recover before the store
// takes traffic; a no-op (and no extra I/O) when quotas are disabled.
func (mb *Mailboat) initQuota(t gfs.T) {
	if mb.cfg.QuotaBytes == 0 {
		return
	}
	q := &quotaState{
		used:  make([]uint64, mb.cfg.Users),
		sizes: make([]map[string]uint64, mb.cfg.Users),
	}
	for u := uint64(0); u < mb.cfg.Users; u++ {
		q.sizes[u] = map[string]uint64{}
		for _, name := range mb.sys.List(t, UserDir(u)) {
			fd, ok := mb.sys.Open(t, UserDir(u), name)
			if !ok {
				continue
			}
			n := mb.sys.Size(t, fd)
			mb.sys.Close(t, fd)
			q.sizes[u][name] = n
			q.used[u] += n
		}
	}
	mb.quota = q
}

// QuotaUsed reports user's tracked mailbox bytes (0 when quotas are
// disabled), for tests and operator surfaces.
func (mb *Mailboat) QuotaUsed(user uint64) uint64 {
	if mb.quota == nil {
		return 0
	}
	mb.quota.mu.Lock()
	defer mb.quota.mu.Unlock()
	return mb.quota.used[user]
}

// quotaReserve charges n bytes against user's quota, refusing (with no
// charge) when it would overflow. Reservation happens before spooling:
// lock-free concurrent deliveries must not all squeeze past the same
// almost-full reading.
func (mb *Mailboat) quotaReserve(user uint64, n uint64) bool {
	if mb.quota == nil {
		return true
	}
	q := mb.quota
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.used[user]+n > mb.cfg.QuotaBytes {
		return false
	}
	q.used[user] += n
	return true
}

// quotaRelease refunds a reservation whose delivery failed.
func (mb *Mailboat) quotaRelease(user uint64, n uint64) {
	if mb.quota == nil {
		return
	}
	q := mb.quota
	q.mu.Lock()
	q.used[user] -= n
	q.mu.Unlock()
}

// quotaCommit records the published name of a reserved delivery so a
// later Delete can credit the right number of bytes back.
func (mb *Mailboat) quotaCommit(user uint64, name string, n uint64) {
	if mb.quota == nil {
		return
	}
	q := mb.quota
	q.mu.Lock()
	q.sizes[user][name] = n
	q.mu.Unlock()
}

// quotaCredit returns a deleted message's bytes to user's quota.
func (mb *Mailboat) quotaCredit(user uint64, name string) {
	if mb.quota == nil {
		return
	}
	q := mb.quota
	q.mu.Lock()
	if n, ok := q.sizes[user][name]; ok {
		q.used[user] -= n
		delete(q.sizes[user], name)
	}
	q.mu.Unlock()
}

// WithSystem returns a Mailboat sharing this one's state (locks and
// ghost handles) but issuing file-system calls through sys. It is how
// mailboatd slips a fault-injection layer under an already-recovered
// store: recovery runs on the bare backend, steady-state traffic runs
// through the wrapper.
func (mb *Mailboat) WithSystem(sys gfs.System) *Mailboat {
	out := *mb
	out.sys = sys
	return &out
}

// Deliver stores msg in user's mailbox (Figure 10's Deliver). It
// spools the message under a fresh random name, writing at most 4 KiB
// per append, then atomically links it into the mailbox under another
// fresh random name and removes the spool entry. The successful link is
// the linearization point: the ghost spec step happens in the same
// atomic turn as the link, so a crash before it simply drops the
// delivery (the spool file is invisible at the spec level and cleaned
// by Recover).
//
// Transient store failures (a faulted create/append/sync/link under
// gfs.Faulty, or a real EIO/ENOSPC/failed fsync under the OS backend)
// abort the attempt, discard its spool file, and retry the whole
// protocol up to Config.DeliverRetries times with optional backoff.
// Deliver reports whether the message was committed; false means the
// mailbox is untouched (the spec's transient-failure outcome) and the
// caller should surface a temporary failure, never drop the message
// silently.
func (mb *Mailboat) Deliver(t gfs.T, j *core.JTok, user uint64, msg []byte) bool {
	mb.checkUser(t, user)
	sp := trace.Enter(t, "mailboat.deliver")
	defer trace.Exit(t, sp)
	start := mb.cfg.Metrics.start()
	if !mb.quotaReserve(user, uint64(len(msg))) {
		// Over quota: a clean up-front refusal with the mailbox
		// untouched — the same spec-level transient-failure outcome as
		// retry exhaustion, so refinement is unaffected and the caller
		// surfaces a temp-failure code.
		trace.Event(t, "deliver refused: user %d over quota", user)
		if mb.g != nil && j != nil {
			mb.g.StepSim(modelT(t), j, false)
		}
		mb.cfg.Metrics.observeQuotaRejected()
		mb.cfg.Metrics.observeDeliver(start, 0, false)
		return false
	}
	retries := mb.cfg.DeliverRetries
	if retries <= 0 {
		retries = 3
	}
	attempts := 0
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			if mb.storeNoSpace() {
				// The store is latched full: no retry can succeed until
				// space is freed, so stop burning attempts and report
				// the clean abort now.
				trace.Event(t, "deliver abandoned: store out of space")
				break
			}
			trace.Event(t, "deliver retry: attempt %d", attempt+1)
			mb.backoff(t, attempt)
		}
		attempts++
		if mb.deliverAttempt(t, j, user, msg) {
			mb.cfg.Metrics.observeDeliver(start, attempts, true)
			return true
		}
	}
	// Giving up on a transient failure is itself a spec-level outcome:
	// Deliver fails, the mailbox is unchanged.
	mb.quotaRelease(user, uint64(len(msg)))
	if mb.g != nil && j != nil {
		mb.g.StepSim(modelT(t), j, false)
	}
	mb.cfg.Metrics.observeDeliver(start, attempts, false)
	return false
}

// backoff sleeps between delivery attempts (exponential, base
// Config.DeliverBackoff). Modeled threads never sleep: under the
// checker, time belongs to the scheduler.
func (mb *Mailboat) backoff(t gfs.T, attempt int) {
	if mb.cfg.DeliverBackoff <= 0 {
		return
	}
	if _, modeled := t.(*machine.T); modeled {
		return
	}
	time.Sleep(mb.cfg.DeliverBackoff << (attempt - 1))
}

// deliverAttempt runs one round of the spool-write-link protocol. On
// any transient failure it deletes its spool file (best effort — a
// leftover file is invisible at the spec level and reclaimed by
// Recover, the TmpInv of §8.3) and reports false with the mailbox
// untouched. The two phases are separate functions so each shows up as
// its own stage span on a traced request.
func (mb *Mailboat) deliverAttempt(t gfs.T, j *core.JTok, user uint64, msg []byte) bool {
	sname, ok := mb.spoolWrite(t, msg)
	if !ok {
		return false
	}
	return mb.publishLink(t, j, user, sname, msg)
}

// spoolWrite spools msg under a fresh name: create, chunked appends,
// optional fsync. On failure the spool file is already cleaned up.
func (mb *Mailboat) spoolWrite(t gfs.T, msg []byte) (sname string, ok bool) {
	sp := trace.Enter(t, "spool.write")
	defer trace.Exit(t, sp)
	var spool gfs.FD
	created := false
	for i := 0; i < nameAttempts; i++ {
		id := t.RandUint64(mb.cfg.RandBound)
		sname = tmpName(id)
		if fd, ok := mb.sys.Create(t, SpoolDir, sname); ok {
			spool, created = fd, true
			break
		}
		if mb.storeNoSpace() {
			// A failed create on a full disk is not a name collision:
			// every retry fails the same way until space is freed, so
			// abort instead of walking the whole name space.
			trace.Event(t, "spool create abandoned: store out of space")
			return "", false
		}
	}
	if !created {
		return "", false
	}
	for off := 0; off < len(msg); off += gfs.MaxAppend {
		end := off + gfs.MaxAppend
		if end > len(msg) {
			end = len(msg)
		}
		if !mb.sys.Append(t, spool, msg[off:end]) {
			mb.sys.Close(t, spool)
			mb.sys.Delete(t, SpoolDir, sname)
			return "", false
		}
	}
	if mb.cfg.SyncOnDeliver {
		if !mb.sys.Sync(t, spool) {
			// fsyncgate: after a failed fsync the kernel may already
			// have dropped the dirty pages, so re-syncing this
			// descriptor could report success for lost data. Abandon
			// the file and rewrite from scratch.
			mb.sys.Close(t, spool)
			mb.sys.Delete(t, SpoolDir, sname)
			return "", false
		}
	}
	mb.sys.Close(t, spool)
	return sname, true
}

// publishLink publishes the spooled message atomically under a fresh
// mailbox name, barriers the directory when configured, and removes the
// spool entry.
func (mb *Mailboat) publishLink(t gfs.T, j *core.JTok, user uint64, sname string, msg []byte) bool {
	sp := trace.Enter(t, "publish.link")
	defer trace.Exit(t, sp)
	for i := 0; i < nameAttempts; i++ {
		id := t.RandUint64(mb.cfg.RandBound)
		mname := MsgName(id)
		if !mb.sys.Link(t, SpoolDir, sname, UserDir(user), mname) {
			if mb.storeNoSpace() {
				// The link failed for space, not a name collision; stop
				// here. Deleting the spool file below releases space, so
				// the clean abort itself helps the disk recover.
				trace.Event(t, "publish link abandoned: store out of space")
				break
			}
			continue
		}
		if mb.g != nil {
			// Ghost-atomic with the link: the directory-entry
			// insertion needs no lease (§8.3 — inserts preserve
			// every lower bound), and Deliver's spec step is
			// simulated now that the message is visible,
			// instantiating the spec's fresh-ID existential with
			// the name the link actually claimed.
			mb.boxMasters[user].Insert(modelT(t), mname, nil)
			if j != nil {
				mb.g.StepSimWhere(modelT(t), j, true, func(s spec.State) bool {
					got, ok := s.(State).Boxes[user][mname]
					return ok && got == string(msg)
				})
			}
		}
		if mb.cfg.SyncDirs {
			// The link is visible but not yet durable: barrier the
			// mailbox directory before acking, so a crash after the
			// true return cannot take the message back. A store that
			// fail-stopped under the barrier can never ack: report
			// failure (the node is dead; no client hears from it).
			if !mb.syncDirBarrier(t, UserDir(user)) {
				mb.sys.Delete(t, SpoolDir, sname)
				return false
			}
		}
		// The spool entry is no longer needed, and the committed
		// delivery's bytes are pinned to the name the link claimed so a
		// later Delete credits the quota correctly.
		mb.quotaCommit(user, mname, uint64(len(msg)))
		mb.sys.Delete(t, SpoolDir, sname)
		return true
	}
	mb.sys.Delete(t, SpoolDir, sname)
	return false
}

// syncDirBarrier makes dir's entries durable, retrying transient
// failures with backoff until the barrier commits. A failed SyncDir is
// never a barrier, but unlike a failed file Sync it may be retried
// (directory metadata goes through the journal; there are no fsyncgate
// dirty pages to lose), and after a publish that cannot be
// un-published, retrying until success is the only answer that keeps
// the ack ⟺ durable contract exact. Under the checker transient fault
// budgets bound consecutive failures, so the loop terminates; on a
// real disk a persistently failing directory fsync means the device is
// dying, and stalling the ack is what a mail server owes its clients.
//
// The one failure that IS permanent is a fail-stopped store (the
// replicated scenarios latch a whole node dead): no barrier will ever
// commit there, so the loop reports false and the caller must withhold
// its ack. A dead node cannot answer clients anyway — the replication
// layer's failover is what turns this refusal into availability.
func (mb *Mailboat) syncDirBarrier(t gfs.T, dir string) bool {
	sp := trace.Enter(t, "syncdir.barrier")
	defer trace.Exit(t, sp)
	for attempt := 1; !mb.sys.SyncDir(t, dir); attempt++ {
		if mb.storeDead() {
			trace.Event(t, "syncdir barrier abandoned: store fail-stopped")
			return false
		}
		trace.Event(t, "syncdir retry: attempt %d", attempt)
		capped := attempt
		if capped > 8 {
			capped = 8
		}
		mb.backoff(t, capped)
	}
	return true
}

// storeDead reports whether the store has latched permanently dead
// (gfs.Faulty after a fail-stop). Layers without the latch never are.
func (mb *Mailboat) storeDead() bool {
	fs, ok := mb.sys.(interface{ FailStopped() bool })
	return ok && fs.FailStopped()
}

// storeNoSpace reports whether the store has latched disk-full
// (gfs.Faulty's FaultNoSpace). Unlike a fail-stop the latch is
// recoverable — freeing space (deleting files) clears it — but while it
// holds, every write fails the same way, so retry loops should abort
// rather than spin. Layers without the latch never report full.
func (mb *Mailboat) storeNoSpace() bool {
	fs, ok := mb.sys.(interface{ NoSpace() bool })
	return ok && fs.NoSpace()
}

// Pickup lists and reads user's mailbox (Figure 10's Pickup),
// implicitly acquiring the user's pickup/delete lock; the caller must
// eventually call Unlock. Deliveries may run concurrently; the listing
// is the linearization point, and every listed message is complete
// (delivery publishes atomically). Messages are read in 512-byte
// chunks, the loop whose off-by-one variant is the §9.5 infinite-loop
// bug.
func (mb *Mailboat) Pickup(t gfs.T, j *core.JTok, user uint64) []Message {
	mb.checkUser(t, user)
	sp := trace.Enter(t, "mailboat.pickup")
	defer trace.Exit(t, sp)
	start := mb.cfg.Metrics.start()
	lsp := trace.Enter(t, "mailbox.list")
	mb.locks[user].Acquire(t)

	var expected []Message
	names := mb.sys.List(t, UserDir(user))
	if mb.g != nil {
		// Ghost-atomic with the listing: raise the lower-bound lease to
		// the listed set (we hold the mailbox lock), check the listing
		// against the master — the meaning of dir ↦ N — and simulate
		// the spec's Pickup, which returns exactly the source-state
		// mailbox at this instant; the reads below must reproduce it
		// (checked by FinishOp).
		mb.boxLeases[user].Refresh(modelT(t), mb.boxMasters[user])
		if want := mb.boxMasters[user].Elems(modelT(t)); !equalStrings(want, names) {
			modelT(t).Failf("capability mismatch: %s lists %v but master asserts %v", UserDir(user), names, want)
		}
		if j != nil {
			expected = specPickup(mb.g, user)
			mb.g.StepSim(modelT(t), j, expected)
		}
	}
	trace.Exit(t, lsp)

	rsp := trace.Enter(t, "mailbox.read")
	msgs := make([]Message, 0, len(names))
	for _, name := range names {
		var fd gfs.FD
		opened := false
		for a := 0; a < openAttempts; a++ {
			if a > 0 {
				trace.Event(t, "pickup open retry: %s attempt %d", name, a+1)
				mb.backoff(t, a)
			}
			if f, ok := mb.sys.Open(t, UserDir(user), name); ok {
				fd, opened = f, true
				break
			}
		}
		if !opened {
			// The lock excludes deletes and links never replace
			// existing names, so listed names cannot vanish; only a
			// persistently failing open skips the message.
			continue
		}
		// Read in chunks, advancing by however many bytes actually
		// arrived: short reads (a POSIX possibility, and gfs.Faulty's
		// injected fault) are retried from the new offset rather than
		// mistaken for end-of-file, which only a zero-length read
		// signals.
		var contents []byte
		for off := uint64(0); ; {
			chunk := mb.sys.ReadAt(t, fd, off, gfs.ReadChunk)
			if len(chunk) == 0 {
				break
			}
			contents = append(contents, chunk...)
			off += uint64(len(chunk))
		}
		mb.sys.Close(t, fd)
		msgs = append(msgs, Message{ID: name, Contents: string(contents)})
	}
	trace.Exit(t, rsp)
	mb.cfg.Metrics.observePickup(start, msgs)
	return msgs
}

// Delete removes a message picked up earlier (Figure 10's Delete). The
// caller must hold the user's lock (i.e. be between Pickup and Unlock)
// and must pass an ID returned by that Pickup — passing other IDs is
// outside the specification (§8.1, §9.2). A false return means the
// store transiently refused the unlink: the message is still in the
// mailbox, and the caller should report rather than swallow that.
func (mb *Mailboat) Delete(t gfs.T, j *core.JTok, user uint64, id string) bool {
	mb.checkUser(t, user)
	sp := trace.Enter(t, "mailboat.delete")
	defer trace.Exit(t, sp)
	ok := mb.sys.Delete(t, UserDir(user), id)
	if ok && mb.cfg.SyncDirs {
		// The unlink may still be sitting in the directory cache; an
		// un-barriered ack would let a crash resurrect the entry after
		// the user was told it is gone. On a fail-stopped store the
		// barrier is unreachable forever: refuse the ack.
		ok = mb.syncDirBarrier(t, UserDir(user))
	}
	if ok {
		mb.quotaCredit(user, id)
	}
	if mb.g != nil {
		if ok {
			// The removal requires the lower-bound lease to contain id:
			// the ghost form of §8.1's assumption that users only delete
			// IDs returned by Pickup.
			mb.boxMasters[user].Remove(modelT(t), mb.boxLeases[user], id, nil)
		}
		if j != nil {
			mb.g.StepSim(modelT(t), j, ok)
		}
	}
	mb.cfg.Metrics.observeDelete(ok)
	return ok
}

// Unlock releases the user's pickup/delete lock (Figure 10's Unlock).
func (mb *Mailboat) Unlock(t gfs.T, j *core.JTok, user uint64) {
	mb.checkUser(t, user)
	if mb.g != nil && j != nil {
		mb.g.StepSim(modelT(t), j, nil)
	}
	mb.locks[user].Release(t)
}

// Recover restores the library after a crash (Figure 10's Recover): it
// deletes every leftover spool file (they belong to deliveries that
// never linked, so they are invisible at the spec level — the TmpInv of
// §8.3), discharges the spec-level crash step, resynthesizes the
// mailbox capabilities from their masters, and re-allocates the locks.
// old carries the pre-crash ghost handles; it may be nil when the ghost
// context is nil (production boot).
func Recover(t gfs.T, g *core.Ctx, sys gfs.System, cfg Config, old *Mailboat) *Mailboat {
	sp := trace.Enter(t, "mailboat.recover")
	defer trace.Exit(t, sp)
	// If the stack includes a mirror, restore redundancy before touching
	// any data: resilvering copies the surviving replica onto its
	// replacement while the system is still single-threaded, so every
	// read issued after this line (including the spool sweep below) sees
	// a fully repaired pair. Skipping this step is the no-resilver
	// mutation the checker catches — the replacement replica would serve
	// stale reads. Resilver is idempotent, so a crash mid-copy is
	// repaired by the next boot's call.
	if r := gfs.AsResilverer(sys); r != nil {
		rsp := trace.Enter(t, "recover.resilver")
		r.Resilver(t)
		trace.Exit(t, rsp)
	}
	// With a checksum envelope somewhere in the stack, recovery also
	// scrubs: every file's envelope is verified — and, on a mirror, a
	// rotten copy is healed from its verified peer — before the server
	// takes traffic again. This is fsck's role for silent corruption:
	// rot that accrued while the machine was down is found (and mended)
	// at boot, not at some unlucky future read. Stacks without an
	// envelope layer make this a cheap directory walk (nothing to
	// verify), and single-backend envelopes detect without healing.
	if sc := gfs.AsScrubber(sys); sc != nil {
		ssp := trace.Enter(t, "recover.scrub")
		sc.Scrub(t, true)
		trace.Exit(t, ssp)
	}
	// The spool sweep is also the store's garbage collector for disk
	// space: every orphan belongs to a delivery that never linked, so
	// deleting it both restores TmpInv and returns its bytes to the
	// store (on gfs.Faulty, a successful delete clears a latched
	// disk-full condition). Orphan sizes are only measured when metrics
	// are on, so the checker path issues exactly the seed's I/O.
	wsp := trace.Enter(t, "recover.sweep")
	swept, sweepFailed := 0, 0
	var reclaimed uint64
	for _, name := range sys.List(t, SpoolDir) {
		if cfg.Metrics != nil {
			if fd, ok := sys.Open(t, SpoolDir, name); ok {
				reclaimed += sys.Size(t, fd)
				sys.Close(t, fd)
			}
		}
		if sys.Delete(t, SpoolDir, name) {
			swept++
		} else {
			sweepFailed++
		}
	}
	trace.Exit(t, wsp)
	cfg.Metrics.observeRecover(swept, sweepFailed, reclaimed)
	if g == nil {
		return Init(t, nil, sys, cfg)
	}
	if g.CrashPending() {
		g.CrashSim(modelT(t))
	}
	mb := &Mailboat{sys: sys, cfg: cfg, g: g}
	mb.locks = make([]gfs.Lock, cfg.Users)
	mb.boxMasters = make([]*core.SetMaster, cfg.Users)
	mb.boxLeases = make([]*core.SetLease, cfg.Users)
	for u := uint64(0); u < cfg.Users; u++ {
		mb.locks[u] = sys.NewLock(t, fmt.Sprintf("mailbox%d", u))
		mb.boxMasters[u], mb.boxLeases[u] = old.boxMasters[u].Resynthesize(modelT(t))
		g.DepositSetMaster(modelT(t), mb.boxMasters[u])
	}
	mb.initQuota(t)
	return mb
}

// equalStrings compares two sorted string slices.
func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (mb *Mailboat) checkUser(t gfs.T, user uint64) {
	if user >= mb.cfg.Users {
		panic(fmt.Sprintf("mailboat: user %d out of range (%d users)", user, mb.cfg.Users))
	}
}

// specPickup computes, from the ghost source state, what the spec's
// Pickup must return at this instant.
func specPickup(g *core.Ctx, user uint64) []Message {
	s := g.Source().(State)
	return s.MessagesOf(user)
}

// modelT asserts the modeled thread handle; ghost annotations only run
// under the model checker (the OS backend passes a nil ghost context).
func modelT(t gfs.T) *machine.T { return t.(*machine.T) }
