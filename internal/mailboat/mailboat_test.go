package mailboat

import (
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/gfs"
	"repro/internal/machine"
	"repro/internal/spec"
)

func cfg2() Config { return Config{Users: 2, RandBound: 3} }

func TestSpecDeliverInsertsUnderFreshID(t *testing.T) {
	sp := Spec(Config{Users: 1, RandBound: 2})
	st := sp.Init()
	next, ub := sp.Step(st, OpDeliver{User: 0, Msg: "hi"}, true)
	if ub || len(next) != 2 {
		t.Fatalf("deliver outcomes=%d ub=%v", len(next), ub)
	}
	// Deliver again into one of them: only one free ID remains.
	next2, _ := sp.Step(next[0], OpDeliver{User: 0, Msg: "yo"}, true)
	if len(next2) != 1 {
		t.Fatalf("second deliver outcomes=%d", len(next2))
	}
	// Mailbox full: a successful delivery is impossible...
	next3, _ := sp.Step(next2[0], OpDeliver{User: 0, Msg: "zz"}, true)
	if len(next3) != 0 {
		t.Fatalf("third deliver outcomes=%d", len(next3))
	}
	// ...but a reported transient failure is always allowed, and leaves
	// the mailbox untouched.
	nextF, _ := sp.Step(next2[0], OpDeliver{User: 0, Msg: "zz"}, false)
	if len(nextF) != 1 || sp.Key(nextF[0]) != sp.Key(next2[0]) {
		t.Fatalf("failed deliver outcomes=%d", len(nextF))
	}
}

func TestSpecPickupReturnsSortedMailbox(t *testing.T) {
	sp := Spec(Config{Users: 1, RandBound: 2})
	st := sp.Init()
	next, _ := sp.Step(st, OpDeliver{User: 0, Msg: "hi"}, true)
	st = next[0]
	got, _ := sp.Step(st, OpPickup{User: 0}, []Message{{ID: MsgName(0), Contents: "hi"}})
	got2, _ := sp.Step(st, OpPickup{User: 0}, []Message{{ID: MsgName(1), Contents: "hi"}})
	if len(got)+len(got2) != 1 {
		t.Fatalf("pickup matched %d+%d states", len(got), len(got2))
	}
}

func TestSpecDeleteUnknownIDIsUB(t *testing.T) {
	sp := Spec(Config{Users: 1, RandBound: 2})
	if _, ub := sp.Step(sp.Init(), OpDelete{User: 0, ID: "msg0"}, nil); !ub {
		t.Fatal("delete of unknown ID not UB")
	}
}

func TestVerifiedSequentialDeliverPickup(t *testing.T) {
	s := Scenario("mb-seq", VariantVerified, ScenarioOptions{
		Config:      cfg2(),
		Delivers:    []OpDeliver{{User: 0, Msg: "hello"}},
		PostPickups: true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 1})
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedDeliverCrashExhaustive(t *testing.T) {
	s := Scenario("mb-crash", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: "m"}},
		MaxCrashes:  1,
		PostPickups: true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
	if rep.CrashedExecutions == 0 {
		t.Fatal("no crash explored")
	}
}

func TestVerifiedConcurrentDeliverPickup(t *testing.T) {
	s := Scenario("mb-conc", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 3},
		Delivers:    []OpDeliver{{User: 0, Msg: "a"}, {User: 0, Msg: "b"}},
		PickupUsers: []uint64{0},
		PostPickups: true,
	})
	budget := 25000
	if testing.Short() {
		budget = 5000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedConcurrentWithCrash(t *testing.T) {
	s := Scenario("mb-conc-crash", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 3},
		Delivers:    []OpDeliver{{User: 0, Msg: "a"}},
		PickupUsers: []uint64{0},
		MaxCrashes:  1,
		PostPickups: true,
	})
	budget := 25000
	if testing.Short() {
		budget = 5000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	if rep.CrashedExecutions == 0 {
		t.Fatal("no crash explored")
	}
}

func TestVerifiedTwoUsersIsolated(t *testing.T) {
	s := Scenario("mb-2users", VariantVerified, ScenarioOptions{
		Config:      cfg2(),
		Delivers:    []OpDeliver{{User: 0, Msg: "for0"}, {User: 1, Msg: "for1"}},
		MaxCrashes:  1,
		PostPickups: true,
	})
	budget := 25000
	if testing.Short() {
		budget = 5000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedStressRandomized(t *testing.T) {
	s := Scenario("mb-stress", VariantVerified, ScenarioOptions{
		Config:      cfg2(),
		Delivers:    []OpDeliver{{User: 0, Msg: "a"}, {User: 0, Msg: "b"}, {User: 1, Msg: "c"}},
		PickupUsers: []uint64{0, 1},
		MaxCrashes:  2,
		PostPickups: true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 1, StressExecutions: 1500, StressSeed: 7})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation under stress:\n%s", rep.Counterexample.Format())
	}
}

func TestBugDeliverDirectPartialMessageVisible(t *testing.T) {
	s := Scenario("mb-bug-direct", VariantDeliverDirect, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 3},
		Delivers:    []OpDeliver{{User: 0, Msg: "full message"}},
		PickupUsers: []uint64{0},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("unspooled delivery's partial visibility not found")
	}
}

func TestBugPickupInfiniteLoopCaught(t *testing.T) {
	// §9.5: messages of at least one full chunk loop forever.
	big := strings.Repeat("x", gfs.ReadChunk)
	s := Scenario("mb-bug-loop", VariantPickupNoAdvance, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: big}},
		PostPickups: true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 10})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("infinite pickup loop not caught")
	}
	if !strings.Contains(rep.Counterexample.Reason, "infinite loop") {
		t.Fatalf("unexpected failure:\n%s", rep.Counterexample.Reason)
	}
}

func TestBugPickupSmallMessageWorksEvenWithNoAdvance(t *testing.T) {
	// Messages under one chunk terminate the buggy loop — the bug only
	// bites past 512 bytes, exactly as §9.5 describes.
	s := Scenario("mb-bug-loop-small", VariantPickupNoAdvance, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: "short"}},
		PostPickups: true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 50})
	if !rep.OK() {
		t.Fatalf("short messages should not trigger the loop bug:\n%s", rep.Counterexample.Format())
	}
}

func TestBugRecoverWipesMailboxesCaught(t *testing.T) {
	s := Scenario("mb-bug-wipe", VariantRecoverWipes, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 3},
		Delivers:    []OpDeliver{{User: 0, Msg: "keep me"}, {User: 0, Msg: "other"}},
		MaxCrashes:  1,
		PostPickups: true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("mailbox-wiping recovery not found")
	}
}

func TestBugFdLeakNotARefinementViolation(t *testing.T) {
	// The checker accepts the leaky pickup — Perennial's proofs do not
	// cover resource leaks (§9.5) — but the model's FD counter sees it.
	s := Scenario("mb-bug-leak", VariantPickupLeaky, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: "mail"}},
		PickupUsers: []uint64{0},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 2000})
	if !rep.OK() {
		t.Fatalf("leak flagged as refinement violation (should not be):\n%s", rep.Counterexample.Format())
	}

	// Direct run demonstrating the leak via the FD counter.
	m := machine.New(machine.Options{})
	fs := gfs.NewModel(m, Dirs(Config{Users: 1, RandBound: 4}))
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		mb := Init(mt, nil, fs, Config{Users: 1, RandBound: 4})
		mb.Deliver(mt, nil, 0, []byte("mail"))
		mb.PickupLeaky(mt, 0)
		mb.Unlock(mt, nil, 0)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if fs.OpenFDs() != 1 {
		t.Fatalf("expected exactly one leaked fd, got %d", fs.OpenFDs())
	}
}

func TestBenignForgetSpoolDeleteAccepted(t *testing.T) {
	// Leftover spool files violate nothing: the spec does not mandate
	// cleanup (§8.2), and the next Recover frees the space.
	s := Scenario("mb-forget-spool", VariantForgetSpoolDelete, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 3},
		Delivers:    []OpDeliver{{User: 0, Msg: "mail"}},
		MaxCrashes:  1,
		PostPickups: true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 20000})
	if !rep.OK() {
		t.Fatalf("benign spool leak rejected:\n%s", rep.Counterexample.Format())
	}
}

func TestRecoverCleansSpool(t *testing.T) {
	m := machine.New(machine.Options{})
	c := Config{Users: 1, RandBound: 4}
	fs := gfs.NewModel(m, Dirs(c))
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		mb := Init(mt, nil, fs, c)
		mb.DeliverForgetSpoolDelete(mt, 0, []byte("mail"))
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if len(fs.PeekDir(SpoolDir)) == 0 {
		t.Fatal("expected a leftover spool file")
	}
	m.CrashReset()
	res = m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		Recover(mt, nil, fs, c, nil)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("recover: %+v", res)
	}
	if n := len(fs.PeekDir(SpoolDir)); n != 0 {
		t.Fatalf("spool not cleaned: %d files", n)
	}
	if n := len(fs.PeekDir(UserDir(0))); n != 1 {
		t.Fatalf("mailbox damaged by recovery: %d files", n)
	}
}

// TestOSBackendEndToEnd runs the same library on the real file system.
func TestOSBackendEndToEnd(t *testing.T) {
	c := Config{Users: 2, RandBound: 1 << 20}
	osfs, err := gfs.NewOS(t.TempDir(), Dirs(c))
	if err != nil {
		t.Fatal(err)
	}
	defer osfs.CloseAll()
	th := gfs.NewNative(1)

	mb := Init(th, nil, osfs, c)
	mb.Deliver(th, nil, 0, []byte("hello user0"))
	mb.Deliver(th, nil, 0, []byte(strings.Repeat("big", 2000))) // multi-chunk
	mb.Deliver(th, nil, 1, []byte("hello user1"))

	msgs := mb.Pickup(th, nil, 0)
	if len(msgs) != 2 {
		t.Fatalf("user0 has %d messages", len(msgs))
	}
	var sawBig bool
	for _, msg := range msgs {
		if msg.Contents == strings.Repeat("big", 2000) {
			sawBig = true
		}
	}
	if !sawBig {
		t.Fatal("multi-chunk message corrupted")
	}
	mb.Delete(th, nil, 0, msgs[0].ID)
	mb.Unlock(th, nil, 0)

	msgs = mb.Pickup(th, nil, 0)
	if len(msgs) != 1 {
		t.Fatalf("after delete, user0 has %d messages", len(msgs))
	}
	mb.Unlock(th, nil, 0)

	// "Crash" (new process): recovery cleans the spool and reopens.
	mb = Recover(th, nil, osfs, c, nil)
	msgs = mb.Pickup(th, nil, 1)
	if len(msgs) != 1 || msgs[0].Contents != "hello user1" {
		t.Fatalf("user1 mailbox after recovery: %+v", msgs)
	}
	mb.Unlock(th, nil, 1)
}

func TestUBClientDeleteUnlistedIsVacuouslyAccepted(t *testing.T) {
	// §8.3 "Exploiting undefined behavior": a client that deletes an ID
	// it never picked up is outside the spec, so the checker accepts
	// any behaviour (vacuous truth) rather than reporting a bug.
	c := Config{Users: 1, RandBound: 3}
	sp := Spec(c)
	s := Scenario("mb-ub-client", VariantVerified, ScenarioOptions{
		Config: c,
	})
	// Replace Main with a UB client: delete without pickup.
	s.Main = func(mt *machine.T, wAny any, h *explore.Harness) {
		w := wAny.(*World)
		mt.Go(func(ct *machine.T) {
			op := OpDelete{User: 0, ID: "msg0"}
			h.Op(op, func() spec.Ret {
				// Bypass the verified Delete (whose ghost lower-bound
				// check would flag the misuse before the spec does) and
				// hit the file system directly, like a raw client.
				w.FS.Delete(ct, UserDir(0), "msg0")
				return nil
			})
		})
	}
	s.Invariant = nil // the ghost AbsR does not cover UB clients
	rep := explore.Run(s, explore.Options{MaxExecutions: 1000})
	if !rep.OK() {
		t.Fatalf("UB client not vacuously accepted:\n%s", rep.Counterexample.Format())
	}
	_ = sp
}

func TestVerifiedImplementationLeaksNoFDs(t *testing.T) {
	// The Iron-style invariant (open descriptors == 0 at era
	// boundaries) holds for the verified implementation across a full
	// deliver/pickup/delete/unlock cycle.
	m := machine.New(machine.Options{})
	c := Config{Users: 1, RandBound: 4}
	fs := gfs.NewModel(m, Dirs(c))
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		mb := Init(mt, nil, fs, c)
		mb.Deliver(mt, nil, 0, []byte("mail"))
		msgs := mb.Pickup(mt, nil, 0)
		if len(msgs) != 1 {
			mt.Failf("pickup: %d", len(msgs))
		}
		mb.Delete(mt, nil, 0, msgs[0].ID)
		mb.Unlock(mt, nil, 0)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if n := fs.OpenFDs(); n != 0 {
		t.Fatalf("verified implementation leaked %d fds", n)
	}
}
