package mailboat

import (
	"testing"

	"repro/internal/gfs"
	"repro/internal/machine"
)

// TestNamedApplyIdempotence pins the replication surface's contract:
// DeliverAs under a fixed name is idempotent on (name, contents),
// conflicts on contents mismatch, and DeleteAs treats absence as the
// already-done outcome.
func TestNamedApplyIdempotence(t *testing.T) {
	c := Config{Users: 1, RandBound: 8}
	m := machine.New(machine.Options{})
	fs := gfs.NewModel(m, Dirs(c))
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		mb := Init(mt, nil, fs, c)
		if st := mb.DeliverAs(mt, 0, "msg3", []byte("hello")); st != Applied {
			mt.Failf("first DeliverAs: %v", st)
		}
		if st := mb.DeliverAs(mt, 0, "msg3", []byte("hello")); st != AlreadyApplied {
			mt.Failf("duplicate DeliverAs: %v", st)
		}
		if st := mb.DeliverAs(mt, 0, "msg3", []byte("other")); st != NameTaken {
			mt.Failf("conflicting DeliverAs: %v", st)
		}
		box := mb.ReadBox(mt, 0)
		if len(box) != 1 || box[0].ID != "msg3" || box[0].Contents != "hello" {
			mt.Failf("ReadBox: %v", box)
		}
		if st := mb.DeleteAs(mt, 0, "msg3"); st != Applied {
			mt.Failf("DeleteAs: %v", st)
		}
		if st := mb.DeleteAs(mt, 0, "msg3"); st != AlreadyApplied {
			mt.Failf("duplicate DeleteAs: %v", st)
		}
		if st := mb.DeliverAs(mt, 0, "msg5", []byte("x")); st != Applied {
			mt.Failf("refill: %v", st)
		}
		if !mb.WipeBox(mt, 0) {
			mt.Failf("WipeBox failed")
		}
		if box := mb.ReadBox(mt, 0); len(box) != 0 {
			mt.Failf("box survives wipe: %v", box)
		}
		// No spool debris: every DeliverAs cleaned up after itself.
		if names := fs.List(mt, SpoolDir); len(names) != 0 {
			mt.Failf("spool debris: %v", names)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("era: %+v", res)
	}
}
