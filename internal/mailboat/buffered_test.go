package mailboat

import (
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/gfs"
	"repro/internal/machine"
)

// These tests exercise the deferred-durability extension (§6.2 calls
// modeling buffered file-system data future work): on a buffered file
// system a crash truncates unsynced file contents, so Deliver must
// fsync the spooled message before linking it — and the checker proves
// both directions.

func TestBufferedFSWithoutSyncLosesMailFound(t *testing.T) {
	// Without SyncOnDeliver, a crash after the link can truncate the
	// delivered message: the post-crash pickup observes contents the
	// spec never allowed.
	s := Scenario("mb-buffered-nosync", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: "needs fsync"}},
		MaxCrashes:  1,
		PostPickups: true,
		BufferedFS:  true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 50000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("missing-fsync bug not found on the buffered file system")
	}
	if !strings.Contains(rep.Counterexample.Reason, "refinement failure") &&
		!strings.Contains(rep.Counterexample.Reason, "MsgsInv") &&
		!strings.Contains(rep.Counterexample.Reason, "capability mismatch") {
		t.Fatalf("unexpected failure kind:\n%s", rep.Counterexample.Reason)
	}
}

func TestBufferedFSWithSyncIsClean(t *testing.T) {
	s := Scenario("mb-buffered-sync", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2, SyncOnDeliver: true},
		Delivers:    []OpDeliver{{User: 0, Msg: "fsynced"}},
		MaxCrashes:  1,
		PostPickups: true,
		BufferedFS:  true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 50000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation with fsync enabled:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
}

func TestStrictModelNeedsNoSync(t *testing.T) {
	// The paper's process-crash setting: file data is always durable,
	// so the unsynced deliver is crash-safe (this is the configuration
	// all other mailboat tests check).
	s := Scenario("mb-strict-nosync", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: "no fsync needed"}},
		MaxCrashes:  1,
		PostPickups: true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 50000})
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestBufferedModelSyncSemanticsDirect(t *testing.T) {
	m := machine.New(machine.Options{})
	fs := gfs.NewBufferedModel(m, []string{"d"})
	var synced, unsynced gfs.FD
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		synced, _ = fs.Create(mt, "d", "synced")
		fs.Append(mt, synced, []byte("durable"))
		fs.Sync(mt, synced)
		fs.Append(mt, synced, []byte("+volatile"))

		unsynced, _ = fs.Create(mt, "d", "unsynced")
		fs.Append(mt, unsynced, []byte("gone"))
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	m.CrashReset()
	dir := fs.PeekDir("d")
	if got := string(dir["synced"]); got != "durable" {
		t.Fatalf("synced file after crash: %q", got)
	}
	if got := string(dir["unsynced"]); got != "" {
		t.Fatalf("unsynced file after crash: %q", got)
	}
}

func TestStrictModelSyncIsNoOp(t *testing.T) {
	m := machine.New(machine.Options{})
	fs := gfs.NewModel(m, []string{"d"})
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		fd, _ := fs.Create(mt, "d", "f")
		fs.Append(mt, fd, []byte("data"))
		fs.Sync(mt, fd)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	m.CrashReset()
	if got := string(fs.PeekDir("d")["f"]); got != "data" {
		t.Fatalf("strict model lost data: %q", got)
	}
}
