package mailboat

import "repro/internal/gfs"

// This file contains deliberately buggy variants of the mail server,
// including the two §9.5 bugs the authors describe. They carry no ghost
// annotations; the model checker finds counterexamples (or, for the
// resource leak, demonstrably does not — matching the paper's
// observation that Perennial's proofs do not cover resource leaks).

// DeliverDirect skips the spool-and-link protocol and writes the
// message directly into the mailbox directory. A concurrent (or
// post-crash) Pickup can observe a partially written message — the
// atomicity failure the spool exists to prevent.
func (mb *Mailboat) DeliverDirect(t gfs.T, user uint64, msg []byte) {
	var fd gfs.FD
	for {
		id := t.RandUint64(mb.cfg.RandBound)
		f, ok := mb.sys.Create(t, UserDir(user), MsgName(id))
		if ok {
			fd = f
			break
		}
	}
	for off := 0; off < len(msg); off += gfs.MaxAppend {
		end := off + gfs.MaxAppend
		if end > len(msg) {
			end = len(msg)
		}
		mb.sys.Append(t, fd, msg[off:end])
	}
	mb.sys.Close(t, fd)
}

// PickupNoAdvance is the §9.5 infinite-loop bug: the chunked read loop
// never advances its offset, so any message of at least one full chunk
// (512 bytes) loops forever. The machine's step budget reports it as a
// possible infinite loop — the paper's authors likewise "caught this bug
// while doing the proof" even though termination is not proved.
func (mb *Mailboat) PickupNoAdvance(t gfs.T, user uint64) []Message {
	mb.locks[user].Acquire(t)
	names := mb.sys.List(t, UserDir(user))
	msgs := make([]Message, 0, len(names))
	for _, name := range names {
		fd, ok := mb.sys.Open(t, UserDir(user), name)
		if !ok {
			continue
		}
		var contents []byte
		for {
			chunk := mb.sys.ReadAt(t, fd, 0, gfs.ReadChunk) // BUG: offset never advances
			contents = append(contents, chunk...)
			if uint64(len(chunk)) < gfs.ReadChunk {
				break
			}
		}
		mb.sys.Close(t, fd)
		msgs = append(msgs, Message{ID: name, Contents: string(contents)})
	}
	return msgs
}

// PickupLeaky is the §9.5 resource-leak bug: it never closes the
// message file descriptors. This violates no refinement property — the
// checker accepts it, exactly as the paper reports that Perennial's
// proofs do not cover resource leaks — but gfs.Model.OpenFDs exposes it
// to ordinary tests.
func (mb *Mailboat) PickupLeaky(t gfs.T, user uint64) []Message {
	mb.locks[user].Acquire(t)
	names := mb.sys.List(t, UserDir(user))
	msgs := make([]Message, 0, len(names))
	for _, name := range names {
		fd, ok := mb.sys.Open(t, UserDir(user), name)
		if !ok {
			continue
		}
		var contents []byte
		for off := uint64(0); ; off += gfs.ReadChunk {
			chunk := mb.sys.ReadAt(t, fd, off, gfs.ReadChunk)
			contents = append(contents, chunk...)
			if uint64(len(chunk)) < gfs.ReadChunk {
				break
			}
		}
		// BUG: fd is never closed.
		msgs = append(msgs, Message{ID: name, Contents: string(contents)})
	}
	return msgs
}

// RecoverWipesMailboxes is an overzealous recovery that cleans not just
// the spool but the user mailboxes too, destroying delivered (durable)
// mail — a durability violation the checker catches.
func RecoverWipesMailboxes(t gfs.T, sys gfs.System, cfg Config) *Mailboat {
	for _, name := range sys.List(t, SpoolDir) {
		sys.Delete(t, SpoolDir, name)
	}
	for u := uint64(0); u < cfg.Users; u++ {
		for _, name := range sys.List(t, UserDir(u)) {
			sys.Delete(t, UserDir(u), name)
		}
	}
	return Init(t, nil, sys, cfg)
}

// RecoverSkipResilver is a recovery that forgets the mirror-repair step:
// it sweeps the spool and reinitializes like Recover, but never calls
// Resilver on the mirrored stack. On a mirror whose replaced replica has
// not been repaired, the replica serves stale (empty) reads; because the
// mirror fails reads over to replica 0 by position, skipping resilver
// makes delivered mail invisible after the next failover — an
// availability/durability violation the checker catches.
func RecoverSkipResilver(t gfs.T, sys gfs.System, cfg Config) *Mailboat {
	// BUG: no gfs.AsResilverer(sys).Resilver(t) call.
	for _, name := range sys.List(t, SpoolDir) {
		sys.Delete(t, SpoolDir, name)
	}
	return Init(t, nil, sys, cfg)
}

// DeliverForgetSpoolDelete links the message but forgets to remove the
// spool entry. This is a space leak, not a correctness bug: the spec
// does not mandate cleanup (§8.2's Recovery note), and Recover deletes
// the leftovers after the next crash. The checker accepts it.
func (mb *Mailboat) DeliverForgetSpoolDelete(t gfs.T, user uint64, msg []byte) {
	var sname string
	for {
		id := t.RandUint64(mb.cfg.RandBound)
		sname = tmpName(id)
		fd, ok := mb.sys.Create(t, SpoolDir, sname)
		if ok {
			for off := 0; off < len(msg); off += gfs.MaxAppend {
				end := off + gfs.MaxAppend
				if end > len(msg) {
					end = len(msg)
				}
				mb.sys.Append(t, fd, msg[off:end])
			}
			mb.sys.Close(t, fd)
			break
		}
	}
	for {
		id := t.RandUint64(mb.cfg.RandBound)
		if mb.sys.Link(t, SpoolDir, sname, UserDir(user), MsgName(id)) {
			break
		}
	}
	// BUG (benign for refinement): spool entry not deleted.
}
