package mailboat

import "repro/internal/gfs"

// This file contains deliberately buggy variants of the mail server,
// including the two §9.5 bugs the authors describe. They carry no ghost
// annotations; the model checker finds counterexamples (or, for the
// resource leak, demonstrably does not — matching the paper's
// observation that Perennial's proofs do not cover resource leaks).

// DeliverDirect skips the spool-and-link protocol and writes the
// message directly into the mailbox directory. A concurrent (or
// post-crash) Pickup can observe a partially written message — the
// atomicity failure the spool exists to prevent.
func (mb *Mailboat) DeliverDirect(t gfs.T, user uint64, msg []byte) {
	var fd gfs.FD
	for {
		id := t.RandUint64(mb.cfg.RandBound)
		f, ok := mb.sys.Create(t, UserDir(user), MsgName(id))
		if ok {
			fd = f
			break
		}
	}
	for off := 0; off < len(msg); off += gfs.MaxAppend {
		end := off + gfs.MaxAppend
		if end > len(msg) {
			end = len(msg)
		}
		mb.sys.Append(t, fd, msg[off:end])
	}
	mb.sys.Close(t, fd)
}

// PickupNoAdvance is the §9.5 infinite-loop bug: the chunked read loop
// never advances its offset, so any message of at least one full chunk
// (512 bytes) loops forever. The machine's step budget reports it as a
// possible infinite loop — the paper's authors likewise "caught this bug
// while doing the proof" even though termination is not proved.
func (mb *Mailboat) PickupNoAdvance(t gfs.T, user uint64) []Message {
	mb.locks[user].Acquire(t)
	names := mb.sys.List(t, UserDir(user))
	msgs := make([]Message, 0, len(names))
	for _, name := range names {
		fd, ok := mb.sys.Open(t, UserDir(user), name)
		if !ok {
			continue
		}
		var contents []byte
		for {
			chunk := mb.sys.ReadAt(t, fd, 0, gfs.ReadChunk) // BUG: offset never advances
			contents = append(contents, chunk...)
			if uint64(len(chunk)) < gfs.ReadChunk {
				break
			}
		}
		mb.sys.Close(t, fd)
		msgs = append(msgs, Message{ID: name, Contents: string(contents)})
	}
	return msgs
}

// PickupLeaky is the §9.5 resource-leak bug: it never closes the
// message file descriptors. This violates no refinement property — the
// checker accepts it, exactly as the paper reports that Perennial's
// proofs do not cover resource leaks — but gfs.Model.OpenFDs exposes it
// to ordinary tests.
func (mb *Mailboat) PickupLeaky(t gfs.T, user uint64) []Message {
	mb.locks[user].Acquire(t)
	names := mb.sys.List(t, UserDir(user))
	msgs := make([]Message, 0, len(names))
	for _, name := range names {
		fd, ok := mb.sys.Open(t, UserDir(user), name)
		if !ok {
			continue
		}
		var contents []byte
		for off := uint64(0); ; off += gfs.ReadChunk {
			chunk := mb.sys.ReadAt(t, fd, off, gfs.ReadChunk)
			contents = append(contents, chunk...)
			if uint64(len(chunk)) < gfs.ReadChunk {
				break
			}
		}
		// BUG: fd is never closed.
		msgs = append(msgs, Message{ID: name, Contents: string(contents)})
	}
	return msgs
}

// RecoverWipesMailboxes is an overzealous recovery that cleans not just
// the spool but the user mailboxes too, destroying delivered (durable)
// mail — a durability violation the checker catches.
func RecoverWipesMailboxes(t gfs.T, sys gfs.System, cfg Config) *Mailboat {
	for _, name := range sys.List(t, SpoolDir) {
		sys.Delete(t, SpoolDir, name)
	}
	for u := uint64(0); u < cfg.Users; u++ {
		for _, name := range sys.List(t, UserDir(u)) {
			sys.Delete(t, UserDir(u), name)
		}
	}
	return Init(t, nil, sys, cfg)
}

// RecoverSkipResilver is a recovery that forgets the mirror-repair step:
// it sweeps the spool and reinitializes like Recover, but never calls
// Resilver on the mirrored stack. On a mirror whose replaced replica has
// not been repaired, the replica serves stale (empty) reads; because the
// mirror fails reads over to replica 0 by position, skipping resilver
// makes delivered mail invisible after the next failover — an
// availability/durability violation the checker catches.
func RecoverSkipResilver(t gfs.T, sys gfs.System, cfg Config) *Mailboat {
	// BUG: no gfs.AsResilverer(sys).Resilver(t) call.
	for _, name := range sys.List(t, SpoolDir) {
		sys.Delete(t, SpoolDir, name)
	}
	return Init(t, nil, sys, cfg)
}

// DeliverForgetSpoolDelete links the message but forgets to remove the
// spool entry. This is a space leak, not a correctness bug: the spec
// does not mandate cleanup (§8.2's Recovery note), and Recover deletes
// the leftovers after the next crash. The checker accepts it.
func (mb *Mailboat) DeliverForgetSpoolDelete(t gfs.T, user uint64, msg []byte) {
	var sname string
	for {
		id := t.RandUint64(mb.cfg.RandBound)
		sname = tmpName(id)
		fd, ok := mb.sys.Create(t, SpoolDir, sname)
		if ok {
			for off := 0; off < len(msg); off += gfs.MaxAppend {
				end := off + gfs.MaxAppend
				if end > len(msg) {
					end = len(msg)
				}
				mb.sys.Append(t, fd, msg[off:end])
			}
			mb.sys.Close(t, fd)
			break
		}
	}
	for {
		id := t.RandUint64(mb.cfg.RandBound)
		if mb.sys.Link(t, SpoolDir, sname, UserDir(user), MsgName(id)) {
			break
		}
	}
	// BUG (benign for refinement): spool entry not deleted.
}

// DeliverAckOnNoSpace is the ack-after-ENOSPC bug: it runs the real
// spool-write-link protocol, but when an attempt fails on a full disk
// it acknowledges anyway, reasoning that the sender will surely retry
// "later" and the mailbox will surely have room "then". Nothing was
// published — the spool write never even landed — yet the client hears
// yes: acked-but-absent, the exact loss the clean-abort contract (fail
// the delivery, surface a temp-failure code) exists to prevent. The
// exhaustion property convicts it at the post-recovery audit.
func (mb *Mailboat) DeliverAckOnNoSpace(t gfs.T, user uint64, msg []byte) bool {
	for attempt := 0; attempt < 3; attempt++ {
		if mb.deliverAttempt(t, nil, user, msg) {
			return true
		}
		if mb.storeNoSpace() {
			// BUG: the store said no — disk full, nothing durable — but
			// the ack goes out anyway.
			return true
		}
	}
	return false
}

// DeliverGreedySpoolGC is the gc-eats-live-spool bug: when a delivery
// hits a full disk it "helpfully" sweeps the entire spool directory to
// free space before retrying, reasoning that spool files are garbage —
// recovery deletes them, after all. The flaw is that recovery runs
// single-threaded, where every spool file really is an orphan; during
// operation a spool file may belong to a concurrent delivery that has
// written it but not yet linked it. Eating one makes that delivery's
// link target vanish out from under it — a protocol violation the
// model's link-source assertion catches red-handed.
func (mb *Mailboat) DeliverGreedySpoolGC(t gfs.T, user uint64, msg []byte) bool {
	for attempt := 0; attempt < 3; attempt++ {
		if mb.deliverAttempt(t, nil, user, msg) {
			return true
		}
		if mb.storeNoSpace() {
			// BUG: only recovery may sweep the spool; these files may be
			// live (spooled but not yet linked) under concurrent delivery.
			for _, name := range mb.sys.List(t, SpoolDir) {
				mb.sys.Delete(t, SpoolDir, name)
			}
		}
	}
	return false
}

// readWhole reads an entire file in 512-byte chunks, the same loop the
// real Pickup uses. Used by the buggy replay recovery below.
func readWhole(t gfs.T, sys gfs.System, dir, name string) ([]byte, bool) {
	fd, ok := sys.Open(t, dir, name)
	if !ok {
		return nil, false
	}
	var contents []byte
	for off := uint64(0); ; off += gfs.ReadChunk {
		chunk := sys.ReadAt(t, fd, off, gfs.ReadChunk)
		contents = append(contents, chunk...)
		if uint64(len(chunk)) < gfs.ReadChunk {
			break
		}
	}
	sys.Close(t, fd)
	return contents, true
}

// DeliverTinyAppends is the delivery half of the torn-append bug pair.
// It follows the real spool-sync-link protocol — the spool file is
// fsynced before the link, so every *published* message is durable and
// complete — but writes the spool one byte per append instead of in
// 4 KiB chunks. That is not a bug by itself; it only becomes one when
// paired with RecoverReplaySpool, which trusts whatever prefix of those
// appends a crash happened to preserve.
func (mb *Mailboat) DeliverTinyAppends(t gfs.T, user uint64, msg []byte) bool {
	var spool gfs.FD
	var sname string
	created := false
	for i := 0; i < nameAttempts; i++ {
		id := t.RandUint64(mb.cfg.RandBound)
		sname = tmpName(id)
		if fd, ok := mb.sys.Create(t, SpoolDir, sname); ok {
			spool, created = fd, true
			break
		}
	}
	if !created {
		return false
	}
	for off := 0; off < len(msg); off++ { // one byte per append
		if !mb.sys.Append(t, spool, msg[off:off+1]) {
			mb.sys.Close(t, spool)
			mb.sys.Delete(t, SpoolDir, sname)
			return false
		}
	}
	if !mb.sys.Sync(t, spool) {
		mb.sys.Close(t, spool)
		mb.sys.Delete(t, SpoolDir, sname)
		return false
	}
	mb.sys.Close(t, spool)
	for i := 0; i < nameAttempts; i++ {
		id := t.RandUint64(mb.cfg.RandBound)
		if mb.sys.Link(t, SpoolDir, sname, UserDir(user), MsgName(id)) {
			mb.sys.Delete(t, SpoolDir, sname)
			return true
		}
	}
	mb.sys.Delete(t, SpoolDir, sname)
	return false
}

// DeliverAckBeforeSync is the missing-directory-barrier delivery bug:
// it follows the full spool-sync-link protocol — the message bytes are
// fsynced before the link, so no surviving message is ever torn — but
// acknowledges as soon as the link lands, without SyncDir on the
// mailbox directory. On strict or merely buffered stores that barrier
// is a no-op and the bug is invisible; on a writeback store the link
// is still sitting in the directory cache when the true return reaches
// the client, so a crash can take back an acknowledged delivery — a
// durability violation only the "writeback" crash enumeration exposes.
func (mb *Mailboat) DeliverAckBeforeSync(t gfs.T, user uint64, msg []byte) bool {
	var spool gfs.FD
	var sname string
	created := false
	for i := 0; i < nameAttempts; i++ {
		id := t.RandUint64(mb.cfg.RandBound)
		sname = tmpName(id)
		if fd, ok := mb.sys.Create(t, SpoolDir, sname); ok {
			spool, created = fd, true
			break
		}
	}
	if !created {
		return false
	}
	for off := 0; off < len(msg); off += gfs.MaxAppend {
		end := off + gfs.MaxAppend
		if end > len(msg) {
			end = len(msg)
		}
		if !mb.sys.Append(t, spool, msg[off:end]) {
			mb.sys.Close(t, spool)
			mb.sys.Delete(t, SpoolDir, sname)
			return false
		}
	}
	if !mb.sys.Sync(t, spool) {
		mb.sys.Close(t, spool)
		mb.sys.Delete(t, SpoolDir, sname)
		return false
	}
	mb.sys.Close(t, spool)
	for i := 0; i < nameAttempts; i++ {
		id := t.RandUint64(mb.cfg.RandBound)
		if mb.sys.Link(t, SpoolDir, sname, UserDir(user), MsgName(id)) {
			// BUG: no SyncDir(UserDir(user)) before acking — the link
			// may be lost at a crash after the client was told yes.
			mb.sys.Delete(t, SpoolDir, sname)
			return true
		}
	}
	mb.sys.Delete(t, SpoolDir, sname)
	return false
}

// DeleteNoBarrier is the recovery-trusts-cache bug's operational half:
// it acknowledges a delete straight from the directory cache, with no
// barrier after the unlink. A crash may then resurrect the entry —
// un-synced deletes are lost like any other un-synced directory
// operation — and recovery, which (correctly) trusts whatever
// directory entries survived the crash, re-serves the message the
// user was told was gone. The spec's Delete removed it, so the
// post-crash pickup has no linearization.
func (mb *Mailboat) DeleteNoBarrier(t gfs.T, user uint64, id string) bool {
	mb.checkUser(t, user)
	// BUG: no syncDirBarrier(UserDir(user)) before acking the unlink.
	return mb.sys.Delete(t, UserDir(user), id)
}

// RecoverReplaySpool is a recovery that tries to be helpful: instead of
// sweeping leftover spool files it *replays* them into user 0's
// mailbox, reasoning that a spool file left behind by a crash is a
// delivery the sender never got acknowledged for, so salvaging it can
// only help. It even dedups against already-published mailbox contents
// so a crash between link and spool-delete does not double-deliver.
//
// The flaw is torn appends: a crash mid-delivery may preserve any
// prefix of the spool file's unsynced tail. A *partial* prefix is not a
// message anyone sent, yet this recovery publishes it — a refinement
// violation the checker only finds because the buffered model
// enumerates torn crash states (§ DESIGN.md 4e). Losing the whole tail
// leaves an empty spool file (swept harmlessly), and preserving all of
// it replays exactly what a completed delivery would have published, so
// the bug is invisible without torn-append enumeration.
func RecoverReplaySpool(t gfs.T, sys gfs.System, cfg Config) *Mailboat {
	published := map[string]bool{}
	for u := uint64(0); u < cfg.Users; u++ {
		for _, name := range sys.List(t, UserDir(u)) {
			if data, ok := readWhole(t, sys, UserDir(u), name); ok {
				published[string(data)] = true
			}
		}
	}
	for _, name := range sys.List(t, SpoolDir) {
		data, ok := readWhole(t, sys, SpoolDir, name)
		if !ok {
			continue
		}
		if len(data) == 0 || published[string(data)] {
			sys.Delete(t, SpoolDir, name)
			continue
		}
		// BUG: data may be a torn prefix of a message, not a message.
		for i := 0; i < nameAttempts; i++ {
			id := t.RandUint64(cfg.RandBound)
			if sys.Link(t, SpoolDir, name, UserDir(0), MsgName(id)) {
				published[string(data)] = true
				sys.Delete(t, SpoolDir, name)
				break
			}
		}
	}
	return Init(t, nil, sys, cfg)
}
