package mailboat

import (
	"time"

	"repro/internal/obs"
)

// Metrics is the verified library's slice of the observability surface:
// spec-level operation outcomes rather than raw file-system calls
// (those belong to gfs.FSMetrics). Every method is nil-receiver-safe,
// so the library instruments itself unconditionally and scenarios that
// run under the model checker (Config.Metrics == nil) pay nothing — in
// particular no wall-clock reads, which keeps checker executions free
// of stray syscalls.
type Metrics struct {
	// Deliver protocol: attempts counts every spool-write-link round
	// (so attempts - committed - failed = retries still in flight),
	// retries counts rounds after the first, committed/failed are the
	// spec-level outcomes, and latency spans the whole retry loop.
	DeliverAttempts  *obs.Counter
	DeliverRetries   *obs.Counter
	DeliverCommitted *obs.Counter
	DeliverFailed    *obs.Counter
	DeliverSeconds   *obs.Histogram

	// Pickup: one count per Pickup call, plus the messages and bytes it
	// returned and the time it took (listing + chunked reads).
	Pickups        *obs.Counter
	PickupMessages *obs.Counter
	PickupBytes    *obs.Counter
	PickupSeconds  *obs.Histogram

	// Delete outcomes (a false Delete is the spec's transient refusal).
	Deletes      *obs.Counter
	DeleteFailed *obs.Counter

	// Recovery: runs and the spool entries cleaned up (§8.3's TmpInv
	// made measurable: how much half-delivered garbage each crash left,
	// and how many bytes sweeping it returned to the store).
	Recoveries            *obs.Counter
	RecoverSpoolSwept     *obs.Counter
	RecoverSweepFailed    *obs.Counter
	RecoverReclaimedBytes *obs.Counter

	// Quota: deliveries refused up front because the recipient's mailbox
	// is at its Config.QuotaBytes budget.
	QuotaRejected *obs.Counter
}

// NewMetrics registers the library's metric families in r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		DeliverAttempts:  r.Counter("mailboat_deliver_attempts_total", "Spool-write-link delivery attempts (including retries)."),
		DeliverRetries:   r.Counter("mailboat_deliver_retries_total", "Delivery attempts after the first, per Deliver call."),
		DeliverCommitted: r.Counter("mailboat_deliver_committed_total", "Deliveries committed (message visible in the mailbox)."),
		DeliverFailed:    r.Counter("mailboat_deliver_failed_total", "Deliveries that exhausted retries and reported transient failure."),
		DeliverSeconds:   r.Histogram("mailboat_deliver_seconds", "Deliver latency including retries and backoff.", obs.DefLatencyBuckets),
		Pickups:          r.Counter("mailboat_pickup_total", "Pickup calls (mailbox listings plus reads)."),
		PickupMessages:   r.Counter("mailboat_pickup_messages_total", "Messages returned by Pickup."),
		PickupBytes:      r.Counter("mailboat_pickup_bytes_total", "Message bytes returned by Pickup."),
		PickupSeconds:    r.Histogram("mailboat_pickup_seconds", "Pickup latency (listing plus chunked reads).", obs.DefLatencyBuckets),
		Deletes:          r.Counter("mailboat_delete_total", "Delete calls that removed the message."),
		DeleteFailed:     r.Counter("mailboat_delete_failed_total", "Delete calls transiently refused by the store."),
		Recoveries:       r.Counter("mailboat_recover_total", "Recovery runs (boot and post-crash)."),
		RecoverSpoolSwept: r.Counter("mailboat_recover_spool_swept_total",
			"Leftover spool files removed by recovery (half-finished deliveries)."),
		RecoverSweepFailed: r.Counter("mailboat_recover_spool_sweep_failed_total",
			"Spool files recovery could not remove (transient delete failures)."),
		RecoverReclaimedBytes: r.Counter("mailboat_gc_reclaimed_bytes_total",
			"Bytes returned to the store by recovery's orphan-spool sweep."),
		QuotaRejected: r.Counter("mailboat_quota_rejections_total",
			"Deliveries refused up front because the recipient is over quota."),
	}
}

// start returns a timestamp when metrics are enabled, the zero time
// otherwise; obs histograms ignore zero starts, so call sites need no
// second branch.
func (m *Metrics) start() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

// observeDeliver records one finished Deliver call.
func (m *Metrics) observeDeliver(start time.Time, attempts int, committed bool) {
	if m == nil {
		return
	}
	m.DeliverAttempts.Add(uint64(attempts))
	if attempts > 1 {
		m.DeliverRetries.Add(uint64(attempts - 1))
	}
	if committed {
		m.DeliverCommitted.Inc()
	} else {
		m.DeliverFailed.Inc()
	}
	m.DeliverSeconds.ObserveSince(start)
}

// observePickup records one finished Pickup call.
func (m *Metrics) observePickup(start time.Time, msgs []Message) {
	if m == nil {
		return
	}
	m.Pickups.Inc()
	m.PickupMessages.Add(uint64(len(msgs)))
	var bytes uint64
	for _, msg := range msgs {
		bytes += uint64(len(msg.Contents))
	}
	m.PickupBytes.Add(bytes)
	m.PickupSeconds.ObserveSince(start)
}

// observeDelete records one Delete outcome.
func (m *Metrics) observeDelete(ok bool) {
	if m == nil {
		return
	}
	if ok {
		m.Deletes.Inc()
	} else {
		m.DeleteFailed.Inc()
	}
}

// observeRecover records one recovery run and its spool sweep tallies.
func (m *Metrics) observeRecover(swept, failed int, reclaimed uint64) {
	if m == nil {
		return
	}
	m.Recoveries.Inc()
	m.RecoverSpoolSwept.Add(uint64(swept))
	m.RecoverSweepFailed.Add(uint64(failed))
	m.RecoverReclaimedBytes.Add(reclaimed)
}

// observeQuotaRejected records one up-front quota refusal.
func (m *Metrics) observeQuotaRejected() {
	if m == nil {
		return
	}
	m.QuotaRejected.Inc()
}
