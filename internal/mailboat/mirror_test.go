package mailboat

import (
	"testing"

	"repro/internal/explore"
)

// These tests check the Mailboat spec on the mirrored store under
// *permanent* (fail-stop) replica faults: each replica's model sits
// behind a gfs.Faulty whose chooser-driven policy lets the explorer
// kill either replica at any file-system operation (budget one death
// per execution). Reads must fail over, acked deliveries must survive
// on the other replica, and — once a crash triggers recovery — the
// resilver must restore byte-identical redundancy. This is the repo's
// first availability property: the replicated-disk example's failover
// argument (§4 of the paper) replayed on the full mail server.

func TestMirroredVerifiedReplicaDeathExhaustive(t *testing.T) {
	s := Scenario("mb-mirror-death", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 2},
		Delivers:    []OpDeliver{{User: 0, Msg: "m"}},
		PostPickups: true,
		Mirror:      true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 200000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation under replica death:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
}

// TestMirroredVerifiedDeathAndCrashCombined is the headline
// availability check: crash points AND a permanent replica death
// enumerated together. Every crash runs recovery, which replaces the
// dead replica and resilvers it from the survivor; the between-era
// invariant then demands full redundancy (not degraded, replicas
// byte-identical) on top of the usual refinement of the spec.
func TestMirroredVerifiedDeathAndCrashCombined(t *testing.T) {
	s := Scenario("mb-mirror-death+crash", VariantVerified, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 3},
		Delivers:    []OpDeliver{{User: 0, Msg: "a"}, {User: 0, Msg: "b"}},
		MaxCrashes:  1,
		PostPickups: true,
		Mirror:      true,
	})
	budget := 60000
	if testing.Short() {
		budget = 10000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation under replica death + crash:\n%s", rep.Counterexample.Format())
	}
	if rep.CrashedExecutions == 0 {
		t.Fatal("no crash explored")
	}
}

// TestBugRecoverSkipResilverCaught seeds the no-resilver mutation: a
// recovery that swaps in the replacement replica but forgets to repair
// it. The checker must find a counterexample (the replacement either
// serves stale reads or leaves the mirror flagged degraded with both
// replicas live), and the counterexample must replay and minimize.
func TestBugRecoverSkipResilverCaught(t *testing.T) {
	s := Scenario("mb-mirror-no-resilver", VariantRecoverNoResilver, ScenarioOptions{
		Config:      Config{Users: 1, RandBound: 3},
		Delivers:    []OpDeliver{{User: 0, Msg: "a"}},
		MaxCrashes:  1,
		PostPickups: true,
		Mirror:      true,
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 60000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("skipped resilver not caught")
	}
	t.Logf("counterexample:\n%s", rep.Counterexample.Format())

	// The counterexample must be replayable (perennial-check -replay).
	cx := explore.ReplayCx(s, rep.Counterexample.Choices)
	if cx == nil {
		t.Fatal("counterexample did not replay")
	}
	short := explore.Minimize(s, rep.Counterexample.Choices)
	if len(short) > len(rep.Counterexample.Choices) {
		t.Fatalf("minimize grew the schedule: %d -> %d",
			len(rep.Counterexample.Choices), len(short))
	}
	if explore.ReplayCx(s, short) == nil {
		t.Fatal("minimized counterexample did not replay")
	}
}
