package loc

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, contents string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCountFileClassifiesLines(t *testing.T) {
	dir := t.TempDir()
	path := writeFile(t, dir, "x.go", `// package comment
package x

/* block
comment */
func F() int {
	return 1 // trailing comments count as code
}
`)
	c, err := CountFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Code != 4 {
		t.Errorf("code=%d want 4", c.Code)
	}
	if c.Comments != 3 {
		t.Errorf("comments=%d want 3", c.Comments)
	}
	if c.Blank != 1 {
		t.Errorf("blank=%d want 1", c.Blank)
	}
	if c.Total() != 8 {
		t.Errorf("total=%d want 8", c.Total())
	}
}

func TestCountDirSkipsTestsWhenAsked(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.go", "package x\nfunc A() {}\n")
	writeFile(t, dir, "a_test.go", "package x\nfunc TestA() {}\nvar pad int\n")

	noTests, err := CountDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	withTests, err := CountDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if noTests.Code != 2 {
		t.Errorf("noTests.Code=%d", noTests.Code)
	}
	if withTests.Code != 5 {
		t.Errorf("withTests.Code=%d", withTests.Code)
	}
	if noTests.Files != 1 || withTests.Files != 2 {
		t.Errorf("files: %d, %d", noTests.Files, withTests.Files)
	}
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/loc -> repo root
}

func TestTable2AgainstThisRepo(t *testing.T) {
	rows, err := Table2(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Measured <= 0 {
			t.Errorf("%s measured %d", r.Name, r.Measured)
		}
		if r.Paper <= 0 {
			t.Errorf("%s has no paper number", r.Name)
		}
	}
}

func TestTable3AgainstThisRepo(t *testing.T) {
	rows, err := Table3(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		if r.Measured <= 0 {
			t.Errorf("%s measured %d", r.Name, r.Measured)
		}
	}
}

func TestTable4AgainstThisRepo(t *testing.T) {
	rows, err := Table4(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// The proof-analog row must be the test/scenario effort, strictly
	// positive and separate from the implementation.
	if rows[1].Measured <= 0 {
		t.Errorf("proof-analog row: %d", rows[1].Measured)
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable("Table X", []Row{
		{Name: "thing", Measured: 42, Paper: 40, Note: "close"},
		{Name: "other", Measured: 7},
	})
	for _, want := range []string{"Table X", "thing", "42", "40", "close", "other", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestInventoryListsPackagesShallow(t *testing.T) {
	rows, err := Inventory(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// The machine package exists with both code and tests.
	m, ok := byName["internal/machine"]
	if !ok {
		t.Fatalf("internal/machine missing from inventory: %v", rows)
	}
	if m.Measured <= 0 || !strings.Contains(m.Note, "test lines") {
		t.Fatalf("machine row: %+v", m)
	}
	// Shallow: internal/examples itself has no .go files, so it must not
	// appear; its children must.
	if _, ok := byName["internal/examples"]; ok {
		t.Fatal("non-package directory listed")
	}
	if _, ok := byName["internal/examples/wal"]; !ok {
		t.Fatal("internal/examples/wal missing")
	}
}
