// Package loc counts lines of code, reproducing the methodology behind
// the paper's effort tables (Tables 2, 3, and 4): per-component
// non-blank, non-comment line counts. The tables in the paper are
// regenerated from *this* repository's components by cmd/locstats and
// the corresponding benchmarks, with the paper's original numbers shown
// alongside for comparison.
package loc

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Count is one component's line counts.
type Count struct {
	Files    int
	Code     int // non-blank, non-comment lines
	Comments int
	Blank    int
}

// Total returns all physical lines.
func (c Count) Total() int { return c.Code + c.Comments + c.Blank }

// Add accumulates another count.
func (c *Count) Add(o Count) {
	c.Files += o.Files
	c.Code += o.Code
	c.Comments += o.Comments
	c.Blank += o.Blank
}

// CountFile counts one Go source file, classifying //-comment lines,
// /* */ block comment lines, blank lines, and code.
func CountFile(path string) (Count, error) {
	f, err := os.Open(path)
	if err != nil {
		return Count{}, err
	}
	defer f.Close()

	c := Count{Files: 1}
	inBlock := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case inBlock:
			c.Comments++
			if strings.Contains(line, "*/") {
				inBlock = false
			}
		case line == "":
			c.Blank++
		case strings.HasPrefix(line, "//"):
			c.Comments++
		case strings.HasPrefix(line, "/*"):
			c.Comments++
			if !strings.Contains(line[2:], "*/") {
				inBlock = true
			}
		default:
			c.Code++
		}
	}
	return c, sc.Err()
}

// CountDir counts all .go files under dir. includeTests selects whether
// _test.go files are included.
func CountDir(dir string, includeTests bool) (Count, error) {
	var total Count
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		if !includeTests && strings.HasSuffix(path, "_test.go") {
			return nil
		}
		c, err := CountFile(path)
		if err != nil {
			return err
		}
		total.Add(c)
		return nil
	})
	return total, err
}

// Component names a set of directories and/or individual files counted
// together.
type Component struct {
	Name         string
	Dirs         []string
	Files        []string
	IncludeTests bool
}

// Row is one measured component with the paper's corresponding number
// for side-by-side presentation.
type Row struct {
	Name     string
	Measured int
	Paper    int // 0 = the paper reports no number for this row
	Note     string
}

// Measure counts each component relative to root.
func Measure(root string, comps []Component) ([]Row, error) {
	var rows []Row
	for _, comp := range comps {
		var total Count
		for _, d := range comp.Dirs {
			c, err := CountDir(filepath.Join(root, d), comp.IncludeTests)
			if err != nil {
				return nil, fmt.Errorf("loc: %s: %w", comp.Name, err)
			}
			total.Add(c)
		}
		for _, f := range comp.Files {
			c, err := CountFile(filepath.Join(root, f))
			if err != nil {
				return nil, fmt.Errorf("loc: %s: %w", comp.Name, err)
			}
			total.Add(c)
		}
		rows = append(rows, Row{Name: comp.Name, Measured: total.Code})
	}
	return rows, nil
}

// FormatTable renders rows as an aligned two- or three-column table.
func FormatTable(title string, rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-38s %10s %12s\n", "Component", "This repo", "Paper")
	for _, r := range rows {
		paper := "-"
		if r.Paper > 0 {
			paper = fmt.Sprintf("%d", r.Paper)
		}
		fmt.Fprintf(&b, "%-38s %10d %12s", r.Name, r.Measured, paper)
		if r.Note != "" {
			fmt.Fprintf(&b, "  (%s)", r.Note)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Inventory counts every Go package directory under root, split into
// non-test and test lines — the repository's own system inventory.
func Inventory(root string) ([]Row, error) {
	var rows []Row
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		if seen[dir] {
			return nil
		}
		seen[dir] = true
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			rel = dir
		}
		code, all, err := countShallow(dir)
		if err != nil {
			return err
		}
		rows = append(rows, Row{
			Name:     rel,
			Measured: code.Code,
			Note:     fmt.Sprintf("+%d test lines", all.Code-code.Code),
		})
		_ = all
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	return rows, nil
}

// countShallow counts only the .go files directly in dir, returning the
// non-test and with-test counts.
func countShallow(dir string) (code, all Count, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Count{}, Count{}, err
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		c, err := CountFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return Count{}, Count{}, err
		}
		all.Add(c)
		if !strings.HasSuffix(e.Name(), "_test.go") {
			code.Add(c)
		}
	}
	return code, all, nil
}

// Table2 maps this repository's components onto the paper's Table 2
// (lines of code for Perennial and Goose).
func Table2(root string) ([]Row, error) {
	rows, err := Measure(root, []Component{
		{Name: "Transition system language", Dirs: []string{"internal/tsl", "internal/spec"}},
		{Name: "Core framework", Dirs: []string{"internal/core", "internal/history", "internal/explore", "internal/machine"}},
		{Name: "Goose translator (Go)", Dirs: []string{"internal/goose"}},
		{Name: "Goose library (Go)", Dirs: []string{"internal/gfs"}},
		{Name: "Go semantics", Dirs: []string{"internal/machine", "internal/disk"}},
	})
	if err != nil {
		return nil, err
	}
	paper := []int{1710, 7220, 1790, 220, 2020}
	notes := []string{
		"spec DSL + checker interface",
		"capability runtime + refinement checker + modeled machine",
		"subset checker + Coq-model emitter",
		"modeled + OS file system",
		"machine & disk models (shared with core framework)",
	}
	for i := range rows {
		rows[i].Paper = paper[i]
		rows[i].Note = notes[i]
	}
	return rows, nil
}

// Table3 maps the crash-safety pattern examples onto the paper's
// Table 3 (lines of code per verified example).
func Table3(root string) ([]Row, error) {
	rows, err := Measure(root, []Component{
		{Name: "Two-disk semantics", Dirs: []string{"internal/disk"}},
		{Name: "Replicated disk", Dirs: []string{"internal/examples/replicateddisk"}},
		{Name: "Single-disk semantics", Dirs: []string{"internal/disk"}},
		{Name: "Shadow copy", Dirs: []string{"internal/examples/shadowcopy"}},
		{Name: "Write-ahead logging", Dirs: []string{"internal/examples/wal"}},
		{Name: "Group commit", Dirs: []string{"internal/examples/groupcommit"}},
	})
	if err != nil {
		return nil, err
	}
	paper := []int{1350, 1180, 1310, 390, 930, 1410}
	for i := range rows {
		rows[i].Paper = paper[i]
	}
	rows[0].Note = "one disk model serves both semantics here"
	rows[2].Note = "same module as the two-disk semantics"
	return rows, nil
}

// Table4 maps the mail-server effort comparison onto the paper's
// Table 4 (Mailboat vs CMAIL lines of code).
func Table4(root string) ([]Row, error) {
	rows, err := Measure(root, []Component{
		{Name: "Implementation (Mailboat)", Files: []string{"internal/mailboat/mailboat.go"}},
		{Name: "Proof-analog (spec+scenarios+tests)", Dirs: []string{"internal/mailboat"}, IncludeTests: true},
		{Name: "Framework", Dirs: []string{
			"internal/tsl", "internal/spec", "internal/core",
			"internal/history", "internal/explore", "internal/machine",
		}},
	})
	if err != nil {
		return nil, err
	}
	// Subtract the implementation (and the seeded-bug variants, which
	// are neither implementation nor proof) from the everything count so
	// the second row is the specification/checking effort alone.
	bugs, err := CountFile(filepath.Join(root, "internal/mailboat/bugs.go"))
	if err != nil {
		return nil, err
	}
	rows[1].Measured -= rows[0].Measured + bugs.Code
	rows[0].Paper = 159
	rows[0].Note = "paper: 159 Go / CMAIL 215 Coq"
	rows[1].Paper = 3360
	rows[1].Note = "paper: 3360 proof / CMAIL 4050"
	rows[2].Paper = 8900
	rows[2].Note = "paper: Perennial 8900 / CSPEC 9600"
	return rows, nil
}
