package journal

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/explore"
	"repro/internal/machine"
)

func TestSpecCommitAppliesAllWrites(t *testing.T) {
	sp := Spec(4)
	st := sp.Init()
	next, ub := sp.Step(st, OpCommit{Writes: []Write{{A: 1, V: 5}, {A: 3, V: 7}}}, nil)
	if ub || len(next) != 1 {
		t.Fatalf("commit: %v %v", next, ub)
	}
	st = next[0]
	if n, _ := sp.Step(st, OpRead{A: 1}, uint64(5)); len(n) != 1 {
		t.Fatal("read of committed value rejected")
	}
	if n, _ := sp.Step(st, OpRead{A: 2}, uint64(0)); len(n) != 1 {
		t.Fatal("untouched block changed")
	}
}

func TestSpecDuplicateAddressLastWins(t *testing.T) {
	sp := Spec(2)
	next, _ := sp.Step(sp.Init(), OpCommit{Writes: []Write{{A: 0, V: 1}, {A: 0, V: 2}}}, nil)
	if next[0].(State).Blocks[0] != 2 {
		t.Fatalf("state=%v", next[0])
	}
}

func TestSpecOutOfBoundsAndOversizeAreUB(t *testing.T) {
	sp := Spec(2)
	if _, ub := sp.Step(sp.Init(), OpCommit{Writes: []Write{{A: 9, V: 1}}}, nil); !ub {
		t.Fatal("out-of-bounds commit not UB")
	}
	big := make([]Write, MaxTxnWrites+1)
	if _, ub := sp.Step(sp.Init(), OpCommit{Writes: big}, nil); !ub {
		t.Fatal("oversize commit not UB")
	}
	if _, ub := sp.Step(sp.Init(), OpCommit{}, nil); !ub {
		t.Fatal("empty commit not UB")
	}
}

func TestTxnReadYourOwnWrites(t *testing.T) {
	m := machine.New(machine.Options{})
	d := disk.New(m, "jd", DiskBlocks(4), false)
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		j := New(mt, nil, d, 4)
		tx := j.Begin(mt)
		if got := tx.Read(mt, 2); got != 0 {
			mt.Failf("fresh read %d", got)
		}
		tx.Write(mt, 2, 9)
		tx.Write(mt, 2, 11)
		if got := tx.Read(mt, 2); got != 11 {
			mt.Failf("own-write read %d", got)
		}
		tx.Commit(mt, nil)
		if got := j.ReadBlock(mt, nil, 2); got != 11 {
			mt.Failf("post-commit read %d", got)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestAbortDiscardsWrites(t *testing.T) {
	m := machine.New(machine.Options{})
	d := disk.New(m, "jd", DiskBlocks(2), false)
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		j := New(mt, nil, d, 2)
		tx := j.Begin(mt)
		tx.Write(mt, 0, 5)
		tx.Abort(mt)
		if got := j.ReadBlock(mt, nil, 0); got != 0 {
			mt.Failf("aborted write visible: %d", got)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestVerifiedSingleTxnCrashExhaustive(t *testing.T) {
	s := Scenario("j-crash", VariantVerified, ScenarioOptions{
		Size:       2,
		Txns:       [][]Write{{{A: 0, V: 1}, {A: 1, V: 2}}},
		MaxCrashes: 2, // incl. a crash during recovery (idempotence)
		PostReads:  []uint64{0, 1},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
	if rep.CrashedExecutions == 0 {
		t.Fatal("no crash explored")
	}
}

func TestVerifiedConcurrentTxnsWithReader(t *testing.T) {
	s := Scenario("j-conc", VariantVerified, ScenarioOptions{
		Size:       2,
		Txns:       [][]Write{{{A: 0, V: 1}}, {{A: 0, V: 2}, {A: 1, V: 3}}},
		Readers:    []uint64{0},
		MaxCrashes: 1,
		PostReads:  []uint64{0, 1},
	})
	budget := 25000
	if testing.Short() {
		budget = 5000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestVerifiedMaxSizeTxn(t *testing.T) {
	ws := make([]Write, MaxTxnWrites)
	for i := range ws {
		ws[i] = Write{A: uint64(i), V: uint64(i + 10)}
	}
	s := Scenario("j-max", VariantVerified, ScenarioOptions{
		Size:       MaxTxnWrites,
		Txns:       [][]Write{ws},
		MaxCrashes: 1,
		PostReads:  []uint64{0, 1, 2, 3},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestBugNoLogTornCommitFound(t *testing.T) {
	s := Scenario("j-bug-nolog", VariantNoLog, ScenarioOptions{
		Size:       2,
		Txns:       [][]Write{{{A: 0, V: 1}, {A: 1, V: 2}}},
		MaxCrashes: 1,
		PostReads:  []uint64{0, 1},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("torn unlogged commit not found")
	}
}

func TestBugRecoverSkipFound(t *testing.T) {
	s := Scenario("j-bug-skip", VariantRecoverSkip, ScenarioOptions{
		Size:       2,
		Txns:       [][]Write{{{A: 0, V: 1}, {A: 1, V: 2}}},
		MaxCrashes: 1,
		PostReads:  []uint64{0, 1},
	})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("skip-redo recovery bug not found")
	}
}

// TestQuickSequentialTxnsMatchSpec runs random transaction batches
// sequentially (no crashes) and compares the journal's final data
// region against the spec applied to the same batches.
func TestQuickSequentialTxnsMatchSpec(t *testing.T) {
	const size = 4
	err := quick.Check(func(raw [][3]uint8) bool {
		// Decode into transactions of 1-2 writes each.
		var txns [][]Write
		for _, r := range raw {
			n := int(r[0]%2) + 1
			ws := make([]Write, 0, n)
			for k := 0; k < n; k++ {
				ws = append(ws, Write{A: uint64(r[1+k]) % size, V: uint64(r[1+k])})
			}
			txns = append(txns, ws)
		}
		if len(txns) > 6 {
			txns = txns[:6]
		}

		// Spec side.
		want := make([]uint64, size)
		for _, ws := range txns {
			for _, w := range ws {
				want[w.A] = w.V
			}
		}

		// Implementation side.
		m := machine.New(machine.Options{MaxSteps: 100000})
		d := disk.New(m, "jd", DiskBlocks(size), false)
		ok := true
		res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
			j := New(mt, nil, d, size)
			for _, ws := range txns {
				tx := j.Begin(mt)
				for _, w := range ws {
					tx.Write(mt, w.A, w.V)
				}
				tx.Commit(mt, nil)
			}
			for a := uint64(0); a < size; a++ {
				if j.ReadBlock(mt, nil, a) != want[a] {
					ok = false
				}
			}
		})
		return res.Outcome == machine.Done && ok
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickRecoveryIdempotent crashes at a fixed point after commit and
// runs recovery a random number of times; the final state must always
// reflect the committed transaction.
func TestQuickRecoveryIdempotent(t *testing.T) {
	err := quick.Check(func(recoveries uint8, v1, v2 uint64) bool {
		m := machine.New(machine.Options{MaxSteps: 100000})
		d := disk.New(m, "jd", DiskBlocks(2), false)
		g := core.NewCtx(m)
		sp := Spec(2)
		g.InitSim(sp, sp.Init())

		var j *Journal
		m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
			j = New(mt, g, d, 2)
		})

		// Run the txn up to just after the header write, then crash.
		steps := 0
		ch := machine.ChooserFunc(func(n int, tag string) int {
			if tag != "sched" {
				return 0
			}
			steps++
			if steps > 7 { // begin + 4 log writes + header... crash soon after commit
				return n - 1
			}
			return 0
		})
		m.RunEra(ch, true, func(mt *machine.T) {
			tx := j.Begin(mt)
			tx.Write(mt, 0, v1)
			tx.Write(mt, 1, v2)
			jt := g.NewJTok(OpCommit{Writes: []Write{{A: 0, V: v1}, {A: 1, V: v2}}})
			tx.Commit(mt, jt)
			g.FinishOp(mt, jt, nil)
		})

		n := int(recoveries%3) + 1
		for i := 0; i < n; i++ {
			m.CrashReset()
			res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
				j = Recover(mt, j)
			})
			if res.Outcome != machine.Done {
				return false
			}
		}
		// Header clear, and data either fully old or fully new.
		if d.Peek(addrHeader) != 0 {
			return false
		}
		d0, d1 := d.Peek(dataBase()), d.Peek(dataBase()+1)
		newBoth := d0 == v1 && d1 == v2
		oldBoth := d0 == 0 && d1 == 0
		return newBoth || oldBoth
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}
