package journal

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/explore"
	"repro/internal/machine"
	"repro/internal/spec"
)

// World carries the durable and ghost state across eras.
type World struct {
	G *core.Ctx
	D *disk.Disk
	J *Journal
}

// Variant selects the implementation under check.
type Variant int

const (
	// VariantVerified is the ghost-annotated journal.
	VariantVerified Variant = iota
	// VariantNoLog applies transactions in place without logging (buggy:
	// torn multi-address commits).
	VariantNoLog
	// VariantRecoverSkip reboots without redoing the log (buggy:
	// committed-but-unapplied transactions tear).
	VariantRecoverSkip
)

// ScenarioOptions shapes the workload.
type ScenarioOptions struct {
	// Size is the data region size in blocks.
	Size uint64
	// Txns spawns one committing transaction per entry.
	Txns [][]Write
	// Readers spawns one point reader per listed address.
	Readers []uint64
	// MaxCrashes bounds injected crashes.
	MaxCrashes int
	// PostReads reads back these addresses at the end.
	PostReads []uint64
}

// commitNoLog is the buggy variant: write the data region directly.
func commitNoLog(t *machine.T, j *Journal, ws []Write) {
	j.lock.Acquire(t)
	for _, w := range ws {
		j.d.Write(t, dataBase()+w.A, w.V)
	}
	j.lock.Release(t)
}

// recoverSkip is the buggy recovery: clear the header without redoing.
func recoverSkip(t *machine.T, old *Journal) *Journal {
	j := &Journal{size: old.size, d: old.d}
	j.lock = machine.NewLock(t, "journal")
	j.d.Write(t, addrHeader, 0)
	return j
}

// Scenario builds the checkable scenario for the chosen variant.
func Scenario(name string, v Variant, o ScenarioOptions) *explore.Scenario {
	ghost := v == VariantVerified
	sp := Spec(o.Size)

	commit := func(t *machine.T, w *World, h *explore.Harness, ws []Write) {
		op := OpCommit{Writes: ws}
		h.Op(op, func() spec.Ret {
			if v == VariantNoLog {
				commitNoLog(t, w.J, ws)
				return nil
			}
			tx := w.J.Begin(t)
			for _, wr := range ws {
				tx.Write(t, wr.A, wr.V)
			}
			var jt *core.JTok
			if ghost {
				jt = w.G.NewJTok(op)
			}
			tx.Commit(t, jt)
			if ghost {
				w.G.FinishOp(t, jt, nil)
			}
			return nil
		})
	}
	read := func(t *machine.T, w *World, h *explore.Harness, a uint64) {
		op := OpRead{A: a}
		h.Op(op, func() spec.Ret {
			if ghost {
				jt := w.G.NewJTok(op)
				got := w.J.ReadBlock(t, jt, a)
				w.G.FinishOp(t, jt, got)
				return got
			}
			return w.J.ReadBlock(t, nil, a)
		})
	}

	s := &explore.Scenario{
		Name:        name,
		Spec:        sp,
		MachineOpts: machine.Options{MaxSteps: 5000},
		MaxCrashes:  o.MaxCrashes,
		Setup: func(m *machine.Machine) any {
			w := &World{}
			w.D = disk.New(m, "jd", DiskBlocks(o.Size), false)
			if ghost {
				w.G = core.NewCtx(m)
				w.G.InitSim(sp, sp.Init())
			}
			return w
		},
		Init: func(t *machine.T, wAny any) {
			w := wAny.(*World)
			w.J = New(t, w.G, w.D, o.Size)
		},
		Main: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*World)
			for _, ws := range o.Txns {
				ws := ws
				t.Go(func(c *machine.T) { commit(c, w, h, ws) })
			}
			for _, a := range o.Readers {
				a := a
				t.Go(func(c *machine.T) { read(c, w, h, a) })
			}
		},
		Recover: func(t *machine.T, wAny any) {
			w := wAny.(*World)
			if v == VariantRecoverSkip {
				w.J = recoverSkip(t, w.J)
			} else {
				w.J = Recover(t, w.J)
			}
		},
		Post: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*World)
			for _, a := range o.PostReads {
				read(t, w, h, a)
			}
		},
	}

	if ghost {
		s.Invariant = func(m *machine.Machine, wAny any) error {
			w := wAny.(*World)
			if w.G.CrashPending() {
				return fmt.Errorf("spec crash step still owed")
			}
			if hdr := w.D.Peek(addrHeader); hdr != 0 {
				return fmt.Errorf("log header still set (%d) at an era boundary", hdr)
			}
			src := w.G.Source().(State)
			for a := uint64(0); a < o.Size; a++ {
				if got := w.D.Peek(dataBase() + a); got != src.Blocks[a] {
					return fmt.Errorf("AbsR: data[%d]=%d but source says %d", a, got, src.Blocks[a])
				}
			}
			return nil
		}
	}
	// All crash-surviving state lives in fingerprintable devices (the
	// disks and the ghost Ctx), so the scenario opts into crash-boundary
	// dedup with an identity hook (DESIGN.md §5).
	s.Fingerprint = func(_ any, b []byte) []byte { return b }
	return s
}
