// Package journal generalizes the write-ahead-log pattern of
// internal/examples/wal from a fixed pair of blocks to a transactional
// disk: transactions buffer writes to arbitrary addresses and commit
// atomically through an on-disk log. This is the direction the
// Perennial line of work took after the paper (the GoJournal journaling
// system); here it serves as a reusable substrate verified with the
// same machinery as the paper's examples.
//
// Disk layout, for a data region of Size blocks and a log of at most
// MaxTxnWrites entries:
//
//	block 0:                 log header: number of committed entries
//	                         (0 = log empty)
//	blocks 1 .. 2E:          log entries, entry i at (1+2i, 2+2i) as
//	                         an (address, value) pair
//	blocks 2E+1 ...:         the data region (address a lives at
//	                         2E+1+a)
//
// Commit protocol (under the journal lock): write the entries, then
// write the header with the entry count — the commit point, performed
// with the transaction's j ⤇ op helping token deposited — then apply
// the entries to the data region and clear the header. Recovery redoes
// a committed-but-unapplied log, completing the crashed transaction on
// its thread's behalf (§5.4), and is idempotent under crashes during
// recovery (§5.5).
package journal

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/tsl"
)

// MaxTxnWrites bounds the writes in one transaction (the log area's
// capacity).
const MaxTxnWrites = 4

// DiskBlocks returns the total disk size needed for a data region of
// size blocks.
func DiskBlocks(size uint64) int { return 1 + 2*MaxTxnWrites + int(size) }

const (
	addrHeader = 0
	logBase    = 1
)

func dataBase() uint64 { return logBase + 2*MaxTxnWrites }

// Write is one (address, value) update inside a transaction.
type Write struct {
	A, V uint64
}

// State is the spec state: the logical data region.
type State struct {
	Blocks []uint64
}

func (s State) clone() State {
	n := State{Blocks: make([]uint64, len(s.Blocks))}
	copy(n.Blocks, s.Blocks)
	return n
}

// OpCommit atomically applies a batch of writes (later entries win on
// duplicate addresses, matching the apply order).
type OpCommit struct {
	Writes []Write
}

func (o OpCommit) String() string {
	var parts []string
	for _, w := range o.Writes {
		parts = append(parts, fmt.Sprintf("%d:=%d", w.A, w.V))
	}
	return "commit(" + strings.Join(parts, ",") + ")"
}

// OpRead reads one address.
type OpRead struct{ A uint64 }

func (o OpRead) String() string { return fmt.Sprintf("jread(%d)", o.A) }

// Spec is the transactional-disk specification: commits are atomic and
// durable, reads are linearizable, crashes lose nothing.
func Spec(size uint64) spec.Interface {
	return &spec.TSL[State]{
		SpecName: "journal",
		Initial:  State{Blocks: make([]uint64, size)},
		OpTransition: func(op spec.Op) tsl.Transition[State, spec.Ret] {
			switch o := op.(type) {
			case OpCommit:
				return tsl.If(func(s State) bool { return writesInBounds(o.Writes, uint64(len(s.Blocks))) },
					tsl.Then(
						tsl.Modify(func(s State) State {
							n := s.clone()
							for _, w := range o.Writes {
								n.Blocks[w.A] = w.V
							}
							return n
						}),
						tsl.Ret[State, spec.Ret](nil)),
					tsl.Undefined[State, spec.Ret]())
			case OpRead:
				return tsl.If(func(s State) bool { return o.A < uint64(len(s.Blocks)) },
					tsl.Gets(func(s State) spec.Ret { return s.Blocks[o.A] }),
					tsl.Undefined[State, spec.Ret]())
			default:
				panic(fmt.Sprintf("journal: unknown op %T", op))
			}
		},
		KeyOf: func(s State) string { return fmt.Sprintf("%v", s.Blocks) },
	}
}

func writesInBounds(ws []Write, size uint64) bool {
	if len(ws) == 0 || len(ws) > MaxTxnWrites {
		return false
	}
	for _, w := range ws {
		if w.A >= size {
			return false
		}
	}
	return true
}

// Journal is the per-era transactional disk.
type Journal struct {
	size uint64
	d    *disk.Disk
	lock *machine.Lock

	g       *core.Ctx
	masters []*core.Master // one per physical block
	leases  []*core.Lease
}

// New boots a journal over a fresh (zeroed) disk of DiskBlocks(size)
// blocks.
func New(t *machine.T, g *core.Ctx, d *disk.Disk, size uint64) *Journal {
	j := &Journal{size: size, d: d, g: g}
	j.lock = machine.NewLock(t, "journal")
	if g != nil {
		n := DiskBlocks(size)
		j.masters = make([]*core.Master, n)
		j.leases = make([]*core.Lease, n)
		for a := 0; a < n; a++ {
			j.masters[a], j.leases[a] = g.NewDurable(t, fmt.Sprintf("j[%d]", a), d.Peek(uint64(a)))
			g.DepositMaster(t, j.masters[a])
		}
	}
	return j
}

// write performs a physical block write together with its ghost update.
func (j *Journal) write(t *machine.T, a, v uint64, ghost func()) {
	j.d.Write(t, a, v)
	if j.g != nil {
		j.g.Update(t, j.masters[a], j.leases[a], v, nil)
	}
	if ghost != nil {
		ghost()
	}
}

// Txn is an open transaction: buffered writes, not yet visible.
type Txn struct {
	j      *Journal
	writes []Write
}

// Begin opens a transaction. Transactions are serialized by the journal
// lock, taken here and released by Commit or Abort.
func (j *Journal) Begin(t *machine.T) *Txn {
	j.lock.Acquire(t)
	return &Txn{j: j}
}

// Write buffers an update. Exceeding MaxTxnWrites or writing out of
// bounds is the caller's contract violation (undefined at the spec
// level); the implementation reports it eagerly.
func (tx *Txn) Write(t *machine.T, a, v uint64) {
	if a >= tx.j.size {
		t.Failf("journal: txn write out of bounds: %d (size %d)", a, tx.j.size)
	}
	if len(tx.writes) >= MaxTxnWrites {
		t.Failf("journal: txn exceeds %d writes", MaxTxnWrites)
	}
	tx.writes = append(tx.writes, Write{A: a, V: v})
}

// Read returns the transaction's view of address a: its own buffered
// write if any (latest wins), else the data region.
func (tx *Txn) Read(t *machine.T, a uint64) uint64 {
	if a >= tx.j.size {
		t.Failf("journal: txn read out of bounds: %d (size %d)", a, tx.j.size)
	}
	for i := len(tx.writes) - 1; i >= 0; i-- {
		if tx.writes[i].A == a {
			return tx.writes[i].V
		}
	}
	v, _ := tx.j.d.Read(t, dataBase()+a)
	return v
}

// Abort discards the transaction.
func (tx *Txn) Abort(t *machine.T) {
	tx.writes = nil
	tx.j.lock.Release(t)
}

// Commit makes the transaction durable and visible atomically: log the
// entries, commit by writing the header (with the j ⤇ op token
// deposited so recovery can complete a crashed commit), apply, clear.
// Empty transactions just release the lock.
func (tx *Txn) Commit(t *machine.T, jt *core.JTok) {
	j := tx.j
	if len(tx.writes) == 0 {
		// Nothing to do; an empty OpCommit is out of spec, so callers
		// record no operation for it.
		j.lock.Release(t)
		return
	}

	// Log the entries.
	for i, w := range tx.writes {
		j.write(t, logBase+2*uint64(i), w.A, nil)
		j.write(t, logBase+2*uint64(i)+1, w.V, nil)
	}

	// Commit point: header := count, with the helping token deposited
	// just before so a crash in the committed window is completable.
	if j.g != nil && jt != nil {
		j.g.DepositHelping(t, jt)
	}
	j.write(t, addrHeader, uint64(len(tx.writes)), nil)

	// Apply.
	for _, w := range tx.writes {
		j.write(t, dataBase()+w.A, w.V, nil)
	}

	// Clear the header; the spec step happens in the same atomic turn.
	j.d.Write(t, addrHeader, 0)
	if j.g != nil {
		j.g.Update(t, j.masters[addrHeader], j.leases[addrHeader], uint64(0), nil)
		if jt != nil {
			j.g.WithdrawHelping(t, jt)
			j.g.StepSim(t, jt, nil)
		}
	}
	tx.writes = nil
	j.lock.Release(t)
}

// ReadBlock is the journal's linearizable point read (outside any
// transaction).
func (j *Journal) ReadBlock(t *machine.T, jt *core.JTok, a uint64) uint64 {
	j.lock.Acquire(t)
	v, _ := j.d.Read(t, dataBase()+a)
	if j.g != nil {
		if want := j.leases[dataBase()+a].Value(t).(uint64); want != v {
			t.Failf("capability mismatch: j[%d]=%d but lease asserts %d", dataBase()+a, v, want)
		}
		if jt != nil {
			j.g.StepSim(t, jt, v)
		}
	}
	j.lock.Release(t)
	return v
}

// Recover reboots the journal: a nonzero header means some transaction
// committed but may not be fully applied, so recovery redoes the log
// (idempotent) and clears the header, helping the crashed transaction's
// token. It returns the rebooted journal.
func Recover(t *machine.T, old *Journal) *Journal {
	j := &Journal{size: old.size, d: old.d, g: old.g}
	j.lock = machine.NewLock(t, "journal")
	g := old.g
	if g != nil {
		n := DiskBlocks(old.size)
		j.masters = make([]*core.Master, n)
		j.leases = make([]*core.Lease, n)
		for a := 0; a < n; a++ {
			j.masters[a], j.leases[a] = old.masters[a].Resynthesize(t)
			g.DepositMaster(t, j.masters[a])
		}
	}

	count, _ := j.d.Read(t, addrHeader)
	if count > 0 && count <= MaxTxnWrites {
		// Re-read the committed entries.
		writes := make([]Write, 0, count)
		for i := uint64(0); i < count; i++ {
			a, _ := j.d.Read(t, logBase+2*i)
			v, _ := j.d.Read(t, logBase+2*i+1)
			writes = append(writes, Write{A: a, V: v})
		}
		// Redo.
		for _, w := range writes {
			j.d.Write(t, dataBase()+w.A, w.V)
			if g != nil {
				g.Update(t, j.masters[dataBase()+w.A], j.leases[dataBase()+w.A], w.V, nil)
			}
		}
		// Clear the header, helping the crashed commit ghost-atomically.
		j.d.Write(t, addrHeader, 0)
		if g != nil {
			helped := false
			for _, tok := range g.HelpingTokens() {
				if c, isC := tok.Op().(OpCommit); isC && sameWrites(c.Writes, writes) {
					g.Help(t, tok)
					helped = true
					break
				}
			}
			if !helped && !alreadyApplied(g, writes) {
				t.Failf("journal recovery found committed txn %v with no helping token", writes)
			}
			g.Update(t, j.masters[addrHeader], j.leases[addrHeader], uint64(0), nil)
		}
	} else if count > MaxTxnWrites {
		t.Failf("journal: corrupt log header %d", count)
	}

	if g != nil && g.CrashPending() {
		g.CrashSim(t)
	}
	return j
}

func sameWrites(a, b []Write) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// alreadyApplied reports whether the source already reflects the
// committed writes (an earlier recovery attempt helped the token and
// crashed before clearing the header... which cannot happen since the
// help and the clear share a turn, but kept as a defensive check).
func alreadyApplied(g *core.Ctx, writes []Write) bool {
	s, ok := g.Source().(State)
	if !ok {
		return false
	}
	for _, w := range writes {
		if w.A >= uint64(len(s.Blocks)) || s.Blocks[w.A] != w.V {
			return false
		}
	}
	return true
}
