package postal

import (
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/cmail"
	"repro/internal/gfs"
	"repro/internal/gomail"
	"repro/internal/mailboat"
	"repro/internal/trace"
)

// RAMDir returns a RAM-backed scratch directory when one is available
// (§9.3 runs on tmpfs "to keep disk performance from being the limiting
// factor"); it falls back to the default temp directory.
func RAMDir() string {
	for _, d := range []string{"/dev/shm", "/run/shm"} {
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d
		}
	}
	return os.TempDir()
}

// MailboatBackend adapts the verified Mailboat library (on the real
// file system via gfs.OS) to the postal workload.
type MailboatBackend struct {
	fs  *gfs.OS
	mb  *mailboat.Mailboat
	ths []*gfs.Native
}

// NewMailboatBackend builds a fresh store under root for the given
// worker count. Unless noFsync is set, the library runs with the full
// checked sync discipline (fsync spool data, fsync the mailbox
// directory before acking); noFsync is the honest fast mode whose
// weaker contract is prefix durability.
func NewMailboatBackend(root string, users uint64, workers int, seed int64, noFsync bool) (*MailboatBackend, error) {
	cfg := mailboat.Config{
		Users:         users,
		RandBound:     1 << 62,
		SyncOnDeliver: !noFsync,
		SyncDirs:      !noFsync,
	}
	fs, err := gfs.NewOS(root, mailboat.Dirs(cfg))
	if err != nil {
		return nil, err
	}
	b := &MailboatBackend{fs: fs}
	b.ths = make([]*gfs.Native, workers)
	for i := range b.ths {
		b.ths[i] = gfs.NewNative(seed + int64(i)*104729)
	}
	b.mb = mailboat.Init(b.ths[0], nil, fs, cfg)
	return b, nil
}

// Close releases cached directory handles.
func (b *MailboatBackend) Close() { b.fs.CloseAll() }

// SetWorkerSpan implements SpanCarrier: the worker's thread handle
// carries sp, so the library's stage spans nest under it.
func (b *MailboatBackend) SetWorkerSpan(w int, sp *trace.Span) {
	b.ths[w].SetTraceSpan(sp)
}

// Deliver implements Backend.
func (b *MailboatBackend) Deliver(w int, user uint64, msg []byte) error {
	b.mb.Deliver(b.ths[w], nil, user, msg)
	return nil
}

// Pickup implements Backend.
func (b *MailboatBackend) Pickup(w int, user uint64) ([]mailboat.Message, error) {
	return b.mb.Pickup(b.ths[w], nil, user), nil
}

// Delete implements Backend.
func (b *MailboatBackend) Delete(w int, user uint64, id string) error {
	b.mb.Delete(b.ths[w], nil, user, id)
	return nil
}

// Unlock implements Backend.
func (b *MailboatBackend) Unlock(w int, user uint64) {
	b.mb.Unlock(b.ths[w], nil, user)
}

// GoMailBackend adapts the GoMail baseline.
type GoMailBackend struct {
	s    *gomail.Server
	rngs []*rand.Rand
}

// NewGoMailBackend builds a fresh GoMail store under root.
func NewGoMailBackend(root string, users uint64, workers int, seed int64) (*GoMailBackend, error) {
	s, err := gomail.New(root, users)
	if err != nil {
		return nil, err
	}
	b := &GoMailBackend{s: s}
	b.rngs = make([]*rand.Rand, workers)
	for i := range b.rngs {
		b.rngs[i] = rand.New(rand.NewSource(seed + int64(i)*104729))
	}
	return b, nil
}

// Deliver implements Backend.
func (b *GoMailBackend) Deliver(w int, user uint64, msg []byte) error {
	return b.s.Deliver(b.rngs[w], user, msg)
}

// Pickup implements Backend.
func (b *GoMailBackend) Pickup(_ int, user uint64) ([]mailboat.Message, error) {
	return b.s.Pickup(user)
}

// Delete implements Backend.
func (b *GoMailBackend) Delete(_ int, user uint64, id string) error {
	return b.s.Delete(user, id)
}

// Unlock implements Backend.
func (b *GoMailBackend) Unlock(_ int, user uint64) { b.s.Unlock(user) }

// CMailBackend adapts the simulated-CMAIL baseline.
type CMailBackend struct {
	s    *cmail.Server
	rngs []*rand.Rand
}

// NewCMailBackend builds a fresh simulated-CMAIL store under root.
func NewCMailBackend(root string, users uint64, workers int, seed int64) (*CMailBackend, error) {
	s, err := cmail.New(root, users, 0)
	if err != nil {
		return nil, err
	}
	b := &CMailBackend{s: s}
	b.rngs = make([]*rand.Rand, workers)
	for i := range b.rngs {
		b.rngs[i] = rand.New(rand.NewSource(seed + int64(i)*104729))
	}
	return b, nil
}

// Deliver implements Backend.
func (b *CMailBackend) Deliver(w int, user uint64, msg []byte) error {
	return b.s.Deliver(b.rngs[w], user, msg)
}

// Pickup implements Backend.
func (b *CMailBackend) Pickup(_ int, user uint64) ([]mailboat.Message, error) {
	return b.s.Pickup(user)
}

// Delete implements Backend.
func (b *CMailBackend) Delete(_ int, user uint64, id string) error {
	return b.s.Delete(user, id)
}

// Unlock implements Backend.
func (b *CMailBackend) Unlock(_ int, user uint64) { b.s.Unlock(user) }

// NewBackend builds the named backend ("mailboat", "gomail", "cmail")
// under a fresh subdirectory of base. The mailboat backends run with
// durability barriers on (the checked sync discipline); use
// NewFastBackend for the -no-fsync mode.
func NewBackend(name, base string, users uint64, workers int, seed int64) (Backend, func(), error) {
	return newBackend(name, base, users, workers, seed, false)
}

// NewFastBackend is NewBackend with durability barriers disabled on
// the mailboat backends (mailbench -no-fsync): no spool fsync, no
// directory fsync, so an acked delivery may be rolled back by an OS
// crash — the checked contract weakens to prefix durability. The
// gomail and cmail baselines have their own durability story and
// ignore the knob.
func NewFastBackend(name, base string, users uint64, workers int, seed int64) (Backend, func(), error) {
	return newBackend(name, base, users, workers, seed, true)
}

func newBackend(name, base string, users uint64, workers int, seed int64, noFsync bool) (Backend, func(), error) {
	root, err := os.MkdirTemp(base, "mailbench-"+name+"-")
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() { os.RemoveAll(root) }
	switch name {
	case "mailboat-net":
		b, err := NewNetBackend(filepath.Join(root, "store"), users, workers, seed, noFsync)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		return b, func() { b.Close(); cleanup() }, nil
	case "mailboat":
		b, err := NewMailboatBackend(filepath.Join(root, "store"), users, workers, seed, noFsync)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		return b, func() { b.Close(); cleanup() }, nil
	case "gomail":
		b, err := NewGoMailBackend(filepath.Join(root, "store"), users, workers, seed)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		return b, cleanup, nil
	case "cmail":
		b, err := NewCMailBackend(filepath.Join(root, "store"), users, workers, seed)
		if err != nil {
			cleanup()
			return nil, nil, err
		}
		return b, cleanup, nil
	default:
		cleanup()
		return nil, nil, os.ErrNotExist
	}
}
