package postal

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"

	"repro/internal/mailboat"
	"repro/internal/mailboatd"
	"repro/internal/pop3"
	"repro/internal/smtp"
)

// NetBackend drives Mailboat through the real SMTP and POP3 protocol
// servers over loopback TCP — the path §9.3 deliberately excludes
// ("we simulated requests on the same machine to measure scalability
// without network overhead"). Comparing NetBackend against
// MailboatBackend quantifies exactly the overhead the paper set aside.
//
// Each worker keeps one persistent SMTP connection (reused across
// deliveries) and opens a fresh POP3 session per pickup, which is how
// the Postal tools behave.
type NetBackend struct {
	adapter *mailboatd.Adapter
	smtpSrv *smtp.Server
	popSrv  *pop3.Server
	smtpLn  net.Listener
	popLn   net.Listener

	smtpConns []*textConn
	sessions  []*popSession // per-worker POP3 session slots
}

type textConn struct {
	conn net.Conn
	r    *bufio.Reader
}

func dialText(addr string) (*textConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &textConn{conn: conn, r: bufio.NewReader(conn)}, nil
}

func (c *textConn) cmd(line, wantPrefix string) (string, error) {
	if line != "" {
		if _, err := fmt.Fprintf(c.conn, "%s\r\n", line); err != nil {
			return "", err
		}
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(resp, wantPrefix) {
		return resp, fmt.Errorf("postal: sent %q, got %q (want %q)", line, strings.TrimSpace(resp), wantPrefix)
	}
	return resp, nil
}

// NewNetBackend boots the store plus both protocol servers on loopback
// and pre-dials one SMTP connection per worker. noFsync selects the
// daemon's barrier-free fast mode (prefix durability only).
func NewNetBackend(root string, users uint64, workers int, seed int64, noFsync bool) (*NetBackend, error) {
	adapter, err := mailboatd.NewWithOptions(root, mailboatd.Options{
		Users:         users,
		Seed:          seed,
		SyncOnDeliver: !noFsync,
		SyncDirs:      !noFsync,
	})
	if err != nil {
		return nil, err
	}
	b := &NetBackend{adapter: adapter}

	b.smtpLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	b.smtpSrv = smtp.NewServer(adapter, users)
	go b.smtpSrv.Serve(b.smtpLn)

	b.popLn, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	b.popSrv = pop3.NewServer(adapter, users)
	go b.popSrv.Serve(b.popLn)

	b.sessions = make([]*popSession, workers)
	b.smtpConns = make([]*textConn, workers)
	for i := range b.smtpConns {
		c, err := dialText(b.smtpLn.Addr().String())
		if err != nil {
			return nil, err
		}
		if _, err := c.cmd("", "220"); err != nil {
			return nil, err
		}
		b.smtpConns[i] = c
	}
	return b, nil
}

// Close shuts the servers and connections down.
func (b *NetBackend) Close() {
	for _, c := range b.smtpConns {
		if c != nil {
			c.conn.Close()
		}
	}
	b.smtpSrv.Close()
	b.popSrv.Close()
	b.adapter.Close()
}

// Deliver implements Backend over SMTP.
func (b *NetBackend) Deliver(w int, user uint64, msg []byte) error {
	c := b.smtpConns[w]
	steps := []struct{ send, want string }{
		{"MAIL FROM:<postal@bench>", "250"},
		{fmt.Sprintf("RCPT TO:<user%d@bench>", user), "250"},
		{"DATA", "354"},
	}
	for _, st := range steps {
		if _, err := c.cmd(st.send, st.want); err != nil {
			return err
		}
	}
	// Dot-stuff the body. Compose terminates messages with a newline, so
	// trim it before splitting — otherwise the trailing empty element
	// would add a spurious blank line on the server side.
	var body strings.Builder
	for _, line := range strings.Split(strings.TrimSuffix(string(msg), "\n"), "\n") {
		if strings.HasPrefix(line, ".") {
			body.WriteString(".")
		}
		body.WriteString(line)
		body.WriteString("\r\n")
	}
	body.WriteString(".")
	_, err := c.cmd(body.String(), "250")
	return err
}

// popSession is one authenticated POP3 session's state, kept between
// Pickup and Unlock/Delete (POP3 applies deletes at QUIT).
type popSession struct {
	conn    *textConn
	deleted []int
	count   int
}

// Pickup implements Backend over POP3: USER/PASS + RETR of every
// message. Deletes are marked with DELE and applied by Unlock's QUIT.
func (b *NetBackend) Pickup(w int, user uint64) ([]mailboat.Message, error) {
	c, err := dialText(b.popLn.Addr().String())
	if err != nil {
		return nil, err
	}
	sess := &popSession{conn: c}
	b.sessions[w] = sess

	for _, st := range []struct{ send, want string }{
		{"", "+OK"},
		{fmt.Sprintf("USER user%d", user), "+OK"},
		{"PASS postal", "+OK"},
	} {
		if _, err := c.cmd(st.send, st.want); err != nil {
			c.conn.Close()
			return nil, err
		}
	}

	// UIDL for IDs, then RETR each.
	if _, err := c.cmd("UIDL", "+OK"); err != nil {
		c.conn.Close()
		return nil, err
	}
	type entry struct {
		n  int
		id string
	}
	var entries []entry
	for {
		line, err := c.r.ReadString('\n')
		if err != nil {
			c.conn.Close()
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "." {
			break
		}
		numStr, id, _ := strings.Cut(line, " ")
		n, err := strconv.Atoi(numStr)
		if err != nil {
			continue
		}
		entries = append(entries, entry{n: n, id: id})
	}

	msgs := make([]mailboat.Message, 0, len(entries))
	for _, e := range entries {
		if _, err := c.cmd(fmt.Sprintf("RETR %d", e.n), "+OK"); err != nil {
			c.conn.Close()
			return nil, err
		}
		var lines []string
		for {
			line, err := c.r.ReadString('\n')
			if err != nil {
				c.conn.Close()
				return nil, err
			}
			line = strings.TrimRight(line, "\r\n")
			if line == "." {
				break
			}
			lines = append(lines, strings.TrimPrefix(line, "."))
		}
		msgs = append(msgs, mailboat.Message{ID: e.id, Contents: strings.Join(lines, "\n")})
	}
	sess.count = len(entries)
	return msgs, nil
}

// Delete implements Backend: mark the message for deletion in the open
// session (by scan number — messages were retrieved in UIDL order).
func (b *NetBackend) Delete(w int, user uint64, id string) error {
	sess := b.sessions[w]
	if sess == nil {
		return fmt.Errorf("postal: Delete without Pickup")
	}
	// Re-resolve the scan number via UIDL n queries would cost a round
	// trip per message; instead DELE by position: UIDL order matches the
	// pickup order, so delete the next undeleted index whose id matches.
	// The postal workload deletes every picked-up message in order, so a
	// running counter suffices.
	n := len(sess.deleted) + 1
	if n > sess.count {
		return fmt.Errorf("postal: DELE beyond maildrop")
	}
	if _, err := sess.conn.cmd(fmt.Sprintf("DELE %d", n), "+OK"); err != nil {
		return err
	}
	sess.deleted = append(sess.deleted, n)
	return nil
}

// Unlock implements Backend: QUIT applies the deletes and releases the
// mailbox lock.
func (b *NetBackend) Unlock(w int, user uint64) {
	sess := b.sessions[w]
	if sess == nil {
		return
	}
	sess.conn.cmd("QUIT", "+OK")
	sess.conn.conn.Close()
	b.sessions[w] = nil
}
