// Package postal reproduces the benchmark workload of §9.3, which the
// paper drives with the Postal suite's `postal` (rapid delivery) and
// `rabid` (pickup with per-message hash verification) tools: a closed
// loop per core issuing an equal mix of SMTP-style deliveries and
// POP3-style pickup+delete sessions, each request choosing one of the
// users uniformly at random, with the total number of requests fixed as
// the core count varies.
//
// Like rabid, pickups verify each message against a hash recorded in a
// header line, catching corrupt or torn messages.
package postal

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mailboat"
	"repro/internal/obs"
)

// Backend abstracts a mail server under benchmark. The worker index
// lets implementations keep per-worker state (thread handles, PRNGs).
type Backend interface {
	Deliver(worker int, user uint64, msg []byte) error
	Pickup(worker int, user uint64) ([]mailboat.Message, error)
	Delete(worker int, user uint64, id string) error
	Unlock(worker int, user uint64)
}

// Options shapes a run, defaulting to the paper's parameters.
type Options struct {
	// Workers is the number of closed-loop clients (one per core in
	// Figure 11).
	Workers int
	// Users is the number of mailboxes requests are spread over
	// (100 in §9.3).
	Users uint64
	// TotalRequests is the fixed request count divided among workers.
	TotalRequests int
	// MessageBytes sizes the delivered message body.
	MessageBytes int
	// Seed makes runs reproducible.
	Seed int64
}

func (o *Options) fill() {
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Users == 0 {
		o.Users = 100
	}
	if o.TotalRequests == 0 {
		o.TotalRequests = 10000
	}
	if o.MessageBytes == 0 {
		o.MessageBytes = 256
	}
}

// Result summarizes one run. The JSON field names are a stable
// machine-readable interface (mailbench -json).
type Result struct {
	Requests   int            `json:"requests"`
	Delivers   int            `json:"delivers"`
	Pickups    int            `json:"pickups"`
	Messages   int            `json:"messages_verified"` // messages verified during pickups
	BadHashes  int            `json:"bad_hashes"`        // rabid-style verification failures
	Errors     int            `json:"errors"`
	Elapsed    time.Duration  `json:"elapsed_ns"`
	Throughput float64        `json:"requests_per_second"`
	Deliver    LatencySummary `json:"deliver_latency"`
	Pickup     LatencySummary `json:"pickup_latency"`
}

func (r Result) String() string {
	return fmt.Sprintf("%d reqs in %v = %.0f req/s (%d delivers, %d pickups, %d msgs verified, %d bad, %d errors; deliver p50/p99 %s/%s, pickup p50/p99 %s/%s)",
		r.Requests, r.Elapsed.Round(time.Millisecond), r.Throughput,
		r.Delivers, r.Pickups, r.Messages, r.BadHashes, r.Errors,
		fmtSec(r.Deliver.P50), fmtSec(r.Deliver.P99),
		fmtSec(r.Pickup.P50), fmtSec(r.Pickup.P99))
}

func fmtSec(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// LatencySummary condenses an obs latency histogram: quantiles are
// bucket-interpolated (histogram_quantile style), in seconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_seconds"`
	P50   float64 `json:"p50_seconds"`
	P90   float64 `json:"p90_seconds"`
	P99   float64 `json:"p99_seconds"`
}

func summarize(h *obs.Histogram) LatencySummary {
	s := LatencySummary{
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	if s.Count > 0 {
		s.Mean = h.Sum() / float64(s.Count)
	}
	return s
}

// Compose builds a message body of approximately size bytes whose first
// line records the FNV-64a hash of the body, rabid-style. The body is
// newline-terminated so the message survives SMTP/POP3 line framing
// byte-exactly (the protocols are line-oriented).
func Compose(rng *rand.Rand, size int) []byte {
	if size < 1 {
		size = 1
	}
	body := make([]byte, size)
	const letters = "abcdefghijklmnopqrstuvwxyz \n"
	for i := range body {
		body[i] = letters[rng.Intn(len(letters))]
	}
	body[size-1] = '\n'
	h := fnv.New64a()
	h.Write(body)
	return []byte(fmt.Sprintf("X-Hash: %016x\n%s", h.Sum64(), body))
}

// Verify checks a composed message's hash header, returning false for
// torn or corrupt messages.
func Verify(msg string) bool {
	rest, ok := strings.CutPrefix(msg, "X-Hash: ")
	if !ok || len(rest) < 17 {
		return false
	}
	var want uint64
	if _, err := fmt.Sscanf(rest[:16], "%x", &want); err != nil {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(rest[17:]))
	return h.Sum64() == want
}

// Run drives the closed-loop mixed workload and returns aggregate
// results. Each worker alternates requests pseudo-randomly between a
// delivery and a pickup+delete-all+unlock session (the paper's "equal
// ratio" mix), against a uniformly random user.
func Run(b Backend, opts Options) Result {
	opts.fill()
	perWorker := opts.TotalRequests / opts.Workers
	var delivers, pickups, messages, bad, errs atomic.Int64
	// Lock-free histograms, shared by all workers without aggregation.
	deliverLat := obs.NewHistogram(obs.DefLatencyBuckets)
	pickupLat := obs.NewHistogram(obs.DefLatencyBuckets)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
			for i := 0; i < perWorker; i++ {
				user := uint64(rng.Int63n(int64(opts.Users)))
				if rng.Intn(2) == 0 {
					msg := Compose(rng, opts.MessageBytes)
					t0 := time.Now()
					err := b.Deliver(w, user, msg)
					deliverLat.ObserveSince(t0)
					if err != nil {
						errs.Add(1)
					} else {
						delivers.Add(1)
					}
				} else {
					// The pickup latency covers the whole POP3-style
					// session: listing, verification, deletes, unlock.
					t0 := time.Now()
					msgs, err := b.Pickup(w, user)
					if err != nil {
						pickupLat.ObserveSince(t0)
						errs.Add(1)
						continue
					}
					for _, m := range msgs {
						messages.Add(1)
						if !Verify(m.Contents) {
							bad.Add(1)
						}
						if err := b.Delete(w, user, m.ID); err != nil {
							errs.Add(1)
						}
					}
					b.Unlock(w, user)
					pickupLat.ObserveSince(t0)
					pickups.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := int(delivers.Load() + pickups.Load())
	return Result{
		Requests:   total,
		Delivers:   int(delivers.Load()),
		Pickups:    int(pickups.Load()),
		Messages:   int(messages.Load()),
		BadHashes:  int(bad.Load()),
		Errors:     int(errs.Load()),
		Elapsed:    elapsed,
		Throughput: float64(total) / elapsed.Seconds(),
		Deliver:    summarize(deliverLat),
		Pickup:     summarize(pickupLat),
	}
}
