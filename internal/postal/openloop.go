package postal

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// SpanCarrier is implemented by backends whose per-worker thread
// handles can carry a trace span (MailboatBackend); the open-loop
// runner uses it to hang the library's stage spans off a per-request
// root, so one benchmark request renders as a full nested timeline.
type SpanCarrier interface {
	SetWorkerSpan(worker int, sp *trace.Span)
}

// PhaseWindow labels a slice of an open-loop run's schedule. The load
// harness cuts a drill run into alternating steady and drill windows;
// each request is attributed to the window containing its *scheduled*
// start, so the attribution is a pure function of the schedule — two
// runs of the same seed and windows bucket identically no matter how
// the store behaved. Windows must be sorted and non-overlapping; an
// End of 0 means "to the end of the run".
type PhaseWindow struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_ns"`
	End   time.Duration `json:"end_ns"`
	// Gated windows are held to the latency SLO gates
	// (EvaluatePhaseGates); drill windows are measured but not gated —
	// a crash-restart is *supposed* to stall its window, and the
	// interesting number is by how much.
	Gated bool `json:"gated"`
}

// PhaseLatency is one window's slice of an open-loop run.
type PhaseLatency struct {
	Name     string         `json:"name"`
	Gated    bool           `json:"gated"`
	Requests int            `json:"requests"`
	Errors   int            `json:"errors"`
	Deliver  LatencySummary `json:"deliver_latency"`
	Pickup   LatencySummary `json:"pickup_latency"`
}

// OpenLoopOptions shapes an open-loop (fixed offered rate) run.
//
// The closed loop of Run reproduces Figure 11, but it hides queueing:
// a slow request delays the next request's issue, so the measured
// latencies are only of requests the system was ready for (coordinated
// omission). The open loop schedules request starts on a fixed grid
// regardless of completions and measures each latency from the
// *scheduled* start, so backlog waits count against the store.
type OpenLoopOptions struct {
	// Workers is the number of issuing goroutines; the schedule grid is
	// interleaved across them.
	Workers int
	// Users spreads requests over this many mailboxes.
	Users uint64
	// Skew, ZipfS, and Mix select the multi-tenant workload model (see
	// Workload): zero values mean the paper's uniform 50/50 mix.
	Skew  string
	ZipfS float64
	Mix   float64
	// Rate is the total offered load in requests/second across all
	// workers.
	Rate float64
	// Duration bounds the schedule; the run drains in-flight requests
	// past it.
	Duration time.Duration
	// MessageBytes sizes delivered bodies.
	MessageBytes int
	// Seed makes runs reproducible.
	Seed int64
	// Tracer, when non-nil and the backend is a SpanCarrier, opens a
	// root span per request so the per-stage histograms fill.
	Tracer *trace.Tracer
	// Windows, when non-empty, cuts the run into labeled phases with
	// per-phase latency accounting (OpenLoopResult.Phases).
	Windows []PhaseWindow
}

func (o *OpenLoopOptions) fill() {
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Users == 0 {
		o.Users = 100
	}
	if o.Rate == 0 {
		o.Rate = 1000
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.MessageBytes == 0 {
		o.MessageBytes = 256
	}
}

// Workload returns the options' multi-tenant workload model.
func (o OpenLoopOptions) Workload() Workload {
	return Workload{Users: o.Users, Skew: o.Skew, ZipfS: o.ZipfS, Mix: o.Mix}.fill()
}

// OpenLoopResult summarizes an open-loop run. Latency quantiles are
// measured from each request's scheduled start (coordinated-omission
// free); Stages carries the per-stage breakdown from the tracer's
// histograms when tracing was on, Phases the per-window slices when
// the run declared phase windows.
type OpenLoopResult struct {
	OfferedRate float64        `json:"offered_rate_per_second"`
	Requests    int            `json:"requests"`
	Delivers    int            `json:"delivers"`
	Pickups     int            `json:"pickups"`
	Errors      int            `json:"errors"`
	Elapsed     time.Duration  `json:"elapsed_ns"`
	Throughput  float64        `json:"requests_per_second"`
	Deliver     LatencySummary `json:"deliver_latency"`
	Pickup      LatencySummary `json:"pickup_latency"`

	Stages []trace.StageSummary `json:"stages,omitempty"`
	Phases []PhaseLatency       `json:"phases,omitempty"`
}

// windowIndex attributes a scheduled offset to a window: the last
// window whose slice contains it. Falls back to the last window whose
// Start has passed (contiguous windows never need it, but a gap must
// not drop a measurement), then to 0.
func windowIndex(ws []PhaseWindow, off time.Duration) int {
	for i := len(ws) - 1; i >= 0; i-- {
		if off >= ws[i].Start && (ws[i].End == 0 || off < ws[i].End) {
			return i
		}
	}
	for i := len(ws) - 1; i >= 0; i-- {
		if off >= ws[i].Start {
			return i
		}
	}
	return 0
}

// OpenLoop drives the mixed workload at a fixed offered rate and
// returns coordinated-omission-free latencies. Worker w owns schedule
// slots w, w+Workers, w+2·Workers, …; a worker that falls behind keeps
// its grid, so the wait shows up as latency instead of silently
// thinning the load.
func OpenLoop(b Backend, opts OpenLoopOptions) OpenLoopResult {
	opts.fill()
	carrier, _ := b.(SpanCarrier)
	traced := opts.Tracer != nil && carrier != nil
	workload := opts.Workload()

	var delivers, pickups, errs atomic.Int64
	deliverLat := obs.NewHistogram(obs.DefLatencyBuckets)
	pickupLat := obs.NewHistogram(obs.DefLatencyBuckets)

	// Per-phase accounting, allocated up front so workers never
	// contend on anything but the lock-free histograms themselves.
	nw := len(opts.Windows)
	phDeliver := make([]*obs.Histogram, nw)
	phPickup := make([]*obs.Histogram, nw)
	phReqs := make([]atomic.Int64, nw)
	phErrs := make([]atomic.Int64, nw)
	for i := 0; i < nw; i++ {
		phDeliver[i] = obs.NewHistogram(obs.DefLatencyBuckets)
		phPickup[i] = obs.NewHistogram(obs.DefLatencyBuckets)
	}

	interval := time.Duration(float64(time.Second) * float64(opts.Workers) / opts.Rate)
	start := time.Now()
	deadline := start.Add(opts.Duration)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sampler := NewSampler(workload, opts.Seed, w)
			rng := sampler.Rng()
			offset := time.Duration(float64(time.Second) * float64(w) / opts.Rate)
			for sched := start.Add(offset); sched.Before(deadline); sched = sched.Add(interval) {
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				ph := -1
				if nw > 0 {
					ph = windowIndex(opts.Windows, sched.Sub(start))
					phReqs[ph].Add(1)
				}
				isDeliver := sampler.NextIsDeliver()
				user := sampler.NextUser()
				if isDeliver {
					msg := Compose(rng, opts.MessageBytes)
					var root *trace.Span
					if traced {
						root = opts.Tracer.Start("deliver", "bench.deliver")
						carrier.SetWorkerSpan(w, root)
					}
					err := b.Deliver(w, user, msg)
					if traced {
						carrier.SetWorkerSpan(w, nil)
						root.End()
					}
					// Latency from the scheduled start: queueing behind
					// a backlog is the store's problem, not the clock's.
					lat := time.Since(sched).Seconds()
					deliverLat.Observe(lat)
					if ph >= 0 {
						phDeliver[ph].Observe(lat)
					}
					if err != nil {
						errs.Add(1)
						if ph >= 0 {
							phErrs[ph].Add(1)
						}
					} else {
						delivers.Add(1)
					}
				} else {
					var root *trace.Span
					if traced {
						root = opts.Tracer.Start("pickup", "bench.pickup")
						carrier.SetWorkerSpan(w, root)
					}
					msgs, err := b.Pickup(w, user)
					if err == nil {
						for _, m := range msgs {
							if !Verify(m.Contents) {
								errs.Add(1)
							}
							if err := b.Delete(w, user, m.ID); err != nil {
								errs.Add(1)
							}
						}
						b.Unlock(w, user)
					}
					if traced {
						carrier.SetWorkerSpan(w, nil)
						root.End()
					}
					lat := time.Since(sched).Seconds()
					pickupLat.Observe(lat)
					if ph >= 0 {
						phPickup[ph].Observe(lat)
					}
					if err != nil {
						errs.Add(1)
						if ph >= 0 {
							phErrs[ph].Add(1)
						}
					} else {
						pickups.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := OpenLoopResult{
		OfferedRate: opts.Rate,
		Requests:    int(delivers.Load() + pickups.Load() + errs.Load()),
		Delivers:    int(delivers.Load()),
		Pickups:     int(pickups.Load()),
		Errors:      int(errs.Load()),
		Elapsed:     elapsed,
		Throughput:  float64(delivers.Load()+pickups.Load()) / elapsed.Seconds(),
		Deliver:     summarize(deliverLat),
		Pickup:      summarize(pickupLat),
	}
	if traced && opts.Tracer.Stages != nil {
		res.Stages = opts.Tracer.Stages.Summaries()
	}
	for i := 0; i < nw; i++ {
		res.Phases = append(res.Phases, PhaseLatency{
			Name:     opts.Windows[i].Name,
			Gated:    opts.Windows[i].Gated,
			Requests: int(phReqs[i].Load()),
			Errors:   int(phErrs[i].Load()),
			Deliver:  summarize(phDeliver[i]),
			Pickup:   summarize(phPickup[i]),
		})
	}
	return res
}
