package postal

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// SpanCarrier is implemented by backends whose per-worker thread
// handles can carry a trace span (MailboatBackend); the open-loop
// runner uses it to hang the library's stage spans off a per-request
// root, so one benchmark request renders as a full nested timeline.
type SpanCarrier interface {
	SetWorkerSpan(worker int, sp *trace.Span)
}

// OpenLoopOptions shapes an open-loop (fixed offered rate) run.
//
// The closed loop of Run reproduces Figure 11, but it hides queueing:
// a slow request delays the next request's issue, so the measured
// latencies are only of requests the system was ready for (coordinated
// omission). The open loop schedules request starts on a fixed grid
// regardless of completions and measures each latency from the
// *scheduled* start, so backlog waits count against the store.
type OpenLoopOptions struct {
	// Workers is the number of issuing goroutines; the schedule grid is
	// interleaved across them.
	Workers int
	// Users spreads requests over this many mailboxes.
	Users uint64
	// Rate is the total offered load in requests/second across all
	// workers.
	Rate float64
	// Duration bounds the schedule; the run drains in-flight requests
	// past it.
	Duration time.Duration
	// MessageBytes sizes delivered bodies.
	MessageBytes int
	// Seed makes runs reproducible.
	Seed int64
	// Tracer, when non-nil and the backend is a SpanCarrier, opens a
	// root span per request so the per-stage histograms fill.
	Tracer *trace.Tracer
}

func (o *OpenLoopOptions) fill() {
	if o.Workers == 0 {
		o.Workers = 1
	}
	if o.Users == 0 {
		o.Users = 100
	}
	if o.Rate == 0 {
		o.Rate = 1000
	}
	if o.Duration == 0 {
		o.Duration = 2 * time.Second
	}
	if o.MessageBytes == 0 {
		o.MessageBytes = 256
	}
}

// OpenLoopResult summarizes an open-loop run. Latency quantiles are
// measured from each request's scheduled start (coordinated-omission
// free); Stages carries the per-stage breakdown from the tracer's
// histograms when tracing was on.
type OpenLoopResult struct {
	OfferedRate float64        `json:"offered_rate_per_second"`
	Requests    int            `json:"requests"`
	Delivers    int            `json:"delivers"`
	Pickups     int            `json:"pickups"`
	Errors      int            `json:"errors"`
	Elapsed     time.Duration  `json:"elapsed_ns"`
	Throughput  float64        `json:"requests_per_second"`
	Deliver     LatencySummary `json:"deliver_latency"`
	Pickup      LatencySummary `json:"pickup_latency"`

	Stages []trace.StageSummary `json:"stages,omitempty"`
}

// OpenLoop drives the mixed workload at a fixed offered rate and
// returns coordinated-omission-free latencies. Worker w owns schedule
// slots w, w+Workers, w+2·Workers, …; a worker that falls behind keeps
// its grid, so the wait shows up as latency instead of silently
// thinning the load.
func OpenLoop(b Backend, opts OpenLoopOptions) OpenLoopResult {
	opts.fill()
	carrier, _ := b.(SpanCarrier)
	traced := opts.Tracer != nil && carrier != nil

	var delivers, pickups, errs atomic.Int64
	deliverLat := obs.NewHistogram(obs.DefLatencyBuckets)
	pickupLat := obs.NewHistogram(obs.DefLatencyBuckets)

	interval := time.Duration(float64(time.Second) * float64(opts.Workers) / opts.Rate)
	start := time.Now()
	deadline := start.Add(opts.Duration)
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(w)*7919))
			offset := time.Duration(float64(time.Second) * float64(w) / opts.Rate)
			for sched := start.Add(offset); sched.Before(deadline); sched = sched.Add(interval) {
				if d := time.Until(sched); d > 0 {
					time.Sleep(d)
				}
				user := uint64(rng.Int63n(int64(opts.Users)))
				if rng.Intn(2) == 0 {
					msg := Compose(rng, opts.MessageBytes)
					var root *trace.Span
					if traced {
						root = opts.Tracer.Start("deliver", "bench.deliver")
						carrier.SetWorkerSpan(w, root)
					}
					err := b.Deliver(w, user, msg)
					if traced {
						carrier.SetWorkerSpan(w, nil)
						root.End()
					}
					// Latency from the scheduled start: queueing behind
					// a backlog is the store's problem, not the clock's.
					deliverLat.Observe(time.Since(sched).Seconds())
					if err != nil {
						errs.Add(1)
					} else {
						delivers.Add(1)
					}
				} else {
					var root *trace.Span
					if traced {
						root = opts.Tracer.Start("pickup", "bench.pickup")
						carrier.SetWorkerSpan(w, root)
					}
					msgs, err := b.Pickup(w, user)
					if err == nil {
						for _, m := range msgs {
							if !Verify(m.Contents) {
								errs.Add(1)
							}
							if err := b.Delete(w, user, m.ID); err != nil {
								errs.Add(1)
							}
						}
						b.Unlock(w, user)
					}
					if traced {
						carrier.SetWorkerSpan(w, nil)
						root.End()
					}
					pickupLat.Observe(time.Since(sched).Seconds())
					if err != nil {
						errs.Add(1)
					} else {
						pickups.Add(1)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := OpenLoopResult{
		OfferedRate: opts.Rate,
		Requests:    int(delivers.Load() + pickups.Load() + errs.Load()),
		Delivers:    int(delivers.Load()),
		Pickups:     int(pickups.Load()),
		Errors:      int(errs.Load()),
		Elapsed:     elapsed,
		Throughput:  float64(delivers.Load()+pickups.Load()) / elapsed.Seconds(),
		Deliver:     summarize(deliverLat),
		Pickup:      summarize(pickupLat),
	}
	if traced && opts.Tracer.Stages != nil {
		res.Stages = opts.Tracer.Stages.Summaries()
	}
	return res
}
