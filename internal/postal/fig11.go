package postal

import (
	"fmt"
	"runtime"
	"strings"
)

// SweepPoint is one (server, cores) measurement of the Figure 11 sweep.
type SweepPoint struct {
	Server string `json:"server"`
	Cores  int    `json:"cores"`
	Result Result `json:"result"`
}

// SweepOptions configures a Figure 11 reproduction.
type SweepOptions struct {
	// Servers to measure; defaults to mailboat, gomail, cmail.
	Servers []string
	// Cores is the list of core counts (Figure 11 uses 1..12).
	Cores []int
	// Users is the mailbox count (100 in §9.3).
	Users uint64
	// RequestsPerPoint is the fixed total request count per measurement.
	RequestsPerPoint int
	// BaseDir hosts the per-point scratch stores; defaults to RAMDir().
	BaseDir string
	// Seed makes the sweep reproducible.
	Seed int64
	// NoFsync runs the mailboat backends with durability barriers off
	// (mailbench -no-fsync): faster, but an OS crash may take back
	// acked deliveries — the checked contract weakens to prefix
	// durability. The gomail and cmail baselines ignore the knob.
	NoFsync bool
}

func (o *SweepOptions) fill() {
	if len(o.Servers) == 0 {
		o.Servers = []string{"mailboat", "gomail", "cmail"}
	}
	if len(o.Cores) == 0 {
		o.Cores = []int{1, 2, 4, 8}
	}
	if o.Users == 0 {
		o.Users = 100
	}
	if o.RequestsPerPoint == 0 {
		o.RequestsPerPoint = 20000
	}
	if o.BaseDir == "" {
		o.BaseDir = RAMDir()
	}
}

// Sweep reproduces Figure 11: for each server and core count, it runs
// the closed-loop mixed workload on a fresh RAM-backed store with
// GOMAXPROCS pinned to the core count, and reports throughput.
func Sweep(opts SweepOptions) ([]SweepPoint, error) {
	opts.fill()
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var points []SweepPoint
	for _, cores := range opts.Cores {
		runtime.GOMAXPROCS(cores)
		for _, server := range opts.Servers {
			b, cleanup, err := newBackend(server, opts.BaseDir, opts.Users, cores, opts.Seed, opts.NoFsync)
			if err != nil {
				return nil, fmt.Errorf("building %s: %w", server, err)
			}
			res := Run(b, Options{
				Workers:       cores,
				Users:         opts.Users,
				TotalRequests: opts.RequestsPerPoint,
				Seed:          opts.Seed,
			})
			cleanup()
			if res.BadHashes > 0 {
				return nil, fmt.Errorf("%s at %d cores: %d hash verification failures", server, cores, res.BadHashes)
			}
			points = append(points, SweepPoint{Server: server, Cores: cores, Result: res})
		}
	}
	return points, nil
}

// FormatSweep renders the sweep as the Figure 11 table: one row per
// core count, one column per server, entries in requests/second.
func FormatSweep(points []SweepPoint) string {
	servers := []string{}
	seen := map[string]bool{}
	coresSet := map[int]bool{}
	for _, p := range points {
		if !seen[p.Server] {
			seen[p.Server] = true
			servers = append(servers, p.Server)
		}
		coresSet[p.Cores] = true
	}
	cores := []int{}
	for c := range coresSet {
		cores = append(cores, c)
	}
	for i := 0; i < len(cores); i++ {
		for j := i + 1; j < len(cores); j++ {
			if cores[j] < cores[i] {
				cores[i], cores[j] = cores[j], cores[i]
			}
		}
	}

	lookup := map[string]float64{}
	for _, p := range points {
		lookup[fmt.Sprintf("%s/%d", p.Server, p.Cores)] = p.Result.Throughput
	}

	var b strings.Builder
	b.WriteString("Figure 11: throughput (requests/sec) vs cores\n")
	fmt.Fprintf(&b, "%-7s", "cores")
	for _, s := range servers {
		fmt.Fprintf(&b, "%12s", s)
	}
	b.WriteString("\n")
	for _, c := range cores {
		fmt.Fprintf(&b, "%-7d", c)
		for _, s := range servers {
			fmt.Fprintf(&b, "%12.0f", lookup[fmt.Sprintf("%s/%d", s, c)])
		}
		b.WriteString("\n")
	}
	return b.String()
}
