package postal

import (
	"math/rand"
	"strings"
	"testing"
)

func TestComposeVerifyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		msg := Compose(rng, 100+i*13)
		if !Verify(string(msg)) {
			t.Fatalf("fresh message fails verification: %q", msg[:40])
		}
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	msg := []byte(Compose(rng, 200))
	msg[len(msg)-1] ^= 0xff
	if Verify(string(msg)) {
		t.Fatal("corrupt body passed verification")
	}
}

func TestVerifyCatchesTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	msg := Compose(rng, 200)
	if Verify(string(msg[:len(msg)/2])) {
		t.Fatal("truncated message passed verification")
	}
	if Verify("") || Verify("no header") {
		t.Fatal("headerless message passed verification")
	}
}

func TestRunMailboatBackendCleanWorkload(t *testing.T) {
	b, cleanup, err := NewBackend("mailboat", t.TempDir(), 10, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	res := Run(b, Options{Workers: 4, Users: 10, TotalRequests: 400, Seed: 42})
	if res.BadHashes != 0 || res.Errors != 0 {
		t.Fatalf("result: %s", res)
	}
	if res.Requests != 400 {
		t.Fatalf("requests=%d", res.Requests)
	}
	if res.Delivers == 0 || res.Pickups == 0 {
		t.Fatalf("unbalanced mix: %s", res)
	}
}

func TestRunGoMailBackendCleanWorkload(t *testing.T) {
	b, cleanup, err := NewBackend("gomail", t.TempDir(), 10, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	res := Run(b, Options{Workers: 4, Users: 10, TotalRequests: 400, Seed: 42})
	if res.BadHashes != 0 || res.Errors != 0 {
		t.Fatalf("result: %s", res)
	}
}

func TestRunCMailBackendCleanWorkload(t *testing.T) {
	b, cleanup, err := NewBackend("cmail", t.TempDir(), 10, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	res := Run(b, Options{Workers: 2, Users: 10, TotalRequests: 200, Seed: 42})
	if res.BadHashes != 0 || res.Errors != 0 {
		t.Fatalf("result: %s", res)
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	if _, _, err := NewBackend("exchange", t.TempDir(), 1, 1, 1); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

func TestSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	points, err := Sweep(SweepOptions{
		Servers:          []string{"mailboat", "gomail"},
		Cores:            []int{1, 2},
		Users:            10,
		RequestsPerPoint: 600,
		BaseDir:          t.TempDir(),
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points=%d", len(points))
	}
	table := FormatSweep(points)
	if !strings.Contains(table, "mailboat") || !strings.Contains(table, "cores") {
		t.Fatalf("table:\n%s", table)
	}
	t.Logf("\n%s", table)
}

func TestFig11ShapeSingleCore(t *testing.T) {
	// The paper's single-core ordering: Mailboat > GoMail > CMAIL
	// (§9.3: +81% and +34%). Absolute factors vary by machine; we
	// assert only the ordering, with a small tolerance margin.
	if testing.Short() {
		t.Skip("throughput comparison is slow")
	}
	tps := map[string]float64{}
	for _, server := range []string{"mailboat", "gomail", "cmail"} {
		// The paper's measurement method ran Mailboat without durability
		// barriers, so the parity comparison uses the fast mode (the
		// baselines ignore the knob either way).
		b, cleanup, err := NewFastBackend(server, RAMDir(), 25, 1, 7)
		if err != nil {
			t.Fatal(err)
		}
		res := Run(b, Options{Workers: 1, Users: 25, TotalRequests: 4000, Seed: 7})
		cleanup()
		if res.BadHashes != 0 || res.Errors != 0 {
			t.Fatalf("%s: %s", server, res)
		}
		tps[server] = res.Throughput
		t.Logf("%s: %s", server, res)
	}
	if tps["mailboat"] < tps["gomail"]*1.05 {
		t.Errorf("expected Mailboat > GoMail: %.0f vs %.0f", tps["mailboat"], tps["gomail"])
	}
	if tps["gomail"] < tps["cmail"]*1.05 {
		t.Errorf("expected GoMail > CMAIL: %.0f vs %.0f", tps["gomail"], tps["cmail"])
	}
}

func TestRunNetBackendCleanWorkload(t *testing.T) {
	// The full network path: SMTP deliveries and POP3 pickups over
	// loopback TCP, hash-verified end to end.
	b, cleanup, err := NewBackend("mailboat-net", t.TempDir(), 6, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	res := Run(b, Options{Workers: 3, Users: 6, TotalRequests: 300, Seed: 42})
	if res.BadHashes != 0 || res.Errors != 0 {
		t.Fatalf("result: %s", res)
	}
	if res.Requests != 300 {
		t.Fatalf("requests=%d", res.Requests)
	}
}

func TestNetworkOverheadIsMeasurable(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput comparison is slow")
	}
	// §9.3 excluded the network path; measuring it here shows why: the
	// direct (library-call) backend is faster than the TCP path.
	tps := map[string]float64{}
	for _, server := range []string{"mailboat", "mailboat-net"} {
		b, cleanup, err := NewBackend(server, RAMDir(), 10, 1, 5)
		if err != nil {
			t.Fatal(err)
		}
		res := Run(b, Options{Workers: 1, Users: 10, TotalRequests: 2000, Seed: 5})
		cleanup()
		if res.BadHashes != 0 || res.Errors != 0 {
			t.Fatalf("%s: %s", server, res)
		}
		tps[server] = res.Throughput
		t.Logf("%s: %s", server, res)
	}
	if tps["mailboat"] <= tps["mailboat-net"] {
		t.Errorf("expected the direct path to beat the network path: %.0f vs %.0f",
			tps["mailboat"], tps["mailboat-net"])
	}
}
