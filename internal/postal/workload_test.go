package postal

import "testing"

// TestSamplerDeterministic: the whole point of a seeded workload is
// that a bench record's (skew, seed, users) triple names the exact
// request sequence. Same inputs, same draws — and a different seed or
// worker index diverges.
func TestSamplerDeterministic(t *testing.T) {
	for _, skew := range []string{SkewUniform, SkewZipf} {
		w := Workload{Users: 100000, Skew: skew}
		a := NewSampler(w, 42, 3)
		b := NewSampler(w, 42, 3)
		diverged := false
		other := NewSampler(w, 43, 3)
		for i := 0; i < 2000; i++ {
			ad, bd := a.NextIsDeliver(), b.NextIsDeliver()
			au, bu := a.NextUser(), b.NextUser()
			if ad != bd || au != bu {
				t.Fatalf("%s: draw %d diverged under the same seed: (%v,%d) vs (%v,%d)", skew, i, ad, au, bd, bu)
			}
			other.NextIsDeliver()
			if other.NextUser() != au {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%s: different seeds drew identical user sequences", skew)
		}
	}
}

// TestZipfHotSetMass: under zipf skew the hottest 1% of mailboxes (by
// rank, mapped through the seeded rotation) must carry the majority
// of the traffic, and the same hot set under uniform skew must carry
// roughly its fair 1% share — the two ends the harness interpolates.
func TestZipfHotSetMass(t *testing.T) {
	const users = 100000
	const draws = 200000

	mass := func(skew string) float64 {
		s := NewSampler(Workload{Users: users, Skew: skew}, 7, 0)
		hot := make(map[uint64]bool, users/100)
		for r := uint64(0); r < users/100; r++ {
			hot[s.MailboxOfRank(r)] = true
		}
		n := 0
		for i := 0; i < draws; i++ {
			if hot[s.NextUser()] {
				n++
			}
		}
		return float64(n) / draws
	}

	if m := mass(SkewZipf); m < 0.40 {
		t.Errorf("zipf: hottest 1%% of mailboxes carries only %.1f%% of traffic, want > 40%%", m*100)
	}
	if m := mass(SkewUniform); m > 0.05 {
		t.Errorf("uniform: hottest 1%% of mailboxes carries %.1f%% of traffic, want about 1%%", m*100)
	}
}

// TestZipfStableAcrossScale: the skew must not collapse toward
// uniform as the population grows — at 10k, 100k, and 1M mailboxes
// the hot 1% keeps a majority of the mass. This is what makes
// "zipf, seed s, N users" a meaningful label on a bench record at any
// N in the harness's range.
func TestZipfStableAcrossScale(t *testing.T) {
	const draws = 100000
	for _, users := range []uint64{10000, 100000, 1000000} {
		s := NewSampler(Workload{Users: users, Skew: SkewZipf}, 11, 0)
		hotRanks := users / 100
		n := 0
		for i := 0; i < draws; i++ {
			// Rank r maps to mailbox (r+rot)%users; invert the rotation
			// instead of materializing a 10k-element hot set map.
			u := s.NextUser()
			if (u+users-s.rot)%users < hotRanks {
				n++
			}
		}
		if m := float64(n) / draws; m < 0.40 {
			t.Errorf("users=%d: hot 1%% mass %.1f%%, want > 40%% at every scale", users, m*100)
		}
	}
}

// TestSamplerMix: the deliver fraction tracks Workload.Mix.
func TestSamplerMix(t *testing.T) {
	for _, mix := range []float64{0.2, 0.5, 0.9} {
		s := NewSampler(Workload{Users: 100, Mix: mix}, 5, 0)
		n := 0
		const draws = 50000
		for i := 0; i < draws; i++ {
			if s.NextIsDeliver() {
				n++
			}
			s.NextUser()
		}
		got := float64(n) / draws
		if got < mix-0.02 || got > mix+0.02 {
			t.Errorf("mix %.2f: measured deliver fraction %.3f", mix, got)
		}
	}
}

// TestWorkloadValid: the CLI leans on Valid to reject misspelled
// skews and out-of-range exponents before booting a 100k-user store.
func TestWorkloadValid(t *testing.T) {
	for _, tc := range []struct {
		w  Workload
		ok bool
	}{
		{Workload{}, true},
		{Workload{Skew: SkewZipf}, true},
		{Workload{Skew: "zipfian"}, false},
		{Workload{Skew: SkewZipf, ZipfS: 0.99}, false},
		{Workload{Mix: 1.5}, false},
	} {
		if got := tc.w.Valid(); got != tc.ok {
			t.Errorf("Valid(%+v) = %v, want %v", tc.w, got, tc.ok)
		}
	}
}
