package postal

import "math/rand"

// This file is the multi-tenant workload model of the load harness:
// which mailbox each request hits, and whether it is an SMTP-style
// delivery or a POP3-style pickup session. The paper's §9.3 workload
// is uniform over 100 users with an equal mix; a production mail
// system serves millions of mailboxes where a small hot set takes
// most of the traffic, so the harness generalizes both axes — a
// zipfian hot/cold skew over 10k–1M mailboxes and a configurable
// deliver:pickup ratio — while staying seeded and deterministic, so a
// drill run names a workload precisely enough to replay it.

// Skew names for Workload.Skew.
const (
	// SkewUniform draws every mailbox with equal probability — the
	// paper's §9.3 model and the default.
	SkewUniform = "uniform"
	// SkewZipf draws mailboxes zipfian: rank r is hit with probability
	// ∝ (1+r)^-s, so a small hot set takes most of the traffic. Ranks
	// map to mailbox IDs through a seeded rotation, so the hot set is
	// not always mailbox 0..k but is identical for every worker of a
	// run and for every run with the same seed.
	SkewZipf = "zipf"
)

// DefaultZipfS is the default zipf exponent: mildly skewed (the
// stdlib sampler requires s > 1; 1.1 puts roughly two thirds of the
// traffic on the hottest 1% of a 100k-mailbox population).
const DefaultZipfS = 1.1

// Workload is the multi-tenant model of a load: how many mailboxes,
// how the per-request mailbox is drawn, and the op mix. The zero
// value (after fill) is the paper's workload: uniform, 50/50.
type Workload struct {
	// Users is the mailbox population.
	Users uint64 `json:"users"`
	// Skew is SkewUniform or SkewZipf ("" = uniform).
	Skew string `json:"skew"`
	// ZipfS is the zipf exponent (> 1); 0 means DefaultZipfS. Ignored
	// under SkewUniform.
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Mix is the fraction of requests that are deliveries, in [0,1];
	// 0 means 0.5. (A pure-pickup workload is Mix set very small but
	// nonzero; exactly 0 keeps the zero value meaning "default".)
	Mix float64 `json:"mix"`
}

func (w Workload) fill() Workload {
	if w.Users == 0 {
		w.Users = 100
	}
	if w.Skew == "" {
		w.Skew = SkewUniform
	}
	if w.ZipfS == 0 {
		w.ZipfS = DefaultZipfS
	}
	if w.Mix == 0 {
		w.Mix = 0.5
	}
	return w
}

// Valid reports whether the workload names a known skew and a sane
// exponent and mix.
func (w Workload) Valid() bool {
	w = w.fill()
	if w.Skew != SkewUniform && w.Skew != SkewZipf {
		return false
	}
	if w.Skew == SkewZipf && w.ZipfS <= 1 {
		return false
	}
	return w.Mix >= 0 && w.Mix <= 1
}

// Sampler draws the (mailbox, op) sequence for one worker. Two
// samplers built with the same (workload, runSeed, worker) draw the
// same sequence; samplers of different workers share the same
// rank→mailbox rotation (the hot set is a property of the run, not of
// a worker) but draw independent streams.
type Sampler struct {
	w    Workload
	rng  *rand.Rand
	zipf *rand.Zipf
	rot  uint64
}

// NewSampler builds the sampler for one worker of a run.
func NewSampler(w Workload, runSeed int64, worker int) *Sampler {
	w = w.fill()
	s := &Sampler{
		w: w,
		// The per-worker stream seeding matches the rest of the
		// package (Run, OpenLoop): seed + worker·7919.
		rng: rand.New(rand.NewSource(runSeed + int64(worker)*7919)),
		rot: splitmix64(uint64(runSeed)) % w.Users,
	}
	if w.Skew == SkewZipf {
		s.zipf = rand.NewZipf(s.rng, w.ZipfS, 1, w.Users-1)
	}
	return s
}

// splitmix64 is the finalizer used for the rank rotation — one fixed,
// documented mix so the rotation is a pure function of the run seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Rng exposes the sampler's stream for auxiliary draws that must stay
// part of the worker's deterministic sequence (message bodies).
func (s *Sampler) Rng() *rand.Rand { return s.rng }

// NextIsDeliver draws the op for the next request.
func (s *Sampler) NextIsDeliver() bool {
	return s.rng.Float64() < s.w.Mix
}

// NextUser draws the mailbox for the next request.
func (s *Sampler) NextUser() uint64 {
	if s.zipf == nil {
		return uint64(s.rng.Int63n(int64(s.w.Users)))
	}
	return s.MailboxOfRank(s.zipf.Uint64())
}

// MailboxOfRank maps popularity rank r (0 = hottest) to its mailbox
// ID: a rotation by a seeded offset. A rotation is the simplest
// bijection — it keeps the skew mass exact per rank while detaching
// the hot set from the low mailbox IDs — and being a pure function of
// the run seed it lets a test (or an operator reading a bench record)
// recompute exactly which mailboxes were hot.
func (s *Sampler) MailboxOfRank(r uint64) uint64 {
	return (r + s.rot) % s.w.Users
}
