package postal

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestOpenLoopTraced drives the open-loop runner against the verified
// library with tracing on and checks the coordinated-omission-free
// accounting: every scheduled request is issued, both ops record
// latencies, and the per-stage breakdown from span durations is
// populated with the library's stage names.
func TestOpenLoopTraced(t *testing.T) {
	b, err := NewMailboatBackend(t.TempDir(), 10, 2, 1, true /* noFsync: speed */)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	reg := obs.NewRegistry()
	tracer := trace.New(0, 0)
	tracer.Stages = trace.NewStageMetrics(reg)
	res := OpenLoop(b, OpenLoopOptions{
		Workers:  2,
		Users:    10,
		Rate:     400,
		Duration: 500 * time.Millisecond,
		Seed:     1,
		Tracer:   tracer,
	})

	if res.Requests == 0 || res.Delivers == 0 || res.Pickups == 0 {
		t.Fatalf("open loop issued nothing: %+v", res)
	}
	if res.Errors != 0 {
		t.Errorf("unexpected errors: %+v", res)
	}
	// The schedule is fixed: with rate R over duration D the runner
	// must issue close to R·D requests no matter how slow the store is.
	want := int(400 * 0.5)
	if res.Requests < want*8/10 || res.Requests > want*12/10 {
		t.Errorf("issued %d requests, want about %d (open loop must hold its schedule)", res.Requests, want)
	}
	if res.Deliver.Count == 0 || res.Deliver.P99 <= 0 {
		t.Errorf("deliver latency summary empty: %+v", res.Deliver)
	}
	stages := map[string]bool{}
	for _, s := range res.Stages {
		stages[s.Stage] = true
	}
	for _, want := range []string{"mailboat.deliver", "spool.write", "publish.link", "mailboat.pickup", "mailbox.list"} {
		if !stages[want] {
			t.Errorf("per-stage breakdown missing %q (have %v)", want, stages)
		}
	}
}

// TestOpenLoopUntraced: without a tracer the runner still measures,
// and no stage breakdown appears.
func TestOpenLoopUntraced(t *testing.T) {
	b, err := NewMailboatBackend(t.TempDir(), 4, 1, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	res := OpenLoop(b, OpenLoopOptions{Workers: 1, Users: 4, Rate: 200, Duration: 200 * time.Millisecond, Seed: 2})
	if res.Requests == 0 {
		t.Fatalf("open loop issued nothing: %+v", res)
	}
	if len(res.Stages) != 0 {
		t.Errorf("untraced run has stage data: %+v", res.Stages)
	}
}

func TestEvaluateGates(t *testing.T) {
	res := OpenLoopResult{
		Deliver: LatencySummary{Count: 10, P50: 0.001, P90: 0.002, P99: 0.004},
		Pickup:  LatencySummary{Count: 10, P50: 0.002, P90: 0.004, P99: 0.300},
	}

	results, pass := EvaluateGates(DefaultGates(), res)
	if len(results) != 2 {
		t.Fatalf("want 2 gate results, got %d", len(results))
	}
	if !results[0].Pass {
		t.Errorf("deliver gate should pass: %+v", results[0])
	}
	if results[1].Pass || pass {
		t.Errorf("pickup p99 0.3s must fail its 0.2s gate: %+v (all=%v)", results[1], pass)
	}

	// A misdeclared gate fails loudly instead of silently passing.
	bad, all := EvaluateGates([]Gate{{Op: "frobnicate", Quantile: 0.99, MaxSeconds: 1}}, res)
	if all || bad[0].Pass || bad[0].ObservedSeconds != -1 {
		t.Errorf("unknown op gate must fail: %+v", bad[0])
	}
	badQ, allQ := EvaluateGates([]Gate{{Op: "deliver", Quantile: 0.42, MaxSeconds: 1}}, res)
	if allQ || badQ[0].Pass {
		t.Errorf("unknown quantile gate must fail: %+v", badQ[0])
	}
}
