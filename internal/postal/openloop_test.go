package postal

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestOpenLoopTraced drives the open-loop runner against the verified
// library with tracing on and checks the coordinated-omission-free
// accounting: every scheduled request is issued, both ops record
// latencies, and the per-stage breakdown from span durations is
// populated with the library's stage names.
func TestOpenLoopTraced(t *testing.T) {
	b, err := NewMailboatBackend(t.TempDir(), 10, 2, 1, true /* noFsync: speed */)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	reg := obs.NewRegistry()
	tracer := trace.New(0, 0)
	tracer.Stages = trace.NewStageMetrics(reg)
	res := OpenLoop(b, OpenLoopOptions{
		Workers:  2,
		Users:    10,
		Rate:     400,
		Duration: 500 * time.Millisecond,
		Seed:     1,
		Tracer:   tracer,
	})

	if res.Requests == 0 || res.Delivers == 0 || res.Pickups == 0 {
		t.Fatalf("open loop issued nothing: %+v", res)
	}
	if res.Errors != 0 {
		t.Errorf("unexpected errors: %+v", res)
	}
	// The schedule is fixed: with rate R over duration D the runner
	// must issue close to R·D requests no matter how slow the store is.
	want := int(400 * 0.5)
	if res.Requests < want*8/10 || res.Requests > want*12/10 {
		t.Errorf("issued %d requests, want about %d (open loop must hold its schedule)", res.Requests, want)
	}
	if res.Deliver.Count == 0 || res.Deliver.P99 <= 0 {
		t.Errorf("deliver latency summary empty: %+v", res.Deliver)
	}
	stages := map[string]bool{}
	for _, s := range res.Stages {
		stages[s.Stage] = true
	}
	for _, want := range []string{"mailboat.deliver", "spool.write", "publish.link", "mailboat.pickup", "mailbox.list"} {
		if !stages[want] {
			t.Errorf("per-stage breakdown missing %q (have %v)", want, stages)
		}
	}
}

// TestOpenLoopUntraced: without a tracer the runner still measures,
// and no stage breakdown appears.
func TestOpenLoopUntraced(t *testing.T) {
	b, err := NewMailboatBackend(t.TempDir(), 4, 1, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	res := OpenLoop(b, OpenLoopOptions{Workers: 1, Users: 4, Rate: 200, Duration: 200 * time.Millisecond, Seed: 2})
	if res.Requests == 0 {
		t.Fatalf("open loop issued nothing: %+v", res)
	}
	if len(res.Stages) != 0 {
		t.Errorf("untraced run has stage data: %+v", res.Stages)
	}
}

// TestOpenLoopPhaseWindows: a windowed run buckets every request into
// the phase containing its scheduled start, and the per-phase counts
// add back up to the run total.
func TestOpenLoopPhaseWindows(t *testing.T) {
	b, err := NewMailboatBackend(t.TempDir(), 8, 2, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	windows := []PhaseWindow{
		{Name: "steady-0", Start: 0, End: 200 * time.Millisecond, Gated: true},
		{Name: "drill", Start: 200 * time.Millisecond, End: 400 * time.Millisecond},
		{Name: "steady-1", Start: 400 * time.Millisecond, Gated: true},
	}
	res := OpenLoop(b, OpenLoopOptions{
		Workers:  2,
		Users:    8,
		Skew:     SkewZipf,
		Rate:     400,
		Duration: 600 * time.Millisecond,
		Seed:     4,
		Windows:  windows,
	})
	if len(res.Phases) != 3 {
		t.Fatalf("want 3 phases, got %+v", res.Phases)
	}
	total := 0
	for i, p := range res.Phases {
		if p.Name != windows[i].Name || p.Gated != windows[i].Gated {
			t.Errorf("phase %d mislabeled: %+v vs window %+v", i, p, windows[i])
		}
		if p.Requests == 0 {
			t.Errorf("phase %q saw no requests", p.Name)
		}
		if int(p.Deliver.Count+p.Pickup.Count) != p.Requests {
			t.Errorf("phase %q: %d deliver + %d pickup observations != %d requests",
				p.Name, p.Deliver.Count, p.Pickup.Count, p.Requests)
		}
		total += p.Requests
	}
	if total != res.Requests {
		t.Errorf("phases bucket %d requests, run saw %d", total, res.Requests)
	}
}

func TestEvaluatePhaseGates(t *testing.T) {
	phases := []PhaseLatency{
		{Name: "steady-0", Gated: true,
			Deliver: LatencySummary{Count: 10, P99: 0.01}, Pickup: LatencySummary{Count: 10, P99: 0.01}},
		// The drill phase blows the deliver gate but is not gated.
		{Name: "crash",
			Deliver: LatencySummary{Count: 10, P99: 3.0}, Pickup: LatencySummary{Count: 10, P99: 3.0}},
		{Name: "steady-1", Gated: true,
			Deliver: LatencySummary{Count: 10, P99: 0.02}, Pickup: LatencySummary{Count: 10, P99: 0.02}},
	}
	rs, pass := EvaluatePhaseGates(DefaultGates(), phases)
	if !pass {
		t.Errorf("steady phases within bounds must pass (drill phases are not gated): %+v", rs)
	}
	if len(rs) != 4 {
		t.Errorf("want 2 gates x 2 gated phases = 4 results, got %d", len(rs))
	}

	phases[2].Deliver.P99 = 1.0
	rs, pass = EvaluatePhaseGates(DefaultGates(), phases)
	if pass {
		t.Errorf("a gated steady phase over its bound must fail the run: %+v", rs)
	}
}

func TestEvaluateGates(t *testing.T) {
	res := OpenLoopResult{
		Deliver: LatencySummary{Count: 10, P50: 0.001, P90: 0.002, P99: 0.004},
		Pickup:  LatencySummary{Count: 10, P50: 0.002, P90: 0.004, P99: 0.300},
	}

	results, pass := EvaluateGates(DefaultGates(), res)
	if len(results) != 2 {
		t.Fatalf("want 2 gate results, got %d", len(results))
	}
	if !results[0].Pass {
		t.Errorf("deliver gate should pass: %+v", results[0])
	}
	if results[1].Pass || pass {
		t.Errorf("pickup p99 0.3s must fail its 0.2s gate: %+v (all=%v)", results[1], pass)
	}

	// A misdeclared gate fails loudly instead of silently passing.
	bad, all := EvaluateGates([]Gate{{Op: "frobnicate", Quantile: 0.99, MaxSeconds: 1}}, res)
	if all || bad[0].Pass || bad[0].ObservedSeconds != -1 {
		t.Errorf("unknown op gate must fail: %+v", bad[0])
	}
	badQ, allQ := EvaluateGates([]Gate{{Op: "deliver", Quantile: 0.42, MaxSeconds: 1}}, res)
	if allQ || badQ[0].Pass {
		t.Errorf("unknown quantile gate must fail: %+v", badQ[0])
	}
}
