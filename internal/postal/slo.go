package postal

import "fmt"

// Gate is one declared latency SLO: quantile q of op's latency must
// not exceed MaxSeconds. Gates make a benchmark run answer pass/fail
// instead of leaving a wall of numbers to squint at.
type Gate struct {
	Op         string  `json:"op"`       // "deliver" or "pickup"
	Quantile   float64 `json:"quantile"` // e.g. 0.99
	MaxSeconds float64 `json:"max_seconds"`
}

func (g Gate) String() string {
	return fmt.Sprintf("%s p%g <= %gs", g.Op, g.Quantile*100, g.MaxSeconds)
}

// GateResult is one gate evaluated against a run.
type GateResult struct {
	Gate
	ObservedSeconds float64 `json:"observed_seconds"`
	Pass            bool    `json:"pass"`
}

func (r GateResult) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%s: observed %.6fs — %s", r.Gate, r.ObservedSeconds, verdict)
}

// DefaultGates declares the stock SLOs for a RAM-backed store under
// the full sync discipline. The bounds are deliberately loose — they
// catch order-of-magnitude regressions (a lost fsync batching, a lock
// held across I/O), not scheduler jitter on a busy CI box.
func DefaultGates() []Gate {
	return []Gate{
		{Op: "deliver", Quantile: 0.99, MaxSeconds: 0.100},
		{Op: "pickup", Quantile: 0.99, MaxSeconds: 0.200},
	}
}

// PhaseGateResult is one gate evaluated against one phase of a
// windowed run.
type PhaseGateResult struct {
	Phase string `json:"phase"`
	GateResult
}

func (r PhaseGateResult) String() string {
	return fmt.Sprintf("[%s] %s", r.Phase, r.GateResult)
}

// EvaluatePhaseGates checks the gates against every *gated* phase of a
// windowed run (drill phases are reported, not gated — see
// PhaseWindow.Gated). The verdict is the AND over all gated phases:
// the steady-state service around a drill must hold its SLO even
// while the drill window itself is allowed to stall.
func EvaluatePhaseGates(gates []Gate, phases []PhaseLatency) ([]PhaseGateResult, bool) {
	all := true
	var out []PhaseGateResult
	for _, p := range phases {
		if !p.Gated {
			continue
		}
		rs, ok := EvaluateGates(gates, OpenLoopResult{Deliver: p.Deliver, Pickup: p.Pickup})
		for _, r := range rs {
			out = append(out, PhaseGateResult{Phase: p.Name, GateResult: r})
		}
		if !ok {
			all = false
		}
	}
	return out, all
}

// quantileOf picks the requested quantile out of a summary; the
// summaries pre-compute p50/p90/p99, which is the menu gates can use.
func quantileOf(s LatencySummary, q float64) (float64, bool) {
	switch q {
	case 0.50:
		return s.P50, true
	case 0.90:
		return s.P90, true
	case 0.99:
		return s.P99, true
	}
	return 0, false
}

// EvaluateGates checks each gate against an open-loop run. Unknown ops
// or quantiles fail loudly (Pass=false, Observed=-1) rather than
// silently passing — a misdeclared gate guarding nothing is worse than
// no gate. The second return is the AND of all gates.
func EvaluateGates(gates []Gate, r OpenLoopResult) ([]GateResult, bool) {
	results := make([]GateResult, 0, len(gates))
	all := true
	for _, g := range gates {
		var sum LatencySummary
		known := true
		switch g.Op {
		case "deliver":
			sum = r.Deliver
		case "pickup":
			sum = r.Pickup
		default:
			known = false
		}
		obsv, ok := quantileOf(sum, g.Quantile)
		if !known || !ok {
			results = append(results, GateResult{Gate: g, ObservedSeconds: -1, Pass: false})
			all = false
			continue
		}
		res := GateResult{Gate: g, ObservedSeconds: obsv, Pass: obsv <= g.MaxSeconds}
		if !res.Pass {
			all = false
		}
		results = append(results, res)
	}
	return results, all
}
