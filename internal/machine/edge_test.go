package machine

import (
	"strings"
	"testing"
)

func TestRandZeroBoundIsViolation(t *testing.T) {
	m := New(Options{})
	res := m.RunEra(SeqChooser{}, false, func(mt *T) {
		mt.RandUint64(0)
	})
	if res.Outcome != Violation || !strings.Contains(res.Err.Error(), "zero bound") {
		t.Fatalf("res=%+v", res)
	}
}

func TestChooserOutOfRangeIsViolation(t *testing.T) {
	m := New(Options{})
	bad := ChooserFunc(func(n int, tag string) int {
		if tag == "rand" {
			return n + 5
		}
		return 0
	})
	res := m.RunEra(bad, false, func(mt *T) {
		mt.Choose(3, "rand")
	})
	if res.Outcome != Violation || !strings.Contains(res.Err.Error(), "out of range") {
		t.Fatalf("res=%+v", res)
	}
}

func TestSchedulerChoiceOutOfRangeIsViolation(t *testing.T) {
	m := New(Options{})
	bad := ChooserFunc(func(n int, tag string) int { return n })
	res := m.RunEra(bad, false, func(mt *T) {
		mt.Step("one")
	})
	if res.Outcome != Violation || !strings.Contains(res.Err.Error(), "out of range") {
		t.Fatalf("res=%+v", res)
	}
}

func TestCrashResetDuringEraIsRejected(t *testing.T) {
	// CrashReset must never run while threads are live; the panic it
	// raises inside the thread is surfaced as a violation by the thread
	// wrapper.
	m := New(Options{})
	res := m.RunEra(SeqChooser{}, false, func(mt *T) {
		m.CrashReset()
	})
	if res.Outcome != Violation || !strings.Contains(res.Err.Error(), "CrashReset during a running era") {
		t.Fatalf("res=%+v", res)
	}
}

func TestStepsCounterAdvances(t *testing.T) {
	m := New(Options{})
	before := m.Steps()
	m.RunEra(SeqChooser{}, false, func(mt *T) {
		mt.Step("a")
		mt.Step("b")
	})
	if got := m.Steps() - before; got != 2 {
		t.Fatalf("steps advanced by %d", got)
	}
}

func TestResetTraceClears(t *testing.T) {
	m := New(Options{})
	m.RunEra(SeqChooser{}, false, func(mt *T) { mt.Tracef("hello") })
	if len(m.Trace()) == 0 {
		t.Fatal("no trace recorded")
	}
	m.ResetTrace()
	if len(m.Trace()) != 0 {
		t.Fatal("ResetTrace did not clear")
	}
}

func TestLoadWrongTypeIsViolation(t *testing.T) {
	m := New(Options{})
	res := m.RunEra(SeqChooser{}, false, func(mt *T) {
		r := NewRef(mt, "x", 7)
		// Reinterpret the same cell at a different type via a second
		// typed handle sharing the cell — simulate by storing through an
		// any-typed ref. The typed Ref API makes this hard to do by
		// accident; the runtime check still guards the model's own
		// bookkeeping.
		_ = r.Load(mt)
		any := &Ref[string]{c: r.c}
		_ = any.Load(mt)
	})
	if res.Outcome != Violation || !strings.Contains(res.Err.Error(), "wrong type") {
		t.Fatalf("res=%+v", res)
	}
}

func TestHolderAccessor(t *testing.T) {
	m := New(Options{})
	m.RunEra(SeqChooser{}, false, func(mt *T) {
		l := NewLock(mt, "l")
		if l.Holder() != -1 {
			mt.Failf("fresh lock held by %d", l.Holder())
		}
		l.Acquire(mt)
		if l.Holder() != mt.ID() {
			mt.Failf("holder=%d", l.Holder())
		}
		l.Release(mt)
	})
}

func TestOutcomeStrings(t *testing.T) {
	for o, want := range map[Outcome]string{
		Done:        "done",
		Crashed:     "crashed",
		Violation:   "violation",
		Outcome(99): "Outcome(99)",
	} {
		if o.String() != want {
			t.Fatalf("%d -> %q", int(o), o.String())
		}
	}
}
