package machine

import (
	"strings"
	"testing"
	"testing/quick"
)

// runScripted executes a fixed small concurrent program under a choice
// script and returns the trace; the machine must be a deterministic
// function of the script (the property the stateless model checker's
// replay depends on).
func runScripted(script []int) []string {
	m := New(Options{MaxSteps: 500})
	sc := &ScriptChooser{Script: script}
	m.RunEra(sc, true, func(t *T) {
		l := NewLock(t, "l")
		r := NewRef(t, "x", 0)
		for i := 0; i < 3; i++ {
			v := i
			t.Go(func(c *T) {
				l.Acquire(c)
				r.Store(c, v)
				l.Release(c)
			})
		}
	})
	return append([]string{}, m.Trace()...)
}

func TestQuickSchedulingIsDeterministic(t *testing.T) {
	err := quick.Check(func(raw []uint8) bool {
		script := make([]int, len(raw))
		for i, b := range raw {
			script[i] = int(b % 5)
		}
		a := runScripted(script)
		b := runScripted(script)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickLockedCounterAlwaysConsistent(t *testing.T) {
	// Under any schedule, n threads each incrementing a locked counter
	// once yield exactly n.
	err := quick.Check(func(seed int64, n8 uint8) bool {
		n := int(n8%5) + 1
		m := New(Options{})
		r := (*Ref[int])(nil)
		res := m.RunEra(NewRandChooser(seed), false, func(t *T) {
			l := NewLock(t, "l")
			r = NewRef(t, "ctr", 0)
			for i := 0; i < n; i++ {
				t.Go(func(c *T) {
					l.Acquire(c)
					r.Store(c, r.Load(c)+1)
					l.Release(c)
				})
			}
		})
		if res.Outcome != Done {
			return false
		}
		// Peek via one more era.
		got := -1
		m.RunEra(SeqChooser{}, false, func(t *T) { got = r.Load(t) })
		return got == n
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickCrashAlwaysKillsEverything(t *testing.T) {
	// Whatever the schedule, once a crash is injected no thread's
	// post-crash effect is visible and the version advances exactly once
	// per CrashReset.
	err := quick.Check(func(seed int64) bool {
		m := New(Options{})
		rc := NewRandChooser(seed)
		rc.CrashWeight = 3
		rc.CrashOption = true
		res := m.RunEra(rc, true, func(t *T) {
			for i := 0; i < 3; i++ {
				t.Go(func(c *T) {
					for j := 0; j < 10; j++ {
						c.Step("work")
					}
				})
			}
		})
		if res.Outcome == Crashed {
			before := m.Version()
			m.CrashReset()
			return m.Version() == before+1
		}
		return res.Outcome == Done
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScriptChooserClampsOutOfRange(t *testing.T) {
	sc := &ScriptChooser{Script: []int{99, -5}}
	if got := sc.Choose(3, "x"); got != 2 {
		t.Fatalf("clamp high: %d", got)
	}
	if got := sc.Choose(3, "x"); got != 0 {
		t.Fatalf("clamp low: %d", got)
	}
	if got := sc.Choose(3, "x"); got != 0 {
		t.Fatalf("exhausted script: %d", got)
	}
}

func TestSeqChooserAlwaysZero(t *testing.T) {
	if (SeqChooser{}).Choose(5, "any") != 0 {
		t.Fatal("SeqChooser must pick 0")
	}
}

func TestRandChooserCrashWeight(t *testing.T) {
	rc := NewRandChooser(1)
	rc.CrashWeight = 2
	rc.CrashOption = true
	crashes := 0
	for i := 0; i < 1000; i++ {
		if rc.Choose(4, "sched") == 3 {
			crashes++
		}
	}
	if crashes < 300 || crashes > 700 {
		t.Fatalf("crash weight off: %d/1000", crashes)
	}
	// Non-sched choices never pick the crash pseudo-option... they may
	// return any index; just check bounds.
	for i := 0; i < 100; i++ {
		if c := rc.Choose(4, "rand"); c < 0 || c >= 4 {
			t.Fatalf("out of range: %d", c)
		}
	}
}

func TestTraceIsScriptReplayable(t *testing.T) {
	// A trace observed once is observed again under the same script —
	// including crash position.
	script := []int{1, 0, 2, 1, 4, 0, 0, 1, 3}
	a := runScripted(script)
	b := runScripted(script)
	if strings.Join(a, "|") != strings.Join(b, "|") {
		t.Fatalf("replay diverged:\n%v\n%v", a, b)
	}
}
