package machine

import "math/rand"

// SeqChooser always picks option 0: threads run round-robin-free,
// first-runnable-first, and no crash is ever injected (the crash option
// is last). Useful for smoke-running a program deterministically.
type SeqChooser struct{}

// Choose implements Chooser.
func (SeqChooser) Choose(n int, tag string) int { return 0 }

// RandChooser resolves choices with a seeded PRNG, for randomized stress
// exploration. CrashWeight tunes how often the crash option (always the
// last "sched" option when crashes are allowed) is taken: the crash
// option is chosen with probability 1/CrashWeight when present. A zero
// CrashWeight never crashes.
type RandChooser struct {
	Rng         *rand.Rand
	CrashWeight int
	// CrashOption reports whether the last sched option is a crash; set
	// by the harness when it calls RunEra with allowCrash=true.
	CrashOption bool
}

// NewRandChooser returns a RandChooser with the given seed and no
// crashes.
func NewRandChooser(seed int64) *RandChooser {
	return &RandChooser{Rng: rand.New(rand.NewSource(seed))}
}

// Choose implements Chooser.
func (r *RandChooser) Choose(n int, tag string) int {
	if n <= 1 {
		return 0
	}
	if tag == "sched" && r.CrashOption && r.CrashWeight > 0 {
		if r.Rng.Intn(r.CrashWeight) == 0 {
			return n - 1 // crash
		}
		return r.Rng.Intn(n - 1)
	}
	return r.Rng.Intn(n)
}

// ScriptChooser replays a fixed script of choices, then falls back to 0.
// The model checker uses its own chooser; this one is for reproducing a
// counterexample trace by hand.
type ScriptChooser struct {
	Script []int
	pos    int
}

// Choose implements Chooser.
func (s *ScriptChooser) Choose(n int, tag string) int {
	if s.pos >= len(s.Script) {
		return 0
	}
	c := s.Script[s.pos]
	s.pos++
	if c >= n {
		c = n - 1
	}
	if c < 0 {
		c = 0
	}
	return c
}
