package machine

import (
	"strings"
	"testing"
)

func run(t *testing.T, main func(t *T)) EraResult {
	t.Helper()
	m := New(Options{})
	return m.RunEra(SeqChooser{}, false, main)
}

func TestSingleThreadRunsToCompletion(t *testing.T) {
	ran := false
	res := run(t, func(mt *T) {
		mt.Step("nop")
		ran = true
	})
	if res.Outcome != Done || !ran {
		t.Fatalf("res=%+v ran=%v", res, ran)
	}
}

func TestRefLoadStoreRoundTrip(t *testing.T) {
	var got int
	res := run(t, func(mt *T) {
		r := NewRef(mt, "x", 10)
		r.Store(mt, 42)
		got = r.Load(mt)
	})
	if res.Outcome != Done || got != 42 {
		t.Fatalf("res=%+v got=%d", res, got)
	}
}

func TestGoSpawnsChildAndEraWaitsForIt(t *testing.T) {
	childRan := false
	res := run(t, func(mt *T) {
		mt.Go(func(c *T) {
			c.Step("child")
			childRan = true
		})
	})
	if res.Outcome != Done || !childRan {
		t.Fatalf("res=%+v childRan=%v", res, childRan)
	}
}

func TestLockMutualExclusion(t *testing.T) {
	// Two threads increment a shared counter under a lock; with the
	// random chooser over many seeds the result must always be 2.
	for seed := int64(0); seed < 50; seed++ {
		m := New(Options{})
		final := 0
		res := m.RunEra(NewRandChooser(seed), false, func(mt *T) {
			l := NewLock(mt, "l")
			r := NewRef(mt, "ctr", 0)
			done := NewRef(mt, "done", 0)
			worker := func(c *T) {
				l.Acquire(c)
				v := r.Load(c)
				r.Store(c, v+1)
				l.Release(c)
				d := done.Load(c)
				done.StoreAtomic(c, d+1)
			}
			mt.Go(worker)
			mt.Go(worker)
		})
		if res.Outcome != Done {
			t.Fatalf("seed %d: %+v", seed, res)
		}
		_ = final
	}
}

func TestUnlockedCounterRaceIsDetected(t *testing.T) {
	// Two threads store the same cell without a lock. Some schedule must
	// interleave the two-step stores and flag a race.
	found := false
	for seed := int64(0); seed < 200 && !found; seed++ {
		m := New(Options{})
		res := m.RunEra(NewRandChooser(seed), false, func(mt *T) {
			r := NewRef(mt, "x", 0)
			mt.Go(func(c *T) { r.Store(c, 1) })
			mt.Go(func(c *T) { r.Store(c, 2) })
		})
		if res.Outcome == Violation && strings.Contains(res.Err.Error(), "data race") {
			found = true
		}
	}
	if !found {
		t.Fatal("no seed exposed the data race on an unlocked store")
	}
}

func TestLoadDuringStoreIsARace(t *testing.T) {
	found := false
	for seed := int64(0); seed < 200 && !found; seed++ {
		m := New(Options{})
		res := m.RunEra(NewRandChooser(seed), false, func(mt *T) {
			r := NewRef(mt, "x", 0)
			mt.Go(func(c *T) { r.Store(c, 1) })
			mt.Go(func(c *T) { _ = r.Load(c) })
		})
		if res.Outcome == Violation && strings.Contains(res.Err.Error(), "data race") {
			found = true
		}
	}
	if !found {
		t.Fatal("no seed exposed the load-during-store race")
	}
}

func TestCrashInjectionKillsThreads(t *testing.T) {
	m := New(Options{})
	// Chooser: first few schedules, then crash (last option).
	calls := 0
	ch := ChooserFunc(func(n int, tag string) int {
		if tag != "sched" {
			return 0
		}
		calls++
		if calls > 3 {
			return n - 1 // crash option
		}
		return 0
	})
	reached := false
	res := m.RunEra(ch, true, func(mt *T) {
		for i := 0; i < 100; i++ {
			mt.Step("spin")
		}
		reached = true
	})
	if res.Outcome != Crashed {
		t.Fatalf("res=%+v", res)
	}
	if reached {
		t.Fatal("thread ran to completion despite crash")
	}
}

func TestCrashResetBumpsVersionAndStalePointerIsCaught(t *testing.T) {
	m := New(Options{})
	var r *Ref[int]
	res := m.RunEra(SeqChooser{}, false, func(mt *T) {
		r = NewRef(mt, "x", 7)
	})
	if res.Outcome != Done {
		t.Fatalf("first era: %+v", res)
	}
	if m.Version() != 1 {
		t.Fatalf("version=%d", m.Version())
	}
	m.CrashReset()
	if m.Version() != 2 {
		t.Fatalf("version after crash=%d", m.Version())
	}
	res = m.RunEra(SeqChooser{}, false, func(mt *T) {
		_ = r.Load(mt) // stale: allocated at version 1
	})
	if res.Outcome != Violation || !strings.Contains(res.Err.Error(), "version") {
		t.Fatalf("stale pointer not caught: %+v", res)
	}
}

func TestStaleLockIsCaught(t *testing.T) {
	m := New(Options{})
	var l *Lock
	m.RunEra(SeqChooser{}, false, func(mt *T) { l = NewLock(mt, "l") })
	m.CrashReset()
	res := m.RunEra(SeqChooser{}, false, func(mt *T) { l.Acquire(mt) })
	if res.Outcome != Violation {
		t.Fatalf("stale lock not caught: %+v", res)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Two threads acquire two locks in opposite orders; some schedule
	// deadlocks.
	found := false
	for seed := int64(0); seed < 300 && !found; seed++ {
		m := New(Options{})
		res := m.RunEra(NewRandChooser(seed), false, func(mt *T) {
			a := NewLock(mt, "a")
			b := NewLock(mt, "b")
			mt.Go(func(c *T) {
				a.Acquire(c)
				b.Acquire(c)
				b.Release(c)
				a.Release(c)
			})
			mt.Go(func(c *T) {
				b.Acquire(c)
				a.Acquire(c)
				a.Release(c)
				b.Release(c)
			})
		})
		if res.Outcome == Violation && strings.Contains(res.Err.Error(), "deadlock") {
			found = true
		}
	}
	if !found {
		t.Fatal("no seed exposed the lock-order deadlock")
	}
}

func TestSelfDeadlockOnReacquire(t *testing.T) {
	res := run(t, func(mt *T) {
		l := NewLock(mt, "l")
		l.Acquire(mt)
		l.Acquire(mt)
	})
	if res.Outcome != Violation || !strings.Contains(res.Err.Error(), "re-acquired") {
		t.Fatalf("res=%+v", res)
	}
}

func TestReleaseWithoutHoldIsViolation(t *testing.T) {
	res := run(t, func(mt *T) {
		l := NewLock(mt, "l")
		l.Release(mt)
	})
	if res.Outcome != Violation {
		t.Fatalf("res=%+v", res)
	}
}

func TestStepBudgetCatchesInfiniteLoop(t *testing.T) {
	m := New(Options{MaxSteps: 500})
	res := m.RunEra(SeqChooser{}, false, func(mt *T) {
		for {
			mt.Step("spin") // the §9.5 Pickup infinite-loop bug class
		}
	})
	if res.Outcome != Violation || !strings.Contains(res.Err.Error(), "infinite loop") {
		t.Fatalf("res=%+v", res)
	}
}

func TestThreadPanicIsReportedAsViolation(t *testing.T) {
	res := run(t, func(mt *T) {
		mt.Step("pre")
		panic("boom")
	})
	if res.Outcome != Violation || !strings.Contains(res.Err.Error(), "boom") {
		t.Fatalf("res=%+v", res)
	}
}

func TestRandUint64IsChooserDriven(t *testing.T) {
	m := New(Options{})
	ch := ChooserFunc(func(n int, tag string) int {
		if tag == "rand" {
			return 3
		}
		return 0
	})
	var got uint64
	res := m.RunEra(ch, false, func(mt *T) { got = mt.RandUint64(10) })
	if res.Outcome != Done || got != 3 {
		t.Fatalf("res=%+v got=%d", res, got)
	}
}

func TestDeviceCrashCalledOnReset(t *testing.T) {
	m := New(Options{})
	d := &countingDevice{}
	m.RegisterDevice(d)
	m.CrashReset()
	m.CrashReset()
	if d.crashes != 2 {
		t.Fatalf("device crashes=%d", d.crashes)
	}
}

type countingDevice struct{ crashes int }

func (d *countingDevice) Crash() { d.crashes++ }

func TestTraceRecordsEvents(t *testing.T) {
	m := New(Options{})
	m.RunEra(SeqChooser{}, false, func(mt *T) {
		r := NewRef(mt, "cell", 0)
		r.Store(mt, 1)
	})
	joined := strings.Join(m.Trace(), "\n")
	if !strings.Contains(joined, "alloc cell") || !strings.Contains(joined, "store cell") {
		t.Fatalf("trace missing events:\n%s", joined)
	}
}

func TestTraceDepthBoundsTrace(t *testing.T) {
	m := New(Options{TraceDepth: 5})
	m.RunEra(SeqChooser{}, false, func(mt *T) {
		for i := 0; i < 50; i++ {
			mt.Tracef("line %d", i)
			mt.Step("nop")
		}
	})
	if len(m.Trace()) > 5 {
		t.Fatalf("trace len=%d", len(m.Trace()))
	}
}

func TestManyThreadsAllComplete(t *testing.T) {
	m := New(Options{})
	count := 0
	res := m.RunEra(NewRandChooser(1), false, func(mt *T) {
		r := NewRef(mt, "ctr", 0)
		l := NewLock(mt, "l")
		for i := 0; i < 8; i++ {
			mt.Go(func(c *T) {
				l.Acquire(c)
				r.Store(c, r.Load(c)+1)
				l.Release(c)
			})
		}
		_ = r
		count = 8
	})
	if res.Outcome != Done || count != 8 {
		t.Fatalf("res=%+v", res)
	}
}
