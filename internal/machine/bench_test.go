package machine

import "testing"

// Micro-benchmarks for the modeled machine's primitives: the model
// checker's throughput is bounded by steps/second, so these numbers
// bound how large a scenario's exploration budget can usefully be.

func BenchmarkStepThroughput(b *testing.B) {
	m := New(Options{MaxSteps: b.N + 10})
	res := m.RunEra(SeqChooser{}, false, func(t *T) {
		for i := 0; i < b.N; i++ {
			t.Step("bench")
		}
	})
	if res.Outcome != Done {
		b.Fatal(res.Err)
	}
}

func BenchmarkRefLoadStore(b *testing.B) {
	m := New(Options{MaxSteps: 3*b.N + 10})
	res := m.RunEra(SeqChooser{}, false, func(t *T) {
		r := NewRef(t, "x", 0)
		for i := 0; i < b.N; i++ {
			r.Store(t, r.Load(t))
		}
	})
	if res.Outcome != Done {
		b.Fatal(res.Err)
	}
}

func BenchmarkLockAcquireRelease(b *testing.B) {
	m := New(Options{MaxSteps: 2*b.N + 10})
	res := m.RunEra(SeqChooser{}, false, func(t *T) {
		l := NewLock(t, "l")
		for i := 0; i < b.N; i++ {
			l.Acquire(t)
			l.Release(t)
		}
	})
	if res.Outcome != Done {
		b.Fatal(res.Err)
	}
}

func BenchmarkEraSetupTeardown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := New(Options{})
		res := m.RunEra(SeqChooser{}, false, func(t *T) {
			t.Step("one")
		})
		if res.Outcome != Done {
			b.Fatal(res.Err)
		}
	}
}

func BenchmarkThreadSpawn(b *testing.B) {
	m := New(Options{MaxSteps: 2*b.N + 10})
	res := m.RunEra(SeqChooser{}, false, func(t *T) {
		for i := 0; i < b.N; i++ {
			t.Go(func(c *T) {})
		}
	})
	if res.Outcome != Done {
		b.Fatal(res.Err)
	}
}
