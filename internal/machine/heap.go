package machine

// cell is one volatile heap location. Cells are tied to the memory
// version at which they were allocated; after a crash they are stale and
// any use is a violation (§5.2's versioned points-to capabilities).
//
// A store takes two atomic steps (start and end), per §6.1's Go memory
// model treatment: any other access to the cell between the two steps is
// a race, which is undefined behaviour and reported as a violation.
type cell struct {
	version uint64
	value   any
	// writer is the thread currently between store-start and store-end,
	// or -1 if no store is in progress.
	writer TID
	name   string
}

// Ref is a typed reference to a volatile heap cell, the model of a Go
// pointer (or a pointer-sized field such as a slice header) in Goose.
type Ref[V any] struct {
	c *cell
}

// NewRef allocates a heap cell holding v. Allocation is one atomic step.
// The name appears in traces and violation messages.
func NewRef[V any](t *T, name string, v V) *Ref[V] {
	t.Step("alloc")
	c := &cell{version: t.m.version, value: v, writer: -1, name: name}
	t.m.Tracef("t%d: alloc %s", t.th.id, name)
	return &Ref[V]{c: c}
}

// Load reads the cell. One atomic step. Reading concurrently with a
// store to the same cell is a race and therefore undefined behaviour.
func (r *Ref[V]) Load(t *T) V {
	t.Step("load")
	t.checkVersion("pointer "+r.c.name, r.c.version)
	if r.c.writer != -1 && r.c.writer != t.th.id {
		t.Failf("data race: t%d loads %s while t%d's store is in progress", t.th.id, r.c.name, r.c.writer)
	}
	v, ok := r.c.value.(V)
	if !ok && r.c.value != nil {
		t.Failf("heap cell %s holds %T, loaded at wrong type", r.c.name, r.c.value)
	}
	return v
}

// Store writes the cell in two atomic steps (start, end). Any concurrent
// access between the steps is a race.
func (r *Ref[V]) Store(t *T, v V) {
	t.Step("store-start")
	t.checkVersion("pointer "+r.c.name, r.c.version)
	if r.c.writer != -1 {
		t.Failf("data race: t%d starts storing %s while t%d's store is in progress", t.th.id, r.c.name, r.c.writer)
	}
	r.c.writer = t.th.id

	t.Step("store-end")
	t.checkVersion("pointer "+r.c.name, r.c.version)
	if r.c.writer != t.th.id {
		t.Failf("data race: %s store by t%d interleaved with another store", r.c.name, t.th.id)
	}
	r.c.writer = -1
	r.c.value = v
	t.m.Tracef("t%d: store %s", t.th.id, r.c.name)
}

// StoreAtomic writes the cell in a single atomic step. Goose does not
// model sync/atomic (§6.1), but the machine provides this for harness
// bookkeeping that should not introduce extra interleavings.
func (r *Ref[V]) StoreAtomic(t *T, v V) {
	t.Step("store-atomic")
	t.checkVersion("pointer "+r.c.name, r.c.version)
	if r.c.writer != -1 {
		t.Failf("data race: t%d atomically stores %s while t%d's store is in progress", t.th.id, r.c.name, r.c.writer)
	}
	r.c.value = v
}
