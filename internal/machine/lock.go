package machine

// Lock models a Go sync.Mutex in Goose (§4's lock invariants, §6.1).
// Locks are volatile: a crash destroys them, and using a lock allocated
// before a crash is a stale-pointer violation. Acquire blocks the thread
// (it is not runnable until the holder releases), so the scheduler never
// wastes interleavings on spinning.
type Lock struct {
	version uint64
	name    string
	holder  TID // -1 when free
	waiters []*thread
	m       *Machine
}

// NewLock allocates a lock. One atomic step.
func NewLock(t *T, name string) *Lock {
	t.Step("newlock")
	l := &Lock{version: t.m.version, name: name, holder: -1, m: t.m}
	t.m.Tracef("t%d: newlock %s", t.th.id, name)
	return l
}

// Acquire takes the lock, blocking while another thread holds it. The
// acquire itself is one atomic step.
func (l *Lock) Acquire(t *T) {
	t.Step("acquire")
	for {
		t.checkVersion("lock "+l.name, l.version)
		if l.holder == -1 {
			l.holder = t.th.id
			t.m.Tracef("t%d: acquire %s", t.th.id, l.name)
			return
		}
		if l.holder == t.th.id {
			t.Failf("lock %s re-acquired by holder t%d (Go mutexes are not reentrant: self-deadlock)", l.name, t.th.id)
		}
		l.waiters = append(l.waiters, t.th)
		t.block()
		// Re-check: another waiter may have won the race after release.
	}
}

// Release frees the lock and wakes all waiters (they re-contend). One
// atomic step. Releasing a lock the thread does not hold is undefined
// behaviour, matching sync.Mutex's fatal unlock-of-unlocked-mutex.
func (l *Lock) Release(t *T) {
	t.Step("release")
	t.checkVersion("lock "+l.name, l.version)
	if l.holder != t.th.id {
		t.Failf("lock %s released by t%d but held by t%d", l.name, t.th.id, l.holder)
	}
	l.holder = -1
	for _, w := range l.waiters {
		if w.status == statusBlocked {
			w.status = statusReady
		}
	}
	l.waiters = nil
	t.m.Tracef("t%d: release %s", t.th.id, l.name)
}

// Holder returns the current holder TID, or -1. For harness assertions.
func (l *Lock) Holder() TID { return l.holder }
