// Package machine models the Goose machine of §6: a shared-memory
// multiprocessor running lightweight threads, with a versioned volatile
// heap, locks, and pluggable durable devices (disks, a file system).
//
// Every primitive operation is one atomic step. A deterministic
// cooperative scheduler serializes threads: exactly one simulated thread
// runs at a time, and all nondeterminism — which thread steps next,
// whether a crash happens now, random numbers, device failures — is
// resolved by a Chooser supplied by the caller. The model checker in
// internal/explore drives the Chooser to enumerate executions; a seeded
// PRNG Chooser gives randomized stress runs.
//
// Crash semantics follow §5.2 and §6.2: a crash kills every thread,
// discards all volatile state (heap cells, locks), advances the memory
// version number, and notifies each registered device so it can keep its
// durable state and drop its volatile state (e.g. open file
// descriptors). Using a heap cell or lock allocated before the crash is
// a detected violation ("stale pointer"), the executable analog of the
// paper's versioned points-to capabilities.
//
// Racy access is undefined behaviour, per §6.1: a store is modeled as two
// atomic steps (start and end), and any other access to the same cell
// between them is reported as a race violation.
package machine

import (
	"errors"
	"fmt"
)

// TID identifies a simulated thread within one era of execution.
type TID int

// Chooser resolves every nondeterministic choice the machine makes.
// Choose(n, tag) must return a value in [0, n). The tag describes the
// kind of choice ("sched", "crash", "rand", "diskfail", ...) for traces
// and for choosers that want to treat kinds differently.
type Chooser interface {
	Choose(n int, tag string) int
}

// ChooserFunc adapts a function to the Chooser interface.
type ChooserFunc func(n int, tag string) int

// Choose implements Chooser.
func (f ChooserFunc) Choose(n int, tag string) int { return f(n, tag) }

// Observer receives structured schedule events as the machine runs:
// which thread each "sched" choice resolved to, and when a crash is
// injected. The Chooser alone cannot see this — it is offered an
// anonymous option count, while the machine knows which runnable
// thread an option denotes. internal/explore uses an Observer to
// record replayable counterexample schedules. Callbacks run on the
// scheduler, between atomic steps; they must not call back into the
// machine.
type Observer interface {
	// Scheduled reports that the next atomic step belongs to tid.
	Scheduled(tid TID)
	// CrashInjected reports that the era is ending in an injected crash.
	CrashInjected()
}

// Device is durable hardware attached to the machine. Crash is invoked
// on every machine crash; the device must discard volatile state (e.g.
// open file descriptors) and keep durable state (e.g. disk blocks).
type Device interface {
	Crash()
}

// Outcome says how an era of execution ended.
type Outcome int

const (
	// Done: every thread ran to completion.
	Done Outcome = iota
	// Crashed: the Chooser injected a crash; all threads were killed.
	Crashed
	// Violation: undefined behaviour or a model-level failure was
	// detected (race, stale pointer, deadlock, panic, step budget).
	Violation
)

func (o Outcome) String() string {
	switch o {
	case Done:
		return "done"
	case Crashed:
		return "crashed"
	case Violation:
		return "violation"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// EraResult reports the outcome of one era (a run between machine
// (re)starts) together with the violation error, if any.
type EraResult struct {
	Outcome Outcome
	Err     error
}

// thread lifecycle statuses. Only the scheduler and the single running
// thread mutate these, and hand-offs through channels order all accesses.
type status int

const (
	statusReady status = iota
	statusBlocked
	statusExited
)

type resumeKind int

const (
	resumeGo resumeKind = iota
	resumeKill
)

type reportKind int

const (
	reportParked reportKind = iota
	reportBlocked
	reportExited
	reportDead
)

type report struct {
	tid  TID
	kind reportKind
}

// killedSentinel is panicked by a primitive when its thread is killed by
// a crash; the thread wrapper recovers it and reports death.
type killedSentinel struct{}

// Options configures a Machine.
type Options struct {
	// MaxSteps bounds the number of primitive steps per era; exceeding it
	// is reported as a violation (possible infinite loop — the class of
	// bug in §9.5's Pickup loop). 0 means the default of 100000.
	MaxSteps int
	// TraceDepth bounds the retained trace (0 = keep everything).
	TraceDepth int
	// Observer, when non-nil, receives structured schedule events.
	Observer Observer
}

// Machine is one simulated machine instance. Durable devices survive
// CrashReset; everything else is volatile.
type Machine struct {
	chooser Chooser
	opts    Options

	version uint64
	devices []Device

	threads []*thread
	alive   int
	reports chan report

	steps   int
	failure error
	trace   []string

	running bool
}

// New creates a machine with no devices at version 1.
func New(opts Options) *Machine {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 100000
	}
	return &Machine{opts: opts, version: 1}
}

// Version returns the current memory generation number n of §5.2. It
// starts at 1 and increments on every crash.
func (m *Machine) Version() uint64 { return m.version }

// Steps returns the number of primitive steps taken so far across all
// eras (useful as a logical clock for histories).
func (m *Machine) Steps() int { return m.steps }

// RegisterDevice attaches a durable device; its Crash method will be
// invoked on CrashReset.
func (m *Machine) RegisterDevice(d Device) { m.devices = append(m.devices, d) }

// Failf records a violation. The first failure wins. When called from a
// running thread the caller should abort that thread via T.Failf instead.
func (m *Machine) Failf(format string, args ...any) {
	if m.failure == nil {
		m.failure = fmt.Errorf(format, args...)
	}
}

// Failure returns the recorded violation, if any.
func (m *Machine) Failure() error { return m.failure }

// Tracef appends a line to the execution trace.
func (m *Machine) Tracef(format string, args ...any) {
	if m.opts.TraceDepth > 0 && len(m.trace) >= m.opts.TraceDepth {
		copy(m.trace, m.trace[1:])
		m.trace[len(m.trace)-1] = fmt.Sprintf(format, args...)
		return
	}
	m.trace = append(m.trace, fmt.Sprintf(format, args...))
}

// Trace returns the accumulated execution trace (for counterexamples).
func (m *Machine) Trace() []string { return m.trace }

// ResetTrace clears the trace between explored executions.
func (m *Machine) ResetTrace() { m.trace = m.trace[:0] }

// CrashReset models the machine crashing and rebooting: all volatile
// state is gone, the memory version advances, and devices keep only
// their durable state. Threads must already be dead (RunEra kills them
// before returning Crashed).
func (m *Machine) CrashReset() {
	if m.running {
		panic("machine: CrashReset during a running era")
	}
	m.version++
	m.threads = nil
	m.alive = 0
	for _, d := range m.devices {
		d.Crash()
	}
	m.Tracef("-- crash: memory version now %d --", m.version)
}

// CrashChoose resolves crash-time nondeterminism from inside a
// Device.Crash handler — e.g. which prefix of an unsynced file tail
// survives a torn crash. No thread is running during CrashReset, so the
// choice cannot go through T.Choose; it is resolved by the chooser of
// the era that just crashed (RunEra leaves it installed). Outside any
// era (unit tests driving CrashReset directly) there is no chooser and
// the first option is taken, preserving the deterministic default.
// Out-of-range answers are clamped to 0, matching ScriptChooser's
// treatment of exhausted scripts so replay and minimization stay valid.
func (m *Machine) CrashChoose(n int, tag string) int {
	if n <= 1 || m.chooser == nil {
		return 0
	}
	c := m.chooser.Choose(n, tag)
	if c < 0 || c >= n {
		return 0
	}
	return c
}

// RunEra runs one era: main is started as thread 0 and the era continues
// until every thread (including ones spawned with T.Go) has exited, a
// crash is injected, or a violation is detected. If allowCrash is true
// the Chooser is offered a crash option at every scheduling point.
func (m *Machine) RunEra(chooser Chooser, allowCrash bool, main func(t *T)) EraResult {
	if m.running {
		panic("machine: RunEra reentered")
	}
	m.running = true
	defer func() { m.running = false }()

	m.chooser = chooser
	m.failure = nil
	m.threads = nil
	m.alive = 0
	m.reports = make(chan report)

	m.spawn(main)

	for {
		if m.failure != nil {
			m.killAll()
			return EraResult{Outcome: Violation, Err: m.failure}
		}
		runnable := m.runnable()
		if len(runnable) == 0 {
			if m.alive == 0 {
				return EraResult{Outcome: Done}
			}
			m.Failf("deadlock: %d thread(s) blocked with no runnable thread", m.alive)
			m.killAll()
			return EraResult{Outcome: Violation, Err: m.failure}
		}

		n := len(runnable)
		if allowCrash {
			n++
		}
		choice := m.chooser.Choose(n, "sched")
		if choice < 0 || choice >= n {
			m.Failf("chooser returned %d out of range [0,%d)", choice, n)
			m.killAll()
			return EraResult{Outcome: Violation, Err: m.failure}
		}
		if allowCrash && choice == n-1 {
			m.Tracef("scheduler: inject crash")
			if m.opts.Observer != nil {
				m.opts.Observer.CrashInjected()
			}
			m.killAll()
			return EraResult{Outcome: Crashed}
		}

		th := runnable[choice]
		if m.opts.Observer != nil {
			m.opts.Observer.Scheduled(th.id)
		}
		th.resume <- resumeGo
		rep := <-m.reports
		m.handleReport(rep)

		if m.steps > m.opts.MaxSteps && m.failure == nil {
			m.Failf("step budget exceeded (%d steps): possible infinite loop or livelock", m.opts.MaxSteps)
		}
	}
}

func (m *Machine) handleReport(rep report) {
	th := m.threads[rep.tid]
	switch rep.kind {
	case reportParked:
		th.status = statusReady
	case reportBlocked:
		th.status = statusBlocked
	case reportExited, reportDead:
		th.status = statusExited
		m.alive--
	}
}

func (m *Machine) runnable() []*thread {
	var out []*thread
	for _, th := range m.threads {
		if th.status == statusReady {
			out = append(out, th)
		}
	}
	return out
}

// killAll terminates every live thread. It is only called between steps,
// when no thread is executing.
func (m *Machine) killAll() {
	for _, th := range m.threads {
		if th.status == statusExited {
			continue
		}
		th.resume <- resumeKill
		rep := <-m.reports
		m.handleReport(rep)
	}
}

// spawn creates a thread and starts its goroutine parked: it waits for
// its first resume before running fn.
func (m *Machine) spawn(fn func(t *T)) TID {
	tid := TID(len(m.threads))
	th := &thread{
		id:     tid,
		status: statusReady,
		resume: make(chan resumeKind),
	}
	m.threads = append(m.threads, th)
	m.alive++

	t := &T{m: m, th: th}
	go func() {
		kind := reportExited
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedSentinel); !ok {
					m.Failf("thread %d panicked: %v", tid, r)
				}
				kind = reportDead
			}
			m.reports <- report{tid: tid, kind: kind}
		}()
		t.await() // park until first scheduled
		fn(t)
	}()
	return tid
}

type thread struct {
	id     TID
	status status
	resume chan resumeKind
}

// T is the handle a simulated thread uses to interact with the machine.
// All primitive operations go through T; each is one atomic step.
type T struct {
	m  *Machine
	th *thread
}

// ID returns this thread's identifier within the current era.
func (t *T) ID() TID { return t.th.id }

// Machine returns the underlying machine, for device packages that
// implement new primitives.
func (t *T) Machine() *Machine { return t.m }

// await blocks until the scheduler resumes this thread, panicking with
// the kill sentinel if the thread is being killed by a crash.
func (t *T) await() {
	if <-t.th.resume == resumeKill {
		panic(killedSentinel{})
	}
}

// Step marks an atomic step boundary: the thread parks and the scheduler
// picks who runs next. Device packages call this exactly once per
// primitive, before applying the primitive's effect. tag describes the
// primitive for traces.
func (t *T) Step(tag string) {
	t.m.steps++
	t.m.reports <- report{tid: t.th.id, kind: reportParked}
	t.await()
	_ = tag
}

// block parks the thread in a non-runnable state; wake from another
// thread makes it runnable again.
func (t *T) block() {
	t.m.reports <- report{tid: t.th.id, kind: reportBlocked}
	t.await()
}

// Failf reports undefined behaviour or a model violation detected by
// this thread and aborts it.
func (t *T) Failf(format string, args ...any) {
	t.m.Failf(format, args...)
	panic(killedSentinel{})
}

// Tracef appends a line to the machine trace, prefixed with the thread.
func (t *T) Tracef(format string, args ...any) {
	t.m.Tracef("t%d: %s", t.th.id, fmt.Sprintf(format, args...))
}

// Go spawns a new thread running fn, like a Go `go` statement (§6.1).
// Spawning is one atomic step.
func (t *T) Go(fn func(t *T)) TID {
	t.Step("go")
	tid := t.m.spawn(fn)
	t.m.Tracef("t%d: go -> t%d", t.th.id, tid)
	return tid
}

// RandUint64 returns a nondeterministically chosen value in [0, bound),
// resolved by the Chooser (tag "rand"). Mailboat uses this for spool
// file names; under the model checker the domain should be small.
func (t *T) RandUint64(bound uint64) uint64 {
	if bound == 0 {
		t.Failf("RandUint64 with zero bound")
	}
	t.Step("rand")
	n := bound
	const maxEnum = 1 << 20
	if n > maxEnum {
		n = maxEnum
	}
	v := uint64(t.m.chooser.Choose(int(n), "rand"))
	t.m.Tracef("t%d: rand(%d) = %d", t.th.id, bound, v)
	return v
}

// Choose resolves a device-level nondeterministic choice within the
// current atomic step (no extra scheduling point). Device packages use
// this for choices like disk-failure injection.
func (t *T) Choose(n int, tag string) int {
	c := t.m.chooser.Choose(n, tag)
	if c < 0 || c >= n {
		t.Failf("chooser returned %d out of range [0,%d) for %q", c, n, tag)
	}
	return c
}

// ErrStale is wrapped by stale-pointer violations.
var ErrStale = errors.New("use of volatile resource from a previous version")

// checkVersion verifies a volatile resource is from the current memory
// version, the executable form of the p ↦ₙ v version check of §5.2.
func (t *T) checkVersion(kind string, v uint64) {
	if v != t.m.version {
		t.Failf("%s allocated at version %d used at version %d: %w", kind, v, t.m.version, ErrStale)
	}
}
