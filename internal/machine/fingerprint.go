package machine

import "encoding/binary"

// Fingerprinter is an optional extension of Device for durable-state
// fingerprinting. A device that implements it appends a *canonical*
// encoding of its durable state — the state that survives Crash — to
// the given buffer: equal durable states must produce equal bytes, and
// the encoding must be self-delimiting (length-prefix variable-size
// parts) so devices cannot alias each other's bytes.
//
// The model checker in internal/explore uses these encodings to build
// crash-boundary state fingerprints for its dedup table; a machine with
// a non-fingerprintable device reports !ok from AppendDurable and the
// explorer disables dedup for the scenario rather than risk an unsound
// prune.
type Fingerprinter interface {
	AppendDurable(b []byte) []byte
}

// AppendDurable appends every registered device's canonical durable
// encoding to b, in registration order (which is deterministic for a
// deterministic Setup). ok is false when at least one device does not
// implement Fingerprinter; the partial encoding is still returned but
// must not be used for dedup.
func (m *Machine) AppendDurable(b []byte) ([]byte, bool) {
	ok := true
	for i, d := range m.devices {
		b = AppendUint64(b, uint64(i))
		f, can := d.(Fingerprinter)
		if !can {
			ok = false
			continue
		}
		b = f.AppendDurable(b)
	}
	return b, ok
}

// AppendUint64 appends v in fixed-width little-endian form. Helper for
// Fingerprinter implementations.
func AppendUint64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendBool appends a bool as one byte. Helper for Fingerprinter
// implementations.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends s length-prefixed, keeping concatenated
// encodings unambiguous. Helper for Fingerprinter implementations.
func AppendString(b []byte, s string) []byte {
	b = AppendUint64(b, uint64(len(s)))
	return append(b, s...)
}

// AppendBytes appends p length-prefixed. Helper for Fingerprinter
// implementations.
func AppendBytes(b []byte, p []byte) []byte {
	b = AppendUint64(b, uint64(len(p)))
	return append(b, p...)
}
