package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry names metrics and renders them in the Prometheus text
// exposition format. Metrics are grouped into families (one name, one
// type, one help string) with any number of label-distinguished series.
// Registration is idempotent: asking for an existing (name, labels)
// series returns the same metric, so call sites may re-register freely.
//
// Registration takes the registry lock; the returned metrics are the
// lock-free primitives above, so the observation path never touches the
// registry again.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

type family struct {
	name, help, kind string
	buckets          []float64 // histograms only
	series           map[string]any
	order            []string // label signatures, registration order
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelSig renders labels ("k1", "v1", "k2", "v2", ...) as a canonical
// `{k1="v1",k2="v2"}` signature, sorted by key; empty labels yield "".
func labelSig(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) family(name, help, kind string, buckets []float64) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: map[string]any{}}
		r.families[name] = f
		r.order = append(r.order, name)
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// Counter registers (or finds) a counter series. labels are alternating
// key/value pairs.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter", nil)
	sig := labelSig(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Counter)
	}
	c := NewCounter()
	f.series[sig] = c
	f.order = append(f.order, sig)
	return c
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge", nil)
	sig := labelSig(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Gauge)
	}
	g := NewGauge()
	f.series[sig] = g
	f.order = append(f.order, sig)
	return g
}

// Histogram registers (or finds) a histogram series. All series of one
// family share the first registration's bucket layout.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	f := r.family(name, help, "histogram", bounds)
	sig := labelSig(labels)
	if m, ok := f.series[sig]; ok {
		return m.(*Histogram)
	}
	h := NewHistogram(f.buckets)
	f.series[sig] = h
	f.order = append(f.order, sig)
	return h
}

// formatFloat renders a float the way Prometheus text format expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels splices extra labels (like le) into an existing label
// signature.
func mergeLabels(sig, extra string) string {
	if sig == "" {
		return "{" + extra + "}"
	}
	return sig[:len(sig)-1] + "," + extra + "}"
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), families in registration
// order, series in registration order within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, sig := range f.order {
			switch m := f.series[sig].(type) {
			case *Counter:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, sig, m.Value()); err != nil {
					return err
				}
			case *Gauge:
				if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, sig, m.Value()); err != nil {
					return err
				}
			case *Histogram:
				bounds, counts := m.Snapshot()
				var cum uint64
				for i, b := range bounds {
					cum += counts[i]
					le := mergeLabels(sig, fmt.Sprintf("le=%q", formatFloat(b)))
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
						return err
					}
				}
				cum += counts[len(counts)-1]
				le := mergeLabels(sig, `le="+Inf"`)
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, le, cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, sig, formatFloat(m.Sum())); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, sig, m.Count()); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
