// Package obs is the observability layer: dependency-free (standard
// library only), lock-free metric primitives — counters, gauges, and
// fixed-bucket latency histograms — plus a registry that renders them
// in the Prometheus text exposition format.
//
// The package exists because the paper's evaluation (§9, Figure 11,
// Table 3) is about *measuring* the running system and the checker, and
// a reproduction that cannot see where time goes cannot honor the
// ROADMAP's "fast as the hardware allows" goal. Every primitive is safe
// under heavy concurrency and never takes a lock on the observation
// path: counters and gauges are single atomic adds, and a histogram
// observation is one atomic bucket increment plus a CAS loop on the
// float sum. Registration (rare) takes a mutex; observation (hot) never
// does.
//
// All metric methods are nil-receiver-safe: a nil *Counter, *Gauge, or
// *Histogram ignores observations and reads as zero, so instrumented
// code needs no "is observability enabled?" branches.
package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns an unregistered counter (tests, ad-hoc use);
// production code normally obtains counters from a Registry.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns an unregistered gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set replaces the value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram in the Prometheus style:
// cumulative le-bounded buckets, a running sum, and a total count. The
// bucket layout is fixed at construction, so observations are lock-free
// and concurrent observers never contend beyond cache-line traffic on
// the touched bucket.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
	total   atomic.Uint64
}

// DefLatencyBuckets spans sub-microsecond (RAM-backed file-system calls)
// through tens of seconds, roughly 2.5×/2×/2× per step like the
// Prometheus defaults but extended downward for in-memory operations.
var DefLatencyBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// DepthBuckets suits small positive integer distributions such as the
// model checker's choice-point depths: powers of two up to 64 Ki.
var DepthBuckets = []float64{
	1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
	1024, 2048, 4096, 8192, 16384, 32768, 65536,
}

// NewHistogram returns an unregistered histogram over the given sorted
// upper bounds (a +Inf overflow bucket is implicit).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: append([]float64{}, bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound admits v (le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds, the Prometheus
// convention for latency histograms.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the elapsed time since start. A zero start is
// ignored, so `var t time.Time; if enabled { t = time.Now() }` patterns
// need no second branch.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.ObserveDuration(time.Since(start))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing bucket, like PromQL's histogram_quantile. Values
// in the overflow bucket report the largest finite bound. Returns 0 with
// no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Merge adds other's observations into h. The bucket layouts must
// match; merging is how per-worker histograms aggregate after a
// parallel phase (the sum merge is approximate only in float rounding).
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	if len(h.bounds) != len(other.bounds) {
		panic("obs: merging histograms with different bucket layouts")
	}
	for i := range h.counts {
		h.counts[i].Add(other.counts[i].Load())
	}
	h.total.Add(other.total.Load())
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + other.Sum())
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Snapshot returns the bucket upper bounds and their non-cumulative
// counts (the final entry is the +Inf overflow bucket).
func (h *Histogram) Snapshot() (bounds []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	bounds = append([]float64{}, h.bounds...)
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return bounds, counts
}
