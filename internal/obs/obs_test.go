package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestConcurrentWriters hammers one counter, one gauge, and one
// histogram from many goroutines; run under -race this is the package's
// data-race certificate, and the final values certify no lost updates.
func TestConcurrentWriters(t *testing.T) {
	const writers = 32
	const perWriter = 2000

	c := NewCounter()
	g := NewGauge()
	h := NewHistogram(DefLatencyBuckets)

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				c.Inc()
				g.Inc()
				h.Observe(float64(i%100) * 1e-5)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Errorf("counter lost updates: got %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != writers*perWriter {
		t.Errorf("gauge lost updates: got %d, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("histogram lost observations: got %d, want %d", got, writers*perWriter)
	}
	// Sum of 0..99 (×1e-5) repeated perWriter/100 times per writer.
	want := float64(writers) * float64(perWriter/100) * (99 * 100 / 2) * 1e-5
	if math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("histogram sum drifted: got %g, want %g", h.Sum(), want)
	}
}

// TestConcurrentRegistration checks that racing registrations of the
// same series return one shared metric and never lose counts.
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const writers = 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("shared_total", "shared by all writers", "kind", "x").Inc()
				r.Histogram("shared_seconds", "latency", DefLatencyBuckets).Observe(1e-4)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total", "shared by all writers", "kind", "x").Value(); got != writers*100 {
		t.Errorf("registration not idempotent: got %d, want %d", got, writers*100)
	}
}

func TestNilMetricsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Dec()
	h.Observe(1)
	h.ObserveDuration(time.Second)
	h.ObserveSince(time.Now())
	h.Merge(NewHistogram(nil))
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil metrics must read as zero")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform over (0,4]: 25 per unit.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if p50 := h.Quantile(0.5); math.Abs(p50-2) > 0.5 {
		t.Errorf("p50 = %g, want ≈2", p50)
	}
	if p100 := h.Quantile(1); p100 != 4 {
		t.Errorf("p100 = %g, want 4", p100)
	}
	// Overflow bucket reports the largest finite bound.
	h.Observe(100)
	if q := h.Quantile(1); q != 8 {
		t.Errorf("overflow quantile = %g, want 8", q)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(5)
	a.Merge(b)
	if a.Count() != 3 {
		t.Errorf("merged count = %d, want 3", a.Count())
	}
	if math.Abs(a.Sum()-7) > 1e-9 {
		t.Errorf("merged sum = %g, want 7", a.Sum())
	}
}

func TestObserveSinceZeroStart(t *testing.T) {
	h := NewHistogram(nil)
	h.ObserveSince(time.Time{})
	if h.Count() != 0 {
		t.Error("zero start must not be observed")
	}
}
