package obs

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition output: families
// in registration order, label signatures canonicalized (keys sorted),
// histograms with cumulative le buckets, _sum, and _count. Scrapers
// parse this bytes-exactly, so the format is a compatibility surface.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()

	d := r.Counter("mail_deliver_total", "Deliveries committed.")
	d.Add(42)
	r.Counter("mail_ops_total", "Operations by class.", "op", "pickup").Add(7)
	r.Counter("mail_ops_total", "Operations by class.", "op", "deliver").Add(9)

	g := r.Gauge("mail_active_connections", "Connections being served.")
	g.Set(3)

	h := r.Histogram("mail_op_seconds", "Operation latency.", []float64{0.001, 0.01, 0.1}, "op", "deliver")
	h.Observe(0.0005)
	h.Observe(0.0005)
	h.Observe(0.05)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}

	want := `# HELP mail_deliver_total Deliveries committed.
# TYPE mail_deliver_total counter
mail_deliver_total 42
# HELP mail_ops_total Operations by class.
# TYPE mail_ops_total counter
mail_ops_total{op="pickup"} 7
mail_ops_total{op="deliver"} 9
# HELP mail_active_connections Connections being served.
# TYPE mail_active_connections gauge
mail_active_connections 3
# HELP mail_op_seconds Operation latency.
# TYPE mail_op_seconds histogram
mail_op_seconds_bucket{op="deliver",le="0.001"} 2
mail_op_seconds_bucket{op="deliver",le="0.01"} 2
mail_op_seconds_bucket{op="deliver",le="0.1"} 3
mail_op_seconds_bucket{op="deliver",le="+Inf"} 4
mail_op_seconds_sum{op="deliver"} 2.051
mail_op_seconds_count{op="deliver"} 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition format drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", "b", "2", "a", "1")
	b := r.Counter("x_total", "x", "a", "1", "b", "2")
	if a != b {
		t.Error("label order must not distinguish series")
	}
	a.Inc()
	var sb strings.Builder
	r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), `x_total{a="1",b="2"} 1`) {
		t.Errorf("labels not canonicalized:\n%s", sb.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("y_total", "y")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("y_total", "y")
}
