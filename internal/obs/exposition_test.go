package obs

import (
	"bufio"
	"strings"
	"sync"
	"testing"
)

// TestZeroCountHistogramExposition: a registered histogram that has
// never observed anything must still render a complete, well-formed
// series — every bucket (including +Inf) at 0, sum 0, count 0 — so a
// freshly booted server's first scrape parses.
func TestZeroCountHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram("idle_seconds", "Never observed.", []float64{0.1, 1})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`idle_seconds_bucket{le="0.1"} 0`,
		`idle_seconds_bucket{le="1"} 0`,
		`idle_seconds_bucket{le="+Inf"} 0`,
		"idle_seconds_sum 0\n",
		"idle_seconds_count 0\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("zero-count exposition missing %q:\n%s", want, out)
		}
	}
}

// TestInfBucketIsCumulativeTotal: observations past the last bound land
// only in the implicit +Inf bucket, which must equal the count — the
// invariant PromQL's histogram_quantile relies on.
func TestInfBucketIsCumulativeTotal(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("big_seconds", "Overflow test.", []float64{0.001, 0.01})
	h.Observe(0.0005) // first bucket
	h.Observe(99)     // overflow
	h.Observe(1e12)   // far overflow
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`big_seconds_bucket{le="0.001"} 1`,
		`big_seconds_bucket{le="0.01"} 1`,
		`big_seconds_bucket{le="+Inf"} 3`,
		"big_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("+Inf bucket exposition missing %q:\n%s", want, out)
		}
	}
}

// TestLabelValueEscaping: label values containing quotes, backslashes
// and newlines must be escaped in the exposition (labelSig renders via
// %q), and each rendered sample must stay on a single line.
func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "Escape test.", "path", `a"b\c`).Inc()
	r.Counter("esc_total", "Escape test.", "path", "two\nlines").Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`esc_total{path="a\"b\\c"} 1`,
		`esc_total{path="two\nlines"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("escaped exposition missing %q:\n%s", want, out)
		}
	}
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			t.Errorf("blank line in exposition:\n%s", out)
		}
	}
	// A raw (unescaped) newline inside a label value would have split a
	// sample across two lines; every non-comment line must parse as
	// `name{...} value` or `name value`.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if len(strings.Fields(line[strings.LastIndexByte(line, '}')+1:])) != 1 {
			t.Errorf("sample line does not end in exactly one value: %q", line)
		}
	}
}

// TestConcurrentScrape: scraping while writers are hot must be safe
// (the race detector is the assertion) and every rendered value must
// be a consistent point-in-time read, never torn.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot_total", "Contended counter.")
	h := r.Histogram("hot_seconds", "Contended histogram.", []float64{0.001, 1})
	g := r.Gauge("hot_gauge", "Contended gauge.")

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c.Inc()
				h.Observe(0.5)
				g.Add(1)
				g.Dec()
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(b.String(), "hot_total") {
			t.Fatalf("scrape %d lost the counter family:\n%s", i, b.String())
		}
	}
	close(stop)
	wg.Wait()

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	if c.Value() == 0 || !strings.Contains(out, `hot_seconds_bucket{le="+Inf"}`) {
		t.Fatalf("final scrape inconsistent:\n%s", out)
	}
}
