// Package history records operation histories — invocations, responses,
// and crash markers — and checks them for concurrent recovery
// refinement (§3.1): every history must correspond to some interleaving
// of atomic specification transitions, where a crash (plus its recovery)
// simulates one atomic spec crash step, and operations that were in
// flight at a crash either take effect before the crash (recovery
// helping, §5.4) or never.
//
// For operations that completed, the spec step must allow the observed
// return value; for operations killed by a crash, any allowed return is
// acceptable (spec.Pending), since no caller observed one. This is
// exactly the linearizability notion of Herlihy & Wing extended with the
// paper's crash transitions.
package history

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/spec"
)

// OpID identifies one operation instance within a history.
type OpID int

// EventKind discriminates history events.
type EventKind int

const (
	// Invoke is an operation invocation by some thread.
	Invoke EventKind = iota
	// Return is an operation response with its return value.
	Return
	// Crash marks a machine crash (recovery runs after it; recovery's
	// internal steps are not history events, matching the paper's view of
	// crash+recovery as a single atomic spec crash step).
	Crash
)

func (k EventKind) String() string {
	switch k {
	case Invoke:
		return "invoke"
	case Return:
		return "return"
	case Crash:
		return "crash"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one history event.
type Event struct {
	Kind EventKind
	ID   OpID // Invoke and Return only
	Op   spec.Op
	Ret  spec.Ret // Return only
}

func (e Event) String() string {
	switch e.Kind {
	case Invoke:
		return fmt.Sprintf("invoke %d: %v", e.ID, e.Op)
	case Return:
		return fmt.Sprintf("return %d: %v -> %v", e.ID, e.Op, e.Ret)
	case Crash:
		return "crash"
	default:
		return "?"
	}
}

// History is a sequence of events ordered by real time.
type History []Event

// Format renders the history one event per line.
func (h History) Format() string {
	var b strings.Builder
	for i, e := range h {
		fmt.Fprintf(&b, "%3d  %s\n", i, e.String())
	}
	return b.String()
}

// Recorder accumulates a history. It is safe for concurrent use; under
// the modeled machine threads are serialized anyway, but benchmarks may
// record from real goroutines.
type Recorder struct {
	mu     sync.Mutex
	events History
	nextID OpID
}

// Invoke records an invocation and returns its fresh OpID.
func (r *Recorder) Invoke(op spec.Op) OpID {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextID
	r.nextID++
	r.events = append(r.events, Event{Kind: Invoke, ID: id, Op: op})
	return id
}

// Return records a response for a previously invoked operation.
func (r *Recorder) Return(id OpID, ret spec.Ret) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var op spec.Op
	for _, e := range r.events {
		if e.Kind == Invoke && e.ID == id {
			op = e.Op
		}
	}
	r.events = append(r.events, Event{Kind: Return, ID: id, Op: op, Ret: ret})
}

// Crash records a crash marker.
func (r *Recorder) Crash() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, Event{Kind: Crash})
}

// History returns the recorded history (shared slice; callers must not
// mutate).
func (r *Recorder) History() History {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events
}

// Reset clears the recorder for the next explored execution.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = nil
	r.nextID = 0
}

// Result reports the outcome of checking one history.
type Result struct {
	// OK is true when the history is a valid concurrent recovery
	// refinement of the spec (or vacuously true via UB).
	OK bool
	// UB is true when the spec declared some step undefined: the client
	// broke the contract, so the history is vacuously accepted.
	UB bool
	// Reason explains a failure (empty on success).
	Reason string
	// StatesExplored counts search-node visits, a measure of checking
	// work (with memoization each distinct state is visited once).
	StatesExplored int
}

// Check verifies that h refines sp. See the package comment for the
// judgment being checked.
func Check(sp spec.Interface, h History) Result {
	return CheckWith(sp, h, Options{})
}

// Options tunes the checker (for ablation studies; the defaults are
// what everything else uses).
type Options struct {
	// DisableMemo turns off search-state memoization, degrading the
	// checker to plain backtracking.
	DisableMemo bool
}

// CheckWith is Check with explicit checker options.
func CheckWith(sp spec.Interface, h History, opts Options) Result {
	if err := validate(h); err != nil {
		return Result{Reason: "malformed history: " + err.Error()}
	}
	c := &checker{sp: sp, h: h, memo: map[string]bool{}, noMemo: opts.DisableMemo}
	c.index()
	ok := c.dfs(0, sp.Init(), nil)
	res := Result{OK: ok || c.ub, UB: c.ub, StatesExplored: c.visits}
	if !res.OK {
		res.Reason = fmt.Sprintf(
			"no linearization found: search stuck before event %d (%s) in history:\n%s",
			c.best, eventAt(h, c.best), h.Format())
	}
	return res
}

func eventAt(h History, i int) string {
	if i >= 0 && i < len(h) {
		return h[i].String()
	}
	return "end"
}

// validate rejects structurally broken histories so the checker can
// assume well-formedness: every Return matches exactly one earlier
// Invoke with no Crash in between, and IDs are not reused.
func validate(h History) error {
	invoked := map[OpID]int{}
	returned := map[OpID]bool{}
	lastCrash := -1
	for i, e := range h {
		switch e.Kind {
		case Invoke:
			if _, dup := invoked[e.ID]; dup {
				return fmt.Errorf("op %d invoked twice", e.ID)
			}
			invoked[e.ID] = i
		case Return:
			inv, ok := invoked[e.ID]
			if !ok {
				return fmt.Errorf("op %d returns without invocation", e.ID)
			}
			if returned[e.ID] {
				return fmt.Errorf("op %d returns twice", e.ID)
			}
			if lastCrash > inv {
				return fmt.Errorf("op %d returns after a crash killed it (invoked at %d, crash at %d)", e.ID, inv, lastCrash)
			}
			returned[e.ID] = true
		case Crash:
			lastCrash = i
		}
	}
	return nil
}

type opInfo struct {
	invoke int
	ret    int // -1 if never returned
	retVal spec.Ret
	op     spec.Op
	dies   int // index of crash that kills it, or len(h) if none
}

type checker struct {
	sp     spec.Interface
	h      History
	ops    map[OpID]*opInfo
	memo   map[string]bool
	noMemo bool
	visits int
	ub     bool
	best   int // deepest event index reached, for diagnostics
}

func (c *checker) index() {
	c.ops = map[OpID]*opInfo{}
	for i, e := range c.h {
		switch e.Kind {
		case Invoke:
			c.ops[e.ID] = &opInfo{invoke: i, ret: -1, op: e.Op, dies: len(c.h)}
		case Return:
			info := c.ops[e.ID]
			info.ret = i
			info.retVal = e.Ret
		case Crash:
			for _, info := range c.ops {
				if info.ret == -1 && info.invoke < i && info.dies == len(c.h) {
					info.dies = i
				}
			}
		}
	}
}

// linearizable reports the ops that may take their atomic effect at
// position i: invoked before i, not yet returned, not yet linearized,
// and not killed by a crash before i.
func (c *checker) linearizable(i int, lin map[OpID]bool) []OpID {
	var out []OpID
	for id, info := range c.ops {
		if lin[id] {
			continue
		}
		if info.invoke >= i {
			continue
		}
		if info.ret != -1 && info.ret < i {
			continue
		}
		if info.dies < i {
			continue
		}
		out = append(out, id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func (c *checker) key(i int, st spec.State, lin map[OpID]bool) string {
	ids := make([]int, 0, len(lin))
	for id := range lin {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	return fmt.Sprintf("%d|%s|%v", i, c.sp.Key(st), ids)
}

func (c *checker) dfs(i int, st spec.State, lin map[OpID]bool) bool {
	if c.ub {
		return true
	}
	if i > c.best {
		c.best = i
	}
	if i == len(c.h) {
		return true
	}
	c.visits++
	var k string
	if !c.noMemo {
		k = c.key(i, st, lin)
		if seen, ok := c.memo[k]; ok {
			return seen
		}
		c.memo[k] = false // cycle guard; overwritten on success
	}

	ok := false
	e := c.h[i]
	switch e.Kind {
	case Invoke:
		ok = c.dfs(i+1, st, lin)
	case Return:
		if lin[e.ID] {
			next := copyWithout(lin, e.ID)
			ok = c.dfs(i+1, st, next)
		}
	case Crash:
		// All unreturned, unlinearized ops die here; linearized ones have
		// taken effect (helping). The spec takes its crash step.
		ok = c.dfs(i+1, c.sp.Crash(st), nil)
	}

	if !ok {
		// Try linearizing some pending op now (before advancing).
		for _, id := range c.linearizable(i, lin) {
			info := c.ops[id]
			ret := info.retVal
			if info.ret == -1 {
				ret = spec.Pending
			}
			nexts, ub := c.sp.Step(st, info.op, ret)
			if ub {
				c.ub = true
				if !c.noMemo {
					c.memo[k] = true
				}
				return true
			}
			for _, ns := range nexts {
				if c.dfs(i, ns, copyWith(lin, id)) {
					ok = true
					break
				}
			}
			if ok {
				break
			}
		}
	}

	if !c.noMemo {
		c.memo[k] = ok
	}
	return ok
}

func copyWith(lin map[OpID]bool, id OpID) map[OpID]bool {
	out := make(map[OpID]bool, len(lin)+1)
	for k := range lin {
		out[k] = true
	}
	out[id] = true
	return out
}

func copyWithout(lin map[OpID]bool, id OpID) map[OpID]bool {
	out := make(map[OpID]bool, len(lin))
	for k := range lin {
		if k != id {
			out[k] = true
		}
	}
	return out
}
