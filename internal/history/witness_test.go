package history

import (
	"strings"
	"testing"

	"repro/internal/spec"
)

func TestWitnessSequential(t *testing.T) {
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 5}},
		{Kind: Return, ID: 0, Op: opWrite{v: 5}, Ret: nil},
		{Kind: Invoke, ID: 1, Op: opRead{}},
		{Kind: Return, ID: 1, Op: opRead{}, Ret: 5},
	}
	w, ok := Witness(regSpec(), h)
	if !ok {
		t.Fatal("no witness for a passing history")
	}
	// The witness must contain exactly two linearize steps, write first.
	var lins []WitnessStep
	for _, s := range w {
		if s.Kind == "linearize" {
			lins = append(lins, s)
		}
	}
	if len(lins) != 2 {
		t.Fatalf("linearize steps: %d", len(lins))
	}
	if lins[0].ID != 0 || lins[1].ID != 1 {
		t.Fatalf("order: %v then %v", lins[0].ID, lins[1].ID)
	}
	if lins[0].Helped || lins[1].Helped {
		t.Fatal("completed ops must not be marked helped")
	}
}

func TestWitnessShowsHelping(t *testing.T) {
	// The Figure 6 execution: a write crashes mid-flight, recovery
	// completes it, a later read observes it.
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 9}},
		{Kind: Crash},
		{Kind: Invoke, ID: 1, Op: opRead{}},
		{Kind: Return, ID: 1, Op: opRead{}, Ret: 9},
	}
	w, ok := Witness(regSpec(), h)
	if !ok {
		t.Fatal("no witness")
	}
	var sawHelped, sawCrash bool
	for _, s := range w {
		if s.Kind == "linearize" && s.ID == 0 {
			if !s.Helped {
				t.Fatal("crashed write's linearization not marked helped")
			}
			sawHelped = true
		}
		if s.Kind == "crash-step" {
			if !sawHelped {
				t.Fatal("helping must precede the crash step (the write took effect before the crash)")
			}
			sawCrash = true
		}
	}
	if !sawHelped || !sawCrash {
		t.Fatalf("witness missing helping or crash: %+v", w)
	}

	out := FormatWitness(h, w)
	for _, want := range []string{"CRASH", "helped", "{9}"} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Errorf("formatted witness missing %q:\n%s", want, out)
		}
	}
}

func TestWitnessDroppedOpHasNoLinearizeStep(t *testing.T) {
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 9}},
		{Kind: Crash},
		{Kind: Invoke, ID: 1, Op: opRead{}},
		{Kind: Return, ID: 1, Op: opRead{}, Ret: 0}, // write dropped
	}
	w, ok := Witness(regSpec(), h)
	if !ok {
		t.Fatal("no witness")
	}
	for _, s := range w {
		if s.Kind == "linearize" && s.ID == 0 {
			t.Fatal("dropped write must not linearize in this witness")
		}
	}
}

func TestWitnessFailsOnBadHistory(t *testing.T) {
	h := History{
		{Kind: Invoke, ID: 0, Op: opRead{}},
		{Kind: Return, ID: 0, Op: opRead{}, Ret: 42},
	}
	if _, ok := Witness(regSpec(), h); ok {
		t.Fatal("witness produced for a non-refining history")
	}
}

func TestWitnessAgreesWithCheck(t *testing.T) {
	// On the random histories from the reference-check generator, a
	// witness exists iff Check passes (modulo UB, which the generator
	// does not produce).
	gen := func(seed int) History {
		var h History
		nextID := OpID(0)
		open := []OpID{}
		opOf := map[OpID]spec.Op{}
		rnd := seed
		rand := func(n int) int {
			rnd = rnd*69621 + 3
			if rnd < 0 {
				rnd = -rnd
			}
			return rnd % n
		}
		for i := 0; i < 8; i++ {
			switch rand(4) {
			case 0:
				op := opWrite{v: rand(3)}
				h = append(h, Event{Kind: Invoke, ID: nextID, Op: op})
				opOf[nextID] = op
				open = append(open, nextID)
				nextID++
			case 1:
				op := opRead{}
				h = append(h, Event{Kind: Invoke, ID: nextID, Op: op})
				opOf[nextID] = op
				open = append(open, nextID)
				nextID++
			case 2:
				if len(open) == 0 {
					continue
				}
				k := rand(len(open))
				id := open[k]
				open = append(open[:k], open[k+1:]...)
				var ret spec.Ret
				if _, isRead := opOf[id].(opRead); isRead {
					ret = rand(3)
				}
				h = append(h, Event{Kind: Return, ID: id, Op: opOf[id], Ret: ret})
			case 3:
				h = append(h, Event{Kind: Crash})
				open = nil
			}
		}
		return h
	}
	for seed := 1; seed <= 300; seed++ {
		h := gen(seed)
		checkOK := Check(regSpec(), h).OK
		_, witnessOK := Witness(regSpec(), h)
		if checkOK != witnessOK {
			t.Fatalf("seed %d: Check=%v Witness=%v\n%s", seed, checkOK, witnessOK, h.Format())
		}
	}
}
