package history

import (
	"fmt"
	"strings"

	"repro/internal/spec"
)

// WitnessStep is one move in a successful forward simulation: either a
// real-time event being passed, or a pending operation taking its
// atomic spec step (its linearization point), or the spec's crash
// transition firing.
type WitnessStep struct {
	// Kind is "event", "linearize", or "crash-step".
	Kind string
	// EventIndex is the history position (Kind "event").
	EventIndex int
	// ID is the linearized op (Kind "linearize").
	ID OpID
	// Op is the linearized operation (Kind "linearize").
	Op spec.Op
	// Helped is true when the op never returned: its effect was
	// completed on the dead thread's behalf (recovery helping, §5.4).
	Helped bool
	// StateKey is the spec state after this move.
	StateKey string
}

// Witness reconstructs a concrete linearization for a passing history —
// the refinement diagram of Figure 6, mechanized: which spec transition
// each operation's effect corresponds to, and where the crash steps
// fall. It reports ok=false when the history does not refine the spec
// (or is vacuous via UB, which has no meaningful witness).
func Witness(sp spec.Interface, h History) ([]WitnessStep, bool) {
	if validate(h) != nil {
		return nil, false
	}
	c := &checker{sp: sp, h: h, memo: map[string]bool{}}
	c.index()

	var trail []WitnessStep
	var rec func(i int, st spec.State, lin map[OpID]bool) bool
	rec = func(i int, st spec.State, lin map[OpID]bool) bool {
		if i == len(h) {
			return true
		}
		// Prune with the memoized verdicts from a prior Check-style
		// search so witness extraction stays fast.
		k := c.key(i, st, lin)
		if seen, ok := c.memo[k]; ok && !seen {
			return false
		}

		e := h[i]
		switch e.Kind {
		case Invoke:
			trail = append(trail, WitnessStep{Kind: "event", EventIndex: i, StateKey: sp.Key(st)})
			if rec(i+1, st, lin) {
				return true
			}
			trail = trail[:len(trail)-1]
		case Return:
			if lin[e.ID] {
				trail = append(trail, WitnessStep{Kind: "event", EventIndex: i, StateKey: sp.Key(st)})
				if rec(i+1, st, copyWithout(lin, e.ID)) {
					return true
				}
				trail = trail[:len(trail)-1]
			}
		case Crash:
			next := sp.Crash(st)
			trail = append(trail, WitnessStep{Kind: "crash-step", EventIndex: i, StateKey: sp.Key(next)})
			if rec(i+1, next, nil) {
				return true
			}
			trail = trail[:len(trail)-1]
		}

		for _, id := range c.linearizable(i, lin) {
			info := c.ops[id]
			ret := info.retVal
			helped := false
			if info.ret == -1 {
				ret = spec.Pending
				helped = true
			}
			nexts, ub := sp.Step(st, info.op, ret)
			if ub {
				return false // vacuous histories have no witness
			}
			for _, ns := range nexts {
				trail = append(trail, WitnessStep{
					Kind: "linearize", ID: id, Op: info.op,
					Helped: helped, StateKey: sp.Key(ns),
				})
				if rec(i, ns, copyWith(lin, id)) {
					return true
				}
				trail = trail[:len(trail)-1]
			}
		}
		c.memo[k] = false
		return false
	}

	if !rec(0, sp.Init(), nil) {
		return nil, false
	}
	return trail, true
}

// FormatWitness renders a witness as a Figure 6-style two-row diagram:
// real-time events on one side, the spec transitions they map to on the
// other.
func FormatWitness(h History, w []WitnessStep) string {
	var b strings.Builder
	b.WriteString("code events                              spec transitions\n")
	b.WriteString("-----------                              ----------------\n")
	for _, s := range w {
		switch s.Kind {
		case "event":
			fmt.Fprintf(&b, "%-40s\n", h[s.EventIndex].String())
		case "linearize":
			note := ""
			if s.Helped {
				note = "  (helped: completed after the thread died)"
			}
			fmt.Fprintf(&b, "%-40s %v%s\n", "", s.Op, note)
			fmt.Fprintf(&b, "%-40s   -> %s\n", "", s.StateKey)
		case "crash-step":
			fmt.Fprintf(&b, "%-40s CRASH\n", h[s.EventIndex].String())
			fmt.Fprintf(&b, "%-40s   -> %s\n", "", s.StateKey)
		}
	}
	return b.String()
}
