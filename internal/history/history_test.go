package history

import (
	"strings"
	"testing"

	"repro/internal/spec"
	"repro/internal/tsl"
)

// Register spec: a single durable cell with read/write ops. Crash loses
// nothing (like the replicated disk's crash transition in Figure 3).
type regState struct{ v int }

type opRead struct{}
type opWrite struct{ v int }

func regSpec() spec.Interface {
	return &spec.TSL[regState]{
		SpecName: "register",
		Initial:  regState{},
		OpTransition: func(op spec.Op) tsl.Transition[regState, spec.Ret] {
			switch o := op.(type) {
			case opRead:
				return tsl.Gets(func(s regState) spec.Ret { return s.v })
			case opWrite:
				return tsl.Bind(
					tsl.Modify(func(s regState) regState { return regState{v: o.v} }),
					func(struct{}) tsl.Transition[regState, spec.Ret] {
						return tsl.Ret[regState, spec.Ret](nil)
					})
			default:
				panic("unknown op")
			}
		},
	}
}

// volatileRegSpec is a register whose value resets to zero on crash.
func volatileRegSpec() spec.Interface {
	s := regSpec().(*spec.TSL[regState])
	s.SpecName = "volatile-register"
	s.CrashTransition = func(regState) regState { return regState{} }
	return s
}

func TestSequentialWriteReadPasses(t *testing.T) {
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 5}},
		{Kind: Return, ID: 0, Op: opWrite{v: 5}, Ret: nil},
		{Kind: Invoke, ID: 1, Op: opRead{}},
		{Kind: Return, ID: 1, Op: opRead{}, Ret: 5},
	}
	res := Check(regSpec(), h)
	if !res.OK {
		t.Fatalf("res=%+v", res)
	}
}

func TestStaleReadFails(t *testing.T) {
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 5}},
		{Kind: Return, ID: 0, Op: opWrite{v: 5}, Ret: nil},
		{Kind: Invoke, ID: 1, Op: opRead{}},
		{Kind: Return, ID: 1, Op: opRead{}, Ret: 0}, // must be 5
	}
	res := Check(regSpec(), h)
	if res.OK {
		t.Fatal("stale read accepted")
	}
	if !strings.Contains(res.Reason, "no linearization") {
		t.Fatalf("reason=%q", res.Reason)
	}
}

func TestConcurrentOverlapAllowsEitherOrder(t *testing.T) {
	// write(7) overlaps read; read may see 0 or 7.
	for _, seen := range []int{0, 7} {
		h := History{
			{Kind: Invoke, ID: 0, Op: opWrite{v: 7}},
			{Kind: Invoke, ID: 1, Op: opRead{}},
			{Kind: Return, ID: 1, Op: opRead{}, Ret: seen},
			{Kind: Return, ID: 0, Op: opWrite{v: 7}, Ret: nil},
		}
		res := Check(regSpec(), h)
		if !res.OK {
			t.Fatalf("read=%d rejected: %+v", seen, res)
		}
	}
}

func TestNonOverlappingOrderIsEnforced(t *testing.T) {
	// read strictly after write(7) returning 3 is wrong.
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 7}},
		{Kind: Return, ID: 0, Op: opWrite{v: 7}, Ret: nil},
		{Kind: Invoke, ID: 1, Op: opRead{}},
		{Kind: Return, ID: 1, Op: opRead{}, Ret: 3},
	}
	if Check(regSpec(), h).OK {
		t.Fatal("impossible read value accepted")
	}
}

func TestCrashHelpingAllowsPendingWriteToTakeEffect(t *testing.T) {
	// write(9) is pending at the crash; a post-recovery read sees 9.
	// Valid only if the write linearizes before the crash (helping).
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 9}},
		{Kind: Crash},
		{Kind: Invoke, ID: 1, Op: opRead{}},
		{Kind: Return, ID: 1, Op: opRead{}, Ret: 9},
	}
	res := Check(regSpec(), h)
	if !res.OK {
		t.Fatalf("helping history rejected: %+v", res)
	}
}

func TestCrashAllowsPendingWriteToBeLost(t *testing.T) {
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 9}},
		{Kind: Crash},
		{Kind: Invoke, ID: 1, Op: opRead{}},
		{Kind: Return, ID: 1, Op: opRead{}, Ret: 0},
	}
	res := Check(regSpec(), h)
	if !res.OK {
		t.Fatalf("dropped pending write rejected: %+v", res)
	}
}

func TestCompletedWriteMustSurviveCrash(t *testing.T) {
	// write returned before the crash; losing it is a durability bug.
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 9}},
		{Kind: Return, ID: 0, Op: opWrite{v: 9}, Ret: nil},
		{Kind: Crash},
		{Kind: Invoke, ID: 1, Op: opRead{}},
		{Kind: Return, ID: 1, Op: opRead{}, Ret: 0},
	}
	if Check(regSpec(), h).OK {
		t.Fatal("lost completed write accepted by durable register spec")
	}
}

func TestVolatileSpecAllowsLossOfCompletedWrite(t *testing.T) {
	// Same history, but the spec's crash transition clears the state —
	// like group commit's specified loss window.
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 9}},
		{Kind: Return, ID: 0, Op: opWrite{v: 9}, Ret: nil},
		{Kind: Crash},
		{Kind: Invoke, ID: 1, Op: opRead{}},
		{Kind: Return, ID: 1, Op: opRead{}, Ret: 0},
	}
	res := Check(volatileRegSpec(), h)
	if !res.OK {
		t.Fatalf("volatile spec rejected allowed loss: %+v", res)
	}
}

func TestOpKilledByCrashCannotLinearizeAfterIt(t *testing.T) {
	// write(9) dies at the crash; a read after recovery sees 0, then a
	// second read sees 9 with no intervening write: impossible.
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 9}},
		{Kind: Crash},
		{Kind: Invoke, ID: 1, Op: opRead{}},
		{Kind: Return, ID: 1, Op: opRead{}, Ret: 0},
		{Kind: Invoke, ID: 2, Op: opRead{}},
		{Kind: Return, ID: 2, Op: opRead{}, Ret: 9},
	}
	if Check(regSpec(), h).OK {
		t.Fatal("zombie write after crash accepted")
	}
}

func TestMultipleCrashes(t *testing.T) {
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 1}},
		{Kind: Return, ID: 0, Op: opWrite{v: 1}, Ret: nil},
		{Kind: Crash},
		{Kind: Crash},
		{Kind: Invoke, ID: 1, Op: opRead{}},
		{Kind: Return, ID: 1, Op: opRead{}, Ret: 1},
	}
	if res := Check(regSpec(), h); !res.OK {
		t.Fatalf("double crash rejected: %+v", res)
	}
}

func TestUnreturnedOpAtEndOfHistoryIsFine(t *testing.T) {
	h := History{
		{Kind: Invoke, ID: 0, Op: opWrite{v: 1}},
	}
	if res := Check(regSpec(), h); !res.OK {
		t.Fatalf("open history rejected: %+v", res)
	}
}

func TestEmptyHistoryPasses(t *testing.T) {
	if res := Check(regSpec(), nil); !res.OK {
		t.Fatalf("empty history rejected: %+v", res)
	}
}

func TestMalformedReturnWithoutInvoke(t *testing.T) {
	h := History{{Kind: Return, ID: 0, Op: opRead{}, Ret: 0}}
	res := Check(regSpec(), h)
	if res.OK || !strings.Contains(res.Reason, "malformed") {
		t.Fatalf("res=%+v", res)
	}
}

func TestMalformedDoubleReturn(t *testing.T) {
	h := History{
		{Kind: Invoke, ID: 0, Op: opRead{}},
		{Kind: Return, ID: 0, Op: opRead{}, Ret: 0},
		{Kind: Return, ID: 0, Op: opRead{}, Ret: 0},
	}
	if Check(regSpec(), h).OK {
		t.Fatal("double return accepted")
	}
}

func TestMalformedReturnAcrossCrash(t *testing.T) {
	h := History{
		{Kind: Invoke, ID: 0, Op: opRead{}},
		{Kind: Crash},
		{Kind: Return, ID: 0, Op: opRead{}, Ret: 0},
	}
	res := Check(regSpec(), h)
	if res.OK || !strings.Contains(res.Reason, "crash killed") {
		t.Fatalf("res=%+v", res)
	}
}

func TestRecorderProducesWellFormedHistory(t *testing.T) {
	var r Recorder
	id0 := r.Invoke(opWrite{v: 2})
	id1 := r.Invoke(opRead{})
	r.Return(id1, 0)
	r.Return(id0, nil)
	r.Crash()
	h := r.History()
	if len(h) != 5 {
		t.Fatalf("len=%d", len(h))
	}
	if h[2].Op == nil {
		t.Fatal("Return event did not pick up its Op")
	}
	if res := Check(regSpec(), h); !res.OK {
		t.Fatalf("recorded history rejected: %+v", res)
	}
	r.Reset()
	if len(r.History()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

// specWithUB marks reads as undefined when the register is negative,
// to exercise vacuous acceptance.
func specWithUB() spec.Interface {
	return &spec.TSL[regState]{
		SpecName: "ub-register",
		Initial:  regState{v: -1},
		OpTransition: func(op spec.Op) tsl.Transition[regState, spec.Ret] {
			switch op.(type) {
			case opRead:
				return tsl.If(func(s regState) bool { return s.v < 0 },
					tsl.Undefined[regState, spec.Ret](),
					tsl.Gets(func(s regState) spec.Ret { return s.v }))
			default:
				panic("unknown op")
			}
		},
	}
}

func TestUBIsVacuouslyAccepted(t *testing.T) {
	h := History{
		{Kind: Invoke, ID: 0, Op: opRead{}},
		{Kind: Return, ID: 0, Op: opRead{}, Ret: 424242}, // any nonsense
	}
	res := Check(specWithUB(), h)
	if !res.OK || !res.UB {
		t.Fatalf("UB history not vacuously accepted: %+v", res)
	}
}

// Reference checker: brute-force enumeration of all linearization
// orders, no memoization, used to cross-check the DFS on small
// histories.
func referenceCheck(sp spec.Interface, h History) bool {
	if validate(h) != nil {
		return false
	}
	c := &checker{sp: sp, h: h, memo: map[string]bool{}}
	c.index()
	var rec func(i int, st spec.State, lin map[OpID]bool) bool
	rec = func(i int, st spec.State, lin map[OpID]bool) bool {
		if i == len(h) {
			return true
		}
		e := h[i]
		switch e.Kind {
		case Invoke:
			if rec(i+1, st, lin) {
				return true
			}
		case Return:
			if lin[e.ID] && rec(i+1, st, copyWithout(lin, e.ID)) {
				return true
			}
		case Crash:
			if rec(i+1, sp.Crash(st), map[OpID]bool{}) {
				return true
			}
		}
		for _, id := range c.linearizable(i, lin) {
			info := c.ops[id]
			ret := info.retVal
			if info.ret == -1 {
				ret = spec.Pending
			}
			nexts, ub := sp.Step(st, info.op, ret)
			if ub {
				return true
			}
			for _, ns := range nexts {
				if rec(i, ns, copyWith(lin, id)) {
					return true
				}
			}
		}
		return false
	}
	return rec(0, sp.Init(), map[OpID]bool{})
}

// TestQuickAgainstReference generates random small histories and checks
// the memoized DFS agrees with the brute-force reference.
func TestQuickAgainstReference(t *testing.T) {
	// Deterministic pseudo-random generation over a fixed op alphabet.
	gen := func(seed int) History {
		var h History
		nextID := OpID(0)
		open := []OpID{}
		opOf := map[OpID]spec.Op{}
		rnd := seed
		rand := func(n int) int {
			rnd = rnd*1103515245 + 12345
			if rnd < 0 {
				rnd = -rnd
			}
			return rnd % n
		}
		for i := 0; i < 8; i++ {
			switch rand(4) {
			case 0: // invoke write
				op := opWrite{v: rand(3)}
				h = append(h, Event{Kind: Invoke, ID: nextID, Op: op})
				opOf[nextID] = op
				open = append(open, nextID)
				nextID++
			case 1: // invoke read
				op := opRead{}
				h = append(h, Event{Kind: Invoke, ID: nextID, Op: op})
				opOf[nextID] = op
				open = append(open, nextID)
				nextID++
			case 2: // return some open op with a random-ish value
				if len(open) == 0 {
					continue
				}
				k := rand(len(open))
				id := open[k]
				open = append(open[:k], open[k+1:]...)
				var ret spec.Ret
				if _, isRead := opOf[id].(opRead); isRead {
					ret = rand(3)
				}
				h = append(h, Event{Kind: Return, ID: id, Op: opOf[id], Ret: ret})
			case 3: // crash
				h = append(h, Event{Kind: Crash})
				open = nil
			}
		}
		return h
	}
	for seed := 1; seed <= 400; seed++ {
		h := gen(seed)
		got := Check(regSpec(), h).OK
		want := referenceCheck(regSpec(), h)
		if got != want {
			t.Fatalf("seed %d: Check=%v reference=%v\n%s", seed, got, want, h.Format())
		}
	}
}

// TestQuickMemoDoesNotChangeVerdicts: memoization is a pure
// optimization — on random histories the memoized and unmemoized
// checkers must agree.
func TestQuickMemoDoesNotChangeVerdicts(t *testing.T) {
	gen := func(seed int) History {
		var h History
		nextID := OpID(0)
		open := []OpID{}
		opOf := map[OpID]spec.Op{}
		rnd := seed
		rand := func(n int) int {
			rnd = rnd*48271 + 11
			if rnd < 0 {
				rnd = -rnd
			}
			return rnd % n
		}
		for i := 0; i < 10; i++ {
			switch rand(4) {
			case 0:
				op := opWrite{v: rand(3)}
				h = append(h, Event{Kind: Invoke, ID: nextID, Op: op})
				opOf[nextID] = op
				open = append(open, nextID)
				nextID++
			case 1:
				op := opRead{}
				h = append(h, Event{Kind: Invoke, ID: nextID, Op: op})
				opOf[nextID] = op
				open = append(open, nextID)
				nextID++
			case 2:
				if len(open) == 0 {
					continue
				}
				k := rand(len(open))
				id := open[k]
				open = append(open[:k], open[k+1:]...)
				var ret spec.Ret
				if _, isRead := opOf[id].(opRead); isRead {
					ret = rand(3)
				}
				h = append(h, Event{Kind: Return, ID: id, Op: opOf[id], Ret: ret})
			case 3:
				h = append(h, Event{Kind: Crash})
				open = nil
			}
		}
		return h
	}
	for seed := 1; seed <= 300; seed++ {
		h := gen(seed)
		a := CheckWith(regSpec(), h, Options{})
		b := CheckWith(regSpec(), h, Options{DisableMemo: true})
		if a.OK != b.OK {
			t.Fatalf("seed %d: memo=%v nomemo=%v\n%s", seed, a.OK, b.OK, h.Format())
		}
	}
}
