// Package cmail is a stand-in for CMAIL, the verified mail server of
// the CSPEC paper that Figure 11 benchmarks against. The original CMAIL
// is Coq code extracted to Haskell and run as several processes with
// file locks; we cannot run extracted Haskell here, so this package
// reproduces its two performance-relevant properties (per §9.3's
// analysis):
//
//   - the same file-lock-based, full-path-lookup design as GoMail
//     (CMAIL and GoMail share that structure); and
//   - the extraction/runtime overhead of Haskell relative to Go,
//     simulated as a calibrated amount of CPU work per mail operation.
//     §9.3 attributes GoMail being ~34% faster than CMAIL at one core
//     purely to the Go-vs-extracted-Haskell difference, so the default
//     overhead is calibrated to cost roughly a third of a GoMail
//     operation.
//
// This substitution is documented in DESIGN.md: it preserves the
// *shape* of Figure 11 (Mailboat > GoMail > CMAIL, all scaling with
// cores), not CMAIL's absolute numbers.
package cmail

import (
	"math/rand"
	"sync/atomic"

	"repro/internal/gomail"
	"repro/internal/mailboat"
)

// DefaultOverheadLoops is the per-operation busy-work calibrated so the
// single-core GoMail:CMAIL throughput ratio lands in the neighbourhood
// of the paper's 1.34x. Exact ratios depend on the host's file-system
// call costs relative to its ALU speed (measured ratios on a noisy
// machine range roughly 1.3–1.8x); what the reproduction preserves is
// the ordering and the rough factor, per EXPERIMENTS.md.
const DefaultOverheadLoops = 3000

// Server is one simulated CMAIL instance.
type Server struct {
	inner *gomail.Server
	loops int
	sink  atomic.Uint64 // defeats dead-code elimination; written by all workers
}

// New prepares a CMAIL store under root. overheadLoops tunes the
// simulated extraction overhead; 0 selects DefaultOverheadLoops.
func New(root string, users uint64, overheadLoops int) (*Server, error) {
	if overheadLoops == 0 {
		overheadLoops = DefaultOverheadLoops
	}
	inner, err := gomail.New(root, users)
	if err != nil {
		return nil, err
	}
	return &Server{inner: inner, loops: overheadLoops}, nil
}

// burn performs the calibrated busy-work standing in for the extracted
// Haskell runtime's interpretation overhead (thunk forcing, boxed
// integers, bytestring conversions).
func (s *Server) burn() {
	h := uint64(1469598103934665603)
	for i := 0; i < s.loops; i++ {
		h ^= uint64(i)
		h *= 1099511628211
	}
	s.sink.Store(h)
}

// Deliver is GoMail's delivery plus simulated extraction overhead.
func (s *Server) Deliver(rng *rand.Rand, user uint64, msg []byte) error {
	s.burn()
	return s.inner.Deliver(rng, user, msg)
}

// Pickup is GoMail's pickup plus simulated extraction overhead.
func (s *Server) Pickup(user uint64) ([]mailboat.Message, error) {
	s.burn()
	return s.inner.Pickup(user)
}

// Delete is GoMail's delete plus simulated extraction overhead.
func (s *Server) Delete(user uint64, id string) error {
	s.burn()
	return s.inner.Delete(user, id)
}

// Unlock releases the user's file lock.
func (s *Server) Unlock(user uint64) {
	s.burn()
	s.inner.Unlock(user)
}

// Recover cleans the spool and stale locks after a crash.
func (s *Server) Recover() error { return s.inner.Recover() }
