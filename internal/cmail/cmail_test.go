package cmail

import (
	"math/rand"
	"testing"
	"time"
)

func TestDeliverPickupDeleteRoundTrip(t *testing.T) {
	s, err := New(t.TempDir(), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if err := s.Deliver(rng, 1, []byte("mail body")); err != nil {
		t.Fatal(err)
	}
	msgs, err := s.Pickup(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Contents != "mail body" {
		t.Fatalf("msgs=%+v", msgs)
	}
	if err := s.Delete(1, msgs[0].ID); err != nil {
		t.Fatal(err)
	}
	s.Unlock(1)
	msgs, _ = s.Pickup(1)
	s.Unlock(1)
	if len(msgs) != 0 {
		t.Fatalf("delete did not apply: %+v", msgs)
	}
}

func TestOverheadLoopsSlowOperationsDown(t *testing.T) {
	// The simulated extraction overhead must cost measurable CPU time:
	// a high-loop server's burn is proportionally slower than a
	// low-loop one.
	fast, err := New(t.TempDir(), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := New(t.TempDir(), 1, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	measure := func(s *Server) time.Duration {
		start := time.Now()
		for i := 0; i < 20; i++ {
			s.burn()
		}
		return time.Since(start)
	}
	tFast, tSlow := measure(fast), measure(slow)
	if tSlow < tFast*10 {
		t.Fatalf("overhead not burning: fast=%v slow=%v", tFast, tSlow)
	}
}

func TestZeroSelectsDefaultOverhead(t *testing.T) {
	s, err := New(t.TempDir(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.loops != DefaultOverheadLoops {
		t.Fatalf("loops=%d", s.loops)
	}
}

func TestRecoverDelegates(t *testing.T) {
	s, err := New(t.TempDir(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
}
