// Package kvstore is a crash-safe key-value store built *on top of*
// internal/journal: each key occupies two journal blocks (a presence
// flag and a value), and every update is one atomic journal
// transaction.
//
// It exists to exercise layering. The paper notes that "Perennial does
// not currently support composing layers of abstraction" (§1) — and
// neither does this reproduction's ghost layer: the journal's
// capability annotations speak the journal spec, not the KV spec. What
// the reproduction *can* do is check the composed system end-to-end:
// the model checker runs the KV operations (which internally run
// journal transactions, which internally run disk writes) against the
// KV specification, black-box. The layered ghost story is future work
// here exactly as multi-layer refinement was future work in the paper.
package kvstore

import (
	"fmt"

	"repro/internal/disk"
	"repro/internal/journal"
	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/tsl"
)

// State is the KV spec state.
type State struct {
	Present []bool
	Vals    []uint64
}

// NewState returns an empty store with capacity keys.
func NewState(capacity uint64) State {
	return State{Present: make([]bool, capacity), Vals: make([]uint64, capacity)}
}

func (s State) clone() State {
	n := State{Present: make([]bool, len(s.Present)), Vals: make([]uint64, len(s.Vals))}
	copy(n.Present, s.Present)
	copy(n.Vals, s.Vals)
	return n
}

// GetResult is OpGet's return value.
type GetResult struct {
	V  uint64
	OK bool
}

// OpPut stores key := v.
type OpPut struct{ K, V uint64 }

func (o OpPut) String() string { return fmt.Sprintf("put(%d, %d)", o.K, o.V) }

// OpGet looks a key up.
type OpGet struct{ K uint64 }

func (o OpGet) String() string { return fmt.Sprintf("get(%d)", o.K) }

// OpDel removes a key (idempotent).
type OpDel struct{ K uint64 }

func (o OpDel) String() string { return fmt.Sprintf("del(%d)", o.K) }

// Spec is the key-value specification: atomic puts/gets/deletes, all
// durable once returned; crash loses nothing.
func Spec(capacity uint64) spec.Interface {
	inBounds := func(k uint64) func(State) bool {
		return func(s State) bool { return k < uint64(len(s.Present)) }
	}
	return &spec.TSL[State]{
		SpecName: "kvstore",
		Initial:  NewState(capacity),
		OpTransition: func(op spec.Op) tsl.Transition[State, spec.Ret] {
			switch o := op.(type) {
			case OpPut:
				return tsl.If(inBounds(o.K),
					tsl.Then(
						tsl.Modify(func(s State) State {
							n := s.clone()
							n.Present[o.K] = true
							n.Vals[o.K] = o.V
							return n
						}),
						tsl.Ret[State, spec.Ret](nil)),
					tsl.Undefined[State, spec.Ret]())
			case OpDel:
				return tsl.If(inBounds(o.K),
					tsl.Then(
						tsl.Modify(func(s State) State {
							n := s.clone()
							n.Present[o.K] = false
							n.Vals[o.K] = 0
							return n
						}),
						tsl.Ret[State, spec.Ret](nil)),
					tsl.Undefined[State, spec.Ret]())
			case OpGet:
				return tsl.If(inBounds(o.K),
					tsl.Gets(func(s State) spec.Ret {
						if !s.Present[o.K] {
							return GetResult{}
						}
						return GetResult{V: s.Vals[o.K], OK: true}
					}),
					tsl.Undefined[State, spec.Ret]())
			default:
				panic(fmt.Sprintf("kvstore: unknown op %T", op))
			}
		},
		KeyOf: func(s State) string { return fmt.Sprintf("%v|%v", s.Present, s.Vals) },
	}
}

// Store is the per-era KV store over a journal.
type Store struct {
	capacity uint64
	j        *journal.Journal
}

// JournalSize returns the journal data-region size for a capacity.
func JournalSize(capacity uint64) uint64 { return 2 * capacity }

// DiskBlocks returns the total disk size for a capacity.
func DiskBlocks(capacity uint64) int { return journal.DiskBlocks(JournalSize(capacity)) }

func presentAddr(k uint64) uint64 { return 2 * k }
func valueAddr(k uint64) uint64   { return 2*k + 1 }

// New boots the store over a fresh disk.
func New(t *machine.T, d *disk.Disk, capacity uint64) *Store {
	return &Store{capacity: capacity, j: journal.New(t, nil, d, JournalSize(capacity))}
}

// Recover reboots the store after a crash, delegating to journal
// recovery (which redoes any committed-unapplied transaction).
func Recover(t *machine.T, old *Store) *Store {
	return &Store{capacity: old.capacity, j: journal.Recover(t, old.j)}
}

func (s *Store) check(t *machine.T, k uint64) {
	if k >= s.capacity {
		t.Failf("kvstore: key %d out of range (capacity %d)", k, s.capacity)
	}
}

// Put stores k := v atomically (one journal transaction).
func (s *Store) Put(t *machine.T, k, v uint64) {
	s.check(t, k)
	tx := s.j.Begin(t)
	tx.Write(t, presentAddr(k), 1)
	tx.Write(t, valueAddr(k), v)
	tx.Commit(t, nil)
}

// Del removes k atomically.
func (s *Store) Del(t *machine.T, k uint64) {
	s.check(t, k)
	tx := s.j.Begin(t)
	tx.Write(t, presentAddr(k), 0)
	tx.Write(t, valueAddr(k), 0)
	tx.Commit(t, nil)
}

// Get returns k's value under the journal lock (a read-only
// transaction), so the presence/value pair is read consistently.
func (s *Store) Get(t *machine.T, k uint64) GetResult {
	s.check(t, k)
	tx := s.j.Begin(t)
	p := tx.Read(t, presentAddr(k))
	v := tx.Read(t, valueAddr(k))
	tx.Abort(t)
	if p == 0 {
		return GetResult{}
	}
	return GetResult{V: v, OK: true}
}

// PutNoTxn is the buggy variant that updates the presence flag and the
// value in two separate transactions: each is atomic, but a crash
// between them leaves a torn entry (present with a stale value) that
// the composed spec never allows. Unverified.
func (s *Store) PutNoTxn(t *machine.T, k, v uint64) {
	s.check(t, k)
	tx := s.j.Begin(t)
	tx.Write(t, presentAddr(k), 1)
	tx.Commit(t, nil)
	tx = s.j.Begin(t)
	tx.Write(t, valueAddr(k), v)
	tx.Commit(t, nil)
}
