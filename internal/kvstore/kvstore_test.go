package kvstore

import (
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/explore"
	"repro/internal/machine"
	"repro/internal/spec"
)

type world struct {
	d *disk.Disk
	s *Store
}

type stepKind int

const (
	kPut stepKind = iota
	kGet
	kDel
	kPutNoTxn
)

type step struct {
	kind stepKind
	k, v uint64
}

func scenario(name string, caps uint64, steps []step, crashes int, postGets []uint64) *explore.Scenario {
	sp := Spec(caps)
	doGet := func(t *machine.T, w *world, h *explore.Harness, k uint64) {
		h.Op(OpGet{K: k}, func() spec.Ret { return w.s.Get(t, k) })
	}
	return &explore.Scenario{
		Name:        name,
		Spec:        sp,
		MachineOpts: machine.Options{MaxSteps: 5000},
		MaxCrashes:  crashes,
		Setup: func(m *machine.Machine) any {
			return &world{d: disk.New(m, "kv", DiskBlocks(caps), false)}
		},
		Init: func(t *machine.T, wAny any) {
			w := wAny.(*world)
			w.s = New(t, w.d, caps)
		},
		Main: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*world)
			for _, st := range steps {
				st := st
				t.Go(func(c *machine.T) {
					switch st.kind {
					case kPut:
						h.Op(OpPut{K: st.k, V: st.v}, func() spec.Ret {
							w.s.Put(c, st.k, st.v)
							return nil
						})
					case kPutNoTxn:
						h.Op(OpPut{K: st.k, V: st.v}, func() spec.Ret {
							w.s.PutNoTxn(c, st.k, st.v)
							return nil
						})
					case kDel:
						h.Op(OpDel{K: st.k}, func() spec.Ret {
							w.s.Del(c, st.k)
							return nil
						})
					case kGet:
						doGet(c, w, h, st.k)
					}
				})
			}
		},
		Recover: func(t *machine.T, wAny any) {
			w := wAny.(*world)
			w.s = Recover(t, w.s)
		},
		Post: func(t *machine.T, wAny any, h *explore.Harness) {
			w := wAny.(*world)
			for _, k := range postGets {
				doGet(t, w, h, k)
			}
		},
	}
}

func TestSpecBasics(t *testing.T) {
	sp := Spec(2)
	st := sp.Init()
	next, ub := sp.Step(st, OpPut{K: 1, V: 7}, nil)
	if ub || len(next) != 1 {
		t.Fatalf("put: %v %v", next, ub)
	}
	st = next[0]
	if n, _ := sp.Step(st, OpGet{K: 1}, GetResult{V: 7, OK: true}); len(n) != 1 {
		t.Fatal("get of put value rejected")
	}
	if n, _ := sp.Step(st, OpGet{K: 0}, GetResult{}); len(n) != 1 {
		t.Fatal("get of absent key rejected")
	}
	next, _ = sp.Step(st, OpDel{K: 1}, nil)
	st = next[0]
	if n, _ := sp.Step(st, OpGet{K: 1}, GetResult{}); len(n) != 1 {
		t.Fatal("get after del rejected")
	}
	if _, ub := sp.Step(st, OpGet{K: 5}, GetResult{}); !ub {
		t.Fatal("out-of-range get not UB")
	}
}

func TestSequentialSmoke(t *testing.T) {
	m := machine.New(machine.Options{MaxSteps: 100000})
	d := disk.New(m, "kv", DiskBlocks(3), false)
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		s := New(mt, d, 3)
		s.Put(mt, 0, 10)
		s.Put(mt, 2, 30)
		if g := s.Get(mt, 0); !g.OK || g.V != 10 {
			mt.Failf("get 0: %+v", g)
		}
		if g := s.Get(mt, 1); g.OK {
			mt.Failf("get 1: %+v", g)
		}
		s.Del(mt, 0)
		if g := s.Get(mt, 0); g.OK {
			mt.Failf("get after del: %+v", g)
		}
		if g := s.Get(mt, 2); !g.OK || g.V != 30 {
			mt.Failf("get 2: %+v", g)
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestPutCrashExhaustive(t *testing.T) {
	s := scenario("kv-crash", 2, []step{{kind: kPut, k: 0, v: 5}}, 2, []uint64{0, 1})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
	if !rep.Complete {
		t.Error("search did not complete")
	}
}

func TestConcurrentPutGetDelWithCrash(t *testing.T) {
	s := scenario("kv-conc", 2, []step{
		{kind: kPut, k: 0, v: 5},
		{kind: kGet, k: 0},
		{kind: kDel, k: 0},
	}, 1, []uint64{0})
	budget := 25000
	if testing.Short() {
		budget = 5000
	}
	rep := explore.Run(s, explore.Options{MaxExecutions: budget})
	t.Logf("report: %s", rep.String())
	if !rep.OK() {
		t.Fatalf("violation:\n%s", rep.Counterexample.Format())
	}
}

func TestBugPutNoTxnTornEntryFound(t *testing.T) {
	// Splitting a put across two transactions lets a crash expose
	// (present, stale-value) — the composed spec forbids it.
	s := scenario("kv-bug-notxn", 1, []step{{kind: kPutNoTxn, k: 0, v: 5}}, 1, []uint64{0})
	rep := explore.Run(s, explore.Options{MaxExecutions: 100000})
	t.Logf("report: %s", rep.String())
	if rep.OK() {
		t.Fatal("torn two-transaction put not found")
	}
}

// TestQuickSequentialAgainstSpec applies random op sequences and
// compares the store against a map.
func TestQuickSequentialAgainstSpec(t *testing.T) {
	const caps = 3
	err := quick.Check(func(raw []uint16) bool {
		if len(raw) > 12 {
			raw = raw[:12]
		}
		m := machine.New(machine.Options{MaxSteps: 200000})
		d := disk.New(m, "kv", DiskBlocks(caps), false)
		present := [caps]bool{}
		vals := [caps]uint64{}
		okAll := true
		res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
			s := New(mt, d, caps)
			for _, r := range raw {
				k := uint64(r) % caps
				v := uint64(r >> 4)
				switch (r >> 2) % 3 {
				case 0:
					s.Put(mt, k, v)
					present[k], vals[k] = true, v
				case 1:
					s.Del(mt, k)
					present[k], vals[k] = false, 0
				case 2:
					g := s.Get(mt, k)
					if g.OK != present[k] || (g.OK && g.V != vals[k]) {
						okAll = false
					}
				}
			}
		})
		return res.Outcome == machine.Done && okAll
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickDurabilityAcrossCrash puts a batch of keys, crashes at the
// end, recovers, and requires every completed put to survive.
func TestQuickDurabilityAcrossCrash(t *testing.T) {
	const caps = 3
	err := quick.Check(func(pairs [][2]uint8) bool {
		if len(pairs) > 5 {
			pairs = pairs[:5]
		}
		m := machine.New(machine.Options{MaxSteps: 200000})
		d := disk.New(m, "kv", DiskBlocks(caps), false)
		want := map[uint64]uint64{}
		var s *Store
		res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
			s = New(mt, d, caps)
			for _, p := range pairs {
				k, v := uint64(p[0])%caps, uint64(p[1])
				s.Put(mt, k, v)
				want[k] = v
			}
		})
		if res.Outcome != machine.Done {
			return false
		}
		m.CrashReset()
		okAll := true
		res = m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
			s = Recover(mt, s)
			for k, v := range want {
				if g := s.Get(mt, k); !g.OK || g.V != v {
					okAll = false
				}
			}
		})
		return res.Outcome == machine.Done && okAll
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}
