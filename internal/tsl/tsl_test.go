package tsl

import (
	"testing"
	"testing/quick"
)

// toy state: a map from small ints to ints, used to mirror Figure 3's
// replicated-disk spec on a two-address "disk".
type st struct {
	a, b int
}

func read(addr int) Transition[st, int] {
	return Gets(func(s st) int {
		if addr == 0 {
			return s.a
		}
		return s.b
	})
}

func write(addr, v int) Transition[st, struct{}] {
	return Modify(func(s st) st {
		if addr == 0 {
			s.a = v
		} else {
			s.b = v
		}
		return s
	})
}

func TestRetReturnsValueWithoutStateChange(t *testing.T) {
	r := Ret[st](42)(st{a: 1, b: 2})
	if r.UB {
		t.Fatal("Ret must not be UB")
	}
	if len(r.Outcomes) != 1 {
		t.Fatalf("Ret must have exactly one outcome, got %d", len(r.Outcomes))
	}
	o := r.Outcomes[0]
	if o.Val != 42 || o.State != (st{a: 1, b: 2}) {
		t.Fatalf("Ret outcome = %+v", o)
	}
}

func TestGetsProjectsState(t *testing.T) {
	s, v, ok := Deterministic(read(1), st{a: 7, b: 9})
	if !ok || v != 9 || s != (st{a: 7, b: 9}) {
		t.Fatalf("got s=%+v v=%d ok=%v", s, v, ok)
	}
}

func TestModifyUpdatesState(t *testing.T) {
	s, _, ok := Deterministic(write(0, 5), st{a: 1, b: 2})
	if !ok || s != (st{a: 5, b: 2}) {
		t.Fatalf("got s=%+v ok=%v", s, ok)
	}
}

func TestBindSequencesReadThenWrite(t *testing.T) {
	// copy a into b, like the recovery procedure copies disk1 to disk2.
	cp := Bind(read(0), func(v int) Transition[st, struct{}] { return write(1, v) })
	s, _, ok := Deterministic(cp, st{a: 3, b: 8})
	if !ok || s != (st{a: 3, b: 3}) {
		t.Fatalf("got s=%+v ok=%v", s, ok)
	}
}

func TestUndefinedIsAbsorbingUnderBind(t *testing.T) {
	ub := Bind(Undefined[st, int](), func(int) Transition[st, int] { return Ret[st](1) })
	if !ub(st{}).UB {
		t.Fatal("UB in first transition must make the sequence UB")
	}
	ub2 := Bind(Ret[st](1), func(int) Transition[st, int] { return Undefined[st, int]() })
	if !ub2(st{}).UB {
		t.Fatal("UB in continuation must make the sequence UB")
	}
}

func TestNotEnabledHasNoOutcomes(t *testing.T) {
	r := NotEnabled[st, int]()(st{})
	if r.UB || len(r.Outcomes) != 0 {
		t.Fatalf("NotEnabled = %+v", r)
	}
}

func TestChooseEnumeratesAllBranches(t *testing.T) {
	r := Choose[st](1, 2, 3)(st{})
	if r.UB || len(r.Outcomes) != 3 {
		t.Fatalf("Choose = %+v", r)
	}
	seen := map[int]bool{}
	for _, o := range r.Outcomes {
		seen[o.Val] = true
	}
	if !seen[1] || !seen[2] || !seen[3] {
		t.Fatalf("missing branch: %v", seen)
	}
}

func TestChooseSuchThatUsesState(t *testing.T) {
	tr := ChooseSuchThat(func(s st) []int { return []int{s.a, s.a + 1} })
	r := tr(st{a: 10})
	if len(r.Outcomes) != 2 || r.Outcomes[0].Val != 10 || r.Outcomes[1].Val != 11 {
		t.Fatalf("ChooseSuchThat = %+v", r)
	}
}

func TestBindDistributesOverNondeterminism(t *testing.T) {
	// choose x in {1,2}, then write it to a: two outcomes.
	tr := Bind(Choose[st](1, 2), func(v int) Transition[st, struct{}] { return write(0, v) })
	r := tr(st{})
	if len(r.Outcomes) != 2 {
		t.Fatalf("want 2 outcomes, got %+v", r)
	}
	if r.Outcomes[0].State.a != 1 || r.Outcomes[1].State.a != 2 {
		t.Fatalf("outcomes = %+v", r.Outcomes)
	}
}

func TestAltUnionsBehaviours(t *testing.T) {
	tr := Alt(Ret[st](1), Ret[st](2))
	r := tr(st{})
	if len(r.Outcomes) != 2 {
		t.Fatalf("Alt = %+v", r)
	}
}

func TestAltPropagatesUB(t *testing.T) {
	tr := Alt(Ret[st](1), Undefined[st, int]())
	if !tr(st{}).UB {
		t.Fatal("Alt with UB branch must be UB")
	}
}

func TestIfSelectsBranchOnState(t *testing.T) {
	tr := If(func(s st) bool { return s.a > 0 }, Ret[st]("pos"), Ret[st]("nonpos"))
	_, v, _ := Deterministic(tr, st{a: 1})
	if v != "pos" {
		t.Fatalf("got %q", v)
	}
	_, v, _ = Deterministic(tr, st{a: 0})
	if v != "nonpos" {
		t.Fatalf("got %q", v)
	}
}

func TestAssertEncodesPrecondition(t *testing.T) {
	inBounds := Assert(func(s st) bool { return s.a >= 0 }, "ok")
	if inBounds(st{a: -1}).UB != true {
		t.Fatal("violated precondition must be UB")
	}
	if inBounds(st{a: 0}).UB {
		t.Fatal("satisfied precondition must not be UB")
	}
}

func TestFilterDropsOutcomes(t *testing.T) {
	tr := Filter(Choose[st](1, 2, 3, 4), func(_ st, v int) bool { return v%2 == 0 })
	r := tr(st{})
	if len(r.Outcomes) != 2 || r.Outcomes[0].Val != 2 || r.Outcomes[1].Val != 4 {
		t.Fatalf("Filter = %+v", r)
	}
}

func TestDeterministicRejectsNondeterminism(t *testing.T) {
	if _, _, ok := Deterministic(Choose[st](1, 2), st{}); ok {
		t.Fatal("Deterministic must reject a 2-outcome transition")
	}
	if _, _, ok := Deterministic(Undefined[st, int](), st{}); ok {
		t.Fatal("Deterministic must reject UB")
	}
	if _, _, ok := Deterministic(NotEnabled[st, int](), st{}); ok {
		t.Fatal("Deterministic must reject a disabled transition")
	}
}

// ---- property-based tests: monad laws ----

func outcomesEqual(a, b Result[st, int]) bool {
	if a.UB != b.UB || len(a.Outcomes) != len(b.Outcomes) {
		return false
	}
	for i := range a.Outcomes {
		if a.Outcomes[i] != b.Outcomes[i] {
			return false
		}
	}
	return true
}

func TestQuickLeftIdentity(t *testing.T) {
	// Bind(Ret(v), f) == f(v)
	f := func(v int) Transition[st, int] {
		return Bind(write(0, v), func(struct{}) Transition[st, int] { return read(0) })
	}
	err := quick.Check(func(v int, a, b int) bool {
		s := st{a: a, b: b}
		lhs := Bind(Ret[st](v), f)(s)
		rhs := f(v)(s)
		return outcomesEqual(lhs, rhs)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickRightIdentity(t *testing.T) {
	// Bind(m, Ret) == m
	err := quick.Check(func(a, b int) bool {
		s := st{a: a, b: b}
		m := read(0)
		lhs := Bind(m, Ret[st, int])(s)
		rhs := m(s)
		return outcomesEqual(lhs, rhs)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickAssociativity(t *testing.T) {
	// Bind(Bind(m, f), g) == Bind(m, x => Bind(f(x), g))
	m := Choose[st](1, 2, 3)
	f := func(v int) Transition[st, int] {
		return Then(write(0, v), read(0))
	}
	g := func(v int) Transition[st, int] {
		return Then(write(1, v+1), read(1))
	}
	err := quick.Check(func(a, b int) bool {
		s := st{a: a, b: b}
		lhs := Bind(Bind(m, f), g)(s)
		rhs := Bind(m, func(x int) Transition[st, int] { return Bind(f(x), g) })(s)
		return outcomesEqual(lhs, rhs)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuickGetsModifyCoherence(t *testing.T) {
	// writing then reading the same address returns the written value.
	err := quick.Check(func(v int, a, b int) bool {
		s := st{a: a, b: b}
		tr := Then(write(0, v), read(0))
		_, got, ok := Deterministic(tr, s)
		return ok && got == v
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestNotEnabledUnderBindStaysDisabled(t *testing.T) {
	tr := Bind(NotEnabled[st, int](), func(int) Transition[st, int] { return Ret[st](1) })
	r := tr(st{})
	if r.UB || len(r.Outcomes) != 0 {
		t.Fatalf("r=%+v", r)
	}
	// A disabled continuation also disables the whole sequence.
	tr2 := Bind(Ret[st](1), func(int) Transition[st, int] { return NotEnabled[st, int]() })
	r2 := tr2(st{})
	if r2.UB || len(r2.Outcomes) != 0 {
		t.Fatalf("r2=%+v", r2)
	}
}

func TestChooseEmptyIsDisabled(t *testing.T) {
	r := Choose[st, int]()(st{})
	if r.UB || len(r.Outcomes) != 0 {
		t.Fatalf("r=%+v", r)
	}
}
