// Package tsl implements the transition-system language that Perennial
// embeds in Coq for writing specifications (§3.1 of the paper).
//
// A specification is a transition system: a state type S plus, for each
// top-level operation, a transition describing its atomic effect. A
// Transition maps a pre-state to the set of allowed (post-state, value)
// outcomes. Deterministic combinators (Gets, Modify, Ret) produce
// single-outcome sets; Choose introduces bounded nondeterminism; and
// Undefined marks behaviour the specification does not constrain at all
// (the paper's "undefined behavior", e.g. out-of-bounds writes).
//
// The replicated-disk specification of Figure 3 is written in this DSL in
// internal/examples/replicateddisk; the unit tests in this package
// reproduce its structure on a toy state.
package tsl

// Outcome is a single allowed result of a transition: the post-state and
// the operation's return value.
type Outcome[S, V any] struct {
	State S
	Val   V
}

// Result is the full meaning of running a transition in one pre-state:
// either undefined behaviour, or a set of allowed outcomes. An empty
// outcome set with UB=false means the transition is not enabled (the
// operation blocks / can never take this step).
type Result[S, V any] struct {
	// UB reports that the specification leaves this behaviour undefined.
	// Any implementation behaviour is acceptable after UB; checkers must
	// treat UB as "client broke the contract" and stop checking.
	UB bool
	// Outcomes is the set of allowed (state, value) results.
	Outcomes []Outcome[S, V]
}

// A Transition is the denotation of one specification operation: a
// function from pre-state to allowed outcomes.
type Transition[S, V any] func(s S) Result[S, V]

// Ret is the transition that changes nothing and returns v.
// It is the monadic unit.
func Ret[S, V any](v V) Transition[S, V] {
	return func(s S) Result[S, V] {
		return Result[S, V]{Outcomes: []Outcome[S, V]{{State: s, Val: v}}}
	}
}

// Gets reads a projection of the state without modifying it, like the
// paper's `gets (fun σ => ...)`.
func Gets[S, V any](f func(S) V) Transition[S, V] {
	return func(s S) Result[S, V] {
		return Result[S, V]{Outcomes: []Outcome[S, V]{{State: s, Val: f(s)}}}
	}
}

// Modify applies a pure state update and returns nothing, like the
// paper's `modify (fun σ => ...)`.
func Modify[S any](f func(S) S) Transition[S, struct{}] {
	return func(s S) Result[S, struct{}] {
		return Result[S, struct{}]{Outcomes: []Outcome[S, struct{}]{{State: f(s)}}}
	}
}

// Undefined is the transition whose behaviour the spec does not
// constrain.
func Undefined[S, V any]() Transition[S, V] {
	return func(S) Result[S, V] { return Result[S, V]{UB: true} }
}

// NotEnabled is the transition with no allowed outcomes: it can never be
// taken. Useful for writing blocking or guarded operations.
func NotEnabled[S, V any]() Transition[S, V] {
	return func(S) Result[S, V] { return Result[S, V]{} }
}

// Bind sequences two transitions, feeding the first's value to the
// second, accumulating all combinations of outcomes. UB anywhere makes
// the whole sequence UB (undefined behaviour is absorbing).
func Bind[S, A, B any](t Transition[S, A], f func(A) Transition[S, B]) Transition[S, B] {
	return func(s S) Result[S, B] {
		ra := t(s)
		if ra.UB {
			return Result[S, B]{UB: true}
		}
		var out Result[S, B]
		for _, oa := range ra.Outcomes {
			rb := f(oa.Val)(oa.State)
			if rb.UB {
				return Result[S, B]{UB: true}
			}
			out.Outcomes = append(out.Outcomes, rb.Outcomes...)
		}
		return out
	}
}

// Then sequences two transitions, discarding the first's value.
func Then[S, A, B any](t Transition[S, A], u Transition[S, B]) Transition[S, B] {
	return Bind(t, func(A) Transition[S, B] { return u })
}

// Choose nondeterministically picks one of the given values. The checker
// side sees every branch as allowed.
func Choose[S, V any](vs ...V) Transition[S, V] {
	return func(s S) Result[S, V] {
		out := Result[S, V]{}
		for _, v := range vs {
			out.Outcomes = append(out.Outcomes, Outcome[S, V]{State: s, Val: v})
		}
		return out
	}
}

// ChooseSuchThat nondeterministically picks any value produced by gen
// from the current state. gen enumerates the allowed values (it must be
// finite for checkers to terminate).
func ChooseSuchThat[S, V any](gen func(S) []V) Transition[S, V] {
	return func(s S) Result[S, V] {
		out := Result[S, V]{}
		for _, v := range gen(s) {
			out.Outcomes = append(out.Outcomes, Outcome[S, V]{State: s, Val: v})
		}
		return out
	}
}

// Alt offers the union of two transitions' behaviours. UB in either
// branch makes the whole thing UB, matching the convention that UB is a
// property of the pre-state, not of the chosen branch.
func Alt[S, V any](a, b Transition[S, V]) Transition[S, V] {
	return func(s S) Result[S, V] {
		ra, rb := a(s), b(s)
		if ra.UB || rb.UB {
			return Result[S, V]{UB: true}
		}
		return Result[S, V]{Outcomes: append(append([]Outcome[S, V]{}, ra.Outcomes...), rb.Outcomes...)}
	}
}

// If gates a transition on a predicate of the pre-state, otherwise
// behaves as els.
func If[S, V any](pred func(S) bool, then, els Transition[S, V]) Transition[S, V] {
	return func(s S) Result[S, V] {
		if pred(s) {
			return then(s)
		}
		return els(s)
	}
}

// Assert is Ret(v) when pred holds and Undefined otherwise: the standard
// encoding of a spec-level precondition (e.g. Figure 3's in-bounds
// check).
func Assert[S, V any](pred func(S) bool, v V) Transition[S, V] {
	return func(s S) Result[S, V] {
		if !pred(s) {
			return Result[S, V]{UB: true}
		}
		return Result[S, V]{Outcomes: []Outcome[S, V]{{State: s, Val: v}}}
	}
}

// Filter keeps only the outcomes satisfying keep. It does not affect UB.
func Filter[S, V any](t Transition[S, V], keep func(S, V) bool) Transition[S, V] {
	return func(s S) Result[S, V] {
		r := t(s)
		if r.UB {
			return r
		}
		out := Result[S, V]{}
		for _, o := range r.Outcomes {
			if keep(o.State, o.Val) {
				out.Outcomes = append(out.Outcomes, o)
			}
		}
		return out
	}
}

// Deterministic runs a transition expected to have exactly one outcome
// and returns it. It reports whether the transition was in fact
// deterministic and defined.
func Deterministic[S, V any](t Transition[S, V], s S) (S, V, bool) {
	r := t(s)
	if r.UB || len(r.Outcomes) != 1 {
		var zs S
		var zv V
		return zs, zv, false
	}
	return r.Outcomes[0].State, r.Outcomes[0].Val, true
}
