package core

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// AppendDurable implements machine.Fingerprinter for the ghost context.
// Ghost state steers which executions the capability rules admit, so it
// is part of the crash-boundary state the explorer's dedup table hashes:
// two boundary states that differ only in ghost bookkeeping can still
// diverge later (e.g. one has a master deposited in the crash invariant
// and the other does not). Logical values are encoded via fmt ("%v"),
// which is canonical for the comparable value types the examples use.
func (c *Ctx) AppendDurable(b []byte) []byte {
	names := make([]string, 0, len(c.resources))
	for n := range c.resources {
		names = append(names, n)
	}
	sort.Strings(names)
	b = machine.AppendUint64(b, uint64(len(names)))
	for _, n := range names {
		r := c.resources[n]
		b = machine.AppendString(b, n)
		b = machine.AppendString(b, fmt.Sprintf("%v", r.val))
		b = machine.AppendUint64(b, r.masterVer)
		b = machine.AppendBool(b, r.masterLive)
		b = machine.AppendUint64(b, r.leaseVer)
		b = machine.AppendBool(b, r.leaseOut)
	}

	setNames := make([]string, 0, len(c.setResources))
	for n := range c.setResources {
		setNames = append(setNames, n)
	}
	sort.Strings(setNames)
	b = machine.AppendUint64(b, uint64(len(setNames)))
	for _, n := range setNames {
		r := c.setResources[n]
		b = machine.AppendString(b, n)
		elems := make([]string, 0, len(r.elems))
		for e := range r.elems {
			elems = append(elems, e)
		}
		sort.Strings(elems)
		b = machine.AppendUint64(b, uint64(len(elems)))
		for _, e := range elems {
			b = machine.AppendString(b, e)
		}
		b = machine.AppendUint64(b, r.masterVer)
		b = machine.AppendBool(b, r.masterLive)
		b = machine.AppendUint64(b, r.leaseVer)
		b = machine.AppendBool(b, r.leaseOut)
	}

	inv := make([]string, 0, len(c.crashInv))
	for n := range c.crashInv {
		inv = append(inv, n)
	}
	sort.Strings(inv)
	b = machine.AppendUint64(b, uint64(len(inv)))
	for _, n := range inv {
		b = machine.AppendString(b, n)
	}

	// Deposited helping tokens: identity does not matter, the multiset
	// of (op, done, ret) does.
	toks := make([]string, 0, len(c.helping))
	for j := range c.helping {
		toks = append(toks, fmt.Sprintf("%v|%v|%v", j.op, j.done, j.ret))
	}
	sort.Strings(toks)
	b = machine.AppendUint64(b, uint64(len(toks)))
	for _, s := range toks {
		b = machine.AppendString(b, s)
	}

	b = machine.AppendBool(b, c.simInit)
	if c.simInit {
		b = machine.AppendString(b, c.sp.Key(c.src))
	}
	b = machine.AppendBool(b, c.crashing)
	return machine.AppendUint64(b, uint64(len(c.violations)))
}
