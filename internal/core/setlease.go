package core

import (
	"sort"

	"repro/internal/machine"
)

// This file implements the lower-bound lease of §8.3: Mailboat's
// mailbox lock cannot hold an exact-value lease on the directory
// contents, because lock-free deliveries insert new files while the
// lock is held. Instead the lock protects lease(dir, ⊇N): a lease
// guaranteeing the directory contains *at least* the names in N. The
// holder may delete names it has observed (they are in the lower
// bound), while other threads may only create new ones (which preserves
// any lower bound).

// SetMaster is the master copy dir ↦ N for a set-valued durable
// resource: it records the exact element set, for recovery's benefit.
type SetMaster struct {
	c   *Ctx
	res *setResource
}

// SetLease is the lower-bound lease lease(dir, ⊇N): permission, during
// the current version only, to delete elements known to be present.
type SetLease struct {
	c     *Ctx
	res   *setResource
	ver   uint64
	lower map[string]bool
}

type setResource struct {
	name       string
	elems      map[string]bool
	masterVer  uint64
	masterLive bool
	leaseVer   uint64
	leaseOut   bool
}

// NewDurableSet allocates the master/lower-bound-lease pair for a
// set-valued durable resource currently holding elems. Like NewDurable,
// the master must be deposited in the crash invariant to survive
// crashes.
func (c *Ctx) NewDurableSet(t *machine.T, name string, elems []string) (*SetMaster, *SetLease) {
	if _, dup := c.resources[name]; dup {
		c.failf(t, "durable resource %q allocated twice", name)
		return nil, nil
	}
	if _, dup := c.setResources[name]; dup {
		c.failf(t, "durable set resource %q allocated twice", name)
		return nil, nil
	}
	set := map[string]bool{}
	for _, e := range elems {
		set[e] = true
	}
	r := &setResource{
		name: name, elems: set,
		masterVer: c.m.Version(), masterLive: true,
		leaseVer: c.m.Version(), leaseOut: true,
	}
	c.setResources[name] = r
	lease := &SetLease{c: c, res: r, ver: r.leaseVer, lower: map[string]bool{}}
	for e := range set {
		lease.lower[e] = true
	}
	return &SetMaster{c: c, res: r}, lease
}

// Name returns the resource name.
func (m *SetMaster) Name() string { return m.res.name }

// Elems returns the exact element set the master asserts (sorted).
func (m *SetMaster) Elems(t *machine.T) []string {
	m.check(t, "read")
	out := make([]string, 0, len(m.res.elems))
	for e := range m.res.elems {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

func (m *SetMaster) check(t *machine.T, use string) {
	if !m.res.masterLive {
		m.c.failf(t, "set master %s used for %s but it was lost at a crash (not in the crash invariant)", m.res.name, use)
	}
}

// Insert records a new element. No lease is required: insertion only
// grows the set, so every outstanding lower bound stays valid — this is
// what lets Mailboat deliver without taking the mailbox lock (§8.3).
// apply performs the real effect (e.g. the link) in the same atomic
// turn. Inserting a present element is a violation (the caller must
// have won an exclusive create).
func (m *SetMaster) Insert(t *machine.T, elem string, apply func()) {
	m.check(t, "insert")
	if m.res.masterVer != m.c.m.Version() {
		m.c.failf(t, "set master %s is at version %d but memory is at %d: resynthesize first", m.res.name, m.res.masterVer, m.c.m.Version())
	}
	if m.res.elems[elem] {
		m.c.failf(t, "set %s: insert of %q which is already present", m.res.name, elem)
		return
	}
	if apply != nil {
		apply()
	}
	m.res.elems[elem] = true
}

// Lower returns the lease's current lower bound (sorted).
func (l *SetLease) Lower(t *machine.T) []string {
	l.check(t, "read")
	out := make([]string, 0, len(l.lower))
	for e := range l.lower {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Contains reports whether elem is in the lease's lower bound.
func (l *SetLease) Contains(t *machine.T, elem string) bool {
	l.check(t, "read")
	return l.lower[elem]
}

func (l *SetLease) check(t *machine.T, use string) {
	if l.ver != l.c.m.Version() {
		l.c.failf(t, "stale lower-bound lease %s (version %d, memory version %d) used for %s", l.res.name, l.ver, l.c.m.Version(), use)
	}
	if !l.res.leaseOut || l.res.leaseVer != l.ver {
		l.c.failf(t, "lower-bound lease %s used for %s but it is not the outstanding lease", l.res.name, use)
	}
}

// Refresh raises the lower bound to the master's full current set. Only
// the lease holder (under the protecting lock) may do this, typically
// right after listing the directory — the list result is exactly the
// set the lease then guarantees.
func (l *SetLease) Refresh(t *machine.T, m *SetMaster) {
	l.check(t, "refresh")
	m.check(t, "refresh")
	if l.res != m.res {
		l.c.failf(t, "refresh of lease %s against master %s", l.res.name, m.res.name)
		return
	}
	l.lower = map[string]bool{}
	for e := range m.res.elems {
		l.lower[e] = true
	}
}

// Remove deletes an element. It requires the lower-bound lease and that
// the element is in the lower bound (the holder has observed it under
// the lock) — deleting something merely hoped to exist is a violation.
// apply performs the real unlink in the same atomic turn.
func (m *SetMaster) Remove(t *machine.T, l *SetLease, elem string, apply func()) {
	m.check(t, "remove")
	l.check(t, "remove")
	if l.res != m.res {
		m.c.failf(t, "remove via lease %s against master %s", l.res.name, m.res.name)
		return
	}
	if !l.lower[elem] {
		m.c.failf(t, "set %s: remove of %q which is not in the lease's lower bound", m.res.name, elem)
		return
	}
	if apply != nil {
		apply()
	}
	delete(m.res.elems, elem)
	delete(l.lower, elem)
}

// DepositSetMaster stores a set master in the crash invariant, like
// DepositMaster.
func (c *Ctx) DepositSetMaster(t *machine.T, m *SetMaster) {
	m.check(t, "deposit")
	c.crashInv["set:"+m.res.name] = true
}

// Resynthesize mints a fresh master/lower-bound-lease pair at the
// post-crash version, with the lower bound starting at the full set
// (recovery holds all the locks, trivially). Only a live master (one
// deposited in the crash invariant) can be resynthesized.
func (m *SetMaster) Resynthesize(t *machine.T) (*SetMaster, *SetLease) {
	c := m.c
	if !m.res.masterLive {
		c.failf(t, "cannot resynthesize set %s: master was lost at a crash", m.res.name)
		return nil, nil
	}
	now := c.m.Version()
	if m.res.masterVer == now {
		c.failf(t, "resynthesize set %s without an intervening crash (version %d)", m.res.name, now)
		return nil, nil
	}
	m.res.masterVer = now
	m.res.leaseVer = now
	m.res.leaseOut = true
	lease := &SetLease{c: c, res: m.res, ver: now, lower: map[string]bool{}}
	for e := range m.res.elems {
		lease.lower[e] = true
	}
	return &SetMaster{c: c, res: m.res}, lease
}
