package core

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/spec"
	"repro/internal/tsl"
)

// runGhost runs fn as a single modeled thread with a ghost context and
// returns the era result plus the context.
func runGhost(t *testing.T, fn func(mt *machine.T, c *Ctx)) (machine.EraResult, *Ctx, *machine.Machine) {
	t.Helper()
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) { fn(mt, c) })
	return res, c, m
}

func wantViolation(t *testing.T, res machine.EraResult, substr string) {
	t.Helper()
	if res.Outcome != machine.Violation {
		t.Fatalf("expected violation containing %q, got %+v", substr, res)
	}
	if !strings.Contains(res.Err.Error(), substr) {
		t.Fatalf("violation %q does not mention %q", res.Err.Error(), substr)
	}
}

func TestNewDurableGivesUsablePair(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		ms, ls := c.NewDurable(mt, "d1[0]", uint64(0))
		if ms.Value(mt) != uint64(0) || ls.Value(mt) != uint64(0) {
			mt.Failf("wrong initial values")
		}
		c.Update(mt, ms, ls, uint64(7), nil)
		if ms.Value(mt) != uint64(7) {
			mt.Failf("update did not change logical value")
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestDuplicateDurableAllocationFails(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.NewDurable(mt, "x", 0)
		c.NewDurable(mt, "x", 0)
	})
	wantViolation(t, res, "allocated twice")
}

func TestUpdateWithMismatchedPairFails(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		ma, _ := c.NewDurable(mt, "a", 0)
		_, lb := c.NewDurable(mt, "b", 0)
		c.Update(mt, ma, lb, 1, nil)
	})
	wantViolation(t, res, "master a with lease b")
}

func TestStaleLeaseAfterCrashIsCaught(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	var ms *Master
	var ls *Lease
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		ms, ls = c.NewDurable(mt, "d[0]", uint64(1))
		c.DepositMaster(mt, ms)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("setup: %+v", res)
	}
	m.CrashReset()
	res = m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		_ = ls.Value(mt) // lease died at the crash
	})
	wantViolation(t, res, "stale lease")
}

func TestMasterLostWithoutCrashInvariant(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	var ms *Master
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		ms, _ = c.NewDurable(mt, "d[0]", uint64(1))
		// NOT deposited in the crash invariant.
	})
	m.CrashReset()
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		_ = ms.Value(mt)
	})
	wantViolation(t, res, "lost at a crash")
}

func TestResynthesizeAfterCrash(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	var ms *Master
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		ms, _ = c.NewDurable(mt, "d[0]", uint64(5))
		c.DepositMaster(mt, ms)
	})
	m.CrashReset()
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		ms2, ls2 := ms.Resynthesize(mt)
		if ms2.Value(mt) != uint64(5) || ls2.Value(mt) != uint64(5) {
			mt.Failf("resynthesized pair lost the value")
		}
		c.Update(mt, ms2, ls2, uint64(6), nil)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestResynthesizeWithoutCrashFails(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		ms, _ := c.NewDurable(mt, "d[0]", uint64(5))
		ms.Resynthesize(mt)
	})
	wantViolation(t, res, "without an intervening crash")
}

func TestOldMasterHandleStaleAfterResynthesize(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	var ms *Master
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		ms, _ = c.NewDurable(mt, "d[0]", uint64(5))
		c.DepositMaster(mt, ms)
	})
	m.CrashReset()
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		ms.Resynthesize(mt)
		_ = ms.Value(mt) // old handle is now stale
	})
	wantViolation(t, res, "stale master")
}

func TestUpdateWithOldVersionPairFails(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	var ms *Master
	var ls *Lease
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		ms, ls = c.NewDurable(mt, "d[0]", uint64(5))
		c.DepositMaster(mt, ms)
	})
	m.CrashReset()
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		c.Update(mt, ms, ls, uint64(9), nil)
	})
	wantViolation(t, res, "stale lease")
}

func TestWithdrawMasterRemovesCrashProtection(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	var ms *Master
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		ms, _ = c.NewDurable(mt, "tmp", "spooldata")
		c.DepositMaster(mt, ms)
		c.WithdrawMaster(mt, ms)
	})
	m.CrashReset()
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		_ = ms.Value(mt)
	})
	wantViolation(t, res, "lost at a crash")
}

func TestWithdrawOfUndepositedMasterFails(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		ms, _ := c.NewDurable(mt, "x", 0)
		c.WithdrawMaster(mt, ms)
	})
	wantViolation(t, res, "not in the crash invariant")
}

// ---- simulation ghost state ----

type kvState struct{ v int }
type kvPut struct{ v int }
type kvGet struct{}

func kvSpec() spec.Interface {
	return &spec.TSL[kvState]{
		SpecName: "kv",
		Initial:  kvState{},
		OpTransition: func(op spec.Op) tsl.Transition[kvState, spec.Ret] {
			switch o := op.(type) {
			case kvPut:
				return tsl.Then(
					tsl.Modify(func(kvState) kvState { return kvState{v: o.v} }),
					tsl.Ret[kvState, spec.Ret](nil))
			case kvGet:
				return tsl.Gets(func(s kvState) spec.Ret { return s.v })
			default:
				panic("bad op")
			}
		},
	}
}

func TestSimStepAdvancesSource(t *testing.T) {
	res, c, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(kvSpec(), kvState{})
		j := c.NewJTok(kvPut{v: 3})
		c.StepSim(mt, j, nil)
		c.FinishOp(mt, j, nil)
		g := c.NewJTok(kvGet{})
		c.StepSim(mt, g, 3)
		c.FinishOp(mt, g, 3)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if c.Source().(kvState).v != 3 {
		t.Fatalf("source=%+v", c.Source())
	}
}

func TestSimRejectsDisallowedReturn(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(kvSpec(), kvState{})
		g := c.NewJTok(kvGet{})
		c.StepSim(mt, g, 99) // spec says 0
	})
	wantViolation(t, res, "does not allow")
}

func TestFinishWithoutStepIsMissedLinearizationPoint(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(kvSpec(), kvState{})
		j := c.NewJTok(kvPut{v: 1})
		c.FinishOp(mt, j, nil)
	})
	wantViolation(t, res, "without simulating")
}

func TestDoubleSimulationFails(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(kvSpec(), kvState{})
		j := c.NewJTok(kvPut{v: 1})
		c.StepSim(mt, j, nil)
		c.StepSim(mt, j, nil)
	})
	wantViolation(t, res, "simulated twice")
}

func TestFinishWithMismatchedReturnFails(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(kvSpec(), kvState{})
		g := c.NewJTok(kvGet{})
		c.StepSim(mt, g, 0)
		c.FinishOp(mt, g, 5)
	})
	wantViolation(t, res, "actually returned")
}

func TestCrashSimDischargesOwedCrashStep(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		c.InitSim(kvSpec(), kvState{v: 1})
	})
	m.CrashReset()
	if !c.CrashPending() {
		t.Fatal("crash step not owed after machine crash")
	}
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		c.CrashSim(mt)
	})
	if res.Outcome != machine.Done || c.CrashPending() {
		t.Fatalf("res=%+v pending=%v", res, c.CrashPending())
	}
}

func TestCrashSimWithoutCrashFails(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(kvSpec(), kvState{})
		c.CrashSim(mt)
	})
	wantViolation(t, res, "without an owed spec crash step")
}

func TestStepSimWhileCrashOwedFails(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		c.InitSim(kvSpec(), kvState{})
	})
	m.CrashReset()
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		j := c.NewJTok(kvPut{v: 1})
		c.StepSim(mt, j, nil)
	})
	wantViolation(t, res, "⤇Crashing")
}

func TestRecoveryHelpingCompletesCrashedOp(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	var j *JTok
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		c.InitSim(kvSpec(), kvState{})
		j = c.NewJTok(kvPut{v: 9})
		c.DepositHelping(mt, j)
		// thread "crashes" before simulating
	})
	m.CrashReset()
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		toks := c.HelpingTokens()
		if len(toks) != 1 || toks[0] != j {
			mt.Failf("expected deposited token, got %d", len(toks))
		}
		c.Help(mt, toks[0])
		c.CrashSim(mt)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if c.Source().(kvState).v != 9 {
		t.Fatalf("helping did not apply the write: %+v", c.Source())
	}
}

func TestHelpWithoutDepositFails(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(kvSpec(), kvState{})
		j := c.NewJTok(kvPut{v: 9})
		c.Help(mt, j)
	})
	wantViolation(t, res, "without a deposited token")
}

func TestCrashSimDropsUnhelpedTokens(t *testing.T) {
	m := machine.New(machine.Options{})
	c := NewCtx(m)
	m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		c.InitSim(kvSpec(), kvState{})
		j := c.NewJTok(kvPut{v: 9})
		c.DepositHelping(mt, j)
	})
	m.CrashReset()
	res := m.RunEra(machine.SeqChooser{}, false, func(mt *machine.T) {
		c.CrashSim(mt) // drops the token: the put never happened
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	if len(c.HelpingTokens()) != 0 {
		t.Fatal("tokens not dropped at crash step")
	}
	if c.Source().(kvState).v != 0 {
		t.Fatalf("dropped op still applied: %+v", c.Source())
	}
}

func TestWithdrawHelpingOnNormalCompletion(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(kvSpec(), kvState{})
		j := c.NewJTok(kvPut{v: 2})
		c.DepositHelping(mt, j)
		c.WithdrawHelping(mt, j)
		c.StepSim(mt, j, nil)
		c.FinishOp(mt, j, nil)
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
}

func TestDepositHelpingAfterSimulationFails(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(kvSpec(), kvState{})
		j := c.NewJTok(kvPut{v: 2})
		c.StepSim(mt, j, nil)
		c.DepositHelping(mt, j)
	})
	wantViolation(t, res, "already-simulated")
}

func TestViolationsAreRecorded(t *testing.T) {
	res, c, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(kvSpec(), kvState{})
		c.CrashSim(mt)
	})
	if res.Outcome != machine.Violation {
		t.Fatalf("res=%+v", res)
	}
	if len(c.Violations()) != 1 {
		t.Fatalf("violations=%v", c.Violations())
	}
}

func TestAccessorsAndCrashInvQueries(t *testing.T) {
	res, c, _ := runGhost(t, func(mt *machine.T, cc *Ctx) {
		ms, ls := cc.NewDurable(mt, "d[0]", uint64(1))
		if ms.Name() != "d[0]" || ls.Name() != "d[0]" {
			mt.Failf("names: %q %q", ms.Name(), ls.Name())
		}
		if cc.InCrashInv("d[0]") {
			mt.Failf("not yet deposited")
		}
		cc.DepositMaster(mt, ms)
		if !cc.InCrashInv("d[0]") {
			mt.Failf("deposit not visible")
		}
		sm, sl := cc.NewDurableSet(mt, "dir", []string{"a"})
		if sm.Name() != "dir" {
			mt.Failf("set name: %q", sm.Name())
		}
		_ = sl
		cc.InitSim(kvSpec(), kvState{})
		j := cc.NewJTok(kvPut{v: 3})
		if j.Done() {
			mt.Failf("fresh token done")
		}
		if _, isPut := j.Op().(kvPut); !isPut {
			mt.Failf("op accessor: %T", j.Op())
		}
		cc.StepSim(mt, j, nil)
		if !j.Done() || j.Ret() != nil {
			mt.Failf("done=%v ret=%v", j.Done(), j.Ret())
		}
	})
	if res.Outcome != machine.Done {
		t.Fatalf("res=%+v", res)
	}
	_ = c
}

func TestStepSimWhereNoMatchingOutcome(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(kvSpec(), kvState{})
		j := c.NewJTok(kvPut{v: 3})
		c.StepSimWhere(mt, j, nil, func(spec.State) bool { return false })
	})
	wantViolation(t, res, "no allowed outcome")
}

func TestStepSimAmbiguousWithoutWhere(t *testing.T) {
	// A nondeterministic op stepped with plain StepSim must be flagged.
	nondet := &spec.TSL[kvState]{
		SpecName: "nondet",
		Initial:  kvState{},
		OpTransition: func(op spec.Op) tsl.Transition[kvState, spec.Ret] {
			return tsl.Bind(tsl.Choose[kvState](1, 2),
				func(v int) tsl.Transition[kvState, spec.Ret] {
					return tsl.Then(
						tsl.Modify(func(kvState) kvState { return kvState{v: v} }),
						tsl.Ret[kvState, spec.Ret](nil))
				})
		},
	}
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(nondet, kvState{})
		j := c.NewJTok(kvPut{v: 0})
		c.StepSim(mt, j, nil)
	})
	wantViolation(t, res, "use StepSimWhere")
}

func TestWithdrawHelpingNotDeposited(t *testing.T) {
	res, _, _ := runGhost(t, func(mt *machine.T, c *Ctx) {
		c.InitSim(kvSpec(), kvState{})
		j := c.NewJTok(kvPut{v: 1})
		c.WithdrawHelping(mt, j)
	})
	wantViolation(t, res, "not deposited")
}
